// Package cdn is the deterministic edge-cache tier the paper's
// root-cause analysis keeps pointing at: where a segment is actually
// served from — an edge node, a metro cache, or the origin — and what
// that does to the client's achievable throughput. The topology is a
// two-level hierarchy in front of the origin:
//
//   - Per-cell edge nodes: segment-granular LRU caches with a byte
//     capacity and a TTL on the simulation's virtual clock. A load
//     balancer routes each session to one node when the session first
//     requests a segment, scoring nodes on locality (the member's home
//     node), live byte-load (bytes routed so far), and health; the
//     session sticks to its node until the node dies, at which point
//     the next request re-routes mid-stream.
//
//   - Per-shard metro caches: one larger cache behind the edge nodes
//     of a shard's cells (fleet aligns them to its fixed 16-cell
//     shards). An edge miss that hits metro pays a short metro RTT; a
//     metro miss goes to the origin and pays the origin RTT.
//
// Hits are served at edge rate — the request's throughput is shaped
// only by the client's access link and the shared edge link, exactly
// as before this tier existed. Misses additionally traverse the cell's
// shared backhaul link (simnet.AccessLink in upstream role, even-split
// under the same water-filling) and pay the metro or origin round
// trip as extra first-byte latency — so cache state feeds back into
// achievable throughput and hence into ABR decisions.
//
// Determinism: a cache is a map plus an intrusive LRU list — no map
// iteration ever decides anything — and every admit/evict/route
// decision is a pure function of the request stream and virtual time.
// Cells own their edge nodes, balancer state and backhaul link, so a
// cell remains a pure function of (config, cell index) given its metro
// cache's state; metro caches are owned by a shard and touched only by
// that shard's cells, which fold strictly in cell-index order on one
// goroutine — so fleet report bytes stay independent of worker count
// and steal schedule.
//
// Model simplifications (documented contract): admission happens at
// request time (the first request for an object warms the cache
// immediately — concurrent-miss collapse is free); manifests and other
// documents are pinned at the edge (only media segments route through
// the resolver); warm-start fills every cache with the catalog's
// popular prefix (ascending segment index — everyone starts at segment
// 0) unless the cell is in the configured cold set.
package cdn

import "repro/internal/simnet"

// Object kinds.
const (
	KindVideo uint8 = iota
	KindAudio
)

// Object identifies one cacheable media segment: a catalog entry
// (service index in the fleet mix), a rendition coordinate and a
// segment index. Both the full player and the coarse background tier
// can name objects this way, so they share cache state for the same
// title.
type Object struct {
	Catalog int32
	Kind    uint8
	Track   int32
	Index   int32
}

// Route is a resolver's verdict on one request: where the response is
// served from, expressed as the extra first-byte latency beyond the
// edge RTT and the shared upstream link the response must traverse
// (nil for an edge hit — served at edge rate).
type Route struct {
	ExtraLatency float64
	Upstream     *simnet.AccessLink
}

// Resolver classifies one media request at virtual time now. The
// player calls it once per segment (split parts share their segment's
// verdict) with the request's wire size in bytes.
type Resolver interface {
	Resolve(now float64, obj Object, size float64) Route
}

package netem

import (
	"math"
	"math/rand"
)

// Cellular trace synthesis.
//
// The paper recorded 14 throughput traces over a real cellular network "in
// various scenarios covering different movement patterns, signal strength
// and locations", each 10 minutes at 1 s granularity, with averages
// spanning roughly 1–40 Mbit/s (Figure 3). The recordings are not public,
// so we synthesise stand-ins from a 3-state Markov fading model (deep fade
// / mid / good) with lognormal per-second variation. The experiments only
// depend on the traces' qualitative shape: the spread of averages, the
// presence of second-scale variability, and the fact that the lowest two
// profiles cannot sustain a ~500 kbit/s bottom track while ~200 kbit/s
// tracks survive (§3.1).

// CellularCount is the number of synthetic cellular profiles, matching the
// paper's 14 recorded traces.
const CellularCount = 14

// cellularTargets holds the target mean bandwidth (Mbit/s) for each
// profile after sorting; chosen to span Figure 3's ~1–40 Mbit/s range with
// the two lowest profiles below 1.5 Mbit/s.
var cellularTargets = []float64{0.6, 1.0, 1.6, 2.2, 3.0, 4.0, 5.5, 7.5, 10, 13, 17, 22, 30, 40}

// scenario captures the qualitative recording condition of a trace:
// how quickly the channel state changes (movement) and how deep fades go
// (signal strength).
type scenario struct {
	switchProb float64 // per-second probability of changing Markov state
	fadeDepth  float64 // multiplier applied in the deep-fade state
	sigma      float64 // lognormal per-second noise
}

var scenarios = []scenario{
	{0.10, 0.35, 0.25}, // stationary, strong signal
	{0.08, 0.25, 0.35}, // stationary, weak signal
	{0.22, 0.30, 0.45}, // walking
	{0.30, 0.25, 0.55}, // driving
}

// Cellular returns synthetic cellular profile i (1-based, 1..CellularCount),
// 600 seconds at 1 s granularity, sorted so that profile 1 has the lowest
// average bandwidth, like the paper's Profile 1..14.
func Cellular(i int) *Profile {
	ps := CellularSet()
	return ps[i-1]
}

// CellularSet returns all 14 synthetic cellular profiles sorted by
// ascending average bandwidth (the canonical seed every experiment uses).
func CellularSet() []*Profile {
	return CellularSetSeed(0)
}

// CellularSetSeed returns an alternative draw of the 14 profiles — same
// targets and scenarios, different sample noise. Robustness tests rerun
// key experiments across seeds to check that the reproduced shapes are
// not artefacts of one particular trace draw.
func CellularSetSeed(seed int64) []*Profile {
	ps := make([]*Profile, CellularCount)
	for i := 0; i < CellularCount; i++ {
		ps[i] = genCellular(i, seed)
	}
	SortByAverage("cellular", ps)
	return ps
}

func genCellular(i int, seed int64) *Profile {
	const dur = 600 // seconds, matching the paper's 10 min sessions
	rng := rand.New(rand.NewSource(int64(1000+37*i) + seed*7919))
	sc := scenarios[i%len(scenarios)]
	target := cellularTargets[i] * 1e6

	// 3-state Markov chain over channel quality multipliers.
	states := []float64{sc.fadeDepth, 0.7, 1.6}
	state := 1
	samples := make([]float64, dur)
	for t := 0; t < dur; t++ {
		if rng.Float64() < sc.switchProb {
			state = rng.Intn(len(states))
		}
		noise := math.Exp(sc.sigma * rng.NormFloat64())
		samples[t] = states[state] * noise
	}
	// Scale to the target mean, clamp the lognormal tail (real radio
	// links top out; the paper's traces peak near 45 Mbit/s), rescale
	// once to recover the mean, and floor at a small positive rate (a
	// cellular link rarely reads exactly zero for a full second while
	// attached).
	rescale := func() {
		mean := 0.0
		for _, v := range samples {
			mean += v
		}
		mean /= dur
		for t := range samples {
			samples[t] *= target / mean
		}
	}
	rescale()
	cap := math.Min(3.5*target, 50e6)
	for t := range samples {
		if samples[t] > cap {
			samples[t] = cap
		}
	}
	rescale()
	// Deep fades are brief (the Markov dwell time is seconds), so a
	// service with a low bottom track and a healthy buffer rides them
	// out — the paper's D2/D3 never stall on the lowest profiles while
	// H5's 560 kbit/s bottom track cannot keep up (§3.1).
	floor := math.Max(40e3, target/5)
	for t := range samples {
		if samples[t] > 1.2*cap {
			samples[t] = 1.2 * cap
		}
		if samples[t] < floor {
			samples[t] = floor
		}
	}
	return &Profile{Name: "raw", SampleDur: 1, Samples: samples}
}

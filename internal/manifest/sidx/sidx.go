// Package sidx encodes and decodes the ISO-BMFF Segment Index box
// (ISO/IEC 14496-12 §8.16.3). DASH services D2–D4 publish per-segment
// byte ranges and durations through this box rather than in the MPD; the
// paper's traffic analyzer parses it to recover segment sizes even when
// the MPD itself is encrypted (D3, §2.3 footnote). §4.2 argues the sizes
// it reveals should feed the adaptation logic.
package sidx

import (
	"encoding/binary"
	"fmt"
)

// Reference is one entry of the segment index.
type Reference struct {
	// ReferencedSize is the segment size in bytes (31-bit field).
	ReferencedSize uint32
	// SubsegmentDuration is the segment duration in timescale units.
	SubsegmentDuration uint32
	// StartsWithSAP marks the segment as starting with a stream access
	// point (always true for our per-segment-addressable content).
	StartsWithSAP bool
	// SAPType is the SAP type (1 for closed-GOP IDR starts).
	SAPType uint8
}

// Box is a parsed Segment Index box.
type Box struct {
	// Version is 0 (32-bit times) or 1 (64-bit times).
	Version uint8
	// ReferenceID is the stream ID the index describes.
	ReferenceID uint32
	// Timescale is ticks per second for the duration fields.
	Timescale uint32
	// EarliestPresentationTime is the media time of the first segment.
	EarliestPresentationTime uint64
	// FirstOffset is the distance from the end of the box to the first
	// referenced byte.
	FirstOffset uint64
	// References lists the indexed segments in order.
	References []Reference
}

// SegmentDurations converts the reference durations to seconds.
func (b *Box) SegmentDurations() []float64 {
	out := make([]float64, len(b.References))
	for i, r := range b.References {
		out[i] = float64(r.SubsegmentDuration) / float64(b.Timescale)
	}
	return out
}

// Encode serialises the box. Version 1 is always written.
func Encode(b *Box) []byte {
	size := 12 + 4 + 4 + 16 + 4 + 12*len(b.References)
	out := make([]byte, 0, size)
	var tmp [8]byte

	be32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		out = append(out, tmp[:4]...)
	}
	be64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:8], v)
		out = append(out, tmp[:8]...)
	}

	be32(uint32(size))
	out = append(out, "sidx"...)
	be32(1 << 24) // version 1, flags 0
	be32(b.ReferenceID)
	be32(b.Timescale)
	be64(b.EarliestPresentationTime)
	be64(b.FirstOffset)
	be32(uint32(len(b.References)) & 0xffff) // reserved(16)=0 + count(16)
	for _, r := range b.References {
		be32(r.ReferencedSize & 0x7fffffff) // reference_type 0 = media
		be32(r.SubsegmentDuration)
		var sap uint32
		if r.StartsWithSAP {
			sap = 1 << 31
		}
		sap |= uint32(r.SAPType&0x7) << 28
		be32(sap)
	}
	return out
}

// Decode parses a Segment Index box from data (which must begin at the
// box header). It accepts versions 0 and 1.
func Decode(data []byte) (*Box, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("sidx: short box header (%d bytes)", len(data))
	}
	size := binary.BigEndian.Uint32(data[0:4])
	if string(data[4:8]) != "sidx" {
		return nil, fmt.Errorf("sidx: box type %q, want \"sidx\"", data[4:8])
	}
	if int(size) > len(data) {
		return nil, fmt.Errorf("sidx: declared size %d exceeds buffer %d", size, len(data))
	}
	data = data[:size]
	b := &Box{Version: data[8]}
	if b.Version > 1 {
		return nil, fmt.Errorf("sidx: unsupported version %d", b.Version)
	}
	off := 12
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("sidx: truncated box at offset %d", off)
		}
		return nil
	}
	if err := need(8); err != nil {
		return nil, err
	}
	b.ReferenceID = binary.BigEndian.Uint32(data[off:])
	b.Timescale = binary.BigEndian.Uint32(data[off+4:])
	off += 8
	if b.Version == 0 {
		if err := need(8); err != nil {
			return nil, err
		}
		b.EarliestPresentationTime = uint64(binary.BigEndian.Uint32(data[off:]))
		b.FirstOffset = uint64(binary.BigEndian.Uint32(data[off+4:]))
		off += 8
	} else {
		if err := need(16); err != nil {
			return nil, err
		}
		b.EarliestPresentationTime = binary.BigEndian.Uint64(data[off:])
		b.FirstOffset = binary.BigEndian.Uint64(data[off+8:])
		off += 16
	}
	if err := need(4); err != nil {
		return nil, err
	}
	count := int(binary.BigEndian.Uint16(data[off+2:]))
	off += 4
	if err := need(12 * count); err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		sz := binary.BigEndian.Uint32(data[off:])
		if sz>>31 != 0 {
			return nil, fmt.Errorf("sidx: reference %d indexes another sidx (unsupported)", i)
		}
		dur := binary.BigEndian.Uint32(data[off+4:])
		sap := binary.BigEndian.Uint32(data[off+8:])
		b.References = append(b.References, Reference{
			ReferencedSize:     sz & 0x7fffffff,
			SubsegmentDuration: dur,
			StartsWithSAP:      sap>>31 == 1,
			SAPType:            uint8(sap >> 28 & 0x7),
		})
		off += 12
	}
	return b, nil
}

// FromSegments builds a Box for segments with the given sizes (bytes) and
// durations (seconds) using the given timescale.
func FromSegments(sizes []int64, durations []float64, timescale uint32) *Box {
	b := &Box{Version: 1, ReferenceID: 1, Timescale: timescale}
	for i := range sizes {
		b.References = append(b.References, Reference{
			ReferencedSize:     uint32(sizes[i]),
			SubsegmentDuration: uint32(durations[i]*float64(timescale) + 0.5),
			StartsWithSAP:      true,
			SAPType:            1,
		})
	}
	return b
}

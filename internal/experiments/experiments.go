// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated testbed. Each experiment is addressable
// by the paper's artifact id (fig3..fig15, table1, table2, sr_whatif) and
// produces text tables/plots with the same rows and series the paper
// reports. EXPERIMENTS.md in the repository root records paper-vs-
// measured values for each.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/adaptation"
	"repro/internal/expcache"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/services"
	"repro/internal/textplot"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the artifact id ("fig8", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run regenerates it. Cancelling ctx stops the experiment's internal
	// fan-out early; outputs are only meaningful when Run returns nil.
	Run func(ctx context.Context) ([]*textplot.Table, []string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Collected cellular network bandwidth profiles", Fig3},
		{"fig4", "Declared bitrates of tracks for different services", Fig4},
		{"fig5", "Actual bitrate normalized by declared bitrate", Fig5},
		{"table1", "Design choices (black-box probed)", Table1},
		{"table2", "Identified QoE-impacting issues", Table2},
		{"fig6", "D1 audio/video download desynchronisation", Fig6},
		{"fig7", "S2 low resuming threshold causes stalls", Fig7},
		{"fig8", "D1 track selection unstable at constant bandwidth", Fig8},
		{"fig9", "Selected declared bitrate vs constant bandwidth", Fig9},
		{"fig10", "H4 segment replacement fetches worse quality", Fig10},
		{"sr_whatif", "What-if analysis of H4-style segment replacement", SRWhatIf},
		{"fig11", "Improved per-segment SR: track distribution and cost", Fig11},
		{"fig12", "D2 ignores actual bitrates (manifest-variant probe)", Fig12},
		{"fig13", "Actual-bitrate-aware adaptation", Fig13},
		{"fig14", "H3 stalls at startup (single-segment startup buffer)", Fig14},
		{"fig15", "Startup delay and stall ratio vs startup settings", Fig15},
		{"abl_energy", "Ablation: download-control thresholds vs radio energy", AblEnergy},
		{"abl_segdur", "Ablation: segment duration tradeoff", AblSegDur},
		{"abl_split", "Ablation: sub-segment split-point sensitivity (D3)", AblSplit},
		{"abl_srcap", "Ablation: SR cap threshold sweep", AblSRCap},
		{"abl_algorithms", "Ablation: adaptation algorithm comparison", AblAlgorithms},
		{"abl_recovery", "Ablation: stall recovery gating", AblRecovery},
		{"abl_abandon", "Ablation: pausing threshold vs abandonment waste", AblAbandon},
		{"abl_fairness", "Ablation: multi-client fairness on a shared link", AblFairness},
	}
}

// byID indexes the registry once; ByID is called per lookup on hot
// paths (every benchmark iteration) and must not rebuild All().
var byID = sync.OnceValue(func() map[string]Experiment {
	all := All()
	m := make(map[string]Experiment, len(all))
	for _, e := range all {
		m[e.ID] = e
	}
	return m
})

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	if e, ok := byID()[id]; ok {
		return &e
	}
	return nil
}

// cellular caches the 14 synthetic traces.
var cellular = sync.OnceValue(netem.CellularSet)

// serviceOrigin returns the service's origin from the content-addressed
// cache: built exactly once per distinct content even when concurrent
// experiments request it, without one service's build blocking
// another's.
func serviceOrigin(svc *services.Service) (*origin.Origin, error) {
	return expcache.Origin(svc)
}

// run streams a stock service over a profile for dur seconds, through
// the session cache — an identical (service, profile, duration) request
// anywhere in the report reuses the first computation. The result is
// shared; treat it as read-only.
func run(svc *services.Service, p *netem.Profile, dur float64) (*player.Result, error) {
	return expcache.RunService(svc, p, dur, nil)
}

// ---- the ExoPlayer-model player used by §4's best-practice experiments ----

// exoCache deduplicates the §4 test streams across experiments: several
// artifacts (Fig11, AblSRCap, ...) request the same (segDur, seed) pair,
// and the content is deterministic, so each is generated once.
type exoKey struct {
	segDur float64
	seed   int64
}

var exoCache expcache.Memo[exoKey, *origin.Origin]

// exoContent builds the 7-track VBR test stream of §4.2/§4.1.3 (the paper
// VBR-encodes Sintel into 7 tracks with peak = 2× average and plays it in
// a modified ExoPlayer). DASH/sidx addressing exposes per-segment sizes
// so the actual-bitrate-aware variants have something to read.
func exoContent(segDur float64, seed int64) (*origin.Origin, error) {
	return exoCache.Get(exoKey{segDur, seed}, func() (*origin.Origin, error) {
		return buildExoContent(segDur, seed)
	})
}

func buildExoContent(segDur float64, seed int64) (*origin.Origin, error) {
	cfg := media.Config{
		Name: "sintel", Duration: 1200, SegmentDuration: segDur,
		TargetBitrates: []float64{200e3, 350e3, 600e3, 1.0e6, 1.7e6, 2.7e6, 4.2e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: seed,
	}
	v, err := media.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return origin.New(manifest.Build(v, manifest.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
}

// exoPlayer returns the ExoPlayer-default player model: single
// connection, persistent, 0.75 bandwidth fraction with buffer hysteresis,
// pause at the default buffer target.
func exoPlayer(name string) player.Config {
	return player.Config{
		Name:               name,
		StartupBufferSec:   8,
		StartupTrack:       1,
		PauseThresholdSec:  60,
		ResumeThresholdSec: 45,
		MaxConnections:     1,
		Persistent:         true,
		Scheduler:          player.SchedulerSingle,
		Algorithm:          adaptation.DefaultHysteresis(),
		// The first throughput samples alone are not trusted (the window
		// during which the startup settings of §4.3 matter).
		MinEstimateSamples: 3,
	}
}

// trackLabel renders a ladder index as its resolution label given the
// origin's presentation.
func trackLabel(org *origin.Origin, track int) string {
	return org.Pres.Video[track].Resolution()
}

// displayedSummary aggregates displayed playtime per track label.
func displayedSummary(org *origin.Origin, res *player.Result) map[string]float64 {
	out := map[string]float64{}
	for i, tr := range res.Displayed {
		if tr < 0 {
			continue
		}
		dur := res.SegmentDuration
		if start := float64(i) * res.SegmentDuration; start+dur > res.MediaDuration {
			dur = res.MediaDuration - start
		}
		out[trackLabel(org, tr)] += dur
	}
	return out
}

// sortedKeys returns map keys sorted lexicographically.
func sortedKeys[M ~map[string]float64](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// fmtLadder prints a declared ladder in Mbit/s.
func fmtLadder(declared []float64) string {
	s := ""
	for i, d := range declared {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", d/1e6)
	}
	return s
}

// Command vodfleet runs a population-scale streaming simulation: many
// clients, drawn from a seeded workload model, streaming the paper's 12
// service models through shared cellular edge links (internal/fleet).
// It prints per-service QoE CDFs and a cell-level fairness/utilization
// table, and can emit the full report as deterministic JSON — for a
// given seed the bytes are identical regardless of -workers.
//
// Usage:
//
//	vodfleet -sessions 10000 -seed 1
//	vodfleet -sessions 2000 -services H1,D2,S1 -edge-mbps 25
//	vodfleet -sessions 10000 -seed 1 -workers 8 -json report.json
//	vodfleet -sessions 100000 -hotspot 0.8 -fidelity 0.02 -cpuprofile cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

func main() {
	log.SetFlags(0)
	sessions := flag.Int("sessions", 1000, "population size")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent cells (never affects output bytes)")
	window := flag.Float64("window", 0, "arrival window in seconds (0 = default 600)")
	watch := flag.Float64("watch", 0, "full watch duration in seconds (0 = default 120)")
	abandonProb := flag.Float64("abandon-prob", 0, "early-abandon probability (0 = default 0.35, negative = none)")
	abandonMean := flag.Float64("abandon-mean", 0, "mean abandoned watch duration in seconds (0 = default 45)")
	cellSize := flag.Int("cell-size", 0, "clients per shared edge link (0 = default 24)")
	edgeMbps := flag.Float64("edge-mbps", 0, "shared edge budget per cell in Mbit/s (0 = default 40)")
	fidelity := flag.Float64("fidelity", 0, "fraction of sessions at full player fidelity (0 = default 1, negative = all background tier)")
	focus := flag.Int("focus", 0, "retain full per-session records for this many seeded focus members")
	hotspot := flag.Float64("hotspot", 0, "fraction of the population concentrated on cell 0 (flash crowd; 0 = balanced cells)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	memCeiling := flag.Int("memceiling-mb", 0, "fail if live heap exceeds this many MiB during the run (0 = no ceiling)")
	svcList := flag.String("services", "", "comma-separated service mix (empty = all 12; repeats weight the mix)")
	jsonOut := flag.String("json", "", "write the full JSON report to this file (- for stdout)")
	quiet := flag.Bool("q", false, "suppress the text summary and plots")
	noCache := flag.Bool("nocache", false, "bypass the in-process report memo")
	plotW := flag.Int("plot-width", 72, "CDF plot width")
	plotH := flag.Int("plot-height", 14, "CDF plot height")
	flag.Parse()

	cfg := fleet.Config{
		Seed:             *seed,
		Sessions:         *sessions,
		ArrivalWindowSec: *window,
		WatchSec:         *watch,
		AbandonProb:      *abandonProb,
		AbandonMeanSec:   *abandonMean,
		ClientsPerCell:   *cellSize,
		EdgeMbps:         *edgeMbps,
		FidelityFull:     *fidelity,
		FocusSessions:    *focus,
		Hotspot:          *hotspot,
	}
	if *svcList != "" {
		for _, s := range strings.Split(*svcList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Services = append(cfg.Services, s)
			}
		}
	}

	// The heap ceiling is a self-gate for CI: a background sampler
	// watches the live heap and aborts the process the moment the
	// memory contract is broken, instead of trusting an external RSS
	// probe that varies with the allocator and the OS.
	var peakHeap atomic.Uint64
	if *memCeiling > 0 {
		limit := uint64(*memCeiling) << 20
		//vodlint:allow goctx — process-lifetime heap sampler: dies with the run, nothing to cancel
		go func() {
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap.Load() {
					peakHeap.Store(ms.HeapAlloc)
				}
				if ms.HeapAlloc > limit {
					log.Fatalf("vodfleet: live heap %.1f MiB exceeded the %d MiB ceiling",
						float64(ms.HeapAlloc)/(1<<20), *memCeiling)
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
	}

	// Profiling passthrough (same contract as vodbench) so hotspot runs
	// can be profiled directly. Fatal error paths skip the writes — the
	// profiles only matter for runs that complete.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodfleet: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vodfleet: %v\n", err)
		}
	}()

	run := fleet.RunCached
	if *noCache {
		run = fleet.Run
	}
	start := time.Now()
	rep, err := run(context.Background(), cfg, *workers)
	if err != nil {
		log.Fatalf("vodfleet: %v", err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vodfleet: %d sessions in %d cells simulated in %.1fs\n",
			rep.Sessions, rep.Cells, time.Since(start).Seconds())
	}
	if *memCeiling > 0 {
		fmt.Fprintf(os.Stderr, "vodfleet: peak live heap %.1f MiB (ceiling %d MiB)\n",
			float64(peakHeap.Load())/(1<<20), *memCeiling)
	}

	if *jsonOut != "" {
		b, err := rep.JSON()
		if err != nil {
			log.Fatalf("vodfleet: marshal report: %v", err)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
	}
	if *quiet {
		return
	}
	fmt.Println(rep.Summary().String())
	fmt.Println(rep.CellTable().String())
	fmt.Print(rep.CDFPlots(*plotW, *plotH))
}

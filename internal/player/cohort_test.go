package player

// Differential tests for the vectorized background cohort (cohort.go).
//
// The contract is bit-exactness: a Cohort must be observationally
// indistinguishable from the same members run as individual Background
// flows — not within a tolerance, but byte-identical Summaries. Every
// test here builds the same scenario twice (fresh networks, identical
// construction order) and compares exactly.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/simnet"
)

// bgDraw is one drawn cohort member: its config (service template plus
// per-viewer duration), arrival, and access trace.
type bgDraw struct {
	cfg     BackgroundConfig
	startAt float64
	trace   *netem.Profile
	full    bool // mixed test: run the full player instead
}

// drawBackgrounds generates a seeded member population over a few
// service-like templates: distinct ladders, segment grids and media
// durations, with per-member session durations and arrivals.
func drawBackgrounds(rng *rand.Rand, n int, mixed bool) []bgDraw {
	traces := netem.CellularSet()
	nTmpl := 2 + rng.Intn(3)
	tmpls := make([]BackgroundConfig, nTmpl)
	for i := range tmpls {
		nr := 2 + rng.Intn(4)
		ladder := make([]float64, nr)
		base := 2e5 * (1 + rng.Float64()*2)
		for r := range ladder {
			ladder[r] = math.Round(base * math.Pow(1.5+rng.Float64(), float64(r)))
		}
		tmpls[i] = BackgroundConfig{
			Declared:        ladder,
			SegmentDuration: float64(2 + 2*rng.Intn(3)),
			MediaDuration:   30 + rng.Float64()*90,
		}
		if rng.Intn(2) == 0 {
			tmpls[i].SafetyFactor = 1.6
		}
	}
	draws := make([]bgDraw, n)
	for i := range draws {
		cfg := tmpls[rng.Intn(nTmpl)]
		cfg.SessionDuration = 15 + rng.Float64()*90
		draws[i] = bgDraw{
			cfg:     cfg,
			startAt: rng.Float64() * 20,
			trace:   traces[rng.Intn(len(traces))],
			full:    mixed && rng.Intn(3) == 0,
		}
	}
	return draws
}

// steppedEdge builds an edge profile whose value actually changes every
// few seconds, so the scenario exercises profile-switch handling, not
// just constant links.
func steppedEdge(rng *rand.Rand, mbps float64, dur float64) *netem.Profile {
	n := int(dur)
	s := make([]float64, n)
	v := mbps * 1e6
	for i := range s {
		if i%4 == 0 {
			v = mbps * 1e6 * (0.5 + rng.Float64())
		}
		s[i] = math.Round(v)
	}
	return &netem.Profile{Name: "steppedEdge", SampleDur: 1, Samples: s}
}

// cloneSummary deep-copies a Summary so slab-aliasing views survive
// comparison after the cohort is gone.
func cloneSummary(s Summary) Summary {
	s.TimeOnTrack = append([]float64(nil), s.TimeOnTrack...)
	return s
}

// runAsBackgrounds executes the draws as individual Background flows
// and returns their Summaries in member order.
func runAsBackgrounds(t *testing.T, scfg simnet.Config, edge *netem.Profile, draws []bgDraw) []Summary {
	t.Helper()
	net := simnet.New(scfg, edge)
	g := NewGroup()
	bgs := make([]*Background, len(draws))
	for i, d := range draws {
		b := NewBackground(d.cfg, net)
		b.SetStartAt(d.startAt)
		b.SetAccessLink(net.NewAccessLink(d.trace))
		if err := g.AddBackground(b); err != nil {
			t.Fatal(err)
		}
		bgs[i] = b
	}
	g.Run()
	out := make([]Summary, len(bgs))
	for i, b := range bgs {
		out[i] = cloneSummary(*b.Summary())
	}
	return out
}

// runAsCohort executes the same draws as one Cohort and returns the
// member Summaries in member order.
func runAsCohort(t *testing.T, scfg simnet.Config, edge *netem.Profile, draws []bgDraw) []Summary {
	t.Helper()
	net := simnet.New(scfg, edge)
	g := NewGroup()
	c := NewCohort(net)
	for _, d := range draws {
		i := c.Add(d.cfg)
		c.SetStartAt(i, d.startAt)
		c.SetAccessLink(i, net.NewAccessLink(d.trace))
	}
	if err := g.AddCohort(c); err != nil {
		t.Fatal(err)
	}
	g.Run()
	out := make([]Summary, c.Len())
	for i := range out {
		out[i] = cloneSummary(c.MemberSummary(i))
	}
	return out
}

// compareSummaries requires byte-identical member digests.
func compareSummaries(t *testing.T, ref, got []Summary) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("member count: %d backgrounds vs %d cohort members", len(ref), len(got))
	}
	for i := range ref {
		if !reflect.DeepEqual(ref[i], got[i]) {
			t.Errorf("member %d diverged:\n background: %+v\n cohort:     %+v", i, ref[i], got[i])
		}
	}
}

// TestCohortMatchesBackgrounds is the core differential sweep: seeds ×
// contention levels (edge budgets from starved to ample), stepped edge
// profiles, cellular access traces, mixed service templates. Every
// member's Summary must be byte-identical between the per-session and
// the vectorized run.
func TestCohortMatchesBackgrounds(t *testing.T) {
	for _, edge := range []struct {
		name string
		mbps float64
	}{{"tight", 2}, {"medium", 10}, {"loose", 60}} {
		for seed := int64(0); seed < 9; seed++ {
			seed := seed
			mbps := edge.mbps
			t.Run(fmt.Sprintf("%s/seed%d", edge.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				draws := drawBackgrounds(rng, 3+rng.Intn(10), false)
				p := steppedEdge(rng, mbps, 200)
				ref := runAsBackgrounds(t, simnet.DefaultConfig(), p, draws)
				got := runAsCohort(t, simnet.DefaultConfig(), p, draws)
				compareSummaries(t, ref, got)
			})
		}
	}
}

// TestCohortMatchesBackgroundsCellEngine repeats the differential sweep
// with the simnet cell engine underneath — the exact configuration the
// fleet runs — so the cohort and the anchored-flow engine are proven to
// compose bit-exactly.
func TestCohortMatchesBackgroundsCellEngine(t *testing.T) {
	scfg := simnet.DefaultConfig()
	scfg.Engine = simnet.EngineCell
	for seed := int64(20); seed < 32; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			draws := drawBackgrounds(rng, 3+rng.Intn(10), false)
			p := steppedEdge(rng, 3+rng.Float64()*30, 200)
			ref := runAsBackgrounds(t, scfg, p, draws)
			got := runAsCohort(t, scfg, p, draws)
			compareSummaries(t, ref, got)
		})
	}
}

// TestCohortMixedWithSessions interleaves full player sessions with the
// background tier — the fleet cell layout — and requires both the
// sessions' Summaries and the background members' Summaries to be
// byte-identical whether the backgrounds run individually or as one
// cohort. The full sessions double as witnesses: if the cohort
// perturbed the shared network in any way, their byte streams would
// shift.
func TestCohortMixedWithSessions(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	for seed := int64(40); seed < 48; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			draws := drawBackgrounds(rng, 4+rng.Intn(8), true)
			p := steppedEdge(rng, 4+rng.Float64()*20, 400)

			run := func(vectorized bool) ([]Summary, []Summary) {
				net := simnet.New(simnet.DefaultConfig(), p)
				g := NewGroup()
				var sessions []*Session
				var bgs []*Background
				c := NewCohort(net)
				for _, d := range draws {
					if d.full {
						s, err := NewSession(baseConfig(), org, net)
						if err != nil {
							t.Fatal(err)
						}
						s.SetLean()
						s.SetStartAt(d.startAt)
						s.SetAccessLink(net.NewAccessLink(d.trace))
						if err := g.Add(s); err != nil {
							t.Fatal(err)
						}
						sessions = append(sessions, s)
						continue
					}
					if vectorized {
						i := c.Add(d.cfg)
						c.SetStartAt(i, d.startAt)
						c.SetAccessLink(i, net.NewAccessLink(d.trace))
					} else {
						b := NewBackground(d.cfg, net)
						b.SetStartAt(d.startAt)
						b.SetAccessLink(net.NewAccessLink(d.trace))
						if err := g.AddBackground(b); err != nil {
							t.Fatal(err)
						}
						bgs = append(bgs, b)
					}
				}
				if vectorized && c.Len() > 0 {
					if err := g.AddCohort(c); err != nil {
						t.Fatal(err)
					}
				}
				g.Run()
				var sessSums, bgSums []Summary
				for _, s := range sessions {
					sessSums = append(sessSums, cloneSummary(*s.Summary()))
				}
				if vectorized {
					for i := 0; i < c.Len(); i++ {
						bgSums = append(bgSums, cloneSummary(c.MemberSummary(i)))
					}
				} else {
					for _, b := range bgs {
						bgSums = append(bgSums, cloneSummary(*b.Summary()))
					}
				}
				return sessSums, bgSums
			}

			refSess, refBg := run(false)
			gotSess, gotBg := run(true)
			compareSummaries(t, refSess, gotSess)
			compareSummaries(t, refBg, gotBg)
		})
	}
}

// TestCohortObserverStreaming pins the observer contract: called
// exactly once per member, with a scratch Summary equal to the member's
// final digest.
func TestCohortObserverStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	draws := drawBackgrounds(rng, 8, false)
	p := steppedEdge(rng, 8, 200)
	net := simnet.New(simnet.DefaultConfig(), p)
	g := NewGroup()
	c := NewCohort(net)
	for _, d := range draws {
		i := c.Add(d.cfg)
		c.SetStartAt(i, d.startAt)
		c.SetAccessLink(i, net.NewAccessLink(d.trace))
	}
	seen := make(map[int]Summary)
	c.SetObserver(func(i int, s *Summary) {
		if _, dup := seen[i]; dup {
			t.Errorf("observer called twice for member %d", i)
		}
		seen[i] = cloneSummary(*s)
	})
	if err := g.AddCohort(c); err != nil {
		t.Fatal(err)
	}
	g.Run()
	if len(seen) != c.Len() {
		t.Fatalf("observer saw %d members, want %d", len(seen), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if want := cloneSummary(c.MemberSummary(i)); !reflect.DeepEqual(seen[i], want) {
			t.Errorf("member %d: observed %+v, final %+v", i, seen[i], want)
		}
	}
}

// TestCohortRejectsLateAdd pins the freeze contract: a cohort cannot
// grow after joining a group.
func TestCohortRejectsLateAdd(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 1e6, 60))
	g := NewGroup()
	c := NewCohort(net)
	c.Add(BackgroundConfig{Declared: []float64{1e5}, SegmentDuration: 4, MediaDuration: 20})
	if err := g.AddCohort(c); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add after AddCohort did not panic")
		}
	}()
	c.Add(BackgroundConfig{Declared: []float64{1e5}, SegmentDuration: 4, MediaDuration: 20})
}

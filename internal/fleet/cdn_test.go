package fleet

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/cdn"
	schedpkg "repro/internal/sched"
)

// cdnCfg is the cache-enabled sibling of stealCfg: small enough to run
// in CI, with a metro tier so the shard-coupled path is exercised and
// a cold cell plus a failure so neither scenario path is dead code.
var cdnCfg = Config{
	Seed: 5, Sessions: 160, ArrivalWindowSec: 120, WatchSec: 30,
	ClientsPerCell: 2, FidelityFull: 0.6,
	Services: []string{"H1", "D2", "S1"},
	Cache: &cdn.CacheConfig{
		EdgeBytes:  32 << 20,
		MetroBytes: 512 << 20,
		TTLSec:     3600,
		ColdCells:  "2-5",
		FailCell:   0,
		FailAtSec:  60,
	},
}

// TestCacheDisabledIdentity is the tentpole determinism gate: a nil
// cache config and a transparent one (unlimited warm caches, no TTL)
// must both produce byte-identical reports — the transparent config
// normalizes away entirely, including the config echo and the report's
// cdn section.
func TestCacheDisabledIdentity(t *testing.T) {
	base := stealCfg
	off := fleetBytes(t, base, RunOptions{Workers: 2})

	transparent := base
	transparent.Cache = &cdn.CacheConfig{EdgeBytes: 0, TTLSec: 0, MetroBytes: -1}
	inf := fleetBytes(t, transparent, RunOptions{Workers: 2})
	if !bytes.Equal(off, inf) {
		t.Fatalf("transparent cache changed the report bytes (%d B vs %d B)", len(off), len(inf))
	}

	ncfg, err := transparent.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if ncfg.Cache != nil {
		t.Fatal("transparent cache config survived normalization")
	}
}

// TestCacheWorkersDeterminism: with the full cache tier on (edge +
// metro + cold cells + failure), the report bytes must be identical
// for any worker count and steal schedule — the metro cache is shard
// state folded in strict cell order, so the schedule cannot reach it.
func TestCacheWorkersDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	withSched(t, 8)
	serial := fleetBytes(t, cdnCfg, RunOptions{Workers: 1})
	parallel := fleetBytes(t, cdnCfg, RunOptions{Workers: 8})
	hog := fleetBytes(t, cdnCfg, RunOptions{Workers: 4, Steal: schedpkg.StealOptions{Hog: true}})
	noSteal := fleetBytes(t, cdnCfg, RunOptions{Workers: 4, Steal: schedpkg.StealOptions{DisableSteal: true}})
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("cache on: bytes differ between workers=1 (%d B) and workers=8 (%d B)", len(serial), len(parallel))
	}
	if !bytes.Equal(serial, hog) {
		t.Fatalf("cache on: steal-heavy schedule changed the bytes (%d B vs %d B)", len(serial), len(hog))
	}
	if !bytes.Equal(serial, noSteal) {
		t.Fatalf("cache on: steal-free schedule changed the bytes (%d B vs %d B)", len(serial), len(noSteal))
	}
}

// TestCacheReportSection: a cache-enabled run reports the cdn section
// with coherent accounting; a disabled run omits it.
func TestCacheReportSection(t *testing.T) {
	rep, err := RunWithOptions(context.Background(), cdnCfg, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.CDN
	if c == nil {
		t.Fatal("cache-enabled run has no cdn report section")
	}
	if c.EdgeHits+c.EdgeMisses == 0 {
		t.Fatal("no media requests classified")
	}
	if c.HitRatio < 0 || c.HitRatio > 1 {
		t.Fatalf("hit ratio %.3f out of range", c.HitRatio)
	}
	if c.OriginBytes > c.BackhaulBytes+1e-6 {
		t.Fatalf("origin bytes %.0f exceed backhaul bytes %.0f", c.OriginBytes, c.BackhaulBytes)
	}
	if want := c.HitBytes + c.BackhaulBytes - c.OriginBytes; c.OriginOffloadBytes != want {
		t.Fatalf("offload bytes %.0f, want %.0f", c.OriginOffloadBytes, want)
	}
	if c.CellHitRatio.Count != int64(rep.Cells) {
		t.Fatalf("cell hit-ratio samples %d, want one per cell (%d)", c.CellHitRatio.Count, rep.Cells)
	}
	var bucketCells int64
	for _, b := range c.Buckets {
		bucketCells += b.Cells
	}
	if bucketCells > int64(rep.Cells) {
		t.Fatalf("buckets cover %d cells, fleet has %d", bucketCells, rep.Cells)
	}

	off, err := RunWithOptions(context.Background(), stealCfg, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if off.CDN != nil {
		t.Fatal("cache-disabled run reports a cdn section")
	}
}

// TestCacheColdCellsMiss: cold cells must show a strictly lower hit
// ratio than the same warm cells — the scenario is not a no-op.
func TestCacheColdCellsMiss(t *testing.T) {
	warm := cdnCfg
	warm.Cache = &cdn.CacheConfig{EdgeBytes: 256 << 20, TTLSec: 3600}
	cold := warm
	cc := *warm.Cache
	cc.ColdCells = "0-1000" // every cell cold
	cold.Cache = &cc
	wrep, err := RunWithOptions(context.Background(), warm, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	crep, err := RunWithOptions(context.Background(), cold, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if crep.CDN.HitRatio >= wrep.CDN.HitRatio {
		t.Fatalf("cold fleet hit ratio %.3f not below warm %.3f", crep.CDN.HitRatio, wrep.CDN.HitRatio)
	}
}

// TestCacheCellCacheKey: the sweep cell-cache must key on the cache
// config — two runs differing only in cache settings can never share
// cell entries — while metro-coupled cells bypass the memo entirely.
func TestCacheCellCacheKey(t *testing.T) {
	cc := NewCellCache()
	edgeOnly := cdnCfg
	edgeOnly.Cache = &cdn.CacheConfig{EdgeBytes: 32 << 20, TTLSec: 3600}
	a := fleetBytes(t, edgeOnly, RunOptions{Workers: 2, CellCache: cc})
	bigger := edgeOnly
	bigger.Cache = &cdn.CacheConfig{EdgeBytes: 256 << 20, TTLSec: 3600}
	b := fleetBytes(t, bigger, RunOptions{Workers: 2, CellCache: cc})
	if bytes.Equal(a, b) {
		t.Fatal("different edge capacities produced identical reports; key too coarse or stale cells served")
	}
	// Replays must still hit warm.
	before := cc.Stats()
	a2 := fleetBytes(t, edgeOnly, RunOptions{Workers: 2, CellCache: cc})
	if !bytes.Equal(a, a2) {
		t.Fatal("warm replay changed the report bytes")
	}
	after := cc.Stats()
	if after.Builds != before.Builds {
		t.Fatalf("warm replay rebuilt %d cells", after.Builds-before.Builds)
	}

	// Metro tier on: every cell bypasses the memo (shard-coupled).
	mc := NewCellCache()
	fleetBytes(t, cdnCfg, RunOptions{Workers: 2, CellCache: mc})
	s := mc.Stats()
	if s.Builds != 0 || s.Hits != 0 {
		t.Fatalf("metro-coupled cells used the memo: %+v", s)
	}
	if s.Skipped == 0 {
		t.Fatal("metro-coupled cells not counted as skipped")
	}
}

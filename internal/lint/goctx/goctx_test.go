package goctx_test

import (
	"testing"

	"repro/internal/lint/goctx"
	"repro/internal/lint/linttest"
)

func TestGoCtx(t *testing.T) {
	linttest.Run(t, goctx.Analyzer, "a")
}

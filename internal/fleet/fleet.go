// Package fleet runs population-scale multi-client streaming
// simulations: the "cellular tower serving a city block" view the
// single-session lab cannot express. A seeded workload model draws a
// population of clients — arrival time, service model (one of the 12
// paper services), per-client cellular access trace (one of the 14),
// and an early-abandon watch duration — and partitions them into cells.
// Each cell is one shared edge link (a simnet.Network) carrying every
// member's traffic: a client's chunk downloads are visible to its
// neighbours as cross traffic, arbitrated max-min fairly, and each
// client is additionally capped by its own cellular access link
// (simnet.AccessLink), so the achieved rate is min(access budget, fair
// edge share).
//
// Cells are mutually independent, so they fan out across the
// process-wide scheduler (internal/sched, shared with the experiment
// engine). Determinism contract: the whole workload is drawn
// single-threaded from one seeded generator before any cell runs, each
// cell simulation is single-threaded, and cell aggregates are folded
// into the fleet report in strict cell-index order — so the JSON report
// is byte-identical for a given seed regardless of the worker count.
//
// Memory contract: per-session player.Results are never retained. Each
// cell folds every session into fixed-size streaming aggregates
// (fixed-bin histograms plus online mean/variance, see agg.go) the
// moment the session finishes, via the Group observer; cells are
// processed in bounded batches, so peak memory is O(workers · cell
// aggregate), independent of the session count.
package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/expcache"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/qoe"
	schedpkg "repro/internal/sched"
	"repro/internal/services"
	"repro/internal/simnet"
)

// sched is this package's reference to the process-wide scheduler.
// Tests swap it to control parallelism independently of the machine's
// core count.
var sched = schedpkg.Global

// Config parameterises a fleet run. Every field is plain data, so the
// whole config is fingerprintable (expcache) and a normalized config
// fully determines the report bytes. The worker count is deliberately
// NOT part of the config: it must never influence the output.
type Config struct {
	// Seed drives every random draw of the workload model.
	Seed int64
	// Sessions is the population size.
	Sessions int
	// ArrivalWindowSec spreads arrivals over [0, window): a Poisson
	// process conditioned on Sessions arrivals is exactly Sessions iid
	// uniforms, sorted. Default 600.
	ArrivalWindowSec float64
	// WatchSec is the full watch duration of a non-abandoning viewer.
	// Default 120.
	WatchSec float64
	// AbandonProb is the probability a viewer abandons early (the
	// paper's short-session reality); the abandoning viewer watches an
	// exponential duration with mean AbandonMeanSec, clamped to
	// [5, WatchSec]. Zero selects the default 0.35; negative disables
	// abandonment. Default mean 45.
	AbandonProb    float64
	AbandonMeanSec float64
	// ClientsPerCell sets how many clients share one edge link.
	// Default 24.
	ClientsPerCell int
	// EdgeMbps is the shared edge budget per cell in Mbit/s. Default 40.
	EdgeMbps float64
	// Services is the session mix: each session draws uniformly from
	// this list (paper names, e.g. "H1"; duplicates weight the mix).
	// Empty means all 12 service models.
	Services []string
}

// Normalized fills every default; the normalized config is what the
// report echoes and what RunCached fingerprints.
func (c Config) Normalized() (Config, error) {
	if c.Sessions <= 0 {
		return c, fmt.Errorf("fleet: Sessions must be positive")
	}
	if c.ArrivalWindowSec <= 0 {
		c.ArrivalWindowSec = 600
	}
	if c.WatchSec <= 0 {
		c.WatchSec = 120
	}
	switch {
	case c.AbandonProb == 0:
		c.AbandonProb = 0.35
	case c.AbandonProb < 0:
		c.AbandonProb = 0
	case c.AbandonProb > 1:
		c.AbandonProb = 1
	}
	if c.AbandonMeanSec <= 0 {
		c.AbandonMeanSec = 45
	}
	if c.ClientsPerCell <= 0 {
		c.ClientsPerCell = 24
	}
	if c.EdgeMbps <= 0 {
		c.EdgeMbps = 40
	}
	if len(c.Services) == 0 {
		all := services.All()
		names := make([]string, len(all))
		for i, s := range all {
			names[i] = s.Name
		}
		c.Services = names
	} else {
		c.Services = append([]string(nil), c.Services...)
	}
	for _, name := range c.Services {
		if services.ByName(name) == nil {
			return c, fmt.Errorf("fleet: unknown service %q", name)
		}
	}
	return c, nil
}

// Client is one drawn population member.
type Client struct {
	// Arrival is the session start on the fleet clock (seconds).
	Arrival float64
	// Watch is the viewing duration (the session's duration budget).
	Watch float64
	// Service indexes Config.Services.
	Service int
	// Trace is the cellular access profile, 1..netem.CellularCount.
	Trace int
}

// Workload draws the full population from the seed: arrivals (sorted
// uniforms over the window), then per-client service, access trace and
// watch duration. Single-threaded on purpose — the draw order is part
// of the determinism contract. The config must be normalized.
func Workload(cfg Config) []Client {
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := make([]float64, cfg.Sessions)
	for i := range arrivals {
		arrivals[i] = rng.Float64() * cfg.ArrivalWindowSec
	}
	sort.Float64s(arrivals)
	clients := make([]Client, cfg.Sessions)
	for i := range clients {
		watch := cfg.WatchSec
		if rng.Float64() < cfg.AbandonProb {
			watch = math.Min(cfg.WatchSec, math.Max(5, rng.ExpFloat64()*cfg.AbandonMeanSec))
		}
		clients[i] = Client{
			Arrival: arrivals[i],
			Watch:   watch,
			Service: rng.Intn(len(cfg.Services)),
			Trace:   1 + rng.Intn(netem.CellularCount),
		}
	}
	return clients
}

// Run executes the fleet and reduces it to a population Report. workers
// bounds the cell fan-out (0 or negative = scheduler capacity); the
// effective parallelism is additionally bounded by the process-wide
// scheduler, and the report bytes never depend on it.
func Run(ctx context.Context, cfg Config, workers int) (*Report, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	svcs := make([]*services.Service, len(cfg.Services))
	origins := make([]*origin.Origin, len(cfg.Services))
	for i, name := range cfg.Services {
		svcs[i] = services.ByName(name)
		if origins[i], err = expcache.Origin(svcs[i]); err != nil {
			return nil, fmt.Errorf("fleet: origin for %s: %w", name, err)
		}
	}
	traces := netem.CellularSet()
	clients := Workload(cfg)

	nCells := (cfg.Sessions + cfg.ClientsPerCell - 1) / cfg.ClientsPerCell
	cells := make([][]Client, nCells)
	// Round-robin over arrival-sorted clients: every cell sees arrivals
	// spread across the whole window (a stationary load), instead of one
	// cell absorbing a burst of simultaneous joins.
	for i, c := range clients {
		cells[i%nCells] = append(cells[i%nCells], c)
	}

	if workers <= 0 {
		workers = sched.Capacity()
	}
	agg := newFleetAgg(len(svcs))
	// Bounded batches: cells fan out within a batch, and batches fold in
	// strict cell order, so peak memory is O(batch) cell aggregates while
	// the merge sequence — and with it every float in the report — is
	// identical for any worker count (batch boundaries only group the
	// same in-order merges).
	batch := 2 * workers
	if batch < 8 {
		batch = 8
	}
	for lo := 0; lo < nCells; lo += batch {
		hi := lo + batch
		if hi > nCells {
			hi = nCells
		}
		outs := make([]*cellAgg, hi-lo)
		err := forEach(ctx, hi-lo, workers, func(k int) error {
			ca, err := runCell(cfg, svcs, origins, traces, cells[lo+k])
			if err != nil {
				return err
			}
			outs[k] = ca
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, ca := range outs {
			agg.merge(ca)
		}
	}
	return agg.report(cfg, nCells), nil
}

// memo caches fleet reports by config fingerprint for the lifetime of
// the process (a vodfleet sweep or a test re-running the same config
// pays the simulation once).
var memo expcache.Memo[expcache.Key, *Report]

// RunCached is the memoized counterpart of Run: reports are
// content-addressed by the fingerprint of the normalized config (the
// worker count is not part of the key — it cannot change the bytes).
// Configs that somehow fail to fingerprint fall back to an uncached Run.
func RunCached(ctx context.Context, cfg Config, workers int) (*Report, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	key, err := expcache.Fingerprint("fleet", expcache.EngineVersion, ncfg)
	if err != nil {
		return Run(ctx, cfg, workers) // unreachable for plain-data configs
	}
	return memo.Get(key, func() (*Report, error) {
		return Run(ctx, ncfg, workers)
	})
}

// forEach fans fn out over indices 0..n-1 with at most `workers`
// concurrent executions, each helper gated by a non-blocking slot from
// the process-wide scheduler (the caller works inline under its own
// slot, so nested fan-out cannot deadlock — same contract as the
// experiment engine's sweep). The smallest-index error wins; cancelling
// ctx stops new indices.
func forEach(ctx context.Context, n, workers int, fn func(int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		errMu    sync.Mutex
		errIdx   = n
		firstErr error
	)
	record := func(i int, err error) {
		errMu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
		cancel()
	}
	work := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				record(i, err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	spawn := workers - 1
	if spawn > n-1 {
		spawn = n - 1
	}
	for s := 0; s < spawn && sched.TryAcquire(); s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sched.Release()
			work()
		}()
	}
	work()
	wg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return err
	}
	return parent.Err()
}

// runCell simulates one cell: every member session over one shared edge
// link, each behind its own cellular access link, folded into the
// cell's streaming aggregates as it finishes. The cell is strictly
// single-threaded and deterministic.
func runCell(cfg Config, svcs []*services.Service, origins []*origin.Origin, traces []*netem.Profile, members []Client) (*cellAgg, error) {
	horizon := 0.0
	for _, m := range members {
		if e := m.Arrival + m.Watch; e > horizon {
			horizon = e
		}
	}
	edge := netem.Constant("edge", cfg.EdgeMbps*1e6, horizon+1)
	net := simnet.New(simnet.DefaultConfig(), edge)

	agg := newCellAgg(len(svcs))
	meta := make(map[*player.Session]Client, len(members))
	g := player.NewGroup()
	g.SetObserver(func(s *player.Session, r *player.Result) {
		agg.observe(meta[s].Service, qoe.FromResult(r))
	})
	for _, m := range members {
		svc := svcs[m.Service]
		pcfg := services.Resolve(svc.Player, m.Watch, nil)
		sess, err := player.NewSession(pcfg, origins[m.Service], net)
		if err != nil {
			return nil, fmt.Errorf("fleet: %s session: %w", svc.Name, err)
		}
		sess.SetStartAt(m.Arrival)
		sess.SetAccessLink(net.NewAccessLink(traces[m.Trace-1]))
		if err := g.Add(sess); err != nil {
			return nil, err
		}
		meta[sess] = m
	}
	g.Run()
	agg.finishCell(net.Delivered(), edge.Integral(0, net.Now()))
	return agg, nil
}

package adaptation

import "testing"

func TestFestiveGradualUpswitch(t *testing.T) {
	f := NewFestive()
	// Huge estimate: the reference rung is the top, but FESTIVE climbs
	// one rung at a time, needing rung+1 agreeing decisions per step.
	c := ctx(100e6, 30, 0)
	steps := []int{}
	track := 0
	for i := 0; i < 12; i++ {
		c.LastTrack = track
		track = f.Select(c)
		steps = append(steps, track)
	}
	// Never jumps more than one rung.
	prev := 0
	for i, tr := range steps {
		if tr > prev+1 {
			t.Fatalf("step %d jumped %d→%d", i, prev, tr)
		}
		prev = tr
	}
	if track != 3 {
		t.Fatalf("never reached the top: %v", steps)
	}
}

func TestFestiveImmediateDownswitch(t *testing.T) {
	f := NewFestive()
	c := ctx(100e3, 30, 3)
	if got := f.Select(c); got != 2 {
		t.Fatalf("down-switch got %d, want 2 (one rung)", got)
	}
}

func TestFestiveStartup(t *testing.T) {
	f := NewFestive()
	if got := f.Select(ctx(0, 0, -1)); got != 1 {
		t.Fatalf("startup track got %d", got)
	}
}

func TestProbeAdaptHoldsOnSteadyBuffer(t *testing.T) {
	a := ProbeAdapt{}
	c := ctx(2e6, 20, 1)
	c.BufferTrend = 0.1
	if got := a.Select(c); got != 1 {
		t.Fatalf("steady buffer should hold, got %d", got)
	}
}

func TestProbeAdaptProbesUpOnGrowth(t *testing.T) {
	a := ProbeAdapt{}
	c := ctx(2e6, 20, 1)
	c.BufferTrend = 2
	if got := a.Select(c); got != 2 {
		t.Fatalf("growing buffer should probe up, got %d", got)
	}
	// But not with a thin buffer.
	c.BufferSec = 5
	if got := a.Select(c); got != 1 {
		t.Fatalf("thin buffer should not probe, got %d", got)
	}
	// And not into a rung that clearly exceeds the link.
	c.BufferSec = 20
	c.EstimateBps = 400e3 // next rung declared 1.2M > 1.2×0.4M
	if got := a.Select(c); got != 1 {
		t.Fatalf("over-capacity probe not suppressed, got %d", got)
	}
}

func TestProbeAdaptStepsDownOnDrain(t *testing.T) {
	a := ProbeAdapt{}
	c := ctx(2e6, 10, 2)
	c.BufferTrend = -3
	if got := a.Select(c); got != 1 {
		t.Fatalf("draining buffer should step down, got %d", got)
	}
}

func TestBaselineNames(t *testing.T) {
	if NewFestive().Name() == "" || (ProbeAdapt{}).Name() == "" {
		t.Fatal("empty names")
	}
}

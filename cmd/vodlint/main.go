// Command vodlint runs the repository's determinism-contract analyzers
// (simclock, seededrand, maprange, floateq, bpsunits) over the module.
//
// Standalone mode loads and type-checks every package of the module
// rooted at the named directory (default ".") without the go tool:
//
//	vodlint            # lint the module at .
//	vodlint -only simclock,maprange /path/to/module
//
// It also speaks the go vet vettool protocol, so the same binary plugs
// into the build cache-aware driver:
//
//	go build -o bin/vodlint ./cmd/vodlint
//	go vet -vettool=$PWD/bin/vodlint ./...
//
// In that mode the go command hands the tool a JSON config per package
// (files, import map, export data) and the tool type-checks against gc
// export data instead of source.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/bpsunits"
	"repro/internal/lint/floateq"
	"repro/internal/lint/maprange"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/simclock"
)

var all = []*lint.Analyzer{
	simclock.Analyzer,
	seededrand.Analyzer,
	maprange.Analyzer,
	floateq.Analyzer,
	bpsunits.Analyzer,
}

func main() {
	var (
		versionFlag = flag.String("V", "", "print version (go vet toolID handshake; use -V=full)")
		only        = flag.String("only", "", "comma-separated subset of analyzers to run")
		list        = flag.Bool("list", false, "list analyzers and exit")
		flagsFlag   = flag.Bool("flags", false, "print flag descriptions in JSON (go vet handshake)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vodlint [-only a,b] [module-dir]\n   or: go vet -vettool=$(command -v vodlint) ./...\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		os.Exit(2)
	}

	// go vet invokes the tool with a single *.cfg argument.
	if args := flag.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		dir = args[0]
	}
	os.Exit(standalone(dir, analyzers))
}

// selectAnalyzers resolves the -only subset.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standalone lints a whole module via the source loader.
func standalone(dir string, analyzers []*lint.Analyzer) int {
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		// The lint framework does not police itself or its fixtures:
		// analyzer testdata is full of deliberate violations.
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodlint:", err)
			return 2
		}
		for _, d := range diags {
			rel := d
			if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
			exit = 1
		}
	}
	return exit
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// printFlags implements the -flags handshake: the go command queries the
// vettool for its flag set as a JSON array so it can accept those flags
// on its own command line and forward them.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "only", Bool: false, Usage: "comma-separated subset of analyzers to run"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		os.Exit(2)
	}
	fmt.Println(string(data))
}

// printVersion implements the -V=full handshake: the go command hashes
// this line into its build cache key, so it embeds a content hash of
// the executable — rebuilding vodlint invalidates cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("vodlint version v1-%s\n", id)
}

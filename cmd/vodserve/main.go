// Command vodserve generates one of the service models' presentations and
// serves it over real HTTP — manifests (HLS playlists / DASH MPD with
// sidx / SmoothStreaming) plus synthetic media payloads with Range and
// HEAD support. Point any HAS client (or cmd/vodplay's HTTP sibling in
// examples/realhttp) at it.
//
// Usage:
//
//	vodserve -service H1 -addr :8080
//	curl http://localhost:8080/h1/master.m3u8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/services"
)

func main() {
	name := flag.String("service", "H1", "service model whose content to serve")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	svc := services.ByName(*name)
	if svc == nil {
		fmt.Fprintf(os.Stderr, "vodserve: unknown service %q\n", *name)
		os.Exit(2)
	}
	org, err := svc.Origin()
	if err != nil {
		log.Fatalf("vodserve: %v", err)
	}
	log.Printf("serving %s (%s) on %s — manifest at %s", svc.Name, svc.Build.Protocol, *addr, org.Pres.ManifestURL())
	log.Fatal(http.ListenAndServe(*addr, org))
}

// Sr_study walks through the paper's §4.1 segment-replacement story on a
// single player: no SR, the harmful contiguous-on-upswitch scheme
// (H4 / ExoPlayer v1), the improved per-segment scheme, and the
// data-saving capped variant — comparing quality gained against data
// burned on every cellular profile.
package main

import (
	"fmt"
	"log"

	vod "repro"
	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/player"
	"repro/internal/replacement"
	"repro/internal/textplot"
)

func main() {
	video, err := vod.GenerateVideo(vod.MediaConfig{
		Name: "srdemo", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3, 800e3, 1.5e6, 2.8e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	org, err := vod.NewOrigin(vod.BuildManifest(video, vod.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		log.Fatal(err)
	}

	base := vod.PlayerConfig{
		Name: "sr-study", StartupBufferSec: 8, StartupSegments: 2, StartupTrack: 1,
		PauseThresholdSec: 60, ResumeThresholdSec: 45,
		MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
		Algorithm: adaptation.DefaultHysteresis(),
	}

	policies := []struct {
		name string
		mut  func(*vod.PlayerConfig)
	}{
		{"no SR", func(c *vod.PlayerConfig) {}},
		{"contiguous on up-switch (H4-style)", func(c *vod.PlayerConfig) {
			c.Replacement = replacement.ContiguousOnUpswitch{IgnoreBufferedQuality: true}
		}},
		{"per-segment, improve-only", func(c *vod.PlayerConfig) {
			c.Replacement = replacement.PerSegment{MinBufferSec: 30, CapTrack: -1}
			c.MidBufferDiscard = true
		}},
		{"per-segment, capped at rung 3", func(c *vod.PlayerConfig) {
			c.Replacement = replacement.PerSegment{MinBufferSec: 30, CapTrack: 2}
			c.MidBufferDiscard = true
		}},
	}

	t := &textplot.Table{
		Title:  "Segment replacement policies over the 14 cellular profiles (medians)",
		Header: []string{"policy", "avg kbit/s", "stall s", "data MB", "waste MB", "low-track time"},
	}
	for _, pol := range policies {
		var rate, stall, data, waste, low []float64
		for i := 1; i <= 14; i++ {
			cfg := base
			pol.mut(&cfg)
			res, err := vod.Stream(cfg, org, vod.CellularProfile(i), 600)
			if err != nil {
				log.Fatal(err)
			}
			rep := vod.QoE(res)
			rate = append(rate, rep.AvgBitrate)
			stall = append(stall, rep.StallSec)
			data = append(data, rep.DataUsageBytes)
			waste = append(waste, rep.WastedBytes)
			low = append(low, rep.PctTimeBelow(res.Declared, 800e3))
		}
		t.AddRow(pol.name,
			fmt.Sprintf("%.0f", textplot.Median(rate)/1e3),
			fmt.Sprintf("%.1f", textplot.Median(stall)),
			fmt.Sprintf("%.1f", textplot.Median(data)/1e6),
			fmt.Sprintf("%.1f", textplot.Median(waste)/1e6),
			textplot.Pct(textplot.Median(low)),
		)
	}
	fmt.Println(t.String())
	fmt.Println("The per-segment scheme buys its quality with extra data; the capped")
	fmt.Println("variant keeps most of the low-track reduction at a fraction of the waste.")
}

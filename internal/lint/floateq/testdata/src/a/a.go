package a

import "math"

const eps = 1e-9

func bad(a, b float64, f float32) bool {
	if a == b { // want `== between floats is exact to the last ulp`
		return true
	}
	if f != 0.5 { // want `!= between floats is exact`
		return true
	}
	return a*2 == b+1 // want `== between floats is exact`
}

func good(a, b float64, n, m int) bool {
	if math.Abs(a-b) <= eps { // tolerance comparison: the fix
		return true
	}
	if a < b || a >= b { // ordered comparisons are fine
		return true
	}
	if n == m { // integers compare exactly
		return true
	}
	const x, y = 1.5, 2.5
	return x == y // both constant: folded at compile time
}

func sentinel(v, limit float64) bool {
	// Integral-constant sentinels are exempt: stored 0/-1/120 markers
	// round-trip assignment bit-exactly.
	if v == 0 || v != -1 || v == 120 {
		return true
	}
	return limit == 0
}

func tiebreak(a, b float64) bool {
	// Intentionally exact comparisons of stored (not computed) values
	// are declared with the directive.
	return a == b //vodlint:allow floateq — sort tie-break on stored values
}

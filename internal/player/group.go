package player

import (
	"fmt"
	"math"

	"repro/internal/simnet"
)

// Group coordinates several sessions over one shared simulated network —
// the "multiple clients behind one cellular link" scenario that fairness
// studies like FESTIVE (cited in §5) target, and the building block of a
// fleet cell. Sessions start at t=0 unless scheduled later with
// Session.SetStartAt, and each runs for its own SessionDuration from its
// start; the fluid network arbitrates their transfers max-min fairly.
// A cell may also carry Background flows — the coarse analytic session
// tier — which compete for the same links as full sessions.
//
// A single session's Run is the one-member special case of a Group.
type Group struct {
	net         *simnet.Network
	sessions    []*Session
	backgrounds []*Background
	cohorts     []*Cohort
	observer    func(*Session, *Result)
	bgObserver  func(*Background)
}

// NewGroup creates a coordinator; sessions added to it must share one
// simnet.Network.
func NewGroup() *Group { return &Group{} }

// Add registers a session. Every member must have been created over the
// same simnet.Network.
func (g *Group) Add(s *Session) error {
	if g.net == nil {
		g.net = s.net
	} else if g.net != s.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	s.ensureResult()
	g.sessions = append(g.sessions, s)
	return nil
}

// AddBackground registers a background flow over the same network.
func (g *Group) AddBackground(b *Background) error {
	if g.net == nil {
		g.net = b.net
	} else if g.net != b.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	g.backgrounds = append(g.backgrounds, b)
	return nil
}

// AddCohort registers a vectorized background cohort over the same
// network. The cohort occupies one group member slot; its members are
// scheduled by the cohort's internal deadline heap in ascending index
// order — the same order individual Backgrounds added after all full
// sessions would run in.
func (g *Group) AddCohort(c *Cohort) error {
	if c.Len() == 0 {
		return fmt.Errorf("player: cohort has no members")
	}
	if g.net == nil {
		g.net = c.net
	} else if g.net != c.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	c.freeze()
	g.cohorts = append(g.cohorts, c)
	return nil
}

// SetObserver registers fn, called exactly once per session as it
// finishes (finish order, which is deterministic). When an observer is
// set, Run returns nil and each session's Result is released right
// after its callback returns — the memory-bounded streaming mode
// population runs use: the caller folds the Result into its aggregates
// and must not retain it. Lean sessions reach the observer with a nil
// Result; their Summary is the output.
func (g *Group) SetObserver(fn func(*Session, *Result)) { g.observer = fn }

// SetBackgroundObserver registers fn, called exactly once per background
// flow as it finishes.
func (g *Group) SetBackgroundObserver(fn func(*Background)) { g.bgObserver = fn }

// groupHeap is an indexed min-heap of member ids keyed by each member's
// next wake time. pos maps a member id to its heap slot (-1 when
// absent), so re-keying a woken member is O(log M) without searching.
type groupHeap struct {
	key []float64
	id  []int
	pos []int
}

func (h *groupHeap) init(m int) {
	h.key = make([]float64, 0, m) //vodlint:allow hotalloc — per-run heap storage, amortized over the whole group run
	h.id = make([]int, 0, m)      //vodlint:allow hotalloc — per-run heap storage, amortized over the whole group run
	h.pos = make([]int, m)        //vodlint:allow hotalloc — per-run heap storage, amortized over the whole group run
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *groupHeap) len() int { return len(h.key) }

// minKey returns the earliest wake time, or +Inf when the heap is empty.
func (h *groupHeap) minKey() float64 {
	if len(h.key) == 0 {
		return math.Inf(1)
	}
	return h.key[0]
}

func (h *groupHeap) popMin() int {
	id := h.id[0]
	h.removeAt(0)
	return id
}

// set inserts id with key k, or re-keys it if already present.
func (h *groupHeap) set(id int, k float64) {
	if i := h.pos[id]; i >= 0 {
		h.key[i] = k
		if !h.up(i) {
			h.down(i)
		}
		return
	}
	h.key = append(h.key, k)
	h.id = append(h.id, id)
	h.pos[id] = len(h.key) - 1
	h.up(len(h.key) - 1)
}

// remove drops id if present (no-op otherwise).
func (h *groupHeap) remove(id int) {
	if i := h.pos[id]; i >= 0 {
		h.removeAt(i)
	}
}

func (h *groupHeap) removeAt(i int) {
	last := len(h.key) - 1
	h.pos[h.id[i]] = -1
	if i != last {
		h.key[i] = h.key[last]
		h.id[i] = h.id[last]
		h.pos[h.id[i]] = i
	}
	h.key = h.key[:last]
	h.id = h.id[:last]
	if i != last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

func (h *groupHeap) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if h.key[p] <= h.key[i] {
			break
		}
		h.swap(p, i)
		i = p
		moved = true
	}
	return moved
}

func (h *groupHeap) down(i int) {
	n := len(h.key)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.key[r] < h.key[l] {
			m = r
		}
		if h.key[i] <= h.key[m] {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *groupHeap) swap(i, j int) {
	h.key[i], h.key[j] = h.key[j], h.key[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
	h.pos[h.id[i]] = i
	h.pos[h.id[j]] = j
}

// Run drives every member to completion and returns the sessions'
// results in the order they were added (nil when an observer is set).
//
// The loop is lazy: instead of scanning and advancing every member on
// every event (O(M) per completed transfer, O(M²) per busy interval),
// members park in a deadline heap keyed by their own nextDeadline — an
// absolute prediction of the next time their control state can change
// without one of their downloads completing — and each iteration
// services only the woken set: members whose deadline arrived plus the
// owners of the transfers the network just completed. Everything a
// member does (playback advance, sample ticks, completion handling,
// request issue) happens at the same virtual times, in the same add
// order, as the eager scan produced; a single-member group degenerates
// to the exact eager call sequence, so Session.Run is unchanged
// observable-for-observable.
//
//vodlint:hotpath — lean-session event loop: one iteration per completed transfer
func (g *Group) Run() []*Result {
	nS := len(g.sessions)
	nB := len(g.backgrounds)
	nM := nS + nB + len(g.cohorts)
	if nM == 0 {
		return nil
	}
	net := g.net
	// Member ids: sessions in add order, then backgrounds in add order,
	// then cohorts (each one slot), so ascending id is exactly the eager
	// scan order.
	for i, s := range g.sessions {
		s.gidx = i
	}
	for j, b := range g.backgrounds {
		b.gidx = nS + j
	}
	for k, c := range g.cohorts {
		c.gidx = nS + nB + k
	}
	var h groupHeap
	h.init(nM)
	woken := make([]bool, nM)  //vodlint:allow hotalloc — per-run wake flags, amortized over the whole group run
	wake := make([]int, 0, nM) //vodlint:allow hotalloc — per-run wake list, amortized over the whole group run
	addWake := func(id int) {
		if !woken[id] {
			woken[id] = true
			wake = append(wake, id)
		}
	}
	for id := 0; id < nM; id++ {
		addWake(id) // first round: everyone is serviced once
	}
	remaining := nM
	for {
		// Service the woken members in add order: finish members past
		// their end, keep unarrived members parked at their start, and
		// let the rest issue requests and re-key their next deadline.
		// Every live member always holds a key ≤ its (finite) endAt.
		now := net.Now()
		for _, id := range wake {
			woken[id] = false
			if id < nS {
				s := g.sessions[id]
				if s.done {
					continue
				}
				if now < s.startAt-eps {
					h.set(id, s.startAt)
					continue
				}
				if now >= s.endAt()-eps || s.finished {
					g.finish(s)
					h.remove(id)
					remaining--
					continue
				}
				s.issueRequests()
				d := s.nextDeadline()
				if e := s.endAt(); e < d {
					d = e
				}
				h.set(id, d)
			} else if id < nS+nB {
				b := g.backgrounds[id-nS]
				if b.done {
					continue
				}
				if now < b.startAt-eps {
					h.set(id, b.startAt)
					continue
				}
				if now >= b.endAt()-eps || b.finished {
					g.finishBackground(b)
					h.remove(id)
					remaining--
					continue
				}
				b.issueRequests()
				d := b.nextDeadline(now)
				if e := b.endAt(); e < d {
					d = e
				}
				h.set(id, d)
			} else {
				// A cohort services its woken members internally (same
				// per-member steps as the background branch above) and
				// re-keys in the group heap at its earliest internal
				// deadline; it leaves `remaining` when its last member
				// finishes.
				c := g.cohorts[id-nS-nB]
				if c.live > 0 {
					c.service(now)
				}
				if c.live == 0 {
					if !c.retired {
						c.retired = true
						h.remove(id)
						remaining--
					}
				} else {
					h.set(id, c.minKey())
				}
			}
		}
		wake = wake[:0]
		if remaining == 0 {
			break
		}
		target := h.minKey()
		if math.IsInf(target, 1) {
			// Defensive: no timed wakeups left. With nothing in flight no
			// event can ever arrive — finish everyone at the current time.
			inflight := 0
			for _, s := range g.sessions {
				if !s.done {
					inflight += s.inflight
				}
			}
			for _, b := range g.backgrounds {
				if !b.done {
					inflight += b.inflight
				}
			}
			for _, c := range g.cohorts {
				inflight += c.inflightSum()
			}
			if inflight == 0 {
				for _, s := range g.sessions {
					if !s.done {
						g.finish(s)
					}
				}
				for _, b := range g.backgrounds {
					if !b.done {
						g.finishBackground(b)
					}
				}
				for _, c := range g.cohorts {
					c.finishAll()
				}
				break
			}
		}
		if target <= now+eps {
			target = now + 1e-6
		}
		completed := net.Step(target)
		tnow := net.Now()
		// Wake the members that are due at the new time plus the owners
		// of the completed transfers, then sort so the wake list is in
		// add order (insertion sort: batches are tiny and nearly sorted).
		for h.len() > 0 && h.minKey() <= tnow+eps {
			id := h.popMin()
			if id >= nS+nB {
				// The cohort's group key is its internal minimum, so at
				// least one member is due: move every due member onto
				// the cohort's own wake list.
				g.cohorts[id-nS-nB].wakeDue(tnow)
			}
			addWake(id)
		}
		for _, tr := range completed {
			switch m := tr.Meta.(type) {
			case *reqMeta:
				if m.owner != nil && !m.owner.done {
					addWake(m.owner.gidx)
				}
			case *Background:
				if !m.done {
					addWake(m.gidx)
				}
			case *cohortRef:
				if !m.c.memberDone(m.idx) {
					m.c.wakeMember(m.idx)
					addWake(m.c.gidx)
				}
			}
		}
		for i := 1; i < len(wake); i++ {
			for j := i; j > 0 && wake[j] < wake[j-1]; j-- {
				wake[j], wake[j-1] = wake[j-1], wake[j]
			}
		}
		// Sync the woken members' playback to the clock, then dispatch
		// completions in batch order — the same advance-then-complete
		// order the eager loop used. Parked members advance later, at
		// their next wake: advancePlayback is subdivision-invariant, and
		// their deadline keys are absolute times that stay valid while
		// their control state is untouched.
		for _, id := range wake {
			if id < nS {
				if s := g.sessions[id]; !s.done {
					s.advancePlayback(tnow)
				}
			} else if id < nS+nB {
				if b := g.backgrounds[id-nS]; !b.done {
					b.advancePlayback(tnow)
				}
			} else {
				g.cohorts[id-nS-nB].advanceWoken(tnow)
			}
		}
		for _, tr := range completed {
			switch m := tr.Meta.(type) {
			case *reqMeta:
				if m.owner != nil && !m.owner.done {
					m.owner.onComplete(tr)
				}
				// else: abandoned session; ignore the straggler
			case *Background:
				if !m.done {
					m.onComplete(tr)
				}
			case *cohortRef:
				if !m.c.memberDone(m.idx) {
					m.c.onComplete(m.idx, tr)
				}
			}
			net.Recycle(tr)
		}
	}
	if g.observer != nil {
		return nil
	}
	out := make([]*Result, len(g.sessions)) //vodlint:allow hotalloc — cold epilogue: runs once per group, only without an observer
	for i, s := range g.sessions {
		out[i] = s.res
	}
	return out
}

// finish finalizes a session once, notifies the observer, and — in
// observer mode — releases the Result so a population run never holds
// more than the in-flight cell's worth of per-session state.
func (g *Group) finish(s *Session) {
	if s.done {
		return
	}
	s.finishRun()
	if g.observer != nil {
		g.observer(s, s.res)
		s.res = nil
	}
}

// finishBackground finalizes a background flow once and notifies its
// observer.
func (g *Group) finishBackground(b *Background) {
	if b.done {
		return
	}
	b.finishRun()
	if g.bgObserver != nil {
		g.bgObserver(b)
	}
}

// finishRun finalizes a session once and releases its connections so
// they stop competing for the shared link.
func (s *Session) finishRun() {
	if s.done {
		return
	}
	s.finalize()
	for _, c := range s.conns {
		if c != nil {
			c.Close()
		}
	}
	s.done = true
}

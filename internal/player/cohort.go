package player

import (
	"math"

	"repro/internal/cdn"
	"repro/internal/simnet"
)

// Cohort is the vectorized form of a cell's background tier: every
// coarse session of one cell stored as structure-of-arrays slabs and
// batch-stepped by a single Group member, instead of one heap-allocated
// Background per session scattered across the heap. At a million
// sessions the per-object layout is the fleet's dominant cost — each
// wake touches a dozen cache lines of one Background before jumping to
// an unrelated one — while the slab layout walks contiguous memory in
// member order and shares one deadline heap, one wake list and one
// scratch Summary across the whole cell.
//
// The contract is bit-exactness, not resemblance: a Cohort of N members
// produces byte-identical Summaries to N individual Backgrounds added
// to the same Group in the same order (asserted by the differential
// suite in cohort_test.go). That holds because the member-local
// arithmetic is transcribed from Background with identical expression
// trees, members within the cohort are serviced/advanced in ascending
// index order — exactly the ascending member-id order the Group gives
// individual Backgrounds registered after all full sessions — and
// completions are dispatched in batch order either way. The cohort's
// group-heap key is the minimum of its internal per-member deadline
// heap, so the Group wakes it precisely when it would have woken the
// earliest individual Background.
//
// Members are appended with Add (each carrying its own
// BackgroundConfig — fleet cells mix service templates and per-viewer
// session durations) before the cohort joins a Group; AddCohort
// freezes the slabs, so the run itself allocates nothing.
type Cohort struct {
	net *simnet.Network

	// Per-member immutable draw, set by Add.
	cfgs    []BackgroundConfig
	segCnt  []int32   // ceil(MediaDuration/SegmentDuration) per member
	resume  []float64 // pause/resume hysteresis threshold per member
	startAt []float64
	link    []*simnet.AccessLink
	resolve []cdn.Resolver // per-member edge-cache resolver, nil = origin
	catID   []int32        // title index in the cache namespace

	// Per-member control state, one slab entry per member (freeze).
	flags     []uint8 // coStarted..coInflight bit field
	lastTime  []float64
	playhead  []float64
	bufferSec []float64
	stallSt   []float64 // stall open instant (valid while coStallOpen)

	nextSeg  []int32
	samples  []int32
	prevTrak []int32
	pendTrak []int32
	pendDur  []float64
	ewma     []float64
	totBytes []float64

	conn []*simnet.Conn
	refs []cohortRef // Transfer.Meta targets: pointers into this slab

	// Segment FIFO rings: member m owns qTrack/qDur/qMark[m*qCap :
	// (m+1)*qCap], a ring of at most qCap buffered stretches (the buffer
	// pauses at MaxBufferSec, so the ring is small and bounded).
	qCap   int
	qTrack []int32
	qDur   []float64
	qMark  []uint8 // counted flag: switch accounting done at first consumption
	qHead  []int32
	qLen   []int32

	// Per-member Summary slabs; timeOnTrack packs each member's ladder-
	// width row at toOff[m] (ladders differ across service templates).
	sumStartup  []float64
	sumStallCnt []int32
	sumStallSec []float64
	sumPlayed   []float64
	sumWeighted []float64
	sumMedia    []float64
	sumSwitch   []int32
	sumNonCons  []int32
	toOff       []int32
	timeOnTrack []float64

	// Internal scheduler: the same indexed deadline heap the Group uses,
	// keyed by member index, plus the member-level wake list.
	h     groupHeap
	woken []bool
	wake  []int

	live    int  // members not yet finished
	retired bool // Group bookkeeping: counted out of `remaining` once
	frozen  bool

	observer func(int, *Summary)
	scratch  Summary

	// gidx is the cohort's member id in the Group run driving it.
	gidx int
}

// Per-member flag bits.
const (
	coStarted uint8 = 1 << iota
	coPlaying
	coFinished
	coDone
	coStallOpen
	coPausedDl
	coInflight
)

// cohortRef identifies one cohort member as a transfer's Meta: a
// pointer into the cohort's refs slab, so starting a request boxes a
// pointer (no allocation) and a completion routes back to the member.
type cohortRef struct {
	c   *Cohort
	idx int
}

// NewCohort starts an empty cohort over the shared network; append
// members with Add, then register it with Group.AddCohort.
func NewCohort(net *simnet.Network) *Cohort {
	return &Cohort{net: net}
}

// Add appends one member with its own config (defaults applied exactly
// as NewBackground would) and returns its index. Call before the
// cohort joins a Group.
func (c *Cohort) Add(cfg BackgroundConfig) int {
	if c.frozen {
		panic("player: Cohort.Add after the cohort joined a group")
	}
	cfg = cfg.withDefaults()
	m := len(c.cfgs)
	c.cfgs = append(c.cfgs, cfg)
	c.segCnt = append(c.segCnt, int32(math.Ceil(cfg.MediaDuration/cfg.SegmentDuration)))
	r := cfg.MaxBufferSec - 10
	if r <= 0 {
		r = cfg.MaxBufferSec / 2
	}
	c.resume = append(c.resume, r)
	c.startAt = append(c.startAt, 0)
	c.link = append(c.link, nil)
	c.resolve = append(c.resolve, nil)
	c.catID = append(c.catID, 0)
	return m
}

// Len returns the member count.
func (c *Cohort) Len() int { return len(c.cfgs) }

// SetStartAt schedules member i's arrival on the shared clock; call
// before the group runs.
func (c *Cohort) SetStartAt(i int, t float64) {
	if t < 0 {
		t = 0
	}
	c.startAt[i] = t
	if c.frozen {
		c.lastTime[i] = t
	}
}

// SetAccessLink routes member i through a per-client access link.
func (c *Cohort) SetAccessLink(i int, l *simnet.AccessLink) { c.link[i] = l }

// SetResolver routes member i's segment requests through a cell's
// edge-cache tier; catalog is the member's title index in the cache
// namespace.
func (c *Cohort) SetResolver(i int, r cdn.Resolver, catalog int32) {
	c.resolve[i] = r
	c.catID[i] = catalog
}

// SetObserver registers fn, called exactly once per member as it
// finishes with a scratch Summary valid only for the duration of the
// call (the TimeOnTrack slice aliases the cohort's slab) — fold it,
// don't retain it.
func (c *Cohort) SetObserver(fn func(i int, s *Summary)) { c.observer = fn }

// freeze sizes every slab for the member set (called by AddCohort; the
// group run itself allocates nothing).
func (c *Cohort) freeze() {
	if c.frozen {
		return
	}
	c.frozen = true
	n := len(c.cfgs)
	// Ring bound: a member's buffer pauses at MaxBufferSec and one
	// in-flight segment can still land, so at most
	// ceil(MaxBufferSec/segDur) full stretches plus a partially-consumed
	// head, the clipped final segment and the just-landed one are ever
	// queued at once. The stride is the population maximum.
	c.qCap = 1
	toSum := 0
	for m := 0; m < n; m++ {
		cap := int(math.Ceil(c.cfgs[m].MaxBufferSec/c.cfgs[m].SegmentDuration)) + 4
		if sc := int(c.segCnt[m]); cap > sc {
			cap = sc
		}
		if cap > c.qCap {
			c.qCap = cap
		}
		toSum += len(c.cfgs[m].Declared)
	}
	c.flags = make([]uint8, n)
	c.lastTime = make([]float64, n)
	c.playhead = make([]float64, n)
	c.bufferSec = make([]float64, n)
	c.stallSt = make([]float64, n)
	c.nextSeg = make([]int32, n)
	c.samples = make([]int32, n)
	c.prevTrak = make([]int32, n)
	c.pendTrak = make([]int32, n)
	c.pendDur = make([]float64, n)
	c.ewma = make([]float64, n)
	c.totBytes = make([]float64, n)
	c.conn = make([]*simnet.Conn, n)
	c.refs = make([]cohortRef, n)
	c.qTrack = make([]int32, n*c.qCap)
	c.qDur = make([]float64, n*c.qCap)
	c.qMark = make([]uint8, n*c.qCap)
	c.qHead = make([]int32, n)
	c.qLen = make([]int32, n)
	c.sumStartup = make([]float64, n)
	c.sumStallCnt = make([]int32, n)
	c.sumStallSec = make([]float64, n)
	c.sumPlayed = make([]float64, n)
	c.sumWeighted = make([]float64, n)
	c.sumMedia = make([]float64, n)
	c.sumSwitch = make([]int32, n)
	c.sumNonCons = make([]int32, n)
	c.toOff = make([]int32, n+1)
	c.timeOnTrack = make([]float64, toSum)
	c.h.init(n)
	c.woken = make([]bool, n)
	c.wake = make([]int, 0, n)
	off := int32(0)
	for m := 0; m < n; m++ {
		c.toOff[m] = off
		off += int32(len(c.cfgs[m].Declared))
		c.lastTime[m] = c.startAt[m]
		c.prevTrak[m] = -1
		c.sumStartup[m] = -1
		c.refs[m] = cohortRef{c: c, idx: m}
		// First round: every member is serviced once, mirroring the
		// Group's initial all-member wake.
		c.woken[m] = true
		c.wake = append(c.wake, m)
	}
	c.toOff[n] = off
	c.live = n
}

func (c *Cohort) endAt(m int) float64 { return c.startAt[m] + c.cfgs[m].SessionDuration }

func (c *Cohort) memberDone(m int) bool { return c.flags[m]&coDone != 0 }

// segDurAt returns member m's segment i media duration (the last one is
// clipped to the presentation end).
func (c *Cohort) segDurAt(m, i int) float64 {
	cfg := &c.cfgs[m]
	if start := float64(i) * cfg.SegmentDuration; start+cfg.SegmentDuration > cfg.MediaDuration {
		return cfg.MediaDuration - start
	}
	return cfg.SegmentDuration
}

// wakeMember queues member m for the next advance/service round
// (dedup'd, exactly like the Group's addWake).
//
//vodlint:hotpath — called once per completed cohort transfer
func (c *Cohort) wakeMember(m int) {
	if !c.woken[m] {
		c.woken[m] = true
		c.wake = append(c.wake, m)
	}
}

// wakeDue pops every member whose internal deadline has arrived,
// mirroring the Group's own heap-pop loop.
//
//vodlint:hotpath — cohort deadline pops: once per group iteration
func (c *Cohort) wakeDue(tnow float64) {
	for c.h.len() > 0 && c.h.minKey() <= tnow+eps {
		c.wakeMember(c.h.popMin())
	}
}

// minKey is the cohort's key in the Group heap: the earliest internal
// member deadline.
func (c *Cohort) minKey() float64 { return c.h.minKey() }

// inflightSum counts in-flight transfers across live members (the
// Group's defensive no-deadline branch needs the total).
func (c *Cohort) inflightSum() int {
	s := 0
	for m := range c.flags {
		if c.flags[m]&coDone == 0 && c.flags[m]&coInflight != 0 {
			s++
		}
	}
	return s
}

// advanceWoken sorts the wake list into ascending member order — the
// same add-order discipline the Group applies to its own wake list —
// and syncs each woken member's playback to the clock. The sorted list
// is then reused by service in the same order.
//
//vodlint:hotpath — cohort advance phase: once per group iteration
func (c *Cohort) advanceWoken(tnow float64) {
	wake := c.wake
	for i := 1; i < len(wake); i++ {
		for j := i; j > 0 && wake[j] < wake[j-1]; j-- {
			wake[j], wake[j-1] = wake[j-1], wake[j]
		}
	}
	for _, m := range wake {
		if c.flags[m]&coDone == 0 {
			c.advancePlayback(m, tnow)
		}
	}
}

// service runs the Group's per-member service step over the woken
// members in ascending order: finish members past their end, park
// unarrived members at their start, let the rest issue requests and
// re-key their internal deadline. The caller re-keys the cohort's
// group-heap entry from minKey afterwards.
//
//vodlint:hotpath — cohort service phase: once per group iteration
func (c *Cohort) service(now float64) {
	for _, m := range c.wake {
		c.woken[m] = false
		if c.flags[m]&coDone != 0 {
			continue
		}
		if now < c.startAt[m]-eps {
			c.h.set(m, c.startAt[m])
			continue
		}
		if now >= c.endAt(m)-eps || c.flags[m]&coFinished != 0 {
			c.finishMember(m)
			c.h.remove(m)
			continue
		}
		c.issueRequests(m)
		d := c.nextDeadline(m, now)
		if e := c.endAt(m); e < d {
			d = e
		}
		c.h.set(m, d)
	}
	c.wake = c.wake[:0]
}

// issueRequests starts member m's next segment download if it is behind
// its buffer target. One request at a time: the coarse tier has no
// pipeline. Expression-identical to Background.issueRequests.
//
//vodlint:hotpath — cohort request issue: once per serviced member
func (c *Cohort) issueRequests(m int) {
	if c.flags[m]&coInflight != 0 || int(c.nextSeg[m]) >= int(c.segCnt[m]) {
		return
	}
	cfg := &c.cfgs[m]
	if c.flags[m]&coPausedDl != 0 {
		if c.bufferSec[m] > c.resume[m]+1e-6 {
			return
		}
		c.flags[m] &^= coPausedDl
	} else if c.bufferSec[m] >= cfg.MaxBufferSec-1e-6 {
		c.flags[m] |= coPausedDl
		return
	}
	track := 0
	if c.samples[m] > 0 {
		budget := cfg.SafetyFactor * c.ewma[m]
		for t := len(cfg.Declared) - 1; t > 0; t-- {
			if cfg.Declared[t] <= budget {
				track = t
				break
			}
		}
	}
	dur := c.segDurAt(m, int(c.nextSeg[m]))
	size := cfg.Declared[track] * dur / 8
	if c.conn[m] == nil {
		c.conn[m] = c.net.DialVia(c.link[m])
	}
	c.pendDur[m], c.pendTrak[m] = dur, int32(track)
	if r := c.resolve[m]; r != nil {
		rt := r.Resolve(c.net.Now(), cdn.Object{Catalog: c.catID[m], Kind: cdn.KindVideo, Track: int32(track), Index: c.nextSeg[m]}, size)
		c.conn[m].StartVia(size, rt.ExtraLatency, rt.Upstream, &c.refs[m])
	} else {
		c.conn[m].Start(size, &c.refs[m])
	}
	c.flags[m] |= coInflight
}

// onComplete books member m's finished segment transfer.
// Expression-identical to Background.onComplete.
//
//vodlint:hotpath — cohort completion fold: once per completed transfer
func (c *Cohort) onComplete(m int, tr *simnet.Transfer) {
	c.flags[m] &^= coInflight
	rate := tr.Size * 8 / math.Max(tr.Completed-tr.Started, 1e-3)
	if c.samples[m] == 0 {
		c.ewma[m] = rate
	} else {
		c.ewma[m] = c.cfgs[m].EWMAAlpha*rate + (1-c.cfgs[m].EWMAAlpha)*c.ewma[m]
	}
	c.samples[m]++
	c.totBytes[m] += tr.Size
	c.bufferSec[m] += c.pendDur[m]
	if int(c.qLen[m]) >= c.qCap {
		panic("player: cohort segment ring overflow")
	}
	slot := m*c.qCap + int(c.qHead[m]+c.qLen[m])%c.qCap
	c.qTrack[slot] = c.pendTrak[m]
	c.qDur[slot] = c.pendDur[m]
	c.qMark[slot] = 0
	c.qLen[m]++
	c.nextSeg[m]++
	c.maybeStartPlayback(m, tr.Completed)
}

func (c *Cohort) maybeStartPlayback(m int, now float64) {
	if c.flags[m]&(coPlaying|coFinished) != 0 {
		return
	}
	allDown := int(c.nextSeg[m]) >= int(c.segCnt[m])
	if c.bufferSec[m] >= c.cfgs[m].StartupBufferSec-eps || (allDown && c.bufferSec[m] > eps) {
		c.flags[m] |= coPlaying
		if c.flags[m]&coStarted == 0 {
			c.flags[m] |= coStarted
			c.sumStartup[m] = now - c.startAt[m]
		} else if c.flags[m]&coStallOpen != 0 {
			c.sumStallCnt[m]++
			c.sumStallSec[m] += now - c.stallSt[m]
			c.flags[m] &^= coStallOpen
		}
	}
}

// advancePlayback drains member m's fluid buffer to wall time t.
// Expression-identical to Background.advancePlayback.
//
//vodlint:hotpath — cohort playback drain: once per woken member per iteration
func (c *Cohort) advancePlayback(m int, t float64) {
	for c.lastTime[m] < t-eps {
		if c.flags[m]&coPlaying == 0 {
			c.lastTime[m] = t
			return
		}
		limit := math.Min(c.bufferSec[m], c.cfgs[m].MediaDuration-c.playhead[m])
		dt := t - c.lastTime[m]
		adv := math.Min(dt, math.Max(0, limit))
		c.consume(m, adv)
		c.lastTime[m] += adv
		if adv < dt-eps {
			c.flags[m] &^= coPlaying
			if c.playhead[m] >= c.cfgs[m].MediaDuration-eps {
				c.flags[m] |= coFinished
				c.lastTime[m] = t
				return
			}
			c.flags[m] |= coStallOpen
			c.stallSt[m] = c.lastTime[m]
		}
	}
}

// consume plays adv seconds of member m's media off its FIFO ring,
// folding displayed bitrate, time-on-track and switch counts as each
// stretch is shown. Expression-identical to Background.consume.
//
//vodlint:hotpath — cohort FIFO drain: inner loop of every playback advance
func (c *Cohort) consume(m int, adv float64) {
	if adv <= 0 {
		return
	}
	c.sumPlayed[m] += adv
	c.playhead[m] += adv
	c.bufferSec[m] = math.Max(0, c.bufferSec[m]-adv)
	to := int(c.toOff[m])
	rem := adv
	for rem > eps && c.qLen[m] > 0 {
		slot := m*c.qCap + int(c.qHead[m])
		if c.qMark[slot] == 0 {
			if c.prevTrak[m] >= 0 && c.qTrack[slot] != c.prevTrak[m] {
				c.sumSwitch[m]++
				if d := c.qTrack[slot] - c.prevTrak[m]; d > 1 || d < -1 {
					c.sumNonCons[m]++
				}
			}
			c.prevTrak[m] = c.qTrack[slot]
			c.qMark[slot] = 1
		}
		d := math.Min(rem, c.qDur[slot])
		c.sumWeighted[m] += c.cfgs[m].Declared[c.qTrack[slot]] * d
		c.sumMedia[m] += d
		c.timeOnTrack[to+int(c.qTrack[slot])] += d
		c.qDur[slot] -= d
		rem -= d
		if c.qDur[slot] <= eps {
			c.qHead[m] = int32((int(c.qHead[m]) + 1) % c.qCap)
			c.qLen[m]--
		}
	}
}

// nextDeadline is the next time member m's control state can change
// without a download completing. Expression-identical to
// Background.nextDeadline.
func (c *Cohort) nextDeadline(m int, now float64) float64 {
	if c.flags[m]&coPlaying == 0 {
		return math.Inf(1)
	}
	d := now + math.Min(c.bufferSec[m], c.cfgs[m].MediaDuration-c.playhead[m])
	if c.flags[m]&coPausedDl != 0 && int(c.nextSeg[m]) < int(c.segCnt[m]) {
		d = math.Min(d, now+math.Max(0, c.bufferSec[m]-c.resume[m]))
	}
	return d
}

// finishMember finalizes member m once, releases its connection, and
// hands the observer a scratch Summary assembled from the slabs (the
// TimeOnTrack slice is a view into the cohort's slab, not a copy).
func (c *Cohort) finishMember(m int) {
	if c.flags[m]&coDone != 0 {
		return
	}
	end := math.Min(c.net.Now(), c.endAt(m))
	c.advancePlayback(m, end)
	c.flags[m] &^= coPlaying
	if c.flags[m]&coStallOpen != 0 {
		c.sumStallCnt[m]++
		c.sumStallSec[m] += end - c.stallSt[m]
		c.flags[m] &^= coStallOpen
	}
	if c.conn[m] != nil {
		c.conn[m].Close()
	}
	c.flags[m] |= coDone
	c.live--
	if c.observer != nil {
		c.scratch = c.MemberSummary(m)
		c.observer(m, &c.scratch)
	}
}

// finishAll finalizes every live member at the current time (the
// Group's defensive no-deadline branch).
func (c *Cohort) finishAll() {
	for m := range c.flags {
		if c.flags[m]&coDone == 0 {
			c.finishMember(m)
		}
	}
}

// MemberSummary assembles member m's digest from the slabs. The
// TimeOnTrack slice aliases the cohort's slab — copy it to retain it
// beyond the cohort's lifetime.
func (c *Cohort) MemberSummary(m int) Summary {
	lo, hi := int(c.toOff[m]), int(c.toOff[m+1])
	return Summary{
		StartupDelay:       c.sumStartup[m],
		StallCount:         int(c.sumStallCnt[m]),
		StallSec:           c.sumStallSec[m],
		PlayedSec:          c.sumPlayed[m],
		TimeOnTrack:        c.timeOnTrack[lo:hi:hi],
		Switches:           int(c.sumSwitch[m]),
		NonConsecutive:     int(c.sumNonCons[m]),
		WeightedBitrateSec: c.sumWeighted[m],
		PlayedMediaSec:     c.sumMedia[m],
		TotalBytes:         c.totBytes[m],
	}
}

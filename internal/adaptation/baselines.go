package adaptation

// Baseline algorithms from the literature the paper compares against
// conceptually (§5 Related Work): FESTIVE's gradual, harmonic-mean-driven
// switching (Jiang et al.) and probe-and-adapt's additive-increase
// probing (Li et al.). They serve as reference points for the ablation
// experiments; the paper itself studies the deployed commercial logics.

// Festive follows FESTIVE's core rules: a conservative bandwidth target
// over a harmonic-mean estimate (fed externally via Context.EstimateBps,
// typically from a SlidingHarmonic estimator), one-rung-at-a-time
// switching, and an up-switch delay that grows with the target rung so
// high switches need sustained evidence.
type Festive struct {
	// Factor scales the estimate (FESTIVE uses ~0.85).
	Factor float64

	upStreak int
	lastSeen int
}

// NewFestive returns a FESTIVE-like selector.
func NewFestive() *Festive { return &Festive{Factor: 0.85} }

// Name implements Algorithm.
func (*Festive) Name() string { return "festive" }

// Select implements Algorithm.
func (f *Festive) Select(ctx Context) int {
	if ctx.EstimateBps <= 0 || ctx.LastTrack < 0 {
		return clampTrack(ctx, ctx.StartupTrack)
	}
	factor := f.Factor
	if factor <= 0 {
		factor = 0.85
	}
	ref := highestUnder(ctx, factor*ctx.EstimateBps, false, 1)
	switch {
	case ref > ctx.LastTrack:
		// Gradual up-switch: k consecutive agreeing decisions before
		// moving up one rung, with k equal to the current rung + 1
		// (higher rungs demand more evidence).
		if ctx.LastTrack == f.lastSeen {
			f.upStreak++
		} else {
			f.upStreak = 1
		}
		f.lastSeen = ctx.LastTrack
		if f.upStreak > ctx.LastTrack {
			f.upStreak = 0
			return clampTrack(ctx, ctx.LastTrack+1)
		}
		return ctx.LastTrack
	case ref < ctx.LastTrack:
		f.upStreak = 0
		f.lastSeen = ctx.LastTrack
		// Down-switches are immediate but also one rung at a time.
		return clampTrack(ctx, ctx.LastTrack-1)
	default:
		f.upStreak = 0
		f.lastSeen = ctx.LastTrack
		return ref
	}
}

// ProbeAdapt models probe-and-adapt (Li et al.): hold the current rung
// while the buffer is steady, probe one rung up when the buffer has been
// growing, step down when it drains — TCP-like additive increase driven
// by buffer dynamics rather than a bandwidth estimate alone.
type ProbeAdapt struct {
	// GrowSec is the buffer growth (seconds per decision) treated as
	// spare capacity worth probing (default 0.5).
	GrowSec float64
	// DrainSec is the buffer shrinkage that forces a down-switch
	// (default 1).
	DrainSec float64
	// MinBufferProbe is the occupancy required before probing up
	// (default 10 s).
	MinBufferProbe float64
}

// Name implements Algorithm.
func (ProbeAdapt) Name() string { return "probe-adapt" }

// Select implements Algorithm.
func (a ProbeAdapt) Select(ctx Context) int {
	grow, drain, minBuf := a.GrowSec, a.DrainSec, a.MinBufferProbe
	if grow == 0 {
		grow = 0.5
	}
	if drain == 0 {
		drain = 1
	}
	if minBuf == 0 {
		minBuf = 10
	}
	if ctx.LastTrack < 0 || ctx.EstimateBps <= 0 {
		return clampTrack(ctx, ctx.StartupTrack)
	}
	switch {
	case ctx.BufferTrend <= -drain:
		return clampTrack(ctx, ctx.LastTrack-1)
	case ctx.BufferTrend >= grow && ctx.BufferSec >= minBuf:
		// Probe only when the next rung plausibly fits the link.
		next := clampTrack(ctx, ctx.LastTrack+1)
		if ctx.trackRate(next, 1, true) <= 1.2*ctx.EstimateBps {
			return next
		}
		return ctx.LastTrack
	default:
		return ctx.LastTrack
	}
}

package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netem"
)

// cfgNoRamp returns a config where slow start is effectively instant, so
// timing is analytically checkable.
func cfgNoRamp() Config {
	return Config{RTT: 0.1, MSS: 1460, InitialWindowSegments: 1e9, HandshakeRTTs: 1}
}

func TestSingleTransferTiming(t *testing.T) {
	// 8 Mbit/s link, no slow start: 1 MB transfer should take
	// handshake(0.1) + request(0.1) + 1e6*8/8e6 = 1.2 s.
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	c := n.Dial()
	tr := c.Start(1e6, nil)
	done := n.Step(100)
	if len(done) != 1 || done[0] != tr {
		t.Fatalf("expected completion, got %v", done)
	}
	if math.Abs(tr.Completed-1.2) > 1e-6 {
		t.Fatalf("completed at %v, want 1.2", tr.Completed)
	}
	if math.Abs(n.Delivered()-1e6) > 1e-3 {
		t.Fatalf("delivered %v", n.Delivered())
	}
}

func TestPersistentSkipsHandshake(t *testing.T) {
	cfg := cfgNoRamp()
	cfg.SlowStartAfterIdle = false
	n := New(cfg, netem.Constant("c", 8e6, 100))
	c := n.Dial()
	tr1 := c.Start(1e6, nil)
	n.Step(100)
	tr2 := c.Start(1e6, nil)
	n.Step(100)
	// Second transfer: request RTT only (0.1) + 1 s payload.
	if got := tr2.Completed - tr1.Completed; math.Abs(got-1.1) > 1e-6 {
		t.Fatalf("second transfer took %v, want 1.1", got)
	}
}

func TestFairSharing(t *testing.T) {
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	a := n.Dial().Start(1e6, "a")
	b := n.Dial().Start(1e6, "b")
	var done []*Transfer
	for len(done) < 2 {
		done = append(done, n.Step(100)...) //vodlint:allow stepalias — test never Recycles, so the accumulated transfers stay live under GC
	}
	// Equal sizes, equal shares: both finish together at
	// 0.2 (latency) + 2e6 bytes / 1e6 B/s = 2.2 s.
	if math.Abs(a.Completed-2.2) > 1e-6 || math.Abs(b.Completed-2.2) > 1e-6 {
		t.Fatalf("completions %v / %v, want 2.2", a.Completed, b.Completed)
	}
}

func TestUnequalSizesRedistribution(t *testing.T) {
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	small := n.Dial().Start(0.25e6, "s")
	big := n.Dial().Start(1.75e6, "b")
	for i := 0; i < 10; i++ {
		if n.Step(100); big.Done {
			break
		}
	}
	// Small: 0.2 + 0.25e6/0.5e6 = 0.7 s. Big: shares until 0.7
	// (0.25e6 done), then full rate: 0.7 + 1.5e6/1e6 = 2.2 s.
	if math.Abs(small.Completed-0.7) > 1e-6 {
		t.Fatalf("small at %v, want 0.7", small.Completed)
	}
	if math.Abs(big.Completed-2.2) > 1e-6 {
		t.Fatalf("big at %v, want 2.2", big.Completed)
	}
}

func TestSlowStartRamp(t *testing.T) {
	// IW 10 × 1460 B over 100 ms RTT = 146 kB/s initial cap, doubling
	// each RTT. A fat link means the cap binds:
	// bytes by k RTTs = 0.146e6 * (2^k - 1) * 0.1... piecewise constant:
	// windows deliver 14.6kB, 29.2kB, 58.4kB, ... per RTT.
	cfg := Config{RTT: 0.1, MSS: 1460, InitialWindowSegments: 10, HandshakeRTTs: 1}
	n := New(cfg, netem.Constant("c", 1e9, 100))
	tr := n.Dial().Start(14600*(1+2+4), nil) // exactly 3 doubling windows
	n.Step(100)
	// Flow starts at 0.2; three full RTT windows: 0.2 + 0.3 = 0.5.
	if math.Abs(tr.Completed-0.5) > 1e-6 {
		t.Fatalf("slow-start completion %v, want 0.5", tr.Completed)
	}
}

func TestSlowStartMakesNonPersistentSlower(t *testing.T) {
	p := netem.Constant("c", 20e6, 1000)
	run := func(persistent bool) float64 {
		n := New(DefaultConfig(), p)
		var c *Conn
		last := 0.0
		for i := 0; i < 20; i++ {
			if c == nil || !persistent {
				c = n.Dial()
			}
			tr := c.Start(500e3, nil)
			n.Step(1000)
			last = tr.Completed
			if !persistent {
				c.Close()
			}
		}
		return last
	}
	persistentTime := run(true)
	freshTime := run(false)
	if freshTime <= persistentTime {
		t.Fatalf("non-persistent (%v) should be slower than persistent (%v)", freshTime, persistentTime)
	}
}

func TestSlowStartAfterIdle(t *testing.T) {
	cfg := DefaultConfig() // SlowStartAfterIdle on, IdleResetAfter 1s
	p := netem.Constant("c", 20e6, 1000)
	n := New(cfg, p)
	c := n.Dial()
	tr1 := c.Start(500e3, nil)
	n.Step(1000)
	warm := c.Start(500e3, nil) // immediate: window still open
	n.Step(1000)
	warmTook := warm.Completed - warm.Started
	// Now idle past the reset threshold.
	n.Step(warm.Completed + 5)
	cold := c.Start(500e3, nil)
	n.Step(1000)
	coldTook := cold.Completed - cold.Started
	if coldTook <= warmTook {
		t.Fatalf("post-idle transfer (%v) should be slower than warm (%v)", coldTook, warmTook)
	}
	_ = tr1
}

func TestProfileVariation(t *testing.T) {
	// 1 Mbit/s for 10 s then 8 Mbit/s: a transfer spanning the boundary.
	p := netem.Step("s", 1e6, 8e6, 10, 100)
	n := New(cfgNoRamp(), p)
	tr := n.Dial().Start(2e6, nil) // flows from 0.2
	n.Step(100)
	// By t=10: (10-0.2)s × 0.125e6 = 1.225e6 bytes. Remaining 0.775e6 at
	// 1e6 B/s = 0.775 s → 10.775.
	if math.Abs(tr.Completed-10.775) > 1e-6 {
		t.Fatalf("completed %v, want 10.775", tr.Completed)
	}
}

func TestConservation(t *testing.T) {
	// Total delivered bytes can never exceed the link integral.
	p := netem.Cellular(2)
	n := New(DefaultConfig(), p)
	rng := rand.New(rand.NewSource(7))
	conns := []*Conn{n.Dial(), n.Dial(), n.Dial()}
	deadline := 120.0
	for n.Now() < deadline {
		for _, c := range conns {
			if !c.Busy() {
				c.Start(rng.Float64()*2e6+1e3, nil)
			}
		}
		n.Step(math.Min(n.Now()+5, deadline))
	}
	delivered := n.Delivered() * 8
	budget := p.Integral(0, n.Now())
	if delivered > budget+1 {
		t.Fatalf("delivered %v bits > link budget %v", delivered, budget)
	}
	if delivered < 0.5*budget {
		t.Fatalf("delivered only %.1f%% of budget with saturating flows", 100*delivered/budget)
	}
}

func TestStepDeadline(t *testing.T) {
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	tr := n.Dial().Start(1e6, nil)
	done := n.Step(0.5) // before completion
	if len(done) != 0 || n.Now() != 0.5 {
		t.Fatalf("Step stopped at %v with %d completions", n.Now(), len(done))
	}
	if tr.Remaining() >= 1e6 || tr.Remaining() <= 0 {
		t.Fatalf("remaining %v", tr.Remaining())
	}
	done = n.Step(10)
	if len(done) != 1 {
		t.Fatal("expected completion")
	}
}

func TestStartPanics(t *testing.T) {
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	c := n.Dial()
	c.Start(100, nil)
	assertPanics(t, func() { c.Start(100, nil) }, "busy conn")
	c2 := n.Dial()
	c2.Close()
	assertPanics(t, func() { c2.Start(100, nil) }, "closed conn")
	assertPanics(t, func() { n.Step(-1) }, "backwards step")
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestThroughputAccessor(t *testing.T) {
	n := New(cfgNoRamp(), netem.Constant("c", 8e6, 100))
	tr := n.Dial().Start(1e6, nil)
	n.Step(100)
	// 8 Mbit over 1.2 s ≈ 6.67 Mbit/s observed.
	if got := tr.Throughput(); math.Abs(got-8e6/1.2) > 1 {
		t.Fatalf("throughput %v", got)
	}
}

// TestQuickConservationAndCompletion property-tests the fluid engine:
// random profiles and transfer mixes must conserve bytes and complete
// every transfer that fits in the budget.
func TestQuickConservationAndCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]float64, 30)
		for i := range samples {
			samples[i] = rng.Float64()*10e6 + 0.1e6
		}
		p := &netem.Profile{Name: "q", SampleDur: 1, Samples: samples}
		n := New(DefaultConfig(), p)
		nConns := rng.Intn(4) + 1
		var transfers []*Transfer
		for i := 0; i < nConns; i++ {
			c := n.Dial()
			transfers = append(transfers, c.Start(rng.Float64()*0.4e6+1e3, i))
		}
		for done := 0; done < len(transfers); {
			out := n.Step(n.Now() + 10)
			done += len(out)
			if n.Now() > 1e4 {
				return false // livelock
			}
		}
		total := 0.0
		for _, tr := range transfers {
			if !tr.Done || tr.Completed < tr.FlowAt {
				return false
			}
			total += tr.Size
		}
		if math.Abs(total-n.Delivered()) > 1 {
			return false
		}
		return n.Delivered()*8 <= p.Integral(0, n.Now())+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConnCapSequence(t *testing.T) {
	cfg := cfgNoRamp()
	cfg.ConnCapSequence = []float64{4e6, 1e6} // bits/s, cycling
	n := New(cfg, netem.Constant("c", 100e6, 100))
	fast := n.Dial().Start(1e6, nil) // capped at 0.5 MB/s
	slow := n.Dial().Start(1e6, nil) // capped at 0.125 MB/s
	for !slow.Done {
		n.Step(100)
	}
	// fast: 0.2 latency + 1e6/0.5e6 = 2.2 s; slow: 0.2 + 8 = 8.2 s.
	if math.Abs(fast.Completed-2.2) > 1e-6 {
		t.Fatalf("fast completed %v, want 2.2", fast.Completed)
	}
	if math.Abs(slow.Completed-8.2) > 1e-6 {
		t.Fatalf("slow completed %v, want 8.2", slow.Completed)
	}
	// The third dial cycles back to the 4 Mbit/s cap.
	third := n.Dial().Start(1e6, nil)
	n.Step(100)
	if got := third.Completed - third.Started; math.Abs(got-2.2) > 1e-6 {
		t.Fatalf("third conn took %v, want 2.2 (cycled cap)", got)
	}
}

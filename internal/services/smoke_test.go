package services

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/qoe"
)

// TestSmokeAllServices streams every service over a constant 5 Mbit/s
// link and sanity-checks the session output.
func TestSmokeAllServices(t *testing.T) {
	p := netem.Constant("const5", 5e6, 600)
	for _, svc := range All() {
		svc := svc
		t.Run(svc.Name, func(t *testing.T) {
			res, err := svc.Run(p, 120, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep := qoe.FromResult(res)
			t.Logf("%s: startup=%.2fs stalls=%d/%.1fs avg=%.0f kbit/s played=%.1fs data=%.1f MB switches=%d",
				svc.Name, rep.StartupDelay, rep.StallCount, rep.StallSec,
				rep.AvgBitrate/1e3, rep.PlayedSec, rep.DataUsageBytes/1e6, rep.Switches)
			if rep.StartupDelay < 0 {
				t.Fatalf("playback never started")
			}
			if rep.StartupDelay > 30 {
				t.Errorf("startup delay %.1fs implausibly high at 5 Mbit/s", rep.StartupDelay)
			}
			if rep.StallSec > 20 {
				t.Errorf("stalled %.1fs at constant 5 Mbit/s", rep.StallSec)
			}
			if rep.PlayedSec < 60 {
				t.Errorf("played only %.1fs of a 120 s session", rep.PlayedSec)
			}
			if rep.AvgBitrate <= 0 {
				t.Errorf("no displayed bitrate recorded")
			}
			if rep.DataUsageBytes <= 0 {
				t.Errorf("no data usage recorded")
			}
		})
	}
}

package dash

import (
	"math"
	"strings"
	"testing"

	"repro/internal/manifest"
	"repro/internal/manifest/sidx"
	"repro/internal/media"
)

func buildPresentation(t *testing.T, addr manifest.Addressing) *manifest.Presentation {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "d", Duration: 30, SegmentDuration: 5,
		TargetBitrates: []float64{300e3, 600e3, 1.2e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		SeparateAudio: true, AudioSegmentDuration: 2,
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return manifest.Build(v, manifest.BuildOptions{Protocol: manifest.DASH, Addressing: addr})
}

// sidxBodiesFor encodes the Segment Index box for every rendition the way
// the origin does.
func sidxBodiesFor(p *manifest.Presentation) map[string][]byte {
	out := map[string][]byte{}
	for _, r := range append(append([]*manifest.Rendition{}, p.Video...), p.Audio...) {
		var sizes []int64
		var durs []float64
		for _, s := range r.Segments {
			sizes = append(sizes, s.Size)
			durs = append(durs, s.Duration)
		}
		out[r.MediaURL] = sidx.Encode(sidx.FromSegments(sizes, durs, 1000))
	}
	return out
}

func TestRoundTripSegmentList(t *testing.T) {
	p := buildPresentation(t, manifest.RangesInManifest)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode("d", body, nil)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, p, q)
}

func TestRoundTripSidx(t *testing.T) {
	p := buildPresentation(t, manifest.SidxRanges)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode("d", body, map[string][]byte{}); err == nil {
		t.Fatal("Decode should fail without sidx bodies")
	}
	q, err := Decode("d", body, sidxBodiesFor(p))
	if err != nil {
		t.Fatal(err)
	}
	compare(t, p, q)
}

func compare(t *testing.T, p, q *manifest.Presentation) {
	t.Helper()
	if len(q.Video) != len(p.Video) || len(q.Audio) != len(p.Audio) {
		t.Fatalf("rendition counts %d/%d vs %d/%d", len(q.Video), len(q.Audio), len(p.Video), len(p.Audio))
	}
	if math.Abs(q.Duration-p.Duration) > 1e-6 {
		t.Errorf("duration %v vs %v", q.Duration, p.Duration)
	}
	for i, r := range q.Video {
		want := p.Video[i]
		if r.DeclaredBitrate != math.Trunc(want.DeclaredBitrate) {
			t.Errorf("track %d declared %v vs %v", i, r.DeclaredBitrate, want.DeclaredBitrate)
		}
		if len(r.Segments) != len(want.Segments) {
			t.Fatalf("track %d segments %d vs %d", i, len(r.Segments), len(want.Segments))
		}
		for j, s := range r.Segments {
			w := want.Segments[j]
			if s.Offset != w.Offset || s.Length != w.Length {
				t.Fatalf("track %d seg %d range %d+%d vs %d+%d", i, j, s.Offset, s.Length, w.Offset, w.Length)
			}
			if math.Abs(s.Duration-w.Duration) > 2e-3 {
				t.Fatalf("track %d seg %d duration %v vs %v", i, j, s.Duration, w.Duration)
			}
			if math.Abs(s.Start-w.Start) > 2e-2 {
				t.Fatalf("track %d seg %d start %v vs %v", i, j, s.Start, w.Start)
			}
		}
	}
}

func TestIndexRanges(t *testing.T) {
	p := buildPresentation(t, manifest.SidxRanges)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := IndexRanges(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != len(p.Video)+len(p.Audio) {
		t.Fatalf("%d index ranges", len(ranges))
	}
	r := p.Video[0]
	got, ok := ranges[r.MediaURL]
	if !ok || got[0] != r.IndexOffset || got[1] != r.IndexOffset+r.IndexLength-1 {
		t.Fatalf("index range for %s = %v", r.MediaURL, got)
	}
	// SegmentList MPDs yield no ranges, not an error.
	p2 := buildPresentation(t, manifest.RangesInManifest)
	body2, _ := Encode(p2)
	ranges2, err := IndexRanges(body2)
	if err != nil || len(ranges2) != 0 {
		t.Fatalf("SegmentList ranges = %v, %v", ranges2, err)
	}
}

func TestDurationFormat(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"PT600S", 600},
		{"PT10M", 600},
		{"PT1H30M5.5S", 5405.5},
		{"PT0.5S", 0.5},
	}
	for _, c := range cases {
		got, err := parseDuration(c.s)
		if err != nil || math.Abs(got-c.want) > 1e-9 {
			t.Errorf("parseDuration(%q) = %v, %v", c.s, got, err)
		}
	}
	for _, bad := range []string{"", "600", "P1D", "PTXS"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) accepted", bad)
		}
	}
	if got := formatDuration(600); got != "PT600S" {
		t.Errorf("formatDuration = %q", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode("d", []byte("<notxml"), nil); err == nil {
		t.Error("accepted garbage XML")
	}
	if _, err := Decode("d", []byte("<MPD xmlns=\"urn:mpeg:dash:schema:mpd:2011\" mediaPresentationDuration=\"PT10S\"></MPD>"), nil); err == nil {
		t.Error("accepted MPD without Period")
	}
}

func TestEncodeIsValidXML(t *testing.T) {
	p := buildPresentation(t, manifest.SidxRanges)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, want := range []string{"<MPD", "urn:mpeg:dash:schema:mpd:2011", "SegmentBase", "indexRange=", "<BaseURL>"} {
		if !strings.Contains(s, want) {
			t.Errorf("MPD missing %q", want)
		}
	}
}

func TestRoundTripSegmentTemplate(t *testing.T) {
	p := buildPresentation(t, manifest.TemplateNumber)
	body, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "$Number$") {
		t.Fatal("MPD missing $Number$ template")
	}
	q, err := Decode("d", body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Addressing != manifest.TemplateNumber {
		t.Fatalf("addressing %v", q.Addressing)
	}
	if len(q.Video) != len(p.Video) {
		t.Fatalf("%d tracks", len(q.Video))
	}
	for i, r := range q.Video {
		want := p.Video[i]
		if len(r.Segments) != len(want.Segments) {
			t.Fatalf("track %d: %d segments vs %d", i, len(r.Segments), len(want.Segments))
		}
		for j := range r.Segments {
			if r.Segments[j].URL != want.Segments[j].URL {
				t.Fatalf("track %d seg %d URL %q vs %q", i, j, r.Segments[j].URL, want.Segments[j].URL)
			}
			// Templates expose no sizes.
			if r.Segments[j].Size != 0 {
				t.Fatalf("template decode leaked a size")
			}
		}
	}
}

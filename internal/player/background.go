package player

import (
	"math"

	"repro/internal/cdn"
	"repro/internal/simnet"
)

// BackgroundConfig shapes one background flow — the coarse analytic
// session tier of a fleet cell.
type BackgroundConfig struct {
	// Declared is the ladder's declared bitrates in bits/s, ascending.
	Declared []float64
	// SegmentDuration and MediaDuration define the segment grid.
	SegmentDuration float64
	MediaDuration   float64
	// SessionDuration caps wall time, counted from StartAt.
	SessionDuration float64
	// StartupBufferSec gates first frame and stall recovery (default 8,
	// matching the full player's startup gate).
	StartupBufferSec float64
	// MaxBufferSec pauses downloading when the buffer reaches it
	// (default 60, the full player's pause threshold).
	MaxBufferSec float64
	// SafetyFactor scales the throughput estimate before picking the
	// highest sustainable rung (default 0.8, the classic rate-based
	// margin).
	SafetyFactor float64
	// EWMAAlpha is the throughput filter gain (default 0.3).
	EWMAAlpha float64
}

func (c BackgroundConfig) withDefaults() BackgroundConfig {
	if c.SessionDuration <= 0 {
		c.SessionDuration = 600
	}
	if c.StartupBufferSec <= 0 {
		c.StartupBufferSec = 8
	}
	if c.MaxBufferSec <= 0 {
		c.MaxBufferSec = 60
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 0.8
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.3
	}
	return c
}

// bgSeg is one downloaded-not-yet-played stretch of media in a
// background flow's FIFO buffer; consumption folds it into the
// play-weighted bitrate accounting.
type bgSeg struct {
	track   int
	dur     float64
	counted bool // switch accounting done at first consumption
}

// Background is the coarse tier of a fleet cell: a session model that
// skips the player state machine — no manifests, no per-request
// scheduling, no buffer index structures — but still moves every byte
// through the shared simnet as real transfers via the client's access
// link, so background flows and full sessions shape each other under
// the same max-min water-filling. Playback is fluid: a FIFO of media
// seconds drains at rate 1 while downloads refill it, with an EWMA
// throughput rule standing in for the configured ABR. Output is the
// same Summary a lean full-fidelity session produces, with coarser
// semantics (segments are declared-rate sized, startup/recovery share
// one buffer gate, no pipeline/connection effects).
type Background struct {
	cfg  BackgroundConfig
	net  *simnet.Network
	link *simnet.AccessLink
	conn *simnet.Conn

	// resolve, when non-nil, classifies segment requests against the
	// cell's edge-cache tier; catID names the flow's title there.
	resolve cdn.Resolver
	catID   int32

	startAt  float64
	lastTime float64

	playhead  float64 // media seconds played
	bufferSec float64 // downloaded, unplayed media seconds
	queue     []bgSeg

	segCount    int
	nextSeg     int
	inflight    int
	pendingDur  float64 // media duration of the in-flight segment
	pendingTrak int

	started, playing bool
	finished, done   bool
	stallOpen        bool
	stallStart       float64
	pausedDl         bool

	ewma    float64 // bits/s
	samples int

	prevTrack  int
	totalBytes float64
	sum        Summary

	// gidx is the flow's member id in the Group run driving it (set by
	// Group.Run): completed transfers wake their owner by id.
	gidx int
}

// NewBackground builds a background flow over the shared network. Add
// it to the cell's Group with AddBackground.
func NewBackground(cfg BackgroundConfig, net *simnet.Network) *Background {
	cfg = cfg.withDefaults()
	b := &Background{
		cfg:       cfg,
		net:       net,
		segCount:  int(math.Ceil(cfg.MediaDuration / cfg.SegmentDuration)),
		prevTrack: -1,
		sum:       Summary{StartupDelay: -1, TimeOnTrack: make([]float64, len(cfg.Declared))},
	}
	return b
}

// SetStartAt schedules the flow's arrival on the shared clock; call
// before the group runs.
func (b *Background) SetStartAt(t float64) {
	if t < 0 {
		t = 0
	}
	b.startAt = t
	b.lastTime = t
}

// SetAccessLink routes the flow through a per-client access link.
func (b *Background) SetAccessLink(l *simnet.AccessLink) { b.link = l }

// SetResolver routes the flow's segment requests through a cell's
// edge-cache tier; catalog is the flow's title index in the cache
// namespace.
func (b *Background) SetResolver(r cdn.Resolver, catalog int32) {
	b.resolve = r
	b.catID = catalog
}

// Summary returns the flow's digest; complete once the group finished it.
func (b *Background) Summary() *Summary { return &b.sum }

func (b *Background) endAt() float64 { return b.startAt + b.cfg.SessionDuration }

// segDurAt returns segment i's media duration (the last one is clipped
// to the presentation end).
func (b *Background) segDurAt(i int) float64 {
	if start := float64(i) * b.cfg.SegmentDuration; start+b.cfg.SegmentDuration > b.cfg.MediaDuration {
		return b.cfg.MediaDuration - start
	}
	return b.cfg.SegmentDuration
}

// resumeSec is the buffer level at which a paused download restarts,
// mirroring the full player's pause/resume hysteresis defaults.
func (b *Background) resumeSec() float64 {
	if r := b.cfg.MaxBufferSec - 10; r > 0 {
		return r
	}
	return b.cfg.MaxBufferSec / 2
}

// issueRequests starts the next segment download if the flow is behind
// its buffer target. One request at a time: the coarse tier has no
// pipeline.
func (b *Background) issueRequests() {
	if b.inflight > 0 || b.nextSeg >= b.segCount {
		return
	}
	if b.pausedDl {
		if b.bufferSec > b.resumeSec()+1e-6 {
			return
		}
		b.pausedDl = false
	} else if b.bufferSec >= b.cfg.MaxBufferSec-1e-6 {
		b.pausedDl = true
		return
	}
	track := 0
	if b.samples > 0 {
		budget := b.cfg.SafetyFactor * b.ewma
		for t := len(b.cfg.Declared) - 1; t > 0; t-- {
			if b.cfg.Declared[t] <= budget {
				track = t
				break
			}
		}
	}
	dur := b.segDurAt(b.nextSeg)
	size := b.cfg.Declared[track] * dur / 8
	if b.conn == nil {
		b.conn = b.net.DialVia(b.link)
	}
	b.pendingDur, b.pendingTrak = dur, track
	if r := b.resolve; r != nil {
		rt := r.Resolve(b.net.Now(), cdn.Object{Catalog: b.catID, Kind: cdn.KindVideo, Track: int32(track), Index: int32(b.nextSeg)}, size)
		b.conn.StartVia(size, rt.ExtraLatency, rt.Upstream, b)
	} else {
		b.conn.Start(size, b)
	}
	b.inflight++
}

// onComplete books one finished segment transfer.
func (b *Background) onComplete(tr *simnet.Transfer) {
	b.inflight--
	rate := tr.Size * 8 / math.Max(tr.Completed-tr.Started, 1e-3)
	if b.samples == 0 {
		b.ewma = rate
	} else {
		b.ewma = b.cfg.EWMAAlpha*rate + (1-b.cfg.EWMAAlpha)*b.ewma
	}
	b.samples++
	b.totalBytes += tr.Size
	b.bufferSec += b.pendingDur
	b.queue = append(b.queue, bgSeg{track: b.pendingTrak, dur: b.pendingDur})
	b.nextSeg++
	b.maybeStartPlayback(tr.Completed)
}

func (b *Background) maybeStartPlayback(now float64) {
	if b.playing || b.finished {
		return
	}
	allDown := b.nextSeg >= b.segCount
	if b.bufferSec >= b.cfg.StartupBufferSec-eps || (allDown && b.bufferSec > eps) {
		b.playing = true
		if !b.started {
			b.started = true
			b.sum.StartupDelay = now - b.startAt
		} else if b.stallOpen {
			b.sum.StallCount++
			b.sum.StallSec += now - b.stallStart
			b.stallOpen = false
		}
	}
}

// advancePlayback drains the fluid buffer to wall time t.
func (b *Background) advancePlayback(t float64) {
	for b.lastTime < t-eps {
		if !b.playing {
			b.lastTime = t
			return
		}
		limit := math.Min(b.bufferSec, b.cfg.MediaDuration-b.playhead)
		dt := t - b.lastTime
		adv := math.Min(dt, math.Max(0, limit))
		b.consume(adv)
		b.lastTime += adv
		if adv < dt-eps {
			b.playing = false
			if b.playhead >= b.cfg.MediaDuration-eps {
				b.finished = true
				b.lastTime = t
				return
			}
			b.stallOpen = true
			b.stallStart = b.lastTime
		}
	}
}

// consume plays adv seconds of media off the FIFO, folding displayed
// bitrate, time-on-track and switch counts as each stretch is shown.
func (b *Background) consume(adv float64) {
	if adv <= 0 {
		return
	}
	b.sum.PlayedSec += adv
	b.playhead += adv
	b.bufferSec = math.Max(0, b.bufferSec-adv)
	rem := adv
	for rem > eps && len(b.queue) > 0 {
		e := &b.queue[0]
		if !e.counted {
			if b.prevTrack >= 0 && e.track != b.prevTrack {
				b.sum.Switches++
				if d := e.track - b.prevTrack; d > 1 || d < -1 {
					b.sum.NonConsecutive++
				}
			}
			b.prevTrack = e.track
			e.counted = true
		}
		d := math.Min(rem, e.dur)
		b.sum.WeightedBitrateSec += b.cfg.Declared[e.track] * d
		b.sum.PlayedMediaSec += d
		b.sum.TimeOnTrack[e.track] += d
		e.dur -= d
		rem -= d
		if e.dur <= eps {
			b.queue = b.queue[1:]
		}
	}
}

// nextDeadline is the next time control state can change without a
// download completing: the buffer running dry, the media ending, or a
// paused download crossing the resume threshold.
func (b *Background) nextDeadline(now float64) float64 {
	if !b.playing {
		return math.Inf(1)
	}
	d := now + math.Min(b.bufferSec, b.cfg.MediaDuration-b.playhead)
	if b.pausedDl && b.nextSeg < b.segCount {
		d = math.Min(d, now+math.Max(0, b.bufferSec-b.resumeSec()))
	}
	return d
}

// finishRun finalizes the flow once and releases its connection.
func (b *Background) finishRun() {
	if b.done {
		return
	}
	end := math.Min(b.net.Now(), b.endAt())
	b.advancePlayback(end)
	b.playing = false
	if b.stallOpen {
		b.sum.StallCount++
		b.sum.StallSec += end - b.stallStart
		b.stallOpen = false
	}
	b.sum.TotalBytes = b.totalBytes
	if b.conn != nil {
		b.conn.Close()
	}
	b.done = true
}

// Package seededrand forbids the global math/rand generator and
// wall-clock-derived seeds.
//
// Every random draw in this repository flows from an explicit seed
// (media content, cellular traces, experiment sweeps), which is what
// makes REPORT.md byte-identical across runs and worker counts. The
// global rand.Intn/rand.Float64 functions draw from a process-wide
// source whose state depends on call order across goroutines — and
// rand.NewSource(time.Now().UnixNano()) reseeds from the wall clock.
// Both reintroduce run-to-run noise. Construct explicitly seeded
// generators instead: rng := rand.New(rand.NewSource(seed)).
package seededrand

import (
	"go/ast"

	"repro/internal/lint"
)

// Analyzer flags uses of the global math/rand source and seeds derived
// from the wall clock.
var Analyzer = &lint.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions and time-derived seeds; " +
		"use an explicitly seeded *rand.Rand",
	Run: run,
}

// allowed are the package-level constructors that do not draw from the
// global source.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"Int64Seed":  true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call)
			if !isRandPkg(pkg) {
				return true
			}
			if !allowed[name] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
					name)
				return true
			}
			// Seed-taking constructors must not launder the wall clock
			// in: rand.NewSource(time.Now().UnixNano()) is still
			// nondeterministic. rand.New is exempt — its Source argument
			// is checked where it is built.
			if name != "NewSource" && name != "NewPCG" && name != "NewChaCha8" {
				return true
			}
			for _, arg := range call.Args {
				if lint.ContainsCallTo(pass.TypesInfo, arg, "time", "") {
					pass.Reportf(call.Pos(),
						"rand.%s seeded from package time is nondeterministic; derive the seed from experiment parameters",
						name)
					break
				}
			}
			return true
		})
	}
	return nil
}

package player

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/adaptation"
	"repro/internal/cdn"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/replacement"
	"repro/internal/simnet"
	"repro/internal/traffic"
)

const eps = 1e-9

// Session runs one streaming session of a configured player against an
// origin over a simulated network, in virtual time. A session is strictly
// single-threaded and deterministic.
type Session struct {
	cfg  Config
	org  *origin.Origin
	pres *manifest.Presentation // server truth (has sizes)
	view *manifest.Presentation // client view (sizes only if protocol exposes them)
	net  *simnet.Network

	conns []*simnet.Conn
	live  []*reqMeta // in-flight request per connection slot

	// startAt offsets the whole session on the shared network clock
	// (fleet arrivals); 0 for ordinary sessions. link, when non-nil,
	// routes every connection through a per-client access link.
	startAt float64
	link    *simnet.AccessLink

	// resolver, when non-nil, classifies every media segment request
	// against the cell's edge-cache tier; catalogID names this
	// session's title in the cache namespace. Documents (manifests,
	// lazy HLS playlists) are pinned at the edge and never resolve.
	resolver  cdn.Resolver
	catalogID int32

	// playback state
	playhead       float64
	lastTime       float64
	playing        bool
	started        bool
	finished       bool
	curPlay        PlayInterval
	stallOpen      bool
	stallStart     float64
	nextDisplayIdx int
	nextSample     float64

	// download state
	videoBuf, audioBuf     Buffer
	nextVideo, nextAudio   int
	pausedVideo, pausedAud bool
	lastVideoTrack         int
	prevDecisionOcc        float64
	fetchedDocs            map[string]bool
	docQueue               []docReq
	inflight               int
	downloadDead           bool
	segSeq                 int
	group                  *splitGroup
	lastVideoDone          float64
	deliveredAtDone        float64
	videoSamples           int
	done                   bool
	pendingSeeks           []SeekEvent
	seekOpen               bool
	seekStart              float64

	// allocation-avoidance state (hot path)
	metaFree    []*reqMeta // recycled request metadata
	avgBitrates []float64  // ladder average bitrates, nil unless complete
	segSizeFn   func(track, index int) float64
	replScratch []replacement.BufferedSegment

	// Immutable media facts, duplicated out of the Result so lean
	// sessions (res == nil) can run the full state machine.
	segCount int
	segDur   float64
	declared []float64

	// Online summary accumulation (see summary.go). Always maintained,
	// whether or not a full Result is kept, in the exact fold order
	// qoe.FromResult uses so the two agree bit for bit.
	sum          Summary
	sumPrevTrack int
	startupDelay float64
	totalBytes   float64
	wastedBytes  float64

	lean bool
	res  *Result

	// gidx is the session's member id in the Group run driving it (set
	// by Group.Run): completed transfers wake their owner by id.
	gidx int
}

type docReq struct {
	url      string
	rs, re   int64
	body     []byte
	wireSize float64
}

type reqKind int

const (
	reqDoc reqKind = iota
	reqSeg
	reqPart
)

type reqMeta struct {
	owner   *Session
	kind    reqKind
	slot    int
	url     string
	rs, re  int64
	body    []byte
	typ     media.MediaType
	track   int
	index   int
	replace bool
	dlIdx   int
	group   *splitGroup
}

type splitGroup struct {
	meta      reqMeta
	remaining int
	started   float64
	bytes     float64
	route     cdn.Route // resolved once for the whole segment; parts share it
}

// NewSession builds a session. The network must be freshly created for
// the session (its clock starts at 0).
func NewSession(cfg Config, org *origin.Origin, net *simnet.Network) (*Session, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.StartupTrack < 0 || cfg.StartupTrack >= len(org.Pres.Video) {
		return nil, fmt.Errorf("player: startup track %d out of ladder range", cfg.StartupTrack)
	}
	s := &Session{
		cfg:            cfg,
		org:            org,
		pres:           org.Pres,
		view:           clientView(org.Pres),
		net:            net,
		conns:          make([]*simnet.Conn, cfg.MaxConnections),
		live:           make([]*reqMeta, cfg.MaxConnections),
		lastVideoTrack: -1,
		fetchedDocs:    map[string]bool{},
	}
	s.segCount = len(s.pres.Video[0].Segments)
	s.segDur = s.pres.Video[0].SegmentDuration
	s.declared = make([]float64, 0, len(s.pres.Video))
	for _, r := range s.pres.Video {
		s.declared = append(s.declared, r.DeclaredBitrate)
	}
	s.startupDelay = -1
	s.sum = Summary{StartupDelay: -1, TimeOnTrack: make([]float64, len(s.declared))}
	s.sumPrevTrack = -1
	// The adaptation context inputs that never change over a session are
	// computed once instead of per segment decision.
	avgs := make([]float64, 0, len(s.view.Video))
	for _, r := range s.view.Video {
		if r.AverageBitrate > 0 {
			avgs = append(avgs, r.AverageBitrate)
		}
	}
	if len(avgs) == len(s.view.Video) {
		s.avgBitrates = avgs
	}
	if cfg.ExposeSegmentSizes && len(s.view.Video) > 0 && len(s.view.Video[0].Segments) > 0 &&
		s.view.Video[0].Segments[0].Size > 0 {
		view := s.view
		s.segSizeFn = func(track, index int) float64 {
			return float64(view.Video[track].Segments[index].Size)
		}
	}
	s.pendingSeeks = append([]SeekEvent(nil), cfg.Seeks...)
	s.buildDocQueue()
	return s, nil
}

// SetStartAt schedules the session to arrive at virtual time t on the
// shared network clock (a fleet client joining mid-window). Call before
// the session runs, on a session driven by a Group. The session issues
// nothing before t, SessionDuration counts from t, and per-session
// metrics (startup delay, 1 Hz samples) are anchored at t.
func (s *Session) SetStartAt(t float64) {
	if t < 0 {
		t = 0
	}
	s.startAt = t
	s.lastTime = t
	s.nextSample = t
}

// SetAccessLink routes all of the session's connections through the
// given per-client access link (simnet.Network.NewAccessLink); nil
// keeps the plain shared-link behaviour. Call before the session runs.
func (s *Session) SetAccessLink(l *simnet.AccessLink) { s.link = l }

// SetResolver routes this session's media requests through a cell's
// edge-cache tier. catalog is the session's title index in the cache
// namespace (the fleet service index). Must be called before Run.
func (s *Session) SetResolver(r cdn.Resolver, catalog int32) {
	s.resolver = r
	s.catalogID = catalog
}

// SetLean puts the session in lean mode: no Result is ever allocated —
// no per-segment display arrays, no download/transaction/event logs, no
// 1 Hz samples — and the session's only output is the online Summary.
// The state machine runs identically (every float trajectory, including
// the 1 Hz sampler ticks, matches the full-fidelity run bit for bit);
// only the recording is dropped. Call before the session is added to a
// Group. Population runs use this for every non-focal session.
func (s *Session) SetLean() { s.lean = true }

// ensureResult allocates the full Result unless the session runs lean.
// Group.Add calls it on registration, so construction stays cheap for
// the lean population path.
func (s *Session) ensureResult() {
	if s.lean || s.res != nil {
		return
	}
	n := s.segCount
	nAudio := 0
	if len(s.pres.Audio) > 0 {
		nAudio = len(s.pres.Audio[0].Segments)
	}
	s.res = &Result{
		Name:               s.cfg.Name,
		MediaDuration:      s.pres.Duration,
		SegmentCount:       n,
		SegmentDuration:    s.segDur,
		StartupDelay:       -1,
		Displayed:          make([]int, n),
		DisplayedWallStart: make([]float64, n),
		// Sized for the common full run: one sample per second plus one
		// download and transaction per segment (growth still works when
		// replacement or seeks exceed the estimate).
		Samples:      make([]BufferSample, 0, int(s.cfg.SessionDuration)+2),
		Downloads:    make([]Download, 0, n+nAudio+8),
		Transactions: make([]traffic.Transaction, 0, n+nAudio+16),
		Declared:     s.declared,
	}
	for i := range s.res.Displayed {
		s.res.Displayed[i] = -1
		s.res.DisplayedWallStart[i] = -1
	}
}

// endAt is the wall time the session's duration budget expires.
func (s *Session) endAt() float64 { return s.startAt + s.cfg.SessionDuration }

// viewCache memoizes clientView per presentation: the view is read-only,
// and experiments run thousands of sessions against a handful of shared
// presentations, so cloning the segment tables per session was one of the
// top allocators. Keyed by pointer; concurrent sessions may race to build
// the first view and LoadOrStore keeps exactly one.
var viewCache sync.Map // *manifest.Presentation -> *manifest.Presentation

// clientView returns the shared client-side view of a presentation,
// hiding per-segment sizes when the protocol does not expose them before
// download (plain HLS URLs and SmoothStreaming templates carry no size
// information; §4.2). The result is shared across sessions and must not
// be mutated.
func clientView(p *manifest.Presentation) *manifest.Presentation {
	if v, ok := viewCache.Load(p); ok {
		return v.(*manifest.Presentation)
	}
	v, _ := viewCache.LoadOrStore(p, buildClientView(p))
	return v.(*manifest.Presentation)
}

func buildClientView(p *manifest.Presentation) *manifest.Presentation {
	exposes := p.Addressing == manifest.RangesInManifest || p.Addressing == manifest.SidxRanges
	cp := *p
	strip := func(rs []*manifest.Rendition) []*manifest.Rendition {
		out := make([]*manifest.Rendition, len(rs))
		for i, r := range rs {
			rr := *r
			rr.Segments = append([]manifest.Segment(nil), r.Segments...)
			if !exposes {
				for j := range rr.Segments {
					rr.Segments[j].Size = 0
				}
			}
			out[i] = &rr
		}
		return out
	}
	cp.Video = strip(p.Video)
	cp.Audio = strip(p.Audio)
	return &cp
}

func (s *Session) buildDocQueue() {
	p := s.pres
	push := func(url string) {
		if body, ok := s.org.Document(url); ok {
			s.docQueue = append(s.docQueue, docReq{url: url, rs: -1, re: -1, body: body, wireSize: float64(len(body))})
		}
	}
	push(p.ManifestURL())
	switch p.Protocol {
	case manifest.HLS:
		push(p.Video[s.cfg.StartupTrack].PlaylistURL)
	case manifest.DASH:
		if p.Addressing == manifest.SidxRanges {
			for _, r := range append(append([]*manifest.Rendition{}, p.Video...), p.Audio...) {
				if body, ok := s.org.Sidx(r.MediaURL); ok {
					s.docQueue = append(s.docQueue, docReq{
						url: r.MediaURL, rs: r.IndexOffset, re: r.IndexOffset + r.IndexLength - 1,
						body: body, wireSize: float64(r.IndexLength),
					})
				}
			}
		}
	}
	for _, d := range s.docQueue {
		s.fetchedDocs[d.url] = true
	}
}

func (s *Session) separateAudio() bool { return len(s.pres.Audio) > 0 }

func (s *Session) conn(slot int) *simnet.Conn {
	if s.conns[slot] == nil {
		s.conns[slot] = s.net.DialVia(s.link)
	}
	return s.conns[slot]
}

// newMeta returns request metadata from the session's free list (every
// field zeroed) or a fresh allocation.
func (s *Session) newMeta() *reqMeta {
	if k := len(s.metaFree); k > 0 {
		m := s.metaFree[k-1]
		s.metaFree = s.metaFree[:k-1]
		return m
	}
	return &reqMeta{} //vodlint:allow hotalloc — free-list miss: amortized to zero once metaFree warms up
}

// freeMeta recycles request metadata once no transfer references it.
func (s *Session) freeMeta(m *reqMeta) {
	*m = reqMeta{}
	s.metaFree = append(s.metaFree, m)
}

//vodlint:hotpath
func (s *Session) startTransfer(slot int, size float64, m *reqMeta) {
	m.owner = s
	m.slot = slot
	c := s.conn(slot)
	switch {
	case m.kind == reqSeg && s.resolver != nil:
		rt := s.resolver.Resolve(s.net.Now(), s.objectOf(m), size)
		c.StartVia(size, rt.ExtraLatency, rt.Upstream, m)
	case m.kind == reqPart:
		rt := m.group.route
		c.StartVia(size, rt.ExtraLatency, rt.Upstream, m)
	default:
		c.Start(size, m)
	}
	s.live[slot] = m
	s.inflight++
}

// objectOf names a segment request in the cache namespace.
//
//vodlint:hotpath
func (s *Session) objectOf(m *reqMeta) cdn.Object {
	kind := cdn.KindVideo
	if m.typ == media.TypeAudio {
		kind = cdn.KindAudio
	}
	return cdn.Object{Catalog: s.catalogID, Kind: kind, Track: int32(m.track), Index: int32(m.index)}
}

// Run executes the session to completion and returns the result. It is
// the single-member special case of a Group run, so a solo session and a
// member of a multi-client group behave identically.
func (s *Session) Run() *Result {
	g := NewGroup()
	if err := g.Add(s); err != nil {
		panic(err) // unreachable: a fresh group accepts any session
	}
	g.Run()
	return s.res
}

// nextDeadline returns the next time playback or control state can change
// without a download completing.
func (s *Session) nextDeadline() float64 {
	d := math.Inf(1)
	now := s.net.Now()
	if s.playing {
		end := math.Min(s.playableEnd(), s.pres.Duration)
		d = math.Min(d, now+(end-s.playheadAtNow()))
		if s.pausedVideo {
			occ := s.videoBuf.PlayableEnd(s.playheadAtNow()) - s.playheadAtNow()
			d = math.Min(d, now+math.Max(0, occ-s.cfg.ResumeThresholdSec))
		}
		if s.pausedAud {
			occ := s.audioBuf.PlayableEnd(s.playheadAtNow()) - s.playheadAtNow()
			d = math.Min(d, now+math.Max(0, occ-s.cfg.ResumeThresholdSec))
		}
	}
	if s.inflight > 0 || s.playing {
		// Keep the 1 Hz sampler ticking while anything is happening.
		d = math.Min(d, s.nextSample)
	}
	if len(s.pendingSeeks) > 0 {
		d = math.Min(d, s.pendingSeeks[0].AtSec)
	}
	return d
}

// playableEnd is the media time up to which playback can proceed.
func (s *Session) playableEnd() float64 {
	end := s.videoBuf.PlayableEnd(s.playhead)
	if s.separateAudio() {
		end = math.Min(end, s.audioBuf.PlayableEnd(s.playhead))
	}
	return end
}

func (s *Session) bufferedSec() float64 { return s.playableEnd() - s.playhead }

func (s *Session) bufferedSegments() int {
	n := s.videoBuf.UnplayedCount(s.playhead)
	if s.separateAudio() {
		if a := s.audioBuf.UnplayedCount(s.playhead); a < n {
			n = a
		}
	}
	return n
}

// playheadAtNow interpolates the playhead to the current wall time (the
// playhead field is only synced by advancePlayback).
func (s *Session) playheadAtNow() float64 {
	ph := s.playhead
	if s.playing {
		ph += s.net.Now() - s.lastTime
		if end := s.playableEnd(); ph > end {
			ph = end
		}
	}
	return ph
}

// advancePlayback moves the playhead to wall time t, recording displayed
// segments, stalls, 1 Hz samples and playback intervals.
func (s *Session) advancePlayback(t float64) {
	for s.lastTime < t-eps {
		if !s.playing {
			s.sampleUpTo(t)
			s.lastTime = t
			break
		}
		limit := math.Min(s.playableEnd(), s.pres.Duration)
		maxAdv := math.Max(0, limit-s.playhead)
		dt := t - s.lastTime
		adv := math.Min(dt, maxAdv)
		s.sampleUpTo(s.lastTime + adv)
		s.recordDisplayUpTo(s.playhead + adv)
		s.playhead += adv
		s.lastTime += adv
		if adv < dt-eps {
			if s.playhead >= s.pres.Duration-eps {
				s.stopPlaying(false)
				s.finished = true
				s.sampleUpTo(t)
				s.lastTime = t
				return
			}
			s.stopPlaying(true)
		}
	}
}

// sampleUpTo records 1 Hz buffer samples for wall times up to t, the
// simulator-side analogue of the paper's seekbar hook (§2.4).
func (s *Session) sampleUpTo(t float64) {
	for s.nextSample <= t+eps {
		// The tick advances even in lean mode (only the append is
		// skipped) so full and lean sessions step through identical
		// deadline sequences.
		if s.res != nil {
			ph := s.playhead
			if s.playing {
				ph += s.nextSample - s.lastTime
				if end := s.playableEnd(); ph > end {
					ph = end
				}
			}
			s.res.Samples = append(s.res.Samples, BufferSample{
				T:        s.nextSample,
				Playhead: ph,
				VideoSec: math.Max(0, s.videoBuf.PlayableEnd(ph)-ph),
				AudioSec: math.Max(0, s.audioBuf.PlayableEnd(ph)-ph),
				Playing:  s.playing,
			})
		}
		s.nextSample++
	}
}

// recordDisplayUpTo notes the on-screen track for every segment whose
// playback begins before media time target.
func (s *Session) recordDisplayUpTo(target float64) {
	segDur := s.segDur
	for s.nextDisplayIdx < s.segCount {
		start := float64(s.nextDisplayIdx) * segDur
		if start >= target-eps {
			break
		}
		if seg, ok := s.videoBuf.SegmentAt(start + eps); ok {
			if s.res != nil {
				s.res.Displayed[s.nextDisplayIdx] = seg.Track
				s.res.DisplayedWallStart[s.nextDisplayIdx] = s.lastTime + (start - s.playhead)
			}
			s.foldDisplayed(s.nextDisplayIdx, seg.Track)
		}
		s.nextDisplayIdx++
	}
}

// foldDisplayed streams one displayed segment into the online Summary,
// in the exact order and arithmetic qoe.FromResult uses over a full
// Result's Displayed array, so the lean summary matches the post-hoc
// fold bit for bit. Segments display in strictly ascending index order
// (except after a seek, which taints the summary).
func (s *Session) foldDisplayed(index, track int) {
	dur := s.segDur
	if start := float64(index) * s.segDur; start+s.segDur > s.pres.Duration {
		dur = s.pres.Duration - start
	}
	s.sum.WeightedBitrateSec += s.declared[track] * dur
	s.sum.PlayedMediaSec += dur
	s.sum.TimeOnTrack[track] += dur
	if prev := s.sumPrevTrack; prev >= 0 && track != prev {
		s.sum.Switches++
		if d := track - prev; d > 1 || d < -1 {
			s.sum.NonConsecutive++
		}
	}
	s.sumPrevTrack = track
}

// processSeeks executes scheduled user seeks whose time has come: stop
// playback, flush the buffers (refetching after a seek is what most
// players do), move the cursors to the target segment, and let the
// recovery gates restart playback.
func (s *Session) processSeeks() {
	for len(s.pendingSeeks) > 0 && s.net.Now() >= s.pendingSeeks[0].AtSec-eps {
		ev := s.pendingSeeks[0]
		s.pendingSeeks = s.pendingSeeks[1:]
		target := math.Max(0, math.Min(ev.ToSec, s.pres.Duration-1e-6))
		s.stopPlaying(false)
		s.finished = false
		// Flush: everything buffered is refetched after the jump.
		for _, b := range s.videoBuf.DropFromIndex(0) {
			s.wastedBytes += b.Bytes
		}
		for _, b := range s.audioBuf.DropFromIndex(0) {
			s.wastedBytes += b.Bytes
		}
		s.playhead = target
		s.lastTime = s.net.Now()
		s.nextVideo = int(target / s.segDur)
		if s.separateAudio() {
			s.nextAudio = int(target / s.pres.Audio[0].SegmentDuration)
		}
		// Rewinding the display cursor makes the online fold re-count
		// re-displayed segments; the summary is no longer FromResult.
		s.sum.Tainted = true
		s.nextDisplayIdx = s.nextVideo
		s.pausedVideo, s.pausedAud = false, false
		s.seekOpen = true
		s.seekStart = s.net.Now()
		if s.res != nil {
			s.res.Seeks = append(s.res.Seeks, SeekRecord{At: s.net.Now(), To: target, Latency: -1})
		}
		s.eventf("seek", "to %.1fs (buffer flushed)", target)
	}
}

func (s *Session) startPlaying() {
	s.playing = true
	s.curPlay = PlayInterval{WallStart: s.net.Now(), MediaStart: s.playhead}
	if s.seekOpen {
		s.seekOpen = false
		if s.res != nil {
			s.res.Seeks[len(s.res.Seeks)-1].Latency = s.net.Now() - s.seekStart
		}
		s.eventf("seek-done", "resumed after %.2fs", s.net.Now()-s.seekStart)
	}
	if !s.started {
		s.started = true
		// Startup delay is measured from the session's own arrival, so a
		// fleet client joining at t=400 reports the same delay a solo
		// session (startAt 0) would.
		s.startupDelay = s.net.Now() - s.startAt
		s.sum.StartupDelay = s.startupDelay
		if s.res != nil {
			s.res.StartupDelay = s.startupDelay
		}
		s.eventf("startup", "playback started, delay %.2fs", s.startupDelay)
	} else if s.stallOpen {
		st := Stall{Start: s.stallStart, End: s.net.Now()}
		if s.res != nil {
			s.res.Stalls = append(s.res.Stalls, st)
		}
		s.sum.StallCount++
		s.sum.StallSec += st.End - st.Start
		s.stallOpen = false
		s.eventf("resume", "stall over after %.2fs", s.net.Now()-s.stallStart)
	}
}

func (s *Session) stopPlaying(stall bool) {
	if !s.playing {
		return
	}
	s.playing = false
	s.curPlay.WallEnd = s.lastTime
	if s.res != nil {
		s.res.PlayIntervals = append(s.res.PlayIntervals, s.curPlay)
	}
	s.sum.PlayedSec += s.curPlay.WallEnd - s.curPlay.WallStart
	if stall {
		s.stallOpen = true
		s.stallStart = s.lastTime
		s.eventf("stall", "buffer empty at playhead %.1fs", s.playhead)
	}
}

// eventf records an annotated timeline event; in lean mode it is a
// no-op, and the format string is never rendered — which keeps the
// fmt.Sprintf cost out of the population hot path entirely.
func (s *Session) eventf(kind, format string, args ...any) {
	if s.res == nil {
		return
	}
	s.res.Events = append(s.res.Events, Event{T: s.net.Now(), Kind: kind, Detail: fmt.Sprintf(format, args...)}) //vodlint:allow hotalloc — observer-only: the res == nil guard above keeps lean sessions off this line
}

// maybeStartPlayback applies the startup/recovery gates (§3.3.1, §4.3).
func (s *Session) maybeStartPlayback() {
	if s.playing || s.finished {
		return
	}
	need, needSegs := s.cfg.StartupBufferSec, s.cfg.StartupSegments
	if s.started {
		need, needSegs = s.cfg.RecoverySec, s.cfg.RecoverySegments
	}
	allDownloaded := s.nextVideo >= s.segCount &&
		(!s.separateAudio() || s.nextAudio >= len(s.pres.Audio[0].Segments))
	if (s.bufferedSec() >= need-eps && s.bufferedSegments() >= needSegs) ||
		(allDownloaded && s.bufferedSec() > eps) {
		s.startPlaying()
	}
}

// updatePauseFlags runs the download controller's hysteresis (§3.3.2).
func (s *Session) updatePauseFlags() {
	ph := s.playheadAtNow()
	occV := math.Max(0, s.videoBuf.PlayableEnd(ph)-ph)
	s.pausedVideo = s.hysteresis(s.pausedVideo, occV, "video")
	if s.separateAudio() {
		occA := math.Max(0, s.audioBuf.PlayableEnd(ph)-ph)
		s.pausedAud = s.hysteresis(s.pausedAud, occA, "audio")
	}
}

func (s *Session) hysteresis(paused bool, occ float64, kind string) bool {
	if paused {
		if occ <= s.cfg.ResumeThresholdSec+1e-6 {
			s.eventf("resume-dl", "%s buffer %.1fs ≤ resume threshold %.0fs", kind, occ, s.cfg.ResumeThresholdSec)
			return false
		}
		return true
	}
	if occ >= s.cfg.PauseThresholdSec-1e-6 {
		s.eventf("pause-dl", "%s buffer %.1fs ≥ pause threshold %.0fs", kind, occ, s.cfg.PauseThresholdSec)
		return true
	}
	return false
}

// ---- request issuing ----

func (s *Session) issueRequests() {
	s.processSeeks()
	if s.downloadDead {
		return
	}
	if len(s.docQueue) > 0 {
		if !s.conn(0).Busy() {
			d := s.docQueue[0]
			s.docQueue = s.docQueue[1:]
			s.startDoc(0, d)
		}
		return
	}
	s.updatePauseFlags()
	switch s.cfg.Scheduler {
	case SchedulerSingle:
		s.issueSingle()
	case SchedulerParallel:
		s.issueParallel()
	case SchedulerSplit:
		s.issueSplit()
	}
}

func (s *Session) startDoc(slot int, d docReq) {
	m := s.newMeta()
	m.kind, m.url, m.rs, m.re, m.body, m.dlIdx = reqDoc, d.url, d.rs, d.re, d.body, -1
	s.startTransfer(slot, d.wireSize, m)
}

// nextTaskSynced picks the content type that is further behind, counting
// both buffered and inflight media (§3.2's coordination best practice).
// It returns -1 when everything has been requested.
func (s *Session) nextTaskSynced() media.MediaType {
	vDone := s.nextVideo >= s.segCount
	if !s.separateAudio() {
		if vDone {
			return media.MediaType(-1)
		}
		return media.TypeVideo
	}
	aDone := s.nextAudio >= len(s.pres.Audio[0].Segments)
	vEnd := float64(s.nextVideo) * s.segDur
	aEnd := float64(s.nextAudio) * s.pres.Audio[0].SegmentDuration
	switch {
	case vDone && aDone:
		return media.MediaType(-1)
	case vDone:
		return media.TypeAudio
	case aDone:
		return media.TypeVideo
	case aEnd < vEnd:
		return media.TypeAudio
	default:
		return media.TypeVideo
	}
}

func (s *Session) issueSingle() {
	if s.conn(0).Busy() {
		return
	}
	switch s.nextTaskSynced() {
	case media.TypeAudio:
		if !s.pausedAud {
			s.issueSegment(media.TypeAudio, 0)
		}
	case media.TypeVideo:
		if !s.pausedVideo {
			s.issueSegment(media.TypeVideo, 0)
		}
	default:
		// Everything fetched; replacement may still want to work.
		if !s.pausedVideo {
			s.issueSegment(media.TypeVideo, 0)
		}
	}
}

func (s *Session) issueParallel() {
	if s.separateAudio() && s.cfg.Audio == AudioDesynced {
		// D1: the video pipeline prefetches greedily on N-1 connections
		// while audio trails on a single low-priority connection that
		// only fetches while audio is behind video — under low bandwidth
		// audio's 1/N share barely covers its bitrate, so the two
		// buffers drift tens of seconds apart (Figure 6).
		audioBehind := float64(s.nextAudio)*s.pres.Audio[0].SegmentDuration <
			float64(s.nextVideo)*s.segDur
		if !s.conn(0).Busy() && !s.pausedAud && audioBehind && s.nextAudio < len(s.pres.Audio[0].Segments) {
			s.issueSegment(media.TypeAudio, 0)
		}
		for slot := 1; slot < s.cfg.MaxConnections; slot++ {
			if s.conn(slot).Busy() || s.pausedVideo || s.nextVideo >= s.segCount {
				continue
			}
			s.issueSegment(media.TypeVideo, slot)
		}
		return
	}
	for slot := 0; slot < s.cfg.MaxConnections; slot++ {
		if s.conn(slot).Busy() {
			continue
		}
		task := s.nextTaskSynced()
		if task == media.TypeAudio && (s.audioInflight() || s.pausedAud) {
			task = media.TypeVideo
		}
		if task != media.TypeVideo && task != media.TypeAudio {
			return
		}
		if task == media.TypeVideo {
			// Synced multi-connection services use their connections to
			// separate audio from video, not to pipeline video: more
			// than one concurrent video fetch would split the link and
			// depress the bandwidth estimate (§3.2).
			if s.pausedVideo || s.nextVideo >= s.segCount || s.videoInflight() >= s.cfg.VideoPipeline {
				continue
			}
		}
		s.issueSegment(task, slot)
	}
}

func (s *Session) videoInflight() int {
	n := 0
	for _, m := range s.live {
		if m != nil && m.kind != reqDoc && m.typ == media.TypeVideo {
			n++
		}
	}
	return n
}

func (s *Session) audioInflight() bool {
	for _, m := range s.live {
		if m != nil && m.kind != reqDoc && m.typ == media.TypeAudio {
			return true
		}
	}
	return false
}

func (s *Session) issueSplit() {
	if s.group != nil {
		return
	}
	// All connections must be idle: the last startup document can still
	// be in flight on connection 0 when the queue empties.
	for _, c := range s.conns {
		if c != nil && c.Busy() {
			return
		}
	}
	task := s.nextTaskSynced()
	if task == media.TypeAudio && s.pausedAud {
		task = media.TypeVideo
	}
	if task == media.TypeVideo && (s.pausedVideo || s.nextVideo >= s.segCount) {
		return
	}
	if task != media.TypeVideo && task != media.TypeAudio {
		return
	}
	meta, size, ok := s.prepareSegment(task)
	if !ok {
		return
	}
	parts := s.cfg.MaxConnections
	if float64(parts) > size {
		parts = 1
	}
	g := &splitGroup{meta: *meta, remaining: parts, started: s.net.Now(), bytes: size} //vodlint:allow hotalloc — split mode only (SplitParts > 1): off by default in fleet runs
	if meta.kind == reqSeg && s.resolver != nil {
		// One cache verdict per segment; the ranged parts share it.
		g.route = s.resolver.Resolve(s.net.Now(), s.objectOf(meta), size)
	}
	s.group = g
	// Part weights: equal by default; SplitSkew > 0 inflates later
	// parts, modelling split points chosen without regard to the
	// per-connection bandwidth (§3.2) — the segment then finishes only
	// when the most overloaded connection does.
	weights := make([]float64, parts) //vodlint:allow hotalloc — split mode only (SplitParts > 1): off by default in fleet runs
	wsum := 0.0
	for i := range weights {
		weights[i] = 1 + s.cfg.SplitSkew*float64(i)
		if weights[i] < 0.2 {
			weights[i] = 0.2
		}
		wsum += weights[i]
	}
	// Part boundaries are integer byte offsets so the ranged requests
	// tile the segment exactly.
	off := 0.0
	intOff := int64(0)
	for i := 0; i < parts; i++ {
		m := *meta
		m.kind = reqPart
		m.group = g
		off += size * weights[i] / wsum
		end := int64(off + 0.5)
		if i == parts-1 {
			end = int64(size + 0.5)
		}
		sz := float64(end - intOff)
		if m.rs >= 0 {
			m.rs = meta.rs + intOff
			m.re = meta.rs + end - 1
			if i == parts-1 {
				m.re = meta.re
				sz = float64(m.re - m.rs + 1)
			}
		}
		intOff = end
		pm := s.newMeta()
		*pm = m
		s.startTransfer(i, sz, pm)
	}
	s.freeMeta(meta) // parts carry copies; the original is done
}

// issueSegment prepares and starts the next segment of a type on a slot.
func (s *Session) issueSegment(t media.MediaType, slot int) {
	m, size, ok := s.prepareSegment(t)
	if !ok {
		return
	}
	if m.kind == reqDoc { // a lazily fetched HLS media playlist
		s.startTransfer(slot, size, m)
		return
	}
	s.startTransfer(slot, size, m)
}

// prepareSegment resolves the next segment of a type into request
// metadata, running adaptation (and replacement for video), the lazy HLS
// playlist fetch, the request gate, and the download log. It advances the
// per-type cursor on success.
func (s *Session) prepareSegment(t media.MediaType) (*reqMeta, float64, bool) {
	var rend *manifest.Rendition
	var index int
	var repl bool
	if t == media.TypeAudio {
		index = s.nextAudio
		rend = s.pres.Audio[0]
		if index >= len(rend.Segments) {
			return nil, 0, false
		}
	} else {
		prevTrack := s.lastVideoTrack
		track := s.selectVideoTrack()
		index = s.nextVideo
		if s.cfg.Scheduler == SchedulerSingle {
			act := s.considerReplacement(track)
			switch act.Op {
			case replacement.OpReplace:
				index, repl = act.Index, true
			case replacement.OpDropTail:
				dropped := s.videoBuf.DropFromIndex(act.Index)
				if len(dropped) > 0 {
					s.discard(dropped)
					s.eventf("sr-drop", "dropped %d buffered segments from index %d", len(dropped), act.Index)
					s.nextVideo = act.Index
					index = act.Index
				}
			}
		}
		if !repl && index >= s.segCount {
			return nil, 0, false
		}
		rend = s.pres.Video[track]
		// HLS fetches a track's media playlist before its first segment
		// from that track.
		if s.pres.Protocol == manifest.HLS {
			if pl := rend.PlaylistURL; pl != "" && !s.fetchedDocs[pl] {
				s.fetchedDocs[pl] = true
				if body, ok := s.org.Document(pl); ok {
					m := s.newMeta()
					m.kind, m.url, m.rs, m.re, m.body, m.dlIdx = reqDoc, pl, -1, -1, body, -1
					return m, float64(len(body)), true
				}
			}
		}
		s.lastVideoTrack = track
		_ = prevTrack
	}
	seg := rend.Segments[index]
	m := s.newMeta()
	m.kind, m.typ, m.track, m.index, m.replace = reqSeg, t, rend.ID, index, repl
	m.url, m.rs, m.re, m.dlIdx = seg.URL, -1, -1, -1
	if seg.URL == "" {
		m.url = rend.MediaURL
		m.rs, m.re = seg.Offset, seg.Offset+seg.Length-1
	}
	if gate := s.cfg.RequestGate; gate != nil {
		req := Request{URL: m.url, RangeStart: m.rs, RangeEnd: m.re, IsSegment: true, SegmentSeq: s.segSeq}
		if !gate(req) {
			if s.res != nil {
				now := s.net.Now()
				s.res.Transactions = append(s.res.Transactions, traffic.Transaction{
					Start: now, End: now, Method: "GET", URL: m.url,
					RangeStart: m.rs, RangeEnd: m.re, Rejected: true,
				})
			}
			s.eventf("reject", "origin rejected segment request #%d", s.segSeq)
			s.downloadDead = true
			s.freeMeta(m)
			return nil, 0, false
		}
	}
	s.segSeq++
	if t == media.TypeAudio {
		s.nextAudio++
	} else if !repl {
		s.nextVideo = index + 1
	}
	m.dlIdx = -1
	if s.res != nil {
		m.dlIdx = len(s.res.Downloads)
		s.res.Downloads = append(s.res.Downloads, Download{
			Type: t, Track: m.track, Index: index,
			Declared: rend.DeclaredBitrate, Duration: seg.Duration,
			Bytes: float64(seg.Size), Start: s.net.Now(), Replacement: repl,
		})
	}
	return m, float64(seg.Size), true
}

func (s *Session) selectVideoTrack() int {
	occ := s.bufferedSec()
	est := s.cfg.Estimator.Estimate()
	if s.videoSamples < s.cfg.MinEstimateSamples {
		est = 0 // not enough history: stay on the startup track
	}
	ctx := adaptation.Context{
		Declared:        s.declared,
		SegmentDuration: s.segDur,
		SegmentCount:    s.segCount,
		NextIndex:       s.nextVideo,
		BufferSec:       occ,
		BufferTrend:     occ - s.prevDecisionOcc,
		EstimateBps:     est,
		LastTrack:       s.lastVideoTrack,
		StartupTrack:    s.cfg.StartupTrack,
	}
	ctx.Average = s.avgBitrates
	ctx.SegmentSize = s.segSizeFn
	s.prevDecisionOcc = occ
	return s.cfg.Algorithm.Select(ctx)
}

func (s *Session) considerReplacement(selected int) replacement.Action {
	if _, isNone := s.cfg.Replacement.(replacement.None); isNone {
		return replacement.Action{Op: replacement.OpNext}
	}
	ph := s.playheadAtNow()
	buffered := s.replScratch[:0]
	for _, b := range s.videoBuf.segs {
		if b.End <= ph {
			continue
		}
		buffered = append(buffered, replacement.BufferedSegment{Index: b.Index, Track: b.Track, Start: b.Start})
	}
	s.replScratch = buffered
	act := s.cfg.Replacement.Consider(replacement.View{
		Buffered:        buffered,
		Playhead:        ph,
		BufferSec:       s.bufferedSec(),
		SelectedTrack:   selected,
		LastTrack:       s.lastVideoTrack,
		NextIndex:       s.nextVideo,
		SegmentDuration: s.segDur,
	})
	if act.Op == replacement.OpReplace && !s.cfg.MidBufferDiscard {
		// The buffer cannot drop a middle segment; a faithful player
		// falls back to not replacing (ExoPlayer v2's choice, §4.1.2).
		return replacement.Action{Op: replacement.OpNext}
	}
	return act
}

func (s *Session) discard(dropped []BufferedSegment) {
	for _, d := range dropped {
		s.wastedBytes += d.Bytes
		if s.res == nil {
			continue
		}
		for i := len(s.res.Downloads) - 1; i >= 0; i-- {
			dl := &s.res.Downloads[i]
			if dl.Type == media.TypeVideo && dl.Index == d.Index && dl.Track == d.Track && !dl.Discarded {
				dl.Discarded = true
				break
			}
		}
	}
}

// ---- completion handling ----

func (s *Session) onComplete(tr *simnet.Transfer) {
	s.inflight--
	m := tr.Meta.(*reqMeta)
	s.live[m.slot] = nil
	if !s.cfg.Persistent {
		tr.Conn.Close()
		if m.slot < len(s.conns) && s.conns[m.slot] == tr.Conn {
			s.conns[m.slot] = nil
		}
	}
	switch m.kind {
	case reqDoc:
		if s.res != nil {
			s.res.Transactions = append(s.res.Transactions, traffic.Transaction{
				Start: tr.Started, End: tr.Completed, Method: "GET", URL: m.url,
				RangeStart: m.rs, RangeEnd: m.re, Bytes: int64(tr.Size), Body: m.body,
			})
		}
		s.totalBytes += tr.Size
	case reqSeg:
		if s.res != nil {
			s.res.Transactions = append(s.res.Transactions, traffic.Transaction{
				Start: tr.Started, End: tr.Completed, Method: "GET", URL: m.url,
				RangeStart: m.rs, RangeEnd: m.re, Bytes: int64(tr.Size),
			})
		}
		// Only video chunks feed the estimator: audio segments are tiny,
		// latency-dominated exchanges that would bias the estimate low.
		if m.typ == media.TypeVideo {
			s.addVideoSample(tr.Size*8, tr.Started, tr.Completed)
		}
		s.finishSegmentCore(m, tr.Size, tr.Completed)
	case reqPart:
		if s.res != nil {
			s.res.Transactions = append(s.res.Transactions, traffic.Transaction{
				Start: tr.Started, End: tr.Completed, Method: "GET", URL: m.url,
				RangeStart: m.rs, RangeEnd: m.re, Bytes: int64(tr.Size),
			})
		}
		g := m.group
		g.remaining--
		if g.remaining == 0 {
			s.group = nil
			if g.meta.typ == media.TypeVideo {
				s.addVideoSample(g.bytes*8, g.started, s.net.Now())
			}
			s.finishSegmentCore(&g.meta, g.bytes, s.net.Now())
		}
	}
	s.freeMeta(m)
}

// addVideoSample feeds the bandwidth estimator with the aggregate
// delivery rate since the previous video completion: total bytes the
// link delivered (all connections) over the smaller of the exchange
// duration and the inter-completion interval. Pipelined parallel
// downloads (D1) thus register the aggregate arrival rate rather than a
// 1/N per-connection share, while idle gaps before a download do not
// drag the estimate down.
func (s *Session) addVideoSample(bits, started, completed float64) {
	delivered := s.net.Delivered()
	aggBits := (delivered - s.deliveredAtDone) * 8
	dur := completed - started
	if s.lastVideoDone > 0 {
		if d := completed - s.lastVideoDone; d < dur {
			dur = d
		}
	} else {
		aggBits = bits
	}
	if dur < 1e-3 {
		dur = 1e-3
	}
	if aggBits <= 0 {
		aggBits = bits
	}
	s.lastVideoDone = completed
	s.deliveredAtDone = delivered
	s.videoSamples++
	s.cfg.Estimator.Add(aggBits, dur)
}

// finishSegmentCore updates buffers and playback state once a segment
// (or a completed split group) has fully arrived.
func (s *Session) finishSegmentCore(m *reqMeta, size, completed float64) {
	s.totalBytes += size
	if s.res != nil && m.dlIdx >= 0 && m.dlIdx < len(s.res.Downloads) {
		s.res.Downloads[m.dlIdx].End = completed
	}
	var rend *manifest.Rendition
	var buf *Buffer
	if m.typ == media.TypeAudio {
		rend, buf = s.pres.Audio[0], &s.audioBuf
	} else {
		rend, buf = s.pres.Video[m.track], &s.videoBuf
	}
	seg := rend.Segments[m.index]
	bs := BufferedSegment{
		Type: m.typ, Track: m.track, Index: m.index,
		Start: seg.Start, End: seg.Start + seg.Duration,
		Bytes: size, DownloadedAt: completed,
	}
	ph := s.playheadAtNow()
	if m.replace && bs.Start < ph {
		// The position already played; the whole re-download is waste.
		s.wastedBytes += size
		if s.res != nil && m.dlIdx >= 0 {
			s.res.Downloads[m.dlIdx].Discarded = true
		}
	} else {
		old, replaced := buf.Insert(bs)
		if replaced {
			s.wastedBytes += old.Bytes
			if s.res != nil {
				for i := len(s.res.Downloads) - 1; i >= 0; i-- {
					dl := &s.res.Downloads[i]
					if dl.Type == m.typ && dl.Index == m.index && dl.Track == old.Track && !dl.Discarded && dl.End > 0 {
						dl.Discarded = true
						break
					}
				}
			}
			s.eventf("sr-replace", "segment %d: track %d → %d", m.index, old.Track, m.track)
		} else if s.res != nil && m.typ == media.TypeVideo && !m.replace {
			// The prev-track scan walks the download log, so it exists
			// only when the log does — it feeds nothing but the event.
			if prev := s.prevDownloadedTrack(m.index); prev >= 0 && prev != m.track {
				s.eventf("switch", "segment %d downloaded at track %d (prev %d)", m.index, m.track, prev)
			}
		}
	}
	s.videoBuf.GC(ph)
	if s.separateAudio() {
		s.audioBuf.GC(ph)
	}
	s.maybeStartPlayback()
}

// prevDownloadedTrack returns the track of the forward video download
// with the highest index below the given one, or -1.
func (s *Session) prevDownloadedTrack(index int) int {
	best, bestIdx := -1, -1
	for _, d := range s.res.Downloads {
		if d.Type != media.TypeVideo || d.Replacement || d.End == 0 {
			continue
		}
		if d.Index < index && d.Index > bestIdx {
			bestIdx, best = d.Index, d.Track
		}
	}
	return best
}

func (s *Session) finalize() {
	end := math.Min(s.net.Now(), s.endAt())
	s.advancePlayback(end)
	if s.playing {
		s.playing = false
		s.curPlay.WallEnd = s.lastTime
		if s.res != nil {
			s.res.PlayIntervals = append(s.res.PlayIntervals, s.curPlay)
		}
		s.sum.PlayedSec += s.curPlay.WallEnd - s.curPlay.WallStart
	}
	if s.stallOpen {
		if s.res != nil {
			s.res.Stalls = append(s.res.Stalls, Stall{Start: s.stallStart, End: end})
		}
		s.sum.StallCount++
		s.sum.StallSec += end - s.stallStart
		s.stallOpen = false
	}
	s.sum.TotalBytes = s.totalBytes
	s.sum.WastedBytes = s.wastedBytes
	if s.res != nil {
		s.res.EndTime = end
		s.res.TotalBytes = s.totalBytes
		s.res.WastedBytes = s.wastedBytes
	}
}

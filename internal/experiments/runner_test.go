package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/origin"
	"repro/internal/services"
)

// renderResult flattens a result's tables and plots to one comparable
// string (timing fields are excluded — wall clock is never deterministic).
func renderResult(r Result) string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	for _, p := range r.Plots {
		b.WriteString(p)
		b.WriteString("\n")
	}
	return b.String()
}

// TestRunAllDeterminism is the engine's core guarantee: a serial run and
// a heavily parallel run produce byte-identical tables and plots for
// every experiment ID. Fixed seeds make each experiment deterministic in
// isolation; index-ordered collection makes the schedule irrelevant.
func TestRunAllDeterminism(t *testing.T) {
	// Force real fan-out even on small CI machines: RunAll workers and
	// the intra-experiment sweep() both key off GOMAXPROCS.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	serial, err := RunAll(context.Background(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var progressed atomic.Int32
	parallel, err := RunAll(context.Background(), Options{
		Workers:    8,
		OnProgress: func(Result) { progressed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != len(All()) {
		t.Fatalf("result counts differ: %d serial, %d parallel, %d registered",
			len(serial), len(parallel), len(All()))
	}
	if int(progressed.Load()) != len(parallel) {
		t.Errorf("OnProgress fired %d times for %d experiments", progressed.Load(), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("order diverged at %d: %s vs %s", i, serial[i].ID, parallel[i].ID)
		}
		s, p := renderResult(serial[i]), renderResult(parallel[i])
		if s != p {
			t.Errorf("%s: output differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].ID, s, p)
		}
		if s == "" {
			t.Errorf("%s: empty output", serial[i].ID)
		}
	}
}

func TestRunAllSubset(t *testing.T) {
	ids := []string{"fig4", "fig3"} // deliberately not paper order
	results, err := RunAll(context.Background(), Options{Workers: 4, IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, id := range ids {
		if results[i].ID != id || results[i].Index != i {
			t.Errorf("result %d: got %s (index %d), want %s", i, results[i].ID, results[i].Index, id)
		}
	}
	if _, err := RunAll(context.Background(), Options{IDs: []string{"fig999"}}); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunAll(ctx, Options{Workers: 4, IDs: []string{"fig3", "fig4"}})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	for _, r := range results {
		if r.Err == nil && r.Tables == nil {
			t.Errorf("%s: neither ran nor marked with the context error", r.ID)
		}
	}
}

// TestKeyedOnceConcurrent hammers the per-key once cache from many
// goroutines: every key's builder must run exactly once, unrelated keys
// must not serialise each other, and all callers must observe the same
// value. Run under -race this is the engine's cache-safety proof.
func TestKeyedOnceConcurrent(t *testing.T) {
	const keys = 12
	const callers = 16
	var cache keyedOnce[int, int]
	var builds [keys]atomic.Int32
	var wg sync.WaitGroup
	errc := make(chan error, keys*callers)
	for k := 0; k < keys; k++ {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, err := cache.get(k, func() (int, error) {
					builds[k].Add(1)
					return k * k, nil
				})
				if err != nil {
					errc <- err
					return
				}
				if v != k*k {
					errc <- fmt.Errorf("key %d: got %d", k, v)
				}
			}(k)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for k := 0; k < keys; k++ {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times", k, n)
		}
	}
}

// TestServiceOriginConcurrentStress exercises the real origin cache the
// way parallel experiments do: every service requested from many
// goroutines at once. All callers of a service must get the same origin
// pointer (built once), and under -race the shared read paths must stay
// clean.
func TestServiceOriginConcurrentStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	svcs := allServices()
	const callers = 8
	got := make([][]*origin.Origin, len(svcs))
	for i := range got {
		got[i] = make([]*origin.Origin, callers)
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(svcs)*callers)
	for si, svc := range svcs {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(si, c int, svc *services.Service) {
				defer wg.Done()
				org, err := serviceOrigin(svc)
				if err != nil {
					errc <- fmt.Errorf("%s: %w", svc.Name, err)
					return
				}
				got[si][c] = org
			}(si, c, svc)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for si, svc := range svcs {
		for c := 1; c < callers; c++ {
			if got[si][c] != got[si][0] {
				t.Errorf("%s: caller %d got a different origin instance", svc.Name, c)
			}
		}
	}
}

// TestByIDCached: ByID must resolve from the cached index, returning a
// copy the caller can mutate without corrupting the registry.
func TestByIDCached(t *testing.T) {
	a, b := ByID("fig8"), ByID("fig8")
	if a == nil || b == nil {
		t.Fatal("fig8 not found")
	}
	if a == b {
		t.Error("ByID returned the same pointer twice; callers could alias mutations")
	}
	a.Title = "mutated"
	if c := ByID("fig8"); c.Title != b.Title {
		t.Error("mutating a ByID result leaked into the registry")
	}
}

// Package media models encoded adaptive-streaming content: videos split
// into tracks (quality levels) and segments, with CBR or VBR encoding and a
// configurable policy for the bitrate a service declares in its manifest.
//
// Units follow the paper's conventions: bitrates are bits per second,
// segment sizes are bytes, durations and times are float64 seconds.
//
// The paper streams real commercial content (Netflix movies, the Sintel
// test video, the BBC Testcard stream). We substitute a synthetic content
// model: per-segment "scene complexity" drives per-segment actual bitrates,
// which is the only property of the content the paper's experiments depend
// on (declared vs actual bitrate, segment sizes and durations).
package media

import (
	"fmt"
	"math"
	"math/rand"
)

// MediaType distinguishes video from audio content.
type MediaType int

const (
	TypeVideo MediaType = iota
	TypeAudio
)

// String returns "video" or "audio".
func (t MediaType) String() string {
	if t == TypeAudio {
		return "audio"
	}
	return "video"
}

// Encoding selects between constant- and variable-bitrate encoding.
type Encoding int

const (
	// CBR encodes every segment of a track at (nearly) the same bitrate.
	CBR Encoding = iota
	// VBR encodes segments at different bitrates based on scene
	// complexity; actual segment bitrates within a track can differ by a
	// factor of 2 or more (§2.1 of the paper).
	VBR
)

// String returns "CBR" or "VBR".
func (e Encoding) String() string {
	if e == VBR {
		return "VBR"
	}
	return "CBR"
}

// DeclaredPolicy determines how a service sets the declared bitrate of each
// track in its manifest relative to the track's actual segment bitrates.
type DeclaredPolicy int

const (
	// DeclarePeak sets the declared bitrate near the peak actual segment
	// bitrate of the track (the common practice, and what HLS requires).
	DeclarePeak DeclaredPolicy = iota
	// DeclareAverage sets the declared bitrate near the average actual
	// bitrate (what S1 and S2 do per Figure 5).
	DeclareAverage
)

// Track is one quality level of a presentation. All tracks of a video
// describe the same content at different quality.
type Track struct {
	// ID is the track's position in the ladder, 0 = lowest quality.
	ID int
	// Type is Video or Audio.
	Type MediaType
	// TargetBitrate is the encoder's average target in bits/s. The mean
	// actual segment bitrate equals the target (up to rounding).
	TargetBitrate float64
	// DeclaredBitrate is the bitrate advertised in the manifest.
	DeclaredBitrate float64
	// Width and Height describe the encoded resolution (video only).
	Width, Height int
	// SegmentBytes holds the actual size in bytes of every segment.
	SegmentBytes []float64
	// SegmentDurations holds the true duration of every segment (the
	// last one may be shorter than the nominal duration).
	SegmentDurations []float64
	// SegmentDuration is the nominal duration of each segment.
	SegmentDuration float64
}

// Resolution returns a human label such as "720p" for the track, derived
// from its encoded height. Audio tracks return "audio".
func (t *Track) Resolution() string {
	if t.Type == TypeAudio {
		return "audio"
	}
	return fmt.Sprintf("%dp", t.Height)
}

// PeakBitrate returns the maximum actual segment bitrate of the track.
func (t *Track) PeakBitrate() float64 {
	peak := 0.0
	for i, b := range t.SegmentBytes {
		d := t.segDur(i)
		if r := b * 8 / d; r > peak {
			peak = r
		}
	}
	return peak
}

// AverageBitrate returns the mean actual bitrate of the track, weighted by
// segment duration.
func (t *Track) AverageBitrate() float64 {
	bytes, dur := 0.0, 0.0
	for i, b := range t.SegmentBytes {
		bytes += b
		dur += t.segDur(i)
	}
	if dur == 0 {
		return 0
	}
	return bytes * 8 / dur
}

// ActualBitrate returns the actual bitrate of segment i.
func (t *Track) ActualBitrate(i int) float64 {
	return t.SegmentBytes[i] * 8 / t.segDur(i)
}

func (t *Track) segDur(i int) float64 {
	if i < len(t.SegmentDurations) {
		return t.SegmentDurations[i]
	}
	return t.SegmentDuration
}

// Video is a complete media presentation: a ladder of video tracks,
// optionally separate audio tracks, and per-segment metadata.
type Video struct {
	// Name identifies the presentation (used in URLs).
	Name string
	// Duration is the total media duration in seconds.
	Duration float64
	// SegmentDuration is the nominal video segment duration in seconds.
	SegmentDuration float64
	// AudioSegmentDuration is the nominal audio segment duration; zero if
	// there is no separate audio.
	AudioSegmentDuration float64
	// Encoding is CBR or VBR.
	Encoding Encoding
	// DeclaredPolicy records how declared bitrates were derived.
	DeclaredPolicy DeclaredPolicy
	// Complexity holds the per-video-segment scene complexity factors
	// (mean 1) that produced the VBR sizes.
	Complexity []float64
	// Tracks is the video ladder ordered by ascending quality.
	Tracks []*Track
	// AudioTracks holds separate audio tracks (usually one); empty when
	// audio is multiplexed into the video segments.
	AudioTracks []*Track
}

// SegmentCount returns the number of video segments.
func (v *Video) SegmentCount() int { return segmentCount(v.Duration, v.SegmentDuration) }

// AudioSegmentCount returns the number of audio segments, or 0 when audio
// is multiplexed.
func (v *Video) AudioSegmentCount() int {
	if v.AudioSegmentDuration == 0 {
		return 0
	}
	return segmentCount(v.Duration, v.AudioSegmentDuration)
}

// SeparateAudio reports whether the presentation carries audio in separate
// tracks rather than multiplexed into the video segments.
func (v *Video) SeparateAudio() bool { return len(v.AudioTracks) > 0 }

// SegmentLength returns the duration of video segment i (the last segment
// may be shorter than the nominal segment duration).
func (v *Video) SegmentLength(i int) float64 {
	return segmentLength(v.Duration, v.SegmentDuration, i)
}

// AudioSegmentLength returns the duration of audio segment i.
func (v *Video) AudioSegmentLength(i int) float64 {
	return segmentLength(v.Duration, v.AudioSegmentDuration, i)
}

// SegmentStart returns the media start time of video segment i.
func (v *Video) SegmentStart(i int) float64 { return float64(i) * v.SegmentDuration }

// Track returns the video track with the given ID, or nil.
func (v *Video) Track(id int) *Track {
	if id < 0 || id >= len(v.Tracks) {
		return nil
	}
	return v.Tracks[id]
}

// HighestTrack returns the top of the ladder.
func (v *Video) HighestTrack() *Track { return v.Tracks[len(v.Tracks)-1] }

// LowestTrack returns the bottom of the ladder.
func (v *Video) LowestTrack() *Track { return v.Tracks[0] }

// SegmentSize returns the size in bytes of segment index of the given
// video track.
func (v *Video) SegmentSize(track, index int) float64 {
	return v.Tracks[track].SegmentBytes[index]
}

func segmentCount(total, seg float64) int {
	if seg <= 0 || total <= 0 {
		return 0
	}
	return int(math.Ceil(total/seg - 1e-9))
}

func segmentLength(total, seg float64, i int) float64 {
	start := float64(i) * seg
	if start+seg > total {
		return total - start
	}
	return seg
}

// Config describes a presentation to generate with Generate.
type Config struct {
	// Name identifies the presentation.
	Name string
	// Duration is the media duration in seconds (e.g. 1800 for a show).
	Duration float64
	// SegmentDuration is the nominal video segment duration in seconds.
	SegmentDuration float64
	// TargetBitrates is the encoder ladder (average actual bitrates,
	// bits/s) in ascending order.
	TargetBitrates []float64
	// Encoding selects CBR or VBR.
	Encoding Encoding
	// VBRSpread is the approximate peak/average actual bitrate ratio for
	// VBR tracks; 2 reproduces D1/D2 ("the peak actual bitrate of D1 is
	// twice the average"). Ignored for CBR. Defaults to 2 when zero.
	VBRSpread float64
	// DeclaredPolicy picks how declared bitrates relate to actual ones.
	// DeclarePeak sets declared = VBRSpread * target (the neighbourhood
	// of the peak); DeclareAverage sets declared = target.
	DeclaredPolicy DeclaredPolicy
	// SeparateAudio adds a separate audio track (DASH/Smooth services).
	SeparateAudio bool
	// AudioBitrate is the audio target bitrate; defaults to 96 kbit/s.
	AudioBitrate float64
	// AudioSegmentDuration defaults to SegmentDuration.
	AudioSegmentDuration float64
	// Seed makes generation deterministic.
	Seed int64
}

// resolutionFor maps a video bitrate to a conventional resolution rung so
// experiments can speak of "tracks below 480p" like Figures 11 and 13.
func resolutionFor(bps float64) (w, h int) {
	switch {
	case bps < 300e3:
		return 320, 180
	case bps < 500e3:
		return 426, 240
	case bps < 900e3:
		return 640, 360
	case bps < 1.6e6:
		return 854, 480
	case bps < 3.0e6:
		return 1280, 720
	default:
		return 1920, 1080
	}
}

// Generate builds a deterministic synthetic presentation from cfg.
//
// VBR sizing: a per-segment complexity series c_i (mean 1) is drawn from a
// smoothed lognormal process shared by all tracks (scene complexity is a
// property of the content, so actual bitrates correlate across tracks, as
// in real encoders). Segment sizes are target*duration*c_i/8 bytes. The
// series is scaled so that max c_i ≈ VBRSpread, matching the paper's
// observation that peak ≈ 2× average for D1.
func Generate(cfg Config) (*Video, error) {
	if cfg.Duration <= 0 || cfg.SegmentDuration <= 0 {
		return nil, fmt.Errorf("media: non-positive duration (%v) or segment duration (%v)", cfg.Duration, cfg.SegmentDuration)
	}
	if len(cfg.TargetBitrates) == 0 {
		return nil, fmt.Errorf("media: empty ladder")
	}
	for i := 1; i < len(cfg.TargetBitrates); i++ {
		if cfg.TargetBitrates[i] <= cfg.TargetBitrates[i-1] {
			return nil, fmt.Errorf("media: ladder not ascending at rung %d", i)
		}
	}
	spread := cfg.VBRSpread
	if spread <= 1 {
		spread = 2
	}
	v := &Video{
		Name:            cfg.Name,
		Duration:        cfg.Duration,
		SegmentDuration: cfg.SegmentDuration,
		Encoding:        cfg.Encoding,
		DeclaredPolicy:  cfg.DeclaredPolicy,
	}
	n := v.SegmentCount()
	v.Complexity = complexitySeries(n, cfg.Encoding, spread, cfg.Seed)

	for id, target := range cfg.TargetBitrates {
		declared := target
		if cfg.DeclaredPolicy == DeclarePeak && cfg.Encoding == VBR {
			declared = target * spread
		}
		w, h := resolutionFor(declared)
		tr := &Track{
			ID:               id,
			Type:             TypeVideo,
			TargetBitrate:    target,
			DeclaredBitrate:  declared,
			Width:            w,
			Height:           h,
			SegmentDuration:  cfg.SegmentDuration,
			SegmentBytes:     make([]float64, n),
			SegmentDurations: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			dur := v.SegmentLength(i)
			tr.SegmentDurations[i] = dur
			tr.SegmentBytes[i] = target * dur * v.Complexity[i] / 8
		}
		v.Tracks = append(v.Tracks, tr)
	}

	if cfg.SeparateAudio {
		ab := cfg.AudioBitrate
		if ab == 0 {
			ab = 96e3
		}
		ad := cfg.AudioSegmentDuration
		if ad == 0 {
			ad = cfg.SegmentDuration
		}
		v.AudioSegmentDuration = ad
		an := v.AudioSegmentCount()
		at := &Track{
			ID:               0,
			Type:             TypeAudio,
			TargetBitrate:    ab,
			DeclaredBitrate:  ab,
			SegmentDuration:  ad,
			SegmentBytes:     make([]float64, an),
			SegmentDurations: make([]float64, an),
		}
		for i := 0; i < an; i++ {
			at.SegmentDurations[i] = v.AudioSegmentLength(i)
			at.SegmentBytes[i] = ab * at.SegmentDurations[i] / 8 // audio is CBR
		}
		v.AudioTracks = []*Track{at}
	}
	return v, nil
}

// complexitySeries draws n per-segment complexity factors with mean 1.
// For CBR the series is flat with ±3% jitter; for VBR it is a smoothed
// exponential of an AR(1) process rescaled so max ≈ spread.
func complexitySeries(n int, enc Encoding, spread float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	c := make([]float64, n)
	if enc == CBR {
		mean := 0.0
		for i := range c {
			c[i] = 1 + 0.03*(rng.Float64()*2-1)
			mean += c[i]
		}
		mean /= float64(n)
		for i := range c {
			c[i] /= mean
		}
		return c
	}
	// AR(1) in log space: scenes persist for a few segments.
	x := rng.NormFloat64()
	const rho = 0.75
	for i := range c {
		x = rho*x + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		c[i] = math.Exp(0.45 * x)
	}
	// Normalise mean to 1, then compress toward 1 so that max/mean ≈ spread.
	mean := 0.0
	for _, v := range c {
		mean += v
	}
	mean /= float64(n)
	maxv := 0.0
	for i := range c {
		c[i] /= mean
		if c[i] > maxv {
			maxv = c[i]
		}
	}
	if maxv > 1 {
		// Map c -> 1 + (c-1)*k with k chosen so the max lands on spread,
		// then floor well above zero so sizes stay positive.
		k := (spread - 1) / (maxv - 1)
		for i := range c {
			c[i] = 1 + (c[i]-1)*k
			if c[i] < 0.25 {
				c[i] = 0.25
			}
		}
	}
	// Renormalise the mean (flooring can shift it slightly).
	mean = 0
	for _, v := range c {
		mean += v
	}
	mean /= float64(n)
	for i := range c {
		c[i] /= mean
	}
	return c
}

// Mbps converts megabits per second to bits per second.
func Mbps(m float64) float64 { return m * 1e6 }

// Kbps converts kilobits per second to bits per second.
func Kbps(k float64) float64 { return k * 1e3 }

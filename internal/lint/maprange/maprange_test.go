package maprange

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestMaprange(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}

package player

import (
	"math"
	"testing"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/replacement"
	"repro/internal/simnet"
)

// buildOrigin makes a small DASH presentation for session tests.
func buildOrigin(t *testing.T, segDur float64, separateAudio bool, enc media.Encoding) *origin.Origin {
	t.Helper()
	cfg := media.Config{
		Name: "t", Duration: 600, SegmentDuration: segDur,
		TargetBitrates: []float64{200e3, 400e3, 800e3, 1.6e6},
		Encoding:       enc, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		SeparateAudio: separateAudio, AudioSegmentDuration: 2,
		Seed: 77,
	}
	v, err := media.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return org
}

func baseConfig() Config {
	return Config{
		Name: "test", StartupBufferSec: 8, StartupTrack: 1,
		PauseThresholdSec: 40, ResumeThresholdSec: 30,
		MaxConnections: 1, Persistent: true, Scheduler: SchedulerSingle,
		Algorithm: adaptation.Throughput{Factor: 0.75},
	}
}

func runSession(t *testing.T, cfg Config, org *origin.Origin, p *netem.Profile) *Result {
	t.Helper()
	s, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), p))
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestStartupGateDuration(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.StartupBufferSec = 12 // 3 segments
	res := runSession(t, cfg, org, netem.Constant("c", 4e6, 600))
	if res.StartupDelay < 0 {
		t.Fatal("never started")
	}
	// Exactly 3 video segments must complete before startup.
	n := 0
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.End > 0 && d.End <= res.StartupDelay+1e-9 {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("%d segments before startup, want 3", n)
	}
}

func TestStartupGateSegments(t *testing.T) {
	org := buildOrigin(t, 8, false, media.VBR)
	cfg := baseConfig()
	cfg.StartupBufferSec = 8 // one 8 s segment would satisfy duration...
	cfg.StartupSegments = 3  // ...but the count gate requires three
	res := runSession(t, cfg, org, netem.Constant("c", 4e6, 600))
	n := 0
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.End > 0 && d.End <= res.StartupDelay+1e-9 {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("%d segments before startup, want 3 (count gate)", n)
	}
}

func TestPauseResumeThresholds(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	res := runSession(t, cfg, org, netem.Constant("c", 10e6, 600))
	// The buffer never exceeds pause threshold by more than one segment's
	// worth plus slack, and downloading resumes near the resume level.
	maxBuf := 0.0
	for _, s := range res.Samples {
		if s.VideoSec > maxBuf {
			maxBuf = s.VideoSec
		}
	}
	if maxBuf > cfg.PauseThresholdSec+4+1 {
		t.Fatalf("buffer reached %.1f s, pause threshold %v", maxBuf, cfg.PauseThresholdSec)
	}
	pauses, resumes := 0, 0
	for _, e := range res.Events {
		switch e.Kind {
		case "pause-dl":
			pauses++
		case "resume-dl":
			resumes++
		}
	}
	if pauses < 3 || resumes < 2 {
		t.Fatalf("on/off pattern missing: %d pauses, %d resumes", pauses, resumes)
	}
}

func TestStallsWhenBandwidthTooLow(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	// Lowest track actual ≈ 200 kbit/s; 100 kbit/s cannot sustain it.
	res := runSession(t, cfg, org, netem.Constant("c", 100e3, 600))
	if res.TotalStall() < 100 {
		t.Fatalf("expected heavy stalling, got %.1f s", res.TotalStall())
	}
	// And playback must still make some progress between stalls.
	if res.PlayedSeconds() < 10 {
		t.Fatalf("played only %.1f s", res.PlayedSeconds())
	}
}

func TestNoStallsWithAmpleBandwidth(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	res := runSession(t, baseConfig(), org, netem.Constant("c", 20e6, 600))
	if len(res.Stalls) != 0 {
		t.Fatalf("stalled %d times at 20 Mbit/s", len(res.Stalls))
	}
	if res.StartupDelay > 3 {
		t.Fatalf("startup %.2f s at 20 Mbit/s", res.StartupDelay)
	}
}

func TestSeparateAudioGatesPlayback(t *testing.T) {
	org := buildOrigin(t, 4, true, media.VBR)
	cfg := baseConfig()
	cfg.MaxConnections = 2
	cfg.Scheduler = SchedulerParallel
	res := runSession(t, cfg, org, netem.Constant("c", 5e6, 600))
	// Both audio and video must be buffered before startup.
	var vs, as float64
	for _, d := range res.Downloads {
		if d.End > 0 && d.End <= res.StartupDelay+1e-9 {
			if d.Type == media.TypeVideo {
				vs += d.Duration
			} else {
				as += d.Duration
			}
		}
	}
	if vs < cfg.StartupBufferSec-1e-6 || as < cfg.StartupBufferSec-1e-6 {
		t.Fatalf("startup with video %.1fs audio %.1fs buffered", vs, as)
	}
}

func TestRequestGateStopsDownloads(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.RequestGate = func(r Request) bool { return r.SegmentSeq < 1 }
	res := runSession(t, cfg, org, netem.Constant("c", 10e6, 60))
	if res.StartupDelay >= 0 {
		t.Fatal("one 4 s segment should not satisfy an 8 s startup buffer")
	}
	rejected := 0
	for _, tx := range res.Transactions {
		if tx.Rejected {
			rejected++
		}
	}
	if rejected != 1 {
		t.Fatalf("%d rejected transactions, want 1", rejected)
	}
}

func TestDropTailAccounting(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.Replacement = replacement.ContiguousOnUpswitch{IgnoreBufferedQuality: true}
	cfg.PauseThresholdSec = 120
	cfg.ResumeThresholdSec = 100
	p := netem.Step("s", 6e6, 0.6e6, 60, 600)
	// Down then up: force low-track segments, then recovery triggers SR.
	p2 := &netem.Profile{Name: "updownup", SampleDur: 1}
	for i := 0; i < 600; i++ {
		switch {
		case i < 60:
			p2.Samples = append(p2.Samples, 6e6)
		case i < 150:
			p2.Samples = append(p2.Samples, 0.6e6)
		default:
			p2.Samples = append(p2.Samples, 6e6)
		}
	}
	_ = p
	res := runSession(t, cfg, org, p2)
	redownloads := map[int]int{}
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.End > 0 {
			redownloads[d.Index]++
		}
	}
	replaced := 0
	for _, n := range redownloads {
		if n > 1 {
			replaced++
		}
	}
	if replaced == 0 {
		t.Fatal("expected segment replacement on the recovery profile")
	}
	if res.WastedBytes <= 0 {
		t.Fatal("replacement must account wasted bytes")
	}
	discarded := 0
	for _, d := range res.Downloads {
		if d.Discarded {
			discarded++
		}
	}
	if discarded == 0 {
		t.Fatal("discarded downloads not marked")
	}
}

func TestPerSegmentReplacementImprovesBuffer(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.Replacement = replacement.PerSegment{MinBufferSec: 15, CapTrack: -1}
	cfg.MidBufferDiscard = true
	p := &netem.Profile{Name: "ud", SampleDur: 1}
	for i := 0; i < 600; i++ {
		if i >= 60 && i < 120 {
			p.Samples = append(p.Samples, 0.6e6)
		} else {
			p.Samples = append(p.Samples, 6e6)
		}
	}
	res := runSession(t, cfg, org, p)
	improved, degraded := 0, 0
	last := map[int]int{}
	for _, d := range res.Downloads {
		if d.Type != media.TypeVideo || d.End == 0 {
			continue
		}
		if prev, ok := last[d.Index]; ok {
			if d.Track > prev {
				improved++
			} else {
				degraded++
			}
		}
		last[d.Index] = d.Track
	}
	if improved == 0 {
		t.Fatal("per-segment SR never replaced anything")
	}
	if degraded != 0 {
		t.Fatalf("per-segment SR degraded %d segments (must be improve-only)", degraded)
	}
}

func TestConfigValidation(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 1e6, 10))
	if _, err := NewSession(Config{}, org, net); err == nil {
		t.Error("accepted config without algorithm")
	}
	bad := baseConfig()
	bad.StartupTrack = 99
	if _, err := NewSession(bad, org, net); err == nil {
		t.Error("accepted out-of-range startup track")
	}
	srBad := baseConfig()
	srBad.Scheduler = SchedulerParallel
	srBad.Replacement = replacement.PerSegment{}
	if _, err := NewSession(srBad, org, net); err == nil {
		t.Error("accepted replacement with a parallel scheduler")
	}
}

func TestMinEstimateSamplesHoldsStartupTrack(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.MinEstimateSamples = 3
	res := runSession(t, cfg, org, netem.Constant("c", 10e6, 60))
	var vids []Download
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.End > 0 {
			vids = append(vids, d)
		}
	}
	if len(vids) < 4 {
		t.Fatal("too few downloads")
	}
	for i := 0; i < 3; i++ {
		if vids[i].Track != cfg.StartupTrack {
			t.Fatalf("download %d at track %d before warm-up", i, vids[i].Track)
		}
	}
	if vids[3].Track == cfg.StartupTrack {
		t.Fatal("player never adapted after warm-up at 10 Mbit/s")
	}
}

// TestSessionInvariants runs several configurations over several profiles
// and checks structural invariants of the result.
func TestSessionInvariants(t *testing.T) {
	orgs := []*origin.Origin{
		buildOrigin(t, 4, false, media.VBR),
		buildOrigin(t, 2, true, media.CBR),
	}
	profiles := []*netem.Profile{
		netem.Constant("c2", 2e6, 600),
		netem.Cellular(3),
		netem.Step("st", 5e6, 0.5e6, 120, 600),
	}
	for oi, org := range orgs {
		for pi, p := range profiles {
			cfg := baseConfig()
			if oi == 1 {
				cfg.MaxConnections = 2
				cfg.Scheduler = SchedulerParallel
			}
			res := runSession(t, cfg, org, p)
			checkInvariants(t, res)
			_ = pi
		}
	}
}

func checkInvariants(t *testing.T, res *Result) {
	t.Helper()
	// Stalls are disjoint, ordered, inside the session.
	for i, st := range res.Stalls {
		if st.End < st.Start || st.Start < 0 || st.End > res.EndTime+1e-6 {
			t.Fatalf("stall %d out of range: %+v", i, st)
		}
		if i > 0 && st.Start < res.Stalls[i-1].End-1e-9 {
			t.Fatalf("stalls overlap at %d", i)
		}
	}
	// Play intervals are disjoint and consistent with media time.
	played := 0.0
	for i, iv := range res.PlayIntervals {
		if iv.WallEnd < iv.WallStart {
			t.Fatalf("interval %d reversed", i)
		}
		if i > 0 && iv.WallStart < res.PlayIntervals[i-1].WallEnd-1e-9 {
			t.Fatalf("intervals overlap at %d", i)
		}
		played += iv.WallEnd - iv.WallStart
	}
	if played > res.MediaDuration+1e-6 {
		t.Fatalf("played %.1f s of a %.1f s presentation", played, res.MediaDuration)
	}
	// Displayed tracks are valid and displayed time ≤ played time.
	displayedSec := 0.0
	for i, tr := range res.Displayed {
		if tr < -1 || tr >= len(res.Declared) {
			t.Fatalf("displayed[%d] = %d", i, tr)
		}
		if tr >= 0 {
			displayedSec += res.SegmentDuration
		}
	}
	if displayedSec > played+2*res.SegmentDuration+1e-6 {
		t.Fatalf("displayed %.1f s vs played %.1f s", displayedSec, played)
	}
	// Byte accounting.
	if res.WastedBytes < 0 || res.WastedBytes > res.TotalBytes {
		t.Fatalf("wasted %v of total %v", res.WastedBytes, res.TotalBytes)
	}
	sum := 0.0
	for _, tx := range res.Transactions {
		if !tx.Rejected {
			sum += float64(tx.Bytes)
		}
	}
	if math.Abs(sum-res.TotalBytes) > 1+res.TotalBytes/1e3 {
		t.Fatalf("transactions sum %v vs TotalBytes %v", sum, res.TotalBytes)
	}
	// Downloads that completed have sane timing.
	for i, d := range res.Downloads {
		if d.End > 0 && d.End < d.Start {
			t.Fatalf("download %d reversed times", i)
		}
	}
	// Samples are at 1 Hz with monotone playhead.
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T != res.Samples[i-1].T+1 {
			t.Fatalf("sample %d at %v after %v", i, res.Samples[i].T, res.Samples[i-1].T)
		}
		if res.Samples[i].Playhead < res.Samples[i-1].Playhead-1e-9 {
			t.Fatalf("playhead regressed at sample %d", i)
		}
	}
}

// TestTemplateAddressingSession: a DASH SegmentTemplate presentation
// streams end to end, its traffic maps back to segments, and — like
// plain HLS — the client sees no per-segment sizes (§4.2).
func TestTemplateAddressingSession(t *testing.T) {
	v, err := media.Generate(media.Config{
		Name: "tpl", Duration: 300, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3, 800e3},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.TemplateNumber,
	}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.ExposeSegmentSizes = true // must be a no-op: the wire hides sizes
	res := runSession(t, cfg, org, netem.Constant("c", 3e6, 300))
	if res.StartupDelay < 0 || res.TotalStall() > 0 {
		t.Fatalf("startup %.1f stalls %.1f", res.StartupDelay, res.TotalStall())
	}
	// The client view stripped the sizes even though config asked.
	if s := clientView(org.Pres); s.Video[0].Segments[0].Size != 0 {
		t.Fatal("template addressing leaked sizes to the client")
	}
}

// TestSeek: a forward seek flushes the buffer, jumps the playhead, and
// playback resumes at the target after the recovery gate, with the seek
// latency recorded.
func TestSeek(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.Seeks = []SeekEvent{{AtSec: 60, ToSec: 300}}
	res := runSession(t, cfg, org, netem.Constant("c", 5e6, 600))
	if len(res.Seeks) != 1 {
		t.Fatalf("%d seeks recorded", len(res.Seeks))
	}
	sk := res.Seeks[0]
	if sk.To != 300 || sk.Latency <= 0 || sk.Latency > 20 {
		t.Fatalf("seek record %+v", sk)
	}
	// Samples: the playhead jumps to ≈300 at the seek and resumes from
	// there; the 60..300 media range is never displayed.
	for _, smp := range res.Samples {
		if smp.T > 65 && smp.T < 70 && (smp.Playhead < 295 || smp.Playhead > 310) {
			t.Fatalf("playhead %.1f just after seek", smp.Playhead)
		}
	}
	seg := res.SegmentDuration
	for i := int(70/seg) + 1; i < int(290/seg); i++ {
		if res.Displayed[i] >= 0 {
			t.Fatalf("segment %d displayed despite being skipped", i)
		}
	}
	// Flushed buffer counts as waste.
	if res.WastedBytes <= 0 {
		t.Fatal("seek flush not accounted as waste")
	}
	// And playback continues past the target afterwards.
	if last := res.Samples[len(res.Samples)-1].Playhead; last < 350 {
		t.Fatalf("playback did not continue after seek: playhead %.1f", last)
	}
}

// TestSeekBackward: jumping back re-downloads and replays earlier media.
func TestSeekBackward(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	cfg := baseConfig()
	cfg.Seeks = []SeekEvent{{AtSec: 100, ToSec: 8}}
	res := runSession(t, cfg, org, netem.Constant("c", 5e6, 240))
	if len(res.Seeks) != 1 || res.Seeks[0].Latency <= 0 {
		t.Fatalf("seek records %+v", res.Seeks)
	}
	// Segment 2 (media 8–12 s) gets downloaded twice: once on the first
	// pass and once after the jump.
	n := 0
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.Index == 2 && d.End > 0 {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("segment 2 downloaded %d times, want ≥2", n)
	}
}

// Command vodproxy runs the paper's measurement proxy (§2.2, Figure 2)
// for real: a forward HTTP proxy that shapes downstream bandwidth and
// records every exchange; on SIGINT it analyzes the recorded traffic the
// way the paper does and prints the recovered presentation and segment
// downloads.
//
// Usage:
//
//	vodproxy -addr :8888 -rate 2.5            # shape to 2.5 Mbit/s
//	http_proxy=http://localhost:8888 <player>
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/proxy"
	"repro/internal/traffic"
)

func main() {
	addr := flag.String("addr", ":8888", "listen address")
	rate := flag.Float64("rate", 0, "downstream rate limit in Mbit/s (0 = unshaped)")
	name := flag.String("name", "capture", "presentation name used in the analysis")
	flag.Parse()

	rec := proxy.New(nil, *rate*1e6)
	srv := &http.Server{Addr: *addr, Handler: rec}
	//vodlint:allow goctx — server goroutine lives until Ctrl-C; shutdown is the signal handler's job below
	go func() {
		log.Printf("vodproxy listening on %s (rate %.2f Mbit/s); Ctrl-C to analyze", *addr, *rate)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()

	txs := rec.Log()
	log.Printf("recorded %d transactions", len(txs))
	res, err := traffic.Analyze(*name, txs)
	if err != nil {
		log.Fatalf("vodproxy: analysis failed: %v", err)
	}
	fmt.Printf("presentation: %s, %d video + %d audio tracks\n",
		res.Presentation.Protocol, len(res.Presentation.Video), len(res.Presentation.Audio))
	for _, r := range res.Presentation.Video {
		fmt.Printf("  track %d: %.0f kbit/s declared\n", r.ID, r.DeclaredBitrate/1e3)
	}
	fmt.Printf("segments recovered: %d (%d unmatched transactions)\n", len(res.Segments), len(res.Unmatched))
	for i, s := range res.Segments {
		if i >= 20 {
			fmt.Printf("  ... %d more\n", len(res.Segments)-20)
			break
		}
		fmt.Printf("  %6.2fs %s track=%d idx=%d %7.1f KB\n", s.Start, s.Type, s.Track, s.Index, float64(s.Bytes)/1e3)
	}
}

// Command vodbench regenerates the paper's tables and figures from the
// simulated testbed. Multiple experiments run on the parallel engine;
// output stays in paper order for any worker count.
//
// Usage:
//
//	vodbench -list
//	vodbench -exp fig8
//	vodbench -exp fig8,fig9
//	vodbench -exp all -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	exp := flag.String("exp", "", "experiment id(s), comma-separated (fig3..fig15, table1, table2, sr_whatif, or 'all')")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiments (1 = serial)")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var ids []string
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if experiments.ByID(id) == nil {
				fmt.Fprintf(os.Stderr, "vodbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	results, err := experiments.RunAll(context.Background(), experiments.Options{
		Workers: *workers,
		IDs:     ids, // nil = all, in paper order
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("### %s — %s (%.1fs, %.1f MB alloc)\n\n", r.ID, r.Title, r.Elapsed.Seconds(), float64(r.AllocBytes)/1e6)
		for _, t := range r.Tables {
			fmt.Println(t.String())
		}
		for _, p := range r.Plots {
			fmt.Println(p)
		}
	}
}

// Package linttest runs an analyzer over a testdata package and checks
// its diagnostics against // want "regexp" annotations — a standard-
// library-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Each expectation is a comment on the offending line:
//
//	t := time.Now() // want `call to time\.Now`
//
// A line may carry several expectations (// want "a" "b"); every
// expectation must be matched by exactly one diagnostic and every
// diagnostic must match an expectation, so suites prove both that the
// analyzer fires and that it stays quiet on the safe idiom.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads testdata/src/<pkg> for each named package (relative to the
// test's working directory), applies the analyzer, and reports any
// mismatch between diagnostics and want annotations as test failures.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, a, pkg)
	}
}

func runPkg(t *testing.T, a *lint.Analyzer, pkgName string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgName)
	unit, err := load(dir, pkgName)
	if err != nil {
		t.Fatalf("%s: %v", pkgName, err)
	}
	diags, err := lint.Run(unit, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgName, err)
	}
	checkExpectations(t, unit, diags)
}

// load parses and type-checks one testdata directory as a package.
// Imports resolve through the source importer, so testdata may use any
// standard-library package but nothing else.
func load(dir, pkgName string) (*lint.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	return &lint.Package{
		Path:  pkgName,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// expectation is one want annotation.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, unit *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := unit.Fset.Position(c.Slash)
				for _, raw := range parseWants(t, pos, c.Text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the quoted patterns from a `// want "a" "b"` or
// backquoted comment; non-want comments return nil.
func parseWants(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil
	}
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Errorf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
				return out
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, rest[:end+1], err)
				return out
			}
			out = append(out, unq)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Errorf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
				return out
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Errorf("%s:%d: want patterns must be quoted, got %q", pos.Filename, pos.Line, rest)
			return out
		}
	}
	return out
}

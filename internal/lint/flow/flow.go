// Package flow is the shared dataflow substrate under the contract
// analyzers (stepalias, hotalloc, foldorder, goctx). It builds, per
// type-checked package, a lightweight call graph over declared
// functions and function literals, indexes //vodlint:<name> function
// annotations (hotpath, fold), and offers a bounded escape/retention
// tracker that reports every site where a tracked value outlives its
// function's frame — returned, stored into a field or package
// variable, appended to a longer-lived slice, sent on a channel, or
// passed to an intra-package callee that retains its argument.
//
// The analysis is deliberately intra-package and flow-insensitive:
// precise enough to enforce the repository's hot-path contracts,
// cheap enough to run on every package under both the standalone
// driver and go vet, and conservative in the direction of silence —
// a construct the tracker cannot resolve (dynamic call, cross-package
// callee) is not reported, so every diagnostic is actionable.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// A Node is one analyzable function body: a declared function or
// method, or a function literal.
type Node struct {
	// Fn is the declared function object; nil for function literals.
	Fn *types.Func
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Encl is the node lexically containing a literal; nil for
	// declared functions.
	Encl *Node
	// Calls are the static intra-package callees plus directly
	// contained function literals, in source order.
	Calls []*Node

	directives map[string]bool
}

// Body returns the node's statement block.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// End returns the node's end position.
func (n *Node) End() token.Pos {
	if n.Decl != nil {
		return n.Decl.End()
	}
	return n.Lit.End()
}

// Name returns a display name: Recv.Method for methods, the function
// name for functions, and "func literal in X" for literals.
func (n *Node) Name() string {
	if n.Fn != nil {
		if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := namedOf(sig.Recv().Type()); named != nil {
				return named.Obj().Name() + "." + n.Fn.Name()
			}
		}
		return n.Fn.Name()
	}
	if n.Encl != nil {
		return "func literal in " + n.Encl.Name()
	}
	return "func literal"
}

// A Graph holds one package's function nodes and resolution tables.
type Graph struct {
	// Nodes lists every function body in source order.
	Nodes []*Node

	info     *types.Info
	fset     *token.FileSet
	pkgScope *types.Scope
	byObj    map[*types.Func]*Node
	byLit    map[*ast.FuncLit]*Node
	parent   map[ast.Node]ast.Node
	// closure maps single-assignment function-typed variables to the
	// literal they hold, so `work := func(...){...}; work(x)` resolves.
	closure map[types.Object]*ast.FuncLit
	retMemo map[retainKey]bool
}

// New builds the call graph for one analyzer pass.
func New(pass *lint.Pass) *Graph {
	g := &Graph{
		info:     pass.TypesInfo,
		fset:     pass.Fset,
		pkgScope: pass.Pkg.Scope(),
		byObj:    map[*types.Func]*Node{},
		byLit:    map[*ast.FuncLit]*Node{},
		parent:   map[ast.Node]ast.Node{},
		closure:  map[types.Object]*ast.FuncLit{},
		retMemo:  map[retainKey]bool{},
	}
	// Directive lines per file: //vodlint:<name> on the line of or
	// directly above a function marks it; doc comments also count.
	directives := map[string]map[int][]string{} // file -> line -> names
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := g.fset.Position(c.Slash)
				m := directives[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					directives[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
	for _, f := range pass.Files {
		g.collect(f, directives)
	}
	for _, n := range g.Nodes {
		g.link(n)
	}
	return g
}

// parseAnnotation extracts the directive name from a "//vodlint:name"
// comment; allow directives are the suppression mechanism, not a
// function annotation, and return false.
func parseAnnotation(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//vodlint:")
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || fields[0] == "allow" {
		return "", false
	}
	return fields[0], true
}

// collect walks one file recording nodes, the parent map, and
// single-assignment closure variables.
func (g *Graph) collect(f *ast.File, directives map[string]map[int][]string) {
	var stack []ast.Node
	reassigned := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			g.parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return true
			}
			node := &Node{Decl: fn}
			if obj, ok := g.info.Defs[fn.Name].(*types.Func); ok {
				node.Fn = obj
				g.byObj[obj] = node
			}
			g.annotate(node, fn.Doc, directives)
			g.Nodes = append(g.Nodes, node)
		case *ast.FuncLit:
			node := &Node{Lit: fn}
			g.annotate(node, nil, directives)
			g.Nodes = append(g.Nodes, node)
			g.byLit[fn] = node
		case *ast.AssignStmt:
			// Track work := func(...){...} so calls through the
			// variable resolve, but only while singly assigned.
			for i, lhs := range fn.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := g.info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if fn.Tok == token.DEFINE && i < len(fn.Rhs) {
					if lit, ok := ast.Unparen(fn.Rhs[i]).(*ast.FuncLit); ok && !reassigned[obj] {
						g.closure[obj] = lit
						continue
					}
				}
				reassigned[obj] = true
				delete(g.closure, obj)
			}
		}
		return true
	})
}

// annotate records the node's //vodlint:<name> directives: any in the
// doc comment, on the declaration line, or on the line directly above.
func (g *Graph) annotate(node *Node, doc *ast.CommentGroup, directives map[string]map[int][]string) {
	node.directives = map[string]bool{}
	if doc != nil {
		for _, c := range doc.List {
			if name, ok := parseAnnotation(c.Text); ok {
				node.directives[name] = true
			}
		}
	}
	pos := g.fset.Position(node.Pos())
	if m := directives[pos.Filename]; m != nil {
		for _, name := range m[pos.Line] {
			node.directives[name] = true
		}
		for _, name := range m[pos.Line-1] {
			node.directives[name] = true
		}
	}
}

// link attaches the node's enclosing node (for literals) and its
// outgoing edges: contained literals and static same-package calls.
func (g *Graph) link(n *Node) {
	if n.Lit != nil {
		for p := g.parent[n.Lit]; p != nil; p = g.parent[p] {
			switch outer := p.(type) {
			case *ast.FuncDecl:
				n.Encl = g.declNode(outer)
			case *ast.FuncLit:
				n.Encl = g.byLit[outer]
			}
			if n.Encl != nil {
				break
			}
		}
	}
	seen := map[*Node]bool{}
	WalkOwn(n, func(in ast.Node) bool {
		switch e := in.(type) {
		case *ast.FuncLit:
			if lit := g.byLit[e]; lit != nil && !seen[lit] {
				seen[lit] = true
				n.Calls = append(n.Calls, lit)
			}
			return false // the literal walks its own body
		case *ast.CallExpr:
			if callee := g.CalleeNode(e); callee != nil && callee != n && !seen[callee] {
				seen[callee] = true
				n.Calls = append(n.Calls, callee)
			}
		}
		return true
	})
}

func (g *Graph) declNode(decl *ast.FuncDecl) *Node {
	if obj, ok := g.info.Defs[decl.Name].(*types.Func); ok {
		return g.byObj[obj]
	}
	return nil
}

// WalkOwn visits the node's own statements in source order, stopping
// at nested function literals (they are their own nodes). The node's
// literal or declaration itself is not visited.
func WalkOwn(n *Node, visit func(ast.Node) bool) {
	if n.Body() == nil {
		return
	}
	ast.Inspect(n.Body(), func(in ast.Node) bool {
		if in == nil {
			return true
		}
		if lit, ok := in.(*ast.FuncLit); ok && lit != n.Lit {
			if !visit(in) {
				return false
			}
			return false
		}
		return visit(in)
	})
}

// Parent returns the syntactic parent of a node within its file.
func (g *Graph) Parent(n ast.Node) ast.Node { return g.parent[n] }

// NodeOf returns the graph node declaring fn, or nil for functions of
// other packages.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byObj[fn] }

// LitNode returns the graph node of a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// EnclosingNode returns the innermost function body containing pos.
func (g *Graph) EnclosingNode(pos token.Pos) *Node {
	var best *Node
	for _, n := range g.Nodes {
		if n.Pos() <= pos && pos <= n.End() {
			if best == nil || n.Pos() > best.Pos() {
				best = n
			}
		}
	}
	return best
}

// StaticCallee resolves a call to the declared function or method it
// invokes, or nil for builtins, conversions, and dynamic calls.
func (g *Graph) StaticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := g.info.Uses[id].(*types.Func)
	return fn
}

// CalleeNode resolves a call to a same-package node: a declared
// function or method, or a literal held by a single-assignment
// variable (`work := func(...){...}; work(x)`).
func (g *Graph) CalleeNode(call *ast.CallExpr) *Node {
	if fn := g.StaticCallee(call); fn != nil {
		return g.byObj[fn]
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := g.info.ObjectOf(id); obj != nil {
			if lit, ok := g.closure[obj]; ok {
				return g.byLit[lit]
			}
		}
	}
	return nil
}

// Annotated returns the nodes carrying a //vodlint:<name> directive,
// in source order.
func (g *Graph) Annotated(name string) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.directives[name] {
			out = append(out, n)
		}
	}
	return out
}

// Reachable returns every node reachable from the roots through
// static calls and literal containment, mapped to its BFS predecessor
// (roots map to nil) so analyzers can print a provenance trace.
func (g *Graph) Reachable(roots []*Node) map[*Node]*Node {
	pred := map[*Node]*Node{}
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if _, ok := pred[r]; !ok {
			pred[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if _, ok := pred[c]; !ok {
				pred[c] = n
				queue = append(queue, c)
			}
		}
	}
	return pred
}

// Trace renders the call chain from a reachability root down to n,
// e.g. "Run → onComplete → finishSegment".
func (g *Graph) Trace(pred map[*Node]*Node, n *Node) string {
	var names []string
	for at := n; at != nil; at = pred[at] {
		names = append(names, at.Name())
		if len(names) > 8 { // cycles cannot occur in a pred tree; cap for readability
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// Package energy models the cellular radio (LTE RRC) energy cost of a
// streaming session, the lens behind the paper's §3.3.2 observation: the
// gap between a player's pausing and resuming thresholds sets the radio
// idle duration, and when that gap is shorter than the LTE RRC demotion
// timer the radio never drops out of its high-power state between
// download bursts, so the whole session is spent at connected-mode power.
//
// The model is the standard two-state RRC abstraction used by the energy
// literature the paper cites (Nika et al.): the radio is ACTIVE while
// bytes flow, stays in a high-power TAIL for DemotionTimer seconds after
// the last activity, then demotes to IDLE. Energy is the power-weighted
// time in each state.
package energy

import (
	"sort"

	"repro/internal/traffic"
)

// Model holds the radio parameters. Defaults follow common LTE
// measurements: ~1.2 W while transferring, ~1.0 W in the tail, ~15 mW
// idle, with an ~11 s demotion (tail) timer.
type Model struct {
	// DemotionTimer is the idle time before the radio leaves the
	// high-power state, in seconds.
	DemotionTimer float64
	// ActivePower is the power while data flows, in watts.
	ActivePower float64
	// TailPower is the high-power-state power with no data flowing.
	TailPower float64
	// IdlePower is the demoted (RRC_IDLE) power.
	IdlePower float64
}

// DefaultLTE returns typical LTE radio parameters.
func DefaultLTE() Model {
	return Model{DemotionTimer: 11, ActivePower: 1.2, TailPower: 1.0, IdlePower: 0.015}
}

// Usage is the radio-state accounting of one session.
type Usage struct {
	// ActiveSec, TailSec and IdleSec partition the session duration.
	ActiveSec, TailSec, IdleSec float64
	// Joules is the total radio energy.
	Joules float64
	// Demotions counts how often the radio actually reached IDLE.
	Demotions int
}

// HighPowerShare returns the fraction of the session spent in the
// high-power states (active + tail).
func (u Usage) HighPowerShare() float64 {
	total := u.ActiveSec + u.TailSec + u.IdleSec
	if total == 0 {
		return 0
	}
	return (u.ActiveSec + u.TailSec) / total
}

// Analyze computes radio usage for a transaction log over [0, duration].
func (m Model) Analyze(txs []traffic.Transaction, duration float64) Usage {
	type iv struct{ s, e float64 }
	var busy []iv
	for _, tx := range txs {
		if tx.Rejected || tx.End <= tx.Start {
			continue
		}
		s, e := tx.Start, tx.End
		if s >= duration {
			continue
		}
		if e > duration {
			e = duration
		}
		busy = append(busy, iv{s, e})
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i].s < busy[j].s })
	// Merge overlapping activity.
	var merged []iv
	for _, b := range busy {
		if n := len(merged); n > 0 && b.s <= merged[n-1].e {
			if b.e > merged[n-1].e {
				merged[n-1].e = b.e
			}
			continue
		}
		merged = append(merged, b)
	}
	var u Usage
	cursor := 0.0
	for i, b := range merged {
		// Gap before this burst: tail then idle.
		gap := b.s - cursor
		if gap > 0 {
			tail := gap
			if i > 0 { // no tail before the first byte of the session
				if tail > m.DemotionTimer {
					tail = m.DemotionTimer
					u.Demotions++
				}
				u.TailSec += tail
				u.IdleSec += gap - tail
			} else {
				u.IdleSec += gap
			}
		}
		u.ActiveSec += b.e - b.s
		cursor = b.e
	}
	if cursor < duration {
		gap := duration - cursor
		tail := gap
		if len(merged) > 0 {
			if tail > m.DemotionTimer {
				tail = m.DemotionTimer
				u.Demotions++
			}
			u.TailSec += tail
			u.IdleSec += gap - tail
		} else {
			u.IdleSec += gap
		}
	}
	u.Joules = u.ActiveSec*m.ActivePower + u.TailSec*m.TailPower + u.IdleSec*m.IdlePower
	return u
}

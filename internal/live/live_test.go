package live

import (
	"math"
	"strings"
	"testing"

	"repro/internal/manifest/hls"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/simnet"
)

func channel(t *testing.T) *Origin {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "live", Duration: 600, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewOrigin(v)
}

func TestAvailability(t *testing.T) {
	o := channel(t)
	if got := o.AvailableSegments(0); got != 0 {
		t.Fatalf("at t=0: %d segments", got)
	}
	// Segment 0 covers media 0–4 and appears after the 1 s encode delay.
	if got := o.AvailableSegments(4.9); got != 0 {
		t.Fatalf("at t=4.9: %d segments", got)
	}
	if got := o.AvailableSegments(5.1); got != 1 {
		t.Fatalf("at t=5.1: %d segments", got)
	}
	if got := o.AvailableSegments(45); got != 11 {
		t.Fatalf("at t=45: %d segments", got)
	}
	if !o.Ended(606) {
		t.Fatal("event should have ended")
	}
}

func TestSlidingWindowPlaylist(t *testing.T) {
	o := channel(t)
	body, first, count := o.PlaylistAt(1, 60)
	// 14 segments available (see above), window of 6 → first = 8.
	if first != 8 || count != 6 {
		t.Fatalf("window [%d,+%d)", first, count)
	}
	pl, err := hls.ParseMediaPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MediaSequence != 8 || len(pl.Segments) != 6 {
		t.Fatalf("parsed seq %d, %d segments", pl.MediaSequence, len(pl.Segments))
	}
	if pl.Ended {
		t.Fatal("live playlist must not carry ENDLIST")
	}
	if !strings.Contains(pl.Segments[0].URI, "seg00008") {
		t.Fatalf("first URI %q", pl.Segments[0].URI)
	}
	// After the event: ENDLIST present.
	body, _, _ = o.PlaylistAt(1, 1e4)
	pl, err = hls.ParseMediaPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Ended {
		t.Fatal("finished event should carry ENDLIST")
	}
}

func TestLiveSessionTracksEdge(t *testing.T) {
	o := channel(t)
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 8e6, 1000))
	res, err := Play(Config{JoinAt: 60, SessionDuration: 200, StartupTrack: 1}, o, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Fatalf("stalled %d times on a fat link", res.Stalls)
	}
	// Latency stays near the initial edge distance (3 segments ≈ 12 s +
	// encode delay), and does not grow.
	if res.InitialLatency < 4 || res.InitialLatency > 20 {
		t.Fatalf("initial latency %.1f s", res.InitialLatency)
	}
	if res.FinalLatency > res.InitialLatency+o.Video.SegmentDuration+1 {
		t.Fatalf("latency grew: %.1f → %.1f s without stalls", res.InitialLatency, res.FinalLatency)
	}
	// The client must have polled the playlist while waiting at the edge.
	if res.PlaylistReloads < 10 {
		t.Fatalf("only %d playlist reloads", res.PlaylistReloads)
	}
	if res.SegmentsPlayed < 40 {
		t.Fatalf("played %d segments in 200 s", res.SegmentsPlayed)
	}
}

func TestLiveStallsWidenLatency(t *testing.T) {
	o := channel(t)
	// Link dips far below the lowest track for a while: playback stalls
	// and the stream falls permanently behind the edge.
	p := netem.Step("dip", 8e6, 60e3, 100, 1000)
	net := simnet.New(simnet.DefaultConfig(), p)
	res, err := Play(Config{JoinAt: 60, SessionDuration: 120, StartupTrack: 0}, o, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallSec < 5 {
		t.Fatalf("expected stalls through the dip, got %.1f s", res.StallSec)
	}
	if res.FinalLatency < res.InitialLatency+res.StallSec-o.Video.SegmentDuration {
		t.Fatalf("stalls (%.1f s) did not widen latency: %.1f → %.1f",
			res.StallSec, res.InitialLatency, res.FinalLatency)
	}
}

func TestLiveAdaptsUp(t *testing.T) {
	o := channel(t)
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 8e6, 1000))
	res, err := Play(Config{JoinAt: 60, SessionDuration: 200, StartupTrack: 0}, o, net)
	if err != nil {
		t.Fatal(err)
	}
	top := o.Pres.Video[len(o.Pres.Video)-1].DeclaredBitrate
	if res.AvgBitrate < 0.5*top {
		t.Fatalf("avg bitrate %.0f on a fat link (top %.0f)", res.AvgBitrate, top)
	}
	if res.Switches == 0 {
		t.Fatal("never switched up from the bottom startup track")
	}
}

func TestLiveJoinTooEarly(t *testing.T) {
	o := channel(t)
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 8e6, 100))
	if _, err := Play(Config{JoinAt: 1, SessionDuration: 30}, o, net); err == nil {
		t.Fatal("joining before the first segment should fail")
	}
}

func TestLiveLatencyAccounting(t *testing.T) {
	o := channel(t)
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 8e6, 1000))
	res, err := Play(Config{JoinAt: 100, SessionDuration: 150}, o, net)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MeanLatency) || res.MeanLatency <= 0 {
		t.Fatalf("mean latency %.2f", res.MeanLatency)
	}
	if res.MeanLatency < res.InitialLatency-2 || res.MeanLatency > res.FinalLatency+2 {
		t.Fatalf("mean latency %.1f outside [%.1f, %.1f]", res.MeanLatency, res.InitialLatency, res.FinalLatency)
	}
}

// Package simnet is a deterministic fluid-flow network simulator standing
// in for the paper's testbed (real devices behind a tc-shaped WiFi link).
//
// The model: link capacity over time comes from a netem.Profile; each HTTP
// request is a Transfer on a Conn (a TCP connection). Active transfers
// share the link max-min fairly, with each connection additionally capped
// by a TCP slow-start ramp whose window doubles every RTT — so rate caps
// are piecewise-constant and every completion time is computed exactly, in
// virtual time, with no goroutines and no wall clock. New connections pay
// a handshake round trip, every request pays one RTT of first-byte
// latency, and idle persistent connections re-enter slow start
// (slow-start-after-idle), which is what separates "persistent" from
// "non-persistent" services beyond the handshake (§3.2).
//
// # Engine
//
// Step is an incremental event engine. The flowing-transfer set is
// maintained across intervals — a transfer enters it when its first byte
// arrives (FlowAt) and leaves on completion or connection close — instead
// of being rebuilt from the connection list every constant-rate interval.
// Max-min water-filling reruns only when the flowing set, a connection
// cap, or the link capacity actually changed; between such events the
// previously computed rates stay valid. Profile lookups go through a
// monotone netem.Cursor, so bandwidth queries are O(1) amortised over a
// forward simulation. The hot path performs no heap allocations:
// scratch buffers are reused across intervals and completed Transfer
// objects can be returned to a free list with Recycle.
//
// Everything the engine does is bit-identical to the straightforward
// rebuild-and-sort-every-interval formulation (kept as the reference
// implementation in the package's tests): the flowing set is ordered by
// connection dial order exactly as the rebuild produced it, water-filling
// applies the same arithmetic in the same order (ascending cap, stable
// for ties), and skipped recomputations would have produced the values
// already in place.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netem"
)

// Config holds the transport-model parameters.
type Config struct {
	// RTT is the client↔server round-trip time in seconds. Cellular RTTs
	// in the LTE era were ~50–100 ms; the default is 0.07.
	RTT float64
	// MSS is the TCP maximum segment size in bytes (default 1460).
	MSS float64
	// InitialWindowSegments is TCP's initial congestion window in
	// segments (default 10, per RFC 6928).
	InitialWindowSegments float64
	// HandshakeRTTs is the connection-establishment cost in round trips
	// before the HTTP request can be sent (default 1 for TCP; use 2 to
	// approximate TLS 1.2).
	HandshakeRTTs float64
	// SlowStartAfterIdle resets the congestion window after the
	// connection has been idle for IdleResetAfter (default true, like
	// Linux tcp_slow_start_after_idle).
	SlowStartAfterIdle bool
	// IdleResetAfter is the idle duration that triggers a window reset
	// (default 1 s).
	IdleResetAfter float64
	// ConnCapSequence, when non-empty, assigns a static per-connection
	// rate ceiling (bits/s) to connections in dial order (cycling).
	// It models heterogeneous per-connection bottlenecks — different
	// CDN paths or per-flow policers — under which the §3.2 observation
	// about sub-segment split points becomes visible: a work-conserving
	// shared link alone makes split points irrelevant.
	ConnCapSequence []float64
	// Engine selects the Step event engine (see the Engine constants).
	// The zero value, EngineAuto, picks per flow count.
	Engine Engine
}

// Engine selects Network.Step's event engine.
type Engine int

const (
	// EngineAuto switches on flow count: the O(F)-scan engine below
	// vtimeEnter flowing transfers, the O(log F) virtual-time engine at
	// or above it, with hysteresis (vtimeExit) so workloads hovering
	// near the threshold don't thrash between engines. Every workload
	// that stays below the threshold is bit-identical to EngineScan.
	EngineAuto Engine = iota
	// EngineScan forces the incremental scan engine: O(F) per event,
	// bit-identical to the PR 3 reference formulation.
	EngineScan
	// EngineVTime forces the virtual-service-time (fair-queuing) engine:
	// O(log F) per event, equivalent to EngineScan up to float
	// accumulation order (see the differential tests).
	EngineVTime
	// EngineCell selects the anchored-flow engine built for fleet cells
	// (cellengine.go): flow progress is a (rate, anchor-time) pair
	// materialized only when rates actually change, and profile sample
	// boundaries where the value does not change generate no events at
	// all — a constant edge profile is event-free, and idle-cell seconds
	// cost nothing. Equivalent to EngineScan up to float accumulation
	// order (delivery is accumulated in one multiply per constant-rate
	// stretch instead of one per boundary). Above vtimeEnter flowing
	// transfers it hands off to the virtual-time engine exactly as
	// EngineAuto does, and takes the flows back below vtimeExit.
	EngineCell
)

const (
	// vtimeEnter is the flowing-transfer count at which EngineAuto
	// switches to the virtual-time engine. High enough that every
	// experiment workload (≤ a dozen concurrent flows) stays on the
	// bit-exact scan engine.
	vtimeEnter = 40
	// vtimeExit is the active-flow count at which EngineAuto switches
	// back to the scan engine.
	vtimeExit = 12
)

func (c Config) withDefaults() Config {
	if c.RTT <= 0 {
		c.RTT = 0.07
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.InitialWindowSegments <= 0 {
		c.InitialWindowSegments = 10
	}
	if c.HandshakeRTTs <= 0 {
		c.HandshakeRTTs = 1
	}
	if c.IdleResetAfter <= 0 {
		c.IdleResetAfter = 1
	}
	return c
}

// DefaultConfig returns the default transport parameters.
func DefaultConfig() Config {
	return Config{SlowStartAfterIdle: true}.withDefaults()
}

// Transfer is one HTTP request/response exchange delivering Size bytes.
type Transfer struct {
	// Conn is the connection carrying the transfer.
	Conn *Conn
	// Size is the response body size in bytes.
	Size float64
	// Started is the virtual time the request was issued.
	Started float64
	// FlowAt is the time the first byte arrives (Started + latency).
	FlowAt float64
	// Completed is the time the last byte arrived (valid once Done).
	Completed float64
	// Done reports completion.
	Done bool
	// Meta carries caller context (e.g. which segment this is).
	Meta any

	// upstream is an optional second shared link the response traverses
	// in addition to the connection's access link — the cache-miss
	// backhaul in the CDN topology. Set per request by Conn.StartVia;
	// nil for responses served at the edge.
	upstream *AccessLink

	remaining float64
	rate      float64 // last allocated rate, bytes/s (for inspection)
	pos       int     // index in Network.flowing; -1 while not flowing

	// Virtual-time engine state (see vtime.go). While attached to the
	// vtime engine (vClass != vNone), remaining and rate above are stale:
	// progress lives in the (vAnchor, vRem, vCap) triple and is
	// materialized lazily on completion, removal, or observer read.
	vClass  uint8   // vNone, vUnc (uncapped) or vCapd (capped)
	vCap    float64 // capped-class service rate, bytes/s
	vRem    float64 // remaining bytes at the last anchor
	vAnchor float64 // anchor: V at last re-anchor (uncapped) or wall time (capped)
	hFin    int     // position in vtimeState.uncFin/capFin; -1 outside
	hCap    int     // position in vtimeState.uncCap/capCap; -1 outside
	hPend   int     // position in Network.pendHeap; -1 outside
	accPos  int     // position in Conn.access.members; -1 while not attached
	upPos   int     // position in upstream.upMembers; -1 while not attached

	// Cell-engine state (cellengine.go). While the cell engine owns the
	// flow, `remaining` is the value at the last re-anchor (aT) and the
	// flow drains at `rate` from there; finishT is the precomputed
	// completion instant under the current rate, and cap memoizes the
	// connection's effective cap as of the last time it was recomputed.
	aT      float64
	finishT float64
	cap     float64
}

// Remaining returns the bytes not yet delivered, as of the last engine
// event. Flows attached to the virtual-time engine materialize the
// value on demand from their service anchor.
func (t *Transfer) Remaining() float64 {
	switch t.vClass {
	case vUnc:
		if r := t.vRem - (t.Conn.net.v.vNow - t.vAnchor); r > 0 {
			return r
		}
		return 0
	case vCapd:
		if r := t.vRem - t.vCap*(t.Conn.net.now-t.vAnchor); r > 0 {
			return r
		}
		return 0
	}
	if t.pos >= 0 && t.Conn.net.cmode {
		if r := t.remaining - t.rate*(t.Conn.net.now-t.aT); r > 0 {
			return r
		}
		return 0
	}
	return t.remaining
}

// Rate returns the most recently allocated delivery rate in bytes/s.
// Under the virtual-time engine an uncapped flow's rate is the shared
// equal-share slope; a capped flow's is its cap.
func (t *Transfer) Rate() float64 {
	switch t.vClass {
	case vUnc:
		return t.Conn.net.v.slope
	case vCapd:
		return t.vCap
	}
	return t.rate
}

// Throughput returns the achieved goodput in bits/s over the whole
// request/response exchange, including latency — this is what a client's
// bandwidth estimator observes.
func (t *Transfer) Throughput() float64 {
	if !t.Done || t.Completed <= t.Started {
		return 0
	}
	return t.Size * 8 / (t.Completed - t.Started)
}

// AccessLink models one client's own access link — its radio channel in
// the fleet's two-level "shared edge, private access" topology. The link
// carries a time-varying rate budget from a netem.Profile (the trace
// loops, exactly as the edge profile does); the budget is divided evenly
// among the link's flowing transfers and applied as a per-transfer cap
// on top of the edge link's max-min fair share, so a client's achieved
// rate is min(its access budget, its fair share of the edge). Even
// division is the fluid-model stand-in for TCP fair sharing on the
// access bottleneck: it can under-fill the link when one of the
// client's transfers is held below its share by slow start, which is
// conservative (never optimistic) and keeps per-link conservation
// exact.
//
// Create links with Network.NewAccessLink and attach them with DialVia.
type AccessLink struct {
	cursor  netem.Cursor
	profile *netem.Profile
	rateBps float64 // profile sample at the last refresh (bits/s)
	nextChg float64 // cached cursor.NextChange as of the last refresh (cell engine)
	flows   int     // flowing transfers currently carried by the link

	// The flowing transfers themselves, split by role: members carries
	// transfers whose connection dialed via this link (access role),
	// upMembers those routed through it as a per-request upstream
	// (backhaul role). flows == len(members) + len(upMembers); the even
	// split divides the budget across both lists together.
	members   []*Transfer
	upMembers []*Transfer
	lpos      int // position in Network.links while flows > 0; -1 outside
	hBound    int // position in vtimeState.bound; -1 outside
}

// Profile returns the bandwidth profile driving the link.
func (l *AccessLink) Profile() *netem.Profile { return l.profile }

// Conn models one TCP connection.
type Conn struct {
	net         *Network
	established bool
	closed      bool
	capBps      float64 // slow-start cap in bytes/s; +Inf when steady
	staticCap   float64 // per-connection ceiling in bytes/s; +Inf when none
	access      *AccessLink
	nextGrow    float64 // next window doubling time (valid while ramping and active)
	lastActive  float64 // completion time of the last transfer
	cur         *Transfer
	idx         int // position in Network.conns; -1 once removed
	seq         int // dial sequence number; immutable, orders the flowing set
	hGrow       int // position in vtimeState.grow; -1 outside
}

// Busy reports whether a transfer is in flight on the connection.
func (c *Conn) Busy() bool { return c.cur != nil }

// Established reports whether the TCP handshake has completed (i.e. the
// connection has carried at least one request).
func (c *Conn) Established() bool { return c.established }

// InSlowStart reports whether the connection's rate is still ramping.
func (c *Conn) InSlowStart() bool { return !math.IsInf(c.capBps, 1) }

// effCap is the connection's effective rate ceiling in bytes/s: the
// tightest of the slow-start window, the static per-connection cap, the
// connection's even share of its access link's current budget, and —
// for a request routed through an upstream (cache-miss backhaul) link —
// its even share of that link's budget too.
func (c *Conn) effCap() float64 {
	r := c.capBps
	if c.staticCap < r {
		r = c.staticCap
	}
	if l := c.access; l != nil && l.flows > 0 {
		if share := l.rateBps / 8 / float64(l.flows); share < r {
			r = share
		}
	}
	if tr := c.cur; tr != nil {
		if l := tr.upstream; l != nil && l.flows > 0 {
			if share := l.rateBps / 8 / float64(l.flows); share < r {
				r = share
			}
		}
	}
	return r
}

// Close releases the connection. A non-persistent client closes after
// every response and dials again for the next request. An in-flight
// transfer is abandoned: it never completes and stops consuming link
// capacity.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if tr := c.cur; tr != nil {
		if tr.vClass != vNone {
			c.net.v.abandon(c.net, tr)
		} else {
			if c.net.cmode {
				c.net.cellMaterialize(tr)
			}
			c.net.removeFlowing(tr)
			c.net.removePending(tr)
		}
	}
	c.net.removeConn(c)
}

// Start issues a request for size bytes on the connection. It panics if
// the connection is busy or closed (a programming error in the caller's
// scheduler — HTTP/1.1 carries one outstanding request per connection).
//
//vodlint:hotpath — per-request engine entry: one call per segment fetch
func (c *Conn) Start(size float64, meta any) *Transfer {
	return c.StartVia(size, 0, nil, meta)
}

// StartVia is Start for a request whose response is not served at the
// connection's near end: the response additionally traverses `upstream`
// (a shared backhaul link, nil for none) under the same even-split cap
// rule as the access link, and pays extraLatency seconds of additional
// first-byte delay (an origin or metro round trip). With extraLatency 0
// and a nil upstream it is exactly Start.
//
//vodlint:hotpath — per-request engine entry: one call per segment fetch
func (c *Conn) StartVia(size, extraLatency float64, upstream *AccessLink, meta any) *Transfer {
	if c.closed {
		panic("simnet: Start on closed connection")
	}
	if c.cur != nil {
		panic("simnet: Start on busy connection")
	}
	if size < 1 {
		size = 1
	}
	cfg := c.net.cfg
	now := c.net.now
	latency := cfg.RTT + extraLatency // request up + first byte down
	initialCap := cfg.InitialWindowSegments * cfg.MSS / cfg.RTT
	if !c.established {
		latency += cfg.HandshakeRTTs * cfg.RTT
		c.established = true
		c.capBps = initialCap
	} else if cfg.SlowStartAfterIdle && now-c.lastActive > cfg.IdleResetAfter {
		c.capBps = initialCap
	}
	tr := c.net.newTransfer()
	tr.Conn = c
	tr.Size = size
	tr.Started = now
	tr.FlowAt = now + latency
	tr.Meta = meta
	tr.upstream = upstream
	tr.remaining = size
	c.cur = tr
	c.nextGrow = tr.FlowAt + cfg.RTT
	// Latency is always positive, so a new transfer starts pending and
	// joins the flowing set once the clock reaches FlowAt.
	c.net.pendHeap.Push(tr, tr.FlowAt)
	return tr
}

// Network is the shared link plus its connections.
type Network struct {
	cfg       Config
	profile   *netem.Profile
	cursor    netem.Cursor
	now       float64
	conns     []*Conn
	dialed    int
	steadyCap float64 // cap beyond which a conn is considered out of slow start
	delivered float64 // total bytes delivered (for conservation checks)

	// Incrementally maintained transfer sets (see the package comment).
	flowing  []*Transfer     // first byte arrived, ordered by Conn.seq (dial order)
	pendHeap fheap[Transfer] // latency not yet elapsed, keyed by FlowAt
	links    []*AccessLink   // access links with at least one flowing transfer
	// Water-filling memo: rates stored on the flowing transfers stay
	// valid until the flowing set, a cap, or the capacity changes.
	allocDirty   bool
	lastCapacity float64

	// Virtual-time engine (vtime.go); vmode reports which engine owns
	// the live flows right now.
	v     *vtimeState
	vmode bool

	// Cell engine (cellengine.go); cmode reports whether the anchored
	// engine owns the live flows right now. cellDirty schedules a full
	// water-filling (flow set or capacity changed); dirtyFlows queues
	// flows whose cached cap changed since the last rate assignment;
	// ratesAreCaps records that the last assignment gave every flow
	// exactly its cap (the regime where changed flows can be re-rated
	// independently); edgeNextChg caches the edge profile's next value
	// change and linksNextChg the minimum cached change instant across
	// active access links (conservative: a detached link may leave it
	// low, costing one wasted scan, never a missed refresh).
	cmode        bool
	cellDirty    bool
	ratesAreCaps bool
	edgeNextChg  float64
	linksNextChg float64
	capSum       float64     // running sum of the finite cached caps of flowing transfers
	numUncapped  int         // flowing transfers whose cached cap is +Inf
	dirtyFlows   []*Transfer // scratch: flows to re-rate, cleared every event

	items     []capItem   // scratch for allocate
	completed []*Transfer // scratch returned by Step; valid until the next Step
	free      []*Transfer // Recycle'd Transfer objects awaiting reuse
}

type capItem struct {
	tr  *Transfer
	cap float64
}

// New creates a network over the given bandwidth profile.
func New(cfg Config, p *netem.Profile) *Network {
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg, profile: p, cursor: p.Cursor()}
	n.pendHeap.set = func(tr *Transfer, i int) { tr.hPend = i }
	// Once a connection's cap exceeds twice the link's peak rate it can
	// never be the bottleneck again; stop generating doubling events.
	n.steadyCap = 2 * p.Max() / 8
	if n.steadyCap <= 0 {
		n.steadyCap = math.Inf(1)
	}
	return n
}

// Now returns the current virtual time in seconds.
func (n *Network) Now() float64 { return n.now }

// Config returns the transport parameters in use.
func (n *Network) Config() Config { return n.cfg }

// Profile returns the bandwidth profile driving the link.
func (n *Network) Profile() *netem.Profile { return n.profile }

// Delivered returns the total bytes delivered so far (all transfers).
// Under the virtual-time engine the un-materialized service of every
// attached flow is folded in from the aggregate anchors in O(1).
func (n *Network) Delivered() float64 {
	if n.vmode {
		return n.v.deliveredAt(n)
	}
	if n.cmode {
		d := n.delivered
		for _, tr := range n.flowing {
			if dt := n.now - tr.aT; dt > 0 {
				x := tr.rate * dt
				if x > tr.remaining {
					x = tr.remaining
				}
				d += x
			}
		}
		return d
	}
	return n.delivered
}

// VTimeActive reports whether the virtual-time engine currently owns
// the live flows (exported for tests and benchmarks).
func (n *Network) VTimeActive() bool { return n.vmode }

// Dial creates a new, not-yet-established connection.
func (n *Network) Dial() *Conn {
	c := &Conn{net: n, capBps: math.Inf(1), staticCap: math.Inf(1), idx: len(n.conns), seq: n.dialed, hGrow: -1}
	if seq := n.cfg.ConnCapSequence; len(seq) > 0 {
		c.staticCap = seq[n.dialed%len(seq)] / 8
	}
	n.dialed++
	n.conns = append(n.conns, c)
	return c
}

// NewAccessLink creates an access link over the given profile (bits/s,
// looping). Connections attach with DialVia; a link shared by several
// connections divides its budget evenly among their flowing transfers.
func (n *Network) NewAccessLink(p *netem.Profile) *AccessLink {
	return &AccessLink{profile: p, cursor: p.Cursor(), rateBps: -1, lpos: -1, hBound: -1}
}

// DialVia creates a connection carried by the given access link; a nil
// link makes DialVia identical to Dial.
func (n *Network) DialVia(l *AccessLink) *Conn {
	c := n.Dial()
	c.access = l
	return c
}

// Recycle returns a transfer to the network's free list so a later
// Start can reuse the allocation. The caller asserts it holds no other
// references; recycling an in-flight transfer panics. Recycling is
// optional — transfers that are never recycled are simply left to the
// garbage collector.
func (n *Network) Recycle(tr *Transfer) {
	if tr == nil {
		return
	}
	if tr.Conn != nil && tr.Conn.cur == tr {
		panic("simnet: Recycle of in-flight transfer")
	}
	*tr = blankTransfer
	n.free = append(n.free, tr)
}

// blankTransfer is the reset value for new and recycled transfers:
// every set/heap position cleared.
var blankTransfer = Transfer{pos: -1, hFin: -1, hCap: -1, hPend: -1, accPos: -1, upPos: -1}

func (n *Network) newTransfer() *Transfer {
	if k := len(n.free); k > 0 {
		tr := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return tr
	}
	tr := &Transfer{} //vodlint:allow hotalloc — free-list miss: bounded by peak concurrent transfers, then zero
	*tr = blankTransfer
	return tr
}

// removeConn unlinks a closed connection in O(1) by swap-delete. The
// connection list's order is free to change because everything
// order-sensitive (the flowing set, completion batches) is keyed on the
// immutable dial sequence number Conn.seq, which among live connections
// always agrees with the pre-swap relative order.
func (n *Network) removeConn(c *Conn) {
	i := c.idx
	if i < 0 || i >= len(n.conns) || n.conns[i] != c {
		return
	}
	last := len(n.conns) - 1
	if i != last {
		n.conns[i] = n.conns[last]
		n.conns[i].idx = i
	}
	n.conns[last] = nil
	n.conns = n.conns[:last]
	c.idx = -1
}

// linkAttach registers a transfer that just started flowing with its
// connection's access link, with its per-request upstream link (if any),
// and — on a link's first flow — with the network's active-link set.
func (n *Network) linkAttach(tr *Transfer) {
	n.linkAttachOne(tr.Conn.access, tr, false)
	n.linkAttachOne(tr.upstream, tr, true)
}

//vodlint:hotpath — link-set bookkeeping: one call per role per flow arrival
func (n *Network) linkAttachOne(l *AccessLink, tr *Transfer, up bool) {
	if l == nil {
		return
	}
	if l.flows == 0 {
		l.lpos = len(n.links)
		n.links = append(n.links, l)
	}
	if up {
		tr.upPos = len(l.upMembers)
		l.upMembers = append(l.upMembers, tr)
	} else {
		tr.accPos = len(l.members)
		l.members = append(l.members, tr)
	}
	l.flows++
}

// linkDetach is linkAttach's inverse; a link with no flows left leaves
// the active-link set. Order within the member lists and links is
// irrelevant (both are refreshed/min-folded, never accumulated), so
// swap-delete.
func (n *Network) linkDetach(tr *Transfer) {
	n.linkDetachOne(tr.Conn.access, tr, false)
	n.linkDetachOne(tr.upstream, tr, true)
}

//vodlint:hotpath — link-set bookkeeping: one call per role per flow departure
func (n *Network) linkDetachOne(l *AccessLink, tr *Transfer, up bool) {
	if l == nil {
		return
	}
	if up {
		i, last := tr.upPos, len(l.upMembers)-1
		if i < 0 {
			return
		}
		if i <= last && l.upMembers[i] == tr {
			if i != last {
				l.upMembers[i] = l.upMembers[last]
				l.upMembers[i].upPos = i
			}
			l.upMembers[last] = nil
			l.upMembers = l.upMembers[:last]
			l.flows--
		}
		tr.upPos = -1
	} else {
		i, last := tr.accPos, len(l.members)-1
		if i < 0 {
			return
		}
		if i <= last && l.members[i] == tr {
			if i != last {
				l.members[i] = l.members[last]
				l.members[i].accPos = i
			}
			l.members[last] = nil
			l.members = l.members[:last]
			l.flows--
		}
		tr.accPos = -1
	}
	if l.flows == 0 {
		if j := l.lpos; j >= 0 && j < len(n.links) && n.links[j] == l {
			lastL := len(n.links) - 1
			if j != lastL {
				n.links[j] = n.links[lastL]
				n.links[j].lpos = j
			}
			n.links[lastL] = nil
			n.links = n.links[:lastL]
		}
		l.lpos = -1
	}
}

// insertFlowing adds a transfer to the flowing set, keeping it ordered
// by connection dial order (the iteration order the reference engine's
// per-interval rebuild produced).
func (n *Network) insertFlowing(tr *Transfer) {
	i := len(n.flowing)
	for i > 0 && n.flowing[i-1].Conn.seq > tr.Conn.seq {
		i--
	}
	n.flowing = append(n.flowing, nil)
	copy(n.flowing[i+1:], n.flowing[i:])
	n.flowing[i] = tr
	for j := i; j < len(n.flowing); j++ {
		n.flowing[j].pos = j
	}
	n.linkAttach(tr)
	n.allocDirty = true
	if n.cmode {
		// Queue the new flow for rating unconditionally (its recycled cap,
		// rate and finish time are blank) and refresh its link siblings'
		// caps — their even shares changed. In the all-capped regime that
		// is the entire effect of an arrival; outside it the re-rate pass
		// falls back to the full water-filling anyway.
		if l := tr.Conn.access; l != nil && l.nextChg < n.linksNextChg {
			n.linksNextChg = l.nextChg
		}
		if l := tr.upstream; l != nil && l.nextChg < n.linksNextChg {
			n.linksNextChg = l.nextChg
		}
		tr.cap = tr.Conn.effCap()
		n.cellCapAdd(tr.cap)
		n.dirtyFlows = append(n.dirtyFlows, tr)
		n.cellTouchLink(tr)
	}
}

// removeFlowing drops a transfer from the flowing set (completion or
// close). No-op if the transfer is not flowing.
func (n *Network) removeFlowing(tr *Transfer) {
	i := tr.pos
	if i < 0 || i >= len(n.flowing) || n.flowing[i] != tr {
		return
	}
	copy(n.flowing[i:], n.flowing[i+1:])
	last := len(n.flowing) - 1
	n.flowing[last] = nil
	n.flowing = n.flowing[:last]
	for j := i; j < last; j++ {
		n.flowing[j].pos = j
	}
	tr.pos = -1
	n.linkDetach(tr)
	n.allocDirty = true
	if n.cmode {
		n.cellCapSub(tr.cap)
		if n.ratesAreCaps {
			// All-capped regime: a departure frees capacity without moving
			// anyone off their cap — only the departed flow's link siblings
			// change (their even shares grew). Refresh just those.
			n.cellTouchLink(tr)
		} else {
			// Water-filling regime: the freed share redistributes across
			// every remaining flow — full realloc at the next event.
			n.cellDirty = true
		}
	}
}

// removePending drops a transfer whose first byte has not arrived yet
// (close before FlowAt) from the pending heap.
func (n *Network) removePending(tr *Transfer) {
	if i := tr.hPend; i >= 0 && i < n.pendHeap.Len() && n.pendHeap.val[i] == tr {
		n.pendHeap.Remove(i)
	}
}

// promote moves pending transfers whose FlowAt has arrived into the
// flowing set.
func (n *Network) promote() {
	for n.pendHeap.Len() > 0 && n.pendHeap.MinKey() <= n.now {
		n.insertFlowing(n.pendHeap.Pop())
	}
}

// Step advances virtual time until the earlier of `until` or the first
// transfer completion(s), and returns the completed transfers (empty when
// the deadline was reached first). Step with no active transfers simply
// advances the clock.
//
// The returned slice is reused by the next Step call: consume (or copy)
// it before stepping again, and do not append to it. The stepalias
// analyzer enforces that contract at call sites; hotalloc holds Step
// itself (and everything it reaches) to the zero-allocation discipline
// PR 3 bought.
//
//vodlint:hotpath — per-event engine core: runs once per transfer completion across million-session fleets
func (n *Network) Step(until float64) []*Transfer {
	if until < n.now {
		panic(fmt.Sprintf("simnet: Step backwards from %v to %v", n.now, until))
	}
	// Exact comparison on purpose: callers re-Step to the same deadline
	// after draining a completion batch, and that exact-equality case
	// must cost nothing.
	if until == n.now { //vodlint:allow floateq — fast path keyed on the caller passing the identical deadline back
		return nil
	}
	for n.now < until {
		n.autoShift()
		var completed []*Transfer
		switch {
		case n.vmode:
			completed = n.vStepOnce(until)
		case n.cmode:
			completed = n.cellStepOnce(until)
		default:
			completed = n.scanStepOnce(until)
		}
		if len(completed) > 0 {
			return completed
		}
	}
	return nil
}

// autoShift applies the engine-selection policy before each event. With
// EngineAuto the switch is hysteretic: enter virtual time at vtimeEnter
// flowing transfers, leave at vtimeExit active flows, so a workload
// hovering around the threshold doesn't pay the switch cost per event.
func (n *Network) autoShift() {
	switch n.cfg.Engine {
	case EngineScan:
		if n.vmode {
			n.exitVTime()
		}
	case EngineVTime:
		if !n.vmode {
			n.enterVTime()
		}
	case EngineCell:
		// Same hysteresis as EngineAuto, with the cell engine playing the
		// scan engine's role below the threshold.
		switch {
		case n.vmode:
			if n.v.active() <= vtimeExit {
				n.exitVTime()
				n.enterCell()
			}
		case !n.cmode:
			n.enterCell()
		case len(n.flowing) >= vtimeEnter:
			n.exitCell()
			n.enterVTime()
		}
	default:
		if n.vmode {
			if n.v.active() <= vtimeExit {
				n.exitVTime()
			}
		} else if len(n.flowing) >= vtimeEnter {
			n.enterVTime()
		}
	}
}

// scanStepOnce advances the scan engine by one event and returns any
// completions (nil when the event was not a completion). One iteration
// of the PR 3 loop, bit-identical to the reference formulation.
//
//vodlint:hotpath — scan-engine event: O(F) per event below the vtime threshold
func (n *Network) scanStepOnce(until float64) []*Transfer {
	const epsBytes = 1e-6
	n.promote()

	// Next state-change event: the deadline, a pending transfer's
	// first byte, a slow-start window doubling, a bandwidth boundary
	// in the edge profile, or one in an active access link's profile.
	// The same pass refreshes each access link's cached rate at the
	// current time — all reads happen at n.now and each active link is
	// visited exactly once, so the refresh is order-independent.
	next := until
	if k := n.pendHeap.MinKey(); k < next {
		next = k
	}
	for _, tr := range n.flowing {
		c := tr.Conn
		if c.InSlowStart() && c.nextGrow < next {
			next = c.nextGrow
		}
	}
	for _, l := range n.links {
		if b := l.cursor.NextBoundary(n.now); b < next {
			next = b
		}
		// Exact comparison on purpose: an unchanged piecewise-constant
		// sample means the memoized rates are still valid; any real
		// profile change flips the sample value exactly (same idiom as
		// lastCapacity below).
		if r := l.cursor.At(n.now); r != l.rateBps { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed sample value
			l.rateBps = r
			n.allocDirty = true
		}
	}
	if b := n.cursor.NextBoundary(n.now); b < next {
		next = b
	}

	if len(n.flowing) == 0 {
		n.now = next
		n.grow()
		return nil
	}

	// Allocate rates max-min fairly under the connection caps —
	// but only if something changed since the last water-filling.
	capacity := n.cursor.At(n.now) / 8 // bytes/s
	// Exact comparison on purpose: an unchanged piecewise-constant
	// capacity yields bit-identical rates, so recomputation is pure
	// waste; any real profile change flips the sample value exactly.
	if n.allocDirty || capacity != n.lastCapacity { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed sample value
		n.allocate(capacity)
		n.lastCapacity = capacity
		n.allocDirty = false
	}

	// Earliest completion in this constant-rate interval.
	tEvent := next
	for _, tr := range n.flowing {
		if tr.rate > 0 {
			if tDone := n.now + tr.remaining/tr.rate; tDone < tEvent {
				tEvent = tDone
			}
		}
	}
	if tEvent <= n.now {
		// Degenerate interval (floating point); nudge forward.
		tEvent = math.Nextafter(n.now, math.Inf(1))
	}

	dt := tEvent - n.now
	completed := n.completed[:0]
	for _, tr := range n.flowing {
		d := tr.rate * dt
		if d > tr.remaining {
			d = tr.remaining
		}
		tr.remaining -= d
		n.delivered += d
		if tr.remaining <= epsBytes {
			tr.remaining = 0
			tr.Done = true
			tr.Completed = tEvent
			tr.Conn.cur = nil
			tr.Conn.lastActive = tEvent
			completed = append(completed, tr)
		}
	}
	n.completed = completed
	for _, tr := range completed {
		n.removeFlowing(tr)
	}
	n.now = tEvent
	n.grow()
	return completed
}

// grow applies slow-start window doubling for connections whose doubling
// time has arrived. Only flowing transfers can grow: a pending
// transfer's first doubling (FlowAt+RTT) is always in the future, and an
// idle connection has no doubling events scheduled.
func (n *Network) grow() {
	for _, tr := range n.flowing {
		c := tr.Conn
		if !c.InSlowStart() {
			continue
		}
		for c.nextGrow <= n.now && c.InSlowStart() {
			c.capBps *= 2
			c.nextGrow += n.cfg.RTT
			if c.capBps >= n.steadyCap {
				c.capBps = math.Inf(1)
			}
			n.allocDirty = true
		}
	}
}

// smallSortLen is the largest slice length for which sort.Slice is an
// insertion sort (and therefore stable); see the pdqsort cutoff in the
// standard library. Up to this length the engine sorts caps with its own
// allocation-free insertion sort — the exact same permutation, including
// for ties — and the uncapped fast path may skip sorting entirely
// (stability makes the sorted order the connection order). Beyond it the
// reference used pdqsort, whose tie order is unspecified, so the engine
// calls sort.Slice itself to stay bit-identical (no shipped experiment
// has that many concurrent flows).
const smallSortLen = 12

// allocate distributes capacity (bytes/s) over the flowing transfers
// using max-min fairness with per-connection caps (progressive water
// filling). Two allocation-free fast paths cover the dominant cases; the
// general path insertion-sorts a reused scratch slice. All paths produce
// bit-identical rates (asserted by TestAllocateFastPathsMatchGeneral):
// ascending effective cap, ties in connection order, with the same
// sequential share arithmetic as the reference implementation.
//
//vodlint:hotpath — water-filling: runs on every flow-set change
func (n *Network) allocate(capacity float64) {
	flowing := n.flowing

	// Fast path: a single flow takes the whole link up to its cap
	// (capacity/1 is exact, so this equals the general path).
	if len(flowing) == 1 {
		tr := flowing[0]
		r := tr.Conn.effCap()
		if r > capacity {
			r = capacity
		}
		if r < 0 {
			r = 0
		}
		tr.rate = r
		return
	}

	// Fast path: steady-state connections (ramped out of slow start, no
	// static cap) are all uncapped — no sort needed, shares assign in
	// connection order exactly as the stable-sorted general path would.
	if len(flowing) <= smallSortLen {
		uncapped := true
		for _, tr := range flowing {
			if !math.IsInf(tr.Conn.effCap(), 1) {
				uncapped = false
				break
			}
		}
		if uncapped {
			remainingC := capacity
			remainingN := len(flowing)
			for _, tr := range flowing {
				r := remainingC / float64(remainingN)
				if r < 0 {
					r = 0
				}
				tr.rate = r
				remainingC -= r
				remainingN--
			}
			return
		}
	}

	// General path: ascending effective cap on a reused scratch slice.
	items := n.items[:0]
	for _, tr := range flowing {
		items = append(items, capItem{tr, tr.Conn.effCap()})
	}
	if len(items) <= smallSortLen {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && items[j].cap < items[j-1].cap; j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
	} else {
		sort.Slice(items, func(i, j int) bool { return items[i].cap < items[j].cap }) //vodlint:allow hotalloc — general path only: n > 16 flows on one link; the fast paths above stay allocation-free
	}
	remainingC := capacity
	remainingN := len(items)
	for _, it := range items {
		share := remainingC / float64(remainingN)
		r := it.cap
		if r > share {
			r = share
		}
		if r < 0 {
			r = 0
		}
		it.tr.rate = r
		remainingC -= r
		remainingN--
	}
	n.items = items
}

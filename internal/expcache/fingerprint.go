package expcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"reflect"
	"sort"
)

// Key is a content-addressed cache key: the SHA-256 of the canonical
// encoding of every input that can influence the cached value.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file name).
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// ErrUncacheable marks a value the canonical encoder refuses to
// fingerprint: a non-nil func (e.g. a RequestGate probe) or channel has
// no content identity, so sessions configured with one bypass the cache
// and run directly.
var ErrUncacheable = errors.New("expcache: value is not fingerprintable")

// Fingerprint hashes the values into one content-addressed key. The
// encoding is canonical — independent of map iteration order and pointer
// addresses — and total over plain data: bools, integers, floats
// (hashed by bit pattern, so -0 ≠ +0 and every NaN payload is itself),
// strings, slices, arrays, maps, structs (exported and unexported
// fields, in declaration order, with the type identity mixed in),
// pointers and interfaces (by concrete type identity plus pointee).
// Shared/cyclic pointers hash by first-visit order, so self-referential
// structures terminate. Non-nil funcs and channels return ErrUncacheable.
func Fingerprint(vs ...any) (Key, error) {
	h := &hasher{h: sha256.New()}
	for _, v := range vs {
		if err := h.walk(reflect.ValueOf(v)); err != nil {
			return Key{}, err
		}
	}
	var k Key
	h.h.Sum(k[:0])
	return k, nil
}

// hasher streams tagged values into a hash. Every emission is prefixed
// with a kind tag byte so values of different shapes cannot collide by
// concatenation (e.g. ["ab","c"] vs ["a","bc"]).
type hasher struct {
	h       hash.Hash
	buf     [9]byte
	visited map[uintptr]int
}

func (h *hasher) tag(b byte) {
	h.buf[0] = b
	h.h.Write(h.buf[:1])
}

func (h *hasher) u64(tag byte, u uint64) {
	h.buf[0] = tag
	binary.LittleEndian.PutUint64(h.buf[1:], u)
	h.h.Write(h.buf[:9])
}

func (h *hasher) str(tag byte, s string) {
	h.u64(tag, uint64(len(s)))
	io.WriteString(h.h, s)
}

// typeIdentity names a type unambiguously across packages.
func typeIdentity(t reflect.Type) string {
	if t.Name() != "" && t.PkgPath() != "" {
		return t.PkgPath() + "." + t.Name()
	}
	return t.String()
}

func (h *hasher) walk(v reflect.Value) error {
	if !v.IsValid() {
		h.tag('z') // untyped nil
		return nil
	}
	switch v.Kind() {
	case reflect.Bool:
		b := uint64(0)
		if v.Bool() {
			b = 1
		}
		h.u64('b', b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		h.u64('i', uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		h.u64('u', v.Uint())
	case reflect.Float32, reflect.Float64:
		h.u64('f', math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		h.u64('r', math.Float64bits(real(c)))
		h.u64('j', math.Float64bits(imag(c)))
	case reflect.String:
		h.str('s', v.String())
	case reflect.Slice:
		if v.IsNil() {
			h.tag('n')
			return nil
		}
		return h.walkSeq(v)
	case reflect.Array:
		return h.walkSeq(v)
	case reflect.Map:
		return h.walkMap(v)
	case reflect.Pointer:
		if v.IsNil() {
			h.tag('n')
			return nil
		}
		addr := v.Pointer()
		if ord, ok := h.visited[addr]; ok {
			// Already hashed this pointee: refer back by visit order so
			// aliasing/cycles are captured without address dependence.
			h.u64('c', uint64(ord))
			return nil
		}
		if h.visited == nil {
			h.visited = make(map[uintptr]int)
		}
		h.visited[addr] = len(h.visited)
		h.tag('p')
		return h.walk(v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			h.tag('n')
			return nil
		}
		h.str('t', typeIdentity(v.Elem().Type()))
		return h.walk(v.Elem())
	case reflect.Struct:
		t := v.Type()
		h.str('T', typeIdentity(t))
		h.u64('L', uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			h.str('F', t.Field(i).Name)
			if err := h.walk(v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Func, reflect.Chan:
		if v.IsNil() {
			h.tag('n')
			return nil
		}
		return fmt.Errorf("%w: %s", ErrUncacheable, v.Type())
	default:
		return fmt.Errorf("%w: unsupported kind %s", ErrUncacheable, v.Kind())
	}
	return nil
}

func (h *hasher) walkSeq(v reflect.Value) error {
	h.u64('l', uint64(v.Len()))
	for i := 0; i < v.Len(); i++ {
		if err := h.walk(v.Index(i)); err != nil {
			return err
		}
	}
	return nil
}

// walkMap hashes a map independent of iteration order: each entry is
// hashed into its own digest (with a fresh visit table, so the digests
// do not depend on which entry was enumerated first) and the sorted
// digests are folded into the parent hash.
func (h *hasher) walkMap(v reflect.Value) error {
	if v.IsNil() {
		h.tag('n')
		return nil
	}
	h.u64('m', uint64(v.Len()))
	digests := make([][sha256.Size]byte, 0, v.Len())
	iter := v.MapRange()
	for iter.Next() {
		sub := &hasher{h: sha256.New()}
		if err := sub.walk(iter.Key()); err != nil {
			return err
		}
		if err := sub.walk(iter.Value()); err != nil {
			return err
		}
		var d [sha256.Size]byte
		sub.h.Sum(d[:0])
		digests = append(digests, d)
	}
	sort.Slice(digests, func(i, j int) bool { return bytes.Compare(digests[i][:], digests[j][:]) < 0 })
	for _, d := range digests {
		h.h.Write(d[:])
	}
	return nil
}

package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Sink is one site where a tracked value outlives its function's
// frame. What is a sentence fragment ("returned", "stored in s.last")
// the analyzer splices into its diagnostic.
type Sink struct {
	Pos  token.Pos
	What string
}

// EscapeOpts tunes the tracker.
type EscapeOpts struct {
	// SafeCall reports callees known not to retain their arguments
	// (e.g. simnet.Recycle returns its transfer to the free list).
	SafeCall func(*types.Func) bool
}

// maxRetainDepth bounds the interprocedural recursion of the
// parameter-retention check.
const maxRetainDepth = 3

// Escapes traces the values produced by the seed expressions through
// the node's body and returns, in source order, every sink where a
// tracked value (or a value derived from it by indexing, slicing, or
// ranging) is retained beyond the frame: returned, stored into a
// field, package or captured variable, map/slice element or pointer
// target, appended to an untracked slice, sent on a channel, handed
// to a goroutine, or passed to a same-package callee that retains the
// parameter. Reads of fields of a tracked value are not sinks: the
// contracts this serves govern the container, not data copied out of
// it.
func (g *Graph) Escapes(node *Node, seeds []ast.Expr, opts EscapeOpts) []Sink {
	r := g.newRun(node, opts, maxRetainDepth)
	for _, s := range seeds {
		r.taintExpr(s)
	}
	r.drain()
	return r.sinks
}

// Retains reports whether calling the node can retain the value
// passed as its arg'th argument (0-based, receiver excluded) beyond
// the call.
func (g *Graph) Retains(node *Node, arg int) bool {
	return g.retains(node, arg, maxRetainDepth, EscapeOpts{})
}

type retainKey struct {
	node *Node
	arg  int
}

func (g *Graph) retains(node *Node, arg int, depth int, opts EscapeOpts) bool {
	key := retainKey{node, arg}
	if v, ok := g.retMemo[key]; ok {
		return v
	}
	// Seed the memo optimistically so recursion through a call cycle
	// terminates; the final answer overwrites it below.
	g.retMemo[key] = false
	obj := paramObj(g.info, node, arg)
	if obj == nil {
		return false
	}
	r := g.newRun(node, opts, depth)
	r.taintObj(obj)
	r.drain()
	res := len(r.sinks) > 0
	g.retMemo[key] = res
	return res
}

// paramObj resolves a node's arg'th parameter object; variadic
// parameters absorb every trailing index.
func paramObj(info *types.Info, node *Node, arg int) types.Object {
	var ft *ast.FuncType
	if node.Decl != nil {
		ft = node.Decl.Type
	} else {
		ft = node.Lit.Type
	}
	var names []*ast.Ident
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			names = append(names, nil) // unnamed parameter cannot be referenced
			continue
		}
		names = append(names, field.Names...)
	}
	if len(names) == 0 {
		return nil
	}
	if arg >= len(names) {
		arg = len(names) - 1 // variadic tail
	}
	if arg < 0 || names[arg] == nil || names[arg].Name == "_" {
		return nil
	}
	return info.Defs[names[arg]]
}

// escapeRun is the per-invocation state of one escape trace.
type escapeRun struct {
	g     *Graph
	node  *Node
	opts  EscapeOpts
	depth int

	uses       map[types.Object][]*ast.Ident
	tainted    map[ast.Node]bool
	taintedObj map[types.Object]bool
	queue      []ast.Expr
	sinks      []Sink
}

func (g *Graph) newRun(node *Node, opts EscapeOpts, depth int) *escapeRun {
	r := &escapeRun{
		g:          g,
		node:       node,
		opts:       opts,
		depth:      depth,
		uses:       map[types.Object][]*ast.Ident{},
		tainted:    map[ast.Node]bool{},
		taintedObj: map[types.Object]bool{},
	}
	// Index identifier uses across the whole body, nested literals
	// included: a capture of a tracked value inside a closure follows
	// the same rules as any other use.
	if body := node.Body(); body != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := g.info.ObjectOf(id); obj != nil {
					r.uses[obj] = append(r.uses[obj], id)
				}
			}
			return true
		})
	}
	return r
}

func (r *escapeRun) taintExpr(e ast.Expr) {
	if e == nil || r.tainted[e] {
		return
	}
	r.tainted[e] = true
	r.queue = append(r.queue, e)
}

func (r *escapeRun) taintObj(obj types.Object) {
	if obj == nil || r.taintedObj[obj] {
		return
	}
	r.taintedObj[obj] = true
	for _, id := range r.uses[obj] {
		r.taintExpr(id)
	}
}

func (r *escapeRun) sink(pos token.Pos, what string) {
	r.sinks = append(r.sinks, Sink{Pos: pos, What: what})
}

func (r *escapeRun) drain() {
	for len(r.queue) > 0 {
		e := r.queue[0]
		r.queue = r.queue[1:]
		r.step(e)
	}
	sortSinks(r.sinks)
}

// step classifies one tainted expression by its syntactic parent,
// either propagating the taint outward or recording a sink.
func (r *escapeRun) step(e ast.Expr) {
	p := r.g.parent[e]
	if p == nil {
		return
	}
	switch parent := p.(type) {
	case *ast.ParenExpr:
		r.taintExpr(parent)
	case *ast.AssignStmt:
		r.assign(parent, e)
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if v == e && i < len(parent.Names) {
				r.assignTo(parent.Names[i], e)
			}
		}
	case *ast.ReturnStmt:
		r.sink(e.Pos(), "returned")
	case *ast.SendStmt:
		if parent.Value == e {
			r.sink(e.Pos(), "sent on a channel")
		}
	case *ast.CallExpr:
		r.call(parent, e)
	case *ast.CompositeLit, *ast.KeyValueExpr:
		r.taintExpr(p.(ast.Expr))
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			r.taintExpr(parent)
		}
	case *ast.StarExpr:
		r.taintExpr(parent)
	case *ast.IndexExpr:
		if parent.X == e {
			r.taintExpr(parent) // element of a tracked slice/map
		}
	case *ast.SliceExpr:
		if parent.X == e {
			r.taintExpr(parent)
		}
	case *ast.TypeAssertExpr:
		r.taintExpr(parent)
	case *ast.RangeStmt:
		if parent.X != e {
			return
		}
		// Elements of a tracked slice are tracked values themselves.
		if id, ok := parent.Value.(*ast.Ident); ok {
			r.taintObj(r.g.info.ObjectOf(id))
		}
	}
}

// assign classifies a tainted right-hand side by its target.
func (r *escapeRun) assign(st *ast.AssignStmt, e ast.Expr) {
	for i, rhs := range st.Rhs {
		if rhs != e {
			continue
		}
		if len(st.Lhs) == len(st.Rhs) {
			r.assignTo(st.Lhs[i], e)
			return
		}
		for _, lhs := range st.Lhs { // x, y := f() — taint every target
			r.assignTo(lhs, e)
		}
		return
	}
}

func (r *escapeRun) assignTo(lhs ast.Expr, e ast.Expr) {
	switch target := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if target.Name == "_" {
			return
		}
		obj := r.g.info.ObjectOf(target)
		if obj == nil {
			return
		}
		switch {
		case obj.Parent() == r.g.pkgScope:
			r.sink(e.Pos(), "stored in package variable "+target.Name)
		case obj.Pos() < r.node.Pos() || obj.Pos() > r.node.End():
			r.sink(e.Pos(), "stored in captured variable "+target.Name)
		default:
			r.taintObj(obj)
		}
	case *ast.SelectorExpr:
		r.sink(e.Pos(), "stored in "+types.ExprString(target))
	case *ast.IndexExpr:
		r.sink(e.Pos(), "stored in element "+types.ExprString(target))
	case *ast.StarExpr:
		r.sink(e.Pos(), "stored through pointer "+types.ExprString(target))
	}
}

// call classifies a tainted argument of a call.
func (r *escapeRun) call(call *ast.CallExpr, e ast.Expr) {
	if call.Fun == e {
		return // calling a tracked func value retains nothing
	}
	info := r.g.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		r.taintExpr(call) // conversion: same value, new type
		return
	}
	if b := builtinName(info, call); b != "" {
		switch b {
		case "append":
			if call.Args[0] == e || r.destTainted(call.Args[0]) {
				r.taintExpr(call) // growing a tracked slice stays tracked
				return
			}
			r.sink(e.Pos(), "appended to "+types.ExprString(call.Args[0]))
		case "copy":
			if len(call.Args) == 2 && call.Args[1] == e && !r.destTainted(call.Args[0]) {
				r.sink(e.Pos(), "copied into "+types.ExprString(call.Args[0]))
			}
		}
		return // len, cap, delete, close, panic, ... retain nothing
	}
	if _, ok := r.g.parent[call].(*ast.GoStmt); ok {
		r.sink(e.Pos(), "passed to a goroutine")
		return
	}
	fn := r.g.StaticCallee(call)
	if fn != nil && r.opts.SafeCall != nil && r.opts.SafeCall(fn) {
		return
	}
	callee := r.g.CalleeNode(call)
	if callee == nil || r.depth == 0 {
		return // cross-package or dynamic callee: assume borrow, not retain
	}
	for i, arg := range call.Args {
		if arg == e && r.g.retains(callee, i, r.depth-1, r.opts) {
			r.sink(e.Pos(), "passed to "+callee.Name()+", which retains its argument")
			return
		}
	}
}

// destTainted reports whether an append/copy destination is itself a
// tracked value, making the operation an alias-preserving grow rather
// than an escape.
func (r *escapeRun) destTainted(dest ast.Expr) bool {
	if r.tainted[dest] {
		return true
	}
	if id, ok := ast.Unparen(dest).(*ast.Ident); ok {
		return r.taintedObj[r.g.info.ObjectOf(id)]
	}
	return false
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func sortSinks(sinks []Sink) {
	for i := 1; i < len(sinks); i++ {
		for j := i; j > 0 && sinks[j].Pos < sinks[j-1].Pos; j-- {
			sinks[j], sinks[j-1] = sinks[j-1], sinks[j]
		}
	}
}

package fleet

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	schedpkg "repro/internal/sched"
)

// withSched swaps the package scheduler so a test controls parallelism
// independently of the machine (the CI box may have one core; the
// determinism contract must be exercised with real concurrency anyway).
func withSched(t *testing.T, capacity int) {
	t.Helper()
	old := sched
	sched = schedpkg.New(capacity)
	t.Cleanup(func() { sched = old })
}

func TestWorkloadDeterminism(t *testing.T) {
	cfg, err := Config{Seed: 3, Sessions: 500}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	a, b := Workload(cfg), Workload(cfg)
	if len(a) != 500 {
		t.Fatalf("got %d clients", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("client %d differs between identical draws: %+v vs %+v", i, a[i], b[i])
		}
	}
	prev := 0.0
	for i, c := range a {
		if c.Arrival < prev {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		prev = c.Arrival
		if c.Arrival >= cfg.ArrivalWindowSec {
			t.Fatalf("client %d arrival %.1f outside window", i, c.Arrival)
		}
		if c.Watch < 5 || c.Watch > cfg.WatchSec {
			t.Fatalf("client %d watch %.1f outside [5, %.0f]", i, c.Watch, cfg.WatchSec)
		}
		if c.Service < 0 || c.Service >= len(cfg.Services) || c.Trace < 1 || c.Trace > 14 {
			t.Fatalf("client %d out-of-range draw: %+v", i, c)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 4
	c := Workload(cfg2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestRunWorkersDeterminism is the seed-sensitivity regression test the
// fleet's whole design serves: the JSON report must be byte-identical
// between a serial run and a concurrent run on the same seed.
func TestRunWorkersDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	withSched(t, 8)
	cfg := Config{Seed: 5, Sessions: 120, ArrivalWindowSec: 120, WatchSec: 45, ClientsPerCell: 10, Services: []string{"H1", "D2", "S1"}}

	serial, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Fatalf("report bytes differ between workers=1 (%d B) and workers=8 (%d B)", len(sb), len(pb))
	}
}

// TestSharedEdgeCoupling checks the population-level economics on one
// cell: with the edge budget fixed, raising concurrency must lower the
// per-client achieved (delivered) bitrate, and utilization must never
// exceed 1 (conservation as seen through the report). Seed 1 hands the
// two-client case the fastest cellular traces (14 and 13), so access
// links don't bind and the comparison isolates edge contention.
func TestSharedEdgeCoupling(t *testing.T) {
	perClientBps := func(sessions int) float64 {
		cfg := Config{
			Seed:             1,
			Sessions:         sessions,
			ArrivalWindowSec: 5, // near-simultaneous joins: sustained contention
			WatchSec:         60,
			AbandonProb:      -1, // everyone watches the full duration
			ClientsPerCell:   sessions,
			EdgeMbps:         10,
			Services:         []string{"H1"},
		}
		rep, err := Run(context.Background(), cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cells != 1 {
			t.Fatalf("expected one cell, got %d", rep.Cells)
		}
		if rep.EdgeUtilization.Over != 0 || rep.EdgeUtilization.Mean > 1+1e-9 {
			t.Fatalf("%d sessions: edge utilization exceeds 1 (mean %.4f, over %d)",
				sessions, rep.EdgeUtilization.Mean, rep.EdgeUtilization.Over)
		}
		return rep.TotalBytes * 8 / float64(sessions) / cfg.WatchSec
	}
	light := perClientBps(2)
	heavy := perClientBps(16)
	if light <= 0 {
		t.Fatalf("degenerate baseline throughput %.0f bit/s", light)
	}
	// 16 clients on 10 Mbit/s cap out at 0.625 Mbit/s each; 2 clients on
	// fast access links should each achieve several times that.
	if heavy >= light*0.7 {
		t.Fatalf("per-client throughput did not degrade under contention: 2 clients %.0f bit/s, 16 clients %.0f bit/s", light, heavy)
	}
}

// TestReportAccounting checks the streaming aggregation preserves
// session counts exactly: nothing dropped, nothing double-counted.
func TestReportAccounting(t *testing.T) {
	cfg := Config{Seed: 2, Sessions: 90, ArrivalWindowSec: 90, WatchSec: 30, ClientsPerCell: 12, Services: []string{"H1", "H4"}}
	rep, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var svcTotal, started int64
	for _, s := range rep.Services {
		svcTotal += s.Sessions
		started += s.Started
		if s.Started > s.Sessions {
			t.Fatalf("%s: started %d > sessions %d", s.Service, s.Started, s.Sessions)
		}
		if s.BitrateMbps.Count != s.Started {
			t.Fatalf("%s: bitrate samples %d != started %d", s.Service, s.BitrateMbps.Count, s.Started)
		}
	}
	if svcTotal != int64(cfg.Sessions) || rep.Sessions != int64(cfg.Sessions) {
		t.Fatalf("session accounting: per-service sum %d, report %d, want %d", svcTotal, rep.Sessions, cfg.Sessions)
	}
	if started != rep.Started {
		t.Fatalf("started accounting: per-service sum %d, report %d", started, rep.Started)
	}
	if rep.TotalBytes <= 0 {
		t.Fatal("no bytes delivered")
	}
}

func TestRunCachedMemoizes(t *testing.T) {
	cfg := Config{Seed: 11, Sessions: 24, ArrivalWindowSec: 30, WatchSec: 20, ClientsPerCell: 12, Services: []string{"H1"}}
	a, err := RunCached(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs did not hit the memo")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{Sessions: 0}).Normalized(); err == nil {
		t.Fatal("accepted zero sessions")
	}
	if _, err := (Config{Sessions: 10, Services: []string{"NOPE"}}).Normalized(); err == nil {
		t.Fatal("accepted unknown service")
	}
	n, err := (Config{Sessions: 10}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Services) != 12 || n.AbandonProb != 0.35 {
		t.Fatalf("defaults not applied: %+v", n)
	}
	n2, err := (Config{Sessions: 10, AbandonProb: -1}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n2.AbandonProb != 0 {
		t.Fatalf("negative AbandonProb should normalize to 0, got %v", n2.AbandonProb)
	}
}

package player

import (
	"fmt"
	"math"
)

// Group coordinates several sessions over one shared simulated network —
// the "multiple clients behind one cellular link" scenario that fairness
// studies like FESTIVE (cited in §5) target. All sessions start at t=0
// and run until their own SessionDuration; the fluid network arbitrates
// their transfers max-min fairly.
//
// A single session's Run is the one-member special case of a Group.
type Group struct {
	sessions []*Session
}

// NewGroup creates a coordinator; sessions added to it must share one
// simnet.Network.
func NewGroup() *Group { return &Group{} }

// Add registers a session. Every session must have been created over the
// same simnet.Network.
func (g *Group) Add(s *Session) error {
	if len(g.sessions) > 0 && g.sessions[0].net != s.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	g.sessions = append(g.sessions, s)
	return nil
}

// Run drives every session to completion and returns their results in
// the order they were added.
func (g *Group) Run() []*Result {
	if len(g.sessions) == 0 {
		return nil
	}
	net := g.sessions[0].net
	for {
		now := net.Now()
		allDone := true
		deadline := math.Inf(1)
		inflight := 0
		for _, s := range g.sessions {
			if s.done {
				continue
			}
			if now >= s.cfg.SessionDuration-eps || s.finished {
				s.finishRun()
				continue
			}
			allDone = false
			s.issueRequests()
			if d := s.nextDeadline(); d < deadline {
				deadline = d
			}
			if s.cfg.SessionDuration < deadline {
				deadline = s.cfg.SessionDuration
			}
			inflight += s.inflight
		}
		if allDone {
			break
		}
		if inflight == 0 && math.IsInf(deadline, 1) {
			for _, s := range g.sessions {
				if !s.done {
					s.finishRun()
				}
			}
			break
		}
		target := deadline
		if target <= now+eps {
			target = now + 1e-6
		}
		completed := net.Step(target)
		for _, s := range g.sessions {
			if !s.done {
				s.advancePlayback(net.Now())
			}
		}
		for _, tr := range completed {
			m := tr.Meta.(*reqMeta)
			if m.owner != nil && !m.owner.done {
				m.owner.onComplete(tr)
			}
			// else: abandoned session; ignore the straggler
			net.Recycle(tr)
		}
	}
	out := make([]*Result, len(g.sessions))
	for i, s := range g.sessions {
		out[i] = s.res
	}
	return out
}

// finishRun finalizes a session once and releases its connections so
// they stop competing for the shared link.
func (s *Session) finishRun() {
	if s.done {
		return
	}
	s.finalize()
	for _, c := range s.conns {
		if c != nil {
			c.Close()
		}
	}
	s.done = true
}

// Command tracegen writes the synthetic cellular bandwidth traces (the
// Figure 3 stand-ins) in the netem text format, or summarises them.
//
// Usage:
//
//	tracegen -summary
//	tracegen -profile 3            # dump profile 3 to stdout
//	tracegen -all -dir traces/     # write all 14 as traces/cellular-NN.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/netem"
)

func main() {
	summary := flag.Bool("summary", false, "print per-profile statistics")
	profile := flag.Int("profile", 0, "dump one profile (1..14) to stdout")
	all := flag.Bool("all", false, "write every profile to -dir")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	switch {
	case *summary:
		fmt.Printf("%-12s %10s %10s %10s\n", "profile", "avg Mbps", "min Mbps", "max Mbps")
		for _, p := range netem.CellularSet() {
			fmt.Printf("%-12s %10.2f %10.2f %10.2f\n", p.Name, p.Average()/1e6, p.Min()/1e6, p.Max()/1e6)
		}
	case *profile >= 1 && *profile <= netem.CellularCount:
		if err := netem.Cellular(*profile).Format(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *all:
		for _, p := range netem.CellularSet() {
			path := filepath.Join(*dir, p.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := p.Format(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

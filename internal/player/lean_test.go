package player

import (
	"math"
	"testing"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/simnet"
)

// runPair runs the same config twice over identical fresh networks:
// once full-fidelity, once lean, and returns (full result, full
// summary, lean summary).
func runPair(t *testing.T, cfg Config, trace int) (*Result, *Summary, *Summary) {
	t.Helper()
	org := buildOrigin(t, 4, true, media.VBR)
	full, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), netem.Cellular(trace)))
	if err != nil {
		t.Fatal(err)
	}
	res := full.Run()
	lean, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), netem.Cellular(trace)))
	if err != nil {
		t.Fatal(err)
	}
	lean.SetLean()
	if out := lean.Run(); out != nil {
		t.Fatal("lean session returned a Result")
	}
	return res, full.Summary(), lean.Summary()
}

// TestLeanSummaryMatchesFull pins the lean-mode contract: with the
// Result recording turned off, every Summary field is bit-identical to
// the full-fidelity run, and the full run's own online summary matches
// the post-hoc qoe fold over its Result (checked field by field here to
// avoid importing qoe from player).
func TestLeanSummaryMatchesFull(t *testing.T) {
	for trace := 1; trace <= 4; trace++ {
		cfg := baseConfig()
		cfg.SessionDuration = 300
		res, fullSum, leanSum := runPair(t, cfg, trace)
		if *describeSummary(fullSum) != *describeSummary(leanSum) {
			t.Fatalf("trace %d: lean summary diverged\nfull: %+v\nlean: %+v", trace, fullSum, leanSum)
		}
		for i := range fullSum.TimeOnTrack {
			if fullSum.TimeOnTrack[i] != leanSum.TimeOnTrack[i] {
				t.Fatalf("trace %d: TimeOnTrack[%d] %v != %v", trace, i, fullSum.TimeOnTrack[i], leanSum.TimeOnTrack[i])
			}
		}
		// The online fold must agree exactly with the Result it shadowed.
		if fullSum.StartupDelay != res.StartupDelay {
			t.Fatalf("trace %d: summary startup %v != result %v", trace, fullSum.StartupDelay, res.StartupDelay)
		}
		if fullSum.StallCount != len(res.Stalls) || fullSum.StallSec != res.TotalStall() {
			t.Fatalf("trace %d: summary stalls (%d, %v) != result (%d, %v)",
				trace, fullSum.StallCount, fullSum.StallSec, len(res.Stalls), res.TotalStall())
		}
		if fullSum.PlayedSec != res.PlayedSeconds() {
			t.Fatalf("trace %d: summary played %v != result %v", trace, fullSum.PlayedSec, res.PlayedSeconds())
		}
		if fullSum.TotalBytes != res.TotalBytes || fullSum.WastedBytes != res.WastedBytes {
			t.Fatalf("trace %d: summary bytes (%v, %v) != result (%v, %v)",
				trace, fullSum.TotalBytes, fullSum.WastedBytes, res.TotalBytes, res.WastedBytes)
		}
		// And the displayed-bitrate fold must reproduce the FromResult walk.
		var weighted, played float64
		prev := -1
		switches := 0
		for i, track := range res.Displayed {
			if track < 0 {
				continue
			}
			dur := res.SegmentDuration
			if start := float64(i) * res.SegmentDuration; start+res.SegmentDuration > res.MediaDuration {
				dur = res.MediaDuration - start
			}
			weighted += res.Declared[track] * dur
			played += dur
			if prev >= 0 && track != prev {
				switches++
			}
			prev = track
		}
		if fullSum.WeightedBitrateSec != weighted || fullSum.PlayedMediaSec != played || fullSum.Switches != switches {
			t.Fatalf("trace %d: display fold (%v, %v, %d) != result walk (%v, %v, %d)",
				trace, fullSum.WeightedBitrateSec, fullSum.PlayedMediaSec, fullSum.Switches, weighted, played, switches)
		}
	}
}

// describeSummary copies the scalar fields into a comparable struct
// (TimeOnTrack is a slice, checked separately).
func describeSummary(s *Summary) *struct {
	Startup, StallSec, Played, Weighted, PlayedMedia, Total, Wasted float64
	StallN, Sw, NonCons                                             int
	Tainted                                                         bool
} {
	return &struct {
		Startup, StallSec, Played, Weighted, PlayedMedia, Total, Wasted float64
		StallN, Sw, NonCons                                             int
		Tainted                                                         bool
	}{
		s.StartupDelay, s.StallSec, s.PlayedSec, s.WeightedBitrateSec,
		s.PlayedMediaSec, s.TotalBytes, s.WastedBytes,
		s.StallCount, s.Switches, s.NonConsecutive, s.Tainted,
	}
}

// TestLeanDoesNotPerturbPeers: in a two-client group over one shared
// link, turning one client lean must not move a single byte of the
// other client's result — lean drops recording, never behavior.
func TestLeanDoesNotPerturbPeers(t *testing.T) {
	run := func(leanPeer bool) *Summary {
		org := buildOrigin(t, 4, false, media.VBR)
		net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 2e6, 600))
		a, err := NewSession(baseConfig(), org, net)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSession(baseConfig(), org, net)
		if err != nil {
			t.Fatal(err)
		}
		if leanPeer {
			b.SetLean()
		}
		g := NewGroup()
		if err := g.Add(a); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
		g.Run()
		return a.Summary()
	}
	fullPeer := run(false)
	leanPeer := run(true)
	if *describeSummary(fullPeer) != *describeSummary(leanPeer) {
		t.Fatalf("peer summary moved when the other client went lean\nwith full peer: %+v\nwith lean peer: %+v", fullPeer, leanPeer)
	}
}

// TestBackgroundFlowSmoke: a background flow alone on a fat link plays
// the whole presentation with sane accounting.
func TestBackgroundFlowSmoke(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 8e6, 700))
	b := NewBackground(BackgroundConfig{
		Declared:        []float64{200e3, 400e3, 800e3, 1.6e6},
		SegmentDuration: 4,
		MediaDuration:   600,
		SessionDuration: 650,
	}, net)
	g := NewGroup()
	if err := g.AddBackground(b); err != nil {
		t.Fatal(err)
	}
	finished := 0
	g.SetBackgroundObserver(func(*Background) { finished++ })
	g.Run()
	if finished != 1 {
		t.Fatalf("background observer fired %d times", finished)
	}
	s := b.Summary()
	if s.StartupDelay < 0 {
		t.Fatal("background flow never started")
	}
	if math.Abs(s.PlayedMediaSec-600) > 1e-6 {
		t.Fatalf("played %v media seconds, want 600", s.PlayedMediaSec)
	}
	if s.PlayedSec <= 0 || s.TotalBytes <= 0 {
		t.Fatalf("degenerate summary %+v", s)
	}
	// On a fat link the EWMA rule must climb off the bottom rung.
	if s.TimeOnTrack[len(s.TimeOnTrack)-1] == 0 {
		t.Fatalf("never reached the top rung: %v", s.TimeOnTrack)
	}
	if s.AvgBitrate() <= 200e3 {
		t.Fatalf("avg bitrate %v stuck at bottom rung", s.AvgBitrate())
	}
}

// TestBackgroundCompetesForLink: a full session sharing the link must
// depress a background flow's throughput (and therefore its chosen
// rungs and bytes) — the coarse tier moves real bytes through the same
// water-filling, it is not a bookkeeping fiction. The background side
// is the clean probe: its EWMA sees only its own transfer rates,
// whereas the full player's estimator reads network-wide delivery.
func TestBackgroundCompetesForLink(t *testing.T) {
	run := func(withSession bool) *Summary {
		org := buildOrigin(t, 4, false, media.VBR)
		net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 1.2e6, 600))
		g := NewGroup()
		b := NewBackground(BackgroundConfig{
			Declared:        []float64{200e3, 400e3, 800e3, 1.6e6},
			SegmentDuration: 4,
			MediaDuration:   600,
			SessionDuration: 600,
		}, net)
		if err := g.AddBackground(b); err != nil {
			t.Fatal(err)
		}
		if withSession {
			s, err := NewSession(baseConfig(), org, net)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Add(s); err != nil {
				t.Fatal(err)
			}
		}
		g.Run()
		return b.Summary()
	}
	alone := run(false)
	contended := run(true)
	if contended.TotalBytes >= alone.TotalBytes {
		t.Fatalf("full session took no bandwidth from the background flow: alone %v bytes, contended %v", alone.TotalBytes, contended.TotalBytes)
	}
	if contended.AvgBitrate() >= alone.AvgBitrate() {
		t.Fatalf("background rung selection ignored contention: alone %v bps, contended %v", alone.AvgBitrate(), contended.AvgBitrate())
	}
}

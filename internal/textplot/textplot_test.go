package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "10000")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "a note") {
		t.Fatalf("missing title/note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, note, header, separator, 2 rows
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Column alignment: "value" starts at the same offset in all rows.
	hdr := lines[2]
	col := strings.Index(hdr, "value")
	for _, row := range lines[4:] {
		if len(row) < col {
			t.Fatalf("row %q shorter than header", row)
		}
	}
}

func TestPlotRendering(t *testing.T) {
	out := Plot("p", 20, 5, Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}})
	if !strings.Contains(out, "== p ==") || !strings.Contains(out, "s") {
		t.Fatalf("plot output:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no marks plotted")
	}
	if got := Plot("empty", 20, 5); !strings.Contains(got, "no data") {
		t.Fatalf("empty plot: %q", got)
	}
}

func TestPercentiles(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if got := Median(vs); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := Percentile(vs, 0); got != 1 {
		t.Fatalf("p0 %v", got)
	}
	if got := Percentile(vs, 100); got != 5 {
		t.Fatalf("p100 %v", got)
	}
	if got := Percentile(vs, 50); got != 3 {
		t.Fatalf("p50 %v", got)
	}
	if got := Percentile([]float64{1, 2}, 50); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("interpolated p50 %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile %v", got)
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("mean %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty mean %v", got)
	}
}

func TestFormatters(t *testing.T) {
	if got := Mbps(1.5e6); got != "1.50" {
		t.Errorf("Mbps %q", got)
	}
	if got := Secs(1.25); got != "1.2" {
		t.Errorf("Secs %q", got)
	}
	if got := Pct(0.256); got != "25.6%" {
		t.Errorf("Pct %q", got)
	}
	if YN(true) != "Y" || YN(false) != "N" {
		t.Error("YN")
	}
}

func TestMarkdown(t *testing.T) {
	tb := &Table{Title: "m", Note: "n", Header: []string{"a", "b"}}
	tb.AddRow("x|y", "2")
	out := tb.Markdown()
	for _, want := range []string{"### m", "_n_", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

package traffic_test

// FuzzAnalyze feeds the traffic analyzer mutated transaction logs —
// corrupted playlists, reordered and truncated requests, perturbed
// ranges, flipped document bytes. The analyzer parses attacker-shaped
// input in real deployments (a pcap is whatever the network produced),
// so the contract is: any mutation of a valid log may return an error
// but must never panic, and whatever Result comes back must be
// internally consistent (indices within the reconstructed presentation,
// sane intervals, start-time-ordered segments).

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/services"
	"repro/internal/traffic"
)

// fuzzBases builds one real transaction log per protocol family (HLS,
// range-addressed DASH, Smooth) by streaming the service in the
// simulator. Built once — fuzz iterations must be cheap.
var fuzzBases = sync.OnceValues(func() ([][]traffic.Transaction, error) {
	var bases [][]traffic.Transaction
	for _, name := range []string{"H1", "D2", "S1"} {
		res, err := services.ByName(name).Run(netem.Constant("c", 4e6, 600), 120, nil)
		if err != nil {
			return nil, err
		}
		bases = append(bases, res.Transactions)
	}
	return bases, nil
})

// mutateTxs applies a seeded sequence of structural mutations. Bodies
// are deep-copied before editing: the base logs are shared across
// iterations.
func mutateTxs(rng *rand.Rand, txs []traffic.Transaction) []traffic.Transaction {
	out := make([]traffic.Transaction, len(txs))
	copy(out, txs)
	for n := 1 + rng.Intn(8); n > 0 && len(out) > 0; n-- {
		i := rng.Intn(len(out))
		switch rng.Intn(9) {
		case 0: // drop a transaction (lost packet capture)
			out = append(out[:i], out[i+1:]...)
		case 1: // duplicate (retransmission / retry)
			out = append(out[:i+1], out[i:]...)
		case 2: // swap two entries (reordering)
			j := rng.Intn(len(out))
			out[i], out[j] = out[j], out[i]
		case 3: // truncate the log (capture cut short)
			out = out[:i]
		case 4: // flip bytes inside a document body
			if len(out[i].Body) > 0 {
				b := append([]byte(nil), out[i].Body...)
				for k := 0; k < 1+rng.Intn(4); k++ {
					b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
				}
				out[i].Body = b
			}
		case 5: // perturb the byte range
			out[i].RangeStart = rng.Int63n(1 << 20)
			out[i].RangeEnd = out[i].RangeStart + rng.Int63n(1<<20) - 1000
		case 6: // lie about the transferred size
			out[i].Bytes = rng.Int63n(1 << 24)
		case 7: // drop a document body (media-shaped)
			out[i].Body = nil
		case 8: // scramble the URL
			u := []byte(out[i].URL)
			if len(u) > 0 {
				u[rng.Intn(len(u))] ^= byte(1 + rng.Intn(255))
				out[i].URL = string(u)
			}
		}
	}
	return out
}

func FuzzAnalyze(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%3))
	}
	f.Fuzz(func(t *testing.T, seed int64, base uint8) {
		bases, err := fuzzBases()
		if err != nil {
			t.Skipf("base session failed: %v", err)
		}
		txs := mutateTxs(rand.New(rand.NewSource(seed)), bases[int(base)%len(bases)])
		res, err := traffic.Analyze("fuzz", txs)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		checkResult(t, res)
	})
}

// checkResult enforces the analyzer's output invariants regardless of
// input shape.
func checkResult(t *testing.T, res *traffic.Result) {
	t.Helper()
	prevStart := -1.0
	for i, s := range res.Segments {
		if s.Track < 0 || s.Index < 0 {
			t.Fatalf("segment %d: negative track/index: %+v", i, s)
		}
		if p := res.Presentation; p != nil {
			ladder := p.Video
			if s.Type == media.TypeAudio {
				ladder = p.Audio
			}
			if len(ladder) > 0 && s.Track >= len(ladder) {
				t.Fatalf("segment %d: track %d outside %d-rung ladder", i, s.Track, len(ladder))
			}
		}
		if s.End < s.Start {
			t.Fatalf("segment %d: End %.3f before Start %.3f", i, s.End, s.Start)
		}
		if s.Duration < 0 || s.Declared < 0 || s.Bytes < 0 {
			t.Fatalf("segment %d: negative duration/bitrate/bytes: %+v", i, s)
		}
		if s.Start < prevStart {
			t.Fatalf("segments not in start-time order at %d: %.3f after %.3f", i, s.Start, prevStart)
		}
		prevStart = s.Start
	}
}

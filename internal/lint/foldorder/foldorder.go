// Package foldorder enforces the in-order prefix-fold rule behind the
// fleet's byte-identical reports: shard aggregates merge in strict
// cell-index order regardless of worker count or steal schedule
// (internal/fleet), so fold and merge functions must never let their
// accumulation order depend on the scheduler.
//
// A fold function is one whose name contains merge, fold, reduce,
// combine or accumulate (case-insensitive), or any function annotated
// //vodlint:fold. Inside one, the analyzer flags the order-
// nondeterministic drivers: select statements, channel receives
// (including range over a channel), map iteration, and sync.Map.Range
// — each makes the accumulator's value depend on goroutine timing or
// map hash seeds. Ordered alternatives: fold completed shards from a
// pending list indexed by position (fleet's prefix fold), or iterate
// sorted keys (experiments' sortedKeys).
package foldorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/flow"
)

// Analyzer flags scheduler- and hash-order-dependent accumulation
// inside fold/merge functions.
var Analyzer = &lint.Analyzer{
	Name: "foldorder",
	Doc: "flag select, channel receives, map iteration and sync.Map.Range inside " +
		"fold/merge functions, whose accumulation order must be deterministic",
	Run: run,
}

func run(pass *lint.Pass) error {
	g := flow.New(pass)
	folds := g.Annotated("fold")
	seen := map[*flow.Node]bool{}
	for _, n := range folds {
		seen[n] = true
	}
	for _, n := range g.Nodes {
		if n.Decl != nil && !seen[n] && foldName(n.Decl.Name.Name) {
			folds = append(folds, n)
			seen[n] = true
		}
	}
	for _, n := range folds {
		checkFold(pass, n)
	}
	return nil
}

// foldName reports names that announce accumulation semantics.
func foldName(name string) bool {
	l := strings.ToLower(name)
	for _, kw := range []string{"merge", "fold", "reduce", "combine", "accumulate"} {
		if strings.Contains(l, kw) {
			return true
		}
	}
	return false
}

// checkFold inspects one fold function's whole body, nested closures
// included — a closure inside a fold is part of its accumulation
// logic.
func checkFold(pass *lint.Pass, node *flow.Node) {
	name := node.Name()
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectStmt:
			pass.Reportf(e.Pos(),
				"select in fold function %s makes accumulation order depend on channel readiness; fold completed work from an ordered pending list instead",
				name)
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				pass.Reportf(e.Pos(),
					"channel receive in fold function %s accumulates in scheduler order; fold completed work from an ordered pending list instead",
					name)
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(e.X)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Chan:
				pass.Reportf(e.Pos(),
					"range over channel in fold function %s accumulates in scheduler order; fold completed work from an ordered pending list instead",
					name)
			case *types.Map:
				pass.Reportf(e.Pos(),
					"map iteration in fold function %s accumulates in randomised order; iterate sorted keys instead",
					name)
			}
		case *ast.CallExpr:
			if isSyncMapRange(pass.TypesInfo, e) {
				pass.Reportf(e.Pos(),
					"sync.Map.Range in fold function %s visits entries in nondeterministic order; use an ordered structure under a mutex instead",
					name)
			}
		}
		return true
	})
}

// isSyncMapRange recognises calls of (*sync.Map).Range.
func isSyncMapRange(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Range" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// Package floateq flags exact equality comparisons between floats.
//
// The simulator advances virtual time and buffer occupancy as float64
// seconds; quantities that "should" be equal after different arithmetic
// paths (playhead vs. buffered end, declared vs. accumulated bitrate)
// differ in the last ulp, so == and != on floats encode decisions that
// flip on harmless refactors. Compare against a tolerance (math.Abs(a-b)
// <= eps) or restructure around ordered comparisons. Two exemptions
// keep the signal high: comparisons against exactly-representable
// integral constants (x == 0 for "unset", x != -1 for "absent" — stored
// sentinels round-trip bit-exactly), and _test.go files wholesale,
// because asserting byte-exact reproduction is the point of this
// repository's tests. Anything else that is intentionally exact (sort
// tie-breaks on stored values) carries //vodlint:allow floateq.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags ==/!= between floating-point operands outside
// _test.go files.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floats outside tests; compare with a tolerance",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if pass.InTestFile(be.Pos()) {
				return true
			}
			if !isFloat(pass.TypesInfo, be.X) && !isFloat(pass.TypesInfo, be.Y) {
				return true
			}
			// Two constants compare exactly at compile time.
			if isConst(pass.TypesInfo, be.X) && isConst(pass.TypesInfo, be.Y) {
				return true
			}
			// Comparison against an exactly-representable integral
			// constant is the sentinel idiom (unset config == 0, a
			// stored "absent" marker == -1, a sweep value == 120):
			// such values round-trip assignment bit-exactly, so the
			// comparison is reliable when the other side was stored,
			// not computed.
			if isIntegralConst(pass.TypesInfo, be.X) || isIntegralConst(pass.TypesInfo, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"%s between floats is exact to the last ulp; compare with a tolerance or annotate //vodlint:allow floateq for sentinel values",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

// isIntegralConst reports whether e is a constant with an exact
// integral value (0, -1, 120, …) — safe as a stored sentinel.
func isIntegralConst(info *types.Info, e ast.Expr) bool {
	v := info.Types[e].Value
	if v == nil {
		return false
	}
	return constant.ToInt(v).Kind() == constant.Int
}

package traffic_test

import (
	"testing"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/services"
	"repro/internal/traffic"
)

// sessionTransactions streams a service in the simulator and returns its
// HTTP log plus ground-truth download counts.
func sessionTransactions(t *testing.T, name string) ([]traffic.Transaction, int, int) {
	t.Helper()
	svc := services.ByName(name)
	res, err := svc.Run(netem.Constant("c", 4e6, 600), 120, nil)
	if err != nil {
		t.Fatal(err)
	}
	vid, aud := 0, 0
	for _, d := range res.Downloads {
		if d.End == 0 {
			continue
		}
		if d.Type == media.TypeVideo {
			vid++
		} else {
			aud++
		}
	}
	return res.Transactions, vid, aud
}

// TestAnalyzeAllProtocols checks the analyzer recovers exactly the
// segments the player downloaded, for an HLS, a DASH (both addressings)
// and a Smooth service — the methodology-closure property of §2.3.
func TestAnalyzeAllProtocols(t *testing.T) {
	for _, name := range []string{"H1", "D1", "D2", "S2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			txs, vid, aud := sessionTransactions(t, name)
			res, err := traffic.Analyze(name, txs)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Unmatched) != 0 {
				t.Fatalf("%d unmatched transactions (first: %+v)", len(res.Unmatched), res.Unmatched[0])
			}
			gotVid, gotAud := 0, 0
			for _, s := range res.Segments {
				if s.Type == media.TypeVideo {
					gotVid++
				} else {
					gotAud++
				}
				if s.Duration <= 0 || s.Bytes <= 0 || s.End < s.Start {
					t.Fatalf("bad segment record %+v", s)
				}
			}
			if gotVid < vid || gotAud < aud {
				t.Fatalf("recovered %d/%d segments, ground truth %d/%d", gotVid, gotAud, vid, aud)
			}
			if res.Presentation == nil || len(res.Presentation.Video) == 0 {
				t.Fatal("no presentation reconstructed")
			}
		})
	}
}

// TestAnalyzeSplitSegments: D3 fetches each segment as several ranged
// parts; the analyzer reassembles the parts into whole segments by byte
// containment, with no unmatched transactions.
func TestAnalyzeSplitSegments(t *testing.T) {
	txs, vid, aud := sessionTransactions(t, "D3")
	res, err := traffic.Analyze("D3", txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmatched) != 0 {
		t.Fatalf("%d unmatched transactions", len(res.Unmatched))
	}
	gotVid, gotAud := 0, 0
	for _, s := range res.Segments {
		if s.Type == media.TypeVideo {
			gotVid++
		} else {
			gotAud++
		}
	}
	if gotVid != vid || gotAud != aud {
		t.Fatalf("reassembled %d/%d segments, ground truth %d/%d", gotVid, gotAud, vid, aud)
	}
}

// TestAnalyzeSegmentTemplate: template-addressed DASH traffic maps back to
// segments by URL.
func TestAnalyzeSegmentTemplate(t *testing.T) {
	v, err := media.Generate(media.Config{
		Name: "tpl", Duration: 120, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3},
		Seed:           15,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.TemplateNumber,
	}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := player.Config{
		Name: "tpl", StartupBufferSec: 4, StartupTrack: 0,
		PauseThresholdSec: 30, ResumeThresholdSec: 20,
		MaxConnections: 1, Persistent: true,
		Algorithm: adaptation.Throughput{Factor: 0.75},
	}
	res, err := services.RunWithOrigin(cfg, org, netem.Constant("c", 3e6, 120), 120, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.Analyze("tpl", res.Transactions)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Unmatched) != 0 {
		t.Fatalf("%d unmatched", len(tr.Unmatched))
	}
	if len(tr.Segments) == 0 {
		t.Fatal("no segments recovered")
	}
}

// TestAnalyzeEncryptedMPD: D3 serves an application-layer-encrypted MPD,
// so the analyzer cannot parse it — but per §2.3 it reconstructs the
// presentation from the unencrypted sidx boxes alone (declared bitrate =
// peak actual, footnote 4) and still maps every segment.
func TestAnalyzeEncryptedMPD(t *testing.T) {
	txs, vid, aud := sessionTransactions(t, "D3")
	res, err := traffic.Analyze("D3", txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmatched) != 0 {
		t.Fatalf("%d unmatched transactions", len(res.Unmatched))
	}
	gotVid, gotAud := 0, 0
	for _, s := range res.Segments {
		if s.Type == media.TypeVideo {
			gotVid++
		} else {
			gotAud++
		}
	}
	if gotVid != vid || gotAud != aud {
		t.Fatalf("recovered %d/%d, ground truth %d/%d", gotVid, gotAud, vid, aud)
	}
	p := res.Presentation
	if len(p.Video) != 6 || len(p.Audio) != 1 {
		t.Fatalf("reconstructed %d video + %d audio tracks", len(p.Video), len(p.Audio))
	}
	// Ladder ascending; declared ≈ peak actual (≈ the true declared for
	// a peak-declared service).
	for i := 1; i < len(p.Video); i++ {
		if p.Video[i].DeclaredBitrate <= p.Video[i-1].DeclaredBitrate {
			t.Fatalf("sidx-only ladder not ascending at %d", i)
		}
	}
	svc := services.ByName("D3")
	trueTop := svc.Media.TargetBitrates[len(svc.Media.TargetBitrates)-1] * svc.Media.VBRSpread
	if got := p.Video[len(p.Video)-1].DeclaredBitrate; got < 0.7*trueTop || got > 1.3*trueTop {
		t.Fatalf("top declared from sidx %.0f vs true %.0f", got, trueTop)
	}
}

package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/services"
	"repro/internal/textplot"
)

// cell finds the value in the row whose first cell equals key.
func cell(t *testing.T, tb *textplot.Table, key string, col int) string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == key {
			return row[col]
		}
	}
	t.Fatalf("row %q not found in %q", key, tb.Title)
	return ""
}

func pctVal(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad pct %q", s)
	}
	return f
}

func numVal(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad number %q", s)
	}
	return f
}

// TestSortedKeysDeterministic is the regression guard for the
// map-iteration hazard at the sortedKeys site: whatever order Go's
// randomised map iteration visits the keys in, every summary that
// flows into a table must come out in one canonical order. Removing
// the key sort makes both this test and `make lint` (maprange) fail.
func TestSortedKeysDeterministic(t *testing.T) {
	insertionOrders := [][]string{
		{"720p", "1080p", "240p", "480p", "360p"},
		{"240p", "360p", "480p", "720p", "1080p"},
		{"1080p", "720p", "480p", "360p", "240p"},
	}
	want := []string{"1080p", "240p", "360p", "480p", "720p"}
	for _, order := range insertionOrders {
		m := map[string]float64{}
		for i, k := range order {
			m[k] = float64(i)
		}
		// Many rounds: map iteration order varies run to run, sortedKeys
		// must not.
		for round := 0; round < 50; round++ {
			got := sortedKeys(m)
			if len(got) != len(want) {
				t.Fatalf("sortedKeys returned %d keys, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d: sortedKeys = %v, want %v", round, got, want)
				}
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := []string{"fig3", "fig4", "fig5", "table1", "table2", "fig6", "fig7",
		"fig8", "fig9", "fig10", "sr_whatif", "fig11", "fig12", "fig13", "fig14", "fig15",
		"abl_energy", "abl_segdur", "abl_split", "abl_srcap", "abl_algorithms", "abl_recovery", "abl_abandon", "abl_fairness"}
	if len(All()) != len(ids) {
		t.Fatalf("registry has %d experiments", len(All()))
	}
	for _, id := range ids {
		if ByID(id) == nil {
			t.Errorf("experiment %q missing", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id resolved")
	}
}

// TestTable2MatchesPaper asserts the central reproduction result: every
// detector flags exactly the services the paper's Table 2 names.
func TestTable2MatchesPaper(t *testing.T) {
	tables, _, err := Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"The bitrate of lowest track is set high":             "H2, H5, S1",
		"Adaptation does not consider actual segment bitrate": "D2",
		"Audio and video downloads out of sync":               "D1",
		"Players use non-persistent TCP connections":          "H2, H3, H5",
		"Downloads resume only when buffer almost empty":      "S2",
		"Playback starts with only one segment downloaded":    "H3, H4, H6, D2, D4",
		"Bitrate selection does not stabilize":                "D1",
		"Players ramp down track despite high buffer":         "H1, H4, H6, D1",
		"Replacement can fetch same or worse quality":         "H1, H4",
	}
	for _, row := range tables[0].Rows {
		problem, got := row[1], row[3]
		if w, ok := want[problem]; ok {
			if got != w {
				t.Errorf("%q: flagged %q, paper says %q", problem, got, w)
			}
			delete(want, problem)
		}
	}
	for p := range want {
		t.Errorf("issue %q missing from table", p)
	}
}

// TestFig9Classes: D1/D3/S1 aggressive, the others conservative (§3.3.3).
func TestFig9Classes(t *testing.T) {
	tables, _, err := Fig9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ratios := tables[1]
	// A sorted table, not a map: assertion order (and therefore failure
	// output) is identical on every run.
	for _, c := range []struct {
		svc        string
		aggressive bool
	}{
		{"D1", true}, {"D2", false}, {"D3", true},
		{"H1", false}, {"H3", false}, {"S1", true},
	} {
		svc, aggressive := c.svc, c.aggressive
		r := numVal(t, cell(t, ratios, svc, 1))
		if aggressive && r < 0.85 {
			t.Errorf("%s ratio %.2f, expected aggressive (≥0.85)", svc, r)
		}
		if !aggressive && r > 0.8 {
			t.Errorf("%s ratio %.2f, expected conservative (≤0.8)", svc, r)
		}
	}
	// D2 is the most conservative (the ≤0.5x line of Figure 9).
	if d2 := numVal(t, cell(t, ratios, "D2", 1)); d2 > 0.55 {
		t.Errorf("D2 ratio %.2f, paper shows ≈0.5x", d2)
	}
}

// TestFig12DeclaredOnly: both manifest variants select the same level at
// every bandwidth, and utilisation at 2 Mbit/s is ≈1/3 (paper: 33.7%).
func TestFig12(t *testing.T) {
	tables, _, err := Fig12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "Y" {
			t.Errorf("bw %s: variants selected %s vs %s", row[0], row[1], row[2])
		}
	}
	util := pctVal(t, tables[1].Rows[0][1])
	if util < 25 || util > 45 {
		t.Errorf("utilisation %.1f%%, paper 33.7%%", util)
	}
}

// TestFig14Contrast: H3 always stalls right after startup on the marginal
// profiles; H2 never does.
func TestFig14(t *testing.T) {
	tables, _, err := Fig14(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	h3 := pctVal(t, cell(t, tables[0], "H3", 2))
	h2 := pctVal(t, cell(t, tables[0], "H2", 2))
	if h3 < 90 {
		t.Errorf("H3 early-stall ratio %.0f%%, paper: always", h3)
	}
	if h2 > 10 {
		t.Errorf("H2 early-stall ratio %.0f%%, paper: none", h2)
	}
}

// TestFig7ResumeThreshold: raising S2's resume threshold from 4 s to 25 s
// removes nearly all stalls.
func TestFig7(t *testing.T) {
	tables, _, err := Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	low := tables[0].Rows[0]
	high := tables[0].Rows[1]
	lowStalls, _ := strconv.Atoi(low[2])
	highStalls, _ := strconv.Atoi(high[2])
	if lowStalls < 3*highStalls || lowStalls < 5 {
		t.Errorf("stalls %d (resume 4s) vs %d (resume 25s): expected a large reduction", lowStalls, highStalls)
	}
}

// TestFig13ActualAware: actual-bitrate-aware adaptation improves the
// median bitrate by ≈10% with unchanged stalls (paper: +10.22%).
func TestFig13(t *testing.T) {
	tables, _, err := Fig13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	delta := pctVal(t, tables[0].Rows[1][2])
	if delta < 4 || delta > 25 {
		t.Errorf("actual-aware Δbitrate %.1f%%, paper +10.22%%", delta)
	}
	base := pctVal(t, tables[0].Rows[0][3])
	aware := pctVal(t, tables[0].Rows[1][3])
	if aware >= base {
		t.Errorf("lowest-track share did not drop: %.1f%% → %.1f%%", base, aware)
	}
}

// TestFig11ImprovedSR: per-segment SR raises quality at a data cost; the
// capped variant keeps gains with less data.
func TestFig11(t *testing.T) {
	tables, _, err := Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	improved := tables[0].Rows[1]
	capped := tables[0].Rows[2]
	if p90 := pctVal(t, improved[3]); p90 < 5 {
		t.Errorf("improved SR p90 Δbitrate %.1f%%, paper +20.9%%", p90)
	}
	dImproved := pctVal(t, improved[4])
	dCapped := pctVal(t, capped[4])
	if dCapped >= dImproved {
		t.Errorf("capped SR data %.1f%% should undercut improved %.1f%%", dCapped, dImproved)
	}
}

// TestSRWhatIf: H4-style SR costs a lot of data for little quality, with
// a substantial share of non-improving replacements (§4.1.1).
func TestSRWhatIf(t *testing.T) {
	tables, _, err := SRWhatIf(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	h4Data := pctVal(t, cell(t, tables[0], "H4", 1))
	if h4Data < 5 {
		t.Errorf("H4 median Δdata %.1f%%, paper +25.66%%", h4Data)
	}
	lower := pctVal(t, cell(t, tables[0], "H4", 5))
	equal := pctVal(t, cell(t, tables[0], "H4", 6))
	if lower+equal < 15 {
		t.Errorf("non-improving replacements %.1f%%, paper ≈28%%", lower+equal)
	}
}

// TestFig6Desync: D1's buffers drift tens of seconds apart on the lowest
// profiles.
func TestFig6(t *testing.T) {
	tables, _, err := Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if gap := numVal(t, row[1]); gap < 10 {
			t.Errorf("profile %s desync %.1f s, paper 52–70 s", row[0], gap)
		}
	}
}

// TestFig15Orderings: the three monotonicities of §4.3.
func TestFig15(t *testing.T) {
	tables, _, err := Fig15(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		segDur  string
		track   string
		nseg    int
		delay   float64
		stalled float64
	}
	var rows []row
	for _, r := range tables[0].Rows {
		n, _ := strconv.Atoi(r[2])
		rows = append(rows, row{r[0], r[1], n, numVal(t, r[3]), pctVal(t, r[4])})
	}
	find := func(seg, track string, n int) row {
		for _, r := range rows {
			if r.segDur == seg && r.track == track && r.nseg == n {
				return r
			}
		}
		t.Fatalf("row %s/%s/%d missing", seg, track, n)
		return row{}
	}
	for _, seg := range []string{"4s", "8s"} {
		for _, track := range []string{"1.2 Mbps", "2.0 Mbps"} {
			one, three := find(seg, track, 1), find(seg, track, 3)
			if three.stalled > 0.417*one.stalled+1e-9 && one.stalled > 5 {
				t.Errorf("%s %s: 3 segments stall %.0f%%, 1 segment %.0f%% (paper: ≤41.7%%)",
					seg, track, three.stalled, one.stalled)
			}
			if three.delay <= one.delay {
				t.Errorf("%s %s: delay must grow with startup segments", seg, track)
			}
		}
		// Higher startup track → more startup stalls at 1 segment.
		lo, hi := find(seg, "1.2 Mbps", 1), find(seg, "2.0 Mbps", 1)
		if hi.stalled < lo.stalled {
			t.Errorf("%s: higher startup track should stall more (%.0f%% vs %.0f%%)", seg, hi.stalled, lo.stalled)
		}
	}
}

// TestFig5Shape: peak-declared VBR medians sit near 0.5; average-declared
// services straddle 1.
func TestFig5(t *testing.T) {
	tables, _, err := Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		med := numVal(t, row[5])
		switch row[2] {
		case "peak":
			if row[1] == "VBR" {
				// Expect median ≈ 1/VBRSpread of the service's encoding.
				spread := services.ByName(row[0]).Media.VBRSpread
				want := 1 / spread
				if med < want-0.15 || med > want+0.15 {
					t.Errorf("%s median ratio %.2f, want ≈%.2f (1/spread)", row[0], med, want)
				}
			}
			if row[1] == "CBR" && (med < 0.9 || med > 1.1) {
				t.Errorf("%s CBR median ratio %.2f", row[0], med)
			}
		case "average":
			if med < 0.7 || med > 1.3 {
				t.Errorf("%s average-declared median %.2f, want ≈1", row[0], med)
			}
		}
	}
}

// TestAblEnergy: services with pause/resume gaps inside the RRC demotion
// timer keep the radio in high power the whole session (§3.3.2).
func TestAblEnergy(t *testing.T) {
	tables, _, err := AblEnergy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		gap := numVal(t, row[1])
		share := pctVal(t, row[3])
		if gap <= 6 && share < 99 {
			t.Errorf("%s: gap %.0f s but high-power share only %.1f%%", row[0], gap, share)
		}
		if gap >= 19 && share > 95 {
			t.Errorf("%s: gap %.0f s should allow demotions (share %.1f%%)", row[0], gap, share)
		}
	}
}

// TestAblSplit: with heterogeneous per-connection bottlenecks, skewing
// bytes onto slow connections degrades quality monotonically.
func TestAblSplit(t *testing.T) {
	tables, _, err := AblSplit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	proportional := numVal(t, rows[0][1])
	inverted := numVal(t, rows[len(rows)-1][1])
	if proportional <= inverted {
		t.Errorf("bandwidth-proportional split (%.2f Mbps) should beat inverted (%.2f Mbps)", proportional, inverted)
	}
}

// TestAblRecovery: larger recovery gates cut repeat stalls (§4.3).
func TestAblRecovery(t *testing.T) {
	tables, _, err := AblRecovery(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	one, _ := strconv.Atoi(rows[0][2])
	three, _ := strconv.Atoi(rows[2][2])
	if three >= one {
		t.Errorf("repeat stalls with 3-segment gate (%d) should undercut 1-segment (%d)", three, one)
	}
}

// TestAblSRCap: data cost grows with the cap while the low-track benefit
// saturates early (§4.1.3's "discarding low segments has bigger impact").
func TestAblSRCap(t *testing.T) {
	tables, _, err := AblSRCap(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	var prev float64 = -1
	for _, row := range rows[1:] { // skip the no-SR baseline
		d := pctVal(t, row[2])
		if d < prev-0.5 {
			t.Errorf("Δdata not non-decreasing with cap: %s at %.1f%% after %.1f%%", row[0], d, prev)
		}
		prev = d
	}
	base := pctVal(t, rows[0][4])
	low2 := pctVal(t, rows[2][4])
	if low2 >= base {
		t.Errorf("cap ≤2 low-track share %.1f%% should undercut no-SR %.1f%%", low2, base)
	}
}

// TestAblSegDur: the request count falls monotonically with segment
// duration (the §3.1 tradeoff's cost axis).
func TestAblSegDur(t *testing.T) {
	tables, _, err := AblSegDur(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tables[0].Rows {
		reqs := numVal(t, row[1])
		if prev > 0 && reqs >= prev {
			t.Errorf("requests not decreasing: %s has %.0f after %.0f", row[0], reqs, prev)
		}
		prev = reqs
	}
}

// TestAblAlgorithms: on peak-declared VBR content, declared-only rules
// trail the hysteresis player (the §4.2 point restated as a shoot-out),
// and BBA switches far more than hysteresis.
func TestAblAlgorithms(t *testing.T) {
	tables, _, err := AblAlgorithms(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, col int) float64 {
		return numVal(t, cell(t, tables[0], name, col))
	}
	if get("ExoPlayer hysteresis", 1) <= get("throughput 0.75", 1) {
		t.Error("hysteresis should outperform the plain declared throughput rule here")
	}
	if get("buffer-based (BBA)", 3) <= get("ExoPlayer hysteresis", 3) {
		t.Error("BBA should switch more than hysteresis")
	}
	for _, row := range tables[0].Rows {
		if s := numVal(t, row[2]); s > 120 {
			t.Errorf("%s stalled %.0f s — broken config", row[0], s)
		}
	}
}

// TestAblAbandon: waste at abandonment grows with the pausing threshold.
func TestAblAbandon(t *testing.T) {
	tables, _, err := AblAbandon(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tables[0].Rows {
		w := numVal(t, row[1])
		if w < prev {
			t.Errorf("unwatched MB not increasing with threshold: %s", row[0])
		}
		prev = w
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// CalleePkgFunc resolves a call to a package-level function and returns
// the defining package path and function name. It returns "" for method
// calls, calls of function-typed variables, conversions and builtins —
// so rand.Intn (package global) and rng.Intn (method on *rand.Rand)
// are distinguished reliably even under import aliasing or dot-imports.
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// ContainsCallTo reports whether the expression tree contains a call to
// a package-level function of pkgPath (any name, or a specific one when
// name is non-empty).
func ContainsCallTo(info *types.Info, expr ast.Node, pkgPath, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		p, fn := CalleePkgFunc(info, call)
		if p == pkgPath && (name == "" || fn == name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// RootIdent returns the identifier naming an expression's value: x for
// x, the field y for x.y, the element name for x[i], and the converted
// operand for conversions like float64(x) — the name most likely to
// carry the unit convention of the value.
func RootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			return e.Sel
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			if len(e.Args) == 1 {
				expr = e.Args[0] // conversions like float64(x)
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

package modify

import (
	"testing"

	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/player"
)

func buildPresentation(t *testing.T) *manifest.Presentation {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "m", Duration: 60, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3, 800e3, 1.6e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return manifest.Build(v, manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.SidxRanges})
}

func TestShiftVariants(t *testing.T) {
	p := buildPresentation(t)
	s := ShiftVariants(p)
	if len(s.Video) != len(p.Video)-1 {
		t.Fatalf("shifted has %d tracks, want %d", len(s.Video), len(p.Video)-1)
	}
	for i, r := range s.Video {
		// Declared from rung i+1, media (URL/sizes) from rung i.
		if r.DeclaredBitrate != p.Video[i+1].DeclaredBitrate {
			t.Errorf("track %d declared %v", i, r.DeclaredBitrate)
		}
		if r.MediaURL != p.Video[i].MediaURL {
			t.Errorf("track %d media URL %q, want lower rung's", i, r.MediaURL)
		}
		if r.Segments[0].Size != p.Video[i].Segments[0].Size {
			t.Errorf("track %d sizes not from lower rung", i)
		}
		if r.ID != i {
			t.Errorf("track %d has ID %d", i, r.ID)
		}
	}
	// The original is untouched.
	if p.Video[0].ID != 0 || len(p.Video) != 4 {
		t.Fatal("ShiftVariants mutated its input")
	}
}

func TestDropLowest(t *testing.T) {
	p := buildPresentation(t)
	d := DropLowest(p)
	if len(d.Video) != len(p.Video)-1 {
		t.Fatalf("dropped has %d tracks", len(d.Video))
	}
	for i, r := range d.Video {
		if r.DeclaredBitrate != p.Video[i+1].DeclaredBitrate {
			t.Errorf("track %d declared %v", i, r.DeclaredBitrate)
		}
		if r.MediaURL != p.Video[i+1].MediaURL {
			t.Errorf("track %d media URL %q", i, r.MediaURL)
		}
	}
}

// TestVariantsPairUp: the Figure 12 construction — variant 1 and 2 expose
// the same declared ladder, but variant 1's actual sizes sit one rung
// lower.
func TestVariantsPairUp(t *testing.T) {
	p := buildPresentation(t)
	v1, v2 := ShiftVariants(p), DropLowest(p)
	if len(v1.Video) != len(v2.Video) {
		t.Fatal("variant track counts differ")
	}
	for i := range v1.Video {
		if v1.Video[i].DeclaredBitrate != v2.Video[i].DeclaredBitrate {
			t.Fatalf("level %d declared differs", i)
		}
		if v1.Video[i].Segments[0].Size >= v2.Video[i].Segments[0].Size {
			t.Fatalf("level %d: variant 1 should carry smaller media", i)
		}
	}
}

func TestRejectAfter(t *testing.T) {
	gate := RejectAfter(3)
	for seq := 0; seq < 5; seq++ {
		got := gate(player.Request{IsSegment: true, SegmentSeq: seq})
		if want := seq < 3; got != want {
			t.Errorf("seq %d: gate = %v", seq, got)
		}
	}
}

func TestShiftSingleTrackNoop(t *testing.T) {
	p := buildPresentation(t)
	p.Video = p.Video[:1]
	if got := ShiftVariants(p); len(got.Video) != 1 {
		t.Fatal("single-track shift should be a no-op")
	}
	if got := DropLowest(p); len(got.Video) != 1 {
		t.Fatal("single-track drop should be a no-op")
	}
}

package proxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/adaptation"
	"repro/internal/httpplay"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/traffic"
)

// pipeline stands up origin → proxy → live HTTP player and returns the
// proxy plus the player result — the paper's full apparatus (Figure 2)
// over real sockets.
func pipeline(t *testing.T, bitsPerSec float64) (*Recorder, *httpplay.Result) {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "px", Duration: 6, SegmentDuration: 2,
		TargetBitrates: []float64{200e3, 400e3, 800e3},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		SeparateAudio: true, AudioSegmentDuration: 2,
		Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(org)
	t.Cleanup(originSrv.Close)

	rec := New(nil, bitsPerSec)
	proxySrv := httptest.NewServer(rec)
	t.Cleanup(proxySrv.Close)

	proxyURL, err := url.Parse(proxySrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}

	clock := time.Unix(0, 0)
	res, err := httpplay.Play(httpplay.Config{
		ManifestURL:        originSrv.URL + org.Pres.ManifestURL(),
		Client:             client,
		Algorithm:          adaptation.Throughput{Factor: 0.75},
		StartupBufferSec:   2,
		PauseThresholdSec:  10,
		ResumeThresholdSec: 5,
		MaxDuration:        time.Minute,
		Now:                func() time.Time { return clock },
		Sleep:              func(d time.Duration) { clock = clock.Add(d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

// TestProxyRecordsAnalyzableTraffic closes the entire loop with a real
// on-path observer: the analyzer reconstructs exactly the segments the
// (independent) HTTP player fetched, from the proxy's log alone.
func TestProxyRecordsAnalyzableTraffic(t *testing.T) {
	rec, res := pipeline(t, 0)
	log := rec.Log()
	if len(log) == 0 {
		t.Fatal("proxy recorded nothing")
	}
	tr, err := traffic.Analyze("px", log)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Unmatched) != 0 {
		t.Fatalf("%d unmatched transactions", len(tr.Unmatched))
	}
	if len(tr.Segments) != len(res.Downloads) {
		t.Fatalf("analyzer saw %d segments, player fetched %d", len(tr.Segments), len(res.Downloads))
	}
	// Ranged requests were recorded with their ranges.
	ranged := 0
	for _, tx := range log {
		if tx.Ranged() {
			ranged++
		}
	}
	if ranged == 0 {
		t.Fatal("no ranged requests recorded for a sidx presentation")
	}
}

// virtualClock is a mutex-guarded fake clock safe for the proxy's
// request goroutines: Sleep advances time instead of waiting.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{now: time.Unix(0, 0)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestProxyShaping: the token bucket accounts transfer debt against the
// injected clock — the test runs in virtual time, with no real sleeps.
func TestProxyShaping(t *testing.T) {
	payload := make([]byte, 200<<10)
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer upstream.Close()
	clock := newVirtualClock()
	// 8 Mbit/s = 1e6 bytes/s: 200 KiB with a zero bucket is 204.8 ms of
	// debt, slept off on the virtual clock.
	rec := NewWithConfig(Config{BitsPerSec: 8e6, Now: clock.Now, Sleep: clock.Sleep})
	proxySrv := httptest.NewServer(rec)
	defer proxySrv.Close()
	proxyURL, _ := url.Parse(proxySrv.URL)
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}

	resp, err := client.Get(upstream.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(payload) {
		t.Fatalf("read %d bytes", len(body))
	}
	slept := clock.Now().Sub(time.Unix(0, 0))
	if want := 2048 * time.Second / 10000; slept < want-time.Millisecond || slept > want+50*time.Millisecond {
		t.Fatalf("virtual shaping slept %v, want ≈%v", slept, want)
	}
	txs := rec.Log()
	if len(txs) != 1 || txs[0].Bytes != int64(len(payload)) {
		t.Fatalf("log %+v", txs)
	}
	// The transaction's duration is measured on the injected clock, so
	// it covers exactly the shaping debt.
	if got := txs[0].End - txs[0].Start; got < slept.Seconds()-1e-3 {
		t.Fatalf("transaction spans %.3fs on the virtual clock, slept %.3fs", got, slept.Seconds())
	}
}

func TestProxyReset(t *testing.T) {
	rec, _ := pipeline(t, 0)
	if len(rec.Log()) == 0 {
		t.Fatal("expected log entries")
	}
	rec.Reset()
	if len(rec.Log()) != 0 {
		t.Fatal("reset did not clear the log")
	}
}

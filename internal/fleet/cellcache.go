package fleet

// Cell-granular incremental recomputation. A sweep varies one config
// field and re-runs the fleet; most cells are unchanged — a hotspot
// sweep, for example, only changes the cell layout (cell 0's size and
// the balanced remainder), while every cell whose (seed stream, size,
// workload parameters) repeat produces byte-identical aggregates. The
// CellCache content-addresses finished cellAgg slabs by a fingerprint
// of exactly the inputs runCell consumes for that cell, so warm sweep
// points skip the simulation for every repeated cell and merge the
// cached slabs directly.
//
// Safety argument: runCell is a pure function of (normalized config,
// cell index) — CellClients draws members from the cell's private
// splitmix64 stream, the simulation is single-threaded, and the
// resulting cellAgg is never mutated after return (fleetAgg.merge only
// reads its source). The key therefore only needs the fields that
// reach runCell: the cell's seed stream and size (which fold in Seed,
// Sessions, ClientsPerCell and Hotspot via the layout), the workload
// draw parameters, the edge budget, the fidelity mix and the service
// list — plus the global EngineVersion so any engine change invalidates
// everything. Focus cells bypass the cache entirely (their FocusSession
// records are not part of the cached value).

import (
	"sync/atomic"

	"repro/internal/cdn"
	"repro/internal/expcache"
)

// CellCache memoizes per-cell aggregates across fleet runs. Safe for
// concurrent use; share one across the runs of a sweep.
type CellCache struct {
	memo    expcache.Memo[expcache.Key, *cellAgg]
	skipped atomic.Int64
}

// NewCellCache returns an empty cache.
func NewCellCache() *CellCache {
	return &CellCache{}
}

// CellCacheStats is a point-in-time snapshot of cache effectiveness.
type CellCacheStats struct {
	// Builds counts cells simulated cold (cache misses).
	Builds int64
	// Hits counts cells served from a cached aggregate.
	Hits int64
	// Skipped counts cells that bypassed the cache because they carry
	// focus members.
	Skipped int64
}

// Stats reports cumulative cache counters.
func (cc *CellCache) Stats() CellCacheStats {
	builds, hits, _ := cc.memo.Stats()
	return CellCacheStats{Builds: builds, Hits: hits, Skipped: cc.skipped.Load()}
}

// key fingerprints cell k of a normalized config: exactly the inputs
// runCell consumes, nothing more — so a sweep that leaves a cell's
// stream, size and workload parameters untouched hits regardless of
// which sweep point produced the entry.
func (cc *CellCache) key(cfg Config, k int) (expcache.Key, error) {
	// The cache tier joins the key as (config, is-this-cell-cold,
	// fail-armed-here): two sweep points that differ only in another
	// cell's cold/fail status still share this cell's entry. Cells
	// behind an active metro tier never reach this function (they are
	// shard-coupled and bypass the cache in RunWithOptions).
	cacheCfg := cdn.CacheConfig{}
	cold, failHere := false, false
	if cfg.Cache != nil {
		cacheCfg = *cfg.Cache
		set, err := cacheCfg.ColdSet()
		if err != nil {
			return expcache.Key{}, err
		}
		cold = set[k]
		failHere = cacheCfg.FailAtSec > 0 && cacheCfg.FailCell == k
		cacheCfg.ColdCells = ""
		cacheCfg.FailCell = 0
		if !failHere {
			cacheCfg.FailAtSec = 0
		}
	}
	return expcache.Fingerprint("fleetcell", expcache.EngineVersion,
		cellSeed(cfg.Seed, k), cellSize(cfg, k),
		cfg.ArrivalWindowSec, cfg.WatchSec,
		cfg.AbandonProb, cfg.AbandonMeanSec,
		cfg.EdgeMbps, cfg.FidelityFull, cfg.Services,
		cfg.Cache != nil, cacheCfg, cold, failHere)
}

package player

import (
	"fmt"
	"math"

	"repro/internal/simnet"
)

// Group coordinates several sessions over one shared simulated network —
// the "multiple clients behind one cellular link" scenario that fairness
// studies like FESTIVE (cited in §5) target, and the building block of a
// fleet cell. Sessions start at t=0 unless scheduled later with
// Session.SetStartAt, and each runs for its own SessionDuration from its
// start; the fluid network arbitrates their transfers max-min fairly.
// A cell may also carry Background flows — the coarse analytic session
// tier — which compete for the same links as full sessions.
//
// A single session's Run is the one-member special case of a Group.
type Group struct {
	net         *simnet.Network
	sessions    []*Session
	backgrounds []*Background
	observer    func(*Session, *Result)
	bgObserver  func(*Background)
}

// NewGroup creates a coordinator; sessions added to it must share one
// simnet.Network.
func NewGroup() *Group { return &Group{} }

// Add registers a session. Every member must have been created over the
// same simnet.Network.
func (g *Group) Add(s *Session) error {
	if g.net == nil {
		g.net = s.net
	} else if g.net != s.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	s.ensureResult()
	g.sessions = append(g.sessions, s)
	return nil
}

// AddBackground registers a background flow over the same network.
func (g *Group) AddBackground(b *Background) error {
	if g.net == nil {
		g.net = b.net
	} else if g.net != b.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	g.backgrounds = append(g.backgrounds, b)
	return nil
}

// SetObserver registers fn, called exactly once per session as it
// finishes (finish order, which is deterministic). When an observer is
// set, Run returns nil and each session's Result is released right
// after its callback returns — the memory-bounded streaming mode
// population runs use: the caller folds the Result into its aggregates
// and must not retain it. Lean sessions reach the observer with a nil
// Result; their Summary is the output.
func (g *Group) SetObserver(fn func(*Session, *Result)) { g.observer = fn }

// SetBackgroundObserver registers fn, called exactly once per background
// flow as it finishes.
func (g *Group) SetBackgroundObserver(fn func(*Background)) { g.bgObserver = fn }

// Run drives every member to completion and returns the sessions'
// results in the order they were added (nil when an observer is set).
//
//vodlint:hotpath — lean-session event loop: one iteration per completed transfer
func (g *Group) Run() []*Result {
	if len(g.sessions) == 0 && len(g.backgrounds) == 0 {
		return nil
	}
	net := g.net
	for {
		now := net.Now()
		allDone := true
		deadline := math.Inf(1)
		inflight := 0
		for _, s := range g.sessions {
			if s.done {
				continue
			}
			if now < s.startAt-eps {
				// Not yet arrived: keep the run alive and make sure the
				// clock steps to the arrival, but issue nothing.
				allDone = false
				if s.startAt < deadline {
					deadline = s.startAt
				}
				continue
			}
			if now >= s.endAt()-eps || s.finished {
				g.finish(s)
				continue
			}
			allDone = false
			s.issueRequests()
			if d := s.nextDeadline(); d < deadline {
				deadline = d
			}
			if e := s.endAt(); e < deadline {
				deadline = e
			}
			inflight += s.inflight
		}
		for _, b := range g.backgrounds {
			if b.done {
				continue
			}
			if now < b.startAt-eps {
				allDone = false
				if b.startAt < deadline {
					deadline = b.startAt
				}
				continue
			}
			if now >= b.endAt()-eps || b.finished {
				g.finishBackground(b)
				continue
			}
			allDone = false
			b.issueRequests()
			if d := b.nextDeadline(now); d < deadline {
				deadline = d
			}
			if e := b.endAt(); e < deadline {
				deadline = e
			}
			inflight += b.inflight
		}
		if allDone {
			break
		}
		if inflight == 0 && math.IsInf(deadline, 1) {
			for _, s := range g.sessions {
				if !s.done {
					g.finish(s)
				}
			}
			for _, b := range g.backgrounds {
				if !b.done {
					g.finishBackground(b)
				}
			}
			break
		}
		target := deadline
		if target <= now+eps {
			target = now + 1e-6
		}
		completed := net.Step(target)
		for _, s := range g.sessions {
			if !s.done {
				s.advancePlayback(net.Now())
			}
		}
		for _, b := range g.backgrounds {
			if !b.done {
				b.advancePlayback(net.Now())
			}
		}
		for _, tr := range completed {
			switch m := tr.Meta.(type) {
			case *reqMeta:
				if m.owner != nil && !m.owner.done {
					m.owner.onComplete(tr)
				}
				// else: abandoned session; ignore the straggler
			case *Background:
				if !m.done {
					m.onComplete(tr)
				}
			}
			net.Recycle(tr)
		}
	}
	if g.observer != nil {
		return nil
	}
	out := make([]*Result, len(g.sessions)) //vodlint:allow hotalloc — cold epilogue: runs once per group, only without an observer
	for i, s := range g.sessions {
		out[i] = s.res
	}
	return out
}

// finish finalizes a session once, notifies the observer, and — in
// observer mode — releases the Result so a population run never holds
// more than the in-flight cell's worth of per-session state.
func (g *Group) finish(s *Session) {
	if s.done {
		return
	}
	s.finishRun()
	if g.observer != nil {
		g.observer(s, s.res)
		s.res = nil
	}
}

// finishBackground finalizes a background flow once and notifies its
// observer.
func (g *Group) finishBackground(b *Background) {
	if b.done {
		return
	}
	b.finishRun()
	if g.bgObserver != nil {
		g.bgObserver(b)
	}
}

// finishRun finalizes a session once and releases its connections so
// they stop competing for the shared link.
func (s *Session) finishRun() {
	if s.done {
		return
	}
	s.finalize()
	for _, c := range s.conns {
		if c != nil {
			c.Close()
		}
	}
	s.done = true
}

package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Audit tracks //vodlint:allow directives across a whole load and
// reports the stale ones: directives that no longer suppress any
// diagnostic, name an unknown analyzer, or name nothing at all. Every
// suppression in the tree must stay load-bearing, or it silently
// rots into a license to reintroduce the bug it once excused.
type Audit struct {
	known map[string]bool
	sites map[string]map[int]*directiveSite // filename -> line -> site
}

// directiveSite is one //vodlint:allow occurrence, deduplicated by
// position: the loader parses base files again for test-augmented
// units, and go vet feeds them twice too.
type directiveSite struct {
	pos   token.Position
	names map[string]bool
	used  map[string]bool
}

// NewAudit prepares an audit for the given analyzer set.
func NewAudit(analyzers []*Analyzer) *Audit {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return &Audit{known: known, sites: map[string]map[int]*directiveSite{}}
}

// Collect indexes the package's allow directives. Call it for every
// unit of a load before reading Stale.
func (a *Audit) Collect(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//vodlint:allow") {
					continue
				}
				names, _ := parseDirective(c.Text)
				pos := pkg.Fset.Position(c.Slash)
				m := a.sites[pos.Filename]
				if m == nil {
					m = map[int]*directiveSite{}
					a.sites[pos.Filename] = m
				}
				site := m[pos.Line]
				if site == nil {
					site = &directiveSite{pos: pos, names: map[string]bool{}, used: map[string]bool{}}
					m[pos.Line] = site
				}
				for n := range names {
					site.names[n] = true
				}
			}
		}
	}
}

// markUsed records that the directive at file:line suppressed a
// diagnostic of the named analyzer.
func (a *Audit) markUsed(filename string, line int, name string) {
	if site := a.sites[filename][line]; site != nil {
		site.used[name] = true
	}
}

// Stale returns one diagnostic per directive defect, ordered by
// position: a named analyzer that suppressed nothing, an unknown
// analyzer name, or a bare directive naming no analyzer.
func (a *Audit) Stale() []Diagnostic {
	// Flatten the site index into position order first so the output
	// is deterministic by construction.
	var all []*directiveSite
	for _, lines := range a.sites {
		for _, site := range lines {
			all = append(all, site)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Line < all[j].pos.Line
	})
	var out []Diagnostic
	for _, site := range all {
		if len(site.names) == 0 {
			out = append(out, staleDiag(site.pos,
				"bare //vodlint:allow suppresses nothing; name the analyzer being silenced"))
			continue
		}
		var names []string
		for n := range site.names {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			switch {
			case !a.known[n]:
				out = append(out, staleDiag(site.pos,
					fmt.Sprintf("//vodlint:allow names unknown analyzer %q", n)))
			case !site.used[n]:
				out = append(out, staleDiag(site.pos,
					fmt.Sprintf("stale //vodlint:allow %s: it no longer suppresses any diagnostic; remove it", n)))
			}
		}
	}
	SortDiagnostics(out)
	return out
}

func staleDiag(pos token.Position, msg string) Diagnostic {
	return Diagnostic{Pos: pos, Analyzer: "unusedallow", Message: msg}
}

// Livestream demonstrates the live-HLS extension: a broadcast publishes
// segments into a sliding-window playlist as it encodes them; a client
// joins mid-stream, holds a small live delay, polls the playlist at the
// edge, and adapts bitrate. A bandwidth dip stalls playback and — unlike
// VOD — permanently widens the end-to-end latency.
package main

import (
	"fmt"
	"log"

	vod "repro"
	"repro/internal/live"
	"repro/internal/media"
	"repro/internal/netem"
)

func main() {
	video, err := vod.GenerateVideo(vod.MediaConfig{
		Name: "event", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6, 2e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	channel := live.NewOrigin(video)

	scenarios := []struct {
		name string
		p    *vod.Profile
	}{
		{"stable 8 Mbit/s", netem.Constant("stable", 8e6, 2000)},
		{"dip to 0.1 Mbit/s at t=150 for 60 s", dipProfile()},
	}
	for _, sc := range scenarios {
		net := vod.NewNetwork(vod.DefaultNetworkConfig(), sc.p)
		res, err := live.Play(live.Config{
			JoinAt:          60,
			SessionDuration: 240,
			StartupTrack:    1,
		}, channel, net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sc.name)
		fmt.Printf("  startup %.2fs  latency %.1fs → %.1fs (mean %.1fs)\n",
			res.StartupDelay, res.InitialLatency, res.FinalLatency, res.MeanLatency)
		fmt.Printf("  stalls %d (%.1fs)  avg %.0f kbit/s  %d playlist reloads  %.1f MB\n",
			res.Stalls, res.StallSec, res.AvgBitrate/1e3, res.PlaylistReloads, res.Bytes/1e6)
	}
	fmt.Println("\nA live player cannot refill lost time: every stalled second stays as")
	fmt.Println("added latency, which is why live startup policy leans on a safety delay.")
}

func dipProfile() *vod.Profile {
	p := &vod.Profile{Name: "dip", SampleDur: 1}
	for i := 0; i < 2000; i++ {
		switch {
		case i >= 150 && i < 210:
			p.Samples = append(p.Samples, 0.1e6)
		default:
			p.Samples = append(p.Samples, 8e6)
		}
	}
	return p
}

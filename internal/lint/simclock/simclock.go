// Package simclock forbids wall-clock reads inside simulation packages.
//
// The virtual-time engine is only deterministic if simulated durations
// come from the simulation itself; a single time.Now() inside the
// player, the network emulator or an experiment silently couples
// results to the host's scheduler. Packages that legitimately run in
// wall time (internal/httpplay, the cmd binaries, examples) follow the
// injectable-clock pattern instead: a Config carries Now/Sleep function
// fields defaulting to the time package, so tests and the simulator can
// substitute a virtual clock. Storing time.Now as a function value is
// therefore allowed — only calling it is flagged.
package simclock

import (
	"go/ast"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags calls to wall-clock functions of package time inside
// simulation packages.
var Analyzer = &lint.Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Since/Sleep/... calls in simulation packages; " +
		"inject a clock (cfg.Now/cfg.Sleep) like internal/httpplay instead",
	Run: run,
}

// banned lists the package-level time functions that read or wait on
// the wall clock. Duration arithmetic (time.Duration, ParseDuration,
// Unix, Date) stays legal: it is pure computation.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// simPackages are the import-path elements of packages whose behaviour
// must be a pure function of their inputs. httpplay is deliberately
// absent (it is the wall-clock twin of internal/player), as are cmd/
// and examples/.
var simPackages = map[string]bool{
	"simnet":      true,
	"netem":       true,
	"player":      true,
	"adaptation":  true,
	"experiments": true,
	"qoe":         true,
	"media":       true,
	"services":    true,
	"traffic":     true,
	"energy":      true,
	"replacement": true,
	"live":        true,
	"modify":      true,
	"origin":      true,
	"manifest":    true,
	"core":        true,
	"probe":       true,
	"uimon":       true,
	"textplot":    true,
	"proxy":       true,
}

// InScope reports whether a package path belongs to the simulation set:
// any path element matching simPackages puts it in scope (so
// repro/internal/manifest/hls is covered by "manifest").
func InScope(pkgPath string) bool {
	// go vet names test variants "pkg [pkg.test]"; scope by the real path.
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, elem := range strings.Split(pkgPath, "/") {
		if simPackages[strings.TrimSuffix(elem, "_test")] {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				// Tests may time themselves; determinism of the tested
				// code is enforced through its non-test files.
				return true
			}
			pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call)
			if pkg == "time" && banned[name] {
				pass.Reportf(call.Pos(),
					"call to time.%s in simulation package %s breaks determinism; inject a clock (cfg.Now/cfg.Sleep) or annotate //vodlint:allow simclock",
					name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

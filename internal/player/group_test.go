package player

import (
	"math"
	"testing"

	"repro/internal/adaptation"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/simnet"
)

// TestGroupSharesBandwidthFairly runs two identical players over one
// link: each should see roughly half the throughput a solo player gets,
// and their QoE should be near-identical to each other.
func TestGroupSharesBandwidthFairly(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	// An aggressive, actual-bitrate-aware player whose solo demand
	// exceeds half the link, so two peers genuinely contend (the
	// conservative declared-bitrate players leave so much headroom that
	// two of them coexist without interacting).
	aggressive := func() Config {
		cfg := baseConfig()
		cfg.Algorithm = adaptation.Throughput{Factor: 0.9, UseActual: true}
		cfg.ExposeSegmentSizes = true
		return cfg
	}
	p := netem.Constant("c", 1.6e6, 600)

	solo := runSession(t, aggressive(), org, p)
	soloBytes := solo.TotalBytes

	net := simnet.New(simnet.DefaultConfig(), p)
	g := NewGroup()
	var pair []*Session
	for i := 0; i < 2; i++ {
		cfg := aggressive()
		s, err := NewSession(cfg, org, net)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(s); err != nil {
			t.Fatal(err)
		}
		pair = append(pair, s)
	}
	results := g.Run()
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	a, b := results[0], results[1]
	for i, r := range results {
		checkInvariants(t, r)
		if r.StartupDelay < 0 {
			t.Fatalf("session %d never started", i)
		}
	}
	// Identical configs over a fair link: near-identical outcomes.
	if rel := math.Abs(a.TotalBytes-b.TotalBytes) / a.TotalBytes; rel > 0.1 {
		t.Errorf("peers diverged: %.1f vs %.1f MB", a.TotalBytes/1e6, b.TotalBytes/1e6)
	}
	// Each peer gets roughly half the solo session's bytes (both are
	// quality-capped, so allow a broad band).
	if a.TotalBytes > 0.85*soloBytes {
		t.Errorf("peer used %.1f MB, solo used %.1f MB — no contention visible", a.TotalBytes/1e6, soloBytes/1e6)
	}
}

// TestGroupMixedDurations: a short session leaves the link early and the
// survivor speeds up.
func TestGroupMixedDurations(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	net := simnet.New(simnet.DefaultConfig(), netem.Constant("c", 4e6, 900))
	g := NewGroup()
	long := baseConfig()
	long.SessionDuration = 600
	short := baseConfig()
	short.SessionDuration = 120
	ls, err := NewSession(long, org, net)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSession(short, org, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(ls); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(ss); err != nil {
		t.Fatal(err)
	}
	res := g.Run()
	if res[1].EndTime > 120+1e-6 {
		t.Fatalf("short session ended at %.1f", res[1].EndTime)
	}
	if res[0].EndTime < 600-1e-6 {
		t.Fatalf("long session ended at %.1f", res[0].EndTime)
	}
	// The survivor's second-half downloads are faster than its first-half
	// ones (contention gone). Compare mean segment fetch times.
	var early, late []float64
	for _, d := range res[0].Downloads {
		if d.End == 0 {
			continue
		}
		if d.End < 120 {
			early = append(early, d.End-d.Start)
		} else if d.End > 200 {
			late = append(late, d.End-d.Start)
		}
	}
	if len(early) == 0 || len(late) == 0 {
		t.Fatal("not enough downloads to compare")
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	// Per-byte fetch pace must improve; compare normalised by bytes.
	var earlyPace, latePace float64
	var eb, lb float64
	for _, d := range res[0].Downloads {
		if d.End == 0 {
			continue
		}
		if d.End < 120 {
			earlyPace += d.End - d.Start
			eb += d.Bytes
		} else if d.End > 200 {
			latePace += d.End - d.Start
			lb += d.Bytes
		}
	}
	if latePace/lb >= earlyPace/eb {
		t.Errorf("no speedup after peer left: %.3g vs %.3g s/byte (means %.2f/%.2f s)",
			latePace/lb, earlyPace/eb, mean(early), mean(late))
	}
}

// TestGroupRejectsForeignNetwork: sessions on different networks cannot
// share a group.
func TestGroupRejectsForeignNetwork(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	n1 := simnet.New(simnet.DefaultConfig(), netem.Constant("a", 1e6, 10))
	n2 := simnet.New(simnet.DefaultConfig(), netem.Constant("b", 1e6, 10))
	s1, err := NewSession(baseConfig(), org, n1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(baseConfig(), org, n2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroup()
	if err := g.Add(s1); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(s2); err == nil {
		t.Fatal("group accepted a session on a different network")
	}
}

// TestSoloEqualsGroupOfOne: Session.Run (which wraps a Group) must be
// identical to the pre-refactor single loop semantics — pin a few
// sensitive outputs.
func TestSoloEqualsGroupOfOne(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	p := netem.Cellular(3)
	a := runSession(t, baseConfig(), org, p)

	net := simnet.New(simnet.DefaultConfig(), p)
	s, err := NewSession(baseConfig(), org, net)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroup()
	if err := g.Add(s); err != nil {
		t.Fatal(err)
	}
	b := g.Run()[0]
	if a.TotalBytes != b.TotalBytes || a.StartupDelay != b.StartupDelay ||
		a.TotalStall() != b.TotalStall() || len(a.Downloads) != len(b.Downloads) {
		t.Fatalf("solo Run diverges from explicit group: %+v vs %+v", a, b)
	}
}

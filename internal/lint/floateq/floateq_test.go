package floateq

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestFloateq(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}

package player

import (
	"repro/internal/media"
	"repro/internal/traffic"
)

// Download is the ground-truth record of one media segment download.
type Download struct {
	// Type is video or audio.
	Type media.MediaType
	// Track and Index identify the segment.
	Track, Index int
	// Declared is the track's declared bitrate in bits/s.
	Declared float64
	// Duration is the segment's media duration.
	Duration float64
	// Bytes is the transferred size.
	Bytes float64
	// Start and End are the request/completion wall times.
	Start, End float64
	// Replacement marks a re-download of an already-buffered index.
	Replacement bool
	// Discarded is set when the segment was later dropped from the
	// buffer without being played (wasted data).
	Discarded bool
}

// Stall is one rebuffering interruption after playback started.
type Stall struct {
	// Start and End are wall times; an unresolved stall ends at the
	// session end.
	Start, End float64
}

// Duration returns the stall length in seconds.
func (s Stall) Duration() float64 { return s.End - s.Start }

// PlayInterval is one continuous stretch of playback.
type PlayInterval struct {
	// WallStart/WallEnd bound the interval in wall time.
	WallStart, WallEnd float64
	// MediaStart is the playhead position at WallStart (the playhead
	// advances at rate 1 within the interval).
	MediaStart float64
}

// BufferSample is a once-per-second snapshot of playback state, the
// simulator-side equivalent of combining the paper's UI monitor (playback
// progress at 1 s granularity) with its buffer inference.
type BufferSample struct {
	// T is the wall time.
	T float64
	// Playhead is the media position.
	Playhead float64
	// VideoSec and AudioSec are the playable buffered durations;
	// AudioSec is 0 for multiplexed services.
	VideoSec, AudioSec float64
	// Playing reports whether playback was advancing.
	Playing bool
}

// SeekRecord is one executed seek and its user-visible latency.
type SeekRecord struct {
	// At is the wall time of the seek; To the target media position.
	At, To float64
	// Latency is the wall time until playback resumed at the target
	// (-1 when the session ended first).
	Latency float64
}

// Event is one annotated moment in the session timeline.
type Event struct {
	// T is the wall time.
	T float64
	// Kind is a short tag ("startup", "stall", "resume", "pause-dl",
	// "resume-dl", "switch", "sr-drop", "sr-replace", "reject").
	Kind string
	// Detail is a human-readable description.
	Detail string
}

// Result is everything a session produces.
type Result struct {
	// Name echoes the player configuration name.
	Name string
	// MediaDuration is the presentation length in seconds.
	MediaDuration float64
	// SegmentCount is the number of video segments.
	SegmentCount int
	// SegmentDuration is the nominal video segment duration.
	SegmentDuration float64
	// Declared lists the ladder's declared bitrates ascending.
	Declared []float64
	// EndTime is the wall time the session finished or was cut off.
	EndTime float64

	// StartupDelay is the seconds from session start to first frame;
	// -1 when playback never started.
	StartupDelay float64
	// Stalls lists rebuffering events (startup excluded).
	Stalls []Stall
	// PlayIntervals lists continuous playback stretches.
	PlayIntervals []PlayInterval
	// Displayed maps each video segment index to the track that was on
	// screen when it played (-1 = never played).
	Displayed []int
	// DisplayedWallStart maps each played segment to the wall time its
	// playback began (-1 = never played).
	DisplayedWallStart []float64

	// Downloads is the ground-truth download log.
	Downloads []Download
	// Transactions is the HTTP log the traffic analyzer consumes.
	Transactions []traffic.Transaction
	// Samples holds 1 Hz buffer/playhead snapshots.
	Samples []BufferSample
	// Events is the annotated timeline.
	Events []Event
	// Seeks lists executed seeks with their latencies.
	Seeks []SeekRecord

	// TotalBytes is all media+document bytes downloaded.
	TotalBytes float64
	// WastedBytes is the bytes of downloads that never displayed
	// (discarded by replacement or unplayed replacements).
	WastedBytes float64
}

// TotalStall returns the summed stall duration in seconds.
func (r *Result) TotalStall() float64 {
	t := 0.0
	for _, s := range r.Stalls {
		t += s.Duration()
	}
	return t
}

// PlayedSeconds returns the total playback time.
func (r *Result) PlayedSeconds() float64 {
	t := 0.0
	for _, p := range r.PlayIntervals {
		t += p.WallEnd - p.WallStart
	}
	return t
}

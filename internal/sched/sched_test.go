package sched

import (
	"context"
	"testing"
	"time"
)

func TestCapacityFloor(t *testing.T) {
	if got := New(0).Capacity(); got != 1 {
		t.Fatalf("New(0) capacity = %d, want 1", got)
	}
	if got := New(-3).Capacity(); got != 1 {
		t.Fatalf("New(-3) capacity = %d, want 1", got)
	}
	if got := New(4).Capacity(); got != 4 {
		t.Fatalf("New(4) capacity = %d, want 4", got)
	}
}

func TestTryAcquireExhausts(t *testing.T) {
	s := New(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	s.Release()
	s.Release()
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	s := New(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- s.Acquire(context.Background()) }()
	select {
	case <-got:
		t.Fatal("Acquire succeeded while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
	s.Release()
}

func TestAcquireHonorsContext(t *testing.T) {
	s := New(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Acquire(ctx); err == nil {
		t.Fatal("Acquire ignored a cancelled context")
	}
}

package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/traffic"
)

func tx(s, e float64) traffic.Transaction {
	return traffic.Transaction{Start: s, End: e, Bytes: 1}
}

func TestAnalyzeBasic(t *testing.T) {
	m := Model{DemotionTimer: 10, ActivePower: 1, TailPower: 0.5, IdlePower: 0}
	// Activity 0–10, gap 10–40 (10 s tail + 20 s idle), activity 40–50,
	// then 50–60 tail.
	u := m.Analyze([]traffic.Transaction{tx(0, 10), tx(40, 50)}, 60)
	if math.Abs(u.ActiveSec-20) > 1e-9 {
		t.Fatalf("active %v", u.ActiveSec)
	}
	if math.Abs(u.TailSec-20) > 1e-9 {
		t.Fatalf("tail %v", u.TailSec)
	}
	if math.Abs(u.IdleSec-20) > 1e-9 {
		t.Fatalf("idle %v", u.IdleSec)
	}
	// Only the 30 s gap demotes; the trailing gap equals the timer
	// exactly, so the radio is still in the tail at session end.
	if u.Demotions != 1 {
		t.Fatalf("demotions %d", u.Demotions)
	}
	if math.Abs(u.Joules-(20*1+20*0.5)) > 1e-9 {
		t.Fatalf("joules %v", u.Joules)
	}
}

func TestShortGapNeverDemotes(t *testing.T) {
	m := DefaultLTE()
	// Bursts every 8 s with 5 s gaps — below the 11 s demotion timer:
	// the radio must stay high-power the whole session (the §3.3.2
	// issue with thresholds less than 10 s apart).
	var txs []traffic.Transaction
	for s := 0.0; s < 100; s += 8 {
		txs = append(txs, tx(s, s+3))
	}
	u := m.Analyze(txs, 100)
	if u.Demotions != 0 {
		t.Fatalf("radio demoted %d times with 5 s gaps", u.Demotions)
	}
	if u.HighPowerShare() < 0.999 {
		t.Fatalf("high-power share %v, want 1", u.HighPowerShare())
	}
}

func TestWideGapSavesEnergy(t *testing.T) {
	m := DefaultLTE()
	short := m.Analyze([]traffic.Transaction{tx(0, 10), tx(18, 28), tx(36, 46)}, 60)
	wide := m.Analyze([]traffic.Transaction{tx(0, 10), tx(40, 50)}, 60)
	if wide.Joules >= short.Joules {
		t.Fatalf("wide gaps (%.1f J) should save energy vs short gaps (%.1f J)", wide.Joules, short.Joules)
	}
}

func TestOverlappingActivityMerges(t *testing.T) {
	m := Model{DemotionTimer: 5, ActivePower: 1, TailPower: 1, IdlePower: 0}
	u := m.Analyze([]traffic.Transaction{tx(0, 10), tx(5, 12), tx(11, 15)}, 20)
	if math.Abs(u.ActiveSec-15) > 1e-9 {
		t.Fatalf("merged active %v, want 15", u.ActiveSec)
	}
}

func TestEmptySession(t *testing.T) {
	u := DefaultLTE().Analyze(nil, 100)
	if u.ActiveSec != 0 || u.TailSec != 0 || math.Abs(u.IdleSec-100) > 1e-9 {
		t.Fatalf("empty session: %+v", u)
	}
}

func TestRejectedIgnored(t *testing.T) {
	u := DefaultLTE().Analyze([]traffic.Transaction{{Start: 0, End: 5, Rejected: true}}, 10)
	if u.ActiveSec != 0 {
		t.Fatalf("rejected tx counted as activity: %+v", u)
	}
}

// TestQuickPartition: the three states always partition the session.
func TestQuickPartition(t *testing.T) {
	m := DefaultLTE()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var txs []traffic.Transaction
		for i := 0; i < int(n%20); i++ {
			s := rng.Float64() * 100
			txs = append(txs, tx(s, s+rng.Float64()*10))
		}
		u := m.Analyze(txs, 120)
		total := u.ActiveSec + u.TailSec + u.IdleSec
		return math.Abs(total-120) < 1e-6 &&
			u.ActiveSec >= 0 && u.TailSec >= 0 && u.IdleSec >= 0 &&
			u.Joules >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package dash encodes and parses a practical subset of the MPEG-DASH
// Media Presentation Description (ISO/IEC 23009-1), the wire format of
// services D1–D4. Two addressing styles are supported, matching the
// paper's observations (§2.3): byte ranges listed directly in the MPD
// (D1) and SegmentBase+sidx, where the MPD points at each track's Segment
// Index box (D2–D4).
package dash

import (
	"encoding/xml"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/manifest"
	"repro/internal/manifest/sidx"
	"repro/internal/media"
)

// xml document model

type xmlMPD struct {
	XMLName                   xml.Name    `xml:"MPD"`
	Xmlns                     string      `xml:"xmlns,attr"`
	Type                      string      `xml:"type,attr"`
	Profiles                  string      `xml:"profiles,attr"`
	MediaPresentationDuration string      `xml:"mediaPresentationDuration,attr"`
	MinBufferTime             string      `xml:"minBufferTime,attr"`
	Periods                   []xmlPeriod `xml:"Period"`
}

type xmlPeriod struct {
	AdaptationSets []xmlAdaptationSet `xml:"AdaptationSet"`
}

type xmlAdaptationSet struct {
	ContentType     string              `xml:"contentType,attr"`
	MimeType        string              `xml:"mimeType,attr,omitempty"`
	Representations []xmlRepresentation `xml:"Representation"`
}

type xmlRepresentation struct {
	ID              string              `xml:"id,attr"`
	Bandwidth       int64               `xml:"bandwidth,attr"`
	Width           int                 `xml:"width,attr,omitempty"`
	Height          int                 `xml:"height,attr,omitempty"`
	BaseURL         string              `xml:"BaseURL,omitempty"`
	SegmentBase     *xmlSegmentBase     `xml:"SegmentBase"`
	SegmentList     *xmlSegmentList     `xml:"SegmentList"`
	SegmentTemplate *xmlSegmentTemplate `xml:"SegmentTemplate"`
}

type xmlSegmentTemplate struct {
	Media       string `xml:"media,attr"`
	Timescale   uint32 `xml:"timescale,attr"`
	Duration    uint64 `xml:"duration,attr"`
	StartNumber int    `xml:"startNumber,attr"`
}

type xmlSegmentBase struct {
	IndexRange string `xml:"indexRange,attr"`
}

type xmlSegmentList struct {
	Timescale   uint32          `xml:"timescale,attr"`
	Duration    uint64          `xml:"duration,attr"`
	SegmentURLs []xmlSegmentURL `xml:"SegmentURL"`
}

type xmlSegmentURL struct {
	Media      string `xml:"media,attr"`
	MediaRange string `xml:"mediaRange,attr"`
}

// Encode renders the MPD document for a presentation whose addressing is
// RangesInManifest or SidxRanges.
func Encode(p *manifest.Presentation) ([]byte, error) {
	doc := xmlMPD{
		Xmlns:                     "urn:mpeg:dash:schema:mpd:2011",
		Type:                      "static",
		Profiles:                  "urn:mpeg:dash:profile:isoff-on-demand:2011",
		MediaPresentationDuration: formatDuration(p.Duration),
		MinBufferTime:             "PT2S",
	}
	var period xmlPeriod
	addSet := func(kind string, rs []*manifest.Rendition) error {
		if len(rs) == 0 {
			return nil
		}
		set := xmlAdaptationSet{ContentType: kind, MimeType: kind + "/mp4"}
		for _, r := range rs {
			rep := xmlRepresentation{
				ID:        fmt.Sprintf("%s%d", kind[:1], r.ID),
				Bandwidth: int64(r.DeclaredBitrate),
				Width:     r.Width,
				Height:    r.Height,
			}
			switch p.Addressing {
			case manifest.SidxRanges:
				rep.BaseURL = r.MediaURL
				rep.SegmentBase = &xmlSegmentBase{
					IndexRange: fmt.Sprintf("%d-%d", r.IndexOffset, r.IndexOffset+r.IndexLength-1),
				}
			case manifest.RangesInManifest:
				const ts = 1000
				sl := &xmlSegmentList{Timescale: ts, Duration: uint64(r.SegmentDuration*ts + 0.5)}
				for _, s := range r.Segments {
					sl.SegmentURLs = append(sl.SegmentURLs, xmlSegmentURL{
						Media:      r.MediaURL,
						MediaRange: fmt.Sprintf("%d-%d", s.Offset, s.Offset+s.Length-1),
					})
				}
				rep.SegmentList = sl
			case manifest.TemplateNumber:
				const ts = 1000
				rep.SegmentTemplate = &xmlSegmentTemplate{
					Media:       manifest.NumberTemplateURL(p.Name, kind, r.ID, 0),
					Timescale:   ts,
					Duration:    uint64(r.SegmentDuration*ts + 0.5),
					StartNumber: 1,
				}
				// Encode the template with the $Number$ placeholder.
				rep.SegmentTemplate.Media = strings.Replace(rep.SegmentTemplate.Media, "seg-0.m4s", "seg-$Number$.m4s", 1)
			default:
				return fmt.Errorf("dash: unsupported addressing %v", p.Addressing)
			}
			set.Representations = append(set.Representations, rep)
		}
		period.AdaptationSets = append(period.AdaptationSets, set)
		return nil
	}
	if err := addSet("video", p.Video); err != nil {
		return nil, err
	}
	if err := addSet("audio", p.Audio); err != nil {
		return nil, err
	}
	doc.Periods = []xmlPeriod{period}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// Decode reconstructs a Presentation from an MPD document. For
// SegmentBase addressing the caller supplies the sidx box bytes of each
// representation keyed by its BaseURL (the traffic analyzer collects them
// from the ranged requests it observes).
func Decode(name string, mpd []byte, sidxBodies map[string][]byte) (*manifest.Presentation, error) {
	var doc xmlMPD
	if err := xml.Unmarshal(mpd, &doc); err != nil {
		return nil, fmt.Errorf("dash: %w", err)
	}
	if len(doc.Periods) == 0 {
		return nil, fmt.Errorf("dash: no Period")
	}
	dur, err := parseDuration(doc.MediaPresentationDuration)
	if err != nil {
		return nil, err
	}
	p := &manifest.Presentation{Name: name, Protocol: manifest.DASH, Duration: dur}
	for _, set := range doc.Periods[0].AdaptationSets {
		kind := media.TypeVideo
		if strings.Contains(set.ContentType, "audio") || strings.Contains(set.MimeType, "audio") {
			kind = media.TypeAudio
		}
		for i, rep := range set.Representations {
			r := &manifest.Rendition{
				ID:              i,
				Type:            kind,
				DeclaredBitrate: float64(rep.Bandwidth),
				Width:           rep.Width,
				Height:          rep.Height,
				MediaURL:        strings.TrimSpace(rep.BaseURL),
			}
			switch {
			case rep.SegmentList != nil:
				p.Addressing = manifest.RangesInManifest
				ts := rep.SegmentList.Timescale
				if ts == 0 {
					ts = 1
				}
				nominal := float64(rep.SegmentList.Duration) / float64(ts)
				r.SegmentDuration = nominal
				start := 0.0
				for _, su := range rep.SegmentList.SegmentURLs {
					off, end, err := parseRange(su.MediaRange)
					if err != nil {
						return nil, err
					}
					if r.MediaURL == "" {
						r.MediaURL = su.Media
					}
					d := math.Min(nominal, dur-start)
					r.Segments = append(r.Segments, manifest.Segment{
						Offset: off, Length: end - off + 1,
						Size: end - off + 1, Duration: d, Start: start,
					})
					start += nominal
				}
			case rep.SegmentTemplate != nil:
				p.Addressing = manifest.TemplateNumber
				st := rep.SegmentTemplate
				ts := st.Timescale
				if ts == 0 {
					ts = 1
				}
				nominal := float64(st.Duration) / float64(ts)
				r.SegmentDuration = nominal
				startNum := st.StartNumber
				if startNum == 0 {
					startNum = 1
				}
				count := int(math.Ceil(dur/nominal - 1e-9))
				start := 0.0
				for n := 0; n < count; n++ {
					d := math.Min(nominal, dur-start)
					r.Segments = append(r.Segments, manifest.Segment{
						URL:      strings.Replace(st.Media, "$Number$", strconv.Itoa(startNum+n), 1),
						Duration: d,
						Start:    start,
					})
					start += nominal
				}
			case rep.SegmentBase != nil:
				p.Addressing = manifest.SidxRanges
				io, ie, err := parseRange(rep.SegmentBase.IndexRange)
				if err != nil {
					return nil, err
				}
				r.IndexOffset, r.IndexLength = io, ie-io+1
				body, ok := sidxBodies[r.MediaURL]
				if !ok {
					return nil, fmt.Errorf("dash: missing sidx body for %q", r.MediaURL)
				}
				box, err := sidx.Decode(body)
				if err != nil {
					return nil, fmt.Errorf("dash: %s: %w", r.MediaURL, err)
				}
				off := ie + 1 + int64(box.FirstOffset)
				start := 0.0
				for _, ref := range box.References {
					d := float64(ref.SubsegmentDuration) / float64(box.Timescale)
					r.Segments = append(r.Segments, manifest.Segment{
						Offset: off, Length: int64(ref.ReferencedSize),
						Size: int64(ref.ReferencedSize), Duration: d, Start: start,
					})
					if d > r.SegmentDuration {
						r.SegmentDuration = d
					}
					off += int64(ref.ReferencedSize)
					start += d
				}
			default:
				return nil, fmt.Errorf("dash: representation %q has no addressing", rep.ID)
			}
			if kind == media.TypeAudio {
				p.Audio = append(p.Audio, r)
			} else {
				p.Video = append(p.Video, r)
			}
		}
	}
	renumber(p.Video)
	renumber(p.Audio)
	return p, nil
}

// IndexRanges extracts the media-URL → sidx byte range mapping from an
// MPD with SegmentBase addressing, so a client can fetch the Segment
// Index boxes before fully decoding the presentation. The result is
// empty (not an error) for SegmentList addressing.
func IndexRanges(mpd []byte) (map[string][2]int64, error) {
	var doc xmlMPD
	if err := xml.Unmarshal(mpd, &doc); err != nil {
		return nil, fmt.Errorf("dash: %w", err)
	}
	out := map[string][2]int64{}
	for _, period := range doc.Periods {
		for _, set := range period.AdaptationSets {
			for _, rep := range set.Representations {
				if rep.SegmentBase == nil {
					continue
				}
				first, last, err := parseRange(rep.SegmentBase.IndexRange)
				if err != nil {
					return nil, err
				}
				out[strings.TrimSpace(rep.BaseURL)] = [2]int64{first, last}
			}
		}
	}
	return out, nil
}

func renumber(rs []*manifest.Rendition) {
	for i, r := range rs {
		r.ID = i
	}
}

func parseRange(s string) (first, last int64, err error) {
	i := strings.IndexByte(s, '-')
	if i < 0 {
		return 0, 0, fmt.Errorf("dash: bad byte range %q", s)
	}
	first, err = strconv.ParseInt(s[:i], 10, 64)
	if err == nil {
		last, err = strconv.ParseInt(s[i+1:], 10, 64)
	}
	if err != nil || last < first {
		return 0, 0, fmt.Errorf("dash: bad byte range %q", s)
	}
	return first, last, nil
}

func formatDuration(sec float64) string {
	return fmt.Sprintf("PT%gS", sec)
}

var durRe = regexp.MustCompile(`^PT(?:(\d+(?:\.\d+)?)H)?(?:(\d+(?:\.\d+)?)M)?(?:(\d+(?:\.\d+)?)S)?$`)

func parseDuration(s string) (float64, error) {
	m := durRe.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return 0, fmt.Errorf("dash: bad duration %q", s)
	}
	total := 0.0
	for i, mult := range []float64{3600, 60, 1} {
		if m[i+1] != "" {
			f, err := strconv.ParseFloat(m[i+1], 64)
			if err != nil {
				return 0, fmt.Errorf("dash: bad duration %q", s)
			}
			total += f * mult
		}
	}
	return total, nil
}

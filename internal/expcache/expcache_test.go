package expcache

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/modify"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/services"
	"repro/internal/simnet"
)

// ---- fingerprint ----

func mustKey(t *testing.T, vs ...any) Key {
	t.Helper()
	k, err := Fingerprint(vs...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFingerprintDeterministic(t *testing.T) {
	type inner struct{ A, B float64 }
	type outer struct {
		Name string
		N    int
		In   inner
		List []string
		Ptr  *inner
	}
	v := outer{"x", 3, inner{1.5, -0.25}, []string{"a", "b"}, &inner{2, 4}}
	k1 := mustKey(t, v)
	// A structurally equal but separately constructed value must hash
	// identically: keys are content, not addresses.
	w := outer{"x", 3, inner{1.5, -0.25}, []string{"a", "b"}, &inner{2, 4}}
	if k2 := mustKey(t, w); k2 != k1 {
		t.Error("equal values produced different fingerprints")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	type cfg struct {
		Rate float64
		Name string
		Tags []int
	}
	base := cfg{1.0, "a", []int{1, 2}}
	k := mustKey(t, base)
	for name, v := range map[string]cfg{
		"float":    {1.0000001, "a", []int{1, 2}},
		"string":   {1.0, "b", []int{1, 2}},
		"elem":     {1.0, "a", []int{1, 3}},
		"len":      {1.0, "a", []int{1, 2, 2}},
		"nilslice": {1.0, "a", nil},
	} {
		if mustKey(t, v) == k {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
	// Nil and empty slices are distinct contents.
	if mustKey(t, []int(nil)) == mustKey(t, []int{}) {
		t.Error("nil and empty slice fingerprint identically")
	}
	// Same field values under a different named type must not collide:
	// the type identity is part of the content.
	type cfg2 struct {
		Rate float64
		Name string
		Tags []int
	}
	if mustKey(t, cfg2{1.0, "a", []int{1, 2}}) == k {
		t.Error("distinct struct types with equal fields collide")
	}
}

func TestFingerprintMapOrderIndependent(t *testing.T) {
	// Build the same map contents twice by different insertion orders and
	// hash each several times: Go randomizes iteration, so any order
	// dependence would show up as unequal keys.
	m1 := map[string]int{}
	m2 := map[string]int{}
	for i := 0; i < 64; i++ {
		m1[fmt.Sprint(i)] = i
	}
	for i := 63; i >= 0; i-- {
		m2[fmt.Sprint(i)] = i
	}
	k := mustKey(t, m1)
	for i := 0; i < 8; i++ {
		if mustKey(t, m1) != k || mustKey(t, m2) != k {
			t.Fatal("map fingerprint depends on iteration or insertion order")
		}
	}
}

func TestFingerprintCycles(t *testing.T) {
	type node struct {
		V    int
		Next *node
	}
	mk := func(vs ...int) *node {
		head := &node{V: vs[0]}
		cur := head
		for _, v := range vs[1:] {
			cur.Next = &node{V: v}
			cur = cur.Next
		}
		cur.Next = head // close the cycle
		return head
	}
	k1 := mustKey(t, mk(1, 2))
	if k1 != mustKey(t, mk(1, 2)) {
		t.Error("identical cycles fingerprint differently")
	}
	if k1 == mustKey(t, mk(1, 2, 2)) {
		t.Error("different cycles collide")
	}
}

func TestFingerprintUncacheable(t *testing.T) {
	type withGate struct {
		N    int
		Gate func() bool
	}
	if _, err := Fingerprint(withGate{1, func() bool { return true }}); !errors.Is(err, ErrUncacheable) {
		t.Errorf("non-nil func: got %v, want ErrUncacheable", err)
	}
	// A nil func is plain absent content, not an error.
	if _, err := Fingerprint(withGate{1, nil}); err != nil {
		t.Errorf("nil func: %v", err)
	}
}

// ---- memo ----

// TestMemoErrorCachedForever pins the deliberate contract: a failed
// build is cached like a value and never retried (every build in this
// repository is deterministic, so the failure is permanent).
func TestMemoErrorCachedForever(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int32
	boom := errors.New("boom")
	build := func() (int, error) {
		calls.Add(1)
		return 0, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Get("k", build); err != boom {
			t.Fatalf("call %d: got %v, want the original build error", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("failed build ran %d times, want exactly 1 (errors are cached)", n)
	}
	if b, _, _ := m.Stats(); b != 1 {
		t.Errorf("builds counter = %d, want 1", b)
	}
}

// TestMemoConcurrent hammers the memo from many goroutines: every key's
// builder must run exactly once, unrelated keys must not serialise each
// other, and all callers must observe the same value. Run under -race
// this is the cache-safety proof (migrated from the old keyedOnce test).
func TestMemoConcurrent(t *testing.T) {
	const keys = 12
	const callers = 16
	var m Memo[int, int]
	var builds [keys]atomic.Int32
	var wg sync.WaitGroup
	errc := make(chan error, keys*callers)
	for k := 0; k < keys; k++ {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, err := m.Get(k, func() (int, error) {
					builds[k].Add(1)
					return k * k, nil
				})
				if err != nil {
					errc <- err
					return
				}
				if v != k*k {
					errc <- fmt.Errorf("key %d: got %d", k, v)
				}
			}(k)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for k := 0; k < keys; k++ {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times", k, n)
		}
	}
	b, h, w := m.Stats()
	if b != keys {
		t.Errorf("builds = %d, want %d", b, keys)
	}
	if b+h+w != keys*callers {
		t.Errorf("builds+hits+waits = %d, want %d calls accounted for", b+h+w, keys*callers)
	}
}

// ---- session cache ----

func testProfile() *netem.Profile { return netem.Constant("cachetest", 6e6, 120) }

// TestRunNetCounters: the same session requested twice computes once;
// counters record one miss then one memory hit, and both callers get the
// same shared result pointer.
func TestRunNetCounters(t *testing.T) {
	c := New()
	svc := services.ByName("H1")
	org, err := c.Origin(svc)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Run(svc.Player, org, testProfile(), 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(svc.Player, org, testProfile(), 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second identical run did not return the shared cached result")
	}
	s := c.Snapshot()
	if s.Misses != 1 || s.MemHits != 1 || s.Bypass != 0 {
		t.Errorf("counters = %+v, want 1 miss, 1 memory hit", s)
	}
	// A different duration is different content: a new miss.
	if _, err := c.Run(svc.Player, org, testProfile(), 30, nil); err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s.Misses != 2 {
		t.Errorf("distinct session did not miss: %+v", s)
	}
}

// TestRunNetConcurrentSingleflight: many concurrent requests for one
// session produce exactly one computation; the rest are hits or dedups.
func TestRunNetConcurrentSingleflight(t *testing.T) {
	c := New()
	svc := services.ByName("H1")
	org, err := c.Origin(svc)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]*player.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Run(svc.Player, org, testProfile(), 60, nil)
			if err == nil {
				results[i] = r
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result instance", i)
		}
	}
	s := c.Snapshot()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 computation", s.Misses)
	}
	if s.MemHits+s.Dedup != callers-1 {
		t.Errorf("hits+dedup = %d, want %d", s.MemHits+s.Dedup, callers-1)
	}
}

// TestRunNetBypass: a RequestGate func has no content identity, so the
// session must bypass the cache and recompute every time; disabling the
// cache bypasses everything.
func TestRunNetBypass(t *testing.T) {
	c := New()
	svc := services.ByName("H1")
	org, err := c.Origin(svc)
	if err != nil {
		t.Fatal(err)
	}
	gate := modify.RejectAfter(4)
	for i := 0; i < 2; i++ {
		if _, err := c.Run(svc.Player, org, testProfile(), 60, func(p *player.Config) {
			p.RequestGate = gate
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Snapshot(); s.Bypass != 2 || s.Misses != 0 {
		t.Errorf("gated sessions: %+v, want 2 bypasses and no cache traffic", s)
	}

	c.SetDisabled(true)
	if _, err := c.Run(svc.Player, org, testProfile(), 60, nil); err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s.Bypass != 3 {
		t.Errorf("disabled cache did not bypass: %+v", s)
	}
}

// ---- disk tier ----

// TestDiskRoundTrip: a session stored by one cache is served from disk
// by a fresh cache sharing the directory, bit-identical to recomputation.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	svc := services.ByName("H1")

	warm := New()
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	r1, err := warm.RunService(svc, testProfile(), 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Snapshot(); s.Misses != 1 || s.BytesWritten == 0 {
		t.Fatalf("store pass: %+v, want 1 miss with bytes written", s)
	}

	cold := New()
	if err := cold.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	r2, err := cold.RunService(svc, testProfile(), 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := cold.Snapshot()
	if s.DiskHits != 1 || s.Misses != 0 || s.BytesRead == 0 {
		t.Fatalf("load pass: %+v, want 1 disk hit and no computation", s)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("disk round-trip altered the session result")
	}

	// Recompute directly and compare: the persisted result must equal a
	// fresh computation, not merely itself.
	direct := New()
	direct.SetDisabled(true)
	r3, err := direct.RunService(svc, testProfile(), 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2, r3) {
		t.Error("disk-served result differs from a fresh computation")
	}
}

// sessionDiskPath resolves the on-disk path for svc's 60 s test session.
func sessionDiskPath(t *testing.T, dir string, svc *services.Service) string {
	t.Helper()
	org, err := svc.Origin()
	if err != nil {
		t.Fatal(err)
	}
	key, err := sessionKey(services.Resolve(svc.Player, 60, nil), org, testProfile(), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return (&diskTier{dir: dir}).path(key)
}

// TestDiskCorruptEntry: an undecodable file is counted as a disk error
// and the session is recomputed — corruption can cost time, never
// correctness.
func TestDiskCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	svc := services.ByName("H1")
	p := sessionDiskPath(t, dir, svc)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunService(svc, testProfile(), 60, nil); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.DiskErrors == 0 || s.Misses != 1 || s.DiskHits != 0 {
		t.Errorf("corrupt entry: %+v, want a disk error and a recomputation", s)
	}
}

// TestDiskEngineMismatch: a well-formed entry written by a different
// engine version is a clean miss (no error) — the self-invalidation that
// makes EngineVersion bumps safe.
func TestDiskEngineMismatch(t *testing.T) {
	dir := t.TempDir()
	svc := services.ByName("H1")
	p := sessionDiskPath(t, dir, svc)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	err = gob.NewEncoder(f).Encode(diskFile{
		Magic:     diskMagic,
		Format:    diskFormat,
		Engine:    EngineVersion + "-stale",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Result:    &player.Result{},
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}

	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunService(svc, testProfile(), 60, nil); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.DiskErrors != 0 || s.DiskHits != 0 || s.Misses != 1 {
		t.Errorf("stale-engine entry: %+v, want a clean miss", s)
	}
}

// TestOriginSharedByContent: two services serving identical content
// share one origin build.
func TestOriginSharedByContent(t *testing.T) {
	c := New()
	svc := services.ByName("H1")
	o1, err := c.Origin(svc)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c.Origin(svc)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Error("same service built two origins")
	}
	s := c.Snapshot()
	if s.OriginBuilds != 1 || s.OriginHits != 1 {
		t.Errorf("origin counters: %+v", s)
	}
}

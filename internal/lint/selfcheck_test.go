package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// TestRepoLintClean runs the full analyzer suite plus the stale-
// suppression audit over this module and asserts zero unsuppressed
// findings and zero dead //vodlint:allow directives — the same
// invariant `make lint` and `make lint-audit` gate in CI, enforced
// here so plain `go test ./...` (and the nightly -race run) catches a
// contract violation even when the make targets are skipped.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-module lint load in -short mode")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	suite := analyzers.All()
	audit := lint.NewAudit(suite)
	for _, pkg := range pkgs {
		diags, err := lint.RunWithAudit(pkg, suite, audit)
		if err != nil {
			t.Fatalf("run %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("unsuppressed finding: %s", d)
		}
	}
	for _, d := range audit.Stale() {
		t.Errorf("suppression audit: %s", d)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

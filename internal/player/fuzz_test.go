package player

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/replacement"
	"repro/internal/simnet"
)

// TestQuickSessionInvariants fuzzes the whole engine: random content,
// random player configuration (scheduler, thresholds, replacement,
// algorithm, seeks) over random traces — every combination must terminate
// and satisfy the structural invariants.
func TestQuickSessionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Random content.
		nTracks := rng.Intn(4) + 2
		ladder := make([]float64, nTracks)
		b := 150e3 * (1 + rng.Float64())
		for i := range ladder {
			ladder[i] = b
			b *= 1.5 + 0.5*rng.Float64()
		}
		mcfg := media.Config{
			Name: "f", Duration: 300, SegmentDuration: float64(rng.Intn(8) + 2),
			TargetBitrates: ladder,
			VBRSpread:      1.3 + rng.Float64(),
			Seed:           seed,
		}
		if rng.Intn(2) == 0 {
			mcfg.Encoding = media.VBR
		}
		addr := manifest.SidxRanges
		switch rng.Intn(3) {
		case 1:
			addr = manifest.RangesInManifest
		case 2:
			addr = manifest.TemplateNumber
		}
		sep := rng.Intn(2) == 0
		if sep {
			mcfg.SeparateAudio = true
			mcfg.AudioSegmentDuration = float64(rng.Intn(4) + 1)
		}
		v, err := media.Generate(mcfg)
		if err != nil {
			t.Log(err)
			return false
		}
		org, err := origin.New(manifest.Build(v, manifest.BuildOptions{Protocol: manifest.DASH, Addressing: addr}))
		if err != nil {
			t.Log(err)
			return false
		}

		// Random player.
		pause := 15 + rng.Float64()*100
		cfg := Config{
			Name:               "fuzz",
			SessionDuration:    120,
			StartupBufferSec:   2 + rng.Float64()*12,
			StartupSegments:    rng.Intn(3) + 1,
			StartupTrack:       rng.Intn(nTracks),
			PauseThresholdSec:  pause,
			ResumeThresholdSec: pause * (0.2 + 0.7*rng.Float64()),
			MaxConnections:     rng.Intn(4) + 1,
			Persistent:         rng.Intn(2) == 0,
			MinEstimateSamples: rng.Intn(3) + 1,
			ExposeSegmentSizes: rng.Intn(2) == 0,
		}
		switch rng.Intn(3) {
		case 0:
			cfg.Scheduler = SchedulerSingle
			cfg.MaxConnections = 1
		case 1:
			cfg.Scheduler = SchedulerParallel
			cfg.VideoPipeline = rng.Intn(cfg.MaxConnections) + 1
			if rng.Intn(2) == 0 && sep {
				cfg.Audio = AudioDesynced
			}
		case 2:
			cfg.Scheduler = SchedulerSplit
			cfg.SplitSkew = rng.Float64() * 2
		}
		switch rng.Intn(5) {
		case 0:
			cfg.Algorithm = adaptation.Throughput{Factor: 0.5 + rng.Float64()*0.6}
		case 1:
			cfg.Algorithm = adaptation.DefaultHysteresis()
		case 2:
			cfg.Algorithm = adaptation.BufferBased{Reservoir: 5, Cushion: 20 + rng.Float64()*40}
		case 3:
			cfg.Algorithm = adaptation.OscillatingGreedy{Deadband: 0.5}
		default:
			cfg.Algorithm = adaptation.ProbeAdapt{}
		}
		if cfg.Scheduler == SchedulerSingle {
			switch rng.Intn(3) {
			case 0:
				cfg.Replacement = replacement.ContiguousOnUpswitch{IgnoreBufferedQuality: rng.Intn(2) == 0}
			case 1:
				cfg.Replacement = replacement.PerSegment{MinBufferSec: 10, CapTrack: rng.Intn(nTracks+1) - 1}
				cfg.MidBufferDiscard = true
			}
		}
		if rng.Intn(3) == 0 {
			cfg.Seeks = []SeekEvent{{AtSec: 20 + rng.Float64()*60, ToSec: rng.Float64() * 280}}
		}

		// Random network.
		samples := make([]float64, 120)
		for i := range samples {
			samples[i] = 100e3 + rng.Float64()*8e6
		}
		p := &netem.Profile{Name: "fz", SampleDur: 1, Samples: samples}

		sess, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), p))
		if err != nil {
			t.Log(err)
			return false
		}
		res := sess.Run()

		// Invariants (a subset of checkInvariants that tolerates seeks).
		if res.EndTime > cfg.SessionDuration+1e-6 || res.EndTime < 0 {
			t.Logf("seed %d: end time %v", seed, res.EndTime)
			return false
		}
		if res.WastedBytes < 0 || res.WastedBytes > res.TotalBytes+1 {
			t.Logf("seed %d: waste %v of %v", seed, res.WastedBytes, res.TotalBytes)
			return false
		}
		for i, st := range res.Stalls {
			if st.End < st.Start {
				t.Logf("seed %d: stall %d reversed", seed, i)
				return false
			}
		}
		for _, tr := range res.Displayed {
			if tr < -1 || tr >= nTracks {
				t.Logf("seed %d: displayed track %d", seed, tr)
				return false
			}
		}
		var txBytes float64
		for _, tx := range res.Transactions {
			if !tx.Rejected {
				txBytes += float64(tx.Bytes)
			}
		}
		if diff := txBytes - res.TotalBytes; diff < -(1 + res.TotalBytes/1e3) {
			t.Logf("seed %d: transactions %v < total %v", seed, txBytes, res.TotalBytes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/adaptation"
	"repro/internal/expcache"
	"repro/internal/modify"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/services"
	"repro/internal/textplot"
)

// Fig12 reproduces the §4.2 manifest-variant probe on D2 (Figure 12) and
// its bandwidth-utilisation measurement: D2 selects the same level for
// both variants (it only reads the declared bitrate) and achieves ~34%
// link utilisation at a constant 2 Mbit/s.
func Fig12(ctx context.Context) ([]*textplot.Table, []string, error) {
	d2 := services.ByName("D2")
	org, err := serviceOrigin(d2)
	if err != nil {
		return nil, nil, err
	}
	shifted, err := origin.New(modify.ShiftVariants(org.Pres))
	if err != nil {
		return nil, nil, err
	}
	dropped, err := origin.New(modify.DropLowest(org.Pres))
	if err != nil {
		return nil, nil, err
	}
	t := &textplot.Table{
		Title:  "Figure 12 — D2 with shifted vs dropped manifest variants",
		Note:   "same declared ladder, actual bitrates one rung apart; identical selections ⇒ declared-only adaptation",
		Header: []string{"bandwidth (Mbps)", "variant-1 level (shifted)", "variant-2 level (dropped)", "same level"},
	}
	same := true
	for _, bw := range []float64{1.4e6, 2.6e6, 4.5e6, 5.5e6} {
		p := netem.Constant("const", bw, 600)
		adjust := func(c *player.Config) {
			if c.StartupTrack >= len(shifted.Pres.Video) {
				c.StartupTrack = len(shifted.Pres.Video) - 1
			}
		}
		r1, err := expcache.Run(d2.Player, shifted, p, 300, adjust)
		if err != nil {
			return nil, nil, err
		}
		r2, err := expcache.Run(d2.Player, dropped, p, 300, adjust)
		if err != nil {
			return nil, nil, err
		}
		l1, l2 := steadyLevel(r1), steadyLevel(r2)
		if l1 != l2 {
			same = false
		}
		t.AddRow(textplot.Mbps(bw), fmt.Sprintf("%d", l1), fmt.Sprintf("%d", l2), textplot.YN(l1 == l2))
	}
	_ = same

	// Utilisation at a stable 2 Mbit/s (paper: 33.7%).
	res, err := run(d2, netem.Constant("const2", 2e6, 600), 600)
	if err != nil {
		return nil, nil, err
	}
	util := steadyUtilisation(res, 2e6)
	t2 := &textplot.Table{
		Title:  "§4.2 — D2 bandwidth utilisation at constant 2 Mbit/s",
		Header: []string{"metric", "value"},
	}
	t2.AddRow("steady-phase achieved throughput / bandwidth", textplot.Pct(util))
	return []*textplot.Table{t, t2}, nil, nil
}

// steadyUtilisation measures downloaded bits over wall time in the second
// half of the session against the available bandwidth.
func steadyUtilisation(res *player.Result, bw float64) float64 {
	from := res.EndTime / 2
	bits := 0.0
	for _, d := range res.Downloads {
		if d.End > from {
			bits += d.Bytes * 8
		}
	}
	return bits / ((res.EndTime - from) * bw)
}

// Fig13 reproduces Figure 13: the ExoPlayer-model player on a 7-track
// VBR ladder whose declared bitrate is 2× the average actual bitrate,
// with the default (declared-only) vs actual-bitrate-aware adaptation,
// over the 14 profiles. Considering actual bitrates cuts low-track time
// sharply (paper: ≥43% less bottom-track time on the 3 lowest profiles,
// median +10.22% average bitrate, stalls unchanged).
func Fig13(ctx context.Context) ([]*textplot.Table, []string, error) {
	org, err := exoContent(4, 77)
	if err != nil {
		return nil, nil, err
	}
	variants := []struct {
		name string
		mut  func(*player.Config)
	}{
		{"declared only (ExoPlayer default)", func(c *player.Config) {}},
		{"actual-bitrate aware", func(c *player.Config) {
			c.ExposeSegmentSizes = true
			c.Algorithm = adaptation.Hysteresis{
				Factor: 0.75, MinBufferForUp: 10, MaxBufferForDown: 25,
				UseActual: true, Horizon: 3,
			}
		}},
	}
	type agg struct {
		rate, low, lowest, stall []float64
	}
	var aggs []agg
	for _, v := range variants {
		var a agg
		for _, p := range cellular() {
			cfg := exoPlayer("exo13")
			v.mut(&cfg)
			res, err := expcache.Run(cfg, org, p, 600, nil)
			if err != nil {
				return nil, nil, err
			}
			rep := displayedStats(res)
			a.rate = append(a.rate, rep.avg)
			a.low = append(a.low, lowTrackShare(res, 2))
			a.lowest = append(a.lowest, lowTrackShare(res, 1))
			a.stall = append(a.stall, res.TotalStall())
		}
		aggs = append(aggs, a)
	}
	t := &textplot.Table{
		Title:  "Figure 13 — declared-only vs actual-bitrate-aware adaptation (14 profiles)",
		Header: []string{"variant", "median avg bitrate (Mbps)", "median Δbitrate", "lowest-track share (3 low profiles)", "low-track share (median)", "median stall s"},
	}
	for vi, v := range variants {
		a := aggs[vi]
		var dRate []float64
		for i := range a.rate {
			dRate = append(dRate, a.rate[i]/aggs[0].rate[i]-1)
		}
		low3 := textplot.Mean(a.lowest[:3])
		t.AddRow(v.name,
			textplot.Mbps(textplot.Median(a.rate)),
			textplot.Pct(textplot.Median(dRate)),
			textplot.Pct(low3),
			textplot.Pct(textplot.Median(a.low)),
			textplot.Secs(textplot.Median(a.stall)),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

type dispStats struct{ avg float64 }

func displayedStats(res *player.Result) dispStats {
	var w, dur float64
	for i, tr := range res.Displayed {
		if tr < 0 {
			continue
		}
		d := res.SegmentDuration
		if start := float64(i) * res.SegmentDuration; start+d > res.MediaDuration {
			d = res.MediaDuration - start
		}
		w += res.Declared[tr] * d
		dur += d
	}
	if dur == 0 {
		return dispStats{}
	}
	return dispStats{avg: w / dur}
}

# Local dev and CI invoke the same targets (.github/workflows/ci.yml
# calls make), so a green `make build vet fmt-check test race` locally
# means a green PR.

GO ?= go

.PHONY: build vet fmt fmt-check test race bench bench-smoke report

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

test:
	$(GO) test ./...

# -count=1 defeats the test cache so the race detector actually re-runs
# the concurrent paths (determinism + origin-cache stress tests).
race:
	$(GO) test -race -count=1 ./...

# Every benchmark, one iteration each: validates they all still compile
# and run without letting timing noise gate anything.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The CI smoke subset: one real experiment benchmark plus a full
# parallel-engine report regeneration.
bench-smoke:
	$(GO) test -bench 'BenchmarkFig8|BenchmarkReportAllParallel' -benchtime 1x -run '^$$' ./...

# Regenerate REPORT.md on all cores (vodreport -workers N to override).
report:
	$(GO) run ./cmd/vodreport -out REPORT.md

package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON the go command writes for vet tools (see
// cmd/go/internal/work's vetConfig). Fields this tool does not consume
// are listed for documentation and decode into their zero values.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitcheck runs the analyzers over one package unit described by a go
// vet config file, type-checking against the gc export data the build
// system already produced.
func unitcheck(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vodlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The go command requires the facts output to exist even though
	// these analyzers exchange none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "vodlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "vodlint:", err)
			return 2
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{Importer: imp, GoVersion: strings.TrimSpace(cfg.GoVersion)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}

	unit := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		// go vet hands test units their own cfg whose GoFiles repeat the
		// base files; restrict reporting to the test files there so each
		// finding appears once.
		TestUnit: strings.HasSuffix(cfg.ImportPath, ".test]") || strings.HasSuffix(cfg.ImportPath, "_test"),
	}
	diags, err := lint.Run(unit, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2 // the go command treats any nonzero status as findings
	}
	return 0
}

# Local dev and CI invoke the same targets (.github/workflows/ci.yml
# calls make), so a green `make build vet fmt-check test race` locally
# means a green PR.

GO ?= go

.PHONY: build vet fmt fmt-check lint lint-vettool lint-audit verify test race bench bench-smoke bench-json bench-compare report fuzz-smoke cache-determinism fleet-smoke fleet-cache-cmp fleet-scale

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

# The contract analyzers — determinism (simclock, seededrand, maprange,
# floateq, bpsunits) plus the dataflow contracts (stepalias, hotalloc,
# foldorder, goctx) — over the whole module. Standalone mode needs no
# network and no vet driver; see lint-vettool for the cached variant.
lint:
	$(GO) run ./cmd/vodlint .

# Same analyzers through `go vet -vettool=`: incremental via the build
# cache, and proves the unitchecker protocol keeps working.
lint-vettool:
	$(GO) build -o bin/vodlint ./cmd/vodlint
	$(GO) vet -vettool=$(CURDIR)/bin/vodlint ./...

# Full suite plus the stale-suppression audit: every //vodlint:allow in
# the tree must still suppress a diagnostic of a known analyzer, or the
# audit fails the build (standalone-only; vet units are too narrow to
# prove a directive dead).
lint-audit:
	$(GO) run ./cmd/vodlint -unused-allow .

# Everything a PR must pass, in the order CI runs it.
verify: build vet fmt-check lint lint-vettool lint-audit test

# Native fuzz targets, a few seconds each — the CI smoke setting.
# Targets are discovered by scanning test files, so a new Fuzz* harness
# anywhere in the module joins the smoke run automatically instead of
# silently never fuzzing.
FUZZTIME ?= 10s
fuzz-smoke:
	@set -e; found=0; \
	for dir in $$($(GO) list -f '{{.Dir}}' ./...); do \
		targets="$$(grep -hoE '^func Fuzz[A-Za-z0-9_]*' "$$dir"/*_test.go 2>/dev/null | sed 's/^func //' | sort -u)"; \
		[ -n "$$targets" ] || continue; \
		for t in $$targets; do \
			found=1; \
			echo "fuzz-smoke: $$dir $$t"; \
			$(GO) test "$$dir" -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME); \
		done; \
	done; \
	[ "$$found" = 1 ] || { echo "fuzz-smoke: no fuzz targets discovered" >&2; exit 1; }

test:
	$(GO) test ./...

# -count=1 defeats the test cache so the race detector actually re-runs
# the concurrent paths (determinism + origin-cache stress tests).
race:
	$(GO) test -race -count=1 ./...

# Every benchmark, one iteration each: validates they all still compile
# and run without letting timing noise gate anything.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The CI smoke subset: one real experiment benchmark plus a full
# parallel-engine report regeneration.
bench-smoke:
	$(GO) test -bench 'BenchmarkFig8|BenchmarkReportAllParallel' -benchtime 1x -run '^$$' ./...

# Regenerate the machine-readable benchmark file (see DESIGN.md §7).
BENCH_OUT ?= BENCH_local.json
bench-json:
	$(GO) run ./cmd/vodbench -bench -benchout $(BENCH_OUT)

# Gate the current tree against the committed baseline. ns/op is
# calibration-normalized (cross-machine safe); allocs/op is exact.
# BENCH_FILTER narrows the suite (calibration always runs). The current
# numbers are always written to BENCH_COMPARE_OUT — before gating — so
# a failed gate leaves the evidence behind for artifact upload.
BENCH_BASE ?= BENCH_baseline.json
BENCH_FILTER ?=
BENCH_COMPARE_OUT ?= BENCH_current.json
bench-compare:
	$(GO) run ./cmd/vodbench -bench -filter '$(BENCH_FILTER)' -compare $(BENCH_BASE) -benchout $(BENCH_COMPARE_OUT)

# Regenerate REPORT.md on all cores (vodreport -workers N to override).
report:
	$(GO) run ./cmd/vodreport -out REPORT.md

# Cold-vs-warm determinism gate for the session cache: generate the
# report twice into a shared on-disk cache directory and require the
# outputs to be byte-identical (-stable omits wall-clock lines, the only
# legitimately nondeterministic output). The second run's cache counters
# must show disk hits — otherwise the gate silently compared two cold
# runs and proved nothing about the cache.
cache-determinism:
	$(GO) build -o bin/vodreport ./cmd/vodreport
	dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	bin/vodreport -stable -q -v -cachedir "$$dir/cache" -out "$$dir/r1.md" 2> "$$dir/log1" && \
	bin/vodreport -stable -q -v -cachedir "$$dir/cache" -out "$$dir/r2.md" 2> "$$dir/log2" && \
	cmp "$$dir/r1.md" "$$dir/r2.md" && \
	grep 'cache:' "$$dir/log2" && \
	grep -q 'cache: 0 misses' "$$dir/log2" && \
	echo "cache-determinism: cold and warm reports are byte-identical"

# Population-run gate: a small fleet under the race detector, then the
# workers-determinism contract — the same seed must produce byte-identical
# JSON reports for a serial and an 8-way-concurrent run.
fleet-smoke:
	$(GO) test -race -count=1 ./internal/fleet/
	$(GO) build -o bin/vodfleet ./cmd/vodfleet
	dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	bin/vodfleet -sessions 600 -seed 1 -workers 1 -q -nocache -json "$$dir/w1.json" && \
	bin/vodfleet -sessions 600 -seed 1 -workers 8 -q -nocache -json "$$dir/w8.json" && \
	cmp "$$dir/w1.json" "$$dir/w8.json" && \
	echo "fleet-smoke: workers=1 and workers=8 reports are byte-identical"

# Edge-cache determinism gate, mirroring fleet-smoke's cmp discipline
# for the cdn tier (DESIGN.md §13). Three identities must hold:
#   1. no -cache flag vs a transparent spec (zero-size edge, no TTL,
#      unlimited metro) — the transparent config must normalize away and
#      leave the report byte-identical, cdn section and all;
#   2. workers=1 vs workers=8 with the full tier on (finite edge +
#      metro + backhaul + cold cells + a mid-run edge failure) — cache
#      state is per-cell/per-shard, so the schedule cannot reach it;
#   3. determinism is not vacuous: the cached run must differ from the
#      uncached one (the tier actually changed delivery).
# FLEET_CACHE_SESSIONS=100000 (with FLEET_CACHE_FIDELITY=0.05) is the
# CI scale tier; the cached runs also carry the heap ceiling so the
# cache slabs stay inside the fleet memory contract.
FLEET_CACHE_SESSIONS ?= 600
FLEET_CACHE_FIDELITY ?= 1
FLEET_CACHE_CEILING_MB ?= 512
FLEET_CACHE_SPEC ?= edge:64MiB,metro:2GiB,ttl=6h
fleet-cache-cmp:
	$(GO) build -o bin/vodfleet ./cmd/vodfleet
	dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	bin/vodfleet -sessions $(FLEET_CACHE_SESSIONS) -fidelity $(FLEET_CACHE_FIDELITY) \
		-seed 1 -workers 4 -q -nocache -json "$$dir/off.json" && \
	bin/vodfleet -sessions $(FLEET_CACHE_SESSIONS) -fidelity $(FLEET_CACHE_FIDELITY) \
		-seed 1 -workers 4 -q -nocache \
		-cache edge:0,metro:-1,ttl=0 -json "$$dir/inf.json" && \
	cmp "$$dir/off.json" "$$dir/inf.json" && \
	bin/vodfleet -sessions $(FLEET_CACHE_SESSIONS) -fidelity $(FLEET_CACHE_FIDELITY) \
		-seed 1 -workers 2 -q -nocache -memceiling-mb $(FLEET_CACHE_CEILING_MB) \
		-cache $(FLEET_CACHE_SPEC) -coldcells 0-3 -cachefail cell=5,t=60s \
		-json "$$dir/c2.json" && \
	bin/vodfleet -sessions $(FLEET_CACHE_SESSIONS) -fidelity $(FLEET_CACHE_FIDELITY) \
		-seed 1 -workers 8 -q -nocache -memceiling-mb $(FLEET_CACHE_CEILING_MB) \
		-cache $(FLEET_CACHE_SPEC) -coldcells 0-3 -cachefail cell=5,t=60s \
		-json "$$dir/c8.json" && \
	cmp "$$dir/c2.json" "$$dir/c8.json" && \
	! cmp -s "$$dir/off.json" "$$dir/c2.json" && \
	echo "fleet-cache-cmp: transparent cache byte-identical to disabled; cached fleet byte-identical across worker counts"

# Scale gate: a 100k-session mixed-fidelity fleet (5% full player, 95%
# background tier, 8 focus members) run at two worker counts must emit
# byte-identical JSON while the in-process heap sampler enforces the
# memory contract (-memceiling-mb aborts the run the moment the live
# heap crosses the ceiling — no external RSS probe needed). The second
# half is the warm-sweep gate: a hotspot sweep sharing the cell cache
# must produce the hotspot point byte-identical to a cold standalone run
# of the same config — incremental recomputation may only skip work,
# never change bytes. Override FLEET_SCALE_SESSIONS=1000000 for the
# nightly million-session run, and FLEET_SCALE_DIR to keep the reports
# for artifact upload.
FLEET_SCALE_SESSIONS ?= 100000
FLEET_SCALE_CEILING_MB ?= 512
FLEET_SCALE_DIR ?=
fleet-scale:
	$(GO) build -o bin/vodfleet ./cmd/vodfleet
	@if [ -n "$(FLEET_SCALE_DIR)" ]; then \
		dir="$(FLEET_SCALE_DIR)"; mkdir -p "$$dir"; \
	else \
		dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	fi; \
	set -x; \
	bin/vodfleet -sessions $(FLEET_SCALE_SESSIONS) -fidelity 0.05 -focus 8 -seed 1 \
		-workers 2 -q -nocache -memceiling-mb $(FLEET_SCALE_CEILING_MB) -json "$$dir/w2.json" && \
	bin/vodfleet -sessions $(FLEET_SCALE_SESSIONS) -fidelity 0.05 -focus 8 -seed 1 \
		-workers 8 -q -nocache -memceiling-mb $(FLEET_SCALE_CEILING_MB) -json "$$dir/w8.json" && \
	cmp "$$dir/w2.json" "$$dir/w8.json" && \
	bin/vodfleet -sessions $(FLEET_SCALE_SESSIONS) -fidelity 0.05 -seed 1 \
		-workers 8 -q -sweep hotspot=0,0.2 -json "$$dir/sweep.json" && \
	bin/vodfleet -sessions $(FLEET_SCALE_SESSIONS) -fidelity 0.05 -seed 1 -hotspot 0.2 \
		-workers 8 -q -nocache -json "$$dir/cold-hotspot.json" && \
	cmp "$$dir/sweep.json.hotspot=0.2" "$$dir/cold-hotspot.json" && \
	echo "fleet-scale: $(FLEET_SCALE_SESSIONS) sessions byte-identical across worker counts under a $(FLEET_SCALE_CEILING_MB) MiB heap ceiling; warm sweep byte-identical to cold run"

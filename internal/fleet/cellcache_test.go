package fleet

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// sweepCfg is the warm-sweep scenario: enough sessions to span many
// cells, a fidelity mix so both tiers run, and a service subset to keep
// the runtime small.
var sweepCfg = Config{
	Seed: 11, Sessions: 600, ArrivalWindowSec: 120, WatchSec: 40,
	ClientsPerCell: 24, FidelityFull: 0.25,
	Services: []string{"H1", "D2", "S1"},
}

// TestCellCacheDeterminism pins the cache's core contract: a run served
// from cached cell aggregates produces byte-identical report JSON to a
// cold run, and a re-run of the same config is served entirely from the
// cache.
func TestCellCacheDeterminism(t *testing.T) {
	cold := fleetBytes(t, sweepCfg, RunOptions{Workers: 4})

	cache := NewCellCache()
	first := fleetBytes(t, sweepCfg, RunOptions{Workers: 4, CellCache: cache})
	if !bytes.Equal(cold, first) {
		t.Fatalf("cache-enabled cold run changed the report bytes (%d B vs %d B)", len(cold), len(first))
	}
	s := cache.Stats()
	ncfg, err := sweepCfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	nCells := int64(cellCount(ncfg))
	if s.Builds != nCells || s.Hits != 0 || s.Skipped != 0 {
		t.Fatalf("cold run stats = %+v, want %d builds and no hits", s, nCells)
	}

	warm := fleetBytes(t, sweepCfg, RunOptions{Workers: 4, CellCache: cache})
	if !bytes.Equal(cold, warm) {
		t.Fatalf("fully cached run changed the report bytes (%d B vs %d B)", len(cold), len(warm))
	}
	s = cache.Stats()
	if s.Builds != nCells || s.Hits != nCells {
		t.Fatalf("warm run stats = %+v, want %d builds and %d hits", s, nCells, nCells)
	}
}

// TestWarmSweepHitRate pins the incremental-recomputation win on the
// canonical sweep: hotspot 0 → 0.2 with a shared cache. The hotspot
// point re-lays cell 0 and the balanced remainder, but every balanced
// cell whose seed stream and size repeat must hit — ≥90% of the second
// run's cells — and its bytes must equal a cold run of the same point.
func TestWarmSweepHitRate(t *testing.T) {
	hotCfg := sweepCfg
	hotCfg.Hotspot = 0.2
	coldHot := fleetBytes(t, hotCfg, RunOptions{Workers: 4})

	cache := NewCellCache()
	fleetBytes(t, sweepCfg, RunOptions{Workers: 4, CellCache: cache})
	base := cache.Stats()

	warmHot := fleetBytes(t, hotCfg, RunOptions{Workers: 4, CellCache: cache})
	if !bytes.Equal(coldHot, warmHot) {
		t.Fatalf("warm sweep point changed the report bytes (%d B vs %d B)", len(coldHot), len(warmHot))
	}
	s := cache.Stats()
	hits := s.Hits - base.Hits
	builds := s.Builds - base.Builds
	ncfg, err := hotCfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	total := int64(cellCount(ncfg))
	if hits+builds != total {
		t.Fatalf("hits %d + builds %d != %d cells", hits, builds, total)
	}
	if rate := float64(hits) / float64(total); rate < 0.9 {
		t.Fatalf("warm sweep hit rate %.0f%% (%d/%d), want >= 90%%", rate*100, hits, total)
	}
}

// TestCellCacheFocusBypass pins the focus carve-out: cells carrying
// focus members run cold every time (their FocusSession records are not
// part of the cached value), count as skipped, and the report — focus
// section included — stays byte-identical to an uncached run.
func TestCellCacheFocusBypass(t *testing.T) {
	cfg := sweepCfg
	cfg.FocusSessions = 5
	cold := fleetBytes(t, cfg, RunOptions{Workers: 4})

	cache := NewCellCache()
	fleetBytes(t, cfg, RunOptions{Workers: 4, CellCache: cache})
	warm := fleetBytes(t, cfg, RunOptions{Workers: 4, CellCache: cache})
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cached focus run changed the report bytes (%d B vs %d B)", len(cold), len(warm))
	}
	s := cache.Stats()
	if s.Skipped == 0 {
		t.Fatal("focus cells did not register as skipped")
	}
	ncfg, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	nFocusCells := int64(len(focusPlan(ncfg)))
	if s.Skipped != 2*nFocusCells {
		t.Fatalf("skipped = %d, want %d (two runs x %d focus cells)", s.Skipped, 2*nFocusCells, nFocusCells)
	}
	if s.Builds+nFocusCells != int64(cellCount(ncfg)) {
		t.Fatalf("builds %d + focus cells %d != %d cells", s.Builds, nFocusCells, cellCount(ncfg))
	}
}

// TestRunCanceledContext pins mid-run cancellation: a canceled context
// stops the run between cells and surfaces the context error instead of
// a report.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunWithOptions(ctx, sweepCfg, RunOptions{Workers: 2})
	if err == nil {
		t.Fatal("canceled context produced a report without error")
	}
	if rep != nil {
		t.Fatalf("canceled context produced a report: %p", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// Package live extends the laboratory to HTTP Live Streaming's live
// mode. The paper's methodology section notes it applies "to other ...
// services such as live streaming as they use the same standards"
// (§1.1); this package backs that claim: a live origin publishes a
// sliding-window HLS playlist that grows as the broadcast encodes
// segments, and a live client polls the playlist, tracks the live edge,
// and adapts bitrate with the same adaptation interfaces as the VOD
// player — all in deterministic virtual time on the same simulator.
//
// The live-specific QoE metric is end-to-end latency: the gap between
// the broadcast edge and the playhead, which startup policy sets and
// stalls permanently widen (a live player cannot catch up without
// skipping).
package live

import (
	"fmt"
	"math"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/manifest/hls"
	"repro/internal/media"
	"repro/internal/simnet"
)

// Origin is a live HLS channel: content becomes available segment by
// segment as the (virtual) broadcast encodes it.
type Origin struct {
	// Video is the underlying content (its duration bounds the event).
	Video *media.Video
	// Pres is the manifest view used for URLs and segment sizes.
	Pres *manifest.Presentation
	// WindowSegments is the sliding playlist window (HLS recommends at
	// least 3 target durations; default 6 segments).
	WindowSegments int
	// EncodeDelaySec is how long after a segment's media end it appears
	// in the playlist (encoder+packager latency; default 1 s).
	EncodeDelaySec float64
}

// NewOrigin wraps generated content as a live channel.
func NewOrigin(v *media.Video) *Origin {
	return &Origin{
		Video:          v,
		Pres:           manifest.Build(v, manifest.BuildOptions{Protocol: manifest.HLS}),
		WindowSegments: 6,
		EncodeDelaySec: 1,
	}
}

// AvailableSegments returns how many segments of the broadcast exist at
// virtual time t.
func (o *Origin) AvailableSegments(t float64) int {
	n := 0
	for i := 0; i < o.Video.SegmentCount(); i++ {
		end := o.Video.SegmentStart(i) + o.Video.SegmentLength(i)
		if end+o.EncodeDelaySec <= t {
			n++
		} else {
			break
		}
	}
	return n
}

// Ended reports whether the whole event has been published by time t.
func (o *Origin) Ended(t float64) bool {
	return o.AvailableSegments(t) >= o.Video.SegmentCount()
}

// PlaylistAt renders track's live media playlist as it would be served
// at virtual time t: the last WindowSegments available segments, with
// EXT-X-MEDIA-SEQUENCE anchoring absolute indices, and EXT-X-ENDLIST
// only once the event has ended.
func (o *Origin) PlaylistAt(track int, t float64) (body string, firstSeq, count int) {
	avail := o.AvailableSegments(t)
	first := avail - o.WindowSegments
	if first < 0 {
		first = 0
	}
	r := o.Pres.Video[track]
	window := r.Segments[first:avail]
	return hls.EncodeMediaWindow(window, first, r.SegmentDuration, o.Ended(t)), first, avail - first
}

// MasterPlaylist renders the (static) master playlist.
func (o *Origin) MasterPlaylist() string { return hls.EncodeMaster(o.Pres) }

// Config parameterises a live client session.
type Config struct {
	// SessionDuration caps the session in virtual seconds.
	SessionDuration float64
	// JoinAt is the broadcast time the viewer tunes in.
	JoinAt float64
	// EdgeDistanceSegments is how many segments behind the live edge
	// playback starts (HLS clients conventionally hold ≥3 target
	// durations of delay; default 3).
	EdgeDistanceSegments int
	// StartupSegments gates playback start (default 2).
	StartupSegments int
	// StartupTrack is the first track index.
	StartupTrack int
	// Algorithm selects tracks; nil defaults to a 0.75 throughput rule.
	Algorithm adaptation.Algorithm
	// Estimator tracks throughput; nil defaults to an EWMA.
	Estimator adaptation.Estimator
	// PollIntervalSec is the playlist reload period while waiting for
	// new segments (default: half the target duration).
	PollIntervalSec float64
}

// Result summarises a live session.
type Result struct {
	// StartupDelay is the wall time from join until the first frame.
	StartupDelay float64
	// InitialLatency is broadcast-edge minus playhead at playback start.
	InitialLatency float64
	// FinalLatency is the same gap at session end — stalls widen it.
	FinalLatency float64
	// MeanLatency averages the gap over 1 Hz samples while playing.
	MeanLatency float64
	// Stalls and StallSec summarise rebuffering.
	Stalls   int
	StallSec float64
	// AvgBitrate is the playtime-weighted declared bitrate.
	AvgBitrate float64
	// Switches counts downloaded-track changes.
	Switches int
	// PlaylistReloads counts media playlist fetches.
	PlaylistReloads int
	// SegmentsPlayed counts segments that reached the screen.
	SegmentsPlayed int
	// Bytes is the total downloaded volume.
	Bytes float64
}

// Play runs a live session over the network.
func Play(cfg Config, o *Origin, net *simnet.Network) (*Result, error) {
	if cfg.SessionDuration <= 0 {
		cfg.SessionDuration = 300
	}
	if cfg.EdgeDistanceSegments <= 0 {
		cfg.EdgeDistanceSegments = 3
	}
	if cfg.StartupSegments <= 0 {
		cfg.StartupSegments = 2
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = adaptation.Throughput{Factor: 0.75}
	}
	if cfg.Estimator == nil {
		cfg.Estimator = adaptation.NewEWMA(0.4)
	}
	if cfg.PollIntervalSec <= 0 {
		cfg.PollIntervalSec = o.Video.SegmentDuration / 2
	}
	if cfg.StartupTrack < 0 || cfg.StartupTrack >= len(o.Pres.Video) {
		return nil, fmt.Errorf("live: startup track %d out of range", cfg.StartupTrack)
	}
	s := &session{cfg: cfg, org: o, net: net, lastTrack: -1}
	return s.run()
}

type session struct {
	cfg Config
	org *Origin
	net *simnet.Network

	conn      *simnet.Conn
	res       Result
	lastTrack int

	playhead  float64 // media time
	bufEnd    float64 // contiguous downloaded media end
	playing   bool
	started   bool
	lastWall  float64
	nextIndex int

	playedWeighted float64
	playedSec      float64
	latencySum     float64
	latencyN       int
	stallOpen      bool
	endAt          float64
	declared       []float64 // ladder bitrates, built on first use
}

func (s *session) run() (*Result, error) {
	o := s.org
	net := s.net
	endAt := s.cfg.JoinAt + s.cfg.SessionDuration
	s.endAt = endAt

	// Advance to the join time.
	net.Step(s.cfg.JoinAt)
	s.lastWall = net.Now()
	s.conn = net.Dial()

	// Master playlist + initial media playlist.
	master := o.MasterPlaylist()
	s.fetch(float64(len(master)))
	body, firstSeq, count := o.PlaylistAt(s.cfg.StartupTrack, net.Now())
	s.fetch(float64(len(body)))
	s.res.PlaylistReloads++
	if count == 0 {
		return nil, fmt.Errorf("live: joined before any segment was published")
	}
	// Start EdgeDistanceSegments behind the newest available segment.
	s.nextIndex = firstSeq + count - s.cfg.EdgeDistanceSegments
	if s.nextIndex < firstSeq {
		s.nextIndex = firstSeq
	}
	s.playhead = o.Video.SegmentStart(s.nextIndex)
	s.bufEnd = s.playhead

	for net.Now() < endAt && s.nextIndex < o.Video.SegmentCount() {
		now := net.Now()
		if o.AvailableSegments(now) <= s.nextIndex {
			// The next segment is not published yet: poll the playlist.
			wait := math.Min(now+s.cfg.PollIntervalSec, endAt)
			net.Step(wait)
			s.advance(net.Now())
			pl, _, _ := o.PlaylistAt(s.trackFor(), net.Now())
			s.fetch(float64(len(pl)))
			s.res.PlaylistReloads++
			s.advance(net.Now())
			continue
		}
		track := s.trackFor()
		seg := o.Pres.Video[track].Segments[s.nextIndex]
		start := now
		s.fetch(float64(seg.Size))
		took := net.Now() - start
		s.cfg.Estimator.Add(float64(seg.Size)*8, took)
		s.advance(net.Now())
		if s.lastTrack >= 0 && track != s.lastTrack {
			s.res.Switches++
		}
		s.lastTrack = track
		s.playedWeighted += o.Pres.Video[track].DeclaredBitrate * seg.Duration
		s.playedSec += seg.Duration
		s.bufEnd = seg.Start + seg.Duration
		s.nextIndex++
		s.res.SegmentsPlayed++
		if !s.started && s.nextIndex-int(s.playhead/o.Video.SegmentDuration) >= s.cfg.StartupSegments {
			s.started = true
			s.playing = true
			s.res.StartupDelay = net.Now() - s.cfg.JoinAt
			s.res.InitialLatency = net.Now() - s.playhead
		}
	}
	s.advance(math.Min(net.Now(), endAt))
	if s.playedSec > 0 {
		s.res.AvgBitrate = s.playedWeighted / s.playedSec
	}
	s.res.FinalLatency = math.Min(s.net.Now(), endAt) - s.playhead
	if s.latencyN > 0 {
		s.res.MeanLatency = s.latencySum / float64(s.latencyN)
	}
	return &s.res, nil
}

// trackFor runs adaptation for the next segment.
func (s *session) trackFor() int {
	if s.declared == nil {
		s.declared = make([]float64, 0, len(s.org.Pres.Video))
		for _, r := range s.org.Pres.Video {
			s.declared = append(s.declared, r.DeclaredBitrate)
		}
	}
	return s.cfg.Algorithm.Select(adaptation.Context{
		Declared:        s.declared,
		SegmentDuration: s.org.Video.SegmentDuration,
		SegmentCount:    s.org.Video.SegmentCount(),
		NextIndex:       s.nextIndex,
		BufferSec:       math.Max(0, s.bufEnd-s.playhead),
		EstimateBps:     s.cfg.Estimator.Estimate(),
		LastTrack:       s.lastTrack,
		StartupTrack:    s.cfg.StartupTrack,
	})
}

// fetch downloads size bytes on the session connection.
func (s *session) fetch(size float64) {
	s.conn.Start(size, nil)
	for {
		done := s.net.Step(math.Inf(1))
		if len(done) > 0 {
			for _, tr := range done {
				s.net.Recycle(tr)
			}
			s.res.Bytes += size
			return
		}
	}
}

// advance moves playback to wall time t (clipped at the session end so
// an overshooting download does not inflate the stall accounting).
func (s *session) advance(t float64) {
	if s.endAt > 0 && t > s.endAt {
		t = s.endAt
	}
	for s.lastWall < t-1e-9 {
		if !s.playing {
			s.lastWall = t
			return
		}
		dt := t - s.lastWall
		room := s.bufEnd - s.playhead
		adv := math.Min(dt, room)
		// Latency sampling at ~1 Hz granularity.
		steps := int(adv) + 1
		for k := 0; k < steps; k++ {
			s.latencySum += (s.lastWall + float64(k)) - (s.playhead + float64(k))
			s.latencyN++
		}
		s.playhead += adv
		s.lastWall += adv
		if adv < dt-1e-9 {
			// Stall until more content arrives: account it lazily by
			// pausing here; the caller resumes advance after downloads.
			if !s.stallOpen {
				s.res.Stalls++
				s.stallOpen = true
			}
			s.res.StallSec += dt - adv
			s.lastWall = t
			return
		}
		if adv > 0 {
			s.stallOpen = false
		}
	}
}

package player

import (
	"repro/internal/media"
)

// BufferedSegment is one downloaded, not-yet-played segment.
type BufferedSegment struct {
	// Type is video or audio.
	Type media.MediaType
	// Track is the quality level it was downloaded at.
	Track int
	// Index is the segment's position within the presentation.
	Index int
	// Start and End bound the segment's media time in seconds.
	Start, End float64
	// Bytes is the downloaded size.
	Bytes float64
	// DownloadedAt is the wall time the download completed.
	DownloadedAt float64
}

// Buffer holds the downloaded, unplayed segments of one content type,
// ordered by media time. Whether a segment in the middle can be discarded
// depends on the player configuration (MidBufferDiscard); the Buffer
// itself supports both operations and the Session enforces the policy.
type Buffer struct {
	segs    []BufferedSegment
	dropped []BufferedSegment // scratch reused by DropFromIndex

	// PlayableEnd memo. While the segment set is unchanged, the
	// contiguous range from any playhead inside [cachePh, cacheEnd] ends
	// exactly at cacheEnd: the merge chain that produced cacheEnd is the
	// same chain the rescan would walk, and a segment extending past
	// cacheEnd would have extended the original chain too. Every mutation
	// clears the memo.
	cachePh  float64
	cacheEnd float64
	cacheOK  bool
}

// Insert adds a segment, keeping media order. Inserting an index that is
// already buffered replaces it and returns the old segment.
func (b *Buffer) Insert(s BufferedSegment) (old BufferedSegment, replaced bool) {
	b.cacheOK = false
	for i := range b.segs {
		if b.segs[i].Index == s.Index {
			old = b.segs[i]
			b.segs[i] = s
			return old, true
		}
	}
	// Shift-insert into the already-sorted slice, after any equal Start
	// (what a stable sort of the appended slice produced).
	b.segs = append(b.segs, s)
	i := len(b.segs) - 1
	for i > 0 && b.segs[i-1].Start > s.Start {
		b.segs[i] = b.segs[i-1]
		i--
	}
	b.segs[i] = s
	return BufferedSegment{}, false
}

// PlayableEnd returns the end of the contiguous buffered media range
// starting at the playhead. With an empty buffer (or a gap at the
// playhead) it returns the playhead itself.
func (b *Buffer) PlayableEnd(playhead float64) float64 {
	const eps = 1e-9
	if b.cacheOK && playhead >= b.cachePh && playhead <= b.cacheEnd {
		return b.cacheEnd
	}
	end := playhead
	for _, s := range b.segs {
		if s.Start > end+eps {
			break
		}
		if s.End > end {
			end = s.End
		}
	}
	b.cachePh, b.cacheEnd, b.cacheOK = playhead, end, true
	return end
}

// OccupancySec returns the playable buffered duration from the playhead.
func (b *Buffer) OccupancySec(playhead float64) float64 {
	return b.PlayableEnd(playhead) - playhead
}

// SegmentAt returns the buffered segment covering the given media time.
func (b *Buffer) SegmentAt(mediaTime float64) (BufferedSegment, bool) {
	const eps = 1e-9
	for _, s := range b.segs {
		if s.Start-eps <= mediaTime && mediaTime < s.End-eps {
			return s, true
		}
	}
	return BufferedSegment{}, false
}

// HasIndex reports whether segment index is buffered.
func (b *Buffer) HasIndex(index int) bool {
	for _, s := range b.segs {
		if s.Index == index {
			return true
		}
	}
	return false
}

// Segments returns a copy of the buffered segments in media order.
func (b *Buffer) Segments() []BufferedSegment {
	return append([]BufferedSegment(nil), b.segs...)
}

// Len returns the number of buffered segments.
func (b *Buffer) Len() int { return len(b.segs) }

// UnplayedCount returns the number of segments whose media end is after
// the playhead.
func (b *Buffer) UnplayedCount(playhead float64) int {
	n := 0
	for _, s := range b.segs {
		if s.End > playhead {
			n++
		}
	}
	return n
}

// DropFromIndex removes every buffered segment with Index ≥ index and
// returns them (the deque tail discard that contiguous replacement needs).
// The returned slice is reused by the next DropFromIndex call.
func (b *Buffer) DropFromIndex(index int) []BufferedSegment {
	b.cacheOK = false
	kept := b.segs[:0]
	dropped := b.dropped[:0]
	for _, s := range b.segs {
		if s.Index >= index {
			dropped = append(dropped, s)
		} else {
			kept = append(kept, s)
		}
	}
	b.segs = kept
	b.dropped = dropped
	return dropped
}

// GC discards segments that finished playing before the playhead and
// returns how many were dropped.
func (b *Buffer) GC(playhead float64) int {
	b.cacheOK = false
	kept := b.segs[:0]
	n := 0
	for _, s := range b.segs {
		if s.End <= playhead+1e-9 {
			n++
			continue
		}
		kept = append(kept, s)
	}
	b.segs = kept
	return n
}

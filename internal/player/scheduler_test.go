package player

import (
	"testing"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/simnet"
	"repro/internal/traffic"
)

// maxConcurrent counts peak overlapping transactions.
func maxConcurrent(txs []traffic.Transaction) int {
	type ev struct {
		t float64
		d int
	}
	var evs []ev
	for _, tx := range txs {
		if !tx.Rejected {
			evs = append(evs, ev{tx.Start, 1}, ev{tx.End, -1})
		}
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].t < evs[j-1].t || (evs[j].t == evs[j-1].t && evs[j].d < evs[j-1].d)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.d
		if cur > max {
			max = cur
		}
	}
	return max
}

func TestSplitSchedulerUsesAllConnections(t *testing.T) {
	org := buildOrigin(t, 4, true, media.VBR)
	cfg := baseConfig()
	cfg.MaxConnections = 3
	cfg.Scheduler = SchedulerSplit
	res := runSession(t, cfg, org, netem.Constant("c", 5e6, 600))
	if got := maxConcurrent(res.Transactions); got != 3 {
		t.Fatalf("split scheduler peak concurrency %d, want 3", got)
	}
	// Split parts of a segment must tile its byte range exactly.
	byURL := map[string][]traffic.Transaction{}
	for _, tx := range res.Transactions {
		if tx.Body == nil && tx.RangeStart >= 0 {
			byURL[tx.URL] = append(byURL[tx.URL], tx)
		}
	}
	checked := 0
	for _, r := range org.Pres.Video {
		for _, seg := range r.Segments {
			var covered int64
			for _, tx := range byURL[r.MediaURL] {
				if tx.RangeStart >= seg.Offset && tx.RangeEnd < seg.Offset+seg.Length {
					covered += tx.RangeEnd - tx.RangeStart + 1
				}
			}
			if covered > 0 {
				if covered != seg.Length {
					t.Fatalf("segment at %d: parts cover %d of %d bytes", seg.Offset, covered, seg.Length)
				}
				checked++
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d split segments verified", checked)
	}
}

func TestSplitSkewPreservesCoverage(t *testing.T) {
	org := buildOrigin(t, 4, true, media.VBR)
	cfg := baseConfig()
	cfg.MaxConnections = 3
	cfg.Scheduler = SchedulerSplit
	cfg.SplitSkew = 1.5
	res := runSession(t, cfg, org, netem.Constant("c", 5e6, 120))
	var total float64
	for _, d := range res.Downloads {
		if d.End > 0 {
			total += d.Bytes
		}
	}
	var txTotal float64
	for _, tx := range res.Transactions {
		if tx.Body == nil && !tx.Rejected {
			txTotal += float64(tx.Bytes)
		}
	}
	if diff := txTotal - total; diff < -1 || diff > 1 {
		t.Fatalf("skewed split lost bytes: downloads %.0f vs transactions %.0f", total, txTotal)
	}
}

func TestParallelDesyncedPipelinesVideo(t *testing.T) {
	org := buildOrigin(t, 4, true, media.VBR)
	cfg := baseConfig()
	cfg.MaxConnections = 4
	cfg.Scheduler = SchedulerParallel
	cfg.Audio = AudioDesynced
	cfg.PauseThresholdSec = 120
	cfg.ResumeThresholdSec = 110
	res := runSession(t, cfg, org, netem.Constant("c", 5e6, 600))
	if got := maxConcurrent(res.Transactions); got < 3 {
		t.Fatalf("desynced pipeline concurrency %d, want ≥3", got)
	}
	// In steady state audio never runs far ahead of video in the
	// desynced design (the scheduler only fetches audio while its
	// scheduled end trails video; startup transients are exempt).
	for _, s := range res.Samples {
		if s.T < 60 {
			continue
		}
		if s.AudioSec > s.VideoSec+12+1e-6 {
			t.Fatalf("audio buffer %.1f far ahead of video %.1f at t=%.0f", s.AudioSec, s.VideoSec, s.T)
		}
	}
}

func TestParallelSyncedKeepsBuffersClose(t *testing.T) {
	org := buildOrigin(t, 4, true, media.VBR)
	cfg := baseConfig()
	cfg.MaxConnections = 2
	cfg.Scheduler = SchedulerParallel
	cfg.Audio = AudioSynced
	res := runSession(t, cfg, org, netem.Cellular(2))
	worst := 0.0
	for _, s := range res.Samples {
		if s.T < 30 {
			continue
		}
		if d := s.VideoSec - s.AudioSec; d > worst {
			worst = d
		}
		if d := s.AudioSec - s.VideoSec; d > worst {
			worst = d
		}
	}
	if worst > 15 {
		t.Fatalf("synced buffers drifted %.1f s apart", worst)
	}
}

func TestNonPersistentReducesThroughput(t *testing.T) {
	org := buildOrigin(t, 4, false, media.VBR)
	p := netem.Constant("c", 6e6, 600)
	// Measure pure download pace: huge control thresholds so the
	// download controller never pauses, fixed track so adaptation does
	// not differ, and compare when the 30th segment lands.
	run := func(persistent bool) float64 {
		cfg := baseConfig()
		cfg.Persistent = persistent
		cfg.Algorithm = adaptation.Fixed{Track: 2}
		cfg.PauseThresholdSec = 1e4
		cfg.ResumeThresholdSec = 1e4 - 10
		s, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), p))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		n := 0
		for _, d := range res.Downloads {
			if d.End > 0 {
				n++
				if n == 30 {
					return d.End
				}
			}
		}
		t.Fatal("fewer than 30 downloads")
		return 0
	}
	fresh, kept := run(false), run(true)
	if fresh <= kept {
		t.Fatalf("non-persistent reached segment 30 at %.1fs, persistent at %.1fs — handshakes and slow start should cost time", fresh, kept)
	}
}

// TestHLSLazyPlaylists: an HLS player fetches a track's media playlist
// before its first segment from that track, and only for tracks it uses.
func TestHLSLazyPlaylists(t *testing.T) {
	v, err := media.Generate(media.Config{
		Name: "hlz", Duration: 600, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3, 800e3, 1.6e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := buildHLSOrigin(v)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	res := runSession(t, cfg, org, netem.Constant("c", 2e6, 600))
	playlists := map[string]bool{}
	tracksUsed := map[int]bool{}
	for _, tx := range res.Transactions {
		if tx.Body != nil && tx.URL != org.Pres.ManifestURL() {
			playlists[tx.URL] = true
		}
	}
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.End > 0 {
			tracksUsed[d.Track] = true
		}
	}
	if len(playlists) != len(tracksUsed) {
		t.Fatalf("fetched %d playlists for %d used tracks", len(playlists), len(tracksUsed))
	}
	for tr := range tracksUsed {
		if !playlists[org.Pres.Video[tr].PlaylistURL] {
			t.Fatalf("track %d streamed without its playlist", tr)
		}
	}
}

func buildHLSOrigin(v *media.Video) (*origin.Origin, error) {
	return origin.New(manifest.Build(v, manifest.BuildOptions{Protocol: manifest.HLS}))
}

// Package hotalloc enforces the no-allocation contract on functions
// annotated //vodlint:hotpath and everything they reach within their
// package: the lean-session event loop, the columnar svcCols fold,
// simnet's water-filling and transfer bookkeeping, and the
// work-stealing shard loop each run millions of times per fleet
// report, so a single allocation per call dominates the profile
// (ROADMAP PRs 3 and 6 bought their speedups by removing exactly
// these).
//
// Within hot code the analyzer flags the constructs that allocate
// unless pool-backed: &T{} composite literals, new, make (maps,
// channels, slices), slice and map literals, append that does not
// grow its own operand (x = append(x, ...) amortizes to zero;
// anything else builds fresh backing arrays), fmt/errors/log calls
// off the panic path, and interface boxing of non-pointer values at
// cross-package call sites (pointers fit the interface word; a
// same-package callee is itself analyzed). Free-list misses and other
// deliberate cold-path allocations carry //vodlint:allow hotalloc
// with a justification.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/flow"
)

// Analyzer flags allocation-inducing constructs reachable from
// //vodlint:hotpath functions.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocations (composite literals, make, non-self append, fmt, " +
		"interface boxing) reachable from //vodlint:hotpath functions",
	Run: run,
}

func run(pass *lint.Pass) error {
	g := flow.New(pass)
	roots := g.Annotated("hotpath")
	if len(roots) == 0 {
		return nil
	}
	reach := g.Reachable(roots)
	for _, node := range g.Nodes {
		if _, ok := reach[node]; ok {
			checkNode(pass, g, node, reach)
		}
	}
	return nil
}

func checkNode(pass *lint.Pass, g *flow.Graph, node *flow.Node, reach map[*flow.Node]*flow.Node) {
	trace := g.Trace(reach, node)
	report := func(n ast.Node, format string, args ...interface{}) {
		args = append(args, trace)
		pass.Reportf(n.Pos(), format+" on the hot path (%s)", args...)
	}
	reported := map[ast.Node]bool{}
	flow.WalkOwn(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if b := builtinName(pass.TypesInfo, e); b != "" {
				switch b {
				case "panic":
					return false // the panic path may format freely
				case "new":
					report(e, "new allocates")
				case "make":
					report(e, "%s allocates", types.ExprString(e))
				case "append":
					if !selfAppend(g, e) {
						report(e, "append into a different slice allocates a fresh backing array")
					}
				}
				return true
			}
			if reported[e] {
				return true
			}
			if name := allocCallee(pass.TypesInfo, e); name != "" {
				reported[e] = true
				report(e, "call to %s allocates", name)
				return true
			}
			checkBoxing(pass, g, e, report)
		case *ast.UnaryExpr:
			if lit, ok := isPointerLit(e); ok {
				reported[lit] = true
				report(e, "&%s literal allocates", litTypeString(pass.TypesInfo, lit))
			}
		case *ast.CompositeLit:
			if reported[e] {
				return true
			}
			switch pass.TypesInfo.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				report(e, "slice literal allocates its backing array")
			case *types.Map:
				report(e, "map literal allocates")
			}
		}
		return true
	})
}

// selfAppend recognises the amortized-growth idiom x = append(x, ...)
// (including x := append(x, ...)), which reuses x's backing array at
// steady state.
func selfAppend(g *flow.Graph, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	st, ok := g.Parent(call).(*ast.AssignStmt)
	if !ok {
		return false
	}
	dst := types.ExprString(ast.Unparen(call.Args[0]))
	for i, rhs := range st.Rhs {
		if ast.Unparen(rhs) == call && i < len(st.Lhs) {
			return types.ExprString(ast.Unparen(st.Lhs[i])) == dst
		}
	}
	return false
}

// allocCallee names calls that allocate by construction: all of fmt
// (formatting boxes and builds strings), errors.New, and log.
func allocCallee(info *types.Info, call *ast.CallExpr) string {
	pkg, name := lint.CalleePkgFunc(info, call)
	switch pkg {
	case "fmt", "errors", "log":
		return pkg + "." + name
	}
	return ""
}

// checkBoxing flags non-pointer concrete values converted to
// interface parameters of callees outside the package: the box
// escapes with the call and heap-allocates. Pointer-shaped values
// (pointers, maps, channels, funcs) fit the interface word; a
// same-package callee is itself covered by this analyzer, and its
// boxes stay on the stack unless it retains them.
func checkBoxing(pass *lint.Pass, g *flow.Graph, call *ast.CallExpr, report func(ast.Node, string, ...interface{})) {
	if g.CalleeNode(call) != nil {
		return // same-package callee: analyzed on its own
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) || isUntypedNil(at) {
			continue
		}
		report(arg, "%s boxes a %s into an interface argument", types.ExprString(arg), at.String())
	}
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isPointerLit(e *ast.UnaryExpr) (*ast.CompositeLit, bool) {
	if e.Op != token.AND {
		return nil, false
	}
	lit, ok := ast.Unparen(e.X).(*ast.CompositeLit)
	return lit, ok
}

func litTypeString(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		s := t.String()
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	return "composite"
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

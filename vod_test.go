package vod

import (
	"testing"

	"repro/internal/adaptation"
	"repro/internal/media"
	"repro/internal/player"
)

// TestFacadeEndToEnd drives the whole public surface: generate content,
// build a manifest, create an origin, stream over a profile, compute QoE,
// analyze traffic, and sample the UI monitor.
func TestFacadeEndToEnd(t *testing.T) {
	video, err := GenerateVideo(MediaConfig{
		Name: "facade", Duration: 120, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := NewOrigin(BuildManifest(video, BuildOptions{Protocol: 1 /* DASH */}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := PlayerConfig{
		Name: "facade", StartupBufferSec: 4, StartupTrack: 0,
		PauseThresholdSec: 30, ResumeThresholdSec: 20,
		MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
		Algorithm: adaptation.DefaultHysteresis(),
	}
	res, err := Stream(cfg, org, ConstantProfile(3e6, 300), 150)
	if err != nil {
		t.Fatal(err)
	}
	rep := QoE(res)
	if rep.StartupDelay < 0 || rep.AvgBitrate <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	tr, err := AnalyzeTraffic("facade", res.Transactions)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Segments) == 0 {
		t.Fatal("analyzer found no segments")
	}
	if samples := UISamples(res); len(samples) < 100 {
		t.Fatalf("%d UI samples", len(samples))
	}
}

func TestFacadeProfiles(t *testing.T) {
	if got := len(CellularProfiles()); got != 14 {
		t.Fatalf("%d cellular profiles", got)
	}
	if p := CellularProfile(1); p.Average() > CellularProfile(14).Average() {
		t.Fatal("profiles not sorted")
	}
	if p := StepProfile(4e6, 1e6, 10, 20); p.At(5) != 4e6 || p.At(15) != 1e6 {
		t.Fatal("step profile wrong")
	}
}

func TestFacadeServices(t *testing.T) {
	if got := len(Services()); got != 12 {
		t.Fatalf("%d services", got)
	}
	if ServiceByName("H1") == nil || ServiceByName("nope") != nil {
		t.Fatal("ServiceByName")
	}
	res, err := ServiceByName("D4").Run(CellularProfile(6), 120, nil)
	if err != nil {
		t.Fatal(err)
	}
	if QoE(res).PlayedSec < 60 {
		t.Fatal("service session barely played")
	}
}

func TestFacadeNetwork(t *testing.T) {
	net := NewNetwork(DefaultNetworkConfig(), ConstantProfile(8e6, 100))
	c := net.Dial()
	c.Start(1e6, nil)
	done := net.Step(100)
	if len(done) != 1 {
		t.Fatal("transfer did not complete")
	}
}

func TestFacadeLive(t *testing.T) {
	video, err := GenerateVideo(MediaConfig{
		Name: "fl", Duration: 300, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3},
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	channel := NewLiveOrigin(video)
	net := NewNetwork(DefaultNetworkConfig(), ConstantProfile(6e6, 600))
	res, err := PlayLive(LiveConfig{JoinAt: 60, SessionDuration: 120}, channel, net)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsPlayed < 20 || res.Stalls != 0 {
		t.Fatalf("live facade: %+v", res)
	}
}

func TestFacadeRadioEnergy(t *testing.T) {
	res, err := ServiceByName("S2").Run(ConstantProfile(10e6, 600), 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := RadioEnergy(res)
	if u.Joules <= 0 || u.ActiveSec <= 0 {
		t.Fatalf("usage %+v", u)
	}
	if total := u.ActiveSec + u.TailSec + u.IdleSec; total < res.EndTime-1 || total > res.EndTime+1 {
		t.Fatalf("states sum to %.1f of %.1f s", total, res.EndTime)
	}
}

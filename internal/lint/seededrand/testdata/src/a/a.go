package a

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the global math/rand source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the global`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the global`
	rand.Seed(42)                      // want `rand\.Seed draws from the global`
	_ = rand.Perm(5)                   // want `rand\.Perm draws from the global`
}

func badSeed() {
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from package time is nondeterministic`
}

func good(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(10) // method on a seeded *rand.Rand, not the global
	_ = rng.Float64()
	rng.Shuffle(3, func(i, j int) {})
	rng2 := rand.New(rand.NewSource(seed ^ 0x5eed))
	_ = rng2.Perm(5)
}

package adaptation

// Estimator tracks achieved download throughput and produces the
// bandwidth estimate the selection algorithms consume.
type Estimator interface {
	// Add records one completed exchange that delivered `bits` over
	// `seconds` of wall time (including request latency, which is what a
	// real client observes).
	Add(bits, seconds float64)
	// Estimate returns the current estimate in bits/s, or 0 before any
	// sample has been recorded.
	Estimate() float64
	// Reset clears the estimator's state.
	Reset()
}

// EWMA is an exponentially weighted moving average estimator.
type EWMA struct {
	// Alpha is the weight of each new sample (0 < Alpha <= 1).
	Alpha float64

	value float64
	seen  bool
}

// NewEWMA returns an EWMA estimator with the given alpha.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Add implements Estimator.
func (e *EWMA) Add(bits, seconds float64) {
	if seconds <= 0 {
		return
	}
	sample := bits / seconds
	if !e.seen {
		e.value = sample
		e.seen = true
		return
	}
	e.value = e.Alpha*sample + (1-e.Alpha)*e.value
}

// Estimate implements Estimator.
func (e *EWMA) Estimate() float64 {
	if !e.seen {
		return 0
	}
	return e.value
}

// Reset implements Estimator.
func (e *EWMA) Reset() { e.value, e.seen = 0, false }

// SlidingHarmonic estimates bandwidth as the duration-weighted mean of the
// last Window samples (total bits over total time), which behaves like a
// harmonic mean of per-sample rates and is robust to short bursts.
type SlidingHarmonic struct {
	// Window is the number of samples retained.
	Window int

	bits, secs []float64
}

// NewSlidingHarmonic returns a sliding-window estimator over n samples.
func NewSlidingHarmonic(n int) *SlidingHarmonic { return &SlidingHarmonic{Window: n} }

// Add implements Estimator.
func (e *SlidingHarmonic) Add(bits, seconds float64) {
	if seconds <= 0 {
		return
	}
	e.bits = append(e.bits, bits)
	e.secs = append(e.secs, seconds)
	if w := e.Window; w > 0 && len(e.bits) > w {
		e.bits = e.bits[len(e.bits)-w:]
		e.secs = e.secs[len(e.secs)-w:]
	}
}

// Estimate implements Estimator.
func (e *SlidingHarmonic) Estimate() float64 {
	tb, ts := 0.0, 0.0
	for i := range e.bits {
		tb += e.bits[i]
		ts += e.secs[i]
	}
	if ts == 0 {
		return 0
	}
	return tb / ts
}

// Reset implements Estimator.
func (e *SlidingHarmonic) Reset() { e.bits, e.secs = nil, nil }

package a

// Byte-exact assertions are the entire point of this repository's
// tests, so _test.go files are exempt.
func assertExact(got, want float64) bool {
	return got == want
}

package cdn

import "repro/internal/simnet"

// Stats counts what one cell's cache tier did over a run. Bytes are
// wire bytes of media requests.
type Stats struct {
	EdgeHits    int64
	EdgeMisses  int64
	MetroHits   int64
	MetroMisses int64
	HitBytes    float64 // served from an edge node
	MissBytes   float64 // traversed the backhaul (metro or origin)
	OriginBytes float64 // subset of MissBytes that reached the origin
	Rerouted    int64   // sessions re-routed after their node died
}

// HitRatio is the edge hit ratio over media requests (1 when the cell
// saw no media requests, so idle cells don't drag distributions).
func (s Stats) HitRatio() float64 {
	n := s.EdgeHits + s.EdgeMisses
	if n == 0 {
		return 1
	}
	return float64(s.EdgeHits) / float64(n)
}

// Add accumulates another cell's counters.
func (s *Stats) Add(o Stats) {
	s.EdgeHits += o.EdgeHits
	s.EdgeMisses += o.EdgeMisses
	s.MetroHits += o.MetroHits
	s.MetroMisses += o.MetroMisses
	s.HitBytes += o.HitBytes
	s.MissBytes += o.MissBytes
	s.OriginBytes += o.OriginBytes
	s.Rerouted += o.Rerouted
}

// Cell is one cell's edge tier: EdgeNodes caches behind a load
// balancer, a shared backhaul link for misses, and an optional metro
// cache shared with the other cells of the fleet shard. All methods
// run on the cell's simulation goroutine; the metro cache is safe to
// share because a shard folds its cells strictly sequentially.
type Cell struct {
	cfg      CacheConfig
	nodes    []*cache
	load     []float64 // cumulative bytes routed per node
	dead     []bool
	metro    *cache // nil when the metro tier is disabled
	backhaul *simnet.AccessLink

	failArmed bool // failure injection pending for this cell
	Stats     Stats
}

// Metro is one shard's metro cache, shared by the shard's cells. Safe
// without locking because a shard folds its cells strictly
// sequentially on one goroutine.
type Metro struct {
	c *cache
}

// NewCell builds a cell's edge tier. cfg must be Normalized. backhaul
// is the shared upstream link misses traverse (registered with the
// cell's simnet by the caller). metro may be nil. The caller warms the
// edge nodes via Catalog.Warm unless the cell is cold.
func NewCell(cfg CacheConfig, cellIdx int, metro *Metro, backhaul *simnet.AccessLink) *Cell {
	nodes := make([]*cache, cfg.EdgeNodes)
	for i := range nodes {
		nodes[i] = newCache(cfg.EdgeBytes, cfg.TTLSec)
	}
	var mc *cache
	if metro != nil {
		mc = metro.c
	}
	return &Cell{
		cfg:       cfg,
		nodes:     nodes,
		load:      make([]float64, cfg.EdgeNodes),
		dead:      make([]bool, cfg.EdgeNodes),
		metro:     mc,
		backhaul:  backhaul,
		failArmed: cfg.FailAtSec > 0 && cellIdx == cfg.FailCell,
	}
}

// NewMetro builds one shard's metro cache, or nil when the tier is
// disabled (MetroBytes == 0). MetroBytes < 0 means unlimited.
func NewMetro(cfg CacheConfig) *Metro {
	if cfg.MetroBytes == 0 {
		return nil
	}
	capBytes := cfg.MetroBytes
	if capBytes < 0 {
		capBytes = 0 // cache treats <= 0 as unlimited
	}
	return &Metro{c: newCache(capBytes, cfg.TTLSec)}
}

// checkFail applies the configured edge-node failure once its virtual
// time arrives: node 0 dies, its cache content is lost, and sessions
// pinned to it re-route on their next request.
//
//vodlint:hotpath
func (c *Cell) checkFail(now float64) {
	if c.failArmed && now >= c.cfg.FailAtSec {
		c.failArmed = false
		c.dead[0] = true
		c.nodes[0].drop()
	}
}

// route scores the live edge nodes and returns the best for a member.
// Score = cumulative routed bytes minus a locality bias toward the
// member's home node (member % nodes); lowest score wins, ties go to
// the lowest index, so routing is deterministic. Returns -1 when every
// node is dead (callers fall back to the pure origin path).
//
//vodlint:hotpath
func (c *Cell) route(member int) int {
	const localityBias = 32 << 20 // bytes; keeps small loads sticky to home
	home := member % len(c.nodes)
	best, bestScore := -1, 0.0
	for n := range c.nodes {
		if c.dead[n] {
			continue
		}
		score := c.load[n]
		if n == home {
			score -= localityBias
		}
		if best == -1 || score < bestScore {
			best, bestScore = n, score
		}
	}
	return best
}

// Client binds one session (or cohort member / background flow) to the
// cell's tier and implements Resolver. The zero node assignment is
// lazy: the balancer routes on the first media request and again
// whenever the assigned node has died.
type Client struct {
	cell   *Cell
	member int
	node   int
	routed bool
}

// NewClient returns the resolver for one session. member disambiguates
// locality across the cell's population (fleet passes the member
// index).
func (c *Cell) NewClient(member int) *Client {
	return &Client{cell: c, member: member, node: -1}
}

// Resolve classifies one media request. Edge hit: served at edge rate,
// Route{}. Edge miss: admitted at the node, then metro lookup/admit;
// the response traverses the shared backhaul and pays the metro or
// origin RTT as extra first-byte latency.
//
//vodlint:hotpath
func (cl *Client) Resolve(now float64, obj Object, size float64) Route {
	c := cl.cell
	c.checkFail(now)
	if !cl.routed || c.dead[cl.node] {
		n := c.route(cl.member)
		if n < 0 {
			// Every edge node is dead: pure origin path.
			c.Stats.EdgeMisses++
			c.Stats.MissBytes += size
			c.Stats.OriginBytes += size
			return Route{ExtraLatency: c.cfg.OriginRTTSec, Upstream: c.backhaul}
		}
		if cl.routed {
			c.Stats.Rerouted++
		}
		cl.node, cl.routed = n, true
	}
	c.load[cl.node] += size
	node := c.nodes[cl.node]
	if node.lookup(now, obj) {
		c.Stats.EdgeHits++
		c.Stats.HitBytes += size
		return Route{}
	}
	c.Stats.EdgeMisses++
	c.Stats.MissBytes += size
	node.admit(now, obj, size)
	lat := c.cfg.OriginRTTSec
	if c.metro != nil {
		if c.metro.lookup(now, obj) {
			c.Stats.MetroHits++
			lat = c.cfg.MetroRTTSec
		} else {
			c.Stats.MetroMisses++
			c.Stats.OriginBytes += size
			c.metro.admit(now, obj, size)
		}
	} else {
		c.Stats.OriginBytes += size
	}
	return Route{ExtraLatency: lat, Upstream: c.backhaul}
}

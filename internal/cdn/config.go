package cdn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CacheConfig parameterizes the edge-cache tier for one fleet run. The
// zero value means "no cache tier" — requests go straight to the edge
// link exactly as before the tier existed. All fields are part of the
// fleet determinism contract: they join cell fingerprints and the
// report's config echo.
type CacheConfig struct {
	// EdgeBytes is the per-edge-node capacity in bytes. <= 0 means
	// unlimited (every admitted object fits forever).
	EdgeBytes float64 `json:"edgeBytes"`
	// MetroBytes is the per-shard metro cache capacity in bytes.
	// 0 disables the metro tier (edge misses go straight to origin),
	// -1 means unlimited, > 0 is a byte cap.
	MetroBytes float64 `json:"metroBytes"`
	// TTLSec is the freshness lifetime of a cached object on the
	// virtual clock. <= 0 means objects never expire.
	TTLSec float64 `json:"ttlSec"`
	// EdgeNodes is the number of edge nodes per cell the balancer
	// routes across. <= 0 defaults to 4.
	EdgeNodes int `json:"edgeNodes"`
	// BackhaulMbps is the shared cell backhaul capacity that cache
	// misses traverse. <= 0 defaults to 200 Mbps.
	BackhaulMbps float64 `json:"backhaulMbps"`
	// MetroRTTSec is the extra first-byte latency of a metro hit.
	// <= 0 defaults to 20 ms.
	MetroRTTSec float64 `json:"metroRTTSec"`
	// OriginRTTSec is the extra first-byte latency of an origin fetch.
	// <= 0 defaults to 80 ms.
	OriginRTTSec float64 `json:"originRTTSec"`
	// ColdCells names cells whose caches start empty instead of warm
	// ("0-15,40" syntax). Empty means every cell starts warm.
	ColdCells string `json:"coldCells,omitempty"`
	// FailCell / FailAtSec inject an edge-node failure: at virtual
	// time FailAtSec, node 0 of cell FailCell dies (cache dropped,
	// sessions re-route on their next request). Active iff FailAtSec > 0.
	FailCell  int     `json:"failCell,omitempty"`
	FailAtSec float64 `json:"failAtSec,omitempty"`
}

// Defaults for unset knobs.
const (
	defaultEdgeNodes    = 4
	defaultBackhaulMbps = 200
	defaultMetroRTTSec  = 0.02
	defaultOriginRTTSec = 0.08
)

// Normalized fills defaulted fields so that two specs that mean the
// same run fingerprint and echo identically.
func (c CacheConfig) Normalized() CacheConfig {
	if c.EdgeNodes <= 0 {
		c.EdgeNodes = defaultEdgeNodes
	}
	if c.BackhaulMbps <= 0 {
		c.BackhaulMbps = defaultBackhaulMbps
	}
	if c.MetroRTTSec <= 0 {
		c.MetroRTTSec = defaultMetroRTTSec
	}
	if c.OriginRTTSec <= 0 {
		c.OriginRTTSec = defaultOriginRTTSec
	}
	return c
}

// Transparent reports whether this config cannot change any request's
// service: unlimited warm edge caches that never expire, no cold
// cells and no failure injection mean every media request is an edge
// hit, which is byte-identical to having no cache tier at all. fleet
// normalizes a transparent config to nil so the report bytes match
// the cache-disabled tree exactly.
func (c CacheConfig) Transparent() bool {
	return c.EdgeBytes <= 0 && c.TTLSec <= 0 && c.ColdCells == "" && c.FailAtSec <= 0
}

// ParseCacheSpec parses the -cache flag syntax:
//
//	edge:512MiB,metro:8GiB,ttl=6h,nodes=4,backhaul=200,mrtt=20ms,ortt=80ms
//
// Every clause is optional; "edge:0" / "metro:-1" mean unlimited,
// "metro:0" disables the metro tier.
func ParseCacheSpec(s string) (CacheConfig, error) {
	var c CacheConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, ":")
		if !ok {
			key, val, ok = strings.Cut(part, "=")
		}
		if !ok {
			return c, fmt.Errorf("cache spec %q: clause %q needs key:value", s, part)
		}
		var err error
		switch key {
		case "edge":
			c.EdgeBytes, err = parseBytes(val)
		case "metro":
			c.MetroBytes, err = parseBytes(val)
		case "ttl":
			c.TTLSec, err = parseDuration(val)
		case "nodes":
			c.EdgeNodes, err = strconv.Atoi(val)
		case "backhaul":
			c.BackhaulMbps, err = strconv.ParseFloat(val, 64)
		case "mrtt":
			c.MetroRTTSec, err = parseDuration(val)
		case "ortt":
			c.OriginRTTSec, err = parseDuration(val)
		default:
			return c, fmt.Errorf("cache spec %q: unknown key %q", s, key)
		}
		if err != nil {
			return c, fmt.Errorf("cache spec %q: clause %q: %v", s, part, err)
		}
	}
	return c, nil
}

// ParseFailSpec parses the -cachefail flag syntax: "cell=3,t=120s".
func ParseFailSpec(s string, c *CacheConfig) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("fail spec %q: clause %q needs key=value", s, part)
		}
		var err error
		switch key {
		case "cell":
			c.FailCell, err = strconv.Atoi(val)
		case "t":
			c.FailAtSec, err = parseDuration(val)
		default:
			return fmt.Errorf("fail spec %q: unknown key %q", s, key)
		}
		if err != nil {
			return fmt.Errorf("fail spec %q: clause %q: %v", s, part, err)
		}
	}
	if c.FailAtSec <= 0 {
		return fmt.Errorf("fail spec %q: needs t=<time> > 0", s)
	}
	return nil
}

// ColdSet materializes ColdCells as a membership set (nil when every
// cell starts warm).
func (c CacheConfig) ColdSet() (map[int]bool, error) {
	if c.ColdCells == "" {
		return nil, nil
	}
	cells, err := ParseCellSet(c.ColdCells)
	if err != nil {
		return nil, err
	}
	set := make(map[int]bool, len(cells))
	for _, i := range cells {
		set[i] = true
	}
	return set, nil
}

// ParseCellSet parses "0-15,40,64-79" into a sorted, deduplicated
// slice of cell indices.
func ParseCellSet(s string) ([]int, error) {
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi, isRange := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("cell set %q: bad index %q", s, lo)
		}
		b := a
		if isRange {
			b, err = strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("cell set %q: bad range %q", s, part)
			}
		}
		for i := a; i <= b; i++ {
			seen[i] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}

// parseBytes accepts "512MiB", "8GiB", "64KiB", "1024" (raw bytes),
// plus decimal "MB"/"GB"/"KB" forms, and the sentinels 0 / -1.
func parseBytes(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1024, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1024*1024, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1024*1024*1024, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1e3, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1e6, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "GB"):
		mult, s = 1e9, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return -1, nil
	}
	return v * mult, nil
}

// parseDuration accepts "6h", "120s", "90m", "20ms" or a bare number
// of seconds.
func parseDuration(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, s = 1e-3, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "h"):
		mult, s = 3600, strings.TrimSuffix(s, "h")
	case strings.HasSuffix(s, "m"):
		mult, s = 60, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "s"):
		s = strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

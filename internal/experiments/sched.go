package experiments

import (
	"context"
	"runtime"
)

// scheduler is the single process-wide concurrency bound for experiment
// work. Before it existed the engine ran two independent worker pools —
// RunAll started GOMAXPROCS experiment workers and every sweep inside an
// experiment started GOMAXPROCS more — so nested fan-out could put
// GOMAXPROCS² goroutines on GOMAXPROCS cores. Now both levels draw from
// one semaphore:
//
//   - RunAll workers block in acquire() before running an experiment and
//     hold the slot for its duration (sweeps inside it run under that
//     slot).
//   - sweep helper goroutines are spawned only for slots obtained with
//     the non-blocking tryAcquire(), and the sweeping caller always
//     works inline under the slot it already holds — so a sweep can
//     never deadlock waiting for slots held by its ancestors, it just
//     degrades to the serial loop.
//
// The number of concurrently executing workers is therefore bounded by
// the scheduler capacity (+1 when sweep is entered by a caller that
// holds no slot, e.g. a direct experiment call from a test), no matter
// how deeply sweeps nest.
type scheduler struct {
	slots chan struct{}
}

func newScheduler(capacity int) *scheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &scheduler{slots: make(chan struct{}, capacity)}
}

// sched is the process-wide scheduler. Tests swap it to control
// parallelism independently of the machine's core count.
var sched = newScheduler(runtime.GOMAXPROCS(0))

// acquire blocks until a slot is free or ctx is done.
func (s *scheduler) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes a slot only if one is free right now.
func (s *scheduler) tryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *scheduler) release() { <-s.slots }

func (s *scheduler) capacity() int { return cap(s.slots) }

// Command vodfleet runs a population-scale streaming simulation: many
// clients, drawn from a seeded workload model, streaming the paper's 12
// service models through shared cellular edge links (internal/fleet).
// It prints per-service QoE CDFs and a cell-level fairness/utilization
// table, and can emit the full report as deterministic JSON — for a
// given seed the bytes are identical regardless of -workers.
//
// Usage:
//
//	vodfleet -sessions 10000 -seed 1
//	vodfleet -sessions 2000 -services H1,D2,S1 -edge-mbps 25
//	vodfleet -sessions 10000 -seed 1 -workers 8 -json report.json
//	vodfleet -sessions 100000 -hotspot 0.8 -fidelity 0.02 -cpuprofile cpu.pprof
//
// Sweep mode re-runs the fleet over a list of values for one field,
// sharing a cell-granular cache across the runs: cells whose workload
// inputs repeat between sweep points are merged from cache instead of
// re-simulated (the report bytes are identical either way). Per-run
// cache hit/build/skip counters print to stderr:
//
//	vodfleet -sessions 100000 -sweep hotspot=0,0.2,0.4,0.6,0.8
//	vodfleet -sessions 20000 -sweep edge-mbps=10,20,40 -json report.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cdn"
	"repro/internal/fleet"
)

// applySweepField sets one sweepable config field from its flag name.
// Only fields that leave most cells' workload inputs unchanged are
// worth sweeping warm (hotspot, fidelity, edge-mbps, ...), but any
// numeric field is accepted — a cold field simply builds every cell.
func applySweepField(cfg fleet.Config, field string, v float64) (fleet.Config, error) {
	switch field {
	case "hotspot":
		cfg.Hotspot = v
	case "edge-mbps":
		cfg.EdgeMbps = v
	case "fidelity":
		cfg.FidelityFull = v
	case "abandon-prob":
		cfg.AbandonProb = v
	case "abandon-mean":
		cfg.AbandonMeanSec = v
	case "watch":
		cfg.WatchSec = v
	case "window":
		cfg.ArrivalWindowSec = v
	case "sessions":
		cfg.Sessions = int(v)
	case "cell-size":
		cfg.ClientsPerCell = int(v)
	case "seed":
		cfg.Seed = int64(v)
	default:
		return cfg, fmt.Errorf("unknown sweep field %q", field)
	}
	return cfg, nil
}

// runSweep executes one fleet run per sweep value over a shared cell
// cache and prints the per-run cache delta. JSON output (when requested
// with a file path) lands in one file per run, the sweep point appended
// to the name.
func runSweep(cfg fleet.Config, spec string, workers int, jsonOut string, quiet bool, plotW, plotH int) {
	field, vals, ok := strings.Cut(spec, "=")
	if !ok {
		log.Fatalf("vodfleet: -sweep wants field=v1,v2,... (got %q)", spec)
	}
	field = strings.TrimSpace(field)
	cache := fleet.NewCellCache()
	prev := cache.Stats()
	for _, raw := range strings.Split(vals, ",") {
		raw = strings.TrimSpace(raw)
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			log.Fatalf("vodfleet: sweep value %q: %v", raw, err)
		}
		runCfg, err := applySweepField(cfg, field, v)
		if err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		start := time.Now()
		rep, err := fleet.RunWithOptions(context.Background(), runCfg,
			fleet.RunOptions{Workers: workers, CellCache: cache})
		if err != nil {
			log.Fatalf("vodfleet: %s=%s: %v", field, raw, err)
		}
		s := cache.Stats()
		hits, builds, skipped := s.Hits-prev.Hits, s.Builds-prev.Builds, s.Skipped-prev.Skipped
		prev = s
		total := hits + builds + skipped
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(hits) / float64(total)
		}
		fmt.Fprintf(os.Stderr,
			"vodfleet: sweep %s=%s: %d sessions, %d cells, %d cached / %d simulated / %d focus (%.0f%% warm), %.1fs\n",
			field, raw, rep.Sessions, rep.Cells, hits, builds, skipped, pct, time.Since(start).Seconds())
		if jsonOut != "" {
			b, err := rep.JSON()
			if err != nil {
				log.Fatalf("vodfleet: marshal report: %v", err)
			}
			if jsonOut == "-" {
				os.Stdout.Write(b)
			} else {
				name := fmt.Sprintf("%s.%s=%s", jsonOut, field, raw)
				if err := os.WriteFile(name, b, 0o644); err != nil {
					log.Fatalf("vodfleet: %v", err)
				}
			}
		}
		if !quiet {
			fmt.Printf("== %s = %s ==\n", field, raw)
			fmt.Println(rep.Summary().String())
			fmt.Println(rep.CellTable().String())
			if t := rep.CDNTable(); t != nil {
				fmt.Println(t.String())
			}
			fmt.Print(rep.CDFPlots(plotW, plotH))
		}
	}
}

func main() {
	log.SetFlags(0)
	// Batch workload: one run, throughput-bound, modest live heap. The
	// default GC cadence (GOGC=100) spends ~8% of the run in mark/write
	// barriers at million-session scale; 400 cuts that 4x while the
	// -memceiling-mb gate still bounds the live heap. GOGC set in the
	// environment still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	sessions := flag.Int("sessions", 1000, "population size")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent cells (never affects output bytes)")
	window := flag.Float64("window", 0, "arrival window in seconds (0 = default 600)")
	watch := flag.Float64("watch", 0, "full watch duration in seconds (0 = default 120)")
	abandonProb := flag.Float64("abandon-prob", 0, "early-abandon probability (0 = default 0.35, negative = none)")
	abandonMean := flag.Float64("abandon-mean", 0, "mean abandoned watch duration in seconds (0 = default 45)")
	cellSize := flag.Int("cell-size", 0, "clients per shared edge link (0 = default 24)")
	edgeMbps := flag.Float64("edge-mbps", 0, "shared edge budget per cell in Mbit/s (0 = default 40)")
	fidelity := flag.Float64("fidelity", 0, "fraction of sessions at full player fidelity (0 = default 1, negative = all background tier)")
	focus := flag.Int("focus", 0, "retain full per-session records for this many seeded focus members")
	hotspot := flag.Float64("hotspot", 0, "fraction of the population concentrated on cell 0 (flash crowd; 0 = balanced cells)")
	cacheSpec := flag.String("cache", "", "edge-cache tier spec, e.g. edge:512MiB,metro:8GiB,ttl=6h (empty = no cache tier)")
	cacheFail := flag.String("cachefail", "", "edge-node failure injection, e.g. cell=3,t=120s (requires -cache)")
	coldCells := flag.String("coldcells", "", "cells whose caches start cold, e.g. 0-15,40 (requires -cache)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	memCeiling := flag.Int("memceiling-mb", 0, "fail if live heap exceeds this many MiB during the run (0 = no ceiling)")
	svcList := flag.String("services", "", "comma-separated service mix (empty = all 12; repeats weight the mix)")
	jsonOut := flag.String("json", "", "write the full JSON report to this file (- for stdout)")
	sweep := flag.String("sweep", "", "sweep one field over comma-separated values (field=v1,v2,...), sharing a cell-granular cache across runs")
	quiet := flag.Bool("q", false, "suppress the text summary and plots")
	noCache := flag.Bool("nocache", false, "bypass the in-process report memo")
	plotW := flag.Int("plot-width", 72, "CDF plot width")
	plotH := flag.Int("plot-height", 14, "CDF plot height")
	flag.Parse()

	cfg := fleet.Config{
		Seed:             *seed,
		Sessions:         *sessions,
		ArrivalWindowSec: *window,
		WatchSec:         *watch,
		AbandonProb:      *abandonProb,
		AbandonMeanSec:   *abandonMean,
		ClientsPerCell:   *cellSize,
		EdgeMbps:         *edgeMbps,
		FidelityFull:     *fidelity,
		FocusSessions:    *focus,
		Hotspot:          *hotspot,
	}
	if *svcList != "" {
		for _, s := range strings.Split(*svcList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Services = append(cfg.Services, s)
			}
		}
	}
	if *cacheSpec != "" {
		cc, err := cdn.ParseCacheSpec(*cacheSpec)
		if err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		cc.ColdCells = *coldCells
		if *cacheFail != "" {
			if err := cdn.ParseFailSpec(*cacheFail, &cc); err != nil {
				log.Fatalf("vodfleet: %v", err)
			}
		}
		if _, err := cc.ColdSet(); err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		cfg.Cache = &cc
	} else if *cacheFail != "" || *coldCells != "" {
		log.Fatalf("vodfleet: -cachefail and -coldcells need -cache")
	}

	// The heap ceiling is a self-gate for CI: a background sampler
	// watches the live heap and aborts the process the moment the
	// memory contract is broken, instead of trusting an external RSS
	// probe that varies with the allocator and the OS.
	var peakHeap atomic.Uint64
	if *memCeiling > 0 {
		limit := uint64(*memCeiling) << 20
		//vodlint:allow goctx — process-lifetime heap sampler: dies with the run, nothing to cancel
		go func() {
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap.Load() {
					peakHeap.Store(ms.HeapAlloc)
				}
				if ms.HeapAlloc > limit {
					log.Fatalf("vodfleet: live heap %.1f MiB exceeded the %d MiB ceiling",
						float64(ms.HeapAlloc)/(1<<20), *memCeiling)
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
	}

	// Profiling passthrough (same contract as vodbench) so hotspot runs
	// can be profiled directly. Fatal error paths skip the writes — the
	// profiles only matter for runs that complete.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodfleet: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vodfleet: %v\n", err)
		}
	}()

	if *sweep != "" {
		runSweep(cfg, *sweep, *workers, *jsonOut, *quiet, *plotW, *plotH)
		return
	}

	run := fleet.RunCached
	if *noCache {
		run = fleet.Run
	}
	start := time.Now()
	rep, err := run(context.Background(), cfg, *workers)
	if err != nil {
		log.Fatalf("vodfleet: %v", err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vodfleet: %d sessions in %d cells simulated in %.1fs\n",
			rep.Sessions, rep.Cells, time.Since(start).Seconds())
	}
	if *memCeiling > 0 {
		fmt.Fprintf(os.Stderr, "vodfleet: peak live heap %.1f MiB (ceiling %d MiB)\n",
			float64(peakHeap.Load())/(1<<20), *memCeiling)
	}

	if *jsonOut != "" {
		b, err := rep.JSON()
		if err != nil {
			log.Fatalf("vodfleet: marshal report: %v", err)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			log.Fatalf("vodfleet: %v", err)
		}
	}
	if *quiet {
		return
	}
	fmt.Println(rep.Summary().String())
	fmt.Println(rep.CellTable().String())
	if t := rep.CDNTable(); t != nil {
		fmt.Println(t.String())
	}
	fmt.Print(rep.CDFPlots(*plotW, *plotH))
}

// Package a exercises goctx: goroutines with and without a
// cancellation or join path.
package a

import (
	"context"
	"sync"
)

func work() {}

type gate struct{}

func (gate) Acquire() {}
func (gate) Release() {}

func leaks() {
	go func() { // want `goroutine launched without a cancellation path`
		for {
			work()
		}
	}()
}

func leaksNamed() {
	go spin() // want `goroutine launched without a cancellation path`
}

func spin() {
	for {
		work()
	}
}

func watchesContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

func passesContext(ctx context.Context) {
	go worker(ctx) // a context argument is lifecycle evidence even without the body
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

func joinsWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func watchesChannel(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

func holdsSemaphore(g gate) {
	g.Acquire()
	go func() {
		defer g.Release()
		work()
	}()
}

func namedWithBody(stop chan struct{}) {
	go drain(stop) // drain's body receives: silent
}

func drain(stop chan struct{}) {
	<-stop
}

func suppressed() {
	//vodlint:allow goctx — fixture: process-lifetime background loop
	go func() {
		for {
			work()
		}
	}()
}

package simnet

import (
	"math"
	"sort"
)

// The cell engine: EngineCell's anchored-flow event loop.
//
// A fleet cell is many mostly-idle clients behind one constant-capacity
// edge link, each throttled by its own 1 Hz cellular access trace. The
// scan engine (scanStepOnce) is already O(F) per event, but it must wake
// at every profile sample boundary — including the edge profile's, whose
// samples never change — and it materializes every flow's delivery at
// every event, splitting each constant-rate stretch into one float
// accumulation per boundary.
//
// The cell engine removes both costs while staying event-exact:
//
//   - Flow progress is anchored: each flowing transfer carries
//     (remaining-at-anchor, anchor time aT, rate, finish time finishT)
//     and is materialized only when its own rate actually changes, on
//     abandonment, or at completion — where the exact residual is folded
//     so per-flow conservation is precise to the last bit. Between
//     rate changes, any number of skipped boundaries collapse into a
//     single rate·Δt multiply.
//
//   - Wake-ups use netem's NextChange instead of NextBoundary, and the
//     next-change instant is cached per link (l.nextChg), across links
//     (n.linksNextChg) and for the edge (n.edgeNextChg), so the
//     steady-state event does one float compare instead of two cursor
//     walks per link. A sample boundary where the profile value does
//     not change generates no event; the fleet's constant edge profile
//     contributes no events at all, and an idle cell advances straight
//     to its next arrival.
//
//   - Each flowing transfer caches its effective cap (tr.cap), and the
//     engine tracks exactly which caps changed since the last rate
//     assignment (n.dirtyFlows). An event that changed nothing does no
//     allocation work at all; an event that changed some caps — a trace
//     sample flip, a window doubling, a flow arriving at or leaving a
//     shared access link — re-rates only the changed flows while every
//     flow is cap-bound below the edge capacity (rates are independent
//     in that regime: rate_i = cap_i, so arrivals and departures leave
//     the other links' flows untouched); only a capacity change or
//     leaving the all-capped regime reruns the full water-filling.
//
//   - Slow-start doublings are applied lazily. A doubling only matters
//     when the window is the flow's binding constraint (capBps <= cap);
//     a link- or static-bound connection generates no doubling events —
//     its window is synced forward in one loop whenever its cap is next
//     recomputed, and fully at completion, so the window trajectory is
//     identical to the eager engine's.
//
//   - The event loop is fluid: cellStepOnce consumes rate-boundary
//     events (trace flips, doublings, arrivals) internally and only
//     returns to Step's dispatch loop on a completion batch, the
//     deadline, or a flow-count handoff to the virtual-time engine.
//
// Rates themselves are computed by the same progressive water-filling as
// the scan engine (allocate), with the all-capped fast path: when every
// flowing connection is capped and the caps sum below the edge capacity
// — the common state of a cell, where the access links are the
// bottleneck — max-min assigns every flow exactly its cap, no sort
// needed.
//
// The rate trajectory rate_i(t) is identical to the eager formulation;
// only the instants where progress is folded into `remaining` differ
// (fewer, longer constant-rate stretches), so completion times agree
// with the scan engine within float accumulation order — the same
// tolerance contract the vtime engine carries.
//
// Above vtimeEnter flowing transfers the network hands the flows to the
// virtual-time engine exactly as EngineAuto does (hotspot cells), and the
// cell engine takes them back below vtimeExit.

// enterCell turns the anchored engine on: every flowing transfer is
// re-anchored at the current instant and the next event recomputes rates.
// Called when the engine starts and whenever the virtual-time engine
// hands the flows back.
func (n *Network) enterCell() {
	for _, tr := range n.flowing {
		tr.aT = n.now
	}
	n.cellDirty = true
	n.edgeNextChg = n.now          // force a capacity refresh at the next event
	n.linksNextChg = n.now         // force a link-sample refresh at the next event
	n.capSum, n.numUncapped = 0, 0 // rebuilt by the forced full realloc
	n.cmode = true
}

// exitCell materializes every anchored flow and syncs its window state,
// then turns the engine off, so `remaining`, capBps and nextGrow are all
// current when another engine (enterVTime) takes over.
func (n *Network) exitCell() {
	for _, tr := range n.flowing {
		tr.Conn.syncGrow(n.now)
		n.cellMaterialize(tr)
	}
	n.allocDirty = true
	n.cmode = false
}

// syncGrow applies every window doubling due at or before now. The
// doubling schedule is a pure function of time (nextGrow + k·RTT until
// steadyCap), so applying it lazily here produces the exact capBps the
// eager per-event grow loop would have.
//
//vodlint:hotpath — window sync: a few iterations, only when a cap is recomputed
func (c *Conn) syncGrow(now float64) {
	for c.nextGrow <= now && !math.IsInf(c.capBps, 1) {
		c.capBps *= 2
		c.nextGrow += c.net.cfg.RTT
		if c.capBps >= c.net.steadyCap {
			c.capBps = math.Inf(1)
		}
	}
}

// syncGrowBefore applies the doublings strictly before t. Completion
// uses it: the eager engine removed a completed flow from the flowing
// set before its end-of-event grow pass, so a doubling scheduled exactly
// at the completion instant never applied.
func (c *Conn) syncGrowBefore(t float64) {
	for c.nextGrow < t && !math.IsInf(c.capBps, 1) {
		c.capBps *= 2
		c.nextGrow += c.net.cfg.RTT
		if c.capBps >= c.net.steadyCap {
			c.capBps = math.Inf(1)
		}
	}
}

// cellMaterialize folds a flow's anchored progress into `remaining` and
// the delivered total, and re-anchors it at the current instant.
//
//vodlint:hotpath — per-flow fold: runs once per rate change, not per event
func (n *Network) cellMaterialize(tr *Transfer) {
	if dt := n.now - tr.aT; dt > 0 {
		d := tr.rate * dt
		if d > tr.remaining {
			d = tr.remaining
		}
		tr.remaining -= d
		n.delivered += d
	}
	tr.aT = n.now
}

// cellRecompute refreshes one flow's cached effective cap (the caller
// has already synced the window) and queues the flow for re-rating if
// the cap actually changed.
//
//vodlint:hotpath — cap memo refresh: runs per affected flow per cap change
func (n *Network) cellRecompute(tr *Transfer) {
	if c := tr.Conn.effCap(); c != tr.cap { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed cap value
		n.cellCapSub(tr.cap)
		n.cellCapAdd(c)
		tr.cap = c
		n.dirtyFlows = append(n.dirtyFlows, tr)
	}
}

// cellCapAdd and cellCapSub keep the running cap sum and the uncapped
// count in step with every cached-cap write, so the all-capped gate is
// O(1) instead of a scan per re-rate event.
//
//vodlint:hotpath — cap-sum bookkeeping: two ops per cap change
func (n *Network) cellCapAdd(c float64) {
	if math.IsInf(c, 1) {
		n.numUncapped++
	} else {
		n.capSum += c
	}
}

//vodlint:hotpath — cap-sum bookkeeping: two ops per cap change
func (n *Network) cellCapSub(c float64) {
	if math.IsInf(c, 1) {
		n.numUncapped--
	} else {
		n.capSum -= c
	}
}

// cellCappedFast is the O(1) all-capped gate over the running sum. The
// running sum drifts from the exact flowing-order sum only by float
// accumulation dust (and every full realloc resets it), so away from
// the capacity boundary it decides exactly as the scan would; within a
// ±0.1% band of the boundary it defers to the exact scan.
//
//vodlint:hotpath — fast-path gate: O(1) per cap change
func (n *Network) cellCappedFast() bool {
	if n.numUncapped != 0 {
		return false
	}
	c := n.lastCapacity
	if n.capSum <= 0.999*c {
		return true
	}
	if n.capSum > 1.001*c {
		return false
	}
	return n.cellAllCapped()
}

// cellTouchLink refreshes the cached caps of every flow on tr's access
// link and on its upstream link (windows synced first), queueing the
// changed ones for re-rating. insertFlowing and removeFlowing call it:
// a flow joining or leaving a link changes its siblings' even shares —
// and nothing else, in the all-capped regime. A linkless flow only
// touches itself. A flow carried by both lists of a touched link is
// recomputed twice; the second pass sees an unchanged cap and is a
// no-op.
//
//vodlint:hotpath — flow-set change: runs once per transfer arrival/departure
func (n *Network) cellTouchLink(tr *Transfer) {
	al, ul := tr.Conn.access, tr.upstream
	if al == nil && ul == nil {
		if tr.pos >= 0 {
			tr.Conn.syncGrow(n.now)
			n.cellRecompute(tr)
		}
		return
	}
	if al != nil {
		n.cellTouchMembers(al)
	}
	if ul != nil && ul != al {
		n.cellTouchMembers(ul)
	}
}

//vodlint:hotpath — flow-set change: one pass over a touched link's flows
func (n *Network) cellTouchMembers(l *AccessLink) {
	for _, m := range l.members {
		m.Conn.syncGrow(n.now)
		n.cellRecompute(m)
	}
	for _, m := range l.upMembers {
		m.Conn.syncGrow(n.now)
		n.cellRecompute(m)
	}
}

// cellFinish refreshes one flow's precomputed completion instant under
// its current rate.
//
//vodlint:hotpath — finish-time refresh: runs once per flow per rate change
func (n *Network) cellFinish(tr *Transfer) {
	const epsBytes = 1e-6
	switch {
	case tr.remaining <= epsBytes:
		tr.finishT = n.now
	case tr.rate > 0:
		tr.finishT = n.now + tr.remaining/tr.rate
	default:
		tr.finishT = math.Inf(1)
	}
}

// cellAllCapped reports whether every flowing transfer is capped with
// the caps summing below the edge capacity — the regime where max-min
// assigns every flow exactly its cap. The sum is recomputed in flowing
// order each time so the gate never drifts from what a full realloc
// would decide.
//
//vodlint:hotpath — fast-path gate: one add per flow per cap change
func (n *Network) cellAllCapped() bool {
	sum := 0.0
	for _, tr := range n.flowing {
		if math.IsInf(tr.cap, 1) {
			return false
		}
		sum += tr.cap
	}
	return sum <= n.lastCapacity
}

// cellReallocFull re-anchors every flowing transfer at n.now, syncs the
// windows, recomputes every cached cap in one pass, reruns the max-min
// rate assignment under the current capacity, and refreshes each flow's
// completion instant.
//
//vodlint:hotpath — cell-engine water-filling: runs on capacity changes and regime shifts
func (n *Network) cellReallocFull() {
	now := n.now
	sum := 0.0
	uncapped := 0
	for _, tr := range n.flowing {
		c := tr.Conn
		if c.nextGrow <= now && !math.IsInf(c.capBps, 1) {
			c.syncGrow(now)
		}
		cp := c.effCap()
		tr.cap = cp
		if math.IsInf(cp, 1) {
			uncapped++
		} else {
			sum += cp
		}
		n.cellMaterialize(tr)
	}
	n.capSum, n.numUncapped = sum, uncapped
	allCapped := uncapped == 0
	// Fast path: every connection capped (slow start, static cap, or an
	// access-link share) with the caps summing below the edge capacity —
	// the cell steady state, where access links are the bottleneck.
	// Progressive water-filling assigns ascending caps before shares ever
	// bind (cap_k ≤ Σcaps/N_k ≤ remaining/N_k by induction), so every
	// flow gets exactly its cap and no sort is needed.
	if allCapped && sum <= n.lastCapacity {
		for _, tr := range n.flowing {
			tr.rate = tr.cap
		}
		n.ratesAreCaps = true
	} else {
		n.cellAllocate(n.lastCapacity)
		n.ratesAreCaps = false
	}
	for _, tr := range n.flowing {
		n.cellFinish(tr)
	}
}

// cellAllocate is allocate with the effective caps read from the
// tr.cap memo the caller just refreshed (cellReallocFull) instead of
// recomputed per flow: same paths, same arithmetic, same order.
//
//vodlint:hotpath — cell-engine water-filling: runs when the all-capped fast path does not apply
func (n *Network) cellAllocate(capacity float64) {
	flowing := n.flowing

	if len(flowing) == 1 {
		tr := flowing[0]
		r := tr.cap
		if r > capacity {
			r = capacity
		}
		if r < 0 {
			r = 0
		}
		tr.rate = r
		return
	}

	// Steady-state fast path: all uncapped — shares assign in connection
	// order exactly as the stable-sorted general path would.
	if len(flowing) <= smallSortLen {
		uncapped := true
		for _, tr := range flowing {
			if !math.IsInf(tr.cap, 1) {
				uncapped = false
				break
			}
		}
		if uncapped {
			remainingC := capacity
			remainingN := len(flowing)
			for _, tr := range flowing {
				r := remainingC / float64(remainingN)
				if r < 0 {
					r = 0
				}
				tr.rate = r
				remainingC -= r
				remainingN--
			}
			return
		}
	}

	items := n.items[:0]
	for _, tr := range flowing {
		items = append(items, capItem{tr, tr.cap})
	}
	if len(items) <= smallSortLen {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && items[j].cap < items[j-1].cap; j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
	} else {
		sort.Slice(items, func(i, j int) bool { return items[i].cap < items[j].cap }) //vodlint:allow hotalloc — general path only: n > 16 flows in the cell; the fast paths above stay allocation-free
	}
	remainingC := capacity
	remainingN := len(items)
	for _, it := range items {
		share := remainingC / float64(remainingN)
		r := it.cap
		if share < r {
			r = share
		}
		if r < 0 {
			r = 0
		}
		it.tr.rate = r
		remainingC -= r
		remainingN--
	}
	n.items = items
}

// cellStepOnce advances the cell engine and returns the next completion
// batch (nil when the deadline, a pending handoff to the virtual-time
// engine, or `until` arrived first). Rate-boundary events — trace
// sample flips, binding window doublings, transfer arrivals — are
// consumed inside the loop; the event set is the scan engine's minus
// the no-change profile boundaries and the doublings of windows that
// are not their flow's binding constraint.
//
//vodlint:hotpath — cell-engine event core: runs once per event across million-session fleets
func (n *Network) cellStepOnce(until float64) []*Transfer {
	for {
		// Yield to Step's autoShift at the flow-count handoff threshold:
		// the virtual-time engine takes over at the same decision point
		// the per-event dispatch loop had (after the promoting event was
		// processed here, before the next one).
		if len(n.flowing) >= vtimeEnter {
			return nil
		}
		n.promote()
		now := n.now

		// Refresh access-link samples whose cached change instant has
		// arrived, gated by the cached minimum across links. All reads
		// happen at n.now and each link is visited exactly once, so the
		// refresh is order-independent; a changed sample value recomputes
		// the member flows' caps (windows synced first).
		if now >= n.linksNextChg {
			next := math.Inf(1)
			for _, l := range n.links {
				if now >= l.nextChg {
					r, nxt := l.cursor.ValueNext(now)
					// Exact comparison on purpose: an unchanged piecewise-
					// constant sample means the memoized rates are still
					// valid; any real profile change flips the sample value
					// exactly (same idiom as the scan engine).
					if r != l.rateBps { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed sample value
						l.rateBps = r
						if !n.cellDirty {
							n.cellTouchMembers(l)
						}
					}
					l.nextChg = nxt
				}
				if l.nextChg < next {
					next = l.nextChg
				}
			}
			n.linksNextChg = next
		}

		// Apply due window doublings that can change a cap: only a window
		// that is its flow's binding constraint (capBps <= cap) generates
		// wake-ups; every other window syncs lazily. Skipped entirely
		// when a full realloc is already scheduled — it syncs and
		// recomputes everything.
		if !n.cellDirty {
			for _, tr := range n.flowing {
				c := tr.Conn
				if c.nextGrow <= now && !math.IsInf(c.capBps, 1) && c.capBps <= tr.cap {
					c.syncGrow(now)
					n.cellRecompute(tr)
				}
			}
		}

		// Edge capacity, through the same cached change instant scheme.
		// The fleet's constant edge never fires this after the first
		// event.
		if now >= n.edgeNextChg {
			v, nxt := n.cursor.ValueNext(now)
			// Exact comparison on purpose: an unchanged piecewise-constant
			// capacity yields bit-identical rates (same idiom as the scan
			// engine's memo).
			if c := v / 8; c != n.lastCapacity { //vodlint:allow floateq — memo invalidation on a stored, never-recomputed sample value
				n.lastCapacity = c
				n.cellDirty = true
			}
			n.edgeNextChg = nxt
		}

		// Idle cell: advance straight to the next arrival (or the
		// deadline). Dirty state survives to the event where flows exist
		// again.
		if len(n.flowing) == 0 {
			next := until
			if k := n.pendHeap.MinKey(); k < next {
				next = k
			}
			n.now = next
			if next >= until {
				return nil
			}
			continue
		}

		// Re-rate: full water-filling when the capacity changed or the
		// last assignment was not cap-exact; cap-only re-rating of just
		// the changed flows while every flow is cap-bound under the
		// capacity (their rates are independent there); nothing at all
		// when nothing changed — anchors, rates and finish times all
		// stay valid.
		switch {
		case n.cellDirty:
			n.cellReallocFull()
			n.cellDirty = false
			n.dirtyFlows = n.dirtyFlows[:0]
		case len(n.dirtyFlows) > 0:
			if n.ratesAreCaps && n.cellCappedFast() {
				for _, tr := range n.dirtyFlows {
					if tr.pos < 0 {
						continue // left the flowing set after being queued
					}
					n.cellMaterialize(tr)
					tr.rate = tr.cap
					n.cellFinish(tr)
				}
			} else {
				n.cellReallocFull()
			}
			n.dirtyFlows = n.dirtyFlows[:0]
		}

		// Next event bound: the deadline, a pending transfer's first
		// byte, a binding window doubling, a precomputed completion, a
		// cached link change, or a cached edge change.
		next := until
		if k := n.pendHeap.MinKey(); k < next {
			next = k
		}
		for _, tr := range n.flowing {
			c := tr.Conn
			if c.nextGrow < next && !math.IsInf(c.capBps, 1) && c.capBps <= tr.cap {
				next = c.nextGrow
			}
			if tr.finishT < next {
				next = tr.finishT
			}
		}
		if n.linksNextChg < next {
			next = n.linksNextChg
		}
		if n.edgeNextChg < next {
			next = n.edgeNextChg
		}

		tEvent := next
		if tEvent <= now {
			// Degenerate interval (floating point); nudge forward.
			tEvent = math.Nextafter(now, math.Inf(1))
		}

		completed := n.completed[:0]
		for _, tr := range n.flowing {
			if tr.finishT <= tEvent {
				// Fold the exact residual: per-flow delivery sums to Size
				// precisely, with no epsilon dust left behind.
				n.delivered += tr.remaining
				tr.remaining = 0
				tr.Done = true
				tr.Completed = tEvent
				tr.Conn.syncGrowBefore(tEvent)
				tr.Conn.cur = nil
				tr.Conn.lastActive = tEvent
				completed = append(completed, tr)
			}
		}
		n.now = tEvent
		if len(completed) > 0 {
			n.completed = completed
			for _, tr := range completed {
				n.removeFlowing(tr)
			}
			return completed
		}
		if tEvent >= until {
			return nil
		}
	}
}

// CellActive reports whether the anchored cell engine currently owns the
// live flows (exported for tests and benchmarks).
func (n *Network) CellActive() bool { return n.cmode }

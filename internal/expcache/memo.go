package expcache

import (
	"sync"
	"sync/atomic"
)

// Memo is a typed singleflight memo (the generalization of the old
// experiments.keyedOnce): the first caller for a key runs the build
// while concurrent callers for the same key block on the same cell;
// later callers return the cached value without blocking anyone on a
// different key. The map lock is held only to find or insert the cell.
//
// Both values and errors are cached forever: a failed build is NOT
// retried on the next Get. That is deliberate — every build in this
// repository is deterministic (fixed seeds, no I/O), so a failure is
// permanent and retrying would just repeat the work; callers that need
// retry semantics must use a fresh Memo. This contract is pinned by
// TestMemoErrorCachedForever.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoCell[V]

	builds atomic.Int64
	hits   atomic.Int64
	waits  atomic.Int64
}

type memoCell[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// Get returns the memoized value for key, building it on first use.
func (mo *Memo[K, V]) Get(key K, build func() (V, error)) (V, error) {
	mo.mu.Lock()
	if mo.m == nil {
		mo.m = make(map[K]*memoCell[V])
	}
	cell, ok := mo.m[key]
	if !ok {
		cell = &memoCell[V]{}
		mo.m[key] = cell
	}
	mo.mu.Unlock()
	if ok {
		// Hit vs wait is advisory (the build may finish between the load
		// and Do); the counters are for observability, not control flow.
		if cell.done.Load() {
			mo.hits.Add(1)
		} else {
			mo.waits.Add(1)
		}
	}
	cell.once.Do(func() {
		defer cell.done.Store(true)
		mo.builds.Add(1)
		cell.val, cell.err = build()
	})
	return cell.val, cell.err
}

// Len returns the number of distinct keys seen.
func (mo *Memo[K, V]) Len() int {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return len(mo.m)
}

// Stats returns the cumulative build/hit/wait counts. builds is exactly
// one per distinct key; hits are calls served from a completed cell;
// waits are calls that joined an in-flight build.
func (mo *Memo[K, V]) Stats() (builds, hits, waits int64) {
	return mo.builds.Load(), mo.hits.Load(), mo.waits.Load()
}

// Reset drops every memoized value (and error) and zeroes the counters.
// Not safe to call concurrently with Get.
func (mo *Memo[K, V]) Reset() {
	mo.mu.Lock()
	mo.m = nil
	mo.mu.Unlock()
	mo.builds.Store(0)
	mo.hits.Store(0)
	mo.waits.Store(0)
}

package httpplay

import (
	"io"
	"net/http"
	"sync"
	"time"
)

// Shaper is an http.RoundTripper that rate-limits response bodies with a
// token bucket — the wall-clock equivalent of the paper's tc shaping.
// All connections through one Shaper share the same bucket, like flows
// sharing a cellular link.
type Shaper struct {
	// Transport performs the real exchange (nil = default transport).
	Transport http.RoundTripper

	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket depth in bytes
	tokens float64
	last   time.Time
}

// NewShaper limits aggregate response throughput to bitsPerSec.
func NewShaper(transport http.RoundTripper, bitsPerSec float64) *Shaper {
	return &Shaper{
		Transport: transport,
		rate:      bitsPerSec / 8,
		burst:     bitsPerSec / 8 / 10, // 100 ms of burst
		last:      time.Now(),
	}
}

// SetRate changes the limit (bits/s); safe to call while streaming.
func (s *Shaper) SetRate(bitsPerSec float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rate = bitsPerSec / 8
	s.burst = bitsPerSec / 8 / 10
}

// RoundTrip implements http.RoundTripper.
func (s *Shaper) RoundTrip(req *http.Request) (*http.Response, error) {
	rt := s.Transport
	if rt == nil {
		rt = http.DefaultTransport
	}
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = &shapedBody{shaper: s, inner: resp.Body}
	return resp, nil
}

// take charges n bytes against the bucket and sleeps off any debt. The
// debt model (bucket may go negative) admits reads larger than the burst,
// which a strict bucket would deadlock on at low rates.
func (s *Shaper) take(n int) {
	s.mu.Lock()
	now := time.Now()
	s.tokens += now.Sub(s.last).Seconds() * s.rate
	s.last = now
	if s.tokens > s.burst {
		s.tokens = s.burst
	}
	s.tokens -= float64(n)
	debt := -s.tokens
	rate := s.rate
	s.mu.Unlock()
	if debt > 0 && rate > 0 {
		time.Sleep(time.Duration(debt / rate * float64(time.Second)))
	}
}

type shapedBody struct {
	shaper *Shaper
	inner  io.ReadCloser
}

func (b *shapedBody) Read(p []byte) (int, error) {
	const chunk = 16 << 10
	if len(p) > chunk {
		p = p[:chunk]
	}
	n, err := b.inner.Read(p)
	if n > 0 {
		b.shaper.take(n)
	}
	return n, err
}

func (b *shapedBody) Close() error { return b.inner.Close() }

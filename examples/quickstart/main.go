// Quickstart: generate synthetic VBR content, publish it as a DASH
// presentation, stream it with a configurable player over a synthetic
// cellular trace, and print the QoE report — all in virtual time, in
// milliseconds of wall clock.
package main

import (
	"fmt"
	"log"

	vod "repro"
	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/player"
)

func main() {
	// 1. Content: a 20-minute video, 4 s segments, a 5-track VBR ladder
	// with peak ≈ 2× average (declared bitrates are set near the peak,
	// like most services the paper studies).
	video, err := vod.GenerateVideo(vod.MediaConfig{
		Name:            "demo",
		Duration:        1200,
		SegmentDuration: 4,
		TargetBitrates:  []float64{250e3, 500e3, 1e6, 2e6, 3.5e6},
		Encoding:        media.VBR,
		VBRSpread:       2,
		DeclaredPolicy:  media.DeclarePeak,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Server: encode a DASH MPD with per-track sidx boxes and wrap it
	// in an origin (the same origin can also serve real HTTP).
	org, err := vod.NewOrigin(vod.BuildManifest(video, vod.BuildOptions{
		Protocol:   manifest.DASH,
		Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Client: an ExoPlayer-flavoured player — one persistent
	// connection, throughput rule with buffer hysteresis, 8 s startup
	// buffer, download controller pausing at 60 s.
	cfg := vod.PlayerConfig{
		Name:               "quickstart",
		StartupBufferSec:   8,
		StartupSegments:    2, // the paper's §4.3 recommendation
		StartupTrack:       1,
		PauseThresholdSec:  60,
		ResumeThresholdSec: 45,
		MaxConnections:     1,
		Persistent:         true,
		Scheduler:          player.SchedulerSingle,
		Algorithm:          adaptation.DefaultHysteresis(),
	}

	// 4. Stream over synthetic cellular profile 4 for 10 minutes.
	res, err := vod.Stream(cfg, org, vod.CellularProfile(4), 600)
	if err != nil {
		log.Fatal(err)
	}

	// 5. QoE.
	rep := vod.QoE(res)
	fmt.Printf("startup delay : %.2f s\n", rep.StartupDelay)
	fmt.Printf("stalls        : %d (%.1f s)\n", rep.StallCount, rep.StallSec)
	fmt.Printf("avg bitrate   : %.0f kbit/s (declared)\n", rep.AvgBitrate/1e3)
	fmt.Printf("switches      : %d\n", rep.Switches)
	fmt.Printf("data usage    : %.1f MB\n", rep.DataUsageBytes/1e6)
	fmt.Printf("time on tracks:")
	for tr, sec := range rep.TimeOnTrack {
		fmt.Printf(" %d:%.0fs", tr, sec)
	}
	fmt.Println()
}

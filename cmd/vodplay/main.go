// Command vodplay streams one of the twelve service models over a
// bandwidth profile in the simulator and prints the QoE report, the
// annotated event timeline, and the buffer evolution.
//
// Usage:
//
//	vodplay -service H5 -profile 3
//	vodplay -service D1 -profile const:0.5 -duration 300 -events
//	vodplay -service S2 -profile step:4,0.8,200
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netem"
	"repro/internal/qoe"
	"repro/internal/services"
	"repro/internal/textplot"
)

func main() {
	name := flag.String("service", "H1", "service model (H1..H6, D1..D4, S1, S2)")
	prof := flag.String("profile", "3", "cellular profile 1..14, const:<Mbps>, or step:<Mbps>,<Mbps>,<switch-s>")
	dur := flag.Float64("duration", 600, "session duration in virtual seconds")
	events := flag.Bool("events", false, "print the full event timeline")
	flag.Parse()

	svc := services.ByName(*name)
	if svc == nil {
		fmt.Fprintf(os.Stderr, "vodplay: unknown service %q\n", *name)
		os.Exit(2)
	}
	p, err := netem.ParseSpec(*prof, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodplay:", err)
		os.Exit(2)
	}
	res, err := svc.Run(p, *dur, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodplay:", err)
		os.Exit(1)
	}
	rep := qoe.FromResult(res)

	fmt.Printf("service %s over %s (%.0fs, avg %.2f Mbit/s)\n\n", svc.Name, p.Name, *dur, p.Average()/1e6)
	t := &textplot.Table{Title: "QoE report", Header: []string{"metric", "value"}}
	t.AddRow("startup delay", fmt.Sprintf("%.2f s", rep.StartupDelay))
	t.AddRow("stalls", fmt.Sprintf("%d (%.1f s total)", rep.StallCount, rep.StallSec))
	t.AddRow("average bitrate", fmt.Sprintf("%.0f kbit/s", rep.AvgBitrate/1e3))
	t.AddRow("track switches", fmt.Sprintf("%d (%d non-consecutive)", rep.Switches, rep.NonConsecutive))
	t.AddRow("data usage", fmt.Sprintf("%.1f MB", rep.DataUsageBytes/1e6))
	t.AddRow("wasted data", fmt.Sprintf("%.1f MB", rep.WastedBytes/1e6))
	t.AddRow("played", fmt.Sprintf("%.1f s", rep.PlayedSec))
	fmt.Println(t.String())

	var xs, vb, ab []float64
	for _, s := range res.Samples {
		xs = append(xs, s.T)
		vb = append(vb, s.VideoSec)
		ab = append(ab, s.AudioSec)
	}
	series := []textplot.Series{{Name: "video buffer (s)", X: xs, Y: vb}}
	if len(res.Transactions) > 0 && svc.Media.SeparateAudio {
		series = append(series, textplot.Series{Name: "audio buffer (s)", X: xs, Y: ab})
	}
	fmt.Println(textplot.Plot("buffer occupancy", 72, 14, series...))

	if *events {
		et := &textplot.Table{Title: "event timeline", Header: []string{"t (s)", "event", "detail"}}
		for _, e := range res.Events {
			et.AddRow(fmt.Sprintf("%.2f", e.T), e.Kind, e.Detail)
		}
		fmt.Println(et.String())
	}
}

// Command vodreport regenerates every experiment and writes a single
// markdown report — the machine-refreshable companion to EXPERIMENTS.md.
// Experiments fan out across a worker pool; the report is assembled in
// paper order regardless of completion order, so the output is identical
// for any worker count.
//
// Usage:
//
//	vodreport -out REPORT.md
//	vodreport -workers 8 -out -
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "REPORT.md", "output file (- for stdout)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiments (1 = serial)")
	quiet := flag.Bool("q", false, "suppress per-experiment progress lines")
	flag.Parse()

	opts := experiments.Options{Workers: *workers}
	if !*quiet {
		done, total := 0, len(experiments.All())
		opts.OnProgress = func(r experiments.Result) {
			done++
			fmt.Fprintf(os.Stderr, "vodreport: [%2d/%d] %-15s %6.2fs %8.1f MB alloc\n",
				done, total, r.ID, r.Elapsed.Seconds(), float64(r.AllocBytes)/1e6)
		}
	}
	start := time.Now()
	results, err := experiments.RunAll(context.Background(), opts)
	if err != nil {
		log.Fatalf("vodreport: %v", err)
	}
	wall := time.Since(start)

	var b strings.Builder
	b.WriteString("# Regenerated experiment report\n\n")
	b.WriteString("Produced by `vodreport`; every table below is regenerated from the\n")
	b.WriteString("committed code with fixed seeds. See EXPERIMENTS.md for the\n")
	b.WriteString("paper-vs-measured comparison and DESIGN.md for the substitutions.\n")
	var serial time.Duration
	for _, r := range results {
		serial += r.Elapsed
		fmt.Fprintf(&b, "\n## %s — %s\n\n", r.ID, r.Title)
		fmt.Fprintf(&b, "_regenerated in %.1fs_\n\n", r.Elapsed.Seconds())
		for _, t := range r.Tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		for _, p := range r.Plots {
			b.WriteString("```\n")
			b.WriteString(p)
			b.WriteString("```\n\n")
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vodreport: %d experiments in %.2fs wall (%.2fs summed serial, %.2fx) with %d workers\n",
			len(results), wall.Seconds(), serial.Seconds(), serial.Seconds()/wall.Seconds(), *workers)
	}
	if *out == "-" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatalf("vodreport: %v", err)
	}
	fmt.Println("wrote", *out)
}

// Package hot exercises hotalloc: one annotated hot function, the
// helpers it reaches, and a cold twin that proves the analyzer stays
// scoped to //vodlint:hotpath code.
package hot

import (
	"fmt"
	"sort"
	"sync"
)

type item struct {
	v    int
	next *item
}

type pool struct {
	free []*item
	out  []int
	vals []int
}

func take(v interface{}) {} // same-package sink: boxing at its call sites is analyzed here, not at the caller

var shared sync.Pool

// hot is the annotated root; everything it reaches is checked.
//
//vodlint:hotpath — fixture event loop
func (p *pool) hot(xs []int) {
	p.out = p.out[:0]
	p.out = append(p.out, xs...)            // self-append reuses the backing array: silent
	tmp := append([]int(nil), xs...)        // want `append into a different slice allocates`
	m := make(map[int]bool)                 // want `make\(map\[int\]bool\) allocates`
	ch := make(chan int, 1)                 // want `make\(chan int, 1\) allocates`
	s := fmt.Sprintf("%d", len(xs))         // want `call to fmt\.Sprintf allocates`
	it := &item{v: 1}                       // want `&hot\.item literal allocates`
	q := new(item)                          // want `new allocates`
	lits := []int{1, 2, 3}                  // want `slice literal allocates its backing array`
	sort.Slice(p.out, func(i, j int) bool { // want `p\.out boxes a \[\]int into an interface argument`
		return p.out[i] < p.out[j]
	})
	take(len(xs))  // same-package callee: boxing analyzed in take, silent here
	shared.Put(it) // pointer into interface fits the word: silent
	shared.Put(s)  // want `s boxes a string into an interface argument`
	p.reachedHelper()
	_, _, _, _, _, _ = tmp, m, ch, it, q, lits
	if len(xs) > 1<<20 {
		panic(fmt.Sprintf("impossible fan-in %d", len(xs))) // panic path formats freely: silent
	}
}

// reachedHelper is hot by reachability, not annotation.
func (p *pool) reachedHelper() *item {
	if n := len(p.free); n > 0 {
		it := p.free[n-1]
		p.free = p.free[:n-1]
		return it
	}
	return &item{} // want `&hot\.item literal allocates`
}

// runner shows the literal-annotation form used for closures like
// sched.RunStealing's worker body.
func runner() {
	//vodlint:hotpath — fixture worker closure
	loop := func(n int) {
		buf := make([]int, n) // want `make\(\[\]int, n\) allocates`
		_ = buf
	}
	loop(4)
}

// cold repeats every violating construct without an annotation; the
// analyzer must not say a word.
func cold(xs []int) {
	tmp := append([]int(nil), xs...)
	m := make(map[int]bool)
	s := fmt.Sprintf("%d", len(xs))
	it := &item{}
	_, _, _, _ = tmp, m, s, it
}

// allowedMiss shows the sanctioned escape hatch: a free-list miss
// carrying a justified suppression.
//
//vodlint:hotpath — fixture pool refill
func allowedMiss(p *pool) *item {
	if len(p.free) == 0 {
		return &item{} //vodlint:allow hotalloc — free-list miss, amortized over the pool's lifetime
	}
	return p.free[0]
}

package sidx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	b := &Box{
		Version:                  1,
		ReferenceID:              1,
		Timescale:                1000,
		EarliestPresentationTime: 12345,
		FirstOffset:              0,
		References: []Reference{
			{ReferencedSize: 1000, SubsegmentDuration: 4000, StartsWithSAP: true, SAPType: 1},
			{ReferencedSize: 2000, SubsegmentDuration: 3999, StartsWithSAP: true, SAPType: 1},
		},
	}
	got, err := Decode(Encode(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Timescale != b.Timescale || got.EarliestPresentationTime != b.EarliestPresentationTime {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.References) != 2 {
		t.Fatalf("refs = %d", len(got.References))
	}
	for i := range b.References {
		if got.References[i] != b.References[i] {
			t.Fatalf("ref %d: %+v vs %+v", i, got.References[i], b.References[i])
		}
	}
}

func TestSegmentDurations(t *testing.T) {
	b := FromSegments([]int64{100, 200}, []float64{4, 2.5}, 1000)
	ds := b.SegmentDurations()
	if math.Abs(ds[0]-4) > 1e-3 || math.Abs(ds[1]-2.5) > 1e-3 {
		t.Fatalf("durations %v", ds)
	}
}

func TestDecodeVersion0(t *testing.T) {
	// Hand-build a version 0 box: 32-bit times.
	raw := []byte{
		0, 0, 0, 44, 's', 'i', 'd', 'x',
		0, 0, 0, 0, // version 0, flags
		0, 0, 0, 1, // reference id
		0, 0, 3, 0xe8, // timescale 1000
		0, 0, 0, 10, // earliest presentation time
		0, 0, 0, 0, // first offset
		0, 0, 0, 1, // reserved + count 1
		0, 0, 1, 0, // size 256
		0, 0, 0x0f, 0xa0, // duration 4000
		0x90, 0, 0, 0, // SAP
	}
	b, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != 0 || b.EarliestPresentationTime != 10 || b.References[0].ReferencedSize != 256 {
		t.Fatalf("decoded %+v", b)
	}
	if !b.References[0].StartsWithSAP || b.References[0].SAPType != 1 {
		t.Fatalf("SAP decoded wrong: %+v", b.References[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(FromSegments([]int64{100}, []float64{4}, 1000))
	cases := [][]byte{
		nil,
		good[:8],
		append([]byte{}, good[:4]...),
	}
	// Wrong box type.
	bad := append([]byte{}, good...)
	copy(bad[4:8], "free")
	cases = append(cases, bad)
	// Truncated references.
	trunc := append([]byte{}, good[:len(good)-4]...)
	cases = append(cases, trunc)
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(sizes []uint32, ts uint16) bool {
		if len(sizes) == 0 || len(sizes) > 500 {
			return true
		}
		timescale := uint32(ts)%10000 + 1
		b := &Box{Version: 1, ReferenceID: 1, Timescale: timescale}
		for _, sz := range sizes {
			b.References = append(b.References, Reference{
				ReferencedSize:     sz & 0x7fffffff,
				SubsegmentDuration: sz % 100000,
				StartsWithSAP:      sz%2 == 0,
				SAPType:            uint8(sz % 8),
			})
		}
		got, err := Decode(Encode(b))
		if err != nil || len(got.References) != len(b.References) {
			return false
		}
		for i := range b.References {
			if got.References[i] != b.References[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

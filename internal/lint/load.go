package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked compilation unit: either a package's
// base files (importable by others) or a test-augmented unit that also
// holds its _test.go files.
type Package struct {
	// Path is the import path ("repro/internal/simnet").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is the position table shared by every unit of a load.
	Fset *token.FileSet
	// Files are the unit's parsed files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the type-checker's resolutions.
	Info *types.Info
	// TestUnit marks units containing _test.go files; analyzers report
	// only on the test files of such units (the base files were already
	// checked as their own unit).
	TestUnit bool
}

// loader type-checks every package of a module without the go tool:
// module-internal imports resolve recursively through itself, all other
// imports through the standard library's source importer (which parses
// GOROOT — no network, no export-data files needed).
type loader struct {
	fset     *token.FileSet
	root     string            // module directory
	module   string            // module path from go.mod
	dirs     map[string]string // import path -> directory
	base     map[string]*types.Package
	checking map[string]bool
	std      types.ImporterFrom
	units    []*Package
}

// Load parses and type-checks every package under the module rooted at
// root (the directory containing go.mod), including in-package and
// external test units, and returns them sorted by import path with base
// units before test units.
func Load(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		root:     root,
		module:   modPath,
		dirs:     map[string]string{},
		base:     map[string]*types.Package{},
		checking: map[string]bool{},
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	if err := ld.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := ld.importModulePkg(p); err != nil {
			return nil, err
		}
	}
	// Test units come after every base unit exists, so external test
	// packages can import their subjects.
	for _, p := range paths {
		if err := ld.loadTestUnits(p); err != nil {
			return nil, err
		}
	}
	sort.Slice(ld.units, func(i, j int) bool {
		a, b := ld.units[i], ld.units[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return !a.TestUnit && b.TestUnit
	})
	return ld.units, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// discover maps every directory holding Go files to its import path.
func (ld *loader) discover() error {
	return filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(ld.root, path)
				if err != nil {
					return err
				}
				ip := ld.module
				if rel != "." {
					ip = ld.module + "/" + filepath.ToSlash(rel)
				}
				ld.dirs[ip] = path
				break
			}
		}
		return nil
	})
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.root, 0)
}

// ImportFrom resolves module-internal paths itself and delegates the
// rest (standard library) to the source importer.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		return ld.importModulePkg(path)
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// importModulePkg type-checks (once) the base unit of a module package.
func (ld *loader) importModulePkg(path string) (*types.Package, error) {
	if pkg, ok := ld.base[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	dir, ok := ld.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not found in module", path)
	}
	files, err := ld.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	unit, err := ld.check(path, dir, files, false)
	if err != nil {
		return nil, err
	}
	ld.base[path] = unit.Types
	return unit.Types, nil
}

// loadTestUnits type-checks the in-package and external test units of a
// package directory, if it has test files.
func (ld *loader) loadTestUnits(path string) error {
	dir := ld.dirs[path]
	var inPkg, external []*ast.File
	testFiles, err := ld.parseDir(dir, func(name string) bool {
		return strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return err
	}
	for _, f := range testFiles {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	if len(inPkg) > 0 {
		// Re-parse the base files so the augmented unit has its own
		// consistent object resolution.
		baseFiles, err := ld.parseDir(dir, func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return err
		}
		if _, err := ld.check(path, dir, append(baseFiles, inPkg...), true); err != nil {
			return err
		}
	}
	if len(external) > 0 {
		if _, err := ld.check(path+"_test", dir, external, true); err != nil {
			return err
		}
	}
	return nil
}

// parseDir parses the directory's Go files accepted by keep.
func (ld *loader) parseDir(dir string, keep func(string) bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || !keep(name) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check runs the type checker over one unit and records it.
func (ld *loader) check(path, dir string, files []*ast.File, testUnit bool) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	unit := &Package{
		Path:     path,
		Dir:      dir,
		Fset:     ld.fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		TestUnit: testUnit,
	}
	ld.units = append(ld.units, unit)
	return unit, nil
}

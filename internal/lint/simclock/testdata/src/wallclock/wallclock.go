// Package wallclock stands in for a package outside the simulation set
// (like internal/httpplay or cmd/): simclock must stay silent here.
package wallclock

import "time"

func RealTiming() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}

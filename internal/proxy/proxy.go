// Package proxy is the measurement box of the paper's testbed (§2.2,
// Figure 2) realised over real HTTP: a forward proxy that relays any
// client's requests to the origin, optionally shapes the downstream
// bandwidth with a token bucket (the tc stand-in), and records every
// exchange as a traffic.Transaction — retaining the bodies of manifest
// documents so the traffic analyzer can reconstruct the presentation,
// exactly as the paper's man-in-the-middle proxy did for the commercial
// apps.
//
// Unlike internal/httpplay's client-side shaper, the proxy works with
// any HTTP client: point a player's proxy setting at it and feed its
// Log to traffic.Analyze.
//
// Like httpplay, the proxy reads time only through an injectable clock
// (Config.Now/Config.Sleep), so tests drive it in virtual time with no
// real sleeps, and the simclock analyzer holds: the wall clock appears
// only as the default wiring.
package proxy

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/traffic"
)

// Config parameterises a recording proxy, mirroring the injectable
// clock pattern of httpplay.Config.
type Config struct {
	// Transport performs the real exchanges (nil = http.DefaultTransport).
	Transport http.RoundTripper
	// BitsPerSec limits the aggregate downstream rate (0 = unshaped).
	BitsPerSec float64
	// Now is the clock (nil = time.Now); tests can run it virtually.
	Now func() time.Time
	// Sleep waits (nil = time.Sleep). The shaper sleeps transfer debt
	// off through this, so a virtual Sleep makes shaping instantaneous
	// in tests. It may be called concurrently from request goroutines.
	Sleep func(time.Duration)
}

// Recorder is a forward HTTP proxy handler with recording and optional
// shaping. The zero value is not usable; construct with New or
// NewWithConfig.
type Recorder struct {
	transport http.RoundTripper
	rate      func() float64 // bits/s limit; 0 = unshaped
	now       func() time.Time
	sleep     func(time.Duration)

	mu     sync.Mutex
	start  time.Time
	log    []traffic.Transaction
	tokens float64
	last   time.Time
}

// New creates a recording proxy with the wall clock. bitsPerSec limits
// the aggregate downstream rate (0 = unshaped); transport performs the
// real exchanges (nil = http.DefaultTransport).
func New(transport http.RoundTripper, bitsPerSec float64) *Recorder {
	return NewWithConfig(Config{Transport: transport, BitsPerSec: bitsPerSec})
}

// NewWithConfig creates a recording proxy from a full Config.
func NewWithConfig(cfg Config) *Recorder {
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	r := &Recorder{
		transport: cfg.Transport,
		now:       cfg.Now,
		sleep:     cfg.Sleep,
	}
	r.start = r.now()
	r.last = r.start
	bitsPerSec := cfg.BitsPerSec
	r.rate = func() float64 { return bitsPerSec }
	return r
}

// Log returns a copy of the recorded transactions, timestamped in
// seconds since the proxy started.
func (p *Recorder) Log() []traffic.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]traffic.Transaction(nil), p.log...)
}

// Reset clears the log and restarts the clock.
func (p *Recorder) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = nil
	p.start = p.now()
}

// ServeHTTP implements the forward proxy: it accepts both absolute-URI
// requests (standard proxying) and host-relative ones (reverse-proxy
// style, using the Host header).
func (p *Recorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	outURL := r.URL
	if !outURL.IsAbs() {
		u := *r.URL
		u.Scheme = "http"
		u.Host = r.Host
		outURL = &u
	}
	req, err := http.NewRequest(r.Method, outURL.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	t0 := p.now()
	resp, err := p.transport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	p.throttle(len(body))
	t1 := p.now()

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := w.Write(body); err != nil {
		return
	}

	rs, re := parseRange(r.Header.Get("Range"))
	tx := traffic.Transaction{
		Start:      t0.Sub(p.start).Seconds(),
		End:        t1.Sub(p.start).Seconds(),
		Method:     r.Method,
		URL:        outURL.Path,
		RangeStart: rs,
		RangeEnd:   re,
		Bytes:      int64(len(body)),
		Rejected:   resp.StatusCode/100 != 2,
	}
	if isDocument(body) {
		tx.Body = append([]byte(nil), body...)
	}
	p.mu.Lock()
	p.log = append(p.log, tx)
	p.mu.Unlock()
}

// throttle enforces the aggregate downstream rate with a debt-based
// token bucket: the transfer is admitted immediately and the bucket goes
// negative, then the caller sleeps the debt off — this handles bodies
// larger than the burst (a classic token-bucket pitfall).
func (p *Recorder) throttle(n int) {
	limit := p.rate()
	if limit <= 0 {
		return
	}
	ratePerSec := limit / 8
	burst := ratePerSec / 10
	p.mu.Lock()
	now := p.now()
	p.tokens += now.Sub(p.last).Seconds() * ratePerSec
	p.last = now
	if p.tokens > burst {
		p.tokens = burst
	}
	p.tokens -= float64(n)
	debt := -p.tokens
	p.mu.Unlock()
	if debt > 0 {
		p.sleep(time.Duration(debt / ratePerSec * float64(time.Second)))
	}
}

// isDocument mirrors the analyzer's body sniffing: playlists, MPDs,
// Smooth manifests and sidx boxes are retained verbatim.
func isDocument(body []byte) bool {
	if len(body) >= 8 && bytes.Equal(body[4:8], []byte("sidx")) {
		return true
	}
	head := body
	if len(head) > 512 {
		head = head[:512]
	}
	s := string(head)
	return strings.HasPrefix(strings.TrimSpace(s), "#EXTM3U") ||
		strings.Contains(s, "<MPD") || strings.Contains(s, "<SmoothStreamingMedia") ||
		strings.Contains(s, "<?xml")
}

// parseRange reads "bytes=a-b" (-1,-1 when absent or malformed).
func parseRange(h string) (int64, int64) {
	if !strings.HasPrefix(h, "bytes=") {
		return -1, -1
	}
	parts := strings.SplitN(strings.TrimPrefix(h, "bytes="), "-", 2)
	if len(parts) != 2 {
		return -1, -1
	}
	a, err1 := strconv.ParseInt(parts[0], 10, 64)
	b, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return -1, -1
	}
	return a, b
}

package cdn

// Title is one service's media layout: wire sizes in bytes per
// rendition track and segment index. fleet builds one Title per
// configured service from its origin presentation.
type Title struct {
	Video [][]float64 // [track][segment]
	Audio [][]float64
}

// Catalog is the full content library of a run. Warm-started caches
// are filled with its popular prefix: ascending segment index first
// (every viewer starts at segment 0, so low indices are the hot set),
// then service, then video before audio, then ascending track.
type Catalog struct {
	Titles []Title

	maxSegs int
}

// NewCatalog wraps titles and precomputes the warmup scan bound.
func NewCatalog(titles []Title) *Catalog {
	cat := &Catalog{Titles: titles}
	for _, t := range titles {
		for _, tr := range t.Video {
			if len(tr) > cat.maxSegs {
				cat.maxSegs = len(tr)
			}
		}
		for _, tr := range t.Audio {
			if len(tr) > cat.maxSegs {
				cat.maxSegs = len(tr)
			}
		}
	}
	return cat
}

// WarmCache fills one cache with the popular prefix at virtual time 0,
// stopping at the first object that no longer fits (so a warm cache
// holds the prefix of the popularity order, never a churned tail).
func (cat *Catalog) WarmCache(c *cache) {
	if c == nil {
		return
	}
	for seg := 0; seg < cat.maxSegs; seg++ {
		for svc := range cat.Titles {
			t := &cat.Titles[svc]
			for track, sizes := range t.Video {
				if seg >= len(sizes) {
					continue
				}
				if !warmOne(c, Object{Catalog: int32(svc), Kind: KindVideo, Track: int32(track), Index: int32(seg)}, sizes[seg]) {
					return
				}
			}
			for track, sizes := range t.Audio {
				if seg >= len(sizes) {
					continue
				}
				if !warmOne(c, Object{Catalog: int32(svc), Kind: KindAudio, Track: int32(track), Index: int32(seg)}, sizes[seg]) {
					return
				}
			}
		}
	}
}

func warmOne(c *cache, obj Object, size float64) bool {
	if c.cap > 0 && c.used+size > c.cap {
		return false
	}
	c.admit(0, obj, size)
	return true
}

// Warm fills every edge node of a cell (they are replicas of the same
// hot set).
func (cat *Catalog) Warm(cell *Cell) {
	for _, n := range cell.nodes {
		cat.WarmCache(n)
	}
}

// WarmMetro fills a shard's metro cache (no-op when the tier is
// disabled).
func (cat *Catalog) WarmMetro(m *Metro) {
	if m != nil {
		cat.WarmCache(m.c)
	}
}

// Package services defines the twelve anonymised VOD services the paper
// studies — H1–H6 (HLS), D1–D4 (DASH) and S1–S2 (SmoothStreaming) — as
// parameterised server/player models. Every design axis of Table 1
// (segment duration, separate audio, connection count and persistence,
// startup buffer and track, pausing/resuming thresholds, stability,
// aggressiveness, buffer-aware down-switching) and every defect of
// Table 2 (high bottom track, declared-only adaptation, desynced
// audio/video, non-persistent connections, low resume threshold,
// single-segment startup, oscillating selection, immediate ramp-down,
// harmful segment replacement) appears explicitly in these definitions.
//
// The paper anonymises the real services; these models are synthetic
// reconstructions from its published parameters, not the actual apps.
package services

import (
	"fmt"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/replacement"
	"repro/internal/simnet"
)

// Service bundles the server-side and client-side model of one studied
// app.
type Service struct {
	// Name is the paper's identifier ("H1".."S2").
	Name string
	// Media describes the content encoding the service serves.
	Media media.Config
	// Build selects the wire protocol and addressing.
	Build manifest.BuildOptions
	// Player is the client model (Table 1 columns + Table 2 defects).
	Player player.Config
	// OriginOptions tunes the origin (D3 encrypts its MPD, §2.3).
	OriginOptions origin.Options
	// Issues lists the Table 2 defects this service exhibits.
	Issues []string
}

// mbps converts a Table 1 style Mbit/s number to bits/s.
func mbps(m float64) float64 { return m * 1e6 }

// targets derives encoder target bitrates from a declared ladder given
// the declared-bitrate policy and VBR spread.
func targets(declared []float64, pol media.DeclaredPolicy, enc media.Encoding, spread float64) []float64 {
	out := make([]float64, len(declared))
	for i, d := range declared {
		t := mbps(d)
		if pol == media.DeclarePeak && enc == media.VBR {
			t /= spread
		}
		out[i] = t
	}
	return out
}

const videoDuration = 1200 // seconds of content, > the 600 s sessions

// All returns the twelve service definitions.
func All() []*Service {
	return []*Service{H1(), H2(), H3(), H4(), H5(), H6(), D1(), D2(), D3(), D4(), S1(), S2()}
}

// ByName returns the named service or nil.
func ByName(name string) *Service {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func hlsMedia(name string, segDur, spread float64, enc media.Encoding, declared []float64, seed int64) media.Config {
	pol := media.DeclarePeak
	return media.Config{
		Name: name, Duration: videoDuration, SegmentDuration: segDur,
		TargetBitrates: targets(declared, pol, enc, spread),
		Encoding:       enc, VBRSpread: spread, DeclaredPolicy: pol, Seed: seed,
	}
}

// H1 performs contiguous segment replacement and ramps down immediately
// on bandwidth dips despite a large buffer.
func H1() *Service {
	return &Service{
		Name:  "H1",
		Media: hlsMedia("h1", 4, 2, media.VBR, []float64{0.35, 0.63, 1.15, 2.1, 3.5}, 101),
		Build: manifest.BuildOptions{Protocol: manifest.HLS},
		Player: player.Config{
			Name: "H1", StartupBufferSec: 8, StartupTrack: 1,
			PauseThresholdSec: 95, ResumeThresholdSec: 85,
			MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
			Algorithm:   adaptation.Throughput{Factor: 0.75},
			Replacement: replacement.ContiguousOnUpswitch{},
		},
		Issues: []string{"segment replacement can fetch worse quality", "ramps down with high buffer"},
	}
}

// H2 uses non-persistent connections and a high bottom track, but
// protects quality with a 40 s down-switch buffer threshold.
func H2() *Service {
	return &Service{
		Name:  "H2",
		Media: hlsMedia("h2", 2, 1.1, media.CBR, []float64{0.8, 1.33, 2.4, 4.0}, 102),
		Build: manifest.BuildOptions{Protocol: manifest.HLS},
		Player: player.Config{
			Name: "H2", StartupBufferSec: 8, StartupTrack: 1,
			PauseThresholdSec: 90, ResumeThresholdSec: 84,
			MaxConnections: 1, Persistent: false, Scheduler: player.SchedulerSingle,
			Algorithm: adaptation.Throughput{Factor: 0.75, DecreaseBufferSec: 40},
		},
		Issues: []string{"lowest track bitrate set high", "non-persistent TCP"},
	}
}

// H3 starts playback after a single 9 s segment at a ~1 Mbit/s startup
// track — the startup-stall case study of Figure 14.
func H3() *Service {
	return &Service{
		Name:  "H3",
		Media: hlsMedia("h3", 9, 1.1, media.CBR, []float64{0.3, 0.55, 1.05, 1.9, 3.4}, 103),
		Build: manifest.BuildOptions{Protocol: manifest.HLS},
		Player: player.Config{
			Name: "H3", StartupBufferSec: 9, StartupTrack: 2,
			PauseThresholdSec: 40, ResumeThresholdSec: 30,
			MaxConnections: 1, Persistent: false, Scheduler: player.SchedulerSingle,
			Algorithm: adaptation.Throughput{Factor: 0.7},
			// H3 keeps selecting the startup track for the second segment
			// ("it may not yet have built up enough information about the
			// actual network condition", Figure 14).
			MinEstimateSamples: 2,
		},
		Issues: []string{"single-segment startup buffer", "non-persistent TCP"},
	}
}

// H4 is the paper's segment-replacement case study (Figure 10): SR starts
// whenever it switches up, replacing whatever follows — including
// higher-quality segments — and can stall itself.
func H4() *Service {
	return &Service{
		Name:  "H4",
		Media: hlsMedia("h4", 9, 2, media.VBR, []float64{0.25, 0.47, 0.9, 1.7, 3.0}, 104),
		Build: manifest.BuildOptions{Protocol: manifest.HLS},
		Player: player.Config{
			Name: "H4", StartupBufferSec: 9, StartupTrack: 1,
			PauseThresholdSec: 155, ResumeThresholdSec: 135,
			MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
			Algorithm:   adaptation.Throughput{Factor: 0.75},
			Replacement: replacement.ContiguousOnUpswitch{IgnoreBufferedQuality: true},
		},
		Issues: []string{"segment replacement can fetch worse quality", "single-segment startup buffer", "ramps down with high buffer"},
	}
}

// H5 pairs a high bottom track (560 kbit/s) with small buffer thresholds;
// it always stalls on the two lowest-bandwidth profiles (§3.1).
func H5() *Service {
	return &Service{
		Name:  "H5",
		Media: hlsMedia("h5", 6, 1.25, media.VBR, []float64{0.56, 1.0, 1.85, 3.3, 5.5}, 105),
		Build: manifest.BuildOptions{Protocol: manifest.HLS},
		Player: player.Config{
			Name: "H5", StartupBufferSec: 12, StartupTrack: 2,
			PauseThresholdSec: 30, ResumeThresholdSec: 20,
			MaxConnections: 1, Persistent: false, Scheduler: player.SchedulerSingle,
			Algorithm: adaptation.Throughput{Factor: 0.75},
		},
		Issues: []string{"lowest track bitrate set high", "non-persistent TCP"},
	}
}

// H6 uses 10 s segments with a single-segment startup buffer.
func H6() *Service {
	return &Service{
		Name:  "H6",
		Media: hlsMedia("h6", 10, 1.1, media.CBR, []float64{0.3, 0.5, 0.88, 1.6, 2.8, 4.5}, 106),
		Build: manifest.BuildOptions{Protocol: manifest.HLS},
		Player: player.Config{
			Name: "H6", StartupBufferSec: 10, StartupTrack: 2,
			PauseThresholdSec: 80, ResumeThresholdSec: 70,
			MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
			Algorithm: adaptation.Throughput{Factor: 0.7},
		},
		Issues: []string{"single-segment startup buffer", "ramps down with high buffer"},
	}
}

// D1 pipelines video on five of its six connections with audio on the
// sixth (desynced, Figure 6) and runs the oscillating greedy selection
// that never stabilises (Figure 8).
func D1() *Service {
	return &Service{
		Name: "D1",
		Media: media.Config{
			Name: "d1", Duration: videoDuration, SegmentDuration: 5,
			TargetBitrates: targets([]float64{0.2, 0.41, 0.8, 1.5, 2.8, 5.0}, media.DeclarePeak, media.VBR, 2),
			Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
			SeparateAudio: true, AudioBitrate: 96e3, AudioSegmentDuration: 2, Seed: 201,
		},
		Build: manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.RangesInManifest},
		Player: player.Config{
			Name: "D1", StartupBufferSec: 15, StartupTrack: 1,
			PauseThresholdSec: 182, ResumeThresholdSec: 178,
			MaxConnections: 6, Persistent: true,
			Scheduler: player.SchedulerParallel, Audio: player.AudioDesynced,
			Algorithm: adaptation.OscillatingGreedy{Deadband: 0.5},
			// D1's MPD lists byte ranges, so its player can read actual
			// segment sizes; the greedy logic uses them to bound probes.
			ExposeSegmentSizes: true,
		},
		Issues: []string{"audio/video downloads out of sync", "selection does not stabilize", "ramps down with high buffer"},
	}
}

// D2 reads track quality only from the declared bitrate even though its
// sidx exposes actual sizes; with declared = 2× average actual, it leaves
// two thirds of the link idle (§4.2).
func D2() *Service {
	return &Service{
		Name: "D2",
		Media: media.Config{
			Name: "d2", Duration: videoDuration, SegmentDuration: 5,
			TargetBitrates: targets([]float64{0.16, 0.30, 0.6, 1.2, 2.2, 4.0}, media.DeclarePeak, media.VBR, 2),
			Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
			SeparateAudio: true, AudioBitrate: 96e3, AudioSegmentDuration: 5, Seed: 202,
		},
		Build: manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.SidxRanges},
		Player: player.Config{
			Name: "D2", StartupBufferSec: 5, StartupTrack: 1,
			PauseThresholdSec: 30, ResumeThresholdSec: 25,
			MaxConnections: 2, Persistent: true,
			Scheduler: player.SchedulerParallel, Audio: player.AudioSynced,
			Algorithm: adaptation.Throughput{Factor: 0.65},
		},
		Issues: []string{"adaptation ignores actual segment bitrate", "single-segment startup buffer"},
	}
}

// D3 splits each segment across three connections, adapts on actual
// bitrates from the sidx (aggressive in Figure 9) and protects quality
// with a 30 s down-switch threshold.
func D3() *Service {
	return &Service{
		Name: "D3",
		Media: media.Config{
			Name: "d3", Duration: videoDuration, SegmentDuration: 2,
			TargetBitrates: targets([]float64{0.2, 0.40, 0.75, 1.4, 2.6, 4.8}, media.DeclarePeak, media.VBR, 2),
			Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
			SeparateAudio: true, AudioBitrate: 96e3, AudioSegmentDuration: 2, Seed: 203,
		},
		Build: manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.SidxRanges},
		Player: player.Config{
			Name: "D3", StartupBufferSec: 8, StartupTrack: 1,
			PauseThresholdSec: 120, ResumeThresholdSec: 90,
			MaxConnections: 3, Persistent: true,
			Scheduler: player.SchedulerSplit, Audio: player.AudioSynced,
			Algorithm:          adaptation.Throughput{Factor: 0.6, UseActual: true, Horizon: 3, DecreaseBufferSec: 30, MinBufferForUpSec: 40},
			ExposeSegmentSizes: true,
		},
		// D3 encrypts its MPD at the application layer (§2.3); only the
		// sidx boxes remain readable to an on-path observer.
		OriginOptions: origin.Options{ObfuscateManifest: true},
	}
}

// D4 starts playback on a single 6 s segment.
func D4() *Service {
	return &Service{
		Name: "D4",
		Media: media.Config{
			Name: "d4", Duration: videoDuration, SegmentDuration: 6,
			TargetBitrates: targets([]float64{0.35, 0.67, 1.3, 2.4, 4.4}, media.DeclarePeak, media.VBR, 1.3),
			Encoding:       media.VBR, VBRSpread: 1.3, DeclaredPolicy: media.DeclarePeak,
			SeparateAudio: true, AudioBitrate: 96e3, AudioSegmentDuration: 6, Seed: 204,
		},
		Build: manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.SidxRanges},
		Player: player.Config{
			Name: "D4", StartupBufferSec: 6, StartupTrack: 1,
			PauseThresholdSec: 34, ResumeThresholdSec: 15,
			MaxConnections: 3, Persistent: true, VideoPipeline: 2,
			Scheduler: player.SchedulerParallel, Audio: player.AudioSynced,
			Algorithm: adaptation.Throughput{Factor: 0.75},
		},
		Issues: []string{"single-segment startup buffer"},
	}
}

// S1 declares average bitrates and streams tracks whose declared rate
// nearly equals the link rate (aggressive), with a high bottom track.
func S1() *Service {
	return &Service{
		Name: "S1",
		Media: media.Config{
			Name: "s1", Duration: videoDuration, SegmentDuration: 2,
			TargetBitrates: targets([]float64{0.6, 0.9, 1.35, 2.0, 2.9, 3.9}, media.DeclareAverage, media.VBR, 2),
			Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclareAverage,
			SeparateAudio: true, AudioBitrate: 96e3, AudioSegmentDuration: 2, Seed: 205,
		},
		Build: manifest.BuildOptions{Protocol: manifest.Smooth},
		Player: player.Config{
			Name: "S1", StartupBufferSec: 16, StartupTrack: 2,
			PauseThresholdSec: 180, ResumeThresholdSec: 175,
			MaxConnections: 2, Persistent: true,
			Scheduler: player.SchedulerParallel, Audio: player.AudioSynced,
			Algorithm: adaptation.Throughput{Factor: 1.05, DecreaseBufferSec: 50},
		},
		Issues: []string{"lowest track bitrate set high"},
	}
}

// S2 resumes downloading only when the buffer has drained to 4 s — the
// stall case study of Figure 7.
func S2() *Service {
	return &Service{
		Name: "S2",
		Media: media.Config{
			Name: "s2", Duration: videoDuration, SegmentDuration: 3,
			TargetBitrates: targets([]float64{0.2, 0.4, 0.76, 1.4, 2.5, 4.2}, media.DeclareAverage, media.VBR, 2),
			Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclareAverage,
			SeparateAudio: true, AudioBitrate: 96e3, AudioSegmentDuration: 2, Seed: 206,
		},
		Build: manifest.BuildOptions{Protocol: manifest.Smooth},
		Player: player.Config{
			Name: "S2", StartupBufferSec: 6, StartupTrack: 2,
			PauseThresholdSec: 30, ResumeThresholdSec: 4,
			MaxConnections: 2, Persistent: true,
			Scheduler: player.SchedulerParallel, Audio: player.AudioSynced,
			Algorithm: adaptation.Throughput{Factor: 0.75},
		},
		Issues: []string{"resume threshold too low"},
	}
}

// Origin generates the service's content and wraps it in an origin.
func (s *Service) Origin() (*origin.Origin, error) {
	v, err := media.Generate(s.Media)
	if err != nil {
		return nil, fmt.Errorf("services: %s: %w", s.Name, err)
	}
	return origin.NewWithOptions(manifest.Build(v, s.Build), s.OriginOptions)
}

// Video generates the service's content description.
func (s *Service) Video() (*media.Video, error) {
	return media.Generate(s.Media)
}

// Run streams the service over the given bandwidth profile for dur
// seconds of virtual time and returns the session result. A zero dur
// runs the paper's 10-minute session. The player config may be adjusted
// via mutate (pass nil for the stock service).
func (s *Service) Run(p *netem.Profile, dur float64, mutate func(*player.Config)) (*player.Result, error) {
	org, err := s.Origin()
	if err != nil {
		return nil, err
	}
	return RunWithOrigin(s.Player, org, p, dur, mutate)
}

// Resolve applies the duration override and the mutator to a player
// config exactly as RunWithOrigin does, and returns the config the
// session will actually be built from. Exported so the experiment cache
// can fingerprint the resolved config without running the session.
func Resolve(cfg player.Config, dur float64, mutate func(*player.Config)) player.Config {
	if dur > 0 {
		cfg.SessionDuration = dur
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// RunWithOrigin runs a player config against a prebuilt origin (callers
// that sweep many profiles reuse the origin to avoid re-encoding).
func RunWithOrigin(cfg player.Config, org *origin.Origin, p *netem.Profile, dur float64, mutate func(*player.Config)) (*player.Result, error) {
	cfg = Resolve(cfg, dur, mutate)
	net := simnet.New(simnet.DefaultConfig(), p)
	sess, err := player.NewSession(cfg, org, net)
	if err != nil {
		return nil, err
	}
	return sess.Run(), nil
}

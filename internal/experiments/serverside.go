package experiments

import (
	"context"
	"fmt"

	"repro/internal/media"
	"repro/internal/textplot"
)

// Fig3 reproduces Figure 3: the per-profile average bandwidth of the 14
// cellular traces, ascending ~1→40 Mbit/s.
func Fig3(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title:  "Figure 3 — cellular bandwidth profiles",
		Note:   "synthetic stand-ins for the paper's 14 recorded traces (600 s, 1 s samples)",
		Header: []string{"profile", "avg Mbps", "min Mbps", "max Mbps", "p10 Mbps", "p90 Mbps"},
	}
	for i, p := range cellular() {
		samples := append([]float64(nil), p.Samples...)
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			textplot.Mbps(p.Average()),
			textplot.Mbps(p.Min()),
			textplot.Mbps(p.Max()),
			textplot.Mbps(textplot.Percentile(samples, 10)),
			textplot.Mbps(textplot.Percentile(samples, 90)),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// Fig4 reproduces Figure 4: each service's declared track ladder. The
// highest tracks span 2–5.5 Mbit/s; H2, H5 and S1 have bottom tracks
// above 500 kbit/s (a Table 2 issue); adjacent rungs are 1.5–2× apart.
func Fig4(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title:  "Figure 4 — declared bitrates of tracks (Mbit/s)",
		Header: []string{"service", "tracks", "lowest", "highest", "ladder"},
	}
	for _, svc := range allServices() {
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, nil, err
		}
		var declared []float64
		for _, r := range org.Pres.Video {
			declared = append(declared, r.DeclaredBitrate)
		}
		t.AddRow(svc.Name,
			fmt.Sprintf("%d", len(declared)),
			textplot.Mbps(declared[0]),
			textplot.Mbps(declared[len(declared)-1]),
			fmtLadder(declared),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// Fig5 reproduces Figure 5: the distribution of actual segment bitrate
// normalised by the declared bitrate for each service's highest track.
// Peak-declared VBR services sit well below 1; S1/S2 (average-declared)
// straddle 1; CBR services cluster tightly at ~0.9.
func Fig5(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title:  "Figure 5 — actual/declared bitrate of the highest track",
		Header: []string{"service", "encoding", "declared", "min", "p25", "median", "p75", "max"},
	}
	for _, svc := range allServices() {
		v, err := svc.Video()
		if err != nil {
			return nil, nil, err
		}
		tr := v.HighestTrack()
		var ratios []float64
		for i := range tr.SegmentBytes {
			ratios = append(ratios, tr.ActualBitrate(i)/tr.DeclaredBitrate)
		}
		t.AddRow(svc.Name,
			v.Encoding.String(),
			policyName(v.DeclaredPolicy),
			fmt.Sprintf("%.2f", textplot.Percentile(ratios, 0)),
			fmt.Sprintf("%.2f", textplot.Percentile(ratios, 25)),
			fmt.Sprintf("%.2f", textplot.Percentile(ratios, 50)),
			fmt.Sprintf("%.2f", textplot.Percentile(ratios, 75)),
			fmt.Sprintf("%.2f", textplot.Percentile(ratios, 100)),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

func policyName(p media.DeclaredPolicy) string {
	if p == media.DeclareAverage {
		return "average"
	}
	return "peak"
}

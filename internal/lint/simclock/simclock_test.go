package simclock

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestSimclock(t *testing.T) {
	linttest.Run(t, Analyzer, "simnet", "wallclock")
}

func TestInScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/simnet", true},
		{"repro/internal/manifest/hls", true},
		{"repro/internal/proxy", true},
		{"repro/internal/experiments_test", true},
		{"repro/internal/httpplay", false},
		{"repro/cmd/vodserve", false},
		{"repro/examples/quickstart", false},
		{"repro/internal/lint/simclock", false},
	}
	for _, c := range cases {
		if got := InScope(c.path); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

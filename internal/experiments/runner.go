package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/textplot"
)

// The parallel experiment engine. Every experiment is an independent
// pure-ish computation (fixed seeds, no cross-experiment state other
// than the content-addressed caches in internal/expcache), so a full
// report regeneration fans out across the process-wide scheduler (see
// sched.go for the single-semaphore design). Determinism is preserved by
// collecting results by index — paper order in, paper order out — never
// by completion order; the same holds for the intra-experiment sweep
// helper the heaviest experiments use.

// Result is the outcome of one experiment run by RunAll.
type Result struct {
	// Index is the position of the experiment in the requested order.
	Index int
	// ID and Title identify the artifact.
	ID, Title string
	// Tables and Plots are the regenerated outputs (nil on error).
	Tables []*textplot.Table
	Plots  []string
	// Err is the experiment's failure, or the context error for
	// experiments that were never scheduled because the run was
	// cancelled.
	Err error
	// Elapsed is the wall-clock time the experiment took.
	Elapsed time.Duration
	// AllocBytes is the heap allocated while the experiment ran. It is
	// exact for Workers=1; under parallel runs it includes allocations
	// by concurrently running experiments and is only indicative.
	AllocBytes uint64
}

// Options configures RunAll.
type Options struct {
	// Workers caps the number of experiments running concurrently. Zero
	// or negative means the scheduler capacity (GOMAXPROCS at startup).
	// The effective parallelism is additionally bounded by the
	// process-wide scheduler, which experiment-internal sweeps share.
	Workers int
	// IDs selects a subset of experiments to run, in the given order.
	// Nil means every registered experiment in paper order.
	IDs []string
	// OnProgress, when non-nil, is called once per experiment as it
	// finishes (completion order). Calls are serialised; the callback
	// does not need its own locking.
	OnProgress func(Result)
}

// RunAll regenerates the selected experiments and returns their results
// in request order. Each experiment runs under one slot of the
// process-wide scheduler, so experiment-level and sweep-level fan-out
// together never exceed the scheduler capacity. The first experiment
// error (in request order, not completion order) is also returned as
// the run error; cancelling ctx stops scheduling new experiments and
// marks the unscheduled ones with the context error.
func RunAll(ctx context.Context, opts Options) ([]Result, error) {
	exps, err := selectExperiments(opts.IDs)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = sched.Capacity()
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	results := make([]Result, len(exps))
	for i, e := range exps {
		results[i] = Result{Index: i, ID: e.ID, Title: e.Title}
	}

	var progressMu sync.Mutex
	runOne := func(i int) {
		r := &results[i]
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now() //vodlint:allow simclock — wall-clock runner timing, not simulation state
		r.Tables, r.Plots, r.Err = exps[i].Run(ctx)
		r.Elapsed = time.Since(start) //vodlint:allow simclock — wall-clock runner timing, not simulation state
		runtime.ReadMemStats(&ms)
		r.AllocBytes = ms.TotalAlloc - before
		if opts.OnProgress != nil {
			progressMu.Lock()
			opts.OnProgress(*r)
			progressMu.Unlock()
		}
	}
	// runSlotted runs one experiment under a scheduler slot; a
	// cancellation while waiting marks the result instead of running.
	runSlotted := func(i int) {
		if err := sched.Acquire(ctx); err != nil {
			results[i].Err = err
			return
		}
		defer sched.Release()
		runOne(i)
	}

	if workers <= 1 {
		for i := range exps {
			runSlotted(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runSlotted(i)
				}
			}()
		}
		scheduled := make([]bool, len(exps))
	feed:
		for i := range exps {
			select {
			case jobs <- i:
				scheduled[i] = true
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		for i := range exps {
			if !scheduled[i] {
				results[i].Err = ctx.Err()
			}
		}
	}

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("experiments: %s: %w", results[i].ID, results[i].Err)
		}
	}
	return results, nil
}

// selectExperiments resolves ids to experiments, defaulting to paper
// order.
func selectExperiments(ids []string) ([]Experiment, error) {
	if ids == nil {
		return All(), nil
	}
	exps := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e := ByID(id)
		if e == nil {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		exps = append(exps, *e)
	}
	return exps, nil
}

// sweep fans fn out over items and collects the outputs by item index,
// so callers observe exactly the ordering a serial loop would produce.
// It is the intra-experiment counterpart of RunAll for services ×
// profiles (and similar) product sweeps.
//
// Concurrency comes from the process-wide scheduler: helper goroutines
// are started only for slots that are free right now (non-blocking
// tryAcquire — never waiting on slots the caller's own ancestors hold),
// and the caller always participates inline under the slot it already
// occupies. With no free slots the sweep degrades to the serial loop.
//
// The first error cancels the sweep: items not yet started are skipped,
// in-flight items finish, and the smallest-index error observed is
// returned. Cancelling ctx likewise stops new items; the context error
// is returned if no item error preceded it.
func sweep[In, Out any](ctx context.Context, items []In, fn func(In) (Out, error)) ([]Out, error) {
	outs := make([]Out, len(items))
	if len(items) == 0 {
		return outs, ctx.Err()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		errMu    sync.Mutex
		errIdx   = len(items)
		firstErr error
	)
	record := func(i int, err error) {
		errMu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
		cancel()
	}
	work := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= len(items) {
				return
			}
			out, err := fn(items[i])
			if err != nil {
				record(i, err)
				return
			}
			outs[i] = out
		}
	}

	var wg sync.WaitGroup
	for spawned := 0; spawned < len(items)-1 && sched.TryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sched.Release()
			work()
		}()
	}
	work()
	wg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return outs, nil
}

// Package vod is the public facade of the HAS streaming laboratory built
// for reproducing "Dissecting VOD Services for Cellular: Performance,
// Root Causes and Best Practices" (IMC 2017).
//
// It re-exports the building blocks a downstream user needs:
//
//   - content modelling and manifest generation (media, manifest),
//   - HLS / MPEG-DASH / SmoothStreaming codecs,
//   - the deterministic network simulator and bandwidth profiles
//     (simnet, netem),
//   - the configurable HAS player engine with adaptation and segment
//     replacement policies (player, adaptation, replacement),
//   - QoE metrics and the traffic-analysis methodology (qoe, traffic,
//     uimon, probe),
//   - the twelve service models of the paper (services) and the
//     experiment registry regenerating every table and figure
//     (experiments).
//
// The quickest way in:
//
//	svc := vod.ServiceByName("H5")
//	res, err := svc.Run(vod.CellularProfile(3), 600, nil)
//	rep := vod.QoE(res)
//	fmt.Printf("avg %.0f kbit/s, %d stalls\n", rep.AvgBitrate/1e3, rep.StallCount)
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package vod

import (
	"repro/internal/adaptation"
	"repro/internal/energy"
	"repro/internal/live"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/qoe"
	"repro/internal/replacement"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/traffic"
	"repro/internal/uimon"
)

// Content and manifests.
type (
	// Video is a generated media presentation (tracks × segments).
	Video = media.Video
	// MediaConfig parameterises content generation.
	MediaConfig = media.Config
	// Track is one quality level.
	Track = media.Track
	// Presentation is the protocol-neutral manifest model.
	Presentation = manifest.Presentation
	// BuildOptions selects protocol and addressing for a manifest.
	BuildOptions = manifest.BuildOptions
	// Origin serves a presentation (virtual-time lookups and real HTTP).
	Origin = origin.Origin
)

// Network.
type (
	// Profile is a piecewise-constant bandwidth schedule.
	Profile = netem.Profile
	// NetworkConfig holds the TCP/latency model parameters.
	NetworkConfig = simnet.Config
	// Network is the deterministic fluid network simulator.
	Network = simnet.Network
)

// Player.
type (
	// PlayerConfig parameterises the client engine.
	PlayerConfig = player.Config
	// Session is one virtual-time streaming session.
	Session = player.Session
	// Result is everything a session produces.
	Result = player.Result
	// Algorithm is a track-selection policy.
	Algorithm = adaptation.Algorithm
	// Estimator is a bandwidth estimator.
	Estimator = adaptation.Estimator
	// ReplacementPolicy is a segment-replacement policy.
	ReplacementPolicy = replacement.Policy
)

// Measurement.
type (
	// Report is the paper's QoE metric set.
	Report = qoe.Report
	// Transaction is one observed HTTP exchange.
	Transaction = traffic.Transaction
	// TrafficResult is the analyzer output for a session.
	TrafficResult = traffic.Result
	// UISample is one playback-progress observation.
	UISample = uimon.Sample
	// Service is one of the paper's twelve service models.
	Service = services.Service
)

// GenerateVideo builds deterministic synthetic content.
func GenerateVideo(cfg MediaConfig) (*Video, error) { return media.Generate(cfg) }

// BuildManifest derives the manifest-level description of a video.
func BuildManifest(v *Video, opts BuildOptions) *Presentation { return manifest.Build(v, opts) }

// NewOrigin encodes a presentation's wire documents and serves them.
func NewOrigin(p *Presentation) (*Origin, error) { return origin.New(p) }

// CellularProfile returns synthetic cellular trace i (1..14), sorted by
// ascending average bandwidth like the paper's Profile 1..14.
func CellularProfile(i int) *Profile { return netem.Cellular(i) }

// CellularProfiles returns all 14 synthetic traces.
func CellularProfiles() []*Profile { return netem.CellularSet() }

// ConstantProfile returns a fixed-bandwidth profile (bits/s, seconds).
func ConstantProfile(bps, dur float64) *Profile { return netem.Constant("constant", bps, dur) }

// StepProfile returns the paper's step-function probe profile.
func StepProfile(before, after, switchAt, dur float64) *Profile {
	return netem.Step("step", before, after, switchAt, dur)
}

// NewNetwork creates a simulated network over a profile. A zero-value
// NetworkConfig gets sensible defaults (70 ms RTT, IW10, slow start).
func NewNetwork(cfg NetworkConfig, p *Profile) *Network { return simnet.New(cfg, p) }

// DefaultNetworkConfig returns the default transport parameters.
func DefaultNetworkConfig() NetworkConfig { return simnet.DefaultConfig() }

// NewSession builds a virtual-time streaming session.
func NewSession(cfg PlayerConfig, org *Origin, net *Network) (*Session, error) {
	return player.NewSession(cfg, org, net)
}

// Group coordinates multiple sessions over one shared network (the
// multi-client fairness scenario).
type Group = player.Group

// NewGroup creates a multi-session coordinator; add sessions built over
// the same Network and call Run.
func NewGroup() *Group { return player.NewGroup() }

// Stream runs a player config against an origin over a profile for dur
// seconds of virtual time (0 = the paper's 10-minute session).
func Stream(cfg PlayerConfig, org *Origin, p *Profile, dur float64) (*Result, error) {
	return services.RunWithOrigin(cfg, org, p, dur, nil)
}

// QoE computes the paper's QoE metrics from a session result.
func QoE(res *Result) Report { return qoe.FromResult(res) }

// AnalyzeTraffic reconstructs segment downloads from an HTTP log the way
// the paper's traffic analyzer does (§2.3).
func AnalyzeTraffic(name string, txs []Transaction) (*TrafficResult, error) {
	return traffic.Analyze(name, txs)
}

// UISamples converts a session result into the 1 Hz progress samples a UI
// monitor would have captured (§2.4).
func UISamples(res *Result) []UISample { return uimon.FromResult(res) }

// Services returns the twelve service models (H1–H6, D1–D4, S1–S2).
func Services() []*Service { return services.All() }

// Live streaming (the live-HLS extension; see internal/live).
type (
	// LiveOrigin is a live HLS channel with a sliding playlist window.
	LiveOrigin = live.Origin
	// LiveConfig parameterises a live client session.
	LiveConfig = live.Config
	// LiveResult summarises a live session (latency, stalls, bitrate).
	LiveResult = live.Result
)

// NewLiveOrigin wraps generated content as a live broadcast.
func NewLiveOrigin(v *Video) *LiveOrigin { return live.NewOrigin(v) }

// PlayLive runs a live client session over a simulated network.
func PlayLive(cfg LiveConfig, o *LiveOrigin, net *Network) (*LiveResult, error) {
	return live.Play(cfg, o, net)
}

// RadioModel is the LTE RRC energy model (§3.3.2).
type RadioModel = energy.Model

// RadioUsage is the per-session radio-state and energy accounting.
type RadioUsage = energy.Usage

// RadioEnergy estimates the cellular radio energy a session's traffic
// pattern costs, under typical LTE parameters.
func RadioEnergy(res *Result) RadioUsage {
	return energy.DefaultLTE().Analyze(res.Transactions, res.EndTime)
}

// ServiceByName returns one service model, or nil.
func ServiceByName(name string) *Service { return services.ByName(name) }

package netem

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAtAndBoundary(t *testing.T) {
	p := &Profile{SampleDur: 1, Samples: []float64{10, 20, 30}}
	cases := []struct{ t, want float64 }{
		{0, 10}, {0.5, 10}, {1, 20}, {2.9, 30},
		{3, 10},   // loops
		{4.5, 20}, // loops
	}
	for _, c := range cases {
		if got := p.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := p.NextBoundary(0); got != 1 {
		t.Errorf("NextBoundary(0) = %v", got)
	}
	if got := p.NextBoundary(0.999999); got != 1 {
		t.Errorf("NextBoundary(0.999999) = %v", got)
	}
	if got := p.NextBoundary(1); got != 2 {
		t.Errorf("NextBoundary(1) = %v", got)
	}
}

func TestIntegral(t *testing.T) {
	p := &Profile{SampleDur: 1, Samples: []float64{10, 20, 30}}
	cases := []struct{ a, b, want float64 }{
		{0, 1, 10},
		{0, 3, 60},
		{0.5, 1.5, 15},
		{2, 4, 40},  // wraps: 30 + 10
		{0, 6, 120}, // two periods
		{1, 1, 0},   // empty
		{2.5, 2.5, 0},
	}
	for _, c := range cases {
		if got := p.Integral(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Integral(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAverageMinMax(t *testing.T) {
	p := &Profile{SampleDur: 1, Samples: []float64{10, 20, 30}}
	if got := p.Average(); got != 20 {
		t.Errorf("Average = %v", got)
	}
	if got := p.Min(); got != 10 {
		t.Errorf("Min = %v", got)
	}
	if got := p.Max(); got != 30 {
		t.Errorf("Max = %v", got)
	}
	if got := p.Duration(); got != 3 {
		t.Errorf("Duration = %v", got)
	}
}

func TestConstantAndStep(t *testing.T) {
	c := Constant("c", 5e6, 10)
	if c.At(3) != 5e6 || c.Duration() != 10 {
		t.Error("Constant profile wrong")
	}
	s := Step("s", 4e6, 1e6, 5, 10)
	if s.At(4.5) != 4e6 || s.At(5) != 1e6 {
		t.Error("Step profile wrong")
	}
}

func TestSplitAndSlice(t *testing.T) {
	p := Constant("c", 1e6, 600)
	parts := p.Split(60)
	if len(parts) != 10 {
		t.Fatalf("Split gave %d parts", len(parts))
	}
	for _, part := range parts {
		if part.Duration() != 60 {
			t.Fatalf("part duration %v", part.Duration())
		}
	}
	sl := p.Slice(30, 60)
	if sl.Duration() != 60 {
		t.Errorf("Slice duration %v", sl.Duration())
	}
	// Partial final chunk is discarded.
	if got := len(Constant("c", 1e6, 90).Split(60)); got != 1 {
		t.Errorf("Split(90s/60s) = %d chunks", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	p := &Profile{Name: "trace x", SampleDur: 0.5, Samples: []float64{1e6, 2.5e6, 0}}
	var buf bytes.Buffer
	if err := p.Format(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.SampleDur != p.SampleDur || len(q.Samples) != len(p.Samples) {
		t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Samples {
		if q.Samples[i] != p.Samples[i] {
			t.Fatalf("sample %d: %v vs %v", i, q.Samples[i], p.Samples[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"sampledur 0\n1000\n",
		"notanumber\n",
		"sampledur 1\n-5\n... wait no",
	}
	for i, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("input %d: expected error", i)
		}
	}
}

func TestQuickFormatParse(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Profile{Name: "q", SampleDur: 1}
		for i := 0; i < int(n%50)+1; i++ {
			p.Samples = append(p.Samples, math.Trunc(rng.Float64()*1e8)/100)
		}
		var buf bytes.Buffer
		if err := p.Format(&buf); err != nil {
			return false
		}
		q, err := Parse(&buf)
		if err != nil || len(q.Samples) != len(p.Samples) {
			return false
		}
		for i := range p.Samples {
			if math.Abs(q.Samples[i]-p.Samples[i]) > 1e-6*math.Max(1, p.Samples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCellularSet(t *testing.T) {
	ps := CellularSet()
	if len(ps) != CellularCount {
		t.Fatalf("%d profiles, want %d", len(ps), CellularCount)
	}
	for i, p := range ps {
		if p.Duration() != 600 {
			t.Errorf("profile %d duration %v", i+1, p.Duration())
		}
		if i > 0 && p.Average() < ps[i-1].Average() {
			t.Errorf("profiles not sorted by average at %d", i+1)
		}
		if p.Min() <= 0 {
			t.Errorf("profile %d has non-positive sample", i+1)
		}
		if p.Max() > 61e6 {
			t.Errorf("profile %d peaks at %.1f Mbps (cap is ~60)", i+1, p.Max()/1e6)
		}
	}
	// The spread matches Figure 3: lowest ~0.6, highest ~35-40 Mbit/s.
	if a := ps[0].Average(); a < 0.4e6 || a > 0.9e6 {
		t.Errorf("profile 1 average %.2f Mbps", a/1e6)
	}
	if a := ps[13].Average(); a < 25e6 {
		t.Errorf("profile 14 average %.2f Mbps", a/1e6)
	}
	// Determinism.
	qs := CellularSet()
	for i := range ps {
		if ps[i].Samples[100] != qs[i].Samples[100] {
			t.Fatal("cellular profiles not deterministic")
		}
	}
}

func TestSortByAverage(t *testing.T) {
	ps := []*Profile{
		Constant("b", 2e6, 10),
		Constant("a", 1e6, 10),
	}
	SortByAverage("p", ps)
	if ps[0].Average() != 1e6 || ps[0].Name != "p-01" || ps[1].Name != "p-02" {
		t.Errorf("SortByAverage wrong: %v %v", ps[0].Name, ps[1].Name)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("const:2.5", 60)
	if err != nil || p.At(10) != 2.5e6 {
		t.Fatalf("const spec: %v %v", p, err)
	}
	p, err = ParseSpec("step:4,0.8,20", 60)
	if err != nil || p.At(10) != 4e6 || p.At(30) != 0.8e6 {
		t.Fatalf("step spec: %v %v", p, err)
	}
	p, err = ParseSpec("3", 60)
	if err != nil || p.Name != "cellular-03" {
		t.Fatalf("cellular spec: %v %v", p, err)
	}
	for _, bad := range []string{"", "0", "15", "const:x", "const:-1", "step:1,2", "step:a,b,c"} {
		if _, err := ParseSpec(bad, 60); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestCursorMatchesProfile drives a cursor along randomized monotone
// time sequences (the forward-simulation access pattern) and checks
// every read against the stateless Profile methods, including reads
// exactly on boundaries and across trace-loop wraparound.
func TestCursorMatchesProfile(t *testing.T) {
	profiles := []*Profile{
		{Name: "three", SampleDur: 1, Samples: []float64{10, 20, 30}},
		Constant("const", 5e6, 10),
		Step("step", 4e6, 1e6, 5, 20),
		Cellular(3),
	}
	rng := rand.New(rand.NewSource(42))
	for _, p := range profiles {
		c := p.Cursor()
		tm := 0.0
		for i := 0; i < 5000; i++ {
			switch rng.Intn(4) {
			case 0: // land exactly on a boundary
				tm = p.NextBoundary(tm)
			case 1: // tiny forward nudge within a sample
				tm += rng.Float64() * 0.01
			default: // jump forward, possibly over several samples
				tm += rng.Float64() * 3
			}
			if got, want := c.At(tm), p.At(tm); got != want {
				t.Fatalf("%s: Cursor.At(%v) = %v, Profile.At = %v", p.Name, tm, got, want)
			}
			if got, want := c.NextBoundary(tm), p.NextBoundary(tm); got != want {
				t.Fatalf("%s: Cursor.NextBoundary(%v) = %v, Profile.NextBoundary = %v", p.Name, tm, got, want)
			}
		}
	}
}

// TestCursorBackwardSeek checks that a cursor still answers correctly
// (by reseeking) when time moves backwards, so callers need no special
// casing even though only forward motion is fast.
func TestCursorBackwardSeek(t *testing.T) {
	p := &Profile{Name: "b", SampleDur: 1, Samples: []float64{1, 2, 3, 4}}
	c := p.Cursor()
	times := []float64{3.5, 1.2, 0.1, 2.9, 0.0, 3.999}
	for _, tm := range times {
		if got, want := c.At(tm), p.At(tm); got != want {
			t.Fatalf("Cursor.At(%v) = %v, want %v", tm, got, want)
		}
	}
}

func TestCursorIntegral(t *testing.T) {
	p := &Profile{Name: "i", SampleDur: 1, Samples: []float64{10, 20, 30}}
	cases := [][2]float64{{0, 1}, {0, 3}, {0.5, 1.5}, {2, 4}, {0, 6}, {1, 1}}
	c := p.Cursor()
	for _, cse := range cases {
		if got, want := c.Integral(cse[0], cse[1]), p.Integral(cse[0], cse[1]); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Cursor.Integral(%v,%v) = %v, want %v", cse[0], cse[1], got, want)
		}
	}
	// Empty profile: never a boundary.
	e := (&Profile{SampleDur: 1}).Cursor()
	if got := e.NextBoundary(5); !math.IsInf(got, 1) {
		t.Fatalf("empty-profile NextBoundary = %v, want +Inf", got)
	}
	if got := e.At(5); got != 0 {
		t.Fatalf("empty-profile At = %v, want 0", got)
	}
}

func TestNextChange(t *testing.T) {
	p := &Profile{SampleDur: 1, Samples: []float64{10, 10, 20, 20, 20, 10}}
	cases := []struct{ t, want float64 }{
		{0, 2},   // skips the equal 10→10 boundary at t=1
		{0.5, 2}, // same run
		{1.5, 2}, // inside the second equal sample
		{2, 5},   // 20-run ends at t=5
		{4.9, 5}, // same run
		{5, 8},   // wraps: samples 0,1 are also 10, first change at 8
	}
	for _, c := range cases {
		if got := p.NextChange(c.t); got != c.want {
			t.Errorf("NextChange(%v) = %v, want %v", c.t, got, c.want)
		}
	}

	// A constant profile never changes.
	con := Constant("c", 5e6, 30)
	if got := con.NextChange(3.7); !math.IsInf(got, 1) {
		t.Errorf("Constant NextChange = %v, want +Inf", got)
	}

	// NextChange is always a NextBoundary-reachable instant and the value
	// really differs there while staying constant before it.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(1 + rng.Intn(3)) // many equal runs
		}
		p := &Profile{SampleDur: 1, Samples: samples}
		tq := rng.Float64() * 20
		chg := p.NextChange(tq)
		v := p.At(tq)
		if math.IsInf(chg, 1) {
			for i := 1; i < n; i++ {
				if samples[i] != samples[0] {
					t.Fatalf("NextChange(%v)=+Inf but samples differ: %v", tq, samples)
				}
			}
			continue
		}
		if p.At(chg) == v {
			t.Fatalf("NextChange(%v)=%v but value unchanged (%v): %v", tq, chg, v, samples)
		}
		// every boundary strictly between tq and chg keeps the value
		for b := p.NextBoundary(tq); b < chg; b = p.NextBoundary(b) {
			if p.At(b) != v {
				t.Fatalf("value changed at %v before NextChange(%v)=%v: %v", b, tq, chg, samples)
			}
		}
	}
}

func TestCursorNextChange(t *testing.T) {
	for trial := int64(0); trial < 50; trial++ {
		rng := rand.New(rand.NewSource(100 + trial))
		n := 1 + rng.Intn(10)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(1 + rng.Intn(3))
		}
		p := &Profile{SampleDur: 1, Samples: samples}
		cur := p.Cursor()
		tq := 0.0
		for i := 0; i < 100; i++ {
			tq += rng.Float64()
			want := p.NextChange(tq)
			if got := cur.NextChange(tq); got != want {
				t.Fatalf("cursor NextChange(%v) = %v, want %v (samples %v)", tq, got, want, samples)
			}
			// interleave At/NextBoundary to stress the shared window cache
			if got, want := cur.At(tq), p.At(tq); got != want {
				t.Fatalf("cursor At(%v) = %v, want %v", tq, got, want)
			}
		}
	}
}

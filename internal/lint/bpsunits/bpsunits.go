// Package bpsunits is a heuristic unit-safety lint for bandwidth
// arithmetic.
//
// HAS code juggles two unit families that differ by exactly 8×:
// bits-per-second (declared bitrates, shaper limits, throughput
// estimates — the paper reports everything in kbps/Mbps) and bytes
// (segment sizes, transaction payloads, token buckets). Adding or
// comparing a *Bps quantity against a *Bytes quantity without an
// explicit *8 or /8 is the classic bandwidth-accounting bug — the
// estimator feeding internal/simnet would be silently off by 8×. The
// analyzer classifies identifiers by name (bps/kbps/mbps/bit tokens vs
// byte tokens) and flags +, -, and comparisons that mix the families
// when neither operand carries a conversion by 8. Multiplication and
// division are exempt: they are how units legitimately change.
package bpsunits

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags additive or comparison arithmetic directly mixing
// bits-per-second-named and byte-named operands with no *8 or /8.
var Analyzer = &lint.Analyzer{
	Name: "bpsunits",
	Doc: "flag +/-/comparison mixing bits-per-second-named and byte-named " +
		"values without an explicit *8 or /8 conversion",
	Run: run,
}

type unitClass int

const (
	unitNone unitClass = iota
	unitBits
	unitBytes
)

// classify tokenises a camelCase/snake_case identifier and looks for
// unit-bearing words. Names mentioning both families (bytesToBits)
// classify as none: they are converters.
func classify(name string) unitClass {
	bits, bytes := false, false
	for _, tok := range splitWords(name) {
		switch tok {
		case "bps", "kbps", "mbps", "gbps", "bit", "bits", "bitrate", "bitrates":
			bits = true
		case "byte", "bytes":
			bytes = true
		}
	}
	switch {
	case bits && bytes, !bits && !bytes:
		return unitNone
	case bits:
		return unitBits
	default:
		return unitBytes
	}
}

// splitWords lowercases and splits fooBarBps/foo_bar_bps into
// [foo bar bps]; digits glue to the preceding word so Kbps8 stays one
// token.
func splitWords(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	for i, r := range name {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			// New word unless we are inside an acronym run (BPS).
			if i > 0 && len(cur) > 0 {
				prev := cur[len(cur)-1]
				if prev < 'A' || prev > 'Z' {
					flush()
				}
			}
			cur = append(cur, r)
		default:
			// A lowercase letter after an acronym run starts a new word
			// at the run's last capital: "BPSLimit" -> bps, limit.
			if len(cur) > 1 && r >= 'a' && r <= 'z' {
				prev := cur[len(cur)-1]
				if prev >= 'A' && prev <= 'Z' {
					head := cur[:len(cur)-1]
					words = append(words, strings.ToLower(string(head)))
					cur = cur[len(cur)-1:]
				}
			}
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

// operandClass classifies an expression by its naming, and reports
// whether the subtree already contains a by-8 conversion.
func operandClass(e ast.Expr) (unitClass, bool) {
	conv := containsByEight(e)
	if id := lint.RootIdent(e); id != nil {
		return classify(id.Name), conv
	}
	// For compound arithmetic (a*b, a/b) classify from any named leaf.
	cls := unitNone
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && cls == unitNone {
			cls = classify(id.Name)
		}
		return cls == unitNone
	})
	return cls, conv
}

// containsByEight detects *8, 8*, or /8 anywhere in the expression.
func containsByEight(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if (be.Op == token.MUL && (isEight(be.X) || isEight(be.Y))) ||
			(be.Op == token.QUO && isEight(be.Y)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isEight(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == "8"
}

// mixing lists the operators for which mixed units are always a bug:
// additive arithmetic and magnitude comparisons. MUL/QUO convert units
// and stay legal.
var mixing = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if mixing[e.Op] {
					report(pass, e.OpPos, e.Op, e.X, e.Y)
				}
			case *ast.AssignStmt:
				if len(e.Lhs) == 1 && len(e.Rhs) == 1 &&
					(e.Tok == token.ASSIGN || mixing[e.Tok]) {
					report(pass, e.TokPos, e.Tok, e.Lhs[0], e.Rhs[0])
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *lint.Pass, pos token.Pos, op token.Token, x, y ast.Expr) {
	cx, convX := operandClass(x)
	cy, convY := operandClass(y)
	if cx == unitNone || cy == unitNone || cx == cy || convX || convY {
		return
	}
	pass.Reportf(pos,
		"%q mixes bits-per-second and byte quantities with no *8 or /8 conversion — the classic 8x bandwidth-accounting bug",
		op)
}

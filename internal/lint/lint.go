// Package lint is the home of vodlint, the static-analysis suite that
// enforces this repository's determinism contract: every experiment,
// table and figure must be bit-for-bit reproducible, so the simulation
// packages may not read the wall clock, draw from unseeded randomness,
// iterate maps into ordered output, compare floats exactly, or mix
// bits-per-second with byte quantities unconverted.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone — go/ast, go/parser and go/types — because this module carries
// no external dependencies. An analyzer written here ports to the real
// framework by changing only the import path.
//
// Findings can be suppressed site-by-site with a directive comment:
//
//	start := time.Now() //vodlint:allow simclock — wall-clock runner timing
//
// placed on the offending line or on the line directly above it. The
// directive names the analyzer it silences; a bare //vodlint:allow is
// ignored so suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name, documentation, and a Run
// function applied to each package. This mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vodlint:allow directives.
	Name string
	// Doc is the one-paragraph help text shown by vodlint -help.
	Doc string
	// Run inspects one package via the Pass and reports findings.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	// Analyzer is the analysis being run.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions (shared across packages).
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's findings for the files.
	TypesInfo *types.Info
	// TestFilesOnly restricts reporting to _test.go files; the loader
	// sets it on test-augmented units so base files are not re-reported.
	TestFilesOnly bool

	diags []Diagnostic
	allow map[string]map[int]bool // filename -> line -> allowed
	audit *Audit                  // non-nil when RunWithAudit tracks suppressions
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message states the problem.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding unless a //vodlint:allow directive covers
// its line or the Pass is restricted to test files and the position is
// not in one.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.TestFilesOnly && !strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.allowed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// allowed reports whether an allow directive for this analyzer covers
// the line or the line directly above it, informing the audit of the
// directive it used.
func (p *Pass) allowed(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	ok := lines[pos.Line] || lines[pos.Line-1]
	if ok && p.audit != nil {
		if lines[pos.Line] {
			p.audit.markUsed(pos.Filename, pos.Line, p.Analyzer.Name)
		}
		if lines[pos.Line-1] {
			p.audit.markUsed(pos.Filename, pos.Line-1, p.Analyzer.Name)
		}
	}
	return ok
}

// indexDirectives scans the files' comments for //vodlint:allow
// directives naming this analyzer and records the lines they cover.
func (p *Pass) indexDirectives() {
	p.allow = map[string]map[int]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok || !names[p.Analyzer.Name] {
					continue
				}
				position := p.Fset.Position(c.Slash)
				m := p.allow[position.Filename]
				if m == nil {
					m = map[int]bool{}
					p.allow[position.Filename] = m
				}
				m[position.Line] = true
			}
		}
	}
}

// parseDirective extracts the analyzer names from a
// "//vodlint:allow name1 name2 — reason" comment. The reason text after
// the names is free-form; names stop at the first token that is not a
// plain identifier.
func parseDirective(text string) (map[string]bool, bool) {
	const prefix = "//vodlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	names := map[string]bool{}
	for _, tok := range strings.Fields(text[len(prefix):]) {
		if !isIdent(tok) {
			break
		}
		names[tok] = true
	}
	return names, len(names) > 0
}

func isIdent(s string) bool {
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return false
		}
	}
	return s != ""
}

// Run applies the analyzers to one type-checked package and returns
// their findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithAudit(pkg, analyzers, nil)
}

// RunWithAudit is Run with suppression tracking: when audit is
// non-nil, the package's allow directives are collected into it and
// each suppression marks its directive as load-bearing, so the audit
// can report the stale ones after the whole load.
func RunWithAudit(pkg *Package, analyzers []*Analyzer, audit *Audit) ([]Diagnostic, error) {
	if audit != nil {
		audit.Collect(pkg)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          pkg.Fset,
			Files:         pkg.Files,
			Pkg:           pkg.Types,
			TypesInfo:     pkg.Info,
			TestFilesOnly: pkg.TestUnit,
			audit:         audit,
		}
		pass.indexDirectives()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diags...)
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Package fold exercises foldorder: functions whose names announce
// accumulation (merge, fold, reduce, combine, accumulate) and one
// annotated closure-style accumulator, against non-fold twins.
package fold

import "sync"

type agg struct {
	total  float64
	counts map[string]int
}

// mergeChans drives its accumulator from channel readiness — the
// exact shape the fleet's in-order prefix fold exists to avoid.
func (a *agg) mergeChans(in chan float64, out chan bool) {
	select { // want `select in fold function agg\.mergeChans`
	case out <- true:
	default:
	}
	a.total += <-in     // want `channel receive in fold function agg\.mergeChans`
	for v := range in { // want `range over channel in fold function agg\.mergeChans`
		a.total += v
	}
}

// reduceCounts folds a map in hash order.
func (a *agg) reduceCounts(src map[string]int) {
	for k, v := range src { // want `map iteration in fold function agg\.reduceCounts`
		a.counts[k] += v
	}
}

// combineShared walks a sync.Map, whose Range order is arbitrary.
func (a *agg) combineShared(m *sync.Map) {
	m.Range(func(k, v interface{}) bool { // want `sync\.Map\.Range in fold function agg\.combineShared`
		a.total += v.(float64)
		return true
	})
}

// mergeSlices is the blessed shape: positional iteration over
// already-ordered inputs.
func (a *agg) mergeSlices(parts [][]float64) {
	for _, part := range parts {
		for _, v := range part {
			a.total += v
		}
	}
}

// collect is not a fold function by name; the same constructs pass.
func collect(in chan float64) float64 {
	var total float64
	for v := range in {
		total += v
	}
	return total
}

// tally opts in by annotation rather than name.
//
//vodlint:fold — order-sensitive accumulator
func tally(in chan int) int {
	return <-in // want `channel receive in fold function tally`
}

// mergeSorted iterates a map the sanctioned way — keys first, sorted
// by the caller — and a suppressed violation shows the escape hatch.
func (a *agg) mergeSorted(src map[string]int, keys []string) {
	for _, k := range keys {
		a.counts[k] += src[k]
	}
	for k, v := range src { //vodlint:allow foldorder — fixture: counting only, order-insensitive
		_ = k
		a.total += float64(v)
	}
}

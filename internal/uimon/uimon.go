// Package uimon is the analogue of the paper's UI monitor (§2.4): the
// only things it sees are once-per-second playback-progress samples (the
// paper hooked ProgressBar.setProgress via Xposed, giving 1 s
// granularity). From that series alone it extracts startup delay and
// stall intervals; combined with the traffic analyzer it supports buffer
// inference (§2.5).
package uimon

import "repro/internal/player"

// Sample is one observation of the seekbar: at wall time T the playback
// position read Position seconds.
type Sample struct {
	// T is the wall time of the observation.
	T float64
	// Position is the media position shown by the player.
	Position float64
}

// Interval is a half-open wall-time interval.
type Interval struct {
	// Start and End bound the interval in wall seconds.
	Start, End float64
}

// Duration returns End-Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// FromResult converts a simulator session's 1 Hz snapshots into the
// samples a UI monitor would have produced (the monitor sees only the
// progress value, not the buffer).
func FromResult(r *player.Result) []Sample {
	out := make([]Sample, 0, len(r.Samples))
	for _, s := range r.Samples {
		out = append(out, Sample{T: s.T, Position: s.Playhead})
	}
	return out
}

// StartupDelay estimates the time from session start until playback first
// advances. It returns -1 when playback never started.
func StartupDelay(samples []Sample) float64 {
	for i := 1; i < len(samples); i++ {
		if samples[i].Position > samples[i-1].Position+1e-9 {
			return samples[i-1].T
		}
	}
	return -1
}

// Stalls returns intervals after playback start during which the position
// failed to advance for at least minDur seconds. With 1 s samples the
// boundaries carry ±1 s quantisation, exactly like the paper's monitor.
func Stalls(samples []Sample, minDur float64) []Interval {
	start := StartupDelay(samples)
	if start < 0 {
		return nil
	}
	var out []Interval
	stalledSince := -1.0
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= start {
			continue
		}
		advancing := samples[i].Position > samples[i-1].Position+1e-9
		if !advancing {
			if stalledSince < 0 {
				stalledSince = samples[i-1].T
			}
			continue
		}
		if stalledSince >= 0 {
			if iv := (Interval{Start: stalledSince, End: samples[i-1].T}); iv.Duration() >= minDur {
				out = append(out, iv)
			}
			stalledSince = -1
		}
	}
	if stalledSince >= 0 && len(samples) > 0 {
		if iv := (Interval{Start: stalledSince, End: samples[len(samples)-1].T}); iv.Duration() >= minDur {
			out = append(out, iv)
		}
	}
	return out
}

// PositionAt interpolates the playback position at wall time t.
func PositionAt(samples []Sample, t float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if t <= samples[0].T {
		return samples[0].Position
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T >= t {
			a, b := samples[i-1], samples[i]
			if b.T == a.T { //vodlint:allow floateq — zero-width interval guard on stored sample times
				return b.Position
			}
			f := (t - a.T) / (b.T - a.T)
			return a.Position + f*(b.Position-a.Position)
		}
	}
	return samples[len(samples)-1].Position
}

// Command vodbench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	vodbench -list
//	vodbench -exp fig8
//	vodbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	exp := flag.String("exp", "", "experiment id (fig3..fig15, table1, table2, sr_whatif, or 'all')")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		e := experiments.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "vodbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		todo = []experiments.Experiment{*e}
	}

	for _, e := range todo {
		start := time.Now()
		tables, plots, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s (%.1fs)\n\n", e.ID, e.Title, time.Since(start).Seconds())
		for _, t := range tables {
			fmt.Println(t.String())
		}
		for _, p := range plots {
			fmt.Println(p)
		}
	}
}

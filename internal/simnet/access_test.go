package simnet

// Tests for the two-level shared-edge / private-access topology
// (AccessLink): conservation at both levels in the style of the
// reference differential tests, equivalence of DialVia with an
// effectively unconstrained access link, and per-client degradation as
// edge concurrency rises.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netem"
)

// driveWorkload runs a seeded request loop: nClients clients, each
// dialing one connection via its own access link (nil = no link),
// issuing back-to-back transfers until the horizon. Returns total
// delivered bytes per client and the completion log (time, client).
func driveWorkload(t *testing.T, n *Network, conns []*Conn, horizon float64, seed int64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perClient := make([]float64, len(conns))
	cur := make([]*Transfer, len(conns))
	for i, c := range conns {
		cur[i] = c.Start(1e5+rng.Float64()*4e6, i)
	}
	for n.Now() < horizon {
		for _, tr := range n.Step(n.Now() + 0.25) {
			i := tr.Meta.(int)
			perClient[i] += tr.Size
			if n.Now() < horizon {
				cur[i] = conns[i].Start(1e5+rng.Float64()*4e6, i)
			}
		}
	}
	for i, tr := range cur {
		if tr != nil && !tr.Done {
			perClient[i] += tr.Size - tr.Remaining()
		}
	}
	return perClient
}

// TestAccessLinkConservation drives clients behind per-client cellular
// access links over one shared edge and checks conservation at both
// levels: the edge never delivers more than its capacity integral, and
// no client receives more than its own access profile's integral.
func TestAccessLinkConservation(t *testing.T) {
	const horizon = 120.0
	edge := netem.Constant("edge", 30e6, horizon+1)
	net := New(DefaultConfig(), edge)

	const clients = 8
	conns := make([]*Conn, clients)
	links := make([]*AccessLink, clients)
	for i := range conns {
		links[i] = net.NewAccessLink(netem.Cellular(1 + i%netem.CellularCount))
		conns[i] = net.DialVia(links[i])
	}
	perClient := driveWorkload(t, net, conns, horizon, 42)

	// Edge-level conservation: aggregate throughput never exceeds the
	// shared budget.
	edgeBudget := edge.Integral(0, net.Now()) / 8
	if net.Delivered() > edgeBudget*(1+1e-9) {
		t.Fatalf("edge conservation violated: delivered %.0f B > budget %.0f B", net.Delivered(), edgeBudget)
	}
	total := 0.0
	for i, b := range perClient {
		total += b
		// Access-level conservation: each client is capped by its own
		// cellular profile. The per-flow share is rateBps/flows of the
		// profile sample held piecewise constant between refreshes, so
		// the integral bound holds per segment and in sum.
		linkBudget := links[i].Profile().Integral(0, net.Now()) / 8
		if b > linkBudget*(1+1e-9) {
			t.Fatalf("client %d: access conservation violated: %.0f B > %.0f B", i, b, linkBudget)
		}
		if b <= 0 {
			t.Fatalf("client %d delivered nothing", i)
		}
	}
	if total > net.Delivered()*(1+1e-9) {
		t.Fatalf("per-client sum %.0f B exceeds network delivered %.0f B", total, net.Delivered())
	}
}

// TestDialViaUnconstrainedMatchesDial requires that an access link far
// wider than the edge is observationally identical — bit for bit — to
// no access link at all: the min() in effCap must be exact, not an
// approximation.
func TestDialViaUnconstrainedMatchesDial(t *testing.T) {
	const horizon = 90.0
	run := func(via bool) ([]float64, float64) {
		edge := netem.Constant("edge", 8e6, horizon+1)
		net := New(DefaultConfig(), edge)
		conns := make([]*Conn, 5)
		for i := range conns {
			if via {
				conns[i] = net.DialVia(net.NewAccessLink(netem.Constant("wide", 1e12, horizon+1)))
			} else {
				conns[i] = net.Dial()
			}
		}
		return driveWorkload(t, net, conns, horizon, 7), net.Delivered()
	}
	plain, dPlain := run(false)
	linked, dLinked := run(true)
	if dPlain != dLinked {
		t.Fatalf("delivered differs: plain %v via %v", dPlain, dLinked)
	}
	for i := range plain {
		if plain[i] != linked[i] {
			t.Fatalf("client %d differs: plain %v via %v", i, plain[i], linked[i])
		}
	}
}

// TestEdgeSharingDegradesPerClient pins the economics of the shared
// edge: on a fixed budget, per-client achieved throughput falls as
// concurrency rises, while the aggregate stays within the budget.
func TestEdgeSharingDegradesPerClient(t *testing.T) {
	const horizon = 60.0
	perClientAvg := func(clients int) float64 {
		edge := netem.Constant("edge", 12e6, horizon+1)
		net := New(DefaultConfig(), edge)
		conns := make([]*Conn, clients)
		for i := range conns {
			// Generous identical access links so the shared edge is the
			// binding constraint.
			conns[i] = net.DialVia(net.NewAccessLink(netem.Constant("acc", 40e6, horizon+1)))
		}
		per := driveWorkload(t, net, conns, horizon, 11)
		sum := 0.0
		for _, b := range per {
			sum += b
		}
		if budget := edge.Integral(0, net.Now()) / 8; net.Delivered() > budget*(1+1e-9) {
			t.Fatalf("%d clients: delivered %.0f B > edge budget %.0f B", clients, net.Delivered(), budget)
		}
		return sum / float64(clients)
	}
	two := perClientAvg(2)
	twelve := perClientAvg(12)
	if twelve >= two*0.6 {
		t.Fatalf("per-client bytes did not degrade under contention: 2 clients %.0f B/client, 12 clients %.0f B/client", two, twelve)
	}
	if math.IsNaN(two) || two <= 0 {
		t.Fatalf("degenerate baseline: %.0f", two)
	}
}

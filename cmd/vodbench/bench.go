// Benchmark-regression harness: `vodbench -bench` times every paper
// artifact plus a set of substrate micro-benchmarks through
// testing.Benchmark, emits the numbers as machine-readable JSON
// (BENCH_*.json), and `-compare` gates a run against a committed
// baseline so speedups stay locked in and regressions fail CI.
//
// Cross-machine comparability: raw ns/op is meaningless between a
// laptop and a CI runner, so every run also times a fixed pure-CPU
// calibration workload (an FNV-1a hash loop that no repository change
// can speed up or slow down). The gate compares ns/op *normalized by
// the same run's calibration time*; allocs/op needs no normalization
// and is gated directly.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"

	"repro/internal/cdn"
	"repro/internal/expcache"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/live"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/services"
	"repro/internal/simnet"
)

// calibrationName is the benchmark every ns/op figure is normalized by.
const calibrationName = "calibration/fnv1a"

// BenchResult is one benchmark's measurement in the JSON file.
type BenchResult struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "calibration", "substrate" or "artifact"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchFile is the schema of a BENCH_*.json file.
type BenchFile struct {
	Schema     int           `json:"schema"`
	GoVersion  string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

type benchSpec struct {
	name string
	kind string
	run  func(b *testing.B)
}

// benchSpecs assembles the suite: the calibration workload, the
// substrate micro-benchmarks, and one benchmark per registered
// experiment (each iteration regenerates the artifact in full).
func benchSpecs() ([]benchSpec, error) {
	specs := []benchSpec{{calibrationName, "calibration", benchCalibration}}

	sub, err := substrateSpecs()
	if err != nil {
		return nil, err
	}
	specs = append(specs, sub...)

	for _, e := range experiments.All() {
		run := e.Run
		specs = append(specs, benchSpec{
			name: "artifact/" + e.ID,
			kind: "artifact",
			run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := run(context.Background()); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	return specs, nil
}

// benchCalibration hashes 1 MiB of fixed bytes per op with FNV-1a. It
// touches no repository code, so its ns/op tracks only machine speed.
func benchCalibration(b *testing.B) {
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i * 131)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		h := uint64(14695981039346656037)
		for _, c := range buf {
			h = (h ^ uint64(c)) * 1099511628211
		}
		sink += h
	}
	if sink == 42 {
		b.Log("unreachable") // defeat dead-code elimination
	}
}

func substrateSpecs() ([]benchSpec, error) {
	// session10min: one full 10-minute virtual session, the unit of
	// work every experiment multiplies (mirrors BenchmarkSession10Min).
	svc := services.ByName("H1")
	org, err := svc.Origin()
	if err != nil {
		return nil, err
	}
	sessionProfile := netem.Cellular(5)

	// live_session: 4 minutes of live HLS (playlist polling + edge
	// tracking) on the same simulator.
	lv, err := media.Generate(media.Config{
		Name: "live", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		Seed:           17,
	})
	if err != nil {
		return nil, err
	}
	lorg := live.NewOrigin(lv)
	liveProfile := netem.Constant("c", 8e6, 2000)

	transferProfile := netem.Constant("c", 10e6, 1e6)

	// simnet_fanin512 / simnet_fanin512_scan: 512 concurrent flows
	// through one shared profile — the flash-crowd fan-in regime. The
	// first runs the virtual-time engine (what EngineAuto picks at this
	// population), the second forces the O(F)-scan engine; the pair
	// locks in the vtime speedup and catches either engine regressing.
	fanIn512 := func(engine simnet.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := simnet.DefaultConfig()
			cfg.Engine = engine
			n := simnet.New(cfg, netem.Constant("edge", 200e6, 1000))
			conns := make([]*simnet.Conn, 512)
			for i := range conns {
				conns[i] = n.Dial()
			}
			rng := rand.New(rand.NewSource(1))
			sizes := make([]float64, len(conns))
			for i := range sizes {
				sizes[i] = math.Round(rng.Float64()*2e6) + 1e5
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, c := range conns {
					c.Start(sizes[j], nil)
				}
				for delivered := 0; delivered < len(conns); {
					done := n.Step(1e12)
					delivered += len(done)
					for _, tr := range done {
						n.Recycle(tr)
					}
				}
			}
		}
	}

	// report_cold / report_cached: one full report regeneration per
	// iteration through the session cache — cold resets the in-memory
	// tier first (every session computed), cached pre-warms it once
	// (every session served from memory). The pair tracks cache
	// effectiveness in BENCH_*.json: cached/cold is the fraction of
	// report time that is session computation rather than analysis and
	// rendering.
	reportAll := func(b *testing.B) {
		if _, err := experiments.RunAll(context.Background(), experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}

	return []benchSpec{
		{"substrate/report_cold", "substrate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				expcache.Default.Reset()
				reportAll(b)
			}
		}},
		{"substrate/report_cached", "substrate", func(b *testing.B) {
			expcache.Default.Reset()
			reportAll(b) // warm the cache outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reportAll(b)
			}
		}},
		{"substrate/session10min", "substrate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := services.RunWithOrigin(svc.Player, org, sessionProfile, 600, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"substrate/simnet_transfers", "substrate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := simnet.New(simnet.DefaultConfig(), transferProfile)
				c := n.Dial()
				for j := 0; j < 1000; j++ {
					c.Start(500e3, nil)
					n.Step(1e6)
				}
			}
		}},
		{"substrate/simnet_fanin512", "substrate", fanIn512(simnet.EngineVTime)},
		{"substrate/simnet_fanin512_scan", "substrate", fanIn512(simnet.EngineScan)},
		{"substrate/live_session", "substrate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net := simnet.New(simnet.DefaultConfig(), liveProfile)
				if _, err := live.Play(live.Config{JoinAt: 60, SessionDuration: 240}, lorg, net); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// fleet_1k: a 1000-session population run (workload draw, shared
		// edge cells, streaming aggregation), serial so the gate tracks
		// per-session cost rather than runner core count (mirrors
		// BenchmarkFleet1k).
		{"substrate/fleet_1k", "substrate", func(b *testing.B) {
			cfg := fleet.Config{Seed: 1, Sessions: 1000}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(context.Background(), cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// fleet_hotspot: a 100k-session flash crowd with 80% of arrivals
		// concentrated on cell 0 (2% full fidelity), serial. This is the
		// high-fan-in fleet gate: cell 0 carries tens of thousands of
		// concurrent flows, so it regresses hard if the vtime engine or
		// the auto-switch hysteresis stops doing its job.
		{"substrate/fleet_hotspot", "substrate", func(b *testing.B) {
			cfg := fleet.Config{Seed: 1, Sessions: 100_000, Hotspot: 0.8, FidelityFull: 0.02}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(context.Background(), cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// fleet_1m: the million-session tier — a mixed-fidelity population
		// (5% full player, 95% background flows) through the work-stealing
		// shard layer and columnar aggregation, serial for per-session
		// cost tracking. This is the scale gate: a regression here means
		// the lean/columnar/background machinery stopped paying for
		// itself.
		{"substrate/fleet_1m", "substrate", func(b *testing.B) {
			cfg := fleet.Config{Seed: 1, Sessions: 1_000_000, FidelityFull: 0.05}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(context.Background(), cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// fleet_cohort_1m: the pure background-tier million — every member
		// runs inside the vectorized cohort (FidelityFull < 0), serial.
		// This isolates the cohort engine's per-session cost with no full
		// player sessions in the mix: the number to watch when touching
		// cohort.go or the cell engine.
		{"substrate/fleet_cohort_1m", "substrate", func(b *testing.B) {
			cfg := fleet.Config{Seed: 1, Sessions: 1_000_000, FidelityFull: -1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(context.Background(), cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// fleet_cdn_100k: the 100k-session fleet with the full edge-cache
		// tier on (finite edge + metro + backhaul contention + a cold
		// region + a mid-run edge failure), serial. The allocs/op gate is
		// the zero-alloc steady-state contract for the cdn hot path: cache
		// lookup/admit/evict and balancer routing recycle entries through
		// the free list, so per-request allocation shows up here as an
		// exact allocs/op regression against the baseline.
		{"substrate/fleet_cdn_100k", "substrate", func(b *testing.B) {
			cfg := fleet.Config{Seed: 1, Sessions: 100_000, FidelityFull: 0.05,
				Cache: &cdn.CacheConfig{
					EdgeBytes:  64 << 20,
					MetroBytes: 2 << 30,
					TTLSec:     6 * 3600,
					ColdCells:  "0-3",
					FailCell:   5,
					FailAtSec:  60,
				}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(context.Background(), cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// fleet_warm_sweep: a fully cached fleet re-run — the cache is
		// prewarmed outside the timer, so each iteration measures the
		// incremental-sweep floor (cell fingerprinting, cache lookups,
		// aggregate merges, report rendering) with zero simulation.
		{"substrate/fleet_warm_sweep", "substrate", func(b *testing.B) {
			cfg := fleet.Config{Seed: 1, Sessions: 100_000, FidelityFull: 0.05}
			cache := fleet.NewCellCache()
			opts := fleet.RunOptions{Workers: 1, CellCache: cache}
			if _, err := fleet.RunWithOptions(context.Background(), cfg, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.RunWithOptions(context.Background(), cfg, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}, nil
}

// runBench executes the (filtered) suite and returns the results.
func runBench(filter string) (*BenchFile, error) {
	var re *regexp.Regexp
	if filter != "" {
		var err error
		if re, err = regexp.Compile(filter); err != nil {
			return nil, fmt.Errorf("bad -filter: %v", err)
		}
	}
	specs, err := benchSpecs()
	if err != nil {
		return nil, err
	}
	out := &BenchFile{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range specs {
		// The calibration benchmark always runs: -compare needs it to
		// normalize even when the filter selects a subset.
		if re != nil && s.kind != "calibration" && !re.MatchString(s.name) {
			continue
		}
		r := testing.Benchmark(s.run)
		br := BenchResult{
			Name:        s.name,
			Kind:        s.kind,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		out.Benchmarks = append(out.Benchmarks, br)
		fmt.Fprintf(os.Stderr, "vodbench: %-28s %12.0f ns/op %10d allocs/op %12d B/op (%d iters)\n",
			br.Name, br.NsPerOp, br.AllocsPerOp, br.BytesPerOp, br.Iterations)
	}
	return out, nil
}

func writeBenchFile(f *BenchFile, path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func readBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

func (f *BenchFile) byName() map[string]BenchResult {
	m := make(map[string]BenchResult, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[b.Name] = b
	}
	return m
}

// compareBench gates cur against base. nsTol and allocTol are
// fractional tolerances (0.20 = fail beyond +20%). It returns the
// number of regressions and prints a comparison table.
func compareBench(base, cur *BenchFile, nsTol, allocTol float64) int {
	baseBy, curBy := base.byName(), cur.byName()

	// Normalize ns/op by each run's own calibration time so baselines
	// recorded on one machine gate runs on another.
	norm := func(m map[string]BenchResult, ns float64) float64 {
		if c, ok := m[calibrationName]; ok && c.NsPerOp > 0 {
			return ns / c.NsPerOp
		}
		return ns
	}

	var names []string
	for name := range curBy {
		if _, ok := baseBy[name]; ok && name != calibrationName {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	regressions := 0
	fmt.Printf("%-28s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δtime", "base allocs", "cur allocs", "Δallocs")
	for _, name := range names {
		b, c := baseBy[name], curBy[name]
		nb, nc := norm(baseBy, b.NsPerOp), norm(curBy, c.NsPerOp)
		dt := nc/nb - 1
		var da float64
		if b.AllocsPerOp > 0 {
			da = float64(c.AllocsPerOp)/float64(b.AllocsPerOp) - 1
		} else if c.AllocsPerOp > 0 {
			da = 1
		}
		mark := ""
		if dt > nsTol {
			mark, regressions = "  TIME-REGRESSION", regressions+1
		}
		if da > allocTol {
			mark, regressions = mark+"  ALLOC-REGRESSION", regressions+1
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%% %10d %10d %+7.1f%%%s\n",
			name, b.NsPerOp, c.NsPerOp, 100*dt, b.AllocsPerOp, c.AllocsPerOp, 100*da, mark)
	}
	if regressions > 0 {
		fmt.Printf("vodbench: %d benchmark regression(s) beyond tolerance (ns %.0f%%, allocs %.0f%%)\n",
			regressions, 100*nsTol, 100*allocTol)
	} else {
		fmt.Printf("vodbench: no regressions (%d benchmarks compared, ns tolerance %.0f%%, allocs tolerance %.0f%%)\n",
			len(names), 100*nsTol, 100*allocTol)
	}
	return regressions
}

// Package textplot renders the experiment outputs: aligned text tables
// (the repository's equivalent of the paper's tables) and small ASCII
// series plots (its equivalent of the figures).
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the table.
	Title string
	// Note is an optional caption printed under the title.
	Note string
	// Header names the columns.
	Header []string
	// Rows holds the cells.
	Rows [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len([]rune(c)); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "_%s_\n\n", t.Note)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Series renders one named line of an ASCII plot.
type Series struct {
	// Name labels the series.
	Name string
	// X and Y are the points (equal length).
	X, Y []float64
}

// Plot renders series as a crude ASCII chart, good enough to eyeball the
// figure shapes (oscillation, desync, stalls) in terminal output.
func Plot(title string, width, height int, series ...Series) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	//vodlint:allow floateq — degenerate-range guard: equal stored extrema mean "no spread"
	if math.IsInf(minX, 1) || maxX == minX || maxY <= minY {
		return title + ": (no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte("*o+x#@")
	for si, s := range series {
		m := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[indexOf(series, s)%len(marks)], s.Name)
	}
	fmt.Fprintf(&b, "%8.1f ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "         │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%8.1f └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "          %-10.1f%*s\n", minX, width-10, fmt.Sprintf("%.1f", maxX))
	return b.String()
}

func indexOf(series []Series, s Series) int {
	for i := range series {
		if series[i].Name == s.Name {
			return i
		}
	}
	return 0
}

// Fmt helpers used across experiments.

// Mbps formats bits/s as Mbit/s with 2 decimals.
func Mbps(bps float64) string { return fmt.Sprintf("%.2f", bps/1e6) }

// Secs formats seconds with 1 decimal.
func Secs(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// YN formats a boolean as Y/N.
func YN(v bool) string {
	if v {
		return "Y"
	}
	return "N"
}

// Median returns the median of vs (0 for empty input).
func Median(vs []float64) float64 { return Percentile(vs, 50) }

// Percentile returns the p-th percentile of vs using nearest-rank.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	r := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return s[lo]
	}
	f := r - float64(lo)
	return s[lo]*(1-f) + s[hi]*f
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range vs {
		t += v
	}
	return t / float64(len(vs))
}

package simnet

// Differential and property tests for the cell engine (cellengine.go).
//
// The cell engine computes the same max-min rates as the scan engine but
// anchors flow progress between rate changes and wakes only on profile
// VALUE changes (netem NextChange), not on every sample boundary. Like
// the vtime suite, the differential contract is tolerance-bounded on
// completion times (the scan engine declares completion with up to
// epsBytes remaining; the cell engine completes exactly) plus exact
// structural requirements: same transfers complete, per-engine byte
// conservation holds, and — stronger than either other engine — a
// completed transfer's residual is folded exactly, so Remaining() is
// precisely zero with no epsilon dust.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/netem"
)

// TestCellEquivalenceSeeded replays the vtime suite's scripted
// high-fan-in workloads (shared access links included) on the scan and
// cell engines: same transfers, tolerance-equal completion times, exact
// per-engine byte conservation.
func TestCellEquivalenceSeeded(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nconn := 1 + rng.Intn(96)
			nlinks := rng.Intn(6)
			p := randomProfile(rng)
			for i, s := range p.Samples {
				if s == 0 {
					p.Samples[i] = 5e5
				}
			}
			linkP := netem.Constant("access", 4e6, 7)
			cfg := randomConfig(rng)
			ops := buildWorkload(rng, nconn, nlinks, 80)
			scan := runWorkload(t, cfg, p, linkP, EngineScan, ops, nconn, nlinks)
			cell := runWorkload(t, cfg, p, linkP, EngineCell, ops, nconn, nlinks)
			checkConservation(t, scan, "scan")
			checkConservation(t, cell, "cell")
			compareRuns(t, scan, cell)
		})
	}
}

// TestCellCellularTraceEquivalence runs the two engines over real
// cellular access traces — the fleet's actual per-client bottleneck,
// where the access sample changes every second — so the NextChange-based
// wakeups are exercised against profiles that DO change, not only the
// constant edge where they fire never.
func TestCellCellularTraceEquivalence(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			edge := netem.Constant("edge", 100e6, 600)
			linkP := netem.CellularSetSeed(seed)[int(seed)%netem.CellularCount]
			cfg := DefaultConfig()
			nconn := 4 + rng.Intn(24)
			ops := buildWorkload(rng, nconn, 3, 60)
			scan := runWorkload(t, cfg, edge, linkP, EngineScan, ops, nconn, 3)
			cell := runWorkload(t, cfg, edge, linkP, EngineCell, ops, nconn, 3)
			checkConservation(t, scan, "scan")
			checkConservation(t, cell, "cell")
			compareRuns(t, scan, cell)
		})
	}
}

// TestCellExactResidualFold pins the cell engine's conservation upgrade:
// a completed transfer has exactly zero remaining bytes — the residual
// is folded at completion, not abandoned as sub-epsilon dust — and the
// network's delivered total equals the sum of completed sizes exactly.
func TestCellExactResidualFold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineCell
	n := New(cfg, netem.Constant("edge", 10e6, 1000))
	var sizes []float64
	var trs []*Transfer
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 16; i++ {
		c := n.Dial()
		sz := math.Round(rng.Float64()*2e6) + 1
		sizes = append(sizes, sz)
		trs = append(trs, c.Start(sz, nil))
	}
	for done := 0; done < len(trs); {
		done += len(n.Step(1e9))
	}
	var want float64
	for i, tr := range trs {
		if !tr.Done {
			t.Fatalf("transfer %d never completed", i)
		}
		if r := tr.Remaining(); r != 0 {
			t.Errorf("transfer %d: remaining %g after completion, want exactly 0", i, r)
		}
		want += sizes[i]
	}
	if got := n.Delivered(); got != want {
		t.Errorf("delivered %v != sum of sizes %v (diff %g)", got, want, got-want)
	}
}

// TestCellVTimeHandoff drives EngineCell through both hysteresis
// crossings — a fan-in spike past vtimeEnter hands the flows to the
// virtual-time engine, a drain below vtimeExit takes them back — and
// requires the outcome to match EngineScan within tolerance.
func TestCellVTimeHandoff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProfile(rng)
	for i, s := range p.Samples {
		if s == 0 {
			p.Samples[i] = 5e5
		}
	}
	cfg := randomConfig(rng)
	nconn := vtimeEnter + 24
	var ops []workloadOp
	for i := 0; i < nconn; i++ {
		ops = append(ops, workloadOp{kind: 0, conn: i, size: math.Round(rng.Float64()*2e6) + 1e5, via: -1})
	}
	ops = append(ops, workloadOp{kind: 2, until: 1500})
	for i := 0; i < nconn; i++ {
		ops = append(ops, workloadOp{kind: 0, conn: i, size: math.Round(rng.Float64()*2e6) + 1e5, via: -1})
	}
	ops = append(ops, workloadOp{kind: 2, until: 4000})

	scan := runWorkload(t, cfg, p, nil, EngineScan, ops, nconn, 0)

	cfg.Engine = EngineCell
	n := New(cfg, p)
	conns := make([]*Conn, nconn)
	for i := range conns {
		conns[i] = n.Dial()
		conns[i].Start(ops[i].size, nil)
	}
	n.Step(0.5) // past every FlowAt: the spike is flowing
	sawVtime := n.VTimeActive()
	var cell []completionRec
	collect := func(until float64) {
		for {
			done := n.Step(until)
			if len(done) == 0 {
				return
			}
			for _, tr := range done {
				cell = append(cell, completionRec{tr.Conn.seq, tr.Size, tr.Completed})
			}
			sawVtime = sawVtime || n.VTimeActive()
		}
	}
	collect(1500)
	if n.VTimeActive() {
		t.Error("EngineCell still in vtime mode after the fleet drained to zero")
	}
	if !n.CellActive() {
		t.Error("EngineCell not back in cell mode after the drain")
	}
	for i, c := range conns {
		c.Start(ops[nconn+1+i].size, nil)
	}
	collect(4000)
	if !sawVtime {
		t.Fatalf("EngineCell never entered vtime mode at %d concurrent flows", nconn)
	}
	if len(cell) != len(scan.completed) {
		t.Fatalf("completion count: cell %d != scan %d", len(cell), len(scan.completed))
	}
	compareRuns(t, scan, &engineRun{n: n, completed: cell})
}

// TestCellMidFlightReads pins the anchored-view folds: Remaining() and
// Delivered() read mid-run, between materializations, must reflect the
// anchored progress (rate times elapsed) without perturbing the run.
func TestCellMidFlightReads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineCell
	n := New(cfg, netem.Constant("edge", 8e6, 1000)) // 1e6 bytes/s
	c := n.Dial()
	tr := c.Start(4e6, nil)
	// Step far past slow start so the flow is in a long constant-rate
	// stretch with no events between reads.
	n.Step(2)
	r1, d1 := tr.Remaining(), n.Delivered()
	n.Step(2.5)
	r2, d2 := tr.Remaining(), n.Delivered()
	if !(r2 < r1) {
		t.Errorf("Remaining did not advance between reads: %v then %v", r1, r2)
	}
	if !(d2 > d1) {
		t.Errorf("Delivered did not advance between reads: %v then %v", d1, d2)
	}
	// The anchored ledger must balance at every instant: what the flow
	// has lost equals what the network has gained.
	if diff := math.Abs((tr.Size - r2) - d2); diff > 1e-6 {
		t.Errorf("mid-flight ledger imbalance: size-remaining %v vs delivered %v", tr.Size-r2, d2)
	}
	for done := 0; done < 1; {
		done += len(n.Step(1e9))
	}
	if got := n.Delivered(); got != tr.Size {
		t.Errorf("delivered %v != size %v after completion", got, tr.Size)
	}
}

// TestCellCloseMaterializes pins abandonment accounting under the cell
// engine: closing a connection mid-flight folds the anchored progress
// into the delivered total before the flow is dropped.
func TestCellCloseMaterializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineCell
	n := New(cfg, netem.Constant("edge", 8e6, 1000))
	c := n.Dial()
	c.Start(8e6, nil)
	n.Step(3)
	before := n.Delivered()
	n.Step(5)
	c.Close()
	after := n.Delivered()
	if !(after > before) {
		t.Fatalf("close did not materialize anchored progress: delivered %v then %v", before, after)
	}
	// Nothing flows any more: delivered must be frozen.
	n.Step(100)
	if got := n.Delivered(); got != after {
		t.Errorf("delivered moved after close with no flows: %v -> %v", after, got)
	}
}

// TestCellHotPathZeroAlloc extends the zero-allocation promise to the
// cell engine: once warmed, a start/step/recycle cycle allocates
// nothing — the anchored event loop runs on scratch state only. The
// fan-in stays at smallSortLen so rate allocation uses the insertion-
// sort fast path, the same bound the scan engine's promise carries.
func TestCellHotPathZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineCell
	n := New(cfg, netem.Constant("c", 50e6, 100))
	conns := make([]*Conn, smallSortLen)
	for i := range conns {
		conns[i] = n.Dial()
	}
	cycle := func() {
		for _, c := range conns {
			c.Start(2e5, nil)
		}
		for delivered := 0; delivered < len(conns); {
			done := n.Step(1e9)
			delivered += len(done)
			for _, tr := range done {
				n.Recycle(tr)
			}
		}
	}
	for i := 0; i < 4; i++ { // warm scratch and the free list
		cycle()
	}
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("cell hot path allocated %.1f times per cycle", allocs)
	}
}

// BenchmarkCellIdleBoundaries measures the NextChange win in isolation:
// one small transfer at the start of a long horizon on a constant edge.
// The scan engine wakes at every one of the ~1000 sample boundaries;
// the cell engine sees zero profile events and jumps straight through.
func BenchmarkCellIdleBoundaries(b *testing.B) {
	for _, eng := range []struct {
		name string
		e    Engine
	}{{"scan", EngineScan}, {"cell", EngineCell}} {
		b.Run(eng.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Engine = eng.e
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := New(cfg, netem.Constant("edge", 10e6, 1000))
				c := n.Dial()
				c.Start(1e6, nil)
				for done := 0; done < 1; {
					done += len(n.Step(1e9))
				}
				n.Step(1000) // idle tail across the rest of the horizon
			}
		})
	}
}

package netem

import "math"

// Fingerprint returns a stable 64-bit content hash of the bandwidth
// schedule: the sample duration and the samples, by exact float bit
// pattern (FNV-1a). The display name is deliberately excluded, so two
// differently named profiles with identical schedules — e.g. a slice and
// a re-parsed trace — collide on purpose and can share cache entries.
func (p *Profile) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(u uint64) {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (u >> s & 0xff)) * prime
		}
	}
	mix(math.Float64bits(p.SampleDur))
	mix(uint64(len(p.Samples)))
	for _, s := range p.Samples {
		mix(math.Float64bits(s))
	}
	return h
}

// Command vodbench regenerates the paper's tables and figures from the
// simulated testbed and doubles as the benchmark-regression harness.
// Multiple experiments run on the parallel engine; output stays in
// paper order for any worker count.
//
// Usage:
//
//	vodbench -list
//	vodbench -exp fig8
//	vodbench -exp fig8,fig9
//	vodbench -exp all -workers 8
//	vodbench -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Benchmark mode (see bench.go for the JSON schema and the
// calibration-normalized comparison):
//
//	vodbench -bench -benchout BENCH_local.json
//	vodbench -bench -filter 'substrate/' -compare BENCH_baseline.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/expcache"
	"repro/internal/experiments"
	"runtime/debug"
)

func main() {
	// Same batch GC cadence as vodfleet, so benchmark numbers measure
	// the code under the deployment configuration (GOGC still wins).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	os.Exit(run())
}

// run holds the real main so deferred profile writers execute before
// the process exits (os.Exit skips defers).
func run() int {
	list := flag.Bool("list", false, "list experiment ids")
	exp := flag.String("exp", "", "experiment id(s), comma-separated (fig3..fig15, table1, table2, sr_whatif, or 'all')")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiments (1 = serial)")
	bench := flag.Bool("bench", false, "run the benchmark suite instead of printing experiment output")
	benchOut := flag.String("benchout", "", "write benchmark results as JSON to this file (- for stdout)")
	filter := flag.String("filter", "", "regexp selecting benchmark names in -bench mode (calibration always runs)")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate the -bench run against")
	tolerance := flag.Float64("tolerance", 0.20, "fractional ns/op regression tolerance for -compare (calibration-normalized)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "fractional allocs/op regression tolerance for -compare")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheDir := flag.String("cachedir", "", "on-disk session cache directory ('auto' for the default location; empty = memory only)")
	noCache := flag.Bool("nocache", false, "disable the session cache entirely (every session recomputed)")
	flag.Parse()

	if *noCache {
		expcache.Default.SetDisabled(true)
	} else if *cacheDir != "" {
		dir := *cacheDir
		if dir == "auto" {
			var err error
			if dir, err = expcache.DefaultDir(); err != nil {
				fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
				return 1
			}
		}
		if err := expcache.Default.SetDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
			return 1
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
		}
	}()

	if *bench {
		return benchMain(*filter, *benchOut, *compare, *tolerance, *allocTolerance)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			return 2
		}
		return 0
	}

	var ids []string
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if experiments.ByID(id) == nil {
				fmt.Fprintf(os.Stderr, "vodbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}

	results, err := experiments.RunAll(context.Background(), experiments.Options{
		Workers: *workers,
		IDs:     ids, // nil = all, in paper order
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
		return 1
	}
	for _, r := range results {
		fmt.Printf("### %s — %s (%.1fs, %.1f MB alloc)\n\n", r.ID, r.Title, r.Elapsed.Seconds(), float64(r.AllocBytes)/1e6)
		for _, t := range r.Tables {
			fmt.Println(t.String())
		}
		for _, p := range r.Plots {
			fmt.Println(p)
		}
	}
	return 0
}

// benchMain runs the benchmark suite and optionally writes and/or gates
// the results; it returns the process exit code.
func benchMain(filter, benchOut, compare string, tolerance, allocTolerance float64) int {
	cur, err := runBench(filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
		return 1
	}
	if benchOut != "" {
		if err := writeBenchFile(cur, benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
			return 1
		}
		if benchOut != "-" {
			fmt.Fprintf(os.Stderr, "vodbench: wrote %s\n", benchOut)
		}
	}
	if compare != "" {
		base, err := readBenchFile(compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodbench: %v\n", err)
			return 1
		}
		if compareBench(base, cur, tolerance, allocTolerance) > 0 {
			return 1
		}
	}
	return 0
}

package core

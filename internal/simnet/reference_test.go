package simnet

// The reference implementation: the pre-event-engine simulator, kept
// verbatim (rebuild the flowing set and re-sort caps every
// constant-rate interval, query the profile directly). The differential
// tests below drive it and the incremental engine through identical
// randomized workloads and require every observable — clock, delivered
// bytes, completion order and times, remaining bytes — to match
// bit-for-bit, which is the property the engine rewrite promised.
//
// Workloads keep at most 8 concurrent connections: within sort.Slice's
// insertion-sort regime (stable ties) the reference permutation is fully
// determined, so exact float equality is a sound requirement.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/netem"
)

type refTransfer struct {
	size      float64
	started   float64
	flowAt    float64
	completed float64
	done      bool
	remaining float64
	rate      float64
	conn      *refConn
}

type refConn struct {
	net         *refNetwork
	established bool
	closed      bool
	capBps      float64
	staticCap   float64
	nextGrow    float64
	lastActive  float64
	cur         *refTransfer
}

type refNetwork struct {
	cfg       Config
	profile   *netem.Profile
	now       float64
	conns     []*refConn
	dialed    int
	steadyCap float64
	delivered float64
}

func newRefNetwork(cfg Config, p *netem.Profile) *refNetwork {
	cfg = cfg.withDefaults()
	n := &refNetwork{cfg: cfg, profile: p}
	n.steadyCap = 2 * p.Max() / 8
	if n.steadyCap <= 0 {
		n.steadyCap = math.Inf(1)
	}
	return n
}

func (n *refNetwork) Dial() *refConn {
	c := &refConn{net: n, capBps: math.Inf(1), staticCap: math.Inf(1)}
	if seq := n.cfg.ConnCapSequence; len(seq) > 0 {
		c.staticCap = seq[n.dialed%len(seq)] / 8
	}
	n.dialed++
	n.conns = append(n.conns, c)
	return c
}

func (n *refNetwork) removeConn(c *refConn) {
	for i, x := range n.conns {
		if x == c {
			n.conns = append(n.conns[:i], n.conns[i+1:]...)
			return
		}
	}
}

func (c *refConn) InSlowStart() bool { return !math.IsInf(c.capBps, 1) }

func (c *refConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.net.removeConn(c)
}

func (c *refConn) Start(size float64) *refTransfer {
	if c.closed || c.cur != nil {
		panic("refConn: bad Start")
	}
	if size < 1 {
		size = 1
	}
	cfg := c.net.cfg
	now := c.net.now
	latency := cfg.RTT
	initialCap := cfg.InitialWindowSegments * cfg.MSS / cfg.RTT
	if !c.established {
		latency += cfg.HandshakeRTTs * cfg.RTT
		c.established = true
		c.capBps = initialCap
	} else if cfg.SlowStartAfterIdle && now-c.lastActive > cfg.IdleResetAfter {
		c.capBps = initialCap
	}
	tr := &refTransfer{
		conn:      c,
		size:      size,
		started:   now,
		flowAt:    now + latency,
		remaining: size,
	}
	c.cur = tr
	c.nextGrow = tr.flowAt + cfg.RTT
	return tr
}

func (n *refNetwork) Step(until float64) []*refTransfer {
	if until < n.now {
		panic("refNetwork: Step backwards")
	}
	const epsBytes = 1e-6
	for n.now < until {
		var flowing []*refTransfer
		next := until
		for _, c := range n.conns {
			tr := c.cur
			if tr == nil {
				continue
			}
			if tr.flowAt > n.now {
				if tr.flowAt < next {
					next = tr.flowAt
				}
				continue
			}
			flowing = append(flowing, tr)
			if c.InSlowStart() && c.nextGrow < next {
				next = c.nextGrow
			}
		}
		if b := n.profile.NextBoundary(n.now); b < next {
			next = b
		}

		if len(flowing) == 0 {
			n.now = next
			n.grow()
			continue
		}

		capacity := n.profile.At(n.now) / 8
		refAllocate(capacity, flowing)

		tEvent := next
		for _, tr := range flowing {
			if tr.rate > 0 {
				if tDone := n.now + tr.remaining/tr.rate; tDone < tEvent {
					tEvent = tDone
				}
			}
		}
		if tEvent <= n.now {
			tEvent = math.Nextafter(n.now, math.Inf(1))
		}

		dt := tEvent - n.now
		var completed []*refTransfer
		for _, tr := range flowing {
			d := tr.rate * dt
			if d > tr.remaining {
				d = tr.remaining
			}
			tr.remaining -= d
			n.delivered += d
			if tr.remaining <= epsBytes {
				tr.remaining = 0
				tr.done = true
				tr.completed = tEvent
				tr.conn.cur = nil
				tr.conn.lastActive = tEvent
				completed = append(completed, tr)
			}
		}
		n.now = tEvent
		n.grow()
		if len(completed) > 0 {
			return completed
		}
	}
	return nil
}

func (n *refNetwork) grow() {
	for _, c := range n.conns {
		if c.cur == nil || !c.InSlowStart() {
			continue
		}
		for c.nextGrow <= n.now && c.InSlowStart() {
			c.capBps *= 2
			c.nextGrow += n.cfg.RTT
			if c.capBps >= n.steadyCap {
				c.capBps = math.Inf(1)
			}
		}
	}
}

func refAllocate(capacity float64, flowing []*refTransfer) {
	type item struct {
		tr  *refTransfer
		cap float64
	}
	items := make([]item, len(flowing))
	for i, tr := range flowing {
		cap := tr.conn.capBps
		if tr.conn.staticCap < cap {
			cap = tr.conn.staticCap
		}
		items[i] = item{tr, cap}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].cap < items[j].cap })
	remainingC := capacity
	remainingN := len(items)
	for _, it := range items {
		share := remainingC / float64(remainingN)
		r := it.cap
		if r > share {
			r = share
		}
		if r < 0 {
			r = 0
		}
		it.tr.rate = r
		remainingC -= r
		remainingN--
	}
}

// randomProfile builds a short looping profile with occasional zero and
// repeated samples so boundary handling and tied rates get exercised.
func randomProfile(rng *rand.Rand) *netem.Profile {
	n := 2 + rng.Intn(12)
	s := make([]float64, n)
	for i := range s {
		switch rng.Intn(6) {
		case 0:
			s[i] = 0
		case 1:
			if i > 0 {
				s[i] = s[i-1]
			} else {
				s[i] = 1e6
			}
		default:
			s[i] = math.Round(rng.Float64()*9e6) + 1e5
		}
	}
	return &netem.Profile{Name: "rand", SampleDur: 1, Samples: s}
}

func randomConfig(rng *rand.Rand) Config {
	cfg := Config{
		RTT:                0.02 + rng.Float64()*0.15,
		SlowStartAfterIdle: rng.Intn(2) == 0,
	}
	if rng.Intn(3) == 0 {
		cfg.HandshakeRTTs = 2
	}
	if rng.Intn(4) == 0 {
		cfg.ConnCapSequence = []float64{2e6, 8e6, 1e6}
	}
	return cfg
}

// pairState tracks one connection in both engines plus its in-flight
// transfer pair.
type pairState struct {
	c  *Conn
	rc *refConn
	tr *Transfer
	rt *refTransfer
}

// TestDifferentialVsReference drives the incremental engine and the
// reference implementation through the same randomized workloads —
// starts, idle gaps, closes and redials, deadline steps — and requires
// exact equality of every observable after every event.
func TestDifferentialVsReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := randomProfile(rng)
			cfg := randomConfig(rng)
			n := New(cfg, p)
			rn := newRefNetwork(cfg, p)

			nconn := 1 + rng.Intn(8)
			pairs := make([]*pairState, nconn)
			for i := range pairs {
				pairs[i] = &pairState{c: n.Dial(), rc: rn.Dial()}
			}

			check := func(what string) {
				t.Helper()
				if n.Now() != rn.now {
					t.Fatalf("%s: now %v != ref %v", what, n.Now(), rn.now)
				}
				if n.Delivered() != rn.delivered {
					t.Fatalf("%s: delivered %v != ref %v", what, n.Delivered(), rn.delivered)
				}
				for i, ps := range pairs {
					if ps.tr == nil {
						continue
					}
					if ps.tr.Done != ps.rt.done {
						t.Fatalf("%s: conn %d done %v != ref %v", what, i, ps.tr.Done, ps.rt.done)
					}
					if ps.tr.Remaining() != ps.rt.remaining {
						t.Fatalf("%s: conn %d remaining %v != ref %v", what, i, ps.tr.Remaining(), ps.rt.remaining)
					}
					if ps.tr.Done && ps.tr.Completed != ps.rt.completed {
						t.Fatalf("%s: conn %d completed %v != ref %v", what, i, ps.tr.Completed, ps.rt.completed)
					}
				}
			}

			stepBoth := func(until float64) {
				for {
					done := n.Step(until)
					rdone := rn.Step(until)
					if len(done) != len(rdone) {
						t.Fatalf("step(%v): %d completions != ref %d", until, len(done), len(rdone))
					}
					for i := range done {
						if done[i].Conn != done[i].Conn.net.conns[done[i].Conn.idx] {
							t.Fatalf("step(%v): conn index out of sync", until)
						}
						if done[i].Completed != rdone[i].completed || done[i].Size != rdone[i].size {
							t.Fatalf("step(%v): completion %d mismatch: %v/%v vs ref %v/%v",
								until, i, done[i].Completed, done[i].Size, rdone[i].completed, rdone[i].size)
						}
					}
					check(fmt.Sprintf("after step(%v)", until))
					if len(done) == 0 {
						return
					}
				}
			}

			for ev := 0; ev < 120; ev++ {
				switch op := rng.Intn(10); {
				case op < 5: // start a transfer on an idle connection
					ps := pairs[rng.Intn(len(pairs))]
					if ps.c.Busy() {
						continue
					}
					size := math.Round(rng.Float64()*4e6) + 1
					ps.tr = ps.c.Start(size, nil)
					ps.rt = ps.rc.Start(size)
				case op < 6: // close (possibly mid-flight) and redial
					i := rng.Intn(len(pairs))
					pairs[i].c.Close()
					pairs[i].rc.Close()
					pairs[i] = &pairState{c: n.Dial(), rc: rn.Dial()}
				case op < 7: // zero-length step (fast-return path)
					stepBoth(n.Now())
				default: // advance, sometimes far enough to trigger idle reset
					dt := rng.Float64() * 2
					if rng.Intn(4) == 0 {
						dt += 1.5
					}
					stepBoth(n.Now() + dt)
				}
			}
			// Drain everything still in flight.
			stepBoth(n.Now() + 500)
		})
	}
}

// TestAllocateFastPathsMatchGeneral pins the fast paths in allocate —
// single flow, and all-uncapped without sorting — to the reference
// water-filling, exercising ties, static caps, zero and tiny capacity.
func TestAllocateFastPathsMatchGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := netem.Constant("c", 8e6, 10)
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(8)
		n := New(DefaultConfig(), p)
		flowing := make([]*Transfer, k)
		ref := make([]*refTransfer, k)
		for i := 0; i < k; i++ {
			c := n.Dial()
			rc := &refConn{capBps: math.Inf(1), staticCap: math.Inf(1)}
			switch rng.Intn(4) {
			case 0: // uncapped
			case 1: // slow-start cap, with deliberate ties across conns
				cap := float64(1+rng.Intn(3)) * 2e5
				c.capBps, rc.capBps = cap, cap
			case 2: // static cap
				cap := float64(1+rng.Intn(3)) * 1.5e5
				c.staticCap, rc.staticCap = cap, cap
			default: // both
				c.capBps, rc.capBps = 3e5, 3e5
				c.staticCap, rc.staticCap = 2.5e5, 2.5e5
			}
			tr := &Transfer{Conn: c, pos: i}
			flowing[i] = tr
			ref[i] = &refTransfer{conn: rc}
		}
		n.flowing = flowing
		capacity := []float64{0, 1, 1e5, 1.237e6, 5e6}[rng.Intn(5)]
		n.allocate(capacity)
		refAllocate(capacity, ref)
		for i := range flowing {
			if flowing[i].Rate() != ref[i].rate {
				t.Fatalf("trial %d (k=%d, capacity=%g): rate[%d] = %v, reference %v",
					trial, k, capacity, i, flowing[i].Rate(), ref[i].rate)
			}
		}
	}
}

// TestStepFastReturnAtNow asserts Step(now) is a no-op even with
// transfers in flight, and allocates nothing.
func TestStepFastReturnAtNow(t *testing.T) {
	n := New(DefaultConfig(), netem.Constant("c", 8e6, 100))
	c := n.Dial()
	c.Start(1e6, nil)
	n.Step(2)
	before := n.Delivered()
	allocs := testing.AllocsPerRun(100, func() {
		if got := n.Step(n.Now()); got != nil {
			t.Fatalf("Step(now) returned %d transfers", len(got))
		}
	})
	if allocs != 0 {
		t.Errorf("Step(now) allocated %.1f times per call", allocs)
	}
	if n.Delivered() != before {
		t.Errorf("Step(now) delivered bytes")
	}
}

// TestStepHotPathZeroAlloc pins the core promise of the event engine:
// once warmed up, advancing the simulation allocates nothing — not for
// scratch slices, not for rate allocation, and (with Recycle) not for
// Transfer objects.
func TestStepHotPathZeroAlloc(t *testing.T) {
	n := New(DefaultConfig(), netem.Constant("c", 10e6, 100)) // loops
	conns := []*Conn{n.Dial(), n.Dial(), n.Dial()}
	// Warm up: grow all scratch buffers and the free list.
	for i := 0; i < 4; i++ {
		for _, c := range conns {
			c.Start(2e5, nil)
		}
		for delivered := 0; delivered < len(conns); {
			done := n.Step(1e9)
			delivered += len(done)
			for _, tr := range done {
				n.Recycle(tr)
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, c := range conns {
			c.Start(2e5, nil)
		}
		delivered := 0
		for delivered < len(conns) {
			done := n.Step(1e9)
			delivered += len(done)
			for _, tr := range done {
				n.Recycle(tr)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("hot path allocated %.1f times per start/step/recycle cycle", allocs)
	}
}

// TestConservationInvariants is the seeded property test over multi-wave
// workloads (back-to-back requests, idle gaps, mid-flight closes): bytes
// delivered equal bytes drained from transfers exactly, completion times
// never decrease across Step returns, and the link is never
// over-delivered relative to the profile integral.
func TestConservationInvariants(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := randomProfile(rng)
			// Conservation needs a link that can actually drain.
			for i, s := range p.Samples {
				if s == 0 {
					p.Samples[i] = 5e5
				}
			}
			n := New(DefaultConfig(), p)
			k := 1 + rng.Intn(6)
			conns := make([]*Conn, k)
			for i := range conns {
				conns[i] = n.Dial()
			}
			var all []*Transfer
			var completedSum float64
			lastCompleted := 0.0
			for ev := 0; ev < 60; ev++ {
				for i, c := range conns {
					if !c.Busy() && rng.Intn(3) > 0 {
						all = append(all, c.Start(math.Round(rng.Float64()*2e6)+1, nil))
					}
					if rng.Intn(20) == 0 {
						c.Close() // abandons any in-flight transfer
						conns[i] = n.Dial()
					}
				}
				until := n.Now() + rng.Float64()*3
				for {
					done := n.Step(until)
					if len(done) == 0 {
						break
					}
					for _, tr := range done {
						if tr.Completed < lastCompleted {
							t.Fatalf("completion time went backwards: %v after %v", tr.Completed, lastCompleted)
						}
						lastCompleted = tr.Completed
						if tr.Completed < tr.FlowAt {
							t.Fatalf("completed %v before first byte %v", tr.Completed, tr.FlowAt)
						}
						completedSum += tr.Size
					}
				}
			}
			// Drain what's left on still-open connections.
			for deadline := n.Now() + 1000; n.Now() < deadline; {
				busy := false
				for _, c := range conns {
					if c.Busy() {
						busy = true
					}
				}
				if !busy {
					break
				}
				for _, tr := range n.Step(deadline) {
					lastCompleted = tr.Completed
					completedSum += tr.Size
				}
			}
			// Delivered bytes == bytes drained out of every transfer ever
			// started (completed in full, abandoned in part). Exact: both
			// sides accumulate the same d values in the same order only on
			// the delivered side, so allow accumulation-order slop of ulps.
			var drained float64
			for _, tr := range all {
				drained += tr.Size - tr.Remaining()
			}
			if diff := math.Abs(n.Delivered() - drained); diff > 1e-3 {
				t.Fatalf("delivered %v != drained %v (diff %g)", n.Delivered(), drained, diff)
			}
			if completedSum > n.Delivered()+1e-3 {
				t.Fatalf("completed bytes %v exceed delivered %v", completedSum, n.Delivered())
			}
			if n.Delivered()*8 > p.Integral(0, n.Now())+1 {
				t.Fatalf("delivered %v bits exceeds link integral %v", n.Delivered()*8, p.Integral(0, n.Now()))
			}
		})
	}
}

// TestRecycle covers free-list reuse and the in-flight guard.
func TestRecycle(t *testing.T) {
	n := New(DefaultConfig(), netem.Constant("c", 8e6, 100))
	c := n.Dial()
	tr := c.Start(1e5, nil)
	assertPanics(t, func() { n.Recycle(tr) }, "Recycle in-flight")
	for len(n.Step(100)) == 0 {
	}
	n.Recycle(tr)
	n.Recycle(nil) // no-op
	tr2 := c.Start(1e5, nil)
	if tr2 != tr {
		t.Errorf("Start did not reuse the recycled transfer")
	}
	if tr2.Done || tr2.Remaining() != 1e5 || tr2.Meta != nil {
		t.Errorf("recycled transfer not reset: %+v", tr2)
	}
}

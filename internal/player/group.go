package player

import (
	"fmt"
	"math"
)

// Group coordinates several sessions over one shared simulated network —
// the "multiple clients behind one cellular link" scenario that fairness
// studies like FESTIVE (cited in §5) target, and the building block of a
// fleet cell. Sessions start at t=0 unless scheduled later with
// Session.SetStartAt, and each runs for its own SessionDuration from its
// start; the fluid network arbitrates their transfers max-min fairly.
//
// A single session's Run is the one-member special case of a Group.
type Group struct {
	sessions []*Session
	observer func(*Session, *Result)
}

// NewGroup creates a coordinator; sessions added to it must share one
// simnet.Network.
func NewGroup() *Group { return &Group{} }

// Add registers a session. Every session must have been created over the
// same simnet.Network.
func (g *Group) Add(s *Session) error {
	if len(g.sessions) > 0 && g.sessions[0].net != s.net {
		return fmt.Errorf("player: all sessions in a group must share one network")
	}
	g.sessions = append(g.sessions, s)
	return nil
}

// SetObserver registers fn, called exactly once per session as it
// finishes (finish order, which is deterministic). When an observer is
// set, Run returns nil and each session's Result is released right
// after its callback returns — the memory-bounded streaming mode
// population runs use: the caller folds the Result into its aggregates
// and must not retain it.
func (g *Group) SetObserver(fn func(*Session, *Result)) { g.observer = fn }

// Run drives every session to completion and returns their results in
// the order they were added (nil when an observer is set).
func (g *Group) Run() []*Result {
	if len(g.sessions) == 0 {
		return nil
	}
	net := g.sessions[0].net
	for {
		now := net.Now()
		allDone := true
		deadline := math.Inf(1)
		inflight := 0
		for _, s := range g.sessions {
			if s.done {
				continue
			}
			if now < s.startAt-eps {
				// Not yet arrived: keep the run alive and make sure the
				// clock steps to the arrival, but issue nothing.
				allDone = false
				if s.startAt < deadline {
					deadline = s.startAt
				}
				continue
			}
			if now >= s.endAt()-eps || s.finished {
				g.finish(s)
				continue
			}
			allDone = false
			s.issueRequests()
			if d := s.nextDeadline(); d < deadline {
				deadline = d
			}
			if e := s.endAt(); e < deadline {
				deadline = e
			}
			inflight += s.inflight
		}
		if allDone {
			break
		}
		if inflight == 0 && math.IsInf(deadline, 1) {
			for _, s := range g.sessions {
				if !s.done {
					g.finish(s)
				}
			}
			break
		}
		target := deadline
		if target <= now+eps {
			target = now + 1e-6
		}
		completed := net.Step(target)
		for _, s := range g.sessions {
			if !s.done {
				s.advancePlayback(net.Now())
			}
		}
		for _, tr := range completed {
			m := tr.Meta.(*reqMeta)
			if m.owner != nil && !m.owner.done {
				m.owner.onComplete(tr)
			}
			// else: abandoned session; ignore the straggler
			net.Recycle(tr)
		}
	}
	if g.observer != nil {
		return nil
	}
	out := make([]*Result, len(g.sessions))
	for i, s := range g.sessions {
		out[i] = s.res
	}
	return out
}

// finish finalizes a session once, notifies the observer, and — in
// observer mode — releases the Result so a population run never holds
// more than the in-flight cell's worth of per-session state.
func (g *Group) finish(s *Session) {
	if s.done {
		return
	}
	s.finishRun()
	if g.observer != nil {
		g.observer(s, s.res)
		s.res = nil
	}
}

// finishRun finalizes a session once and releases its connections so
// they stop competing for the shared link.
func (s *Session) finishRun() {
	if s.done {
		return
	}
	s.finalize()
	for _, c := range s.conns {
		if c != nil {
			c.Close()
		}
	}
	s.done = true
}

package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/expcache"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/replacement"
	"repro/internal/services"
	"repro/internal/textplot"
)

// srRunStats summarises segment-replacement behaviour in one session.
type srRunStats struct {
	replacements int // re-downloads of an already-downloaded index
	lower        int // re-download at lower quality than what it replaced
	equal        int
	firstLowerEq int // SR bursts whose first replaced segment did not improve
	bursts       int
	dataBytes    float64 // total bytes downloaded
	baseBytes    float64 // bytes without the re-downloads (no-SR baseline)
	avgBitrate   float64 // displayed average declared bitrate
	baseBitrate  float64 // what-if average with only first downloads kept
	stallSec     float64
	wasted       float64
}

// srStats runs a service over a profile and performs the §4.1.1 what-if
// analysis: the no-SR baseline keeps only the first download of each
// index.
func srStats(svc *services.Service, p *netem.Profile) (srRunStats, error) {
	res, err := run(svc, p, 600)
	if err != nil {
		return srRunStats{}, err
	}
	return srStatsFromResult(res), nil
}

func srStatsFromResult(res *player.Result) srRunStats {
	st := srRunStats{
		dataBytes: res.TotalBytes,
		baseBytes: res.TotalBytes,
		stallSec:  res.TotalStall(),
		wasted:    res.WastedBytes,
	}
	// Group video downloads per index, ordered by start time.
	perIndex := map[int][]player.Download{}
	for _, d := range res.Downloads {
		if d.Type != media.TypeVideo || d.End == 0 {
			continue
		}
		perIndex[d.Index] = append(perIndex[d.Index], d)
	}
	first := map[int]player.Download{}
	inBurst := false
	var ordered []player.Download
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo && d.End > 0 {
			ordered = append(ordered, d)
		}
	}
	seen := map[int]int{} // index -> latest track downloaded
	for _, d := range ordered {
		prev, again := seen[d.Index]
		if again {
			st.replacements++
			st.baseBytes -= d.Bytes
			switch {
			case d.Track < prev:
				st.lower++
			case d.Track == prev:
				st.equal++
			}
			if !inBurst {
				st.bursts++
				if d.Track <= prev {
					st.firstLowerEq++
				}
				inBurst = true
			}
		} else {
			first[d.Index] = d
			inBurst = false
		}
		seen[d.Index] = d.Track
	}
	// Displayed average (actual run) and what-if baseline using the
	// first download per displayed index.
	var w, wBase, dur float64
	for i, tr := range res.Displayed {
		if tr < 0 {
			continue
		}
		d := res.SegmentDuration
		if start := float64(i) * res.SegmentDuration; start+d > res.MediaDuration {
			d = res.MediaDuration - start
		}
		w += res.Declared[tr] * d
		base := tr
		if f, ok := first[i]; ok {
			base = f.Track
		}
		wBase += res.Declared[base] * d
		dur += d
	}
	if dur > 0 {
		st.avgBitrate = w / dur
		st.baseBitrate = wBase / dur
	}
	return st
}

// Fig10 reproduces Figure 10: on a step-up profile, H4 triggers SR as
// soon as it switches to a higher track, discards the tail of its buffer
// (including higher-quality segments) and re-downloads it, sometimes at
// lower quality and sometimes stalling itself.
func Fig10(ctx context.Context) ([]*textplot.Table, []string, error) {
	h4 := services.ByName("H4")
	// High → low → brief recovery → low: the recovery triggers the
	// up-switch and SR, which dumps the buffered tail right before the
	// second dip — the self-inflicted stall of Figure 10.
	p := &netem.Profile{Name: "dip-recover-dip", SampleDur: 1}
	for i := 0; i < 600; i++ {
		switch {
		case i < 150:
			p.Samples = append(p.Samples, 5e6)
		case i < 270:
			p.Samples = append(p.Samples, 0.8e6)
		case i < 278:
			p.Samples = append(p.Samples, 5e6)
		case i < 420:
			p.Samples = append(p.Samples, 0.4e6)
		default:
			p.Samples = append(p.Samples, 5e6)
		}
	}
	res, err := run(h4, p, 600)
	if err != nil {
		return nil, nil, err
	}
	st := srStatsFromResult(res)
	org, err := serviceOrigin(h4)
	if err != nil {
		return nil, nil, err
	}
	noSR, err := expcache.Run(h4.Player, org, p, 600, func(c *player.Config) {
		c.Replacement = replacement.None{}
	})
	if err != nil {
		return nil, nil, err
	}
	t := &textplot.Table{
		Title:  "Figure 10 — H4 segment replacement on a recovery profile",
		Header: []string{"metric", "value"},
	}
	t.AddRow("SR bursts", fmt.Sprintf("%d", st.bursts))
	t.AddRow("segments re-downloaded", fmt.Sprintf("%d", st.replacements))
	t.AddRow("re-downloads at lower quality", fmt.Sprintf("%d", st.lower))
	t.AddRow("re-downloads at equal quality", fmt.Sprintf("%d", st.equal))
	t.AddRow("stall seconds (with SR)", textplot.Secs(st.stallSec))
	t.AddRow("stall seconds (same run without SR)", textplot.Secs(noSR.TotalStall()))
	t.AddRow("wasted MB", fmt.Sprintf("%.1f", st.wasted/1e6))

	// Event excerpt around the replacements.
	t2 := &textplot.Table{
		Title:  "Figure 10 — SR event timeline (excerpt)",
		Header: []string{"t (s)", "event", "detail"},
	}
	n := 0
	for _, e := range res.Events {
		if e.Kind == "sr-drop" || e.Kind == "stall" || e.Kind == "switch" {
			t2.AddRow(fmt.Sprintf("%.1f", e.T), e.Kind, e.Detail)
			n++
			if n >= 18 {
				break
			}
		}
	}
	return []*textplot.Table{t, t2}, nil, nil
}

// SRWhatIf reproduces the §4.1.1 numbers: across the 14 profiles,
// H4-style SR increases data usage substantially (paper: median +25.66%,
// 5 profiles >75%) for marginal quality gain (median +3.66%), and can
// even lower quality; 21.31%/6.50% of replacements were lower/equal
// quality.
func SRWhatIf(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title:  "§4.1.1 — what-if analysis of H4-style SR over 14 profiles",
		Header: []string{"service", "median Δdata", "max Δdata", "median Δbitrate", "min Δbitrate", "% repl lower", "% repl equal", "% bursts starting ≤"},
	}
	for _, name := range []string{"H1", "H4"} {
		svc := services.ByName(name)
		var dData, dRate []float64
		var repl, lower, equal, bursts, firstLE int
		for _, p := range cellular() {
			st, err := srStats(svc, p)
			if err != nil {
				return nil, nil, err
			}
			if st.baseBytes > 0 {
				dData = append(dData, st.dataBytes/st.baseBytes-1)
			}
			if st.baseBitrate > 0 {
				dRate = append(dRate, st.avgBitrate/st.baseBitrate-1)
			}
			repl += st.replacements
			lower += st.lower
			equal += st.equal
			bursts += st.bursts
			firstLE += st.firstLowerEq
		}
		pct := func(n, d int) string {
			if d == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
		}
		sort.Float64s(dRate)
		t.AddRow(name,
			textplot.Pct(textplot.Median(dData)),
			textplot.Pct(textplot.Percentile(dData, 100)),
			textplot.Pct(textplot.Median(dRate)),
			textplot.Pct(dRate[0]),
			pct(lower, repl),
			pct(equal, repl),
			pct(firstLE, bursts),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// Fig11 reproduces Figure 11 and the §4.1.3 evaluation: per-segment SR
// (replace individually, only upward, stop when the buffer is low) cuts
// the time spent on low tracks sharply; the capped variant keeps most of
// the benefit while cutting wasted data (paper: −44% waste).
func Fig11(ctx context.Context) ([]*textplot.Table, []string, error) {
	org, err := exoContent(4, 42)
	if err != nil {
		return nil, nil, err
	}
	policies := []struct {
		name string
		mut  func(*player.Config)
	}{
		{"no SR", func(c *player.Config) {}},
		{"improved per-segment SR", func(c *player.Config) {
			c.Replacement = replacement.PerSegment{MinBufferSec: 30, CapTrack: -1}
			c.MidBufferDiscard = true
		}},
		{"capped SR (≤720p rung)", func(c *player.Config) {
			c.Replacement = replacement.PerSegment{MinBufferSec: 30, CapTrack: 3}
			c.MidBufferDiscard = true
		}},
	}
	t := &textplot.Table{
		Title:  "Figure 11 / §4.1.3 — per-segment SR vs no SR (ExoPlayer model, 14 profiles)",
		Header: []string{"policy", "median avg bitrate (Mbps)", "median Δbitrate", "p90 Δbitrate", "median Δdata", "waste % of data", "low-track share (5 low profiles)", "median stall s"},
	}
	base := map[int]srRunStats{}
	type agg struct {
		rate, data, waste, low, stall []float64
	}
	var aggs []agg
	for pi, pol := range policies {
		var a agg
		for i, p := range cellular() {
			cfg := exoPlayer("exo-" + pol.name)
			pol.mut(&cfg)
			res, err := expcache.Run(cfg, org, p, 600, nil)
			if err != nil {
				return nil, nil, err
			}
			st := srStatsFromResult(res)
			if pi == 0 {
				base[i] = st
			}
			a.rate = append(a.rate, st.avgBitrate)
			a.data = append(a.data, st.dataBytes)
			a.waste = append(a.waste, st.wasted/st.dataBytes)
			a.low = append(a.low, lowTrackShare(res, 2)) // tracks 0..1 ≈ below 480p
			a.stall = append(a.stall, st.stallSec)
		}
		aggs = append(aggs, a)
	}
	for pi, pol := range policies {
		a := aggs[pi]
		var dRate, dData []float64
		for i := range a.rate {
			dRate = append(dRate, a.rate[i]/aggs[0].rate[i]-1)
			dData = append(dData, a.data[i]/aggs[0].data[i]-1)
		}
		t.AddRow(pol.name,
			textplot.Mbps(textplot.Median(a.rate)),
			textplot.Pct(textplot.Median(dRate)),
			textplot.Pct(textplot.Percentile(dRate, 90)),
			textplot.Pct(textplot.Median(dData)),
			textplot.Pct(textplot.Median(a.waste)),
			textplot.Pct(textplot.Mean(a.low[:5])),
			textplot.Secs(textplot.Median(a.stall)),
		)
	}
	// Per-profile breakdown — the bar pairs of Figure 11.
	t2 := &textplot.Table{
		Title:  "Figure 11 — per-profile low-track playtime share and bitrate gain",
		Note:   "each row pairs the no-SR run (left) with improved per-segment SR (right), like Figure 11's bar pairs",
		Header: []string{"profile", "low-track share (no SR)", "low-track share (SR)", "Δavg bitrate", "Δdata"},
	}
	for i := range cellular() {
		t2.AddRow(fmt.Sprintf("%d", i+1),
			textplot.Pct(aggs[0].low[i]),
			textplot.Pct(aggs[1].low[i]),
			textplot.Pct(aggs[1].rate[i]/aggs[0].rate[i]-1),
			textplot.Pct(aggs[1].data[i]/aggs[0].data[i]-1),
		)
	}
	return []*textplot.Table{t, t2}, nil, nil
}

// lowTrackShare returns the share of displayed playtime on tracks with
// index < below.
func lowTrackShare(res *player.Result, below int) float64 {
	low, total := 0.0, 0.0
	for _, tr := range res.Displayed {
		if tr < 0 {
			continue
		}
		total++
		if tr < below {
			low++
		}
	}
	if total == 0 {
		return 0
	}
	return low / total
}

package hls

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/manifest"
	"repro/internal/media"
)

func buildPresentation(t *testing.T) *manifest.Presentation {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "h", Duration: 30, SegmentDuration: 4,
		TargetBitrates: []float64{300e3, 600e3, 1.2e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return manifest.Build(v, manifest.BuildOptions{Protocol: manifest.HLS, DeclareAverage: true})
}

func TestMasterRoundTrip(t *testing.T) {
	p := buildPresentation(t)
	master := EncodeMaster(p)
	vars, err := ParseMaster(master)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != len(p.Video) {
		t.Fatalf("%d variants, want %d", len(vars), len(p.Video))
	}
	for i, v := range vars {
		r := p.Video[i]
		if v.Bandwidth != math.Trunc(r.DeclaredBitrate) {
			t.Errorf("variant %d bandwidth %v vs %v", i, v.Bandwidth, r.DeclaredBitrate)
		}
		if v.AverageBandwidth <= 0 {
			t.Errorf("variant %d missing AVERAGE-BANDWIDTH", i)
		}
		if v.URI != r.PlaylistURL {
			t.Errorf("variant %d URI %q", i, v.URI)
		}
		if v.Width != r.Width || v.Height != r.Height {
			t.Errorf("variant %d resolution %dx%d", i, v.Width, v.Height)
		}
	}
}

func TestMediaRoundTrip(t *testing.T) {
	p := buildPresentation(t)
	r := p.Video[1]
	segs, err := ParseMedia(EncodeMedia(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(r.Segments) {
		t.Fatalf("%d segments, want %d", len(segs), len(r.Segments))
	}
	for i, s := range segs {
		if s.URI != r.Segments[i].URL {
			t.Errorf("segment %d URI %q", i, s.URI)
		}
		if math.Abs(s.Duration-r.Segments[i].Duration) > 1e-4 {
			t.Errorf("segment %d duration %v vs %v", i, s.Duration, r.Segments[i].Duration)
		}
	}
}

func TestDecodeFull(t *testing.T) {
	p := buildPresentation(t)
	master := EncodeMaster(p)
	bodies := map[string]string{}
	for _, r := range p.Video {
		bodies[r.PlaylistURL] = EncodeMedia(r)
	}
	q, err := Decode("h", master, bodies)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Video) != len(p.Video) {
		t.Fatalf("decoded %d tracks", len(q.Video))
	}
	if math.Abs(q.Duration-p.Duration) > 1e-3 {
		t.Errorf("duration %v vs %v", q.Duration, p.Duration)
	}
	for i, r := range q.Video {
		if r.ID != i {
			t.Errorf("track %d id %d", i, r.ID)
		}
		if len(r.Segments) != len(p.Video[i].Segments) {
			t.Errorf("track %d: %d segments", i, len(r.Segments))
		}
	}
}

func TestByteRangeEncodeParse(t *testing.T) {
	r := &manifest.Rendition{
		SegmentDuration: 2,
		Segments: []manifest.Segment{
			{URL: "/m.ts", Offset: 100, Length: 50, Duration: 2},
			{URL: "/m.ts", Offset: 150, Length: 70, Duration: 2},
		},
	}
	segs, err := ParseMedia(EncodeMedia(r))
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].Offset != 100 || segs[0].Length != 50 || segs[1].Offset != 150 || segs[1].Length != 70 {
		t.Fatalf("byterange round trip: %+v", segs)
	}
}

func TestByteRangeImplicitOffset(t *testing.T) {
	text := "#EXTM3U\n#EXTINF:2,\n#EXT-X-BYTERANGE:50@100\na.ts\n#EXTINF:2,\n#EXT-X-BYTERANGE:70\na.ts\n"
	segs, err := ParseMedia(text)
	if err != nil {
		t.Fatal(err)
	}
	if segs[1].Offset != 150 {
		t.Fatalf("implicit offset = %d, want 150", segs[1].Offset)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseMaster("not a playlist"); err == nil {
		t.Error("ParseMaster accepted garbage")
	}
	if _, err := ParseMaster("#EXTM3U\n#EXT-X-STREAM-INF:RESOLUTION=1x1\nx.m3u8\n"); err == nil {
		t.Error("ParseMaster accepted variant without BANDWIDTH")
	}
	if _, err := ParseMedia("nope"); err == nil {
		t.Error("ParseMedia accepted garbage")
	}
	if _, err := ParseMedia("#EXTM3U\nseg.ts\n"); err == nil {
		t.Error("ParseMedia accepted segment without EXTINF")
	}
	if _, err := ParseMaster("#EXTM3U\n"); err == nil {
		t.Error("ParseMaster accepted empty master")
	}
}

func TestAttrParsingQuotes(t *testing.T) {
	text := "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000,CODECS=\"avc1,mp4a\",RESOLUTION=640x360\npl.m3u8\n"
	vars, err := ParseMaster(text)
	if err != nil {
		t.Fatal(err)
	}
	if vars[0].Bandwidth != 1000 || vars[0].Width != 640 {
		t.Fatalf("quoted attrs broke parsing: %+v", vars[0])
	}
}

// TestQuickMediaRoundTrip property-tests the media playlist codec with
// random segment lists.
func TestQuickMediaRoundTrip(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 200 {
			return true
		}
		r := &manifest.Rendition{SegmentDuration: 4}
		for i, d := range durs {
			r.Segments = append(r.Segments, manifest.Segment{
				URL:      strings.ReplaceAll("/seg-#.ts", "#", string(rune('a'+i%26))),
				Duration: float64(d%10000)/1000 + 0.001,
			})
		}
		segs, err := ParseMedia(EncodeMedia(r))
		if err != nil || len(segs) != len(r.Segments) {
			return false
		}
		for i := range segs {
			if math.Abs(segs[i].Duration-r.Segments[i].Duration) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMediaPlaylistHeaders(t *testing.T) {
	text := "#EXTM3U\n#EXT-X-TARGETDURATION:6\n#EXT-X-MEDIA-SEQUENCE:42\n" +
		"#EXTINF:4,\nseg42.ts\n#EXTINF:4,\nseg43.ts\n"
	pl, err := ParseMediaPlaylist(text)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MediaSequence != 42 || pl.TargetDuration != 6 || pl.Ended {
		t.Fatalf("headers %+v", pl)
	}
	if len(pl.Segments) != 2 {
		t.Fatalf("%d segments", len(pl.Segments))
	}
	// With ENDLIST present it flips Ended.
	pl, err = ParseMediaPlaylist(text + "#EXT-X-ENDLIST\n")
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Ended {
		t.Fatal("ENDLIST not detected")
	}
	// Bad headers error out.
	if _, err := ParseMediaPlaylist("#EXTM3U\n#EXT-X-MEDIA-SEQUENCE:x\n"); err == nil {
		t.Fatal("bad MEDIA-SEQUENCE accepted")
	}
	if _, err := ParseMediaPlaylist("#EXTM3U\n#EXT-X-TARGETDURATION:y\n"); err == nil {
		t.Fatal("bad TARGETDURATION accepted")
	}
}

func TestEncodeMediaWindow(t *testing.T) {
	segs := []manifest.Segment{
		{URL: "/a/7.ts", Duration: 4},
		{URL: "/a/8.ts", Duration: 4},
	}
	out := EncodeMediaWindow(segs, 7, 4, false)
	if !strings.Contains(out, "#EXT-X-MEDIA-SEQUENCE:7") {
		t.Fatalf("missing sequence:\n%s", out)
	}
	if strings.Contains(out, "ENDLIST") {
		t.Fatal("live window must not end")
	}
	pl, err := ParseMediaPlaylist(out)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MediaSequence != 7 || len(pl.Segments) != 2 {
		t.Fatalf("round trip %+v", pl)
	}
}

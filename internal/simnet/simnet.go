// Package simnet is a deterministic fluid-flow network simulator standing
// in for the paper's testbed (real devices behind a tc-shaped WiFi link).
//
// The model: link capacity over time comes from a netem.Profile; each HTTP
// request is a Transfer on a Conn (a TCP connection). Active transfers
// share the link max-min fairly, with each connection additionally capped
// by a TCP slow-start ramp whose window doubles every RTT — so rate caps
// are piecewise-constant and every completion time is computed exactly, in
// virtual time, with no goroutines and no wall clock. New connections pay
// a handshake round trip, every request pays one RTT of first-byte
// latency, and idle persistent connections re-enter slow start
// (slow-start-after-idle), which is what separates "persistent" from
// "non-persistent" services beyond the handshake (§3.2).
package simnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netem"
)

// Config holds the transport-model parameters.
type Config struct {
	// RTT is the client↔server round-trip time in seconds. Cellular RTTs
	// in the LTE era were ~50–100 ms; the default is 0.07.
	RTT float64
	// MSS is the TCP maximum segment size in bytes (default 1460).
	MSS float64
	// InitialWindowSegments is TCP's initial congestion window in
	// segments (default 10, per RFC 6928).
	InitialWindowSegments float64
	// HandshakeRTTs is the connection-establishment cost in round trips
	// before the HTTP request can be sent (default 1 for TCP; use 2 to
	// approximate TLS 1.2).
	HandshakeRTTs float64
	// SlowStartAfterIdle resets the congestion window after the
	// connection has been idle for IdleResetAfter (default true, like
	// Linux tcp_slow_start_after_idle).
	SlowStartAfterIdle bool
	// IdleResetAfter is the idle duration that triggers a window reset
	// (default 1 s).
	IdleResetAfter float64
	// ConnCapSequence, when non-empty, assigns a static per-connection
	// rate ceiling (bits/s) to connections in dial order (cycling).
	// It models heterogeneous per-connection bottlenecks — different
	// CDN paths or per-flow policers — under which the §3.2 observation
	// about sub-segment split points becomes visible: a work-conserving
	// shared link alone makes split points irrelevant.
	ConnCapSequence []float64
}

func (c Config) withDefaults() Config {
	if c.RTT <= 0 {
		c.RTT = 0.07
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.InitialWindowSegments <= 0 {
		c.InitialWindowSegments = 10
	}
	if c.HandshakeRTTs <= 0 {
		c.HandshakeRTTs = 1
	}
	if c.IdleResetAfter <= 0 {
		c.IdleResetAfter = 1
	}
	return c
}

// DefaultConfig returns the default transport parameters.
func DefaultConfig() Config {
	return Config{SlowStartAfterIdle: true}.withDefaults()
}

// Transfer is one HTTP request/response exchange delivering Size bytes.
type Transfer struct {
	// Conn is the connection carrying the transfer.
	Conn *Conn
	// Size is the response body size in bytes.
	Size float64
	// Started is the virtual time the request was issued.
	Started float64
	// FlowAt is the time the first byte arrives (Started + latency).
	FlowAt float64
	// Completed is the time the last byte arrived (valid once Done).
	Completed float64
	// Done reports completion.
	Done bool
	// Meta carries caller context (e.g. which segment this is).
	Meta any

	remaining float64
	rate      float64 // last allocated rate, bytes/s (for inspection)
}

// Remaining returns the bytes not yet delivered.
func (t *Transfer) Remaining() float64 { return t.remaining }

// Rate returns the most recently allocated delivery rate in bytes/s.
func (t *Transfer) Rate() float64 { return t.rate }

// Throughput returns the achieved goodput in bits/s over the whole
// request/response exchange, including latency — this is what a client's
// bandwidth estimator observes.
func (t *Transfer) Throughput() float64 {
	if !t.Done || t.Completed <= t.Started {
		return 0
	}
	return t.Size * 8 / (t.Completed - t.Started)
}

// Conn models one TCP connection.
type Conn struct {
	net         *Network
	established bool
	closed      bool
	capBps      float64 // slow-start cap in bytes/s; +Inf when steady
	staticCap   float64 // per-connection ceiling in bytes/s; +Inf when none
	nextGrow    float64 // next window doubling time (valid while ramping and active)
	lastActive  float64 // completion time of the last transfer
	cur         *Transfer
}

// Busy reports whether a transfer is in flight on the connection.
func (c *Conn) Busy() bool { return c.cur != nil }

// Established reports whether the TCP handshake has completed (i.e. the
// connection has carried at least one request).
func (c *Conn) Established() bool { return c.established }

// InSlowStart reports whether the connection's rate is still ramping.
func (c *Conn) InSlowStart() bool { return !math.IsInf(c.capBps, 1) }

// Close releases the connection. A non-persistent client closes after
// every response and dials again for the next request.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.net.removeConn(c)
}

// Start issues a request for size bytes on the connection. It panics if
// the connection is busy or closed (a programming error in the caller's
// scheduler — HTTP/1.1 carries one outstanding request per connection).
func (c *Conn) Start(size float64, meta any) *Transfer {
	if c.closed {
		panic("simnet: Start on closed connection")
	}
	if c.cur != nil {
		panic("simnet: Start on busy connection")
	}
	if size < 1 {
		size = 1
	}
	cfg := c.net.cfg
	now := c.net.now
	latency := cfg.RTT // request up + first byte down
	initialCap := cfg.InitialWindowSegments * cfg.MSS / cfg.RTT
	if !c.established {
		latency += cfg.HandshakeRTTs * cfg.RTT
		c.established = true
		c.capBps = initialCap
	} else if cfg.SlowStartAfterIdle && now-c.lastActive > cfg.IdleResetAfter {
		c.capBps = initialCap
	}
	tr := &Transfer{
		Conn:      c,
		Size:      size,
		Started:   now,
		FlowAt:    now + latency,
		Meta:      meta,
		remaining: size,
	}
	c.cur = tr
	c.nextGrow = tr.FlowAt + cfg.RTT
	return tr
}

// Network is the shared link plus its connections.
type Network struct {
	cfg       Config
	profile   *netem.Profile
	now       float64
	conns     []*Conn
	dialed    int
	steadyCap float64 // cap beyond which a conn is considered out of slow start
	delivered float64 // total bytes delivered (for conservation checks)
}

// New creates a network over the given bandwidth profile.
func New(cfg Config, p *netem.Profile) *Network {
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg, profile: p}
	// Once a connection's cap exceeds twice the link's peak rate it can
	// never be the bottleneck again; stop generating doubling events.
	n.steadyCap = 2 * p.Max() / 8
	if n.steadyCap <= 0 {
		n.steadyCap = math.Inf(1)
	}
	return n
}

// Now returns the current virtual time in seconds.
func (n *Network) Now() float64 { return n.now }

// Config returns the transport parameters in use.
func (n *Network) Config() Config { return n.cfg }

// Profile returns the bandwidth profile driving the link.
func (n *Network) Profile() *netem.Profile { return n.profile }

// Delivered returns the total bytes delivered so far (all transfers).
func (n *Network) Delivered() float64 { return n.delivered }

// Dial creates a new, not-yet-established connection.
func (n *Network) Dial() *Conn {
	c := &Conn{net: n, capBps: math.Inf(1), staticCap: math.Inf(1)}
	if seq := n.cfg.ConnCapSequence; len(seq) > 0 {
		c.staticCap = seq[n.dialed%len(seq)] / 8
	}
	n.dialed++
	n.conns = append(n.conns, c)
	return c
}

func (n *Network) removeConn(c *Conn) {
	for i, x := range n.conns {
		if x == c {
			n.conns = append(n.conns[:i], n.conns[i+1:]...)
			return
		}
	}
}

// Step advances virtual time until the earlier of `until` or the first
// transfer completion(s), and returns the completed transfers (empty when
// the deadline was reached first). Step with no active transfers simply
// advances the clock.
func (n *Network) Step(until float64) []*Transfer {
	if until < n.now {
		panic(fmt.Sprintf("simnet: Step backwards from %v to %v", n.now, until))
	}
	const epsBytes = 1e-6
	for n.now < until {
		// Collect flowing and pending transfers.
		var flowing []*Transfer
		next := until
		for _, c := range n.conns {
			tr := c.cur
			if tr == nil {
				continue
			}
			if tr.FlowAt > n.now {
				if tr.FlowAt < next {
					next = tr.FlowAt
				}
				continue
			}
			flowing = append(flowing, tr)
			if c.InSlowStart() && c.nextGrow < next {
				next = c.nextGrow
			}
		}
		if b := n.profile.NextBoundary(n.now); b < next {
			next = b
		}

		if len(flowing) == 0 {
			n.now = next
			n.grow()
			continue
		}

		// Allocate rates max-min fairly under the connection caps.
		capacity := n.profile.At(n.now) / 8 // bytes/s
		allocate(capacity, flowing)

		// Earliest completion in this constant-rate interval.
		tEvent := next
		for _, tr := range flowing {
			if tr.rate > 0 {
				if tDone := n.now + tr.remaining/tr.rate; tDone < tEvent {
					tEvent = tDone
				}
			}
		}
		if tEvent <= n.now {
			// Degenerate interval (floating point); nudge forward.
			tEvent = math.Nextafter(n.now, math.Inf(1))
		}

		dt := tEvent - n.now
		var completed []*Transfer
		for _, tr := range flowing {
			d := tr.rate * dt
			if d > tr.remaining {
				d = tr.remaining
			}
			tr.remaining -= d
			n.delivered += d
			if tr.remaining <= epsBytes {
				tr.remaining = 0
				tr.Done = true
				tr.Completed = tEvent
				tr.Conn.cur = nil
				tr.Conn.lastActive = tEvent
				completed = append(completed, tr)
			}
		}
		n.now = tEvent
		n.grow()
		if len(completed) > 0 {
			return completed
		}
	}
	return nil
}

// grow applies slow-start window doubling for connections whose doubling
// time has arrived.
func (n *Network) grow() {
	for _, c := range n.conns {
		if c.cur == nil || !c.InSlowStart() {
			continue
		}
		for c.nextGrow <= n.now && c.InSlowStart() {
			c.capBps *= 2
			c.nextGrow += n.cfg.RTT
			if c.capBps >= n.steadyCap {
				c.capBps = math.Inf(1)
			}
		}
	}
}

// allocate distributes capacity (bytes/s) over the flowing transfers using
// max-min fairness with per-connection caps (progressive water filling).
func allocate(capacity float64, flowing []*Transfer) {
	type item struct {
		tr  *Transfer
		cap float64
	}
	items := make([]item, len(flowing))
	for i, tr := range flowing {
		cap := tr.Conn.capBps
		if tr.Conn.staticCap < cap {
			cap = tr.Conn.staticCap
		}
		items[i] = item{tr, cap}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].cap < items[j].cap })
	remainingC := capacity
	remainingN := len(items)
	for _, it := range items {
		share := remainingC / float64(remainingN)
		r := it.cap
		if r > share {
			r = share
		}
		if r < 0 {
			r = 0
		}
		it.tr.rate = r
		remainingC -= r
		remainingN--
	}
}

// Package simnet stands in for the real engine: stepalias matches the
// Step/Recycle methods of a Network type in a package named simnet,
// so this fixture defines the minimal shape of that contract.
package simnet

// Transfer mirrors the pooled completion record: Recycle zeroes it
// into a free list, so references must not outlive the next Step.
type Transfer struct {
	Size float64
	Meta interface{}
}

// Network mirrors the engine: Step returns its reused scratch slice.
type Network struct {
	completed []*Transfer
}

// Step advances the clock and returns the completed transfers; the
// slice and its elements are valid only until the next Step/Recycle.
func (n *Network) Step(until float64) []*Transfer {
	return n.completed
}

// Recycle returns a completed transfer to the free list.
func (n *Network) Recycle(tr *Transfer) {}

var (
	last []*Transfer
	keep *Transfer
)

type sampler struct {
	done []*Transfer
	ch   chan []*Transfer
}

func storesGlobal(n *Network) {
	last = n.Step(1) // want `stored in package variable last`
}

func storesField(s *sampler, n *Network) {
	s.done = n.Step(1) // want `stored in s\.done`
}

func returnsResult(n *Network) []*Transfer {
	return n.Step(1) // want `Network\.Step result returned`
}

func retainsElement(n *Network) {
	for _, tr := range n.Step(1) {
		keep = tr // want `stored in package variable keep`
	}
}

func appendsElsewhere(n *Network) int {
	var all []*Transfer
	for len(all) < 2 {
		all = append(all, n.Step(1)...) // want `appended to all`
	}
	return len(all)
}

func sendsOnChannel(s *sampler, n *Network) {
	s.ch <- n.Step(1) // want `sent on a channel`
}

func handsToGoroutine(n *Network) {
	go consume(n.Step(1)) // want `passed to a goroutine`
}

func passesToRetainer(n *Network) {
	hold(n.Step(1)) // want `passed to hold, which retains its argument`
}

// hold retains its argument in a package variable, so passing Step
// results to it escapes them.
func hold(ts []*Transfer) {
	last = ts
}

// consume only reads; the goroutine hand-off above is the violation.
func consume(ts []*Transfer) {
	for _, tr := range ts {
		_ = tr.Size
	}
}

// drainAndRecycle is the intended shape: read fields, copy values
// out, recycle, never retain the slice or its pointers.
func drainAndRecycle(n *Network) float64 {
	var total float64
	var metas []interface{}
	done := n.Step(1)
	for _, tr := range done {
		total += tr.Size
		metas = append(metas, tr.Meta) // field copy, not the transfer
		n.Recycle(tr)
	}
	_ = metas
	return total
}

// countCompleted passes the result to a borrower: count never retains
// its argument, so the tracker stays silent.
func countCompleted(n *Network) int {
	return count(n.Step(1))
}

func count(ts []*Transfer) int {
	return len(ts)
}

// growsItself reuses the tainted slice as its own append target — an
// alias-preserving grow inside the valid window, not an escape.
func growsItself(n *Network) int {
	done := n.Step(1)
	done = append(done, nil)
	return len(done)
}

func suppressed(n *Network) {
	last = n.Step(1) //vodlint:allow stepalias — fixture: directive silences the finding
}

// Command vodreport regenerates every experiment and writes a single
// markdown report — the machine-refreshable companion to EXPERIMENTS.md.
// Experiments fan out across the process-wide scheduler; the report is
// assembled in paper order regardless of completion order, so the output
// is identical for any worker count.
//
// Sessions are memoized through the content-addressed cache in
// internal/expcache: duplicate sessions within one run are computed
// once, and with -cachedir the results persist so reruns are
// incremental across processes.
//
// Usage:
//
//	vodreport -out REPORT.md
//	vodreport -workers 8 -out -
//	vodreport -cachedir auto -v          # persistent cache + statistics
//	vodreport -stable -out r.md          # byte-stable output (no timings)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/expcache"
	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "REPORT.md", "output file (- for stdout)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiments (1 = serial)")
	quiet := flag.Bool("q", false, "suppress per-experiment progress lines")
	verbose := flag.Bool("v", false, "print session-cache statistics to stderr")
	cacheDir := flag.String("cachedir", "", "on-disk session cache directory ('auto' for the default location; empty = memory only)")
	noCache := flag.Bool("nocache", false, "disable the session cache entirely (every session recomputed)")
	stable := flag.Bool("stable", false, "omit wall-clock timing lines so the report is byte-stable across runs")
	flag.Parse()

	if *noCache {
		expcache.Default.SetDisabled(true)
	} else if *cacheDir != "" {
		dir := *cacheDir
		if dir == "auto" {
			var err error
			if dir, err = expcache.DefaultDir(); err != nil {
				log.Fatalf("vodreport: %v", err)
			}
		}
		if err := expcache.Default.SetDir(dir); err != nil {
			log.Fatalf("vodreport: %v", err)
		}
	}

	opts := experiments.Options{Workers: *workers}
	if !*quiet {
		done, total := 0, len(experiments.All())
		opts.OnProgress = func(r experiments.Result) {
			done++
			fmt.Fprintf(os.Stderr, "vodreport: [%2d/%d] %-15s %6.2fs %8.1f MB alloc\n",
				done, total, r.ID, r.Elapsed.Seconds(), float64(r.AllocBytes)/1e6)
		}
	}
	start := time.Now()
	results, err := experiments.RunAll(context.Background(), opts)
	if err != nil {
		log.Fatalf("vodreport: %v", err)
	}
	wall := time.Since(start)

	var b strings.Builder
	b.WriteString("# Regenerated experiment report\n\n")
	b.WriteString("Produced by `vodreport`; every table below is regenerated from the\n")
	b.WriteString("committed code with fixed seeds. See EXPERIMENTS.md for the\n")
	b.WriteString("paper-vs-measured comparison and DESIGN.md for the substitutions.\n")
	var serial time.Duration
	for _, r := range results {
		serial += r.Elapsed
		fmt.Fprintf(&b, "\n## %s — %s\n\n", r.ID, r.Title)
		if !*stable {
			fmt.Fprintf(&b, "_regenerated in %.1fs_\n\n", r.Elapsed.Seconds())
		}
		for _, t := range r.Tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		for _, p := range r.Plots {
			b.WriteString("```\n")
			b.WriteString(p)
			b.WriteString("```\n\n")
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "vodreport: %d experiments in %.2fs wall (%.2fs summed serial, %.2fx) with %d workers\n",
			len(results), wall.Seconds(), serial.Seconds(), serial.Seconds()/wall.Seconds(), *workers)
	}
	if *verbose {
		s := expcache.Default.Snapshot()
		fmt.Fprintf(os.Stderr, "vodreport: cache: %d misses, %d memory hits, %d disk hits, %d deduped, %d bypassed\n",
			s.Misses, s.MemHits, s.DiskHits, s.Dedup, s.Bypass)
		fmt.Fprintf(os.Stderr, "vodreport: cache: %.1f MB read, %.1f MB written, %d disk errors; %d origins built, %d reused\n",
			float64(s.BytesRead)/1e6, float64(s.BytesWritten)/1e6, s.DiskErrors, s.OriginBuilds, s.OriginHits)
	}
	if *out == "-" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatalf("vodreport: %v", err)
	}
	fmt.Println("wrote", *out)
}

// Package analyzers is the registry of every vodlint analyzer: the
// determinism-contract suite from PR 2 (simclock, seededrand,
// maprange, floateq, bpsunits) and the dataflow contract suite
// (stepalias, hotalloc, foldorder, goctx). The vodlint driver and the
// repository self-check test share this list so they can never
// disagree about what "the full suite" means.
package analyzers

import (
	"repro/internal/lint"
	"repro/internal/lint/bpsunits"
	"repro/internal/lint/floateq"
	"repro/internal/lint/foldorder"
	"repro/internal/lint/goctx"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/maprange"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/simclock"
	"repro/internal/lint/stepalias"
)

// All returns the full analyzer suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		simclock.Analyzer,
		seededrand.Analyzer,
		maprange.Analyzer,
		floateq.Analyzer,
		bpsunits.Analyzer,
		stepalias.Analyzer,
		hotalloc.Analyzer,
		foldorder.Analyzer,
		goctx.Analyzer,
	}
}

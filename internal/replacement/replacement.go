// Package replacement implements Segment Replacement (SR) policies —
// discarding already-buffered video segments and re-downloading them at a
// (hopefully) better quality when the network turns out better than
// predicted (§4.1 of the paper).
//
// Three designs from the paper are covered:
//
//   - ContiguousOnUpswitch reproduces H4 and ExoPlayer v1: whenever the
//     player switches to a higher track it discards the buffer from the
//     first segment of a lower track onward and re-downloads everything
//     after it — the deque buffer cannot drop a segment in the middle, so
//     replacements can land at *lower* quality and even cause stalls
//     (Figure 10).
//   - PerSegment is the paper's improved SR (§4.1.3): one segment at a
//     time, only ever replaced by strictly higher quality, and suspended
//     when the buffer falls below a safety threshold. It requires a
//     buffer that supports mid-buffer discard.
//   - PerSegment with CapTrack ≥ 0 is the data-saving refinement: only
//     segments at or below the cap (e.g. the 720p rung) are eligible,
//     cutting wasted bytes with nearly no QoE loss.
package replacement

// BufferedSegment is the policy's view of one unplayed buffered segment.
type BufferedSegment struct {
	// Index is the segment's position in the video.
	Index int
	// Track is the quality it was downloaded at.
	Track int
	// Start is the segment's media start time in seconds.
	Start float64
}

// View is the player state a policy decides from.
type View struct {
	// Buffered lists unplayed buffered video segments in playback order.
	Buffered []BufferedSegment
	// Playhead is the current playback position in media seconds.
	Playhead float64
	// BufferSec is the playable buffer occupancy in seconds.
	BufferSec float64
	// SelectedTrack is the track adaptation just chose for the next
	// segment.
	SelectedTrack int
	// LastTrack is the track of the most recent video download.
	LastTrack int
	// NextIndex is the next not-yet-downloaded segment index.
	NextIndex int
	// SegmentDuration is the nominal segment duration in seconds.
	SegmentDuration float64
}

// Op is the action a policy requests.
type Op int

const (
	// OpNext fetches the next future segment (no replacement).
	OpNext Op = iota
	// OpReplace re-downloads the single buffered segment at Index,
	// keeping the old copy playable until the new one arrives (requires
	// mid-buffer discard support).
	OpReplace
	// OpDropTail discards the buffer from Index onward immediately and
	// restarts sequential fetching at Index (the only replacement a
	// deque buffer supports).
	OpDropTail
)

// Action is a policy decision.
type Action struct {
	// Op selects the action kind.
	Op Op
	// Index is the target segment for OpReplace/OpDropTail.
	Index int
}

// Policy decides, before each video request, whether to fetch forward or
// replace buffered content.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Consider returns the next action given the player state.
	Consider(v View) Action
}

// None never replaces.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Consider implements Policy.
func (None) Consider(View) Action { return Action{Op: OpNext} }

// ContiguousOnUpswitch is the H4 / ExoPlayer v1 scheme. When the selected
// track rises above the previous one and the buffer is comfortable, it
// finds the earliest buffered segment (beyond a safety margin) from a
// track lower than the *previous* selection and discards the buffer from
// there on. Only the first replaced segment is guaranteed to improve;
// everything after it is re-fetched at whatever adaptation then picks —
// 21.31% of H4's replacements landed at lower quality (§4.1.1).
type ContiguousOnUpswitch struct {
	// MinBufferSec gates replacement on buffer occupancy (default 10 s).
	MinBufferSec float64
	// SafetyMarginSec protects segments about to play (default 5 s).
	SafetyMarginSec float64
	// IgnoreBufferedQuality reproduces H4: on an up-switch, replacement
	// starts at the first replaceable buffered segment no matter what
	// quality it already has — "in 22.5% of SR cases, even the first
	// redownloaded segment had lower or equal quality compared with the
	// one already in the buffer" (§4.1.1). When false (ExoPlayer v1),
	// replacement starts at the first segment below the track about to
	// be selected.
	IgnoreBufferedQuality bool
}

// Name implements Policy.
func (ContiguousOnUpswitch) Name() string { return "contiguous-on-upswitch" }

// Consider implements Policy.
func (p ContiguousOnUpswitch) Consider(v View) Action {
	minBuf := p.MinBufferSec
	if minBuf == 0 {
		minBuf = 10
	}
	margin := p.SafetyMarginSec
	if margin == 0 {
		margin = 5
	}
	if v.LastTrack < 0 || v.SelectedTrack <= v.LastTrack || v.BufferSec < minBuf {
		return Action{Op: OpNext}
	}
	// Scan for the earliest buffered segment below the track about to be
	// selected (ExoPlayer v1's rule). Only the first discarded segment is
	// guaranteed to be at least one rung below the new selection; the
	// contiguous tail after it may contain higher-quality segments, and
	// the refetch re-runs adaptation per segment — both are how H4 ends
	// up re-downloading at equal or lower quality (§4.1.1).
	for _, s := range v.Buffered {
		if s.Start < v.Playhead+margin {
			continue
		}
		if p.IgnoreBufferedQuality || s.Track < v.SelectedTrack {
			return Action{Op: OpDropTail, Index: s.Index}
		}
	}
	return Action{Op: OpNext}
}

// PerSegment is the improved SR of §4.1.3: replace exactly one segment at
// a time, only with strictly higher quality, and only while the buffer is
// healthy; with CapTrack ≥ 0 only segments at or below that rung are
// eligible (the wasted-data refinement).
type PerSegment struct {
	// MinBufferSec suspends replacement below this occupancy so the
	// player returns to fetching future segments (default 15 s).
	MinBufferSec float64
	// SafetyMarginSec protects segments about to play (default 5 s).
	SafetyMarginSec float64
	// CapTrack, when ≥ 0, restricts replacement to segments whose track
	// is ≤ CapTrack. Use -1 for no cap.
	CapTrack int
}

// Name implements Policy.
func (p PerSegment) Name() string {
	if p.CapTrack >= 0 {
		return "per-segment-capped"
	}
	return "per-segment"
}

// Consider implements Policy.
func (p PerSegment) Consider(v View) Action {
	minBuf := p.MinBufferSec
	if minBuf == 0 {
		minBuf = 15
	}
	margin := p.SafetyMarginSec
	if margin == 0 {
		margin = 5
	}
	if v.BufferSec < minBuf {
		return Action{Op: OpNext}
	}
	for _, s := range v.Buffered {
		if s.Start < v.Playhead+margin {
			continue
		}
		if s.Track >= v.SelectedTrack {
			continue
		}
		if p.CapTrack >= 0 && s.Track > p.CapTrack {
			continue
		}
		return Action{Op: OpReplace, Index: s.Index}
	}
	return Action{Op: OpNext}
}

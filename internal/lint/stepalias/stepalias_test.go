package stepalias_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/stepalias"
)

func TestStepAlias(t *testing.T) {
	linttest.Run(t, stepalias.Analyzer, "simnet")
}

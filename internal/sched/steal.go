package sched

import (
	"context"
	"sync"
	"sync/atomic"
)

// Work-stealing execution of an indexed workload. The unit space
// [0, n) is partitioned into per-worker deques, each holding one
// contiguous range of unit indices packed into a single atomic word.
// A worker pops units off the front of its own range; when it runs
// dry it steals the back half of the fullest victim's range. Both
// operations are single-CAS, so the layer adds no locks to the hot
// path and an idle worker converges on the remaining work instead of
// spinning on a shared counter.
//
// The schedule — who runs which unit, and in what interleaving — is
// deliberately unspecified. Callers own the determinism story: fn
// must be a pure function of its index (the fleet derives each cell's
// RNG stream from the fleet seed and the cell index, so a stolen cell
// computes the same bytes it would have computed on its home shard),
// and any order-sensitive reduction must happen outside, keyed by
// index. RunStealing guarantees only that fn runs exactly once per
// index of a completed run.

// StealStats summarises how a RunStealing call distributed its units.
// The numbers describe the schedule, never the results: two runs with
// wildly different stats must produce identical outputs.
type StealStats struct {
	// Steals counts successful steal operations (a thief acquiring a
	// non-empty range from a victim).
	Steals int64
	// Stolen counts the units moved by those steals.
	Stolen int64
}

// StealOptions selects a schedule shape, mostly for tests that need to
// pin "the schedule does not move the bytes".
type StealOptions struct {
	// DisableSteal statically partitions the units: every worker runs
	// exactly its own initial range (a steal-free schedule).
	DisableSteal bool
	// Hog seeds the entire workload into worker 0's deque, so every
	// other worker can make progress only by stealing (a steal-heavy
	// schedule).
	Hog bool
}

// deque is one worker's contiguous range of unit indices, packed as
// lo<<32|hi. The owner advances lo; thieves retreat hi. Empty when
// lo >= hi.
type deque struct {
	state atomic.Uint64
}

func packRange(lo, hi int) uint64 { return uint64(lo)<<32 | uint64(hi) }

func unpackRange(st uint64) (lo, hi int) { return int(st >> 32), int(st & 0xffffffff) }

// popFront claims the owner-side unit, if any.
func (d *deque) popFront() (int, bool) {
	for {
		st := d.state.Load()
		lo, hi := unpackRange(st)
		if lo >= hi {
			return 0, false
		}
		if d.state.CompareAndSwap(st, packRange(lo+1, hi)) {
			return lo, true
		}
	}
}

// size returns the current number of units in the deque (racy; used
// only to pick a victim, never for correctness).
func (d *deque) size() int {
	lo, hi := unpackRange(d.state.Load())
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// stealHalf moves the back half (at least one unit) of the deque to
// the caller. Returns the stolen range.
func (d *deque) stealHalf() (lo, hi int, ok bool) {
	for {
		st := d.state.Load()
		vlo, vhi := unpackRange(st)
		if vlo >= vhi {
			return 0, 0, false
		}
		take := (vhi - vlo + 1) / 2
		if d.state.CompareAndSwap(st, packRange(vlo, vhi-take)) {
			return vhi - take, vhi, true
		}
	}
}

// RunStealing executes fn(i) exactly once for every i in [0, n) across
// up to `workers` concurrent workers (the caller runs inline as worker
// 0; helper goroutines are gated by non-blocking TryAcquire on the
// scheduler, same contract as nested fan-out elsewhere). The first
// error by unit index wins, and an error or ctx cancellation stops
// workers from claiming new units. Stats describe the schedule that
// happened to run; they carry no information about the results.
func (s *Scheduler) RunStealing(ctx context.Context, n, workers int, opts StealOptions, fn func(int) error) (StealStats, error) {
	var stats StealStats
	if n <= 0 {
		return stats, ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	deques := make([]deque, workers)
	if opts.Hog {
		deques[0].state.Store(packRange(0, n))
	} else {
		// Balanced contiguous partition: worker w starts with
		// [w*n/workers, (w+1)*n/workers).
		for w := 0; w < workers; w++ {
			deques[w].state.Store(packRange(w*n/workers, (w+1)*n/workers))
		}
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		steals, stolen atomic.Int64
		errMu          sync.Mutex
		errIdx         = n
		firstErr       error
	)
	record := func(i int, err error) {
		errMu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
		cancel()
	}

	//vodlint:hotpath — work-stealing inner loop: pop/steal/run per shard
	work := func(w int) {
		own := &deques[w]
		for ctx.Err() == nil {
			i, ok := own.popFront()
			if !ok {
				if opts.DisableSteal {
					// No steal-half rebalancing, but completion must not
					// depend on every helper having spawned (TryAcquire is
					// best-effort): an idle worker adopts units one at a
					// time off the front of the first non-empty deque.
					adopted := false
					for v := range deques {
						if v == w {
							continue
						}
						if j, ok2 := deques[v].popFront(); ok2 {
							i, adopted = j, true
							break
						}
					}
					if !adopted {
						return
					}
					if err := fn(i); err != nil {
						record(i, err)
						return
					}
					continue
				}
				// Pick the fullest victim. An empty scan means every
				// remaining unit is already claimed by the worker that
				// will run it (popped, or mid-steal by a thief that now
				// owns it), so this worker is done.
				best, bestSize := -1, 0
				for v := range deques {
					if v == w {
						continue
					}
					if sz := deques[v].size(); sz > bestSize {
						best, bestSize = v, sz
					}
				}
				if best < 0 {
					return
				}
				lo, hi, ok := deques[best].stealHalf()
				if !ok {
					continue // lost the race; rescan
				}
				steals.Add(1)
				stolen.Add(int64(hi - lo))
				// Keep one unit, park the rest in the own (empty) deque
				// where other thieves can rebalance it further.
				i = lo
				if lo+1 < hi {
					own.state.Store(packRange(lo+1, hi))
				}
			}
			if err := fn(i); err != nil {
				record(i, err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers && s.TryAcquire(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer s.Release()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()

	stats.Steals = steals.Load()
	stats.Stolen = stolen.Load()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return stats, err
	}
	return stats, parent.Err()
}

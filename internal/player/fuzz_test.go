package player

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/replacement"
	"repro/internal/simnet"
)

// randomSession derives content, player configuration and network from
// one seed: random ladder, encoding, addressing, scheduler, thresholds,
// replacement policy, algorithm and seeks — every combination must
// terminate and satisfy the structural invariants.
func randomSession(seed int64) (Config, *origin.Origin, *netem.Profile, int, error) {
	rng := rand.New(rand.NewSource(seed))

	// Random content.
	nTracks := rng.Intn(4) + 2
	ladder := make([]float64, nTracks)
	b := 150e3 * (1 + rng.Float64())
	for i := range ladder {
		ladder[i] = b
		b *= 1.5 + 0.5*rng.Float64()
	}
	mcfg := media.Config{
		Name: "f", Duration: 300, SegmentDuration: float64(rng.Intn(8) + 2),
		TargetBitrates: ladder,
		VBRSpread:      1.3 + rng.Float64(),
		Seed:           seed,
	}
	if rng.Intn(2) == 0 {
		mcfg.Encoding = media.VBR
	}
	addr := manifest.SidxRanges
	switch rng.Intn(3) {
	case 1:
		addr = manifest.RangesInManifest
	case 2:
		addr = manifest.TemplateNumber
	}
	sep := rng.Intn(2) == 0
	if sep {
		mcfg.SeparateAudio = true
		mcfg.AudioSegmentDuration = float64(rng.Intn(4) + 1)
	}
	v, err := media.Generate(mcfg)
	if err != nil {
		return Config{}, nil, nil, 0, err
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{Protocol: manifest.DASH, Addressing: addr}))
	if err != nil {
		return Config{}, nil, nil, 0, err
	}

	// Random player.
	pause := 15 + rng.Float64()*100
	cfg := Config{
		Name:               "fuzz",
		SessionDuration:    120,
		StartupBufferSec:   2 + rng.Float64()*12,
		StartupSegments:    rng.Intn(3) + 1,
		StartupTrack:       rng.Intn(nTracks),
		PauseThresholdSec:  pause,
		ResumeThresholdSec: pause * (0.2 + 0.7*rng.Float64()),
		MaxConnections:     rng.Intn(4) + 1,
		Persistent:         rng.Intn(2) == 0,
		MinEstimateSamples: rng.Intn(3) + 1,
		ExposeSegmentSizes: rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Scheduler = SchedulerSingle
		cfg.MaxConnections = 1
	case 1:
		cfg.Scheduler = SchedulerParallel
		cfg.VideoPipeline = rng.Intn(cfg.MaxConnections) + 1
		if rng.Intn(2) == 0 && sep {
			cfg.Audio = AudioDesynced
		}
	case 2:
		cfg.Scheduler = SchedulerSplit
		cfg.SplitSkew = rng.Float64() * 2
	}
	switch rng.Intn(5) {
	case 0:
		cfg.Algorithm = adaptation.Throughput{Factor: 0.5 + rng.Float64()*0.6}
	case 1:
		cfg.Algorithm = adaptation.DefaultHysteresis()
	case 2:
		cfg.Algorithm = adaptation.BufferBased{Reservoir: 5, Cushion: 20 + rng.Float64()*40}
	case 3:
		cfg.Algorithm = adaptation.OscillatingGreedy{Deadband: 0.5}
	default:
		cfg.Algorithm = adaptation.ProbeAdapt{}
	}
	if cfg.Scheduler == SchedulerSingle {
		switch rng.Intn(3) {
		case 0:
			cfg.Replacement = replacement.ContiguousOnUpswitch{IgnoreBufferedQuality: rng.Intn(2) == 0}
		case 1:
			cfg.Replacement = replacement.PerSegment{MinBufferSec: 10, CapTrack: rng.Intn(nTracks+1) - 1}
			cfg.MidBufferDiscard = true
		}
	}
	if rng.Intn(3) == 0 {
		cfg.Seeks = []SeekEvent{{AtSec: 20 + rng.Float64()*60, ToSec: rng.Float64() * 280}}
	}

	// Random network.
	samples := make([]float64, 120)
	for i := range samples {
		samples[i] = 100e3 + rng.Float64()*8e6
	}
	p := &netem.Profile{Name: "fz", SampleDur: 1, Samples: samples}
	return cfg, org, p, nTracks, nil
}

// checkRandomSession runs one seeded random session and verifies the
// structural invariants (a subset of checkInvariants that tolerates
// seeks).
func checkRandomSession(seed int64) error {
	cfg, org, p, nTracks, err := randomSession(seed)
	if err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	sess, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), p))
	if err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	res := sess.Run()

	if res.EndTime > cfg.SessionDuration+1e-6 || res.EndTime < 0 {
		return fmt.Errorf("seed %d: end time %v", seed, res.EndTime)
	}
	if res.WastedBytes < 0 || res.WastedBytes > res.TotalBytes+1 {
		return fmt.Errorf("seed %d: waste %v of %v", seed, res.WastedBytes, res.TotalBytes)
	}
	for i, st := range res.Stalls {
		if st.End < st.Start {
			return fmt.Errorf("seed %d: stall %d reversed", seed, i)
		}
	}
	for _, tr := range res.Displayed {
		if tr < -1 || tr >= nTracks {
			return fmt.Errorf("seed %d: displayed track %d", seed, tr)
		}
	}
	var txBytes float64
	for _, tx := range res.Transactions {
		if !tx.Rejected {
			txBytes += float64(tx.Bytes)
		}
	}
	if diff := txBytes - res.TotalBytes; diff < -(1 + res.TotalBytes/1e3) {
		return fmt.Errorf("seed %d: transactions %v < total %v", seed, txBytes, res.TotalBytes)
	}
	return nil
}

func TestQuickSessionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		if err := checkRandomSession(seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSessionInvariants is the native-fuzzing entry point for the same
// property; CI runs it for a few seconds per push (`go test
// -fuzz=FuzzSessionInvariants -fuzztime=10s`) so the corpus keeps
// exercising the scheduler.
func FuzzSessionInvariants(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, -1, 12345, -987654321} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := checkRandomSession(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSessionDeterminism asserts the determinism contract end to end:
// the same seed must produce bit-identical session results, whatever
// scheduler, replacement policy or seek pattern the seed selects.
func FuzzSessionDeterminism(f *testing.F) {
	for _, seed := range []int64{3, 99, -42, 2017} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		run := func() *Result {
			cfg, org, p, _, err := randomSession(seed)
			if err != nil {
				t.Skip(err)
			}
			sess, err := NewSession(cfg, org, simnet.New(simnet.DefaultConfig(), p))
			if err != nil {
				t.Skip(err)
			}
			return sess.Run()
		}
		a, b := run(), run()
		if a.EndTime != b.EndTime || a.TotalBytes != b.TotalBytes ||
			a.WastedBytes != b.WastedBytes || a.StartupDelay != b.StartupDelay ||
			len(a.Stalls) != len(b.Stalls) || len(a.Transactions) != len(b.Transactions) {
			t.Fatalf("seed %d: two runs diverged:\n%+v\n%+v", seed, a, b)
		}
		for i := range a.Displayed {
			if a.Displayed[i] != b.Displayed[i] {
				t.Fatalf("seed %d: displayed track diverged at segment %d", seed, i)
			}
		}
	})
}

// Package expcache is a content-addressed memoization layer for
// simulated VOD sessions. The paper's evaluation replays a fixed grid of
// (service, profile, duration, player config) sessions — many of them
// exact duplicates within and across experiments — and every session is
// a deterministic pure function of its inputs, so a session result can
// be cached under a canonical fingerprint of those inputs and reused
// instead of recomputed.
//
// The cache has two tiers. The in-memory tier is a singleflight map:
// within one process each distinct session runs exactly once, and
// concurrent requests for the same key block on the single computation.
// The opt-in on-disk tier (SetDir) persists results as versioned gob
// files so reruns are incremental across processes; entries are keyed by
// the same fingerprint and self-invalidate when the engine version, the
// Go toolchain or the architecture changes.
//
// Keys never include wall-clock time, hostnames or paths — only content:
// the fully defaulted player.Config (player.Config.Normalized, so a
// config spelled with zero values and one spelled with the explicit
// defaults share an entry), a content hash of the origin's presentation,
// the netem profile schedule, the simnet config, and EngineVersion.
// Sessions whose config carries a non-fingerprintable value (a
// RequestGate func) bypass the cache and run directly.
//
// Cached results are shared: callers must treat a *player.Result
// obtained through this package as read-only. See DESIGN.md §8.
package expcache

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/manifest"
	"repro/internal/netem"
	"repro/internal/origin"
	"repro/internal/player"
	"repro/internal/services"
	"repro/internal/simnet"
)

// EngineVersion stamps every cache key and on-disk entry. Bump it
// whenever a change anywhere in the simulation stack (player, simnet,
// netem, media generation, adaptation, origin) can alter any session
// result: old entries then miss cleanly instead of resurrecting stale
// results. The committed REPORT.md is the ground truth a bumped engine
// must be re-verified against.
const EngineVersion = "8"

// Stats is a snapshot of the cache counters.
type Stats struct {
	// MemHits are sessions served from the in-memory tier.
	MemHits int64
	// DiskHits are sessions served from the on-disk tier.
	DiskHits int64
	// Misses are sessions that were actually computed.
	Misses int64
	// Dedup are concurrent requests that joined an in-flight computation
	// of the same session instead of starting their own.
	Dedup int64
	// Bypass are sessions that skipped the cache (disabled cache or
	// non-fingerprintable config).
	Bypass int64
	// DiskErrors are unreadable/corrupt disk entries (treated as misses)
	// plus failed writes.
	DiskErrors int64
	// BytesRead and BytesWritten are on-disk tier I/O volumes.
	BytesRead, BytesWritten int64
	// OriginBuilds and OriginHits count origin constructions and reuses.
	OriginBuilds, OriginHits int64
}

// Cache memoizes session results and origins.
type Cache struct {
	disabled atomic.Bool

	mu       sync.Mutex
	sessions map[Key]*sessionCell
	disk     *diskTier

	origins Memo[Key, *origin.Origin]

	memHits, diskHits, misses, dedup, bypass atomic.Int64
	diskErrors, bytesRead, bytesWritten      atomic.Int64
}

type sessionCell struct {
	once sync.Once
	done atomic.Bool
	res  *player.Result
	err  error
}

// New returns an empty cache with no disk tier.
func New() *Cache { return &Cache{} }

// Default is the process-wide cache every experiment routes through.
var Default = New()

// SetDir enables (non-empty) or disables (empty) the on-disk tier,
// creating the directory if needed.
func (c *Cache) SetDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == "" {
		c.disk = nil
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.disk = &diskTier{dir: dir}
	return nil
}

// SetDisabled turns the whole cache off (true): every session runs
// directly and is counted as a bypass.
func (c *Cache) SetDisabled(v bool) { c.disabled.Store(v) }

// Reset drops the in-memory tier (sessions and origins) and zeroes the
// counters; the disk tier and disabled flag are untouched. Not safe to
// call concurrently with session runs.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.sessions = nil
	c.mu.Unlock()
	c.origins.Reset()
	for _, a := range []*atomic.Int64{
		&c.memHits, &c.diskHits, &c.misses, &c.dedup, &c.bypass,
		&c.diskErrors, &c.bytesRead, &c.bytesWritten,
	} {
		a.Store(0)
	}
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	ob, oh, ow := c.origins.Stats()
	return Stats{
		MemHits:      c.memHits.Load(),
		DiskHits:     c.diskHits.Load(),
		Misses:       c.misses.Load(),
		Dedup:        c.dedup.Load(),
		Bypass:       c.bypass.Load(),
		DiskErrors:   c.diskErrors.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		OriginBuilds: ob,
		OriginHits:   oh + ow,
	}
}

// DefaultDir returns the conventional on-disk cache location
// (~/.cache/vodrepro or the platform equivalent).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "vodrepro"), nil
}

// presKeys memoizes presentation content hashes by pointer.
// Presentations are immutable once built (the modify package clones
// before editing), so a pointer's content never changes; the map is
// content-addressed and never invalidated.
var presKeys sync.Map // *manifest.Presentation -> Key

func presKey(p *manifest.Presentation) (Key, error) {
	if k, ok := presKeys.Load(p); ok {
		return k.(Key), nil
	}
	k, err := Fingerprint(p)
	if err != nil {
		return Key{}, err
	}
	presKeys.Store(p, k)
	return k, nil
}

// sessionKey fingerprints one session: engine stamp, fully defaulted
// player config, origin content, profile schedule, network model config.
func sessionKey(cfg player.Config, org *origin.Origin, p *netem.Profile, netCfg simnet.Config) (Key, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		// Invalid config: run directly so the caller sees the same error
		// the session constructor would produce.
		return Key{}, err
	}
	pk, err := presKey(org.Pres)
	if err != nil {
		return Key{}, err
	}
	return Fingerprint(EngineVersion, norm, pk, p.Fingerprint(), netCfg)
}

// runSession computes a session directly (the cache-miss path).
func runSession(cfg player.Config, org *origin.Origin, p *netem.Profile, netCfg simnet.Config) (*player.Result, error) {
	sess, err := player.NewSession(cfg, org, simnet.New(netCfg, p))
	if err != nil {
		return nil, err
	}
	return sess.Run(), nil
}

// RunNet returns the session result for an already-resolved player
// config (duration override and mutator applied) over p with the given
// network model config, computing it at most once. The result is shared:
// treat it as read-only.
func (c *Cache) RunNet(cfg player.Config, org *origin.Origin, p *netem.Profile, netCfg simnet.Config) (*player.Result, error) {
	if c.disabled.Load() {
		c.bypass.Add(1)
		return runSession(cfg, org, p, netCfg)
	}
	key, err := sessionKey(cfg, org, p, netCfg)
	if err != nil {
		c.bypass.Add(1)
		return runSession(cfg, org, p, netCfg)
	}

	c.mu.Lock()
	if c.sessions == nil {
		c.sessions = make(map[Key]*sessionCell)
	}
	cell, ok := c.sessions[key]
	if !ok {
		cell = &sessionCell{}
		c.sessions[key] = cell
	}
	disk := c.disk
	c.mu.Unlock()
	if ok {
		if cell.done.Load() {
			c.memHits.Add(1)
		} else {
			c.dedup.Add(1)
		}
	}
	cell.once.Do(func() {
		defer cell.done.Store(true)
		if disk != nil {
			res, n, err := disk.load(key)
			c.bytesRead.Add(n)
			if err != nil {
				c.diskErrors.Add(1)
			} else if res != nil {
				c.diskHits.Add(1)
				cell.res = res
				return
			}
		}
		c.misses.Add(1)
		cell.res, cell.err = runSession(cfg, org, p, netCfg)
		if cell.err == nil && disk != nil {
			if n, err := disk.store(key, cell.res); err != nil {
				c.diskErrors.Add(1)
			} else {
				c.bytesWritten.Add(n)
			}
		}
	})
	return cell.res, cell.err
}

// Run is the cached counterpart of services.RunWithOrigin: it resolves
// the config exactly as a direct run would (duration override, then
// mutator) and looks the session up under the resolved config's
// fingerprint.
func (c *Cache) Run(cfg player.Config, org *origin.Origin, p *netem.Profile, dur float64, mutate func(*player.Config)) (*player.Result, error) {
	return c.RunNet(services.Resolve(cfg, dur, mutate), org, p, simnet.DefaultConfig())
}

// Origin returns the service's origin, building it at most once per
// distinct content (media config, build options, origin options) — two
// services serving identical content share one origin.
func (c *Cache) Origin(svc *services.Service) (*origin.Origin, error) {
	key, err := Fingerprint(svc.Media, svc.Build, svc.OriginOptions)
	if err != nil {
		return svc.Origin() // unreachable for plain-data configs
	}
	return c.origins.Get(key, svc.Origin)
}

// RunService is the cached counterpart of Service.Run.
func (c *Cache) RunService(svc *services.Service, p *netem.Profile, dur float64, mutate func(*player.Config)) (*player.Result, error) {
	org, err := c.Origin(svc)
	if err != nil {
		return nil, err
	}
	return c.Run(svc.Player, org, p, dur, mutate)
}

// Package-level conveniences on Default.

// Run calls Default.Run.
func Run(cfg player.Config, org *origin.Origin, p *netem.Profile, dur float64, mutate func(*player.Config)) (*player.Result, error) {
	return Default.Run(cfg, org, p, dur, mutate)
}

// RunNet calls Default.RunNet.
func RunNet(cfg player.Config, org *origin.Origin, p *netem.Profile, netCfg simnet.Config) (*player.Result, error) {
	return Default.RunNet(cfg, org, p, netCfg)
}

// RunService calls Default.RunService.
func RunService(svc *services.Service, p *netem.Profile, dur float64, mutate func(*player.Config)) (*player.Result, error) {
	return Default.RunService(svc, p, dur, mutate)
}

// Origin calls Default.Origin.
func Origin(svc *services.Service) (*origin.Origin, error) {
	return Default.Origin(svc)
}

package manifest

import (
	"math"
	"strings"
	"testing"

	"repro/internal/media"
)

func testVideo(t *testing.T, separateAudio bool) *media.Video {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "tv", Duration: 60, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		SeparateAudio: separateAudio, AudioSegmentDuration: 2,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBuildHLS(t *testing.T) {
	p := Build(testVideo(t, false), BuildOptions{Protocol: HLS})
	if p.Addressing != SeparateFiles {
		t.Fatalf("HLS addressing = %v", p.Addressing)
	}
	if p.ManifestURL() != "/tv/master.m3u8" {
		t.Errorf("manifest URL %q", p.ManifestURL())
	}
	for _, r := range p.Video {
		if r.PlaylistURL == "" {
			t.Errorf("track %d missing playlist URL", r.ID)
		}
		for i, s := range r.Segments {
			if s.URL == "" || s.Length != 0 {
				t.Fatalf("HLS segment %d should have its own URL, no range", i)
			}
			if s.Size <= 0 {
				t.Fatalf("segment %d missing size", i)
			}
		}
	}
}

func TestBuildDASHRanges(t *testing.T) {
	for _, addr := range []Addressing{RangesInManifest, SidxRanges} {
		p := Build(testVideo(t, true), BuildOptions{Protocol: DASH, Addressing: addr})
		if p.Addressing != addr {
			t.Fatalf("addressing = %v, want %v", p.Addressing, addr)
		}
		if len(p.Audio) != 1 {
			t.Fatalf("audio renditions = %d", len(p.Audio))
		}
		for _, r := range append(append([]*Rendition{}, p.Video...), p.Audio...) {
			if r.MediaURL == "" {
				t.Fatal("missing media URL")
			}
			off := r.Segments[0].Offset
			for i, s := range r.Segments {
				if s.URL != "" {
					t.Fatal("ranged segment should have no URL")
				}
				if s.Offset != off {
					t.Fatalf("segment %d offset %d, want contiguous %d", i, s.Offset, off)
				}
				if s.Length != s.Size {
					t.Fatalf("segment %d length %d != size %d", i, s.Length, s.Size)
				}
				off += s.Length
			}
			if r.IndexOffset <= 0 || r.IndexLength <= 0 {
				t.Fatal("missing index range")
			}
			if r.Segments[0].Offset < r.IndexOffset+r.IndexLength {
				t.Fatal("first segment overlaps the index region")
			}
		}
	}
}

func TestBuildSmooth(t *testing.T) {
	p := Build(testVideo(t, true), BuildOptions{Protocol: Smooth})
	if p.Addressing != TemplateURLs {
		t.Fatalf("addressing = %v", p.Addressing)
	}
	s := p.Video[1].Segments[2]
	if !strings.Contains(s.URL, "QualityLevels(") || !strings.Contains(s.URL, "Fragments(video=") {
		t.Errorf("smooth URL %q", s.URL)
	}
	wantStart := int64(2 * 4 * SmoothTimescale)
	if !strings.Contains(s.URL, "=80000000)") {
		t.Errorf("smooth URL %q missing start time %d", s.URL, wantStart)
	}
}

func TestBuildSegmentTiming(t *testing.T) {
	p := Build(testVideo(t, false), BuildOptions{Protocol: HLS})
	r := p.Video[0]
	total := 0.0
	for i, s := range r.Segments {
		if math.Abs(s.Start-float64(i)*4) > 1e-9 {
			t.Fatalf("segment %d start %v", i, s.Start)
		}
		total += s.Duration
	}
	if math.Abs(total-60) > 1e-6 {
		t.Fatalf("durations sum to %v, want 60", total)
	}
}

func TestDeclareAverageOption(t *testing.T) {
	p := Build(testVideo(t, false), BuildOptions{Protocol: HLS, DeclareAverage: true})
	for _, r := range p.Video {
		if r.AverageBitrate <= 0 || r.AverageBitrate >= r.DeclaredBitrate {
			t.Errorf("track %d average %v vs declared %v", r.ID, r.AverageBitrate, r.DeclaredBitrate)
		}
	}
}

func TestRenditionHelpers(t *testing.T) {
	p := Build(testVideo(t, true), BuildOptions{Protocol: DASH, Addressing: SidxRanges})
	if p.Rendition(0) == nil || p.Rendition(99) != nil || p.Rendition(-1) != nil {
		t.Error("Rendition lookup wrong")
	}
	if p.Video[0].TotalBytes() <= 0 {
		t.Error("TotalBytes")
	}
	if p.Audio[0].Resolution() != "audio" {
		t.Error("audio resolution label")
	}
}

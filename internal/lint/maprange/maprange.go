// Package maprange flags order-sensitive accumulation inside map
// iteration.
//
// Go randomises map iteration order on purpose, so ranging over a map
// while appending to a slice, concatenating report text, writing to an
// output, or summing floats (float addition is not associative) yields
// a different result on every run — the exact hazard behind the
// sortedKeys helper in internal/experiments: collect the keys, sort
// them, then iterate the sorted slice. Appending keys into a slice that
// is sorted later in the same function is recognised as that safe
// pattern and not reported.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags range-over-map loops whose bodies accumulate
// order-sensitive state without a subsequent key sort.
var Analyzer = &lint.Analyzer{
	Name: "maprange",
	Doc: "flag order-sensitive accumulation (append/output/float or string sum) " +
		"inside range-over-map loops; sort the keys first",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		bodies := functionBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rng.X); t == nil || !isMap(t) {
				return true
			}
			checkRange(pass, rng, enclosing(bodies, rng))
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Interface:
		// A type parameter's underlying type is its constraint
		// interface: generic helpers like
		// sortedKeys[M ~map[string]float64] range over maps too.
		return typeSetIsMaps(u)
	}
	return false
}

// typeSetIsMaps reports whether the interface's type set is non-empty
// and consists solely of map types.
func typeSetIsMaps(iface *types.Interface) bool {
	found := false
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch et := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < et.Len(); j++ {
				if _, ok := et.Term(j).Type().Underlying().(*types.Map); !ok {
					return false
				}
				found = true
			}
		case *types.Interface:
			if !typeSetIsMaps(et) {
				return false
			}
			found = true
		default:
			if _, ok := et.Underlying().(*types.Map); !ok {
				return false
			}
			found = true
		}
	}
	return found
}

// functionBodies collects every function and closure body in the file.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// enclosing returns the smallest collected body containing the node.
func enclosing(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || b.Pos() > best.Pos() {
				best = b
			}
		}
	}
	return best
}

// checkRange inspects one map-range body for order-sensitive effects.
func checkRange(pass *lint.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures are their own scope
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, fnBody, st)
		case *ast.CallExpr:
			if name := outputCall(info, st); name != "" {
				pass.Reportf(st.Pos(),
					"%s inside range over map writes output in map order, which is randomised; iterate sorted keys instead",
					name)
			}
		}
		return true
	})
}

// checkAssign flags appends and float/string accumulation into
// variables that outlive the loop.
func checkAssign(pass *lint.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt, st *ast.AssignStmt) {
	info := pass.TypesInfo
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) {
				continue
			}
			id, obj := outerTarget(pass, st.Lhs[i], rng)
			if id == nil {
				continue
			}
			if sortedAfter(pass, fnBody, rng, obj) {
				continue // collect-then-sort: the safe idiom
			}
			pass.Reportf(st.Pos(),
				"append to %q inside range over map records randomised map order; sort the keys first (see sortedKeys in internal/experiments)",
				id.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		id, _ := outerTarget(pass, st.Lhs[0], rng)
		if id == nil {
			return
		}
		t := info.TypeOf(st.Lhs[0])
		if t == nil {
			return
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case b.Info()&types.IsFloat != 0:
			pass.Reportf(st.Pos(),
				"float accumulation into %q inside range over map depends on iteration order (float addition is not associative); sum over sorted keys",
				id.Name)
		case b.Info()&types.IsString != 0 && st.Tok == token.ADD_ASSIGN:
			pass.Reportf(st.Pos(),
				"string concatenation into %q inside range over map produces randomised output order; iterate sorted keys",
				id.Name)
		}
	}
}

// outerTarget resolves an assignment target to an identifier declared
// outside the range statement; accumulation into loop-local state or
// into map elements (out[k] += v) is order-insensitive and returns nil.
func outerTarget(pass *lint.Pass, lhs ast.Expr, rng *ast.RangeStmt) (*ast.Ident, types.Object) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil || (rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End()) {
			return nil, nil
		}
		return e, obj
	case *ast.SelectorExpr:
		// x.f += v mutates state that outlives the loop — unless x
		// itself is a loop-local (r := ...; r.Segments = append(...)
		// builds one value per key, which is order-insensitive).
		base := ast.Unparen(e.X)
		for {
			if s, ok := base.(*ast.SelectorExpr); ok {
				base = ast.Unparen(s.X)
				continue
			}
			break
		}
		if id, ok := base.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil &&
				rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
				return nil, nil
			}
		}
		sel := pass.TypesInfo.ObjectOf(e.Sel)
		if sel == nil {
			return nil, nil
		}
		return e.Sel, sel
	default:
		// Index expressions (map/slice element writes) key the update by
		// the element, not by arrival order.
		return nil, nil
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputCall returns a display name if the call writes to an output
// stream or builder: fmt.Print*/Fprint* and Write* methods.
func outputCall(info *types.Info, call *ast.CallExpr) string {
	if pkg, name := lint.CalleePkgFunc(info, call); pkg == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "fmt." + name
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			strings.HasPrefix(fn.Name(), "Write") {
			return fn.Name()
		}
	}
	return ""
}

// sortedAfter reports whether the slice object is passed to a sort
// function after the loop, inside the same function body.
func sortedAfter(pass *lint.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call)
		isSort := (pkg == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" ||
			name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable")) ||
			(pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		if root := lint.RootIdent(call.Args[0]); root != nil && pass.TypesInfo.ObjectOf(root) == obj {
			found = true
		}
		return true
	})
	return found
}

// Adaptation_lab shows the library as a test bench for new adaptation
// algorithms: it implements a custom algorithm against the public
// Algorithm interface (a simple safety-margin rule that also reads actual
// segment sizes, per §4.2's best practice) and races it against the
// built-in policies on identical content and traces.
package main

import (
	"fmt"
	"log"

	vod "repro"
	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/player"
	"repro/internal/textplot"
)

// cautiousActual is a user-defined algorithm: it budgets against the
// worst actual bitrate of the next few segments (not the declared rate),
// keeps a stronger safety margin when the buffer is thin, and relaxes it
// as the buffer grows.
type cautiousActual struct{}

func (cautiousActual) Name() string { return "cautious-actual" }

func (cautiousActual) Select(ctx adaptation.Context) int {
	if ctx.EstimateBps <= 0 {
		return ctx.StartupTrack
	}
	margin := 0.6
	if ctx.BufferSec > 20 {
		margin = 0.85
	}
	budget := margin * ctx.EstimateBps
	best := 0
	for tr := range ctx.Declared {
		rate := ctx.Declared[tr]
		if ctx.SegmentSize != nil {
			worst := 0.0
			for i := ctx.NextIndex; i < ctx.NextIndex+3 && i < ctx.SegmentCount; i++ {
				if r := ctx.SegmentSize(tr, i) * 8 / ctx.SegmentDuration; r > worst {
					worst = r
				}
			}
			if worst > 0 {
				rate = worst
			}
		}
		if rate <= budget {
			best = tr
		}
	}
	return best
}

func main() {
	video, err := vod.GenerateVideo(vod.MediaConfig{
		Name: "lab", Duration: 1200, SegmentDuration: 4,
		TargetBitrates: []float64{200e3, 400e3, 800e3, 1.5e6, 2.8e6, 4.5e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	org, err := vod.NewOrigin(vod.BuildManifest(video, vod.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		log.Fatal(err)
	}

	algos := []struct {
		name   string
		algo   vod.Algorithm
		actual bool // expose per-segment sizes to the algorithm
	}{
		{"throughput 0.75 (declared)", adaptation.Throughput{Factor: 0.75}, false},
		{"ExoPlayer hysteresis", adaptation.DefaultHysteresis(), false},
		{"buffer-based (BBA)", adaptation.BufferBased{Reservoir: 8, Cushion: 30}, false},
		{"cautious-actual (custom)", cautiousActual{}, true},
	}

	t := &textplot.Table{
		Title:  "Adaptation algorithms over the 14 cellular profiles (medians)",
		Header: []string{"algorithm", "avg kbit/s", "stall s", "switches", "low-track time"},
	}
	for _, a := range algos {
		var rate, stall, switches, low []float64
		for i := 1; i <= 14; i++ {
			cfg := vod.PlayerConfig{
				Name: a.name, StartupBufferSec: 8, StartupSegments: 2, StartupTrack: 1,
				PauseThresholdSec: 60, ResumeThresholdSec: 45,
				MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
				Algorithm: a.algo, ExposeSegmentSizes: a.actual,
			}
			res, err := vod.Stream(cfg, org, vod.CellularProfile(i), 600)
			if err != nil {
				log.Fatal(err)
			}
			rep := vod.QoE(res)
			rate = append(rate, rep.AvgBitrate)
			stall = append(stall, rep.StallSec)
			switches = append(switches, float64(rep.Switches))
			low = append(low, rep.PctTimeBelow(res.Declared, 800e3))
		}
		t.AddRow(a.name,
			fmt.Sprintf("%.0f", textplot.Median(rate)/1e3),
			fmt.Sprintf("%.1f", textplot.Median(stall)),
			fmt.Sprintf("%.0f", textplot.Median(switches)),
			textplot.Pct(textplot.Median(low)),
		)
	}
	fmt.Println(t.String())
}

package cdn

import (
	"testing"
)

// FuzzCacheInvariants drives one cache with an arbitrary operation
// stream decoded from the fuzz input and checks the structural
// invariants after every operation: used bytes never exceed the
// capacity, used always equals the sum of resident entry sizes, the
// LRU list and index stay consistent, and a fresh admit is immediately
// visible.
func FuzzCacheInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x20})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		// Capacity and TTL come from the head of the stream so the
		// fuzzer explores tiny and huge caches alike.
		capBytes, ttl := 0.0, 0.0
		if len(data) >= 2 {
			capBytes = float64(data[0]) * 40
			ttl = float64(data[1])
			data = data[2:]
		}
		c := newCache(capBytes, ttl)
		now := 0.0
		for i := 0; i+3 < len(data); i += 4 {
			op, a, b, d := data[i], data[i+1], data[i+2], data[i+3]
			now += float64(d) / 16
			obj := Object{Catalog: int32(a % 4), Kind: a % 2, Track: int32(b % 8), Index: int32(b)}
			size := 1 + float64(a)*2
			switch op % 4 {
			case 0, 1:
				c.admit(now, obj, size)
				if capBytes <= 0 || size <= capBytes {
					if !c.lookup(now+1e-9, obj) && ttl > 1e-9 {
						t.Fatalf("op %d: fresh admit of %v not resident", i, obj)
					}
				}
			case 2:
				c.lookup(now, obj)
			case 3:
				c.drop()
			}
			if capBytes > 0 && c.used > capBytes+1e-9 {
				t.Fatalf("op %d: used %.1f exceeds cap %.1f", i, c.used, capBytes)
			}
			checkStructure(t, c)
		}
	})
}

// checkStructure validates the list/index/accounting invariants.
func checkStructure(t *testing.T, c *cache) {
	t.Helper()
	var used float64
	n := 0
	prev := nilEnt
	for e := c.head; e != nilEnt; e = c.ent[e].next {
		if c.ent[e].prev != prev {
			t.Fatalf("list corrupt at %d", e)
		}
		if got, ok := c.idx[c.ent[e].obj]; !ok || got != e {
			t.Fatalf("index out of sync at %d", e)
		}
		used += c.ent[e].size
		n++
		prev = e
		if n > len(c.ent) {
			t.Fatal("LRU list cycles")
		}
	}
	if c.tail != prev || n != len(c.idx) {
		t.Fatalf("tail/count mismatch: tail %d vs %d, %d vs %d entries", c.tail, prev, n, len(c.idx))
	}
	if diff := c.used - used; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("used %.3f != entry sum %.3f", c.used, used)
	}
}

// Command vodreport regenerates every experiment and writes a single
// markdown report — the machine-refreshable companion to EXPERIMENTS.md.
//
// Usage:
//
//	vodreport -out REPORT.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "REPORT.md", "output file (- for stdout)")
	flag.Parse()

	var b strings.Builder
	b.WriteString("# Regenerated experiment report\n\n")
	b.WriteString("Produced by `vodreport`; every table below is regenerated from the\n")
	b.WriteString("committed code with fixed seeds. See EXPERIMENTS.md for the\n")
	b.WriteString("paper-vs-measured comparison and DESIGN.md for the substitutions.\n")
	for _, e := range experiments.All() {
		start := time.Now()
		tables, plots, err := e.Run()
		if err != nil {
			log.Fatalf("vodreport: %s: %v", e.ID, err)
		}
		fmt.Fprintf(&b, "\n## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(&b, "_regenerated in %.1fs_\n\n", time.Since(start).Seconds())
		for _, t := range tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		for _, p := range plots {
			b.WriteString("```\n")
			b.WriteString(p)
			b.WriteString("```\n\n")
		}
	}
	if *out == "-" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatalf("vodreport: %v", err)
	}
	fmt.Println("wrote", *out)
}

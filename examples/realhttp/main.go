// Realhttp streams over actual sockets: it starts the origin as a real
// net/http server on localhost, shapes the client's transport with a
// token bucket (the wall-clock stand-in for the paper's tc shaping), and
// runs the live HTTP player against it. Unlike the other examples this
// one runs in real time, so it uses a short clip.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	vod "repro"
	"repro/internal/adaptation"
	"repro/internal/httpplay"
	"repro/internal/manifest"
	"repro/internal/media"
)

func main() {
	// A short clip so the demo finishes in ~10 s of wall time.
	video, err := vod.GenerateVideo(vod.MediaConfig{
		Name: "clip", Duration: 8, SegmentDuration: 2,
		TargetBitrates: []float64{250e3, 500e3, 1e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	org, err := vod.NewOrigin(vod.BuildManifest(video, vod.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(org)
	defer srv.Close()
	fmt.Println("origin serving at", srv.URL+org.Pres.ManifestURL())

	// Shape the link to 3 Mbit/s.
	shaper := httpplay.NewShaper(http.DefaultTransport, 3e6)
	client := &http.Client{Transport: shaper}

	res, err := httpplay.Play(httpplay.Config{
		ManifestURL:        srv.URL + org.Pres.ManifestURL(),
		Client:             client,
		Algorithm:          adaptation.Throughput{Factor: 0.75},
		StartupBufferSec:   2,
		PauseThresholdSec:  6,
		ResumeThresholdSec: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("startup delay : %v\n", res.StartupDelay.Round(1e6))
	fmt.Printf("stalls        : %d (%v)\n", res.Stalls, res.StallTime.Round(1e6))
	fmt.Printf("played        : %.1f s of media\n", res.PlayedMedia)
	fmt.Printf("downloaded    : %d segments, %.2f MB\n", len(res.Downloads), float64(res.Bytes)/1e6)
	for _, d := range res.Downloads {
		fmt.Printf("  %-5s track=%d idx=%d %6.1f KB in %v\n",
			d.Type, d.Track, d.Index, float64(d.Bytes)/1e3, d.Took.Round(1e6))
	}
}

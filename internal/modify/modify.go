// Package modify implements the paper's black-box manipulation tools
// (§2.2): manifest modification — shifting the mapping between declared
// bitrates and media (Figure 12) or dropping tracks — and request
// rejection after the first N segments (the startup-buffer probe of
// §3.3.1). The modified manifests are re-encoded and served by a normal
// origin, exactly as the paper's proxy presented doctored manifests to
// unmodified apps.
package modify

import (
	"repro/internal/manifest"
	"repro/internal/player"
)

// ShiftVariants builds Figure 12's "variant 1": each track keeps its
// declared bitrate but points at the media of the next lower quality
// level. The lowest rung has no lower media, so the result has one fewer
// track: declared bitrates 1..n-1 paired with media 0..n-2.
func ShiftVariants(p *manifest.Presentation) *manifest.Presentation {
	cp := clone(p)
	n := len(cp.Video)
	if n < 2 {
		return cp
	}
	out := make([]*manifest.Rendition, 0, n-1)
	for i := 1; i < n; i++ {
		r := *cp.Video[i-1] // media (URLs, sizes, resolution) of the lower track
		r.DeclaredBitrate = cp.Video[i].DeclaredBitrate
		r.AverageBitrate = cp.Video[i].AverageBitrate
		r.ID = i - 1
		out = append(out, &r)
	}
	cp.Video = out
	return cp
}

// DropLowest builds Figure 12's "variant 2": the lowest track is removed
// and the rest are unchanged, so both variants expose the same declared
// ladder while variant 1's actual bitrates are one rung lower.
func DropLowest(p *manifest.Presentation) *manifest.Presentation {
	cp := clone(p)
	if len(cp.Video) < 2 {
		return cp
	}
	cp.Video = cp.Video[1:]
	for i, r := range cp.Video {
		r.ID = i
	}
	return cp
}

// clone deep-copies a presentation's rendition lists (segments are copied
// so callers can edit them safely).
func clone(p *manifest.Presentation) *manifest.Presentation {
	cp := *p
	dup := func(rs []*manifest.Rendition) []*manifest.Rendition {
		out := make([]*manifest.Rendition, len(rs))
		for i, r := range rs {
			rr := *r
			rr.Segments = append([]manifest.Segment(nil), r.Segments...)
			out[i] = &rr
		}
		return out
	}
	cp.Video = dup(p.Video)
	cp.Audio = dup(p.Audio)
	return &cp
}

// RejectAfter returns a request gate that admits only the first n media
// segment requests — the paper's probe for the startup buffer duration:
// "we instrument the proxy to reject all segment requests after the
// first n segments" (§3.3.1).
func RejectAfter(n int) func(player.Request) bool {
	return func(r player.Request) bool {
		return r.SegmentSeq < n
	}
}

package media

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Name: "t", Duration: 600, SegmentDuration: 4,
		TargetBitrates: []float64{250e3, 500e3, 1e6, 2e6},
		Encoding:       VBR, VBRSpread: 2, DeclaredPolicy: DeclarePeak,
		Seed: 1,
	}
}

func TestGenerateBasics(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.SegmentCount(), 150; got != want {
		t.Fatalf("SegmentCount = %d, want %d", got, want)
	}
	if got := len(v.Tracks); got != 4 {
		t.Fatalf("tracks = %d, want 4", got)
	}
	for i, tr := range v.Tracks {
		if len(tr.SegmentBytes) != v.SegmentCount() {
			t.Fatalf("track %d has %d segments", i, len(tr.SegmentBytes))
		}
		if tr.ID != i {
			t.Errorf("track %d has ID %d", i, tr.ID)
		}
	}
	if v.SeparateAudio() {
		t.Error("unexpected separate audio")
	}
}

func TestGenerateLadderAscending(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(v.Tracks); i++ {
		if v.Tracks[i].DeclaredBitrate <= v.Tracks[i-1].DeclaredBitrate {
			t.Errorf("declared not ascending at %d", i)
		}
		// Same complexity series ⇒ sizes scale with target per segment.
		for j := range v.Tracks[i].SegmentBytes {
			if v.Tracks[i].SegmentBytes[j] <= v.Tracks[i-1].SegmentBytes[j] {
				t.Fatalf("segment %d of track %d not larger than track %d", j, i, i-1)
			}
		}
	}
}

func TestVBRAverageMatchesTarget(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range v.Tracks {
		avg := tr.AverageBitrate()
		if math.Abs(avg-tr.TargetBitrate)/tr.TargetBitrate > 0.02 {
			t.Errorf("track %d avg %.0f vs target %.0f", tr.ID, avg, tr.TargetBitrate)
		}
	}
}

func TestVBRSpread(t *testing.T) {
	v, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := v.HighestTrack()
	ratio := tr.PeakBitrate() / tr.AverageBitrate()
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("peak/avg = %.2f, want ≈2 (VBRSpread)", ratio)
	}
	// Peak-declared policy: declared ≈ spread × target.
	if math.Abs(tr.DeclaredBitrate-2*tr.TargetBitrate) > 1 {
		t.Errorf("declared %.0f, want 2×target %.0f", tr.DeclaredBitrate, 2*tr.TargetBitrate)
	}
}

func TestCBRTight(t *testing.T) {
	cfg := testConfig()
	cfg.Encoding = CBR
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := v.HighestTrack()
	if r := tr.PeakBitrate() / tr.AverageBitrate(); r > 1.05 {
		t.Errorf("CBR peak/avg = %.3f, want ≤1.05", r)
	}
	if tr.DeclaredBitrate != tr.TargetBitrate {
		t.Errorf("CBR declared %v != target %v", tr.DeclaredBitrate, tr.TargetBitrate)
	}
}

func TestDeclareAverage(t *testing.T) {
	cfg := testConfig()
	cfg.DeclaredPolicy = DeclareAverage
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range v.Tracks {
		if tr.DeclaredBitrate != tr.TargetBitrate {
			t.Errorf("average-declared track %d: declared %v != target %v", tr.ID, tr.DeclaredBitrate, tr.TargetBitrate)
		}
	}
}

func TestSeparateAudio(t *testing.T) {
	cfg := testConfig()
	cfg.SeparateAudio = true
	cfg.AudioBitrate = 128e3
	cfg.AudioSegmentDuration = 2
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SeparateAudio() {
		t.Fatal("expected separate audio")
	}
	if got, want := v.AudioSegmentCount(), 300; got != want {
		t.Fatalf("audio segments = %d, want %d", got, want)
	}
	at := v.AudioTracks[0]
	if at.Type != TypeAudio {
		t.Error("audio track type")
	}
	if math.Abs(at.AverageBitrate()-128e3) > 1e3 {
		t.Errorf("audio avg %.0f, want 128k", at.AverageBitrate())
	}
}

func TestLastSegmentShorter(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 10
	cfg.SegmentDuration = 4
	v, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.SegmentCount(); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	if got := v.SegmentLength(2); math.Abs(got-2) > 1e-9 {
		t.Fatalf("last segment length = %v, want 2", got)
	}
	if got := v.SegmentLength(0); got != 4 {
		t.Fatalf("first segment length = %v, want 4", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []Config{
		{},                                 // zero durations
		{Duration: 10, SegmentDuration: 2}, // empty ladder
		{Duration: 10, SegmentDuration: 2, TargetBitrates: []float64{2e6, 1e6}}, // not ascending
		{Duration: -1, SegmentDuration: 2, TargetBitrates: []float64{1e6}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(testConfig())
	b, _ := Generate(testConfig())
	for i := range a.Tracks {
		for j := range a.Tracks[i].SegmentBytes {
			if a.Tracks[i].SegmentBytes[j] != b.Tracks[i].SegmentBytes[j] {
				t.Fatalf("generation not deterministic at track %d seg %d", i, j)
			}
		}
	}
}

func TestResolutionLabels(t *testing.T) {
	v, _ := Generate(testConfig())
	if got := v.LowestTrack().Resolution(); got == "" {
		t.Error("empty resolution label")
	}
	cfg := testConfig()
	cfg.SeparateAudio = true
	v, _ = Generate(cfg)
	if got := v.AudioTracks[0].Resolution(); got != "audio" {
		t.Errorf("audio resolution = %q", got)
	}
}

// TestQuickGenerateInvariants property-tests generation over random valid
// configs: sizes positive, mean ≈ target, complexity mean 1, monotone
// ladder.
func TestQuickGenerateInvariants(t *testing.T) {
	f := func(seed int64, nTracks uint8, segDur8 uint8, vbr bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nTracks%5) + 1
		ladder := make([]float64, n)
		b := 100e3 * (1 + rng.Float64())
		for i := range ladder {
			ladder[i] = b
			b *= 1.5 + rng.Float64()
		}
		cfg := Config{
			Name: "q", Duration: 120, SegmentDuration: float64(segDur8%9) + 1,
			TargetBitrates: ladder, Seed: seed,
			VBRSpread: 1.5 + rng.Float64(),
		}
		if vbr {
			cfg.Encoding = VBR
		}
		v, err := Generate(cfg)
		if err != nil {
			return false
		}
		mean := 0.0
		for _, c := range v.Complexity {
			if c <= 0 {
				return false
			}
			mean += c
		}
		mean /= float64(len(v.Complexity))
		if math.Abs(mean-1) > 0.02 {
			return false
		}
		for _, tr := range v.Tracks {
			for _, sz := range tr.SegmentBytes {
				if sz <= 0 {
					return false
				}
			}
			// The complexity series is normalised unweighted; a short
			// final segment can skew the duration-weighted mean a bit.
			if math.Abs(tr.AverageBitrate()-tr.TargetBitrate)/tr.TargetBitrate > 0.15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

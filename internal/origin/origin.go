// Package origin implements the server side of a HAS service: it encodes
// the manifest documents for a presentation (HLS playlists, DASH MPD with
// per-track sidx boxes, or a SmoothStreaming manifest), answers document
// lookups for the virtual-time simulator, and serves the whole
// presentation — including synthetic media payloads with Range and HEAD
// support — over real HTTP via net/http.
package origin

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/manifest"
	"repro/internal/manifest/dash"
	"repro/internal/manifest/hls"
	"repro/internal/manifest/sidx"
	"repro/internal/manifest/smooth"
)

// Origin holds a presentation and its encoded wire documents.
type Origin struct {
	// Pres is the presentation being served.
	Pres *manifest.Presentation

	docs      map[string][]byte // URL -> document body
	sidxBytes map[string][]byte // media URL -> encoded sidx box
	mediaSize map[string]int64  // media URL -> total virtual file size
	segSize   map[string]int64  // segment URL -> size (separate files)
}

// New encodes all documents for a presentation.
func New(p *manifest.Presentation) (*Origin, error) {
	return NewWithOptions(p, Options{})
}

// Options tunes origin behaviour.
type Options struct {
	// ObfuscateManifest scrambles the top-level manifest's wire bytes,
	// modelling D3's application-layer-encrypted MPD (§2.3): the player
	// still understands the presentation (it holds the key), but an
	// on-path observer sees only opaque bytes — the sidx boxes remain
	// readable, which is the loophole the paper's analyzer exploits.
	ObfuscateManifest bool
}

// NewWithOptions encodes all documents for a presentation with options.
func NewWithOptions(p *manifest.Presentation, opts Options) (*Origin, error) {
	o := &Origin{
		Pres:      p,
		docs:      map[string][]byte{},
		sidxBytes: map[string][]byte{},
		mediaSize: map[string]int64{},
		segSize:   map[string]int64{},
	}
	switch p.Protocol {
	case manifest.HLS:
		o.docs[p.ManifestURL()] = []byte(hls.EncodeMaster(p))
		for _, r := range p.Video {
			o.docs[r.PlaylistURL] = []byte(hls.EncodeMedia(r))
		}
	case manifest.DASH:
		body, err := dash.Encode(p)
		if err != nil {
			return nil, err
		}
		o.docs[p.ManifestURL()] = body
	case manifest.Smooth:
		body, err := smooth.Encode(p)
		if err != nil {
			return nil, err
		}
		o.docs[p.ManifestURL()] = body
	}
	if opts.ObfuscateManifest {
		url := p.ManifestURL()
		o.docs[url] = obfuscate(o.docs[url])
	}
	index := func(r *manifest.Rendition) {
		if r.MediaURL != "" {
			sizes := make([]int64, 0, len(r.Segments))
			durs := make([]float64, 0, len(r.Segments))
			var total int64
			for _, s := range r.Segments {
				sizes = append(sizes, s.Size)
				durs = append(durs, s.Duration)
				total = s.Offset + s.Length
			}
			box := sidx.FromSegments(sizes, durs, 1000)
			o.sidxBytes[r.MediaURL] = sidx.Encode(box)
			o.mediaSize[r.MediaURL] = total
		}
		for _, s := range r.Segments {
			if s.URL != "" && s.Length == 0 {
				o.segSize[s.URL] = s.Size
			}
		}
	}
	for _, r := range p.Video {
		index(r)
	}
	for _, r := range p.Audio {
		index(r)
	}
	return o, nil
}

// Document returns the body of a manifest-level document by URL.
func (o *Origin) Document(url string) ([]byte, bool) {
	b, ok := o.docs[url]
	return b, ok
}

// Sidx returns the encoded Segment Index box of a range-addressed media
// file.
func (o *Origin) Sidx(mediaURL string) ([]byte, bool) {
	b, ok := o.sidxBytes[mediaURL]
	return b, ok
}

// ServeHTTP serves the presentation over real HTTP: manifest documents
// verbatim, media as synthetic payloads of the correct size with full
// Range support (http.ServeContent handles Range and HEAD).
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Path
	if body, ok := o.docs[url]; ok {
		w.Header().Set("Content-Type", contentTypeFor(url, o.Pres.Protocol))
		http.ServeContent(w, r, "", time.Time{}, strings.NewReader(string(body)))
		return
	}
	if size, ok := o.mediaSize[url]; ok {
		f := &virtualFile{size: size}
		// Splice the real sidx bytes into the virtual file at the
		// rendition's index offset so ranged index fetches decode.
		if sx, ok := o.sidxBytes[url]; ok {
			if rend := o.renditionByMediaURL(url); rend != nil {
				f.patchOff, f.patch = rend.IndexOffset, sx
			}
		}
		w.Header().Set("Content-Type", "video/mp4")
		http.ServeContent(w, r, "", time.Time{}, f)
		return
	}
	if size, ok := o.segSize[url]; ok {
		w.Header().Set("Content-Type", "video/mp2t")
		http.ServeContent(w, r, "", time.Time{}, &virtualFile{size: size})
		return
	}
	http.NotFound(w, r)
}

func (o *Origin) renditionByMediaURL(url string) *manifest.Rendition {
	for _, r := range o.Pres.Video {
		if r.MediaURL == url {
			return r
		}
	}
	for _, r := range o.Pres.Audio {
		if r.MediaURL == url {
			return r
		}
	}
	return nil
}

func contentTypeFor(url string, proto manifest.Protocol) string {
	switch {
	case strings.HasSuffix(url, ".m3u8"):
		return "application/vnd.apple.mpegurl"
	case strings.HasSuffix(url, ".mpd"):
		return "application/dash+xml"
	case proto == manifest.Smooth:
		return "application/vnd.ms-sstr+xml"
	default:
		return "application/octet-stream"
	}
}

// obfuscate scrambles document bytes deterministically (a stand-in for
// application-layer encryption; the exact transform is irrelevant — it
// only has to defeat content sniffing).
func obfuscate(body []byte) []byte {
	out := make([]byte, len(body))
	for i, b := range body {
		out[i] = b ^ byte(0xA5+i*7)
	}
	return out
}

// virtualFile is a ReadSeeker over deterministic filler bytes of a fixed
// size, with an optional patched region carrying real bytes (the sidx).
// It lets the origin serve arbitrarily large media without storing it.
type virtualFile struct {
	size     int64
	pos      int64
	patchOff int64
	patch    []byte
}

func (f *virtualFile) Read(p []byte) (int, error) {
	if f.pos >= f.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := f.size - f.pos; int64(n) > rem {
		n = int(rem)
	}
	for i := 0; i < n; i++ {
		off := f.pos + int64(i)
		if f.patch != nil && off >= f.patchOff && off < f.patchOff+int64(len(f.patch)) {
			p[i] = f.patch[off-f.patchOff]
		} else {
			p[i] = byte(off * 31)
		}
	}
	f.pos += int64(n)
	return n, nil
}

func (f *virtualFile) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = f.pos + offset
	case io.SeekEnd:
		abs = f.size + offset
	default:
		return 0, fmt.Errorf("origin: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("origin: negative seek")
	}
	f.pos = abs
	return abs, nil
}

package uimon

import (
	"math"
	"testing"
)

// synthSamples builds a progress series: idle until startup, playing at
// rate 1 with a stall window.
func synthSamples(startup, stallAt, stallDur, total float64) []Sample {
	var out []Sample
	pos := 0.0
	for t := 0.0; t <= total; t++ {
		out = append(out, Sample{T: t, Position: pos})
		playing := t >= startup && !(t >= stallAt && t < stallAt+stallDur)
		if playing {
			pos++
		}
	}
	return out
}

func TestStartupDelay(t *testing.T) {
	s := synthSamples(5, 100, 0, 30)
	if got := StartupDelay(s); got != 5 {
		t.Fatalf("startup %v, want 5", got)
	}
	if got := StartupDelay(nil); got != -1 {
		t.Fatalf("empty samples startup %v", got)
	}
	flat := []Sample{{0, 0}, {1, 0}, {2, 0}}
	if got := StartupDelay(flat); got != -1 {
		t.Fatalf("never-playing startup %v", got)
	}
}

func TestStalls(t *testing.T) {
	s := synthSamples(3, 10, 4, 40)
	stalls := Stalls(s, 1)
	if len(stalls) != 1 {
		t.Fatalf("%d stalls, want 1", len(stalls))
	}
	if math.Abs(stalls[0].Start-10) > 1.5 || math.Abs(stalls[0].Duration()-4) > 1.5 {
		t.Fatalf("stall %+v, want ≈[10,14]", stalls[0])
	}
}

func TestStallsIgnoreStartupIdle(t *testing.T) {
	// The pre-startup flat region must not count as a stall.
	s := synthSamples(10, 100, 0, 30)
	if stalls := Stalls(s, 1); len(stalls) != 0 {
		t.Fatalf("counted startup idle as stall: %+v", stalls)
	}
}

func TestTrailingStall(t *testing.T) {
	// Playback starts then freezes to the end.
	var s []Sample
	pos := 0.0
	for t := 0.0; t <= 20; t++ {
		s = append(s, Sample{T: t, Position: pos})
		if t >= 2 && t < 8 {
			pos++
		}
	}
	stalls := Stalls(s, 1)
	if len(stalls) != 1 || stalls[0].End != 20 {
		t.Fatalf("trailing stall %+v", stalls)
	}
}

func TestPositionAt(t *testing.T) {
	s := []Sample{{0, 0}, {1, 0}, {2, 1}, {3, 2}}
	if got := PositionAt(s, 2.5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("PositionAt(2.5) = %v", got)
	}
	if got := PositionAt(s, -1); got != 0 {
		t.Fatalf("PositionAt(-1) = %v", got)
	}
	if got := PositionAt(s, 99); got != 2 {
		t.Fatalf("PositionAt(99) = %v", got)
	}
}

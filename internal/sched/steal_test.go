package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// runCover executes RunStealing over n units and asserts every unit ran
// exactly once, returning the stats.
func runCover(t *testing.T, s *Scheduler, n, workers int, opts StealOptions) StealStats {
	t.Helper()
	counts := make([]atomic.Int32, n)
	stats, err := s.RunStealing(context.Background(), n, workers, opts, func(i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("unit %d ran %d times (opts %+v)", i, c, opts)
		}
	}
	return stats
}

func TestRunStealingCoversAllUnits(t *testing.T) {
	s := New(8)
	for _, workers := range []int{1, 2, 8, 16} {
		for _, opts := range []StealOptions{{}, {Hog: true}, {DisableSteal: true}} {
			runCover(t, s, 257, workers, opts)
		}
	}
	// Degenerate sizes.
	runCover(t, s, 1, 8, StealOptions{})
	if _, err := s.RunStealing(context.Background(), 0, 4, StealOptions{}, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStealingHogSteals pins the schedule shapes the fleet's
// determinism test relies on: a hog run with real concurrency must
// actually steal, and a DisableSteal run must never steal.
func TestRunStealingHogSteals(t *testing.T) {
	s := New(8)
	hogged := StealStats{}
	// The hog schedule only steals when a helper goroutine actually runs
	// concurrently; on a single-P runtime worker 0 can drain the whole
	// deque before any helper is scheduled, so fn yields and we retry a
	// few times to shake scheduling luck.
	for try := 0; try < 50 && hogged.Steals == 0; try++ {
		counts := make([]atomic.Int32, 400)
		st, err := s.RunStealing(context.Background(), 400, 8, StealOptions{Hog: true}, func(i int) error {
			counts[i].Add(1)
			runtime.Gosched()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("unit %d ran %d times under hog schedule", i, c)
			}
		}
		hogged = st
	}
	if hogged.Steals == 0 {
		t.Fatal("hog schedule with 8 workers never stole")
	}
	if st := runCover(t, s, 400, 8, StealOptions{DisableSteal: true}); st.Steals != 0 || st.Stolen != 0 {
		t.Fatalf("DisableSteal schedule reported steals: %+v", st)
	}
}

func TestRunStealingFirstErrorByIndexWins(t *testing.T) {
	s := New(4)
	boom := func(i int) error { return fmt.Errorf("unit %d failed", i) }
	_, err := s.RunStealing(context.Background(), 100, 4, StealOptions{}, func(i int) error {
		if i == 7 || i == 93 {
			return boom(i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("error was dropped")
	}
	// Both failing units may or may not run before cancellation, but the
	// reported error must be the smallest-index one that did.
	if err.Error() != "unit 7 failed" && err.Error() != "unit 93 failed" {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestRunStealingHonorsContext(t *testing.T) {
	s := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	_, err := s.RunStealing(ctx, 50, 2, StealOptions{}, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d units ran under a pre-cancelled context", ran.Load())
	}
}

// TestRunStealingWorkersBeyondCapacity: helper spawn is gated by
// TryAcquire, so a workers value far beyond the scheduler capacity
// still completes (the caller works inline) without leaking slots.
func TestRunStealingWorkersBeyondCapacity(t *testing.T) {
	s := New(1)
	runCover(t, s, 64, 32, StealOptions{})
	if !s.TryAcquire() {
		t.Fatal("scheduler slot leaked by RunStealing")
	}
	s.Release()
}

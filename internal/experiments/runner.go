package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/textplot"
)

// The parallel experiment engine. Every experiment is an independent
// pure-ish computation (fixed seeds, no cross-experiment state other
// than the build-once caches below), so a full report regeneration fans
// out across GOMAXPROCS workers. Determinism is preserved by collecting
// results by index — paper order in, paper order out — never by
// completion order; the same holds for the intra-experiment sweep
// helper the heaviest experiments use.

// Result is the outcome of one experiment run by RunAll.
type Result struct {
	// Index is the position of the experiment in the requested order.
	Index int
	// ID and Title identify the artifact.
	ID, Title string
	// Tables and Plots are the regenerated outputs (nil on error).
	Tables []*textplot.Table
	Plots  []string
	// Err is the experiment's failure, or the context error for
	// experiments that were never scheduled because the run was
	// cancelled.
	Err error
	// Elapsed is the wall-clock time the experiment took.
	Elapsed time.Duration
	// AllocBytes is the heap allocated while the experiment ran. It is
	// exact for Workers=1; under parallel runs it includes allocations
	// by concurrently running experiments and is only indicative.
	AllocBytes uint64
}

// Options configures RunAll.
type Options struct {
	// Workers caps the number of experiments running concurrently.
	// Zero or negative means GOMAXPROCS.
	Workers int
	// IDs selects a subset of experiments to run, in the given order.
	// Nil means every registered experiment in paper order.
	IDs []string
	// OnProgress, when non-nil, is called once per experiment as it
	// finishes (completion order). Calls are serialised; the callback
	// does not need its own locking.
	OnProgress func(Result)
}

// RunAll regenerates the selected experiments on a worker pool and
// returns their results in request order. The first experiment error (in
// request order, not completion order) is also returned as the run
// error; cancelling ctx stops scheduling new experiments and marks the
// unscheduled ones with the context error.
func RunAll(ctx context.Context, opts Options) ([]Result, error) {
	exps, err := selectExperiments(opts.IDs)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	results := make([]Result, len(exps))
	for i, e := range exps {
		results[i] = Result{Index: i, ID: e.ID, Title: e.Title}
	}

	var progressMu sync.Mutex
	runOne := func(i int) {
		r := &results[i]
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now() //vodlint:allow simclock — wall-clock runner timing, not simulation state
		r.Tables, r.Plots, r.Err = exps[i].Run()
		r.Elapsed = time.Since(start) //vodlint:allow simclock — wall-clock runner timing, not simulation state
		runtime.ReadMemStats(&ms)
		r.AllocBytes = ms.TotalAlloc - before
		if opts.OnProgress != nil {
			progressMu.Lock()
			opts.OnProgress(*r)
			progressMu.Unlock()
		}
	}

	if workers <= 1 {
		for i := range exps {
			if ctx.Err() != nil {
				results[i].Err = ctx.Err()
				continue
			}
			runOne(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runOne(i)
				}
			}()
		}
		scheduled := make([]bool, len(exps))
	feed:
		for i := range exps {
			select {
			case jobs <- i:
				scheduled[i] = true
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		for i := range exps {
			if !scheduled[i] {
				results[i].Err = ctx.Err()
			}
		}
	}

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("experiments: %s: %w", results[i].ID, results[i].Err)
		}
	}
	return results, nil
}

// selectExperiments resolves ids to experiments, defaulting to paper
// order.
func selectExperiments(ids []string) ([]Experiment, error) {
	if ids == nil {
		return All(), nil
	}
	exps := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e := ByID(id)
		if e == nil {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		exps = append(exps, *e)
	}
	return exps, nil
}

// sweep fans fn out over items across GOMAXPROCS workers and collects
// the outputs by item index, so callers observe exactly the ordering a
// serial loop would produce. The first error by index wins. It is the
// intra-experiment counterpart of RunAll for services × profiles (and
// similar) product sweeps.
func sweep[In, Out any](items []In, fn func(In) (Out, error)) ([]Out, error) {
	outs := make([]Out, len(items))
	errs := make([]error, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			outs[i], errs[i] = fn(items[i])
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					outs[i], errs[i] = fn(items[i])
				}
			}()
		}
		for i := range items {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// keyedOnce builds one value per key exactly once without serialising
// unrelated keys: the map lock is held only long enough to find or
// insert the key's cell, and the build itself runs under the cell's own
// sync.Once. Concurrent callers of the same key block until the single
// build finishes; callers of different keys proceed independently.
type keyedOnce[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*onceCell[V]
}

type onceCell[V any] struct {
	once sync.Once
	val  V
	err  error
}

func (c *keyedOnce[K, V]) get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[K]*onceCell[V]{}
	}
	cell, ok := c.m[key]
	if !ok {
		cell = &onceCell[V]{}
		c.m[key] = cell
	}
	c.mu.Unlock()
	cell.once.Do(func() { cell.val, cell.err = build() })
	return cell.val, cell.err
}

// Package hls encodes and parses HTTP Live Streaming playlists (RFC 8216
// subset): a Master Playlist listing the variant streams and one Media
// Playlist per track listing segment URIs and durations. This is the wire
// format of services H1–H6; the traffic analyzer parses these documents
// out of the HTTP flow to map requests to segments (§2.3).
package hls

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/manifest"
	"repro/internal/media"
)

// EncodeMaster renders the Master Playlist for a presentation.
func EncodeMaster(p *manifest.Presentation) string {
	var b strings.Builder
	b.WriteString("#EXTM3U\n#EXT-X-VERSION:3\n")
	for _, r := range p.Video {
		b.WriteString("#EXT-X-STREAM-INF:BANDWIDTH=")
		b.WriteString(strconv.FormatInt(int64(r.DeclaredBitrate), 10))
		if r.AverageBitrate > 0 {
			fmt.Fprintf(&b, ",AVERAGE-BANDWIDTH=%d", int64(r.AverageBitrate))
		}
		if r.Width > 0 {
			fmt.Fprintf(&b, ",RESOLUTION=%dx%d", r.Width, r.Height)
		}
		b.WriteString("\n")
		b.WriteString(r.PlaylistURL)
		b.WriteString("\n")
	}
	return b.String()
}

// EncodeMedia renders the VOD Media Playlist for one rendition.
func EncodeMedia(r *manifest.Rendition) string {
	return EncodeMediaWindow(r.Segments, 0, r.SegmentDuration, true)
}

// EncodeMediaWindow renders a media playlist for a window of segments
// whose first entry has media sequence number seq. With ended=false the
// playlist is live: no EXT-X-ENDLIST, and clients are expected to reload
// it (RFC 8216 §6.2.2).
func EncodeMediaWindow(segs []manifest.Segment, seq int, targetDur float64, ended bool) string {
	var b strings.Builder
	b.WriteString("#EXTM3U\n#EXT-X-VERSION:3\n")
	fmt.Fprintf(&b, "#EXT-X-TARGETDURATION:%d\n", int64(targetDur+0.999))
	fmt.Fprintf(&b, "#EXT-X-MEDIA-SEQUENCE:%d\n", seq)
	if ended {
		b.WriteString("#EXT-X-PLAYLIST-TYPE:VOD\n")
	}
	for _, s := range segs {
		fmt.Fprintf(&b, "#EXTINF:%.5f,\n", s.Duration)
		if s.Length > 0 {
			fmt.Fprintf(&b, "#EXT-X-BYTERANGE:%d@%d\n", s.Length, s.Offset)
		}
		b.WriteString(s.URL)
		b.WriteString("\n")
	}
	if ended {
		b.WriteString("#EXT-X-ENDLIST\n")
	}
	return b.String()
}

// Variant is one EXT-X-STREAM-INF entry of a parsed Master Playlist.
type Variant struct {
	// Bandwidth is the declared (peak) bitrate in bits/s.
	Bandwidth float64
	// AverageBandwidth is the optional average bitrate, 0 when absent.
	AverageBandwidth float64
	// Width and Height come from RESOLUTION (0 when absent).
	Width, Height int
	// URI is the media playlist URL.
	URI string
}

// ParseMaster parses a Master Playlist. Variants are returned in file
// order (services typically list them ascending by bandwidth, but the
// parser does not assume it).
func ParseMaster(text string) ([]Variant, error) {
	if !strings.HasPrefix(strings.TrimSpace(text), "#EXTM3U") {
		return nil, fmt.Errorf("hls: missing #EXTM3U header")
	}
	var out []Variant
	var pending *Variant
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			v := Variant{}
			attrs := parseAttrs(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:"))
			if bw, ok := attrs["BANDWIDTH"]; ok {
				f, err := strconv.ParseFloat(bw, 64)
				if err != nil {
					return nil, fmt.Errorf("hls: bad BANDWIDTH %q", bw)
				}
				v.Bandwidth = f
			} else {
				return nil, fmt.Errorf("hls: EXT-X-STREAM-INF without BANDWIDTH")
			}
			if ab, ok := attrs["AVERAGE-BANDWIDTH"]; ok {
				f, err := strconv.ParseFloat(ab, 64)
				if err != nil {
					return nil, fmt.Errorf("hls: bad AVERAGE-BANDWIDTH %q", ab)
				}
				v.AverageBandwidth = f
			}
			if res, ok := attrs["RESOLUTION"]; ok {
				if _, err := fmt.Sscanf(res, "%dx%d", &v.Width, &v.Height); err != nil {
					return nil, fmt.Errorf("hls: bad RESOLUTION %q", res)
				}
			}
			pending = &v
		case line == "" || strings.HasPrefix(line, "#"):
			// other tags ignored
		default:
			if pending != nil {
				pending.URI = line
				out = append(out, *pending)
				pending = nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hls: no variants in master playlist")
	}
	return out, nil
}

// MediaSegment is one entry of a parsed Media Playlist.
type MediaSegment struct {
	// URI is the segment URL.
	URI string
	// Duration is the EXTINF duration in seconds.
	Duration float64
	// Offset/Length give the EXT-X-BYTERANGE; Length is 0 when absent.
	Offset, Length int64
}

// Playlist is a fully parsed media playlist.
type Playlist struct {
	// Segments lists the window's segments in order.
	Segments []MediaSegment
	// MediaSequence is the sequence number of the first segment.
	MediaSequence int
	// TargetDuration is the declared maximum segment duration.
	TargetDuration float64
	// Ended reports EXT-X-ENDLIST (VOD or a finished live event).
	Ended bool
}

// ParseMedia parses a Media Playlist into its segment list.
func ParseMedia(text string) ([]MediaSegment, error) {
	pl, err := ParseMediaPlaylist(text)
	if err != nil {
		return nil, err
	}
	return pl.Segments, nil
}

// ParseMediaPlaylist parses a media playlist including its live-relevant
// headers (media sequence, target duration, endedness).
func ParseMediaPlaylist(text string) (*Playlist, error) {
	if !strings.HasPrefix(strings.TrimSpace(text), "#EXTM3U") {
		return nil, fmt.Errorf("hls: missing #EXTM3U header")
	}
	pl := &Playlist{}
	var out []MediaSegment
	var dur float64
	var haveDur bool
	var off, length int64
	var haveRange bool
	nextOffset := int64(0)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"))
			if err != nil {
				return nil, fmt.Errorf("hls: bad MEDIA-SEQUENCE %q", line)
			}
			pl.MediaSequence = n
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			f, err := strconv.ParseFloat(strings.TrimPrefix(line, "#EXT-X-TARGETDURATION:"), 64)
			if err != nil {
				return nil, fmt.Errorf("hls: bad TARGETDURATION %q", line)
			}
			pl.TargetDuration = f
		case line == "#EXT-X-ENDLIST":
			pl.Ended = true
		case strings.HasPrefix(line, "#EXTINF:"):
			val := strings.TrimPrefix(line, "#EXTINF:")
			if i := strings.IndexByte(val, ','); i >= 0 {
				val = val[:i]
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return nil, fmt.Errorf("hls: bad EXTINF %q", line)
			}
			dur, haveDur = f, true
		case strings.HasPrefix(line, "#EXT-X-BYTERANGE:"):
			val := strings.TrimPrefix(line, "#EXT-X-BYTERANGE:")
			var err error
			if i := strings.IndexByte(val, '@'); i >= 0 {
				length, err = strconv.ParseInt(val[:i], 10, 64)
				if err == nil {
					off, err = strconv.ParseInt(val[i+1:], 10, 64)
				}
			} else {
				length, err = strconv.ParseInt(val, 10, 64)
				off = nextOffset
			}
			if err != nil {
				return nil, fmt.Errorf("hls: bad BYTERANGE %q", line)
			}
			haveRange = true
		case line == "" || strings.HasPrefix(line, "#"):
			// other tags ignored
		default:
			if !haveDur {
				return nil, fmt.Errorf("hls: segment %q without EXTINF", line)
			}
			seg := MediaSegment{URI: line, Duration: dur}
			if haveRange {
				seg.Offset, seg.Length = off, length
				nextOffset = off + length
			}
			out = append(out, seg)
			haveDur, haveRange = false, false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	pl.Segments = out
	return pl, nil
}

// Decode reconstructs a protocol-neutral Presentation from a master
// playlist and the media playlist bodies keyed by their URI. Renditions
// are ordered ascending by declared bandwidth, re-deriving the ladder the
// way the traffic analyzer does.
func Decode(name, master string, mediaBodies map[string]string) (*manifest.Presentation, error) {
	vars, err := ParseMaster(master)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(vars, func(i, j int) bool { return vars[i].Bandwidth < vars[j].Bandwidth })
	p := &manifest.Presentation{Name: name, Protocol: manifest.HLS, Addressing: manifest.SeparateFiles}
	for id, v := range vars {
		body, ok := mediaBodies[v.URI]
		if !ok {
			return nil, fmt.Errorf("hls: missing media playlist %q", v.URI)
		}
		segs, err := ParseMedia(body)
		if err != nil {
			return nil, fmt.Errorf("hls: %s: %w", v.URI, err)
		}
		r := &manifest.Rendition{
			ID:              id,
			Type:            media.TypeVideo,
			DeclaredBitrate: v.Bandwidth,
			AverageBitrate:  v.AverageBandwidth,
			Width:           v.Width,
			Height:          v.Height,
			PlaylistURL:     v.URI,
		}
		start := 0.0
		for _, s := range segs {
			r.Segments = append(r.Segments, manifest.Segment{
				URL:      s.URI,
				Offset:   s.Offset,
				Length:   s.Length,
				Duration: s.Duration,
				Size:     s.Length, // unknown without a HEAD request unless ranged
				Start:    start,
			})
			start += s.Duration
			if s.Duration > r.SegmentDuration {
				r.SegmentDuration = s.Duration
			}
		}
		if start > p.Duration {
			p.Duration = start
		}
		p.Video = append(p.Video, r)
	}
	return p, nil
}

// parseAttrs splits an attribute list "A=1,B="x,y",C=2" respecting quotes.
func parseAttrs(s string) map[string]string {
	out := map[string]string{}
	var key strings.Builder
	var val strings.Builder
	inVal, inQuote := false, false
	flush := func() {
		if key.Len() > 0 {
			out[strings.TrimSpace(key.String())] = strings.Trim(val.String(), `"`)
		}
		key.Reset()
		val.Reset()
		inVal = false
	}
	for _, c := range s {
		switch {
		case c == '"':
			inQuote = !inQuote
			val.WriteRune(c)
		case c == '=' && !inVal:
			inVal = true
		case c == ',' && !inQuote:
			flush()
		case inVal:
			val.WriteRune(c)
		default:
			key.WriteRune(c)
		}
	}
	flush()
	return out
}

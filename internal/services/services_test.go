package services

import (
	"math"
	"testing"

	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/qoe"
)

// TestTable1Constants pins the service definitions to the paper's
// published Table 1 parameters.
func TestTable1Constants(t *testing.T) {
	type row struct {
		segDur     float64
		sepAudio   bool
		maxTCP     int
		persistent bool
		startupSec float64
		startupMbs float64
		pause      float64
		resume     float64
	}
	want := map[string]row{
		"H1": {4, false, 1, true, 8, 0.63, 95, 85},
		"H2": {2, false, 1, false, 8, 1.33, 90, 84},
		"H3": {9, false, 1, false, 9, 1.05, 40, 30},
		"H4": {9, false, 1, true, 9, 0.47, 155, 135},
		"H5": {6, false, 1, false, 12, 1.85, 30, 20},
		"H6": {10, false, 1, true, 10, 0.88, 80, 70},
		"D1": {5, true, 6, true, 15, 0.41, 182, 178},
		"D2": {5, true, 2, true, 5, 0.30, 30, 25},
		"D3": {2, true, 3, true, 8, 0.40, 120, 90},
		"D4": {6, true, 3, true, 6, 0.67, 34, 15},
		"S1": {2, true, 2, true, 16, 1.35, 180, 175},
		"S2": {3, true, 2, true, 6, 0.76, 30, 4},
	}
	for _, svc := range All() {
		w, ok := want[svc.Name]
		if !ok {
			t.Fatalf("unexpected service %q", svc.Name)
		}
		if svc.Media.SegmentDuration != w.segDur {
			t.Errorf("%s segment duration %v, want %v", svc.Name, svc.Media.SegmentDuration, w.segDur)
		}
		if svc.Media.SeparateAudio != w.sepAudio {
			t.Errorf("%s separate audio %v", svc.Name, svc.Media.SeparateAudio)
		}
		if svc.Player.MaxConnections != w.maxTCP {
			t.Errorf("%s max TCP %d, want %d", svc.Name, svc.Player.MaxConnections, w.maxTCP)
		}
		if svc.Player.Persistent != w.persistent {
			t.Errorf("%s persistent %v", svc.Name, svc.Player.Persistent)
		}
		if svc.Player.StartupBufferSec != w.startupSec {
			t.Errorf("%s startup buffer %v, want %v", svc.Name, svc.Player.StartupBufferSec, w.startupSec)
		}
		startup := svc.Media.TargetBitrates[svc.Player.StartupTrack]
		if svc.Media.DeclaredPolicy == media.DeclarePeak && svc.Media.Encoding == media.VBR {
			startup *= svc.Media.VBRSpread
		}
		if math.Abs(startup-w.startupMbs*1e6) > 1e4 {
			t.Errorf("%s startup bitrate %.2f Mbps, want %.2f", svc.Name, startup/1e6, w.startupMbs)
		}
		if svc.Player.PauseThresholdSec != w.pause || svc.Player.ResumeThresholdSec != w.resume {
			t.Errorf("%s thresholds %v/%v, want %v/%v", svc.Name,
				svc.Player.PauseThresholdSec, svc.Player.ResumeThresholdSec, w.pause, w.resume)
		}
	}
}

// TestLadderGuidelines checks the §3.1 server-side observations: tops
// between 2 and 5.5 Mbit/s, H2/H5/S1 bottoms above 500 kbit/s, all other
// bottoms at or below it, adjacent spacing within Apple's 1.5–2× guide.
func TestLadderGuidelines(t *testing.T) {
	highBottom := map[string]bool{"H2": true, "H5": true, "S1": true}
	for _, svc := range All() {
		org, err := svc.Origin()
		if err != nil {
			t.Fatal(err)
		}
		var declared []float64
		for _, r := range org.Pres.Video {
			declared = append(declared, r.DeclaredBitrate)
		}
		top := declared[len(declared)-1]
		if top < 2e6 || top > 5.5e6 {
			t.Errorf("%s top track %.2f Mbps outside 2–5.5", svc.Name, top/1e6)
		}
		if highBottom[svc.Name] != (declared[0] > 500e3) {
			t.Errorf("%s bottom track %.2f Mbps, highBottom=%v", svc.Name, declared[0]/1e6, highBottom[svc.Name])
		}
		for i := 1; i < len(declared); i++ {
			ratio := declared[i] / declared[i-1]
			if ratio < 1.3 || ratio > 2.2 {
				t.Errorf("%s rung %d spacing %.2f× outside guideline", svc.Name, i, ratio)
			}
		}
	}
}

// TestThreeCBRServices: §3.1 "we find that 3 services use CBR".
func TestThreeCBRServices(t *testing.T) {
	n := 0
	for _, svc := range All() {
		if svc.Media.Encoding == media.CBR {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("%d CBR services, want 3", n)
	}
}

// TestProtocolSplit: 6 HLS, 4 DASH, 2 SmoothStreaming.
func TestProtocolSplit(t *testing.T) {
	counts := map[manifest.Protocol]int{}
	for _, svc := range All() {
		counts[svc.Build.Protocol]++
	}
	if counts[manifest.HLS] != 6 || counts[manifest.DASH] != 4 || counts[manifest.Smooth] != 2 {
		t.Fatalf("protocol split %v", counts)
	}
}

// TestHLSNoSeparateAudio: §3.1 "all studied services that use HLS do not
// have separate audio tracks, while all services that use DASH or
// SmoothStreaming encode separate audio tracks".
func TestHLSNoSeparateAudio(t *testing.T) {
	for _, svc := range All() {
		wantAudio := svc.Build.Protocol != manifest.HLS
		if svc.Media.SeparateAudio != wantAudio {
			t.Errorf("%s separate audio %v", svc.Name, svc.Media.SeparateAudio)
		}
	}
}

// TestDeterministicRuns: the same service over the same profile produces
// byte-identical QoE.
func TestDeterministicRuns(t *testing.T) {
	p := netem.Cellular(4)
	for _, name := range []string{"H4", "D1", "D3", "S2"} {
		svc := ByName(name)
		a, err := svc.Run(p, 300, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := svc.Run(p, 300, nil)
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := qoe.FromResult(a), qoe.FromResult(b)
		if ra.AvgBitrate != rb.AvgBitrate || ra.StallSec != rb.StallSec ||
			ra.DataUsageBytes != rb.DataUsageBytes || ra.Switches != rb.Switches {
			t.Errorf("%s runs diverged: %+v vs %+v", name, ra, rb)
		}
	}
}

// TestIssuesDeclared: every service that Table 2 names carries its issue
// annotations, and clean services carry none that Table 2 omits.
func TestIssuesDeclared(t *testing.T) {
	if len(ByName("D3").Issues) != 0 {
		t.Errorf("D3 should be issue-free in Table 2, has %v", ByName("D3").Issues)
	}
	for _, name := range []string{"H1", "H2", "H3", "H4", "H5", "H6", "D1", "D2", "D4", "S1", "S2"} {
		if len(ByName(name).Issues) == 0 {
			t.Errorf("%s should declare at least one Table 2 issue", name)
		}
	}
}

// TestShapesAcrossTraceSeeds reruns the headline behavioural contrasts on
// three alternative trace draws: the reproduced shapes must not be
// artefacts of the canonical seed.
func TestShapesAcrossTraceSeeds(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ps := netem.CellularSetSeed(seed)

		// H5's high bottom track stalls on the lowest profile; D2's low
		// bottom track does not (§3.1).
		h5, err := ByName("H5").Run(ps[0], 600, nil)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := ByName("D2").Run(ps[0], 600, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h5.TotalStall() < 5 {
			t.Errorf("seed %d: H5 stalled only %.1f s on the lowest profile", seed, h5.TotalStall())
		}
		if d2.TotalStall() > 5 {
			t.Errorf("seed %d: D2 stalled %.1f s on the lowest profile", seed, d2.TotalStall())
		}

		// S2's 4 s resume threshold stalls more than a 25 s threshold
		// (§3.3.2, Figure 7) — summed over three mid profiles.
		var low, high float64
		for pi := 2; pi <= 4; pi++ {
			s2 := ByName("S2")
			a, err := s2.Run(ps[pi], 600, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s2.Run(ps[pi], 600, func(c *player.Config) { c.ResumeThresholdSec = 25 })
			if err != nil {
				t.Fatal(err)
			}
			low += a.TotalStall()
			high += b.TotalStall()
		}
		if low <= high {
			t.Errorf("seed %d: resume=4s stalled %.1f s vs resume=25s %.1f s", seed, low, high)
		}
	}
}

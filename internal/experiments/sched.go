package experiments

import (
	schedpkg "repro/internal/sched"
)

// The single process-wide concurrency bound for experiment work lives
// in internal/sched (it is shared with the fleet subsystem; see that
// package's doc comment for the acquire/try-acquire contract that keeps
// nested fan-out deadlock-free). Before it existed the engine ran two
// independent worker pools — RunAll started GOMAXPROCS experiment
// workers and every sweep inside an experiment started GOMAXPROCS more
// — so nested fan-out could put GOMAXPROCS² goroutines on GOMAXPROCS
// cores. Now both levels (and fleet runs in the same process) draw from
// one semaphore:
//
//   - RunAll workers block in Acquire before running an experiment and
//     hold the slot for its duration (sweeps inside it run under that
//     slot).
//   - sweep helper goroutines are spawned only for slots obtained with
//     the non-blocking TryAcquire, and the sweeping caller always works
//     inline under the slot it already holds.

// sched is this package's reference to the process-wide scheduler.
// Tests swap it to control parallelism independently of the machine's
// core count.
var sched = schedpkg.Global

// newScheduler builds a private scheduler (test seam).
func newScheduler(capacity int) *schedpkg.Scheduler { return schedpkg.New(capacity) }

// Command vodlint runs the repository's contract analyzers over the
// module: the determinism suite (simclock, seededrand, maprange,
// floateq, bpsunits) and the dataflow suite (stepalias, hotalloc,
// foldorder, goctx).
//
// Standalone mode loads and type-checks every package of the module
// rooted at the named directory (default ".") without the go tool:
//
//	vodlint            # lint the module at .
//	vodlint -only simclock,maprange /path/to/module
//	vodlint -json .    # findings as a JSON array
//	vodlint -unused-allow .  # also report stale //vodlint:allow directives
//
// It also speaks the go vet vettool protocol, so the same binary plugs
// into the build cache-aware driver:
//
//	go build -o bin/vodlint ./cmd/vodlint
//	go vet -vettool=$PWD/bin/vodlint ./...
//
// In that mode the go command hands the tool a JSON config per package
// (files, import map, export data) and the tool type-checks against gc
// export data instead of source. The -json and -unused-allow flags are
// standalone-only: go vet owns the output format, and the stale-
// directive audit needs the whole module in one process to know which
// suppressions fired.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

var all = analyzers.All()

func main() {
	var (
		versionFlag = flag.String("V", "", "print version (go vet toolID handshake; use -V=full)")
		only        = flag.String("only", "", "comma-separated subset of analyzers to run")
		list        = flag.Bool("list", false, "list analyzers and exit")
		flagsFlag   = flag.Bool("flags", false, "print flag descriptions in JSON (go vet handshake)")
		jsonOut     = flag.Bool("json", false, "emit findings as a JSON array (standalone mode)")
		unusedAllow = flag.Bool("unused-allow", false, "also report stale //vodlint:allow directives (standalone mode, full suite)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vodlint [-only a,b] [-json] [-unused-allow] [module-dir]\n   or: go vet -vettool=$(command -v vodlint) ./...\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		os.Exit(2)
	}
	if *unusedAllow && *only != "" {
		fmt.Fprintln(os.Stderr, "vodlint: -unused-allow needs the full suite; drop -only (a directive is only provably stale against every analyzer)")
		os.Exit(2)
	}

	// go vet invokes the tool with a single *.cfg argument.
	if args := flag.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], selected))
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		dir = args[0]
	}
	os.Exit(standalone(dir, selected, *jsonOut, *unusedAllow))
}

// selectAnalyzers resolves the -only subset.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonDiagnostic is the -json wire form of one finding: flat fields,
// stable names, module-relative path — what the CI problem matcher
// and any downstream tooling key on.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone lints a whole module via the source loader.
func standalone(dir string, analyzers []*lint.Analyzer, jsonOut, unusedAllow bool) int {
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		return 2
	}
	var audit *lint.Audit
	if unusedAllow {
		audit = lint.NewAudit(analyzers)
	}
	var found []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunWithAudit(pkg, analyzers, audit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodlint:", err)
			return 2
		}
		found = append(found, diags...)
	}
	if audit != nil {
		found = append(found, audit.Stale()...)
		lint.SortDiagnostics(found)
	}
	for i, d := range found {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			found[i].Pos.Filename = rel
		}
	}
	if jsonOut {
		out := make([]jsonDiagnostic, 0, len(found))
		for _, d := range found {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vodlint:", err)
			return 2
		}
		fmt.Println(string(data))
	} else {
		for _, d := range found {
			fmt.Println(d)
		}
	}
	if len(found) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// printFlags implements the -flags handshake: the go command queries the
// vettool for its flag set as a JSON array so it can accept those flags
// on its own command line and forward them. Only -only is advertised:
// -json and -unused-allow are standalone concerns the vet driver must
// not forward per package.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "only", Bool: false, Usage: "comma-separated subset of analyzers to run"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodlint:", err)
		os.Exit(2)
	}
	fmt.Println(string(data))
}

// printVersion implements the -V=full handshake: the go command hashes
// this line into its build cache key, so it embeds a content hash of
// the executable — rebuilding vodlint invalidates cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("vodlint version v1-%s\n", id)
}

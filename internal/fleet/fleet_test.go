package fleet

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"testing"

	schedpkg "repro/internal/sched"
)

// withSched swaps the package scheduler so a test controls parallelism
// independently of the machine (the CI box may have one core; the
// determinism contract must be exercised with real concurrency anyway).
func withSched(t *testing.T, capacity int) {
	t.Helper()
	old := sched
	sched = schedpkg.New(capacity)
	t.Cleanup(func() { sched = old })
}

func TestWorkloadDeterminism(t *testing.T) {
	cfg, err := Config{Seed: 3, Sessions: 500}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	a, b := Workload(cfg), Workload(cfg)
	if len(a) != 500 {
		t.Fatalf("got %d clients", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("client %d differs between identical draws: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Workload is the concatenation of per-cell streams; arrivals are
	// sorted within each cell, and each cell's draw must be computable
	// standalone (the work-stealing contract: a stolen cell redraws its
	// members identically anywhere).
	nCells := cellCount(cfg)
	off := 0
	for k := 0; k < nCells; k++ {
		cell := CellClients(cfg, k)
		if len(cell) != cellSize(cfg, k) {
			t.Fatalf("cell %d drew %d members, sized %d", k, len(cell), cellSize(cfg, k))
		}
		prev := 0.0
		for i, c := range cell {
			if a[off+i] != c {
				t.Fatalf("cell %d member %d: standalone draw %+v != workload %+v", k, i, c, a[off+i])
			}
			if c.Arrival < prev {
				t.Fatalf("cell %d arrivals not sorted at member %d", k, i)
			}
			prev = c.Arrival
			if c.Arrival >= cfg.ArrivalWindowSec {
				t.Fatalf("cell %d member %d arrival %.1f outside window", k, i, c.Arrival)
			}
			if c.Watch < 5 || c.Watch > cfg.WatchSec {
				t.Fatalf("cell %d member %d watch %.1f outside [5, %.0f]", k, i, c.Watch, cfg.WatchSec)
			}
			if c.Service < 0 || c.Service >= len(cfg.Services) || c.Trace < 1 || c.Trace > 14 {
				t.Fatalf("cell %d member %d out-of-range draw: %+v", k, i, c)
			}
			if !c.Full {
				t.Fatalf("cell %d member %d drew background at FidelityFull=1", k, i)
			}
		}
		off += len(cell)
	}
	if off != len(a) {
		t.Fatalf("cells cover %d of %d clients", off, len(a))
	}
	cfg2 := cfg
	cfg2.Seed = 4
	c := Workload(cfg2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestHotspotLayout pins the flash-crowd partitioning: cell 0 carries
// round(Hotspot·Sessions) members, the remainder spreads over balanced
// cells, sizes always sum to the population, and Hotspot = 0 reproduces
// the legacy layout cell for cell.
func TestHotspotLayout(t *testing.T) {
	for _, tc := range []struct {
		sessions int
		hotspot  float64
		hot      int
	}{
		{1000, 0.8, 800},
		{1000, 0.5, 500},
		{25, 0.95, 24},
		{7, 0.99, 7}, // clamped to 0.95 → round(6.65)
		{100, 1.0, 95},
	} {
		cfg, err := Config{Seed: 1, Sessions: tc.sessions, Hotspot: tc.hotspot}.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		if got := cellSize(cfg, 0); got != tc.hot {
			t.Errorf("Sessions=%d Hotspot=%v: cell 0 holds %d, want %d", tc.sessions, tc.hotspot, got, tc.hot)
		}
		total := 0
		for k := 0; k < cellCount(cfg); k++ {
			sz := cellSize(cfg, k)
			if k > 0 && sz > cfg.ClientsPerCell {
				t.Errorf("Sessions=%d Hotspot=%v: balanced cell %d holds %d > ClientsPerCell %d",
					tc.sessions, tc.hotspot, k, sz, cfg.ClientsPerCell)
			}
			total += sz
		}
		if total != tc.sessions {
			t.Errorf("Sessions=%d Hotspot=%v: cell sizes sum to %d", tc.sessions, tc.hotspot, total)
		}
		if len(Workload(cfg)) != tc.sessions {
			t.Errorf("Sessions=%d Hotspot=%v: workload size mismatch", tc.sessions, tc.hotspot)
		}
	}
	// Hotspot == 0 must leave the legacy layout untouched.
	legacy, err := Config{Seed: 2, Sessions: 100}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n := cellCount(legacy); n != 5 {
		t.Fatalf("legacy cell count %d, want 5", n)
	}
	for k := 0; k < 5; k++ {
		if sz := cellSize(legacy, k); sz != 20 {
			t.Fatalf("legacy cell %d size %d, want 20", k, sz)
		}
	}
}

// TestWorkloadFidelityMix checks the fidelity draw tracks the configured
// probability and stays inside each cell's private stream.
func TestWorkloadFidelityMix(t *testing.T) {
	cfg, err := Config{Seed: 9, Sessions: 2000, FidelityFull: 0.25}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, c := range Workload(cfg) {
		if c.Full {
			full++
		}
	}
	frac := float64(full) / float64(cfg.Sessions)
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("full-fidelity fraction %.3f far from configured 0.25", frac)
	}
	cfg.FidelityFull = -1 // re-normalizes to 0: all background
	ncfg, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range Workload(ncfg) {
		if c.Full {
			t.Fatalf("client %d drew full fidelity at FidelityFull=0", i)
		}
	}
}

// fleetBytes runs a config and returns the report JSON.
func fleetBytes(t *testing.T, cfg Config, opts RunOptions) []byte {
	t.Helper()
	rep, err := RunWithOptions(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// stealCfg spans several shards (cellsPerShard=16) with tiny cells so
// the steal-schedule tests actually exercise cross-shard folding.
var stealCfg = Config{
	Seed: 5, Sessions: 160, ArrivalWindowSec: 120, WatchSec: 30,
	ClientsPerCell: 2, FidelityFull: 0.6, FocusSessions: 4,
	Services: []string{"H1", "D2", "S1"},
}

// TestRunWorkersDeterminism is the regression test the fleet's whole
// design serves: the JSON report must be byte-identical between a
// serial run and a concurrent run on the same seed.
func TestRunWorkersDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	withSched(t, 8)
	serial := fleetBytes(t, stealCfg, RunOptions{Workers: 1})
	parallel := fleetBytes(t, stealCfg, RunOptions{Workers: 8})
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("report bytes differ between workers=1 (%d B) and workers=8 (%d B)", len(serial), len(parallel))
	}
}

// TestStealScheduleDeterminism pins the two extreme schedules: all
// shards seeded into one worker's deque (steal-heavy — every other
// worker must steal to get work) versus stealing disabled (static
// partitions). The report bytes must be identical to each other and to
// the default schedule. Run under -race this also exercises the steal
// layer's synchronization against concurrent shard folds.
func TestStealScheduleDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	withSched(t, 8)
	base := fleetBytes(t, stealCfg, RunOptions{Workers: 4})
	hog := fleetBytes(t, stealCfg, RunOptions{Workers: 4, Steal: schedpkg.StealOptions{Hog: true}})
	noSteal := fleetBytes(t, stealCfg, RunOptions{Workers: 4, Steal: schedpkg.StealOptions{DisableSteal: true}})
	if !bytes.Equal(base, hog) {
		t.Fatalf("steal-heavy schedule changed the report bytes (%d B vs %d B)", len(base), len(hog))
	}
	if !bytes.Equal(base, noSteal) {
		t.Fatalf("steal-free schedule changed the report bytes (%d B vs %d B)", len(base), len(noSteal))
	}

	// The hotspot layout piles most of the population onto cell 0 — the
	// flash-crowd regime where the simnet core runs its virtual-time
	// engine. The same byte-identity must hold across workers and steal
	// schedules there too: one crowded cell is still a pure function of
	// (config, cell index), just a slower one.
	hotCfg := Config{
		Seed: 7, Sessions: 400, ArrivalWindowSec: 60, WatchSec: 30,
		ClientsPerCell: 4, FidelityFull: 0.3, Hotspot: 0.6,
		Services: []string{"H1", "D2", "S1"},
	}
	hbase := fleetBytes(t, hotCfg, RunOptions{Workers: 1})
	hhog := fleetBytes(t, hotCfg, RunOptions{Workers: 4, Steal: schedpkg.StealOptions{Hog: true}})
	hnoSteal := fleetBytes(t, hotCfg, RunOptions{Workers: 4, Steal: schedpkg.StealOptions{DisableSteal: true}})
	if !bytes.Equal(hbase, hhog) {
		t.Fatalf("hotspot: steal-heavy schedule changed the report bytes (%d B vs %d B)", len(hbase), len(hhog))
	}
	if !bytes.Equal(hbase, hnoSteal) {
		t.Fatalf("hotspot: steal-free schedule changed the report bytes (%d B vs %d B)", len(hbase), len(hnoSteal))
	}
}

// TestSharedEdgeCoupling checks the population-level economics on one
// cell: with the edge budget fixed, raising concurrency must lower the
// per-client achieved (delivered) bitrate, and utilization must never
// exceed 1 (conservation as seen through the report). Seed 1 hands the
// two-client case the fastest cellular traces (14 and 13), so access
// links don't bind and the comparison isolates edge contention.
func TestSharedEdgeCoupling(t *testing.T) {
	perClientBps := func(sessions int) float64 {
		cfg := Config{
			Seed:             1,
			Sessions:         sessions,
			ArrivalWindowSec: 5, // near-simultaneous joins: sustained contention
			WatchSec:         60,
			AbandonProb:      -1, // everyone watches the full duration
			ClientsPerCell:   sessions,
			EdgeMbps:         10,
			Services:         []string{"H1"},
		}
		rep, err := Run(context.Background(), cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cells != 1 {
			t.Fatalf("expected one cell, got %d", rep.Cells)
		}
		if rep.EdgeUtilization.Over != 0 || rep.EdgeUtilization.Mean > 1+1e-9 {
			t.Fatalf("%d sessions: edge utilization exceeds 1 (mean %.4f, over %d)",
				sessions, rep.EdgeUtilization.Mean, rep.EdgeUtilization.Over)
		}
		return rep.TotalBytes * 8 / float64(sessions) / cfg.WatchSec
	}
	light := perClientBps(2)
	heavy := perClientBps(16)
	if light <= 0 {
		t.Fatalf("degenerate baseline throughput %.0f bit/s", light)
	}
	// 16 clients on 10 Mbit/s cap out at 0.625 Mbit/s each; 2 clients on
	// fast access links should each achieve several times that.
	if heavy >= light*0.7 {
		t.Fatalf("per-client throughput did not degrade under contention: 2 clients %.0f bit/s, 16 clients %.0f bit/s", light, heavy)
	}
}

// TestFidelityDifferential pins the background tier against full
// sessions: across seeds and contention levels, the coarse model's
// population aggregates must track the full simulation within stated
// tolerances — close enough that a mixed-fidelity fleet reports the
// same macro story, while costing a fraction of the work.
func TestFidelityDifferential(t *testing.T) {
	type level struct {
		edgeMbps float64
		// bitrate ratio bounds (background mean / full mean) and stall
		// ratio absolute delta bound, averaged over the seeds.
		rLo, rHi, stallTol float64
	}
	// Tolerances are empirical for the calibrated tier (bgSafetyFactor):
	// the background model shares the ladder and buffer gates with the
	// full player but has no pipeline, no replacement and a private EWMA
	// estimator (the full player reads network-wide delivery), so it
	// stays somewhat conservative under load even after calibration.
	levels := []level{
		{edgeMbps: 40, rLo: 0.70, rHi: 1.30, stallTol: 0.08},
		{edgeMbps: 8, rLo: 0.50, rHi: 1.40, stallTol: 0.12},
		{edgeMbps: 3, rLo: 0.45, rHi: 1.50, stallTol: 0.12},
	}
	for _, lv := range levels {
		var fullBr, bgBr, fullStall, bgStall float64
		seeds := []int64{1, 2, 3, 4, 5}
		for _, seed := range seeds {
			base := Config{
				Seed: seed, Sessions: 96, ArrivalWindowSec: 60, WatchSec: 60,
				ClientsPerCell: 8, EdgeMbps: lv.edgeMbps, Services: []string{"H1"},
			}
			full := base
			bg := base
			bg.FidelityFull = -1 // all background
			fr, err := Run(context.Background(), full, 1)
			if err != nil {
				t.Fatal(err)
			}
			br, err := Run(context.Background(), bg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if fr.BackgroundSessions != 0 || br.FullSessions != 0 {
				t.Fatalf("tier accounting wrong: full run bg=%d, bg run full=%d", fr.BackgroundSessions, br.FullSessions)
			}
			fullBr += fr.Services[0].BitrateMbps.Mean
			bgBr += br.Services[0].BitrateMbps.Mean
			fullStall += fr.Services[0].StallRatio.Mean
			bgStall += br.Services[0].StallRatio.Mean
		}
		n := float64(len(seeds))
		fullBr, bgBr, fullStall, bgStall = fullBr/n, bgBr/n, fullStall/n, bgStall/n
		if fullBr <= 0 {
			t.Fatalf("edge %.0f: degenerate full-fidelity bitrate %.3f", lv.edgeMbps, fullBr)
		}
		if ratio := bgBr / fullBr; ratio < lv.rLo || ratio > lv.rHi {
			t.Errorf("edge %.0f Mbit/s: background bitrate mean %.3f vs full %.3f (ratio %.2f outside [%.2f, %.2f])",
				lv.edgeMbps, bgBr, fullBr, ratio, lv.rLo, lv.rHi)
		}
		if d := math.Abs(bgStall - fullStall); d > lv.stallTol {
			t.Errorf("edge %.0f Mbit/s: stall ratio delta %.3f (background %.3f, full %.3f) exceeds %.3f",
				lv.edgeMbps, d, bgStall, fullStall, lv.stallTol)
		}
	}
}

// TestFocusInvariance: the focus sample must be a pure annex — at full
// fidelity, requesting focus sessions changes the focus section and
// nothing else, byte for byte.
func TestFocusInvariance(t *testing.T) {
	cfg := Config{Seed: 7, Sessions: 96, ArrivalWindowSec: 60, WatchSec: 40, ClientsPerCell: 8, Services: []string{"H1", "D2"}}
	plain, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgF := cfg
	cfgF.FocusSessions = 8
	focused, err := Run(context.Background(), cfgF, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Focus) != 0 {
		t.Fatalf("focus section present without FocusSessions: %d entries", len(plain.Focus))
	}
	if len(focused.Focus) == 0 || len(focused.Focus) > 8 {
		t.Fatalf("got %d focus entries, want 1..8", len(focused.Focus))
	}
	for i, f := range focused.Focus {
		if i > 0 {
			p := focused.Focus[i-1]
			if f.Cell < p.Cell || (f.Cell == p.Cell && f.Member <= p.Member) {
				t.Fatalf("focus entries out of order at %d: (%d,%d) after (%d,%d)", i, f.Cell, f.Member, p.Cell, p.Member)
			}
		}
		if f.Cell < 0 || f.Cell >= focused.Cells || f.Member < 0 || f.Member >= cellSize(cfgF, f.Cell) {
			t.Fatalf("focus entry %d has out-of-range coordinates: %+v", i, f)
		}
		if f.Service == "" || f.WatchSec <= 0 || len(f.Displayed) == 0 {
			t.Fatalf("focus entry %d incomplete: %+v", i, f)
		}
	}
	// Strip the annex; everything else must match byte for byte (the
	// config echo differs only in the FocusSessions field, masked too).
	focused.Focus = nil
	focused.Config.FocusSessions = 0
	a, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := focused.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("focus sampling perturbed the population sections")
	}
}

// TestReportAccounting checks the streaming aggregation preserves
// session counts exactly: nothing dropped, nothing double-counted —
// including the fidelity-tier split.
func TestReportAccounting(t *testing.T) {
	cfg := Config{Seed: 2, Sessions: 90, ArrivalWindowSec: 90, WatchSec: 30, ClientsPerCell: 12, FidelityFull: 0.5, Services: []string{"H1", "H4"}}
	rep, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var svcTotal, started int64
	for _, s := range rep.Services {
		svcTotal += s.Sessions
		started += s.Started
		if s.Started > s.Sessions {
			t.Fatalf("%s: started %d > sessions %d", s.Service, s.Started, s.Sessions)
		}
		if s.BitrateMbps.Count != s.Started {
			t.Fatalf("%s: bitrate samples %d != started %d", s.Service, s.BitrateMbps.Count, s.Started)
		}
	}
	if svcTotal != int64(cfg.Sessions) || rep.Sessions != int64(cfg.Sessions) {
		t.Fatalf("session accounting: per-service sum %d, report %d, want %d", svcTotal, rep.Sessions, cfg.Sessions)
	}
	if started != rep.Started {
		t.Fatalf("started accounting: per-service sum %d, report %d", started, rep.Started)
	}
	if rep.FullSessions+rep.BackgroundSessions != int64(cfg.Sessions) {
		t.Fatalf("tier accounting: full %d + background %d != %d", rep.FullSessions, rep.BackgroundSessions, cfg.Sessions)
	}
	if rep.FullSessions == 0 || rep.BackgroundSessions == 0 {
		t.Fatalf("expected a mixed-tier population at FidelityFull=0.5, got full=%d background=%d", rep.FullSessions, rep.BackgroundSessions)
	}
	if rep.TotalBytes <= 0 {
		t.Fatal("no bytes delivered")
	}
	if rep.Schema != 2 {
		t.Fatalf("report schema %d, want 2", rep.Schema)
	}
}

func TestRunCachedMemoizes(t *testing.T) {
	cfg := Config{Seed: 11, Sessions: 24, ArrivalWindowSec: 30, WatchSec: 20, ClientsPerCell: 12, Services: []string{"H1"}}
	a, err := RunCached(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs did not hit the memo")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{Sessions: 0}).Normalized(); err == nil {
		t.Fatal("accepted zero sessions")
	}
	if _, err := (Config{Sessions: 10, Services: []string{"NOPE"}}).Normalized(); err == nil {
		t.Fatal("accepted unknown service")
	}
	n, err := (Config{Sessions: 10}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Services) != 12 || n.AbandonProb != 0.35 {
		t.Fatalf("defaults not applied: %+v", n)
	}
	if n.FidelityFull != 1 || n.FocusSessions != 0 {
		t.Fatalf("fidelity defaults not applied: %+v", n)
	}
	n2, err := (Config{Sessions: 10, AbandonProb: -1, FidelityFull: -1, FocusSessions: -3}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n2.AbandonProb != 0 {
		t.Fatalf("negative AbandonProb should normalize to 0, got %v", n2.AbandonProb)
	}
	if n2.FidelityFull != 0 || n2.FocusSessions != 0 {
		t.Fatalf("negative fidelity fields should clamp to 0: %+v", n2)
	}
	n3, err := (Config{Sessions: 10, FidelityFull: 3}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n3.FidelityFull != 1 {
		t.Fatalf("FidelityFull should clamp to 1, got %v", n3.FidelityFull)
	}
}

package player

import (
	"math"
	"testing"

	"repro/internal/media"
)

func seg(index int, track int, start, dur float64) BufferedSegment {
	return BufferedSegment{
		Type: media.TypeVideo, Track: track, Index: index,
		Start: start, End: start + dur, Bytes: 1000,
	}
}

func TestBufferPlayableEnd(t *testing.T) {
	var b Buffer
	if got := b.PlayableEnd(5); got != 5 {
		t.Fatalf("empty buffer end %v", got)
	}
	b.Insert(seg(0, 0, 0, 4))
	b.Insert(seg(1, 0, 4, 4))
	if got := b.PlayableEnd(0); got != 8 {
		t.Fatalf("end %v, want 8", got)
	}
	if got := b.OccupancySec(3); got != 5 {
		t.Fatalf("occupancy %v, want 5", got)
	}
	// A gap stops contiguity.
	b.Insert(seg(3, 0, 12, 4))
	if got := b.PlayableEnd(0); got != 8 {
		t.Fatalf("end across gap %v, want 8", got)
	}
	// Filling the gap extends the range.
	b.Insert(seg(2, 0, 8, 4))
	if got := b.PlayableEnd(0); got != 16 {
		t.Fatalf("end after fill %v, want 16", got)
	}
}

func TestBufferInsertReplaces(t *testing.T) {
	var b Buffer
	b.Insert(seg(0, 1, 0, 4))
	old, replaced := b.Insert(seg(0, 3, 0, 4))
	if !replaced || old.Track != 1 {
		t.Fatalf("replace: %+v %v", old, replaced)
	}
	if b.Len() != 1 {
		t.Fatalf("len %d after replace", b.Len())
	}
	got, ok := b.SegmentAt(1)
	if !ok || got.Track != 3 {
		t.Fatalf("SegmentAt: %+v %v", got, ok)
	}
}

func TestBufferDropFromIndex(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Insert(seg(i, 0, float64(i)*4, 4))
	}
	dropped := b.DropFromIndex(2)
	if len(dropped) != 3 || b.Len() != 2 {
		t.Fatalf("dropped %d, kept %d", len(dropped), b.Len())
	}
	if b.HasIndex(2) || !b.HasIndex(1) {
		t.Fatal("wrong segments dropped")
	}
	if got := b.PlayableEnd(0); got != 8 {
		t.Fatalf("end after drop %v", got)
	}
}

func TestBufferGC(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Insert(seg(i, 0, float64(i)*4, 4))
	}
	if n := b.GC(9); n != 2 {
		t.Fatalf("GC dropped %d, want 2", n)
	}
	if b.Len() != 3 || b.HasIndex(1) {
		t.Fatal("GC kept the wrong segments")
	}
	if got := b.UnplayedCount(9); got != 3 {
		t.Fatalf("unplayed %d", got)
	}
}

func TestBufferSegmentAtBoundary(t *testing.T) {
	var b Buffer
	b.Insert(seg(0, 0, 0, 4))
	b.Insert(seg(1, 1, 4, 4))
	got, ok := b.SegmentAt(4 + 1e-12)
	if !ok || got.Index != 1 {
		t.Fatalf("boundary lookup: %+v %v", got, ok)
	}
	if _, ok := b.SegmentAt(8.5); ok {
		t.Fatal("lookup past end should fail")
	}
	if math.IsNaN(b.PlayableEnd(0)) {
		t.Fatal("NaN")
	}
}

package bpsunits

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestBpsunits(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		want unitClass
	}{
		{"estimateBps", unitBits},
		{"Kbps", unitBits},
		{"declared_mbps", unitBits},
		{"DeclaredBitrate", unitBits},
		{"TotalBytes", unitBytes},
		{"bodyBytes", unitBytes},
		{"byteCount", unitBytes},
		{"bytesToBits", unitNone}, // converters mention both families
		{"BytesPerSecFromBps", unitNone},
		{"tokens", unitNone},
		{"durationSec", unitNone},
		{"bitmap", unitNone}, // "bitmap" must not token-split into bit+map
	}
	for _, c := range cases {
		if got := classify(c.name); got != c.want {
			t.Errorf("classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

package cdn

import (
	"math/rand"
	"testing"
)

func testCfg() CacheConfig {
	return CacheConfig{EdgeBytes: 1 << 20, TTLSec: 300}.Normalized()
}

// TestBalancerLocality: with equal loads every client routes to its
// home node (member % nodes), and routing is sticky.
func TestBalancerLocality(t *testing.T) {
	cell := NewCell(testCfg(), 0, nil, nil)
	for member := 0; member < 8; member++ {
		cl := cell.NewClient(member)
		cl.Resolve(0, Object{Index: int32(member)}, 100)
		if want := member % defaultEdgeNodes; cl.node != want {
			t.Fatalf("member %d routed to node %d, want home %d", member, cl.node, want)
		}
	}
}

// TestBalancerLoadSpill: once the home node's byte-load exceeds the
// locality bias, new sessions spill to the least-loaded node.
func TestBalancerLoadSpill(t *testing.T) {
	cell := NewCell(testCfg(), 0, nil, nil)
	// Pile far more than the bias onto node 0 via member 0.
	heavy := cell.NewClient(0)
	heavy.Resolve(0, Object{Index: 0}, 64<<20)
	// A fresh member whose home is node 0 should now route elsewhere.
	cl := cell.NewClient(4) // 4 % 4 == 0
	cl.Resolve(1, Object{Index: 1}, 100)
	if cl.node == 0 {
		t.Fatalf("overloaded home node still chosen (load %v)", cell.load)
	}
}

// TestFailureReroute: when the failing node dies at FailAtSec, pinned
// sessions re-route on their next request, the dead node's content is
// gone, and the all-dead fallback still serves from origin.
func TestFailureReroute(t *testing.T) {
	cfg := testCfg()
	cfg.FailAtSec = 100
	cell := NewCell(cfg, 0, nil, nil)
	cl := cell.NewClient(0) // home node 0, the failing node
	obj := Object{Index: 1}
	cl.Resolve(0, obj, 100)
	if cl.node != 0 {
		t.Fatalf("pre-failure route: node %d, want 0", cl.node)
	}
	cl.Resolve(150, Object{Index: 2}, 100)
	if cl.node == 0 {
		t.Fatal("session still pinned to the dead node after FailAtSec")
	}
	if cell.Stats.Rerouted != 1 {
		t.Fatalf("Rerouted = %d, want 1", cell.Stats.Rerouted)
	}
	if !cell.dead[0] || cell.nodes[0].used != 0 {
		t.Fatal("failed node not dead or its cache not dropped")
	}
	// All nodes dead: pure origin path, still serves.
	for n := range cell.dead {
		cell.dead[n] = true
	}
	before := cell.Stats.OriginBytes
	rt := cl.Resolve(200, Object{Index: 3}, 100)
	if rt.ExtraLatency != cfg.OriginRTTSec {
		t.Fatalf("all-dead fallback latency %.3f, want origin RTT %.3f", rt.ExtraLatency, cfg.OriginRTTSec)
	}
	if cell.Stats.OriginBytes != before+100 {
		t.Fatal("all-dead fallback did not account origin bytes")
	}
}

// TestFailureConservesBytes: seeded differential — the same request
// stream through a failing cell and a healthy cell accounts every
// requested byte exactly once (hit + miss bytes == total requested) in
// both, and the streams stay deterministic run to run.
func TestFailureConservesBytes(t *testing.T) {
	stream := func(seed int64, n int) ([]Object, []float64, []float64) {
		rng := rand.New(rand.NewSource(seed))
		objs := make([]Object, n)
		sizes := make([]float64, n)
		times := make([]float64, n)
		now := 0.0
		for i := range objs {
			objs[i] = randObj(rng)
			sizes[i] = 1 + rng.Float64()*5000
			now += rng.Float64() * 2
			times[i] = now
		}
		return objs, sizes, times
	}
	run := func(fail bool) (Stats, []Route) {
		cfg := testCfg()
		if fail {
			cfg.FailAtSec = 120
		}
		cell := NewCell(cfg, 0, NewMetro(CacheConfig{MetroBytes: -1, TTLSec: 300}.Normalized()), nil)
		clients := make([]*Client, 6)
		for i := range clients {
			clients[i] = cell.NewClient(i)
		}
		objs, sizes, times := stream(99, 4000)
		routes := make([]Route, len(objs))
		for i := range objs {
			routes[i] = clients[i%len(clients)].Resolve(times[i], objs[i], sizes[i])
		}
		return cell.Stats, routes
	}
	healthy, _ := run(false)
	failed, _ := run(true)
	var want float64
	{
		_, sizes, _ := stream(99, 4000)
		for _, s := range sizes {
			want += s
		}
	}
	for name, s := range map[string]Stats{"healthy": healthy, "failed": failed} {
		if got := s.HitBytes + s.MissBytes; got < want-1e-6 || got > want+1e-6 {
			t.Fatalf("%s cell: accounted %.1f bytes, requested %.1f — re-routing lost or duplicated bytes", name, got, want)
		}
		if s.OriginBytes > s.MissBytes+1e-9 {
			t.Fatalf("%s cell: origin bytes %.1f exceed miss bytes %.1f", name, s.OriginBytes, s.MissBytes)
		}
	}
	if failed.Rerouted == 0 {
		t.Fatal("failure run re-routed no sessions; the differential is vacuous")
	}
	// Determinism: the failing run reproduces exactly.
	failed2, routes2 := run(true)
	if failed != failed2 {
		t.Fatalf("failure run not deterministic: %+v vs %+v", failed, failed2)
	}
	_, routes1 := run(true)
	for i := range routes1 {
		if routes1[i] != routes2[i] {
			t.Fatalf("route %d diverged between identical runs", i)
		}
	}
}

// TestMetroTier: an edge miss that hits metro pays the metro RTT; a
// metro miss pays the origin RTT and warms both tiers.
func TestMetroTier(t *testing.T) {
	cfg := testCfg()
	metro := NewMetro(CacheConfig{MetroBytes: -1, TTLSec: 300}.Normalized())
	a := NewCell(cfg, 0, metro, nil)
	b := NewCell(cfg, 1, metro, nil)
	obj := Object{Catalog: 1, Index: 5}
	if rt := a.NewClient(0).Resolve(0, obj, 100); rt.ExtraLatency != cfg.OriginRTTSec {
		t.Fatalf("first fetch latency %.3f, want origin %.3f", rt.ExtraLatency, cfg.OriginRTTSec)
	}
	// Cell b misses at its own edge but hits the shared metro.
	if rt := b.NewClient(0).Resolve(1, obj, 100); rt.ExtraLatency != cfg.MetroRTTSec {
		t.Fatalf("sibling-cell fetch latency %.3f, want metro %.3f", rt.ExtraLatency, cfg.MetroRTTSec)
	}
	if a.Stats.MetroMisses != 1 || b.Stats.MetroHits != 1 {
		t.Fatalf("metro counters: a=%+v b=%+v", a.Stats, b.Stats)
	}
}

// TestWarmupPrefix: warm caches hold the catalog's popular prefix —
// segment 0 of every title before segment 1 of any — and a warm cell
// serves the prefix without misses.
func TestWarmupPrefix(t *testing.T) {
	titles := []Title{
		{Video: [][]float64{{100, 100, 100}, {200, 200, 200}}},
		{Video: [][]float64{{150, 150, 150}}, Audio: [][]float64{{50, 50, 50}}},
	}
	cat := NewCatalog(titles)
	// Capacity for exactly the first segment round (100+200+150+50).
	cfg := CacheConfig{EdgeBytes: 500, TTLSec: 0, EdgeNodes: 1}.Normalized()
	cell := NewCell(cfg, 0, nil, nil)
	cat.Warm(cell)
	cl := cell.NewClient(0)
	for svc, title := range titles {
		for track := range title.Video {
			if rt := cl.Resolve(0, Object{Catalog: int32(svc), Kind: KindVideo, Track: int32(track), Index: 0}, title.Video[track][0]); rt.Upstream != nil || rt.ExtraLatency != 0 {
				t.Fatalf("warm prefix miss: svc %d video track %d seg 0", svc, track)
			}
		}
	}
	if cell.Stats.EdgeMisses != 0 {
		t.Fatalf("warm prefix produced %d misses", cell.Stats.EdgeMisses)
	}
	// Segment 1 did not fit and must miss.
	if rt := cl.Resolve(0, Object{Kind: KindVideo, Index: 1}, 100); rt.ExtraLatency == 0 {
		t.Fatal("segment outside the warm prefix unexpectedly hit")
	}
}

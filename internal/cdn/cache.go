package cdn

// cache is a segment-granular LRU cache with a byte capacity and a
// virtual-time TTL. It backs both edge nodes and metro caches. All
// state lives in an index map plus a flat entry slab threaded with an
// intrusive doubly-linked LRU list and a free list — steady-state
// lookups and admits allocate nothing (map writes reuse deleted
// buckets, slab growth amortizes to the warm set size), and no map is
// ever iterated, so behavior is a pure function of the request stream.
type cache struct {
	idx  map[Object]int32
	ent  []entry
	free int32 // head of free list through entry.next; -1 empty

	head, tail int32 // LRU list: head = most recent, tail = eviction victim

	cap  float64 // byte capacity; <= 0 unlimited
	ttl  float64 // seconds; <= 0 never expires
	used float64
}

type entry struct {
	obj        Object
	size       float64
	expire     float64 // virtual time at which the object goes stale
	prev, next int32
}

const nilEnt = int32(-1)

func newCache(capBytes, ttlSec float64) *cache {
	return &cache{
		idx:  make(map[Object]int32),
		free: nilEnt,
		head: nilEnt,
		tail: nilEnt,
		cap:  capBytes,
		ttl:  ttlSec,
	}
}

// lookup reports whether obj is cached and fresh at virtual time now,
// promoting it to most-recently-used on a hit. An entry expires at
// exactly now == expire (strict: a lookup at the boundary misses).
//
//vodlint:hotpath
func (c *cache) lookup(now float64, obj Object) bool {
	e, ok := c.idx[obj]
	if !ok {
		return false
	}
	if c.ttl > 0 && now >= c.ent[e].expire {
		c.remove(e)
		return false
	}
	c.touch(e)
	return true
}

// admit inserts obj after a miss, evicting from the LRU tail until it
// fits. Objects larger than the capacity are rejected outright; the
// byte cap is never exceeded. Re-admitting a present object refreshes
// its TTL and recency.
//
//vodlint:hotpath
func (c *cache) admit(now float64, obj Object, size float64) {
	if c.cap > 0 && size > c.cap {
		return
	}
	if e, ok := c.idx[obj]; ok {
		// Refresh in place; size is immutable per object.
		c.ent[e].expire = now + c.ttl
		c.touch(e)
		return
	}
	if c.cap > 0 {
		for c.used+size > c.cap && c.tail != nilEnt {
			c.remove(c.tail)
		}
	}
	e := c.alloc()
	ent := &c.ent[e]
	ent.obj, ent.size, ent.expire = obj, size, now+c.ttl
	ent.prev, ent.next = nilEnt, c.head
	if c.head != nilEnt {
		c.ent[c.head].prev = e
	}
	c.head = e
	if c.tail == nilEnt {
		c.tail = e
	}
	c.idx[obj] = e
	c.used += size
}

// touch moves e to the head of the LRU list.
//
//vodlint:hotpath
func (c *cache) touch(e int32) {
	if c.head == e {
		return
	}
	ent := &c.ent[e]
	c.ent[ent.prev].next = ent.next
	if ent.next != nilEnt {
		c.ent[ent.next].prev = ent.prev
	} else {
		c.tail = ent.prev
	}
	ent.prev, ent.next = nilEnt, c.head
	c.ent[c.head].prev = e
	c.head = e
}

// remove unlinks e from the LRU list and index and returns its slot
// to the free list.
//
//vodlint:hotpath
func (c *cache) remove(e int32) {
	ent := &c.ent[e]
	if ent.prev != nilEnt {
		c.ent[ent.prev].next = ent.next
	} else {
		c.head = ent.next
	}
	if ent.next != nilEnt {
		c.ent[ent.next].prev = ent.prev
	} else {
		c.tail = ent.prev
	}
	c.used -= ent.size
	delete(c.idx, ent.obj)
	ent.next = c.free
	c.free = e
}

//vodlint:hotpath
func (c *cache) alloc() int32 {
	if e := c.free; e != nilEnt {
		c.free = c.ent[e].next
		return e
	}
	c.ent = append(c.ent, entry{})
	return int32(len(c.ent) - 1)
}

// drop empties the cache (node failure: all content lost). The slab
// is kept for reuse.
func (c *cache) drop() {
	for k := range c.idx {
		delete(c.idx, k)
	}
	for i := range c.ent {
		c.ent[i].next = int32(i) - 1
	}
	if n := len(c.ent); n > 0 {
		c.free = int32(n - 1)
	} else {
		c.free = nilEnt
	}
	c.head, c.tail = nilEnt, nilEnt
	c.used = 0
}

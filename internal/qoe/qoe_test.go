package qoe_test

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/qoe"
	"repro/internal/services"
	"repro/internal/traffic"
	"repro/internal/uimon"
)

// TestFromResultCrafted checks the metric arithmetic on a hand-built
// session result.
func TestFromResultCrafted(t *testing.T) {
	res := &player.Result{
		MediaDuration:   40,
		SegmentCount:    10,
		SegmentDuration: 4,
		Declared:        []float64{500e3, 1e6, 2e6},
		StartupDelay:    2,
		Stalls:          []player.Stall{{Start: 10, End: 13}, {Start: 20, End: 21}},
		PlayIntervals:   []player.PlayInterval{{WallStart: 2, WallEnd: 10}, {WallStart: 13, WallEnd: 20}},
		Displayed:       []int{0, 0, 1, 1, 2, -1, -1, -1, -1, -1},
		TotalBytes:      10e6,
		WastedBytes:     1e6,
	}
	rep := qoe.FromResult(res)
	if rep.StartupDelay != 2 || rep.StallCount != 2 || rep.StallSec != 4 {
		t.Fatalf("startup/stalls: %+v", rep)
	}
	// Displayed: 2×500k + 2×1M + 1×2M over 5 segments of 4 s.
	want := (2*500e3 + 2*1e6 + 1*2e6) / 5
	if math.Abs(rep.AvgBitrate-want) > 1 {
		t.Fatalf("avg bitrate %v, want %v", rep.AvgBitrate, want)
	}
	if rep.Switches != 2 || rep.NonConsecutive != 0 {
		t.Fatalf("switches %d/%d", rep.Switches, rep.NonConsecutive)
	}
	if got := rep.PctTimeBelow(res.Declared, 1e6); math.Abs(got-8.0/15) > 1e-9 {
		t.Fatalf("PctTimeBelow = %v", got)
	}
	if rep.PlayedSec != 15 {
		t.Fatalf("played %v", rep.PlayedSec)
	}
}

func TestNonConsecutiveSwitches(t *testing.T) {
	res := &player.Result{
		MediaDuration: 16, SegmentCount: 4, SegmentDuration: 4,
		Declared:  []float64{1, 2, 3},
		Displayed: []int{0, 2, 0, 1},
	}
	rep := qoe.FromResult(res)
	if rep.Switches != 3 || rep.NonConsecutive != 2 {
		t.Fatalf("switches %d non-consecutive %d", rep.Switches, rep.NonConsecutive)
	}
}

// TestInferenceClosure is the paper's methodology validated end to end:
// QoE recovered purely from traffic + 1 Hz UI samples must agree with the
// simulator's ground truth within the 1 s observation granularity.
func TestInferenceClosure(t *testing.T) {
	cases := []struct {
		svc     string
		profile int
	}{
		{"H1", 3}, {"H5", 1}, {"D2", 4}, {"D4", 2}, {"S2", 3},
	}
	for _, c := range cases {
		c := c
		t.Run(c.svc, func(t *testing.T) {
			svc := services.ByName(c.svc)
			res, err := svc.Run(netem.Cellular(c.profile), 600, nil)
			if err != nil {
				t.Fatal(err)
			}
			truth := qoe.FromResult(res)
			tr, err := traffic.Analyze(c.svc, res.Transactions)
			if err != nil {
				t.Fatal(err)
			}
			inf := qoe.Infer(tr, uimon.FromResult(res))
			got := inf.Report

			if math.Abs(got.StartupDelay-truth.StartupDelay) > 2 {
				t.Errorf("startup inferred %.1f vs truth %.1f", got.StartupDelay, truth.StartupDelay)
			}
			if math.Abs(got.StallSec-truth.StallSec) > 3+2*float64(truth.StallCount) {
				t.Errorf("stall sec inferred %.1f vs truth %.1f", got.StallSec, truth.StallSec)
			}
			if truth.AvgBitrate > 0 {
				if rel := math.Abs(got.AvgBitrate-truth.AvgBitrate) / truth.AvgBitrate; rel > 0.1 {
					t.Errorf("avg bitrate inferred %.0f vs truth %.0f (%.0f%% off)",
						got.AvgBitrate, truth.AvgBitrate, rel*100)
				}
			}
			// Data usage from traffic covers the media payload (documents
			// are not segments).
			if got.DataUsageBytes > truth.DataUsageBytes+1 {
				t.Errorf("inferred data %.0f exceeds truth %.0f", got.DataUsageBytes, truth.DataUsageBytes)
			}
			if got.DataUsageBytes < 0.95*truth.DataUsageBytes-1e5 {
				t.Errorf("inferred data %.0f far below truth %.0f", got.DataUsageBytes, truth.DataUsageBytes)
			}
		})
	}
}

// TestBufferInferenceClosure checks §2.5: inferred buffer occupancy =
// download progress − playback progress must track the simulator's real
// buffer within observation granularity. H5 does no segment replacement,
// so traffic-only inference should be tight (with SR the inference
// briefly overestimates while dropped segments await their re-download —
// a blind spot the paper's methodology shares).
func TestBufferInferenceClosure(t *testing.T) {
	svc := services.ByName("H5")
	res, err := svc.Run(netem.Cellular(5), 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.Analyze("H5", res.Transactions)
	if err != nil {
		t.Fatal(err)
	}
	inf := qoe.Infer(tr, uimon.FromResult(res))
	truth := map[float64]player.BufferSample{}
	for _, s := range res.Samples {
		truth[s.T] = s
	}
	checked, worst := 0, 0.0
	for _, bp := range inf.Buffer {
		ts, ok := truth[bp.T]
		if !ok || bp.T < 30 {
			continue
		}
		diff := math.Abs(bp.VideoSec - ts.VideoSec)
		if diff > worst {
			worst = diff
		}
		checked++
		// One segment duration + 2 s sampling slack.
		if diff > res.SegmentDuration+3 {
			t.Fatalf("t=%.0f inferred %.1f s vs true %.1f s", bp.T, bp.VideoSec, ts.VideoSec)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d buffer points checked", checked)
	}
	t.Logf("buffer inference worst error %.2f s over %d points", worst, checked)
}

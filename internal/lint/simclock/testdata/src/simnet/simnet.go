// Package simnet stands in for a simulation package: its path element
// "simnet" puts it in simclock's scope.
package simnet

import (
	"time"
)

// Config mirrors the injectable-clock pattern of internal/httpplay.
type Config struct {
	Now   func() time.Time
	Sleep func(time.Duration)
}

func bad() {
	t0 := time.Now() // want `call to time\.Now in simulation package`
	_ = t0
	time.Sleep(time.Second)        // want `call to time\.Sleep`
	_ = time.Since(t0)             // want `call to time\.Since`
	<-time.After(time.Second)      // want `call to time\.After`
	_ = time.NewTimer(time.Second) // want `call to time\.NewTimer`
}

func good(cfg Config) {
	// Storing the wall clock as the *default* of an injectable field is
	// the blessed pattern: a reference, not a call.
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	t0 := cfg.Now()
	cfg.Sleep(time.Second)
	_ = cfg.Now().Sub(t0)
	// Pure duration arithmetic never reads the clock.
	_ = 3 * time.Second
	_, _ = time.ParseDuration("1s")
}

func allowed() {
	start := time.Now() //vodlint:allow simclock — wall-clock runner timing
	_ = start
	//vodlint:allow simclock — directive on the preceding line also works
	time.Sleep(time.Millisecond)
}

package netem

import "testing"

func TestFingerprintIgnoresName(t *testing.T) {
	a := Constant("a", 2e6, 600)
	b := Constant("some-other-name", 2e6, 600)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical schedules with different names must share a fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Constant("c", 2e6, 600)
	cases := map[string]*Profile{
		"sample value":    {Name: "c", SampleDur: base.SampleDur, Samples: append(append([]float64{}, base.Samples[:len(base.Samples)-1]...), 2e6+1)},
		"sample count":    base.Slice(0, base.Duration()-base.SampleDur),
		"sample duration": {Name: "c", SampleDur: base.SampleDur * 2, Samples: base.Samples},
	}
	for name, p := range cases {
		if p.Fingerprint() == base.Fingerprint() {
			t.Errorf("changing %s must change the fingerprint", name)
		}
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	p := Cellular(3)
	if p.Fingerprint() != Cellular(3).Fingerprint() {
		t.Fatal("fingerprint must be stable across independently built profiles")
	}
}

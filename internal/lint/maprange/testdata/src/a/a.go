package a

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// sortedKeys is the safe idiom from internal/experiments: the keys are
// appended in random map order but sorted before anyone iterates them.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// unsortedKeys is sortedKeys with the key-sort deleted — the regression
// the determinism contract exists to catch.
func unsortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k) // want `append to "ks" inside range over map`
	}
	return ks
}

func sortSliceVariant(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writesOutput(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map writes output`
	}
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside range over map writes output`
	}
	for k := range m {
		fmt.Fprintf(os.Stderr, "%s\n", k) // want `fmt\.Fprintf inside range over map`
	}
}

func accumulates(m map[string]float64) (float64, string) {
	var sum float64
	var text string
	for _, v := range m {
		sum += v // want `float accumulation into "sum" inside range over map`
	}
	for k := range m {
		text += k // want `string concatenation into "text" inside range over map`
	}
	return sum, text
}

// Order-insensitive uses must stay quiet.
func fine(m map[string]float64) (float64, map[string]float64, int) {
	var max float64
	out := map[string]float64{}
	n := 0
	for k, v := range m {
		if v > max {
			max = v // plain assignment, last-writer-wins on a max: not flagged
		}
		out[k] = v  // keyed writes are order-insensitive
		out[k] += 1 // and so is keyed accumulation
		n++         // integer counting is associative
	}
	// Summing over the sorted keys is the contract's answer.
	var sum float64
	for _, k := range sortedKeys(m) {
		sum += m[k]
	}
	return max, out, n
}

type rendition struct {
	segments []int
	total    float64
}

// Building one value per key is order-insensitive even though it
// appends and accumulates: the accumulator is loop-local.
func perKey(m map[string][]int) map[string]*rendition {
	out := map[string]*rendition{}
	for k, refs := range m {
		r := &rendition{}
		for _, ref := range refs {
			r.segments = append(r.segments, ref)
			r.total += float64(ref)
		}
		out[k] = r
	}
	return out
}

// The generic shape of internal/experiments' helper: ranging over a
// type parameter whose type set is maps is still map iteration.
func sortedKeysGeneric[M ~map[string]float64](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func unsortedKeysGeneric[M ~map[string]float64](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k) // want `append to "ks" inside range over map`
	}
	return ks
}

// A slice-typed parameter must not be mistaken for a map.
func sliceGeneric[S ~[]float64](s S) []float64 {
	var out []float64
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

func allowed(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) //vodlint:allow maprange — order handled by caller
	}
	return ks
}

package vod_test

import (
	"fmt"

	vod "repro"
	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/player"
)

// ExampleServiceByName streams one of the paper's service models over a
// synthetic cellular trace and reads its QoE.
func ExampleServiceByName() {
	svc := vod.ServiceByName("D2")
	res, err := svc.Run(vod.CellularProfile(6), 600, nil)
	if err != nil {
		panic(err)
	}
	rep := vod.QoE(res)
	fmt.Printf("stalls: %d\n", rep.StallCount)
	fmt.Printf("played: %v\n", rep.PlayedSec > 500)
	// Output:
	// stalls: 0
	// played: true
}

// ExampleStream assembles a custom pipeline: content → manifest → origin
// → session → QoE.
func ExampleStream() {
	video, err := vod.GenerateVideo(vod.MediaConfig{
		Name: "doc", Duration: 120, SegmentDuration: 4,
		TargetBitrates: []float64{300e3, 600e3, 1.2e6},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	org, err := vod.NewOrigin(vod.BuildManifest(video, vod.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		panic(err)
	}
	cfg := vod.PlayerConfig{
		Name: "doc", StartupBufferSec: 4, StartupTrack: 0,
		PauseThresholdSec: 30, ResumeThresholdSec: 20,
		MaxConnections: 1, Persistent: true, Scheduler: player.SchedulerSingle,
		Algorithm: adaptation.DefaultHysteresis(),
	}
	res, err := vod.Stream(cfg, org, vod.ConstantProfile(5e6, 200), 150)
	if err != nil {
		panic(err)
	}
	fmt.Printf("startup under 2s: %v\n", res.StartupDelay < 2)
	fmt.Printf("no stalls: %v\n", len(res.Stalls) == 0)
	// Output:
	// startup under 2s: true
	// no stalls: true
}

// ExampleAnalyzeTraffic runs the paper's traffic-analysis methodology on
// a session's HTTP log.
func ExampleAnalyzeTraffic() {
	svc := vod.ServiceByName("H1")
	res, err := svc.Run(vod.ConstantProfile(4e6, 120), 120, nil)
	if err != nil {
		panic(err)
	}
	tr, err := vod.AnalyzeTraffic("H1", res.Transactions)
	if err != nil {
		panic(err)
	}
	fmt.Printf("unmatched: %d\n", len(tr.Unmatched))
	fmt.Printf("protocol: %v\n", tr.Presentation.Protocol)
	// Output:
	// unmatched: 0
	// protocol: HLS
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/expcache"
	"repro/internal/netem"
	"repro/internal/services"
	"repro/internal/textplot"
)

// Fig14 reproduces Figure 14: H3 (9 s segments, playback after a single
// segment, ~1 Mbit/s startup track) stalls right after starting on a low-
// bandwidth profile, while H2 (2 s segments, 4-segment startup) on the
// same network does not.
func Fig14(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title: "Figure 14 — startup stalls: H3 (1×9 s startup segment, 1.05 Mbps track) vs H2 (4×2 s, 1.33 Mbps)",
		Note:  "30 marginal ~0.9 Mbit/s profiles (the paper's \"certain network bandwidth profiles\"); early stall = within 30 s of playback start",
		Header: []string{"service", "runs", "early-stall ratio", "any-stall ratio",
			"avg startup delay (s)", "avg first-stall time (s)"},
	}
	// Bandwidth hovers just below H3's 1.05 Mbit/s startup track but
	// above H2's 0.8 Mbit/s bottom track — H3's single 9 s startup
	// segment then drains before the second segment lands (the exact
	// mechanism of Figure 14) while H2 streams its bottom track safely.
	var minis []*netem.Profile
	rng := rand.New(rand.NewSource(1414))
	for i := 0; i < 30; i++ {
		p := &netem.Profile{Name: fmt.Sprintf("marginal-%02d", i+1), SampleDur: 1}
		for t := 0; t < 60; t++ {
			p.Samples = append(p.Samples, 0.9e6*(0.92+0.16*rng.Float64()))
		}
		minis = append(minis, p)
	}
	var plots []string
	for _, name := range []string{"H3", "H2"} {
		svc := services.ByName(name)
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, nil, err
		}
		early, any, runs := 0, 0, 0
		var delays, firsts []float64
		for mi, mp := range minis {
			res, err := expcache.Run(svc.Player, org, mp, 60, nil)
			if err != nil {
				return nil, nil, err
			}
			runs++
			if res.StartupDelay >= 0 {
				delays = append(delays, res.StartupDelay)
			}
			if len(res.Stalls) > 0 {
				any++
				firsts = append(firsts, res.Stalls[0].Start)
				if res.StartupDelay >= 0 && res.Stalls[0].Start < res.StartupDelay+30 {
					early++
				}
			}
			if name == "H3" && early == 1 && len(plots) == 0 {
				var xs, vb []float64
				for _, s := range res.Samples {
					xs = append(xs, s.T)
					vb = append(vb, s.VideoSec)
				}
				plots = append(plots, textplot.Plot(
					fmt.Sprintf("Figure 14 — H3 video buffer on slice %d (stall right after startup)", mi+1), 72, 10,
					textplot.Series{Name: "video buffer (s)", X: xs, Y: vb}))
			}
		}
		t.AddRow(name, fmt.Sprintf("%d", runs),
			textplot.Pct(float64(early)/float64(runs)),
			textplot.Pct(float64(any)/float64(runs)),
			textplot.Secs(textplot.Mean(delays)),
			textplot.Secs(textplot.Mean(firsts)),
		)
	}
	return []*textplot.Table{t}, plots, nil
}

// Fig15 reproduces Figure 15: startup delay and stall ratio as a function
// of segment duration, startup track bitrate and startup segment count,
// over 50 one-minute slices of the 5 lowest-bandwidth profiles. The paper
// finds (i) shorter segments stall less for the same startup duration,
// (ii) 2–3 startup segments cut the stall ratio sharply vs 1, and (iii)
// high startup tracks raise both delay and stalls.
func Fig15(ctx context.Context) ([]*textplot.Table, []string, error) {
	// 50 one-minute profiles from the 5 lowest cellular traces.
	var minis []*netem.Profile
	for _, p := range cellular()[:5] {
		for _, m := range p.Split(60) {
			minis = append(minis, m)
		}
	}
	if len(minis) > 50 {
		minis = minis[:50]
	}

	type setting struct {
		segDur   float64
		track    int // ladder index for the startup track
		trackBps float64
	}
	settings := []setting{
		{4, 2, 0.6e6}, // label uses ladder declared below
		{4, 3, 1.0e6},
		{8, 2, 0.6e6},
		{8, 3, 1.0e6},
	}
	t := &textplot.Table{
		Title:  "Figure 15 — startup delay and stall ratio (50 × 1-minute low-bandwidth profiles)",
		Header: []string{"segment dur", "startup track", "startup segments", "avg startup delay (s)", "stall ratio"},
	}
	type combo struct {
		set  setting
		nseg int
	}
	var combos []combo
	for _, st := range settings {
		// Build each segment duration's content up front (cached), so
		// concurrent combos share the origin instead of racing to build it.
		if _, err := exoContent(st.segDur, 99); err != nil {
			return nil, nil, err
		}
		for _, nseg := range []int{1, 2, 3, 4} {
			combos = append(combos, combo{st, nseg})
		}
	}
	rows, err := sweep(ctx, combos, func(c combo) ([]string, error) {
		org, err := exoContent(c.set.segDur, 99)
		if err != nil {
			return nil, err
		}
		declared := org.Pres.Video[c.set.track].DeclaredBitrate
		var delays []float64
		stalled := 0
		runs := 0
		for _, mp := range minis {
			cfg := exoPlayer("exo15")
			cfg.StartupTrack = c.set.track
			cfg.StartupBufferSec = c.set.segDur * float64(c.nseg)
			cfg.StartupSegments = c.nseg
			res, err := expcache.Run(cfg, org, mp, 60, nil)
			if err != nil {
				return nil, err
			}
			runs++
			if res.StartupDelay >= 0 {
				delays = append(delays, res.StartupDelay)
			}
			if len(res.Stalls) > 0 {
				stalled++
			}
		}
		return []string{
			fmt.Sprintf("%.0fs", c.set.segDur),
			fmt.Sprintf("%.1f Mbps", declared/1e6),
			fmt.Sprintf("%d", c.nseg),
			textplot.Secs(textplot.Mean(delays)),
			textplot.Pct(float64(stalled) / float64(runs)),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*textplot.Table{t}, nil, nil
}

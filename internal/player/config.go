// Package player implements the client side of a HAS service as a
// deterministic virtual-time engine: startup logic, playback-buffer
// management, the pausing/resuming download controller, connection
// scheduling (single, per-segment parallel, sub-segment split; synced or
// desynced audio), track adaptation and segment replacement — every
// client-side design axis Table 1 of the paper distinguishes, including
// the defective variants Table 2 attributes QoE issues to.
package player

import (
	"fmt"

	"repro/internal/adaptation"
	"repro/internal/replacement"
)

// SchedulerKind selects how segment downloads map onto TCP connections
// (§3.2 "TCP connection utilization").
type SchedulerKind int

const (
	// SchedulerSingle downloads one segment at a time over one
	// connection (all studied HLS services).
	SchedulerSingle SchedulerKind = iota
	// SchedulerParallel keeps up to MaxConnections segments in flight,
	// each on its own connection (D1's design).
	SchedulerParallel
	// SchedulerSplit downloads one segment at a time, split into
	// MaxConnections byte ranges fetched in parallel (D3's design).
	SchedulerSplit
)

// String names the scheduler.
func (k SchedulerKind) String() string {
	switch k {
	case SchedulerSingle:
		return "single"
	case SchedulerParallel:
		return "parallel"
	default:
		return "split"
	}
}

// AudioPolicy controls how separate-audio services coordinate the audio
// and video download processes (§3.2).
type AudioPolicy int

const (
	// AudioSynced always fetches whichever content type is further
	// behind, keeping the two buffers tightly coupled (best practice).
	AudioSynced AudioPolicy = iota
	// AudioDesynced dedicates one connection to audio and the rest to
	// video, letting the buffers drift tens of seconds apart under low
	// bandwidth — D1's defect, Figure 6.
	AudioDesynced
)

// Request describes an HTTP request the player is about to issue; the
// RequestGate hook can reject it (the paper's request-rejection probe).
type Request struct {
	// URL is the request path.
	URL string
	// RangeStart/RangeEnd give the byte range, -1 when absent.
	RangeStart, RangeEnd int64
	// IsSegment marks media segment requests (documents are never
	// counted by the startup probe).
	IsSegment bool
	// SegmentSeq is the 0-based ordinal of this segment request within
	// the session (valid when IsSegment).
	SegmentSeq int
}

// Config parameterises a player. The zero value is not runnable; use a
// service definition or fill the fields explicitly.
type Config struct {
	// Name labels the player in reports.
	Name string

	// SessionDuration caps the experiment wall time in seconds (the
	// paper runs 10-minute sessions).
	SessionDuration float64

	// StartupBufferSec is the buffered duration required before playback
	// begins (§3.3.1).
	StartupBufferSec float64
	// StartupSegments is the minimum number of downloaded segments
	// before playback begins. Most services effectively use 1, which
	// §4.3 identifies as a stall risk with long segments; the paper
	// recommends 2–3.
	StartupSegments int
	// StartupTrack is the ladder index of the first segment.
	StartupTrack int
	// RecoverySec and RecoverySegments gate resuming after a stall;
	// zero values inherit the startup settings.
	RecoverySec      float64
	RecoverySegments int

	// PauseThresholdSec stops downloading when the buffer reaches it;
	// ResumeThresholdSec restarts downloading when the buffer drains to
	// it (§3.3.2).
	PauseThresholdSec  float64
	ResumeThresholdSec float64

	// MaxConnections bounds the TCP connection pool.
	MaxConnections int
	// Persistent reuses connections across requests; non-persistent
	// players re-handshake and re-enter slow start for every segment
	// (H2, H3, H5 — a QoE issue per Table 2).
	Persistent bool
	// Scheduler picks the connection-utilisation strategy.
	Scheduler SchedulerKind
	// VideoPipeline is the number of concurrent video segment fetches a
	// synced SchedulerParallel player keeps in flight (default 1; the
	// desynced D1 design instead pipelines on all non-audio connections).
	VideoPipeline int
	// SplitSkew distorts SchedulerSplit's byte-range split points: 0
	// splits evenly (optimal when connections share fairly), positive
	// values give later parts progressively more bytes. §3.2 notes the
	// split point "shall be carefully selected based on per connection
	// bandwidth to ensure all sub-segments arrive in similar time" —
	// this knob quantifies the cost of getting it wrong.
	SplitSkew float64
	// Audio selects the audio/video coordination policy (separate-audio
	// services only).
	Audio AudioPolicy

	// Algorithm is the track-selection logic.
	Algorithm adaptation.Algorithm
	// Estimator tracks achieved throughput; nil defaults to an EWMA.
	Estimator adaptation.Estimator
	// Replacement is the segment-replacement policy; nil means none.
	// Replacement requires SchedulerSingle.
	Replacement replacement.Policy
	// MidBufferDiscard marks a buffer implementation that can drop a
	// single segment in the middle (required by per-segment SR; ExoPlayer
	// 's double-ended queue cannot, §4.1.2).
	MidBufferDiscard bool

	// MinEstimateSamples is how many video throughput samples the player
	// needs before trusting its bandwidth estimate; until then it keeps
	// selecting the startup track (H3 "may not yet have built up enough
	// information about the actual network condition", §4.3). Default 1.
	MinEstimateSamples int

	// ExposeSegmentSizes feeds per-segment actual sizes to the
	// adaptation logic when the manifest carries them. ExoPlayer v2 does
	// not (§4.2), so its model keeps this false.
	ExposeSegmentSizes bool

	// RequestGate, when non-nil, is consulted before every request; a
	// false return makes the origin reject it and the player give up
	// downloading (used by the startup-buffer probe, §3.3.1).
	RequestGate func(Request) bool

	// Seeks schedules user seeks: at wall time AtSec the playhead jumps
	// to media position ToSec, the buffer is flushed (most players
	// refetch after a seek), and playback resumes once the recovery
	// gates are met again. Events must be sorted by AtSec.
	Seeks []SeekEvent
}

// SeekEvent is one scheduled user seek.
type SeekEvent struct {
	// AtSec is the wall time of the seek.
	AtSec float64
	// ToSec is the target media position.
	ToSec float64
}

// Normalized returns the config exactly as a session will run it, with
// every default filled in (and the validation errors a session
// constructor would report). Exported for the experiment cache: a config
// spelled with zero values and one spelled with the explicit defaults
// must map to the same cache key, so fingerprints are taken over the
// normalized form.
func (c Config) Normalized() (Config, error) { return c.withDefaults() }

func (c Config) withDefaults() (Config, error) {
	if c.SessionDuration <= 0 {
		c.SessionDuration = 600
	}
	if c.StartupSegments <= 0 {
		c.StartupSegments = 1
	}
	if c.RecoverySec == 0 {
		c.RecoverySec = c.StartupBufferSec
	}
	if c.RecoverySegments == 0 {
		c.RecoverySegments = c.StartupSegments
	}
	if c.MaxConnections <= 0 {
		c.MaxConnections = 1
	}
	if c.Estimator == nil {
		c.Estimator = adaptation.NewEWMA(0.4)
	}
	if c.MinEstimateSamples <= 0 {
		c.MinEstimateSamples = 1
	}
	if c.VideoPipeline <= 0 {
		c.VideoPipeline = 1
	}
	if c.Algorithm == nil {
		return c, fmt.Errorf("player: Config.Algorithm is required")
	}
	if c.Replacement == nil {
		c.Replacement = replacement.None{}
	}
	if _, isNone := c.Replacement.(replacement.None); !isNone && c.Scheduler != SchedulerSingle {
		return c, fmt.Errorf("player: segment replacement requires SchedulerSingle")
	}
	if c.PauseThresholdSec <= 0 {
		c.PauseThresholdSec = 60
	}
	if c.ResumeThresholdSec <= 0 || c.ResumeThresholdSec > c.PauseThresholdSec {
		c.ResumeThresholdSec = c.PauseThresholdSec - 10
		if c.ResumeThresholdSec <= 0 {
			c.ResumeThresholdSec = c.PauseThresholdSec / 2
		}
	}
	if c.StartupBufferSec <= 0 {
		c.StartupBufferSec = 8
	}
	return c, nil
}

package fleet

import (
	"testing"
)

// FuzzWorkload drives the workload model through arbitrary configs and
// checks the invariants every downstream consumer relies on: the draw
// is total (every session lands in exactly one cell), per-cell streams
// are self-contained and sorted, and every field stays in range. The
// fuzz-smoke Makefile target discovers this harness automatically.
func FuzzWorkload(f *testing.F) {
	f.Add(int64(1), 100, 24, 600.0, 120.0, 1.0)
	f.Add(int64(7), 3, 1, 5.0, 10.0, 0.5)
	f.Add(int64(-9), 1000, 7, 60.0, 30.0, 0.0)
	f.Add(int64(0), 17, 100, 1.0, 5.0, -2.0)
	f.Fuzz(func(t *testing.T, seed int64, sessions, perCell int, window, watch, fidelity float64) {
		if sessions < 1 || sessions > 5000 || perCell < -10 || perCell > 5000 {
			t.Skip()
		}
		if window < -10 || window > 1e6 || watch < -10 || watch > 1e6 || fidelity < -1e6 || fidelity > 1e6 {
			t.Skip()
		}
		cfg, err := Config{
			Seed: seed, Sessions: sessions, ClientsPerCell: perCell,
			ArrivalWindowSec: window, WatchSec: watch, FidelityFull: fidelity,
			Services: []string{"H1", "D2"},
		}.Normalized()
		if err != nil {
			t.Skip()
		}
		nCells := cellCount(cfg)
		if nCells < 1 {
			t.Fatalf("no cells for %d sessions", cfg.Sessions)
		}
		total := 0
		for k := 0; k < nCells; k++ {
			cell := CellClients(cfg, k)
			if len(cell) != cellSize(cfg, k) || len(cell) == 0 {
				t.Fatalf("cell %d size %d, want %d (nonzero)", k, len(cell), cellSize(cfg, k))
			}
			total += len(cell)
			prev := 0.0
			for i, c := range cell {
				if c.Arrival < prev || c.Arrival < 0 || c.Arrival >= cfg.ArrivalWindowSec {
					t.Fatalf("cell %d member %d arrival %v out of order or range", k, i, c.Arrival)
				}
				prev = c.Arrival
				if c.Watch <= 0 || c.Watch > cfg.WatchSec+1e-9 {
					t.Fatalf("cell %d member %d watch %v out of range", k, i, c.Watch)
				}
				if c.Service < 0 || c.Service >= len(cfg.Services) {
					t.Fatalf("cell %d member %d service %d out of range", k, i, c.Service)
				}
				if c.Trace < 1 || c.Trace > 14 {
					t.Fatalf("cell %d member %d trace %d out of range", k, i, c.Trace)
				}
				if c.Full && cfg.FidelityFull == 0 {
					t.Fatalf("cell %d member %d full at fidelity 0", k, i)
				}
				if !c.Full && cfg.FidelityFull == 1 {
					t.Fatalf("cell %d member %d background at fidelity 1", k, i)
				}
			}
			// The stolen-cell contract: an independent redraw is identical.
			again := CellClients(cfg, k)
			for i := range cell {
				if cell[i] != again[i] {
					t.Fatalf("cell %d member %d not reproducible: %+v vs %+v", k, i, cell[i], again[i])
				}
			}
		}
		if total != cfg.Sessions {
			t.Fatalf("cells cover %d of %d sessions", total, cfg.Sessions)
		}
		if plan := focusPlan(cfg); plan != nil {
			t.Fatalf("focus plan non-nil at FocusSessions=0: %v", plan)
		}
	})
}

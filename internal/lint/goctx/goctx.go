// Package goctx flags goroutines launched without a cancellation
// path. A goroutine that neither consults a context, signals a
// WaitGroup, waits on a channel, nor holds a semaphore slot has no
// way to be stopped or awaited: it leaks across experiment runs,
// keeps schedulers from draining, and — in the planned vodswarm load
// generator — pins sockets past their session's end.
//
// Accepted lifecycle evidence, checked in the launched function body
// (or one call deep into a same-package callee): any use of a
// context.Context value, sync.WaitGroup.Done, errgroup-style
// Acquire/Release on a semaphore, receiving from a channel (<-ch,
// range over channel, select), or a context.Context argument at the
// go statement itself. Test files are exempt: tests bound goroutine
// lifetimes with the test's own lifecycle.
package goctx

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/flow"
)

// Analyzer flags go statements with no cancellation or join path.
var Analyzer = &lint.Analyzer{
	Name: "goctx",
	Doc: "flag goroutines launched without a cancellation path (no context, " +
		"WaitGroup, channel signal, or semaphore)",
	Run: run,
}

func run(pass *lint.Pass) error {
	g := flow.New(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(gs.Pos()) || cancellable(pass, g, gs.Call) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine launched without a cancellation path (no context, WaitGroup, channel signal, or semaphore); it cannot be stopped or awaited")
			return true
		})
	}
	return nil
}

// cancellable reports whether the launched call carries lifecycle
// evidence: a context argument, or a body (literal or same-package
// callee) that consults one of the accepted mechanisms.
func cancellable(pass *lint.Pass, g *flow.Graph, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContext(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyHasLifecycle(pass.TypesInfo, lit.Body)
	}
	if node := g.CalleeNode(call); node != nil {
		return bodyHasLifecycle(pass.TypesInfo, node.Body())
	}
	return false
}

// bodyHasLifecycle scans a function body for cancellation or join
// evidence.
func bodyHasLifecycle(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if isContext(info.TypeOf(e)) {
				found = true
			}
		case *ast.SelectorExpr:
			if isContext(info.TypeOf(e)) {
				found = true
			}
		case *ast.CallExpr:
			if isLifecycleCall(info, e) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLifecycleCall recognises sync.WaitGroup.Done and semaphore-style
// Acquire/Release method calls.
func isLifecycleCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Done":
		return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
	case "Acquire", "Release":
		return true
	}
	return false
}

// isContext recognises the context.Context interface type.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

package cdn

import "testing"

func TestParseCacheSpec(t *testing.T) {
	c, err := ParseCacheSpec("edge:512MiB,metro:8GiB,ttl=6h")
	if err != nil {
		t.Fatal(err)
	}
	if c.EdgeBytes != 512<<20 {
		t.Fatalf("EdgeBytes = %.0f, want %d", c.EdgeBytes, 512<<20)
	}
	if c.MetroBytes != 8<<30 {
		t.Fatalf("MetroBytes = %.0f, want %d", c.MetroBytes, 8<<30)
	}
	if c.TTLSec != 6*3600 {
		t.Fatalf("TTLSec = %.0f, want %d", c.TTLSec, 6*3600)
	}
	c, err = ParseCacheSpec("edge:0,metro:-1,ttl=0,nodes=2,backhaul=500,mrtt=20ms,ortt=80ms")
	if err != nil {
		t.Fatal(err)
	}
	if c.EdgeBytes != 0 || c.MetroBytes != -1 || c.EdgeNodes != 2 || c.BackhaulMbps != 500 {
		t.Fatalf("sentinel spec parsed wrong: %+v", c)
	}
	if c.MetroRTTSec != 0.02 || c.OriginRTTSec != 0.08 {
		t.Fatalf("RTT clauses parsed wrong: %+v", c)
	}
	for _, bad := range []string{"edge", "x:1", "edge:abc", "ttl=xh"} {
		if _, err := ParseCacheSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestParseFailSpec(t *testing.T) {
	var c CacheConfig
	if err := ParseFailSpec("cell=3,t=120s", &c); err != nil {
		t.Fatal(err)
	}
	if c.FailCell != 3 || c.FailAtSec != 120 {
		t.Fatalf("fail spec parsed wrong: %+v", c)
	}
	var d CacheConfig
	if err := ParseFailSpec("cell=3", &d); err == nil {
		t.Fatal("fail spec without t= accepted")
	}
}

func TestParseCellSet(t *testing.T) {
	got, err := ParseCellSet("4,0-2,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ParseCellSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseCellSet = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"a", "3-1", "-2"} {
		if _, err := ParseCellSet(bad); err == nil {
			t.Fatalf("cell set %q parsed without error", bad)
		}
	}
}

func TestTransparent(t *testing.T) {
	if !(CacheConfig{}).Transparent() {
		t.Fatal("zero config must be transparent")
	}
	if !(CacheConfig{EdgeBytes: 0, TTLSec: 0, MetroBytes: -1}).Transparent() {
		t.Fatal("unlimited warm config must be transparent")
	}
	for _, c := range []CacheConfig{
		{EdgeBytes: 1000},
		{TTLSec: 60},
		{ColdCells: "0"},
		{FailAtSec: 10},
	} {
		if c.Transparent() {
			t.Fatalf("%+v must not be transparent", c)
		}
	}
}

// Package traffic implements the paper's traffic analyzer (§2.3): given
// the HTTP transactions observed between a client and an origin, it
// recognises HAS manifest documents (HLS playlists, DASH MPDs with sidx
// boxes, SmoothStreaming manifests), reconstructs the presentation, and
// maps every media request — by URL or byte range — to a (track, index)
// segment download with its timing, declared bitrate, duration and size.
//
// Like the paper's man-in-the-middle proxy, the analyzer relies only on
// standard HAS protocol structure, never on service-specific URL patterns,
// so the identical code handles all twelve service models.
package traffic

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/manifest"
	"repro/internal/manifest/dash"
	"repro/internal/manifest/hls"
	"repro/internal/manifest/sidx"
	"repro/internal/manifest/smooth"
	"repro/internal/media"
)

// Transaction is one observed HTTP exchange.
type Transaction struct {
	// Start and End are the request issue and response completion times
	// in seconds.
	Start, End float64
	// Method is the HTTP method ("GET" or "HEAD").
	Method string
	// URL is the request path.
	URL string
	// RangeStart/RangeEnd give the Range header bytes; both are -1 when
	// the request was not ranged.
	RangeStart, RangeEnd int64
	// Bytes is the response body size actually transferred.
	Bytes int64
	// Body holds the response body for document requests (manifests,
	// playlists, segment indexes); nil for media payloads, which the
	// analyzer identifies by shape alone.
	Body []byte
	// Rejected marks a request the origin refused (used by the
	// request-rejection probe, §3.3.1).
	Rejected bool
}

// Ranged reports whether the transaction used a byte range.
func (t *Transaction) Ranged() bool { return t.RangeStart >= 0 }

// SegmentDownload is one media segment recovered from the traffic.
type SegmentDownload struct {
	// Type is media.TypeVideo or media.TypeAudio.
	Type media.MediaType
	// Track is the ladder index (0 = lowest declared bitrate).
	Track int
	// Index is the segment position within the track.
	Index int
	// Declared is the track's declared bitrate in bits/s.
	Declared float64
	// Duration is the segment's media duration in seconds.
	Duration float64
	// MediaStart is the segment's media start time in seconds.
	MediaStart float64
	// Bytes is the transferred size.
	Bytes int64
	// Start and End are the download's wall-clock interval.
	Start, End float64
}

// Result is the analyzer's output for one session.
type Result struct {
	// Presentation is the reconstructed content description (may be
	// partial for HLS when not every media playlist was fetched).
	Presentation *manifest.Presentation
	// Segments lists recovered segment downloads in start-time order.
	Segments []SegmentDownload
	// Unmatched lists media transactions that could not be mapped.
	Unmatched []Transaction
}

// segKey identifies a segment by URL or by (URL, offset).
type segKey struct {
	url    string
	offset int64
}

type segInfo struct {
	typ        media.MediaType
	track      int
	index      int
	declared   float64
	duration   float64
	mediaStart float64
}

// Analyze reconstructs segment downloads from a transaction log.
func Analyze(name string, txs []Transaction) (*Result, error) {
	res := &Result{}
	index := map[segKey]segInfo{}

	// Pass 1: find documents and build the URL/range → segment index.
	var masterBody string
	mediaPlaylists := map[string]string{}
	var mpdBody []byte
	sidxBodies := map[string][]byte{}
	var smoothBody []byte
	for _, tx := range txs {
		if tx.Body == nil {
			continue
		}
		switch sniff(tx.Body) {
		case docHLSMaster:
			masterBody = string(tx.Body)
		case docHLSMedia:
			mediaPlaylists[tx.URL] = string(tx.Body)
		case docMPD:
			mpdBody = tx.Body
		case docSmooth:
			smoothBody = tx.Body
			// SmoothStreaming fragment URLs are resolved relative to the
			// manifest location, so the presentation name comes from the
			// observed manifest URL, not from the caller.
			if base := firstPathElement(tx.URL); base != "" {
				name = base
			}
		case docSidx:
			sidxBodies[tx.URL] = tx.Body
		}
	}

	switch {
	case masterBody != "":
		p, err := assembleHLS(name, masterBody, mediaPlaylists)
		if err != nil {
			return nil, err
		}
		res.Presentation = p
	case mpdBody != nil:
		p, err := dash.Decode(name, mpdBody, sidxBodies)
		if err != nil {
			return nil, err
		}
		res.Presentation = p
	case smoothBody != nil:
		p, err := smooth.Decode(name, smoothBody)
		if err != nil {
			return nil, err
		}
		res.Presentation = p
	case len(sidxBodies) > 0:
		// D3's case (§2.3): the MPD is encrypted at the application
		// layer, but the Segment Index boxes are not — reconstruct the
		// presentation from the sidx fetches alone, using the peak
		// actual segment bitrate as the declared bitrate (footnote 4 of
		// the paper: "we use the peak value of the actual segment
		// bitrates ... as the declared bitrate").
		p, err := fromSidxOnly(name, txs, sidxBodies)
		if err != nil {
			return nil, err
		}
		res.Presentation = p
	default:
		return nil, fmt.Errorf("traffic: no manifest observed in %d transactions", len(txs))
	}
	indexPresentation(res.Presentation, index)

	// Pass 2: map media transactions. Exact URL/offset matches come from
	// the index; ranged requests that start mid-segment (sub-segment
	// splitting, D3's design) are resolved by byte containment and the
	// parts of one segment are merged back together.
	ranges := rangeIndex(res.Presentation)
	type aggKey struct {
		typ          media.MediaType
		track, index int
		epoch        int
	}
	agg := map[aggKey]*SegmentDownload{}
	lastEpoch := map[[3]int]int{}
	for _, tx := range txs {
		if tx.Body != nil || tx.Method == "HEAD" || tx.Rejected {
			continue
		}
		key := segKey{url: tx.URL, offset: -1}
		if tx.Ranged() {
			key.offset = tx.RangeStart
		}
		info, ok := index[key]
		if !ok && tx.Ranged() {
			info, ok = ranges.lookup(tx.URL, tx.RangeStart)
		}
		if !ok {
			res.Unmatched = append(res.Unmatched, tx)
			continue
		}
		// Parts of the same segment fetched close together merge into
		// one download; a re-download later (segment replacement) gets
		// its own record (a fresh epoch).
		id := [3]int{int(info.typ), info.track, info.index}
		k := aggKey{info.typ, info.track, info.index, lastEpoch[id]}
		if cur, ok := agg[k]; ok && tx.Start <= cur.End+1 {
			cur.Bytes += tx.Bytes
			if tx.End > cur.End {
				cur.End = tx.End
			}
			if tx.Start < cur.Start {
				cur.Start = tx.Start
			}
			continue
		} else if ok {
			lastEpoch[id]++
			k.epoch = lastEpoch[id]
		}
		agg[k] = &SegmentDownload{
			Type:       info.typ,
			Track:      info.track,
			Index:      info.index,
			Declared:   info.declared,
			Duration:   info.duration,
			MediaStart: info.mediaStart,
			Bytes:      tx.Bytes,
			Start:      tx.Start,
			End:        tx.End,
		}
	}
	for _, s := range agg {
		res.Segments = append(res.Segments, *s)
	}
	sort.SliceStable(res.Segments, func(i, j int) bool {
		//vodlint:allow floateq — sort tie-break on stored segment starts, intentionally exact
		if res.Segments[i].Start != res.Segments[j].Start {
			return res.Segments[i].Start < res.Segments[j].Start
		}
		return res.Segments[i].Index < res.Segments[j].Index
	})
	return res, nil
}

// byteIndex resolves (mediaURL, offset) → segment by containment.
type byteIndex struct {
	byURL map[string][]rangeEntry
}

type rangeEntry struct {
	start, end int64 // [start, end)
	info       segInfo
}

func rangeIndex(p *manifest.Presentation) *byteIndex {
	bi := &byteIndex{byURL: map[string][]rangeEntry{}}
	add := func(rs []*manifest.Rendition, typ media.MediaType) {
		for _, r := range rs {
			if r.MediaURL == "" {
				continue
			}
			for i, s := range r.Segments {
				bi.byURL[r.MediaURL] = append(bi.byURL[r.MediaURL], rangeEntry{
					start: s.Offset, end: s.Offset + s.Length,
					info: segInfo{
						typ: typ, track: r.ID, index: i,
						declared: r.DeclaredBitrate, duration: s.Duration, mediaStart: s.Start,
					},
				})
			}
		}
	}
	add(p.Video, media.TypeVideo)
	add(p.Audio, media.TypeAudio)
	for _, entries := range bi.byURL {
		sort.Slice(entries, func(i, j int) bool { return entries[i].start < entries[j].start })
	}
	return bi
}

func (bi *byteIndex) lookup(url string, offset int64) (segInfo, bool) {
	entries := bi.byURL[url]
	lo := sort.Search(len(entries), func(i int) bool { return entries[i].end > offset })
	if lo < len(entries) && entries[lo].start <= offset {
		return entries[lo].info, true
	}
	return segInfo{}, false
}

// indexPresentation fills the lookup table from a decoded presentation.
func indexPresentation(p *manifest.Presentation, index map[segKey]segInfo) {
	add := func(rs []*manifest.Rendition, typ media.MediaType) {
		for _, r := range rs {
			for i, s := range r.Segments {
				key := segKey{url: s.URL, offset: -1}
				if s.URL == "" {
					key = segKey{url: r.MediaURL, offset: s.Offset}
				} else if s.Length > 0 {
					key.offset = s.Offset
				}
				index[key] = segInfo{
					typ:        typ,
					track:      r.ID,
					index:      i,
					declared:   r.DeclaredBitrate,
					duration:   s.Duration,
					mediaStart: s.Start,
				}
			}
		}
	}
	add(p.Video, media.TypeVideo)
	add(p.Audio, media.TypeAudio)
}

// assembleHLS reconstructs a presentation from a master playlist plus the
// subset of media playlists that were actually fetched. Track IDs follow
// the full ladder from the master (sorted ascending by BANDWIDTH), so a
// track keeps its identity even when its siblings were never streamed.
func assembleHLS(name, master string, mediaBodies map[string]string) (*manifest.Presentation, error) {
	vars, err := hls.ParseMaster(master)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(vars, func(i, j int) bool { return vars[i].Bandwidth < vars[j].Bandwidth })
	p := &manifest.Presentation{Name: name, Protocol: manifest.HLS, Addressing: manifest.SeparateFiles}
	for id, v := range vars {
		r := &manifest.Rendition{
			ID:              id,
			Type:            media.TypeVideo,
			DeclaredBitrate: v.Bandwidth,
			AverageBitrate:  v.AverageBandwidth,
			Width:           v.Width,
			Height:          v.Height,
			PlaylistURL:     v.URI,
		}
		if body, ok := mediaBodies[v.URI]; ok {
			segs, err := hls.ParseMedia(body)
			if err != nil {
				return nil, fmt.Errorf("traffic: %s: %w", v.URI, err)
			}
			start := 0.0
			for _, s := range segs {
				r.Segments = append(r.Segments, manifest.Segment{
					URL: s.URI, Offset: s.Offset, Length: s.Length,
					Duration: s.Duration, Start: start,
				})
				start += s.Duration
				if s.Duration > r.SegmentDuration {
					r.SegmentDuration = s.Duration
				}
			}
			if start > p.Duration {
				p.Duration = start
			}
		}
		p.Video = append(p.Video, r)
	}
	return p, nil
}

// firstPathElement returns "a" for "/a/b/c".
func firstPathElement(url string) string {
	s := strings.TrimPrefix(url, "/")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return s
}

// fromSidxOnly rebuilds a DASH presentation when the MPD is opaque: each
// sidx fetch reveals one track's segment sizes/durations and byte layout
// (segments start right after the indexed region). Tracks are ordered by
// average actual bitrate; video/audio are told apart by magnitude.
func fromSidxOnly(name string, txs []Transaction, sidxBodies map[string][]byte) (*manifest.Presentation, error) {
	type trackInfo struct {
		url  string
		rend *manifest.Rendition
		avg  float64
		cv   float64 // coefficient of variation of segment sizes
	}
	var tracks []trackInfo
	// Find each sidx transaction to learn where the indexed region ends
	// (segments begin at RangeEnd+1+first_offset).
	indexEnd := map[string]int64{}
	for _, tx := range txs {
		if tx.Body != nil && sniff(tx.Body) == docSidx && tx.Ranged() {
			indexEnd[tx.URL] = tx.RangeEnd
		}
	}
	var totalDur float64
	for url, body := range sidxBodies {
		box, err := sidx.Decode(body)
		if err != nil {
			return nil, fmt.Errorf("traffic: sidx for %s: %w", url, err)
		}
		r := &manifest.Rendition{Type: media.TypeVideo, MediaURL: url}
		off := indexEnd[url] + 1 + int64(box.FirstOffset)
		start := 0.0
		peak, bytes, dur := 0.0, 0.0, 0.0
		for _, ref := range box.References {
			d := float64(ref.SubsegmentDuration) / float64(box.Timescale)
			r.Segments = append(r.Segments, manifest.Segment{
				Offset: off, Length: int64(ref.ReferencedSize),
				Size: int64(ref.ReferencedSize), Duration: d, Start: start,
			})
			if rate := float64(ref.ReferencedSize) * 8 / d; rate > peak {
				peak = rate
			}
			bytes += float64(ref.ReferencedSize)
			dur += d
			if d > r.SegmentDuration {
				r.SegmentDuration = d
			}
			off += int64(ref.ReferencedSize)
			start += d
		}
		r.DeclaredBitrate = peak // footnote 4: peak actual as declared
		if start > totalDur {
			totalDur = start
		}
		mean := bytes / float64(len(box.References))
		varSum := 0.0
		for _, ref := range box.References {
			d := float64(ref.ReferencedSize) - mean
			varSum += d * d
		}
		cv := 0.0
		if mean > 0 && len(box.References) > 1 {
			cv = math.Sqrt(varSum/float64(len(box.References))) / mean
		}
		tracks = append(tracks, trackInfo{url: url, rend: r, avg: bytes * 8 / dur, cv: cv})
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].avg < tracks[j].avg })
	p := &manifest.Presentation{Name: name, Protocol: manifest.DASH, Addressing: manifest.SidxRanges, Duration: totalDur}
	for _, tr := range tracks {
		// Audio: low bitrate AND near-constant segment sizes (AAC is
		// effectively CBR, while VBR video varies a lot even at the
		// bottom rung) — the cue an analyst uses when bitrates collide.
		if tr.avg < 150e3 && tr.cv < 0.08 {
			tr.rend.Type = media.TypeAudio
			tr.rend.ID = len(p.Audio)
			p.Audio = append(p.Audio, tr.rend)
			continue
		}
		tr.rend.ID = len(p.Video)
		p.Video = append(p.Video, tr.rend)
	}
	if len(p.Video) == 0 {
		return nil, fmt.Errorf("traffic: sidx-only reconstruction found no video tracks")
	}
	return p, nil
}

type docKind int

const (
	docUnknown docKind = iota
	docHLSMaster
	docHLSMedia
	docMPD
	docSmooth
	docSidx
)

// sniff classifies a document body by content, never by URL.
func sniff(body []byte) docKind {
	if len(body) >= 8 && bytes.Equal(body[4:8], []byte("sidx")) {
		return docSidx
	}
	s := string(body)
	switch {
	case strings.HasPrefix(strings.TrimSpace(s), "#EXTM3U"):
		if strings.Contains(s, "#EXT-X-STREAM-INF") {
			return docHLSMaster
		}
		return docHLSMedia
	case strings.Contains(s, "<MPD"):
		return docMPD
	case strings.Contains(s, "<SmoothStreamingMedia"):
		return docSmooth
	}
	return docUnknown
}

// OnOff describes one pause in the download activity of a session, used
// to recover the pausing/resuming thresholds of the download controller
// (§3.3.2): downloads stop at Start and resume at End.
type OnOff struct {
	// Start is when the last transaction before the gap completed.
	Start float64
	// End is when the first transaction after the gap was issued.
	End float64
}

// DownloadGaps returns the idle gaps longer than minGap seconds between
// consecutive segment downloads.
func DownloadGaps(segs []SegmentDownload, minGap float64) []OnOff {
	if len(segs) == 0 {
		return nil
	}
	byStart := append([]SegmentDownload(nil), segs...)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].Start < byStart[j].Start })
	var out []OnOff
	busyUntil := byStart[0].End
	for _, s := range byStart[1:] {
		if s.Start-busyUntil >= minGap {
			out = append(out, OnOff{Start: busyUntil, End: s.Start})
		}
		if s.End > busyUntil {
			busyUntil = s.End
		}
	}
	return out
}

package foldorder_test

import (
	"testing"

	"repro/internal/lint/foldorder"
	"repro/internal/lint/linttest"
)

func TestFoldOrder(t *testing.T) {
	linttest.Run(t, foldorder.Analyzer, "fold")
}

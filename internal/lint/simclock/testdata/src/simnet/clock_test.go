package simnet

import "time"

// Test files may time themselves: determinism is enforced on the
// packages under test, not on the test harness.
func timingHelper() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}

// Package httpplay streams a HAS presentation over real HTTP in wall-
// clock time — the live counterpart of the virtual-time engine in
// internal/player. It fetches and parses real manifests (HLS playlists,
// DASH MPD + sidx, SmoothStreaming), reuses the adaptation and estimator
// interfaces, runs a single-connection sequential download loop with the
// same startup gate and pause/resume download controller, and produces
// the same QoE ingredients (downloads, stalls, startup delay).
//
// It exists so the library is usable against real origins (any server,
// including cmd/vodserve or an httptest server) and so the manifest
// codecs and origin HTTP handlers are exercised over actual sockets.
package httpplay

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/manifest/dash"
	"repro/internal/manifest/hls"
	"repro/internal/manifest/smooth"
	"repro/internal/media"
	"repro/internal/traffic"
)

// Config parameterises a live streaming session.
type Config struct {
	// ManifestURL is the absolute URL of the top-level manifest.
	ManifestURL string
	// Client is the HTTP client (nil = http.DefaultClient). Wrap its
	// Transport with NewShaper to emulate a bandwidth limit.
	Client *http.Client
	// Algorithm selects tracks; nil defaults to ExoPlayer hysteresis.
	Algorithm adaptation.Algorithm
	// Estimator tracks throughput; nil defaults to an EWMA.
	Estimator adaptation.Estimator
	// StartupBufferSec and StartupSegments gate playback start.
	StartupBufferSec float64
	StartupSegments  int
	// StartupTrack is the first track index.
	StartupTrack int
	// PauseThresholdSec/ResumeThresholdSec drive the download controller.
	PauseThresholdSec, ResumeThresholdSec float64
	// MaxDuration caps the session wall time (0 = until media ends).
	MaxDuration time.Duration
	// Now is the clock (nil = time.Now); tests can speed it up.
	Now func() time.Time
	// Sleep waits (nil = time.Sleep).
	Sleep func(time.Duration)
}

// Download records one fetched segment.
type Download struct {
	// Type is video or audio.
	Type media.MediaType
	// Track and Index identify the segment.
	Track, Index int
	// Bytes is the body size actually read.
	Bytes int64
	// Took is the exchange duration.
	Took time.Duration
}

// Result summarises a live session.
type Result struct {
	// Presentation is the decoded manifest.
	Presentation *manifest.Presentation
	// Transactions is the HTTP log in the traffic analyzer's format
	// (document bodies included), with times relative to session start —
	// feed it to traffic.Analyze to run the paper's methodology over a
	// real HTTP session.
	Transactions []traffic.Transaction
	// Downloads lists fetched segments in order.
	Downloads []Download
	// StartupDelay is the wall time until playback began (-1 = never).
	StartupDelay time.Duration
	// StallTime is the cumulative rebuffering wall time.
	StallTime time.Duration
	// Stalls counts rebuffering events.
	Stalls int
	// PlayedMedia is the media seconds consumed.
	PlayedMedia float64
	// Bytes is the total payload downloaded.
	Bytes int64
}

// Play runs the session to completion.
func Play(cfg Config) (*Result, error) {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = adaptation.DefaultHysteresis()
	}
	if cfg.Estimator == nil {
		cfg.Estimator = adaptation.NewEWMA(0.4)
	}
	if cfg.StartupBufferSec <= 0 {
		cfg.StartupBufferSec = 4
	}
	if cfg.StartupSegments <= 0 {
		cfg.StartupSegments = 1
	}
	if cfg.PauseThresholdSec <= 0 {
		cfg.PauseThresholdSec = 30
	}
	if cfg.ResumeThresholdSec <= 0 {
		cfg.ResumeThresholdSec = cfg.PauseThresholdSec / 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	s := &liveSession{cfg: cfg}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return s.run()
}

type liveSession struct {
	cfg  Config
	base *url.URL
	pres *manifest.Presentation
	res  Result

	start       time.Time
	started     bool
	playBase    time.Time // wall time playback (re)started
	playedSoFar float64   // media seconds consumed before playBase
	nextVideo   int
	nextAudio   int
	bufVideoEnd float64 // contiguous downloaded media end
	bufAudioEnd float64
	lastTrack   int
}

// loadManifest fetches and decodes the top-level manifest plus whatever
// companion documents the protocol needs (media playlists, sidx boxes).
func (s *liveSession) loadManifest() error {
	u, err := url.Parse(s.cfg.ManifestURL)
	if err != nil {
		return fmt.Errorf("httpplay: %w", err)
	}
	s.base = u
	body, _, err := s.get(s.cfg.ManifestURL, -1, -1)
	if err != nil {
		return err
	}
	name := strings.Trim(strings.TrimSuffix(u.Path, lastElement(u.Path)), "/")
	text := string(body)
	switch {
	case strings.HasPrefix(strings.TrimSpace(text), "#EXTM3U"):
		variants, err := hls.ParseMaster(text)
		if err != nil {
			return err
		}
		bodies := map[string]string{}
		for _, v := range variants {
			b, _, err := s.get(s.resolve(v.URI), -1, -1)
			if err != nil {
				return err
			}
			bodies[v.URI] = string(b)
		}
		s.pres, err = hls.Decode(name, text, bodies)
		return err
	case strings.Contains(text, "<MPD"):
		// Learn the index ranges from the MPD, fetch each track's sidx
		// with ranged requests, then decode the full presentation.
		ranges, err := dash.IndexRanges(body)
		if err != nil {
			return err
		}
		sidxBodies := map[string][]byte{}
		for mediaURL, rng := range ranges {
			b, _, err := s.get(s.resolve(mediaURL), rng[0], rng[1])
			if err != nil {
				return err
			}
			sidxBodies[mediaURL] = b
		}
		s.pres, err = dash.Decode(name, body, sidxBodies)
		return err
	case strings.Contains(text, "<SmoothStreamingMedia"):
		s.pres, err = smooth.Decode(name, body)
		return err
	}
	return fmt.Errorf("httpplay: unrecognised manifest at %s", s.cfg.ManifestURL)
}

func (s *liveSession) run() (*Result, error) {
	s.start = s.cfg.Now()
	s.res.Presentation = s.pres
	s.res.StartupDelay = -1
	s.lastTrack = -1
	videoSegs := s.pres.Video[0].Segments
	for {
		if s.cfg.MaxDuration > 0 && s.cfg.Now().Sub(s.start) > s.cfg.MaxDuration {
			break
		}
		s.advancePlayback()
		if s.started && s.playhead() >= s.pres.Duration-1e-9 {
			break
		}
		// Download controller.
		occ := s.occupancy()
		if occ >= s.cfg.PauseThresholdSec {
			drain := occ - s.cfg.ResumeThresholdSec
			s.cfg.Sleep(time.Duration(drain * float64(time.Second)))
			continue
		}
		task := s.nextTask()
		if task < 0 {
			// Everything downloaded; wait for playback to finish.
			if !s.started {
				s.beginPlayback()
			}
			remain := s.pres.Duration - s.playhead()
			if remain <= 0 {
				break
			}
			s.cfg.Sleep(time.Duration(remain * float64(time.Second)))
			continue
		}
		if err := s.fetchSegment(media.MediaType(task), videoSegs); err != nil {
			return nil, err
		}
		s.maybeStart()
	}
	s.advancePlayback()
	return &s.res, nil
}

// nextTask returns 0 for video, 1 for audio, -1 when done.
func (s *liveSession) nextTask() int {
	vDone := s.nextVideo >= len(s.pres.Video[0].Segments)
	if len(s.pres.Audio) == 0 {
		if vDone {
			return -1
		}
		return int(media.TypeVideo)
	}
	aDone := s.nextAudio >= len(s.pres.Audio[0].Segments)
	switch {
	case vDone && aDone:
		return -1
	case vDone:
		return int(media.TypeAudio)
	case aDone:
		return int(media.TypeVideo)
	case s.bufAudioEnd < s.bufVideoEnd:
		return int(media.TypeAudio)
	default:
		return int(media.TypeVideo)
	}
}

func (s *liveSession) fetchSegment(t media.MediaType, videoSegs []manifest.Segment) error {
	var rend *manifest.Rendition
	var index int
	if t == media.TypeAudio {
		rend, index = s.pres.Audio[0], s.nextAudio
	} else {
		track := s.selectTrack()
		rend, index = s.pres.Video[track], s.nextVideo
		s.lastTrack = track
	}
	seg := rend.Segments[index]
	segURL := seg.URL
	rs, re := int64(-1), int64(-1)
	if segURL == "" {
		segURL = rend.MediaURL
		rs, re = seg.Offset, seg.Offset+seg.Length-1
	}
	t0 := s.cfg.Now()
	body, n, err := s.get(s.resolve(segURL), rs, re)
	if err != nil {
		return err
	}
	_ = body
	took := s.cfg.Now().Sub(t0)
	if t == media.TypeVideo {
		s.cfg.Estimator.Add(float64(n)*8, took.Seconds())
		s.nextVideo++
		s.bufVideoEnd = seg.Start + seg.Duration
	} else {
		s.nextAudio++
		s.bufAudioEnd = seg.Start + seg.Duration
	}
	s.res.Bytes += n
	s.res.Downloads = append(s.res.Downloads, Download{Type: t, Track: rend.ID, Index: index, Bytes: n, Took: took})
	return nil
}

func (s *liveSession) selectTrack() int {
	var declared []float64
	for _, r := range s.pres.Video {
		declared = append(declared, r.DeclaredBitrate)
	}
	return s.cfg.Algorithm.Select(adaptation.Context{
		Declared:        declared,
		SegmentDuration: s.pres.Video[0].SegmentDuration,
		SegmentCount:    len(s.pres.Video[0].Segments),
		NextIndex:       s.nextVideo,
		BufferSec:       s.occupancy(),
		EstimateBps:     s.cfg.Estimator.Estimate(),
		LastTrack:       s.lastTrack,
		StartupTrack:    s.cfg.StartupTrack,
	})
}

// playhead returns the media position in seconds.
func (s *liveSession) playhead() float64 {
	if !s.started {
		return 0
	}
	return s.playedSoFar + s.cfg.Now().Sub(s.playBase).Seconds()
}

func (s *liveSession) bufferedEnd() float64 {
	end := s.bufVideoEnd
	if len(s.pres.Audio) > 0 && s.bufAudioEnd < end {
		end = s.bufAudioEnd
	}
	return end
}

func (s *liveSession) occupancy() float64 {
	occ := s.bufferedEnd() - s.playhead()
	if occ < 0 {
		return 0
	}
	return occ
}

// advancePlayback clamps the playhead to the buffered range, accounting
// stalled wall time.
func (s *liveSession) advancePlayback() {
	if !s.started {
		return
	}
	ph := s.playhead()
	if end := s.bufferedEnd(); ph > end {
		// Playback caught the buffer edge some wall time ago: everything
		// past `end` was a stall. Sub-50 ms gaps are clock noise, not
		// user-visible rebuffering.
		stalled := time.Duration((ph - end) * float64(time.Second))
		if stalled >= 50*time.Millisecond {
			s.res.StallTime += stalled
			s.res.Stalls++
		}
		s.playedSoFar = end
		s.playBase = s.cfg.Now()
		ph = end
	}
	s.res.PlayedMedia = ph
}

func (s *liveSession) maybeStart() {
	if s.started {
		return
	}
	segs := s.nextVideo
	if len(s.pres.Audio) > 0 && s.nextAudio < segs {
		segs = s.nextAudio
	}
	if s.bufferedEnd() >= s.cfg.StartupBufferSec && segs >= s.cfg.StartupSegments {
		s.beginPlayback()
	}
}

func (s *liveSession) beginPlayback() {
	s.started = true
	s.playBase = s.cfg.Now()
	s.res.StartupDelay = s.cfg.Now().Sub(s.start)
}

// get fetches a URL (optionally ranged), records the exchange in the
// traffic log, and returns body bytes and size.
func (s *liveSession) get(u string, rs, re int64) ([]byte, int64, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("httpplay: %w", err)
	}
	if rs >= 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", rs, re))
	}
	t0 := s.cfg.Now()
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("httpplay: GET %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, 0, fmt.Errorf("httpplay: GET %s: %s", u, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("httpplay: GET %s: %w", u, err)
	}
	t1 := s.cfg.Now()
	tx := traffic.Transaction{
		Start:  t0.Sub(s.logEpoch()).Seconds(),
		End:    t1.Sub(s.logEpoch()).Seconds(),
		Method: http.MethodGet,
		URL:    pathOf(u),
		Bytes:  int64(len(body)),
	}
	tx.RangeStart, tx.RangeEnd = rs, re
	if rs < 0 {
		tx.RangeStart, tx.RangeEnd = -1, -1
	}
	if isDocument(body) {
		tx.Body = append([]byte(nil), body...)
	}
	s.res.Transactions = append(s.res.Transactions, tx)
	return body, int64(len(body)), nil
}

// logEpoch anchors transaction timestamps; before run() starts it falls
// back to the first observed instant.
func (s *liveSession) logEpoch() time.Time {
	if s.start.IsZero() {
		s.start = s.cfg.Now()
	}
	return s.start
}

// pathOf strips scheme and host so the log matches the analyzer's
// path-based lookups.
func pathOf(u string) string {
	if parsed, err := url.Parse(u); err == nil {
		return parsed.Path
	}
	return u
}

// isDocument reports whether a body is manifest-level metadata (playlist,
// MPD, Smooth manifest, or sidx box) that the analyzer needs verbatim.
func isDocument(body []byte) bool {
	if len(body) >= 8 && string(body[4:8]) == "sidx" {
		return true
	}
	head := body
	if len(head) > 512 {
		head = head[:512]
	}
	s := string(head)
	return strings.HasPrefix(strings.TrimSpace(s), "#EXTM3U") ||
		strings.Contains(s, "<MPD") || strings.Contains(s, "<?xml") ||
		strings.Contains(s, "<SmoothStreamingMedia")
}

// resolve makes a presentation-relative URL absolute.
func (s *liveSession) resolve(ref string) string {
	u, err := s.base.Parse(ref)
	if err != nil {
		return ref
	}
	return u.String()
}

func lastElement(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

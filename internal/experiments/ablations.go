package experiments

import (
	"context"
	"fmt"

	"repro/internal/adaptation"
	"repro/internal/energy"
	"repro/internal/expcache"
	"repro/internal/media"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/qoe"
	"repro/internal/replacement"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/textplot"
)

// The paper defers several quantitative questions to future work or
// side remarks; these ablations answer them with the same apparatus:
//
//	abl_energy     §3.3.2 — pause/resume gap vs radio energy
//	abl_segdur     §3.1   — segment duration tradeoff
//	abl_split      §3.2   — sub-segment split-point sensitivity (D3)
//	abl_srcap      §4.1.3 — SR cap-threshold sweep
//	abl_algorithms §5     — adaptation algorithm shoot-out
//	abl_recovery   §4.3   — stall-recovery gating

// AblEnergy quantifies §3.3.2's energy remark: services whose pause and
// resume thresholds sit within the LTE RRC demotion timer keep the radio
// in its high-power state through every download pause; widening the gap
// beyond the timer lets the radio demote and saves energy.
func AblEnergy(ctx context.Context) ([]*textplot.Table, []string, error) {
	model := energy.DefaultLTE()
	t := &textplot.Table{
		Title: "Ablation §3.3.2 — download-control thresholds vs radio energy (10 Mbit/s, 600 s)",
		Note:  fmt.Sprintf("LTE model: demotion timer %.0f s, active %.1f W, tail %.1f W, idle %.0f mW", model.DemotionTimer, model.ActivePower, model.TailPower, model.IdlePower*1e3),
		Header: []string{"service", "pause−resume gap (s)", "demotions", "high-power share",
			"energy (J)", "energy with gap=25 s", "saving"},
	}
	p := netem.Constant("c10", 10e6, 600)
	for _, svc := range allServices() {
		org, err := serviceOrigin(svc)
		if err != nil {
			return nil, nil, err
		}
		res, err := expcache.Run(svc.Player, org, p, 600, nil)
		if err != nil {
			return nil, nil, err
		}
		u := model.Analyze(res.Transactions, res.EndTime)

		// What-if: widen the gap past the demotion timer by lowering the
		// resume threshold (same pause threshold, same QoE headroom).
		wide := svc.Player
		wide.ResumeThresholdSec = wide.PauseThresholdSec - 25
		if wide.ResumeThresholdSec < 4 {
			wide.ResumeThresholdSec = 4
		}
		res2, err := expcache.Run(wide, org, p, 600, nil)
		if err != nil {
			return nil, nil, err
		}
		u2 := model.Analyze(res2.Transactions, res2.EndTime)

		gap := svc.Player.PauseThresholdSec - svc.Player.ResumeThresholdSec
		saving := 1 - u2.Joules/u.Joules
		t.AddRow(svc.Name,
			fmt.Sprintf("%.0f", gap),
			fmt.Sprintf("%d", u.Demotions),
			textplot.Pct(u.HighPowerShare()),
			fmt.Sprintf("%.0f", u.Joules),
			fmt.Sprintf("%.0f", u2.Joules),
			textplot.Pct(saving),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// AblSegDur explores §3.1's deferred tradeoff: shorter segments adapt at
// finer granularity (less low-track time, fewer startup stalls) but cost
// more requests (per-request latency overhead); long segments amortise
// requests but react slowly.
func AblSegDur(ctx context.Context) ([]*textplot.Table, []string, error) {
	t := &textplot.Table{
		Title:  "Ablation §3.1 — segment duration tradeoff (ExoPlayer model, 14 profiles, medians)",
		Header: []string{"segment dur", "requests", "avg bitrate (Mbps)", "stall s", "switches", "low-track share (5 low profiles)"},
	}
	for _, segDur := range []float64{2, 4, 6, 10} {
		org, err := exoContent(segDur, 55)
		if err != nil {
			return nil, nil, err
		}
		var reqs, rate, stall, switches []float64
		var low []float64
		for _, p := range cellular() {
			cfg := exoPlayer(fmt.Sprintf("seg%.0f", segDur))
			res, err := expcache.Run(cfg, org, p, 600, nil)
			if err != nil {
				return nil, nil, err
			}
			rep := qoe.FromResult(res)
			reqs = append(reqs, float64(len(res.Transactions)))
			rate = append(rate, rep.AvgBitrate)
			stall = append(stall, rep.StallSec)
			switches = append(switches, float64(rep.Switches))
			low = append(low, lowTrackShare(res, 2))
		}
		t.AddRow(fmt.Sprintf("%.0f s", segDur),
			fmt.Sprintf("%.0f", textplot.Median(reqs)),
			textplot.Mbps(textplot.Median(rate)),
			textplot.Secs(textplot.Median(stall)),
			fmt.Sprintf("%.0f", textplot.Median(switches)),
			textplot.Pct(textplot.Mean(low[:5])),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// AblSplit quantifies §3.2's split-point remark on D3. On a
// work-conserving shared link split points are irrelevant (bandwidth
// redistributes to unfinished parts), so the ablation adds heterogeneous
// per-connection bottlenecks (4 / 1.5 / 0.8 Mbit/s ceilings): a segment
// now completes only when its slowest part does, and pushing bytes onto
// the capped connections (positive skew) hurts, while weighting the fast
// connection (negative skew, approximating a bandwidth-proportional
// split) helps — exactly the paper's "split point shall be selected
// based on per connection bandwidth".
func AblSplit(ctx context.Context) ([]*textplot.Table, []string, error) {
	d3 := services.ByName("D3")
	org, err := serviceOrigin(d3)
	if err != nil {
		return nil, nil, err
	}
	t := &textplot.Table{
		Title:  "Ablation §3.2 — D3 split points under per-connection bottlenecks (profiles 4–7, medians)",
		Note:   "connection rate ceilings 4 / 1.5 / 0.8 Mbit/s; skew −0.4 ≈ bandwidth-proportional, 0 = equal, >0 inverted",
		Header: []string{"split skew", "avg bitrate (Mbps)", "stall s", "startup (s)", "median segment fetch (s)"},
	}
	netCfg := simnet.DefaultConfig()
	netCfg.ConnCapSequence = []float64{4e6, 1.5e6, 0.8e6}
	for _, skew := range []float64{-0.4, 0, 1, 2} {
		var rate, stall, startup, fetch []float64
		for _, p := range cellular()[3:7] {
			cfg := d3.Player
			cfg.SessionDuration = 600
			cfg.SplitSkew = skew
			// RunNet keys the cache on the custom netCfg (the split-point
			// ConnCapSequence) alongside the resolved player config.
			res, err := expcache.RunNet(cfg, org, p, netCfg)
			if err != nil {
				return nil, nil, err
			}
			rep := qoe.FromResult(res)
			rate = append(rate, rep.AvgBitrate)
			stall = append(stall, rep.StallSec)
			startup = append(startup, rep.StartupDelay)
			var times []float64
			for _, d := range res.Downloads {
				if d.End > 0 {
					times = append(times, d.End-d.Start)
				}
			}
			fetch = append(fetch, textplot.Median(times))
		}
		t.AddRow(fmt.Sprintf("%+.1f", skew),
			textplot.Mbps(textplot.Median(rate)),
			textplot.Secs(textplot.Median(stall)),
			textplot.Secs(textplot.Median(startup)),
			fmt.Sprintf("%.2f", textplot.Median(fetch)),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// AblSRCap sweeps the §4.1.3 replacement cap: which rung to stop
// replacing at, trading wasted data against low-track playtime ("further
// work is needed in fine tuning the threshold selection").
func AblSRCap(ctx context.Context) ([]*textplot.Table, []string, error) {
	org, err := exoContent(4, 42)
	if err != nil {
		return nil, nil, err
	}
	t := &textplot.Table{
		Title:  "Ablation §4.1.3 — SR cap threshold sweep (14 profiles, medians)",
		Header: []string{"cap rung", "avg bitrate (Mbps)", "Δdata vs no SR", "waste share", "low-track share (5 low profiles)"},
	}
	type agg struct{ rate, data, waste, low []float64 }
	run := func(cap int) (agg, error) {
		var a agg
		for _, p := range cellular() {
			cfg := exoPlayer("srcap")
			if cap >= -1 {
				cfg.Replacement = replacement.PerSegment{MinBufferSec: 30, CapTrack: cap}
				cfg.MidBufferDiscard = true
			}
			res, err := expcache.Run(cfg, org, p, 600, nil)
			if err != nil {
				return a, err
			}
			st := srStatsFromResult(res)
			a.rate = append(a.rate, st.avgBitrate)
			a.data = append(a.data, st.dataBytes)
			a.waste = append(a.waste, st.wasted/st.dataBytes)
			a.low = append(a.low, lowTrackShare(res, 2))
		}
		return a, nil
	}
	base, err := run(-2) // no SR at all
	if err != nil {
		return nil, nil, err
	}
	addRow := func(label string, a agg) {
		var dData []float64
		for i := range a.data {
			dData = append(dData, a.data[i]/base.data[i]-1)
		}
		t.AddRow(label,
			textplot.Mbps(textplot.Median(a.rate)),
			textplot.Pct(textplot.Median(dData)),
			textplot.Pct(textplot.Median(a.waste)),
			textplot.Pct(textplot.Mean(a.low[:5])),
		)
	}
	addRow("no SR", base)
	for _, cap := range []int{1, 2, 3, 4} {
		a, err := run(cap)
		if err != nil {
			return nil, nil, err
		}
		addRow(fmt.Sprintf("≤%d", cap), a)
	}
	uncapped, err := run(-1)
	if err != nil {
		return nil, nil, err
	}
	addRow("uncapped", uncapped)
	return []*textplot.Table{t}, nil, nil
}

// AblAlgorithms races the adaptation algorithms of the literature on
// identical content and traces: the deployed throughput rules, ExoPlayer
// hysteresis, BBA, FESTIVE and probe-and-adapt.
func AblAlgorithms(ctx context.Context) ([]*textplot.Table, []string, error) {
	org, err := exoContent(4, 31)
	if err != nil {
		return nil, nil, err
	}
	algos := []struct {
		name string
		mk   func() adaptation.Algorithm
		est  func() adaptation.Estimator
	}{
		{"throughput 0.75", func() adaptation.Algorithm { return adaptation.Throughput{Factor: 0.75} }, nil},
		{"ExoPlayer hysteresis", func() adaptation.Algorithm { return adaptation.DefaultHysteresis() }, nil},
		{"buffer-based (BBA)", func() adaptation.Algorithm { return adaptation.BufferBased{Reservoir: 8, Cushion: 40} }, nil},
		{"FESTIVE", func() adaptation.Algorithm { return adaptation.NewFestive() },
			func() adaptation.Estimator { return adaptation.NewSlidingHarmonic(10) }},
		{"probe-and-adapt", func() adaptation.Algorithm { return adaptation.ProbeAdapt{} }, nil},
	}
	t := &textplot.Table{
		Title:  "Ablation — adaptation algorithms (ExoPlayer-model player, 14 profiles, medians)",
		Header: []string{"algorithm", "avg bitrate (Mbps)", "stall s", "switches", "low-track share (5 low profiles)"},
	}
	type job struct{ ai, pi int }
	var jobs []job
	for ai := range algos {
		for pi := range cellular() {
			jobs = append(jobs, job{ai, pi})
		}
	}
	type stats struct{ rate, stall, switches, low float64 }
	perRun, err := sweep(ctx, jobs, func(j job) (stats, error) {
		a := algos[j.ai]
		cfg := exoPlayer(a.name)
		cfg.Algorithm = a.mk()
		if a.est != nil {
			cfg.Estimator = a.est()
		}
		res, err := expcache.Run(cfg, org, cellular()[j.pi], 600, nil)
		if err != nil {
			return stats{}, err
		}
		rep := qoe.FromResult(res)
		return stats{rep.AvgBitrate, rep.StallSec, float64(rep.Switches), lowTrackShare(res, 2)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	nProfiles := len(cellular())
	for ai, a := range algos {
		var rate, stall, switches, low []float64
		for pi := 0; pi < nProfiles; pi++ {
			s := perRun[ai*nProfiles+pi]
			rate = append(rate, s.rate)
			stall = append(stall, s.stall)
			switches = append(switches, s.switches)
			low = append(low, s.low)
		}
		t.AddRow(a.name,
			textplot.Mbps(textplot.Median(rate)),
			textplot.Secs(textplot.Median(stall)),
			fmt.Sprintf("%.0f", textplot.Median(switches)),
			textplot.Pct(textplot.Mean(low[:5])),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// AblRecovery applies §4.3's closing remark: the startup suggestions
// (2–3 segments before playing) also apply to stall recovery. H5 — whose
// high bottom track makes it stall on the lowest profiles — is rerun
// with 1-, 2- and 3-segment recovery gates: a larger gate trades a
// longer individual rebuffer for fewer immediate re-stalls.
func AblRecovery(ctx context.Context) ([]*textplot.Table, []string, error) {
	h5 := services.ByName("H5")
	org, err := serviceOrigin(h5)
	if err != nil {
		return nil, nil, err
	}
	t := &textplot.Table{
		Title:  "Ablation §4.3 — H5 stall recovery gate (profiles 1–3)",
		Header: []string{"recovery gate", "stalls", "repeat stalls (<20 s apart)", "total stall s", "mean stall gap (s)"},
	}
	for _, nseg := range []int{1, 2, 3} {
		stalls, repeats := 0, 0
		var stallSec, gaps []float64
		for _, p := range cellular()[:3] {
			res, err := expcache.Run(h5.Player, org, p, 600, func(c *player.Config) {
				c.RecoverySec = h5.Media.SegmentDuration * float64(nseg)
				c.RecoverySegments = nseg
			})
			if err != nil {
				return nil, nil, err
			}
			stalls += len(res.Stalls)
			stallSec = append(stallSec, res.TotalStall())
			for i := 1; i < len(res.Stalls); i++ {
				gap := res.Stalls[i].Start - res.Stalls[i-1].End
				gaps = append(gaps, gap)
				if gap < 20 {
					repeats++
				}
			}
		}
		t.AddRow(fmt.Sprintf("%d segment(s)", nseg),
			fmt.Sprintf("%d", stalls),
			fmt.Sprintf("%d", repeats),
			textplot.Secs(textplot.Mean(stallSec)*3),
			textplot.Secs(textplot.Mean(gaps)),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// AblAbandon quantifies the other side of §3.3.2's pausing-threshold
// tradeoff: "a high pausing threshold … may lead to more data wastage
// when users abort the playback". Sessions are cut off mid-stream and
// the downloaded-but-never-displayed bytes are charged as waste.
func AblAbandon(ctx context.Context) ([]*textplot.Table, []string, error) {
	base := services.ByName("H1")
	org, err := serviceOrigin(base)
	if err != nil {
		return nil, nil, err
	}
	t := &textplot.Table{
		Title: "Ablation §3.3.2 — pausing threshold vs data wasted on abandonment",
		Note:  "H1's player with varied thresholds; the user abandons after 120 s / 300 s (medians over profiles 4–9)",
		Header: []string{"pause/resume (s)", "unwatched MB @120 s", "unwatched share @120 s",
			"unwatched MB @300 s", "stall s (full session)"},
	}
	for _, thr := range []struct{ pause, resume float64 }{
		{30, 20}, {90, 80}, {180, 170},
	} {
		var w120, s120, w300, stalls []float64
		for _, p := range cellular()[3:9] {
			for _, cut := range []float64{120, 300} {
				res, err := expcache.Run(base.Player, org, p, cut, func(c *player.Config) {
					c.PauseThresholdSec = thr.pause
					c.ResumeThresholdSec = thr.resume
					c.Replacement = nil // isolate the threshold effect from SR
				})
				if err != nil {
					return nil, nil, err
				}
				wasted := unwatchedBytes(res)
				if cut == 120 {
					w120 = append(w120, wasted/1e6)
					s120 = append(s120, wasted/res.TotalBytes)
				} else {
					w300 = append(w300, wasted/1e6)
				}
			}
			full, err := expcache.Run(base.Player, org, p, 600, func(c *player.Config) {
				c.PauseThresholdSec = thr.pause
				c.ResumeThresholdSec = thr.resume
				c.Replacement = nil
			})
			if err != nil {
				return nil, nil, err
			}
			stalls = append(stalls, full.TotalStall())
		}
		t.AddRow(fmt.Sprintf("%.0f/%.0f", thr.pause, thr.resume),
			fmt.Sprintf("%.1f", textplot.Median(w120)),
			textplot.Pct(textplot.Median(s120)),
			fmt.Sprintf("%.1f", textplot.Median(w300)),
			textplot.Secs(textplot.Median(stalls)),
		)
	}
	return []*textplot.Table{t}, nil, nil
}

// unwatchedBytes sums media bytes downloaded but never displayed before
// the session ended: video segments that never reached the screen plus
// audio buffered past the final playhead.
func unwatchedBytes(res *player.Result) float64 {
	displayed := map[int]bool{}
	for i, tr := range res.Displayed {
		if tr >= 0 {
			displayed[i] = true
		}
	}
	playhead := 0.0
	if n := len(res.Samples); n > 0 {
		playhead = res.Samples[n-1].Playhead
	}
	w := 0.0
	for _, d := range res.Downloads {
		if d.End == 0 {
			continue
		}
		switch d.Type {
		case media.TypeVideo:
			if !displayed[d.Index] {
				w += d.Bytes
			}
		case media.TypeAudio:
			if float64(d.Index)*d.Duration >= playhead {
				w += d.Bytes
			}
		}
	}
	return w
}

// AblFairness runs the multi-client scenario behind the FESTIVE work the
// paper cites (§5): three identical players share one link; algorithms
// differ in how evenly and how fully they use it. Jain's index over the
// players' average bitrates measures fairness.
func AblFairness(ctx context.Context) ([]*textplot.Table, []string, error) {
	org, err := exoContent(4, 21)
	if err != nil {
		return nil, nil, err
	}
	const linkBps = 4.5e6
	type algo struct {
		name string
		mk   func() adaptation.Algorithm
		est  func() adaptation.Estimator
	}
	algos := []algo{
		{"throughput 0.75 (declared)", func() adaptation.Algorithm { return adaptation.Throughput{Factor: 0.75} }, nil},
		{"throughput 0.9 (actual)", func() adaptation.Algorithm { return adaptation.Throughput{Factor: 0.9, UseActual: true} }, nil},
		{"ExoPlayer hysteresis", func() adaptation.Algorithm { return adaptation.DefaultHysteresis() }, nil},
		{"buffer-based (BBA)", func() adaptation.Algorithm { return adaptation.BufferBased{Reservoir: 8, Cushion: 40} }, nil},
		{"FESTIVE", func() adaptation.Algorithm { return adaptation.NewFestive() },
			func() adaptation.Estimator { return adaptation.NewSlidingHarmonic(10) }},
	}
	t := &textplot.Table{
		Title: "Ablation — three players sharing a 4.5 Mbit/s link (600 s)",
		Note:  "under max-min fair link sharing every algorithm is bitrate-fair (Jain ≈ 1); they differ in utilisation, stability and stalls",
		Header: []string{"algorithm", "mean avg bitrate (Mbps)", "Jain fairness", "link utilisation",
			"switches/player", "stall s/player"},
	}
	rows, err := sweep(ctx, algos, func(a algo) ([]string, error) {
		net := simnet.New(simnet.DefaultConfig(), netem.Constant("shared", linkBps, 600))
		group := player.NewGroup()
		for i := 0; i < 3; i++ {
			cfg := exoPlayer(fmt.Sprintf("%s#%d", a.name, i))
			cfg.Algorithm = a.mk()
			if a.est != nil {
				cfg.Estimator = a.est()
			}
			cfg.ExposeSegmentSizes = true
			// Stagger the players (different startup tracks and buffer
			// targets) so unfairness has room to appear — identical
			// deterministic players would stay in lockstep.
			cfg.StartupTrack = i
			cfg.PauseThresholdSec = 60 + 15*float64(i)
			cfg.ResumeThresholdSec = cfg.PauseThresholdSec - 15
			sess, err := player.NewSession(cfg, org, net)
			if err != nil {
				return nil, err
			}
			if err := group.Add(sess); err != nil {
				return nil, err
			}
		}
		results := group.Run()
		var rates, switches, stalls []float64
		var bytes float64
		var endTime float64
		for _, res := range results {
			rep := qoe.FromResult(res)
			rates = append(rates, rep.AvgBitrate)
			switches = append(switches, float64(rep.Switches))
			stalls = append(stalls, rep.StallSec)
			bytes += res.TotalBytes
			if res.EndTime > endTime {
				endTime = res.EndTime
			}
		}
		return []string{
			a.name,
			textplot.Mbps(textplot.Mean(rates)),
			fmt.Sprintf("%.3f", jain(rates)),
			textplot.Pct(bytes * 8 / (endTime * linkBps)),
			fmt.Sprintf("%.0f", textplot.Mean(switches)),
			textplot.Secs(textplot.Mean(stalls)),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*textplot.Table{t}, nil, nil
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²).
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

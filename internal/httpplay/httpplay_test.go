package httpplay

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/adaptation"
	"repro/internal/manifest"
	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/traffic"
)

func serveClip(t *testing.T, proto manifest.Protocol, addr manifest.Addressing, separateAudio bool) (*httptest.Server, *origin.Origin) {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "clip", Duration: 6, SegmentDuration: 2,
		TargetBitrates: []float64{200e3, 400e3, 800e3},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		SeparateAudio: separateAudio, AudioSegmentDuration: 2,
		Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{Protocol: proto, Addressing: addr}))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(org)
	t.Cleanup(srv.Close)
	return srv, org
}

// fastClock compresses wall time so the live loop finishes instantly in
// tests while keeping the playback arithmetic intact.
type fastClock struct{ now time.Time }

func (c *fastClock) Now() time.Time        { return c.now }
func (c *fastClock) Sleep(d time.Duration) { c.now = c.now.Add(d) }

func playClip(t *testing.T, proto manifest.Protocol, addr manifest.Addressing, separateAudio bool) *Result {
	t.Helper()
	srv, org := serveClip(t, proto, addr, separateAudio)
	clock := &fastClock{now: time.Unix(0, 0)}
	res, err := Play(Config{
		ManifestURL:        srv.URL + org.Pres.ManifestURL(),
		Algorithm:          adaptation.Throughput{Factor: 0.75},
		StartupBufferSec:   2,
		PauseThresholdSec:  10,
		ResumeThresholdSec: 5,
		MaxDuration:        time.Minute,
		Now:                func() time.Time { return clock.now },
		Sleep:              clock.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPlayDASH(t *testing.T) {
	res := playClip(t, manifest.DASH, manifest.SidxRanges, true)
	if res.PlayedMedia < 5.9 {
		t.Fatalf("played %.1f s of a 6 s clip", res.PlayedMedia)
	}
	vid, aud := 0, 0
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo {
			vid++
		} else {
			aud++
		}
	}
	if vid != 3 || aud != 3 {
		t.Fatalf("downloaded %d video + %d audio segments", vid, aud)
	}
	if res.StartupDelay < 0 {
		t.Fatal("never started")
	}
}

func TestPlayHLS(t *testing.T) {
	res := playClip(t, manifest.HLS, 0, false)
	if res.PlayedMedia < 5.9 {
		t.Fatalf("played %.1f s", res.PlayedMedia)
	}
	if len(res.Downloads) != 3 {
		t.Fatalf("%d downloads", len(res.Downloads))
	}
}

func TestPlaySmooth(t *testing.T) {
	res := playClip(t, manifest.Smooth, 0, true)
	if res.PlayedMedia < 5.9 {
		t.Fatalf("played %.1f s", res.PlayedMedia)
	}
	if res.Presentation.Protocol != manifest.Smooth {
		t.Fatal("wrong protocol decoded")
	}
}

// TestPlayAdaptsUp runs in real time over a shaped link (a fake clock
// would make transfers instantaneous and starve the estimator), using a
// sub-2-second clip so the test stays fast.
func TestPlayAdaptsUp(t *testing.T) {
	v, err := media.Generate(media.Config{
		Name: "mini", Duration: 1.6, SegmentDuration: 0.4,
		TargetBitrates: []float64{200e3, 400e3, 800e3},
		Encoding:       media.CBR, DeclaredPolicy: media.DeclarePeak,
		Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := origin.New(manifest.Build(v, manifest.BuildOptions{
		Protocol: manifest.DASH, Addressing: manifest.SidxRanges,
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(org)
	defer srv.Close()
	client := &http.Client{Transport: NewShaper(http.DefaultTransport, 5e6)}
	res, err := Play(Config{
		ManifestURL:        srv.URL + org.Pres.ManifestURL(),
		Client:             client,
		Algorithm:          adaptation.Throughput{Factor: 0.75},
		StartupBufferSec:   0.4,
		PauseThresholdSec:  10,
		ResumeThresholdSec: 5,
		MaxDuration:        20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Downloads[len(res.Downloads)-1]
	if last.Track == 0 {
		t.Fatalf("never adapted above the bottom track: %+v", res.Downloads)
	}
}

func TestPlayBadManifestURL(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, err := Play(Config{ManifestURL: srv.URL + "/x"}); err == nil {
		t.Fatal("expected error for missing manifest")
	}
}

func TestShaperLimitsThroughput(t *testing.T) {
	payload := make([]byte, 100<<10) // 100 KiB
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()
	shaper := NewShaper(http.DefaultTransport, 4e6) // 4 Mbit/s → 100 KiB ≈ 205 ms
	client := &http.Client{Transport: shaper}
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	buf := make([]byte, 32<<10)
	for {
		m, err := resp.Body.Read(buf)
		n += m
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	took := time.Since(start)
	if n != len(payload) {
		t.Fatalf("read %d bytes", n)
	}
	if took < 120*time.Millisecond {
		t.Fatalf("shaper too permissive: %v for 100 KiB at 4 Mbit/s", took)
	}
	if took > 2*time.Second {
		t.Fatalf("shaper too slow: %v", took)
	}
}

// TestMethodologyOverRealHTTP closes the paper's loop over real sockets:
// the live session's HTTP log feeds the traffic analyzer, which must
// recover exactly the segments the player fetched.
func TestMethodologyOverRealHTTP(t *testing.T) {
	for _, proto := range []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth} {
		res := playClip(t, proto, manifest.SidxRanges, proto != manifest.HLS)
		tr, err := traffic.Analyze("clip", res.Transactions)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if len(tr.Unmatched) != 0 {
			t.Fatalf("%v: %d unmatched transactions", proto, len(tr.Unmatched))
		}
		if len(tr.Segments) != len(res.Downloads) {
			t.Fatalf("%v: analyzer saw %d segments, player fetched %d", proto, len(tr.Segments), len(res.Downloads))
		}
		for i, s := range tr.Segments {
			if s.Bytes <= 0 {
				t.Fatalf("%v: segment %d has no bytes", proto, i)
			}
		}
	}
}

// TestShaperLowRateLargeRead: a read bigger than the token burst must not
// deadlock (regression for the strict-bucket pitfall).
func TestShaperLowRateLargeRead(t *testing.T) {
	payload := make([]byte, 48<<10)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()
	client := &http.Client{Transport: NewShaper(http.DefaultTransport, 1e6)} // burst 12.5 KiB < 16 KiB chunks
	done := make(chan struct{})
	go func() {
		resp, err := client.Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shaper deadlocked on a read larger than its burst")
	}
}

// Package probe re-derives Table 1 of the paper from the outside, using
// only black-box observations — the same methodology the paper applies to
// the proprietary apps: request rejection for the startup buffer
// (§3.3.1), traffic on/off analysis plus buffer inference for the
// download-control thresholds (§3.3.2), and constant-bandwidth runs for
// stability and aggressiveness (§3.3.3). Matching the probed values
// against the configured service models closes the loop on the
// methodology itself.
package probe

import (
	"fmt"
	"math"

	"repro/internal/expcache"
	"repro/internal/media"
	"repro/internal/modify"
	"repro/internal/netem"
	"repro/internal/player"
	"repro/internal/qoe"
	"repro/internal/services"
	"repro/internal/traffic"
	"repro/internal/uimon"
)

// StartupBuffer finds the minimal number of segments (and the video
// seconds they carry) the service needs before starting playback, by
// rejecting all segment requests after the first n and growing n.
func StartupBuffer(svc *services.Service, maxN int) (segments int, seconds float64, err error) {
	org, err := expcache.Origin(svc)
	if err != nil {
		return 0, 0, err
	}
	p := netem.Constant("probe10", 10e6, 120)
	for n := 1; n <= maxN; n++ {
		gate := modify.RejectAfter(n)
		// The RequestGate func is not fingerprintable, so these probe
		// sessions bypass the cache and run directly (counted as such).
		res, err := expcache.Run(svc.Player, org, p, 60, func(c *player.Config) {
			c.RequestGate = gate
		})
		if err != nil {
			return 0, 0, err
		}
		if res.StartupDelay >= 0 {
			// The startup buffer is the min of the buffered video and
			// audio durations (both gate playback for separate-audio
			// services).
			var vs, as float64
			hasAudio := false
			for _, d := range res.Downloads {
				if d.End == 0 {
					continue
				}
				if d.Type == media.TypeVideo {
					vs += d.Duration
				} else {
					as += d.Duration
					hasAudio = true
				}
			}
			secs := vs
			if hasAudio && as < vs {
				secs = as
			}
			return n, secs, nil
		}
	}
	return 0, 0, fmt.Errorf("probe: %s did not start within %d segments", svc.Name, maxN)
}

// Thresholds recovers the pausing and resuming buffer thresholds from the
// on/off download pattern of a 10 Mbit/s run, using traffic analysis and
// the §2.5 buffer inference — no simulator internals.
func Thresholds(svc *services.Service) (pause, resume float64, err error) {
	res, err := expcache.RunService(svc, netem.Constant("probe10", 10e6, 600), 600, nil)
	if err != nil {
		return 0, 0, err
	}
	tr, err := traffic.Analyze(svc.Name, res.Transactions)
	if err != nil {
		return 0, 0, err
	}
	inf := qoe.Infer(tr, uimon.FromResult(res))
	gaps := videoGaps(tr, 2)
	if len(gaps) == 0 {
		return 0, 0, fmt.Errorf("probe: %s shows no on/off download pattern", svc.Name)
	}
	var ps, rs, n float64
	for _, g := range gaps {
		ps += bufferAt(inf.Buffer, g.Start)
		rs += bufferAt(inf.Buffer, g.End)
		n++
	}
	return ps / n, rs / n, nil
}

// videoGaps returns download pauses considering video segments only
// (audio fetches are tiny and can fall inside a video pause without
// meaning the controller resumed).
func videoGaps(tr *traffic.Result, minGap float64) []traffic.OnOff {
	var vid []traffic.SegmentDownload
	for _, s := range tr.Segments {
		if s.Type == media.TypeVideo {
			vid = append(vid, s)
		}
	}
	return traffic.DownloadGaps(vid, minGap)
}

func bufferAt(points []qoe.BufferPoint, t float64) float64 {
	best, dist := 0.0, math.Inf(1)
	for _, p := range points {
		if d := math.Abs(p.T - t); d < dist {
			dist, best = d, p.VideoSec
		}
	}
	return best
}

// Steady describes the steady-state behaviour under constant bandwidth.
type Steady struct {
	// Bandwidth is the constant link rate probed, bits/s.
	Bandwidth float64
	// ConvergedDeclared is the declared bitrate displayed most of the
	// time in the second half of the session.
	ConvergedDeclared float64
	// DistinctTracks counts tracks displayed in the second half; a
	// stable player converges to 1 (§3.3.3).
	DistinctTracks int
	// Switches counts displayed switches in the second half.
	Switches int
}

// SteadyState streams the service at a constant bandwidth and summarises
// the second half of the session.
func SteadyState(svc *services.Service, bw float64) (Steady, error) {
	res, err := expcache.RunService(svc, netem.Constant(fmt.Sprintf("const%.0f", bw/1e6), bw, 600), 600, nil)
	if err != nil {
		return Steady{}, err
	}
	return steadyFromResult(res, bw), nil
}

func steadyFromResult(res *player.Result, bw float64) Steady {
	st := Steady{Bandwidth: bw}
	half := res.SegmentCount / 2
	seen := map[int]float64{}
	prev := -1
	lastPlayed := -1
	for i, tr := range res.Displayed {
		if tr >= 0 {
			lastPlayed = i
		}
		_ = i
	}
	from := lastPlayed / 2
	if from < half/8 {
		from = lastPlayed / 2
	}
	for i := from; i <= lastPlayed; i++ {
		tr := res.Displayed[i]
		if tr < 0 {
			continue
		}
		seen[tr] += res.SegmentDuration
		if prev >= 0 && tr != prev {
			st.Switches++
		}
		prev = tr
	}
	best, bestSec := -1, 0.0
	for tr, sec := range seen {
		if sec > bestSec {
			best, bestSec = tr, sec
		}
	}
	st.DistinctTracks = len(seen)
	if best >= 0 {
		st.ConvergedDeclared = res.Declared[best]
	}
	return st
}

// StartupTrack returns the declared bitrate of the first video segment a
// service fetches (§3.3.1: "each app consistently selects the same track
// level across different runs").
func StartupTrack(svc *services.Service) (float64, error) {
	res, err := expcache.RunService(svc, netem.Constant("probe5", 5e6, 120), 60, nil)
	if err != nil {
		return 0, err
	}
	for _, d := range res.Downloads {
		if d.Type == media.TypeVideo {
			return d.Declared, nil
		}
	}
	return 0, fmt.Errorf("probe: %s downloaded no video", svc.Name)
}

// Row is one service's black-box-probed Table 1 row.
type Row struct {
	// Service is the paper identifier.
	Service string
	// SegmentDuration is the video segment duration read from traffic.
	SegmentDuration float64
	// SeparateAudio reports separate audio tracks in the manifest.
	SeparateAudio bool
	// MaxConns is the peak number of concurrent transfers observed.
	MaxConns int
	// Persistent is inferred from the player configuration model of TCP
	// reuse (observable as handshake counts in real traffic).
	Persistent bool
	// StartupSegments and StartupBufferSec come from the rejection probe.
	StartupSegments  int
	StartupBufferSec float64
	// StartupBitrate is the declared bitrate of the first segment.
	StartupBitrate float64
	// PauseSec/ResumeSec are the probed download-control thresholds.
	PauseSec, ResumeSec float64
	// Stable reports convergence at constant bandwidth.
	Stable bool
	// Aggressive reports converged declared ≥ 90% of the link rate.
	Aggressive bool
}

// Table1 probes one service end to end.
func Table1(svc *services.Service) (Row, error) {
	row := Row{Service: svc.Name, Persistent: svc.Player.Persistent}

	// Structural facts from a short run's traffic.
	res, err := expcache.RunService(svc, netem.Constant("probe5", 5e6, 600), 90, nil)
	if err != nil {
		return row, err
	}
	tr, err := traffic.Analyze(svc.Name, res.Transactions)
	if err != nil {
		return row, err
	}
	row.SeparateAudio = len(tr.Presentation.Audio) > 0
	if len(tr.Presentation.Video) > 0 {
		for _, r := range tr.Presentation.Video {
			if r.SegmentDuration > row.SegmentDuration {
				row.SegmentDuration = r.SegmentDuration
			}
		}
	}
	row.MaxConns = maxConcurrent(res.Transactions)

	if row.StartupSegments, row.StartupBufferSec, err = StartupBuffer(svc, 64); err != nil {
		return row, err
	}
	if row.StartupBitrate, err = StartupTrack(svc); err != nil {
		return row, err
	}
	if row.PauseSec, row.ResumeSec, err = Thresholds(svc); err != nil {
		return row, err
	}

	st, err := SteadyState(svc, 2e6)
	if err != nil {
		return row, err
	}
	row.Stable = st.DistinctTracks <= 1 || st.Switches <= 1
	row.Aggressive = st.ConvergedDeclared >= 0.85*st.Bandwidth
	return row, nil
}

// maxConcurrent counts the peak number of overlapping transactions.
func maxConcurrent(txs []traffic.Transaction) int {
	type ev struct {
		t     float64
		delta int
	}
	var evs []ev
	for _, tx := range txs {
		if tx.Rejected {
			continue
		}
		evs = append(evs, ev{tx.Start, 1}, ev{tx.End, -1})
	}
	// insertion sort by time, ends before starts at equal times
	for i := 1; i < len(evs); i++ {
		//vodlint:allow floateq — sort tie-break on stored event times, intentionally exact
		for j := i; j > 0 && (evs[j].t < evs[j-1].t || (evs[j].t == evs[j-1].t && evs[j].delta < evs[j-1].delta)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

package fleet

import (
	"encoding/json"
	"math"

	"repro/internal/qoe"
)

// This file is the memory-bounded reduction layer: a fleet of any size
// folds into a fixed number of fixed-size accumulators (per service ×
// metric: one histogram + one online mean/variance), so a 100k-session
// run costs the same aggregate memory as a 100-session run. All merges
// happen in deterministic cell-index order (see Run), which makes the
// floating-point fold sequence — and therefore the report bytes —
// independent of the worker count.

// hist is a fixed-bin histogram over [Lo, Hi). Out-of-range samples are
// counted in Under/Over so totals are never silently lost.
type hist struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
}

func newHist(lo, hi float64, bins int) *hist {
	return &hist{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

func (h *hist) add(v float64) {
	if v < h.Lo || math.IsNaN(v) {
		h.Under++
		return
	}
	if v >= h.Hi {
		h.Over++
		return
	}
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard the v≈Hi float edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

func (h *hist) merge(o *hist) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
}

func (h *hist) total() int64 {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// quantile returns the p-th percentile (0..100) by walking the
// cumulative counts: Under samples sit at Lo, Over samples at Hi, and a
// bin resolves to its upper edge. Integer walk — fully deterministic.
func (h *hist) quantile(p float64) float64 {
	n := h.total()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(n)))
	if target < 1 {
		target = 1
	}
	cum := h.Under
	if cum >= target {
		return h.Lo
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.Lo + float64(i+1)*w
		}
	}
	return h.Hi
}

// welford is Welford's online mean/variance, merged pairwise with the
// Chan et al. update. Merge order is fixed by the caller.
type welford struct {
	N    int64
	Mean float64
	M2   float64
}

func (w *welford) add(v float64) {
	w.N++
	d := v - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (v - w.Mean)
}

func (w *welford) merge(o welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := float64(w.N + o.N)
	d := o.Mean - w.Mean
	w.Mean += d * float64(o.N) / n
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/n
	w.N += o.N
}

func (w *welford) std() float64 {
	if w.N < 2 {
		return 0
	}
	return math.Sqrt(w.M2 / float64(w.N-1))
}

// metricAgg pairs the exact online moments with a histogram for
// percentiles/CDFs — together a complete, fixed-size summary of one
// metric's population distribution.
type metricAgg struct {
	w welford
	h *hist
}

func (m *metricAgg) add(v float64) {
	m.w.add(v)
	m.h.add(v)
}

func (m *metricAgg) merge(o *metricAgg) {
	m.w.merge(o.w)
	m.h.merge(o.h)
}

// Histogram ranges. Bounds are part of the report schema: changing them
// changes the bytes (EngineVersion covers the cache side).
const (
	bitrateHiMbps = 10  // ladder tops sit well below 10 Mbit/s
	startupHiSec  = 30  // startup delays beyond 30 s land in Over
	switchesHiPM  = 12  // switches per playback minute
	utilHi        = 1.2 // >1 would mean a conservation violation
)

func newSvcMetrics() [4]metricAgg {
	return [4]metricAgg{
		{h: newHist(0, bitrateHiMbps, 40)}, // avg bitrate, Mbit/s
		{h: newHist(0, 1, 20)},             // stall ratio
		{h: newHist(0, startupHiSec, 30)},  // startup delay, s
		{h: newHist(0, switchesHiPM, 24)},  // switches per minute
	}
}

const (
	mBitrate = iota
	mStall
	mStartup
	mSwitches
)

// svcAgg accumulates one service's population.
type svcAgg struct {
	sessions int64 // every observed session of this service
	started  int64 // sessions that reached the first frame
	m        [4]metricAgg
}

func (s *svcAgg) merge(o *svcAgg) {
	s.sessions += o.sessions
	s.started += o.started
	for i := range s.m {
		s.m[i].merge(&o.m[i])
	}
}

// cellAgg is one cell's streaming fold: per-service metrics plus the
// cell-level fairness and utilization samples. bitrates is bounded by
// the cell size (ClientsPerCell), not the fleet size.
type cellAgg struct {
	svc       []svcAgg
	bitrates  []float64 // per started client, for the Jain index
	delivered float64   // bytes the shared edge actually carried
	offered   float64   // edge capacity integral over the cell run, bytes
}

func newCellAgg(nsvc int) *cellAgg {
	a := &cellAgg{svc: make([]svcAgg, nsvc)}
	for i := range a.svc {
		a.svc[i].m = newSvcMetrics()
	}
	return a
}

// observe folds one finished session. Sessions that never displayed a
// frame (StartupDelay < 0 — the viewer left before startup) count
// toward sessions but contribute no metric samples; the started/sessions
// ratio reports them.
func (a *cellAgg) observe(svcIdx int, rep qoe.Report) {
	sa := &a.svc[svcIdx]
	sa.sessions++
	if rep.StartupDelay < 0 {
		return
	}
	sa.started++
	sa.m[mBitrate].add(rep.AvgBitrate / 1e6)
	a.bitrates = append(a.bitrates, rep.AvgBitrate)
	if denom := rep.PlayedSec + rep.StallSec; denom > 0 {
		sa.m[mStall].add(rep.StallSec / denom)
	}
	sa.m[mStartup].add(rep.StartupDelay)
	if rep.PlayedSec > 0 {
		sa.m[mSwitches].add(float64(rep.Switches) / (rep.PlayedSec / 60))
	}
}

// finishCell records the cell-level samples once the simulation is
// done: delivered bytes (for utilization = delivered / offered) and the
// edge capacity integral in bytes.
func (a *cellAgg) finishCell(deliveredBytes, capacityIntegralBps float64) {
	a.delivered = deliveredBytes
	a.offered = capacityIntegralBps / 8
}

// fleetAgg folds cellAggs in cell-index order.
type fleetAgg struct {
	svc         []svcAgg
	fairness    metricAgg
	utilization metricAgg
	totalBytes  float64
	cellsMerged int
}

func newFleetAgg(nsvc int) *fleetAgg {
	a := &fleetAgg{
		svc:         make([]svcAgg, nsvc),
		fairness:    metricAgg{h: newHist(0, 1, 20)},
		utilization: metricAgg{h: newHist(0, utilHi, 24)},
	}
	for i := range a.svc {
		a.svc[i].m = newSvcMetrics()
	}
	return a
}

func (a *fleetAgg) merge(c *cellAgg) {
	for i := range a.svc {
		a.svc[i].merge(&c.svc[i])
	}
	if len(c.bitrates) > 0 {
		a.fairness.add(jain(c.bitrates))
	}
	if c.offered > 0 {
		a.utilization.add(c.delivered / c.offered)
	}
	a.totalBytes += c.delivered
	a.cellsMerged++
}

// jain computes Jain's fairness index: (Σx)² / (n·Σx²). 1 means every
// client achieved the same bitrate; 1/n means one client took it all.
func jain(xs []float64) float64 {
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1 // everyone equally got nothing
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Dist is the JSON form of one metric's population distribution.
type Dist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	P10   float64 `json:"p10"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	// Counts are the fixed histogram bins over [Lo, Hi); Under/Over
	// count the clipped tails.
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under,omitempty"`
	Over   int64   `json:"over,omitempty"`
}

func (m *metricAgg) dist() Dist {
	return Dist{
		Count:  m.w.N,
		Mean:   m.w.Mean,
		Std:    m.w.std(),
		P10:    m.h.quantile(10),
		P50:    m.h.quantile(50),
		P90:    m.h.quantile(90),
		Lo:     m.h.Lo,
		Hi:     m.h.Hi,
		Counts: m.h.Counts,
		Under:  m.h.Under,
		Over:   m.h.Over,
	}
}

// ServiceStats is one service's slice of the population.
type ServiceStats struct {
	Service         string `json:"service"`
	Sessions        int64  `json:"sessions"`
	Started         int64  `json:"started"`
	BitrateMbps     Dist   `json:"bitrate_mbps"`
	StallRatio      Dist   `json:"stall_ratio"`
	StartupDelaySec Dist   `json:"startup_delay_sec"`
	SwitchesPerMin  Dist   `json:"switches_per_min"`
}

// Report is the full population summary. Marshaling is struct-ordered
// and map-free, so the JSON bytes are a pure function of the normalized
// config.
type Report struct {
	Schema   int    `json:"schema"`
	Config   Config `json:"config"`
	Cells    int    `json:"cells"`
	Sessions int64  `json:"sessions"`
	Started  int64  `json:"started"`
	// TotalBytes is what the edge links actually carried (media +
	// documents + waste), summed over cells.
	TotalBytes float64 `json:"total_bytes"`
	// FairnessJain has one sample per cell: Jain's index over the
	// cell members' achieved bitrates.
	FairnessJain Dist `json:"fairness_jain"`
	// EdgeUtilization has one sample per cell: delivered bytes over the
	// edge capacity integral. Conservation bounds it by 1.
	EdgeUtilization Dist           `json:"edge_utilization"`
	Services        []ServiceStats `json:"services"`
}

func (a *fleetAgg) report(cfg Config, cells int) *Report {
	r := &Report{
		Schema:          1,
		Config:          cfg,
		Cells:           cells,
		TotalBytes:      a.totalBytes,
		FairnessJain:    a.fairness.dist(),
		EdgeUtilization: a.utilization.dist(),
		Services:        make([]ServiceStats, len(a.svc)),
	}
	for i := range a.svc {
		sa := &a.svc[i]
		r.Sessions += sa.sessions
		r.Started += sa.started
		r.Services[i] = ServiceStats{
			Service:         cfg.Services[i],
			Sessions:        sa.sessions,
			Started:         sa.started,
			BitrateMbps:     sa.m[mBitrate].dist(),
			StallRatio:      sa.m[mStall].dist(),
			StartupDelaySec: sa.m[mStartup].dist(),
			SwitchesPerMin:  sa.m[mSwitches].dist(),
		}
	}
	return r
}

// JSON renders the report deterministically (struct order, indented).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

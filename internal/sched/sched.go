// Package sched provides the single process-wide concurrency bound for
// simulation work. It started life inside internal/experiments (see the
// history in experiments/sched.go); the fleet subsystem runs thousands
// of cell simulations through the very same semaphore, so the scheduler
// now lives in its own package and both layers — experiment fan-out and
// fleet cell fan-out — draw from one pool.
//
// The usage contract that keeps nested fan-out deadlock-free:
//
//   - Top-level workers block in Acquire and hold the slot for the
//     duration of one unit of work (everything nested inside runs under
//     that slot).
//   - Nested fan-out (experiments' sweep, fleet's cell batches) spawns
//     helper goroutines only for slots obtained with the non-blocking
//     TryAcquire, and the caller always works inline under the slot it
//     already holds — so nested fan-out never waits on slots held by
//     its own ancestors, it just degrades to the serial loop.
//
// Concurrently executing workers are therefore bounded by the capacity
// (+1 when a fan-out is entered by a caller holding no slot, e.g. a
// direct call from a test), no matter how deeply fan-outs nest.
package sched

import (
	"context"
	"runtime"
)

// Scheduler is a counting semaphore bounding concurrent workers.
type Scheduler struct {
	slots chan struct{}
}

// New creates a scheduler with the given capacity (minimum 1).
func New(capacity int) *Scheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &Scheduler{slots: make(chan struct{}, capacity)}
}

// Global is the process-wide scheduler every subsystem shares by
// default. Tests swap their package-local reference to control
// parallelism independently of the machine's core count.
var Global = New(runtime.GOMAXPROCS(0))

// Acquire blocks until a slot is free or ctx is done.
func (s *Scheduler) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now.
func (s *Scheduler) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (s *Scheduler) Release() { <-s.slots }

// Capacity returns the total number of slots.
func (s *Scheduler) Capacity() int { return cap(s.slots) }

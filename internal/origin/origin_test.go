package origin

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/manifest"
	"repro/internal/manifest/sidx"
	"repro/internal/media"
)

func build(t *testing.T, proto manifest.Protocol, addr manifest.Addressing) *Origin {
	t.Helper()
	v, err := media.Generate(media.Config{
		Name: "o", Duration: 20, SegmentDuration: 4,
		TargetBitrates: []float64{300e3, 600e3},
		Encoding:       media.VBR, VBRSpread: 2, DeclaredPolicy: media.DeclarePeak,
		SeparateAudio: proto != manifest.HLS, AudioSegmentDuration: 2,
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	org, err := New(manifest.Build(v, manifest.BuildOptions{Protocol: proto, Addressing: addr}))
	if err != nil {
		t.Fatal(err)
	}
	return org
}

func TestDocumentLookups(t *testing.T) {
	org := build(t, manifest.HLS, 0)
	if _, ok := org.Document("/o/master.m3u8"); !ok {
		t.Fatal("master playlist missing")
	}
	if _, ok := org.Document(org.Pres.Video[0].PlaylistURL); !ok {
		t.Fatal("media playlist missing")
	}
	if _, ok := org.Document("/nope"); ok {
		t.Fatal("bogus document found")
	}
	dash := build(t, manifest.DASH, manifest.SidxRanges)
	if _, ok := dash.Document("/o/manifest.mpd"); !ok {
		t.Fatal("MPD missing")
	}
	if _, ok := dash.Sidx(dash.Pres.Video[0].MediaURL); !ok {
		t.Fatal("sidx missing")
	}
}

func TestServeHTTPDocumentsAndSegments(t *testing.T) {
	org := build(t, manifest.HLS, 0)
	srv := httptest.NewServer(org)
	defer srv.Close()

	body := get(t, srv.URL+"/o/master.m3u8", "")
	if !strings.HasPrefix(string(body), "#EXTM3U") {
		t.Fatalf("master body %q...", body[:10])
	}
	seg := org.Pres.Video[1].Segments[2]
	payload := get(t, srv.URL+seg.URL, "")
	if int64(len(payload)) != seg.Size {
		t.Fatalf("segment body %d bytes, want %d", len(payload), seg.Size)
	}
	// 404 for unknown paths.
	resp, err := http.Get(srv.URL + "/o/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", resp.StatusCode)
	}
}

func TestServeHTTPRangesAndSidx(t *testing.T) {
	org := build(t, manifest.DASH, manifest.SidxRanges)
	srv := httptest.NewServer(org)
	defer srv.Close()

	r := org.Pres.Video[0]
	// Ranged request for the sidx region must decode.
	rangeHdr := fmt.Sprintf("bytes=%d-%d", r.IndexOffset, r.IndexOffset+r.IndexLength-1)
	body := get(t, srv.URL+r.MediaURL, rangeHdr)
	box, err := sidx.Decode(body)
	if err != nil {
		t.Fatalf("sidx over HTTP: %v", err)
	}
	if len(box.References) != len(r.Segments) {
		t.Fatalf("sidx has %d refs, want %d", len(box.References), len(r.Segments))
	}
	// Ranged request for one segment returns exactly its bytes.
	seg := r.Segments[1]
	body = get(t, srv.URL+r.MediaURL, fmt.Sprintf("bytes=%d-%d", seg.Offset, seg.Offset+seg.Length-1))
	if int64(len(body)) != seg.Length {
		t.Fatalf("segment range %d bytes, want %d", len(body), seg.Length)
	}
	// HEAD reports the full virtual size (the paper used HEAD to learn
	// segment sizes for HLS/Smooth).
	req, _ := http.NewRequest(http.MethodHead, srv.URL+r.MediaURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	last := r.Segments[len(r.Segments)-1]
	if want := last.Offset + last.Length; resp.ContentLength != want {
		t.Fatalf("HEAD length %d, want %d", resp.ContentLength, want)
	}
}

func TestVirtualFileDeterministic(t *testing.T) {
	org := build(t, manifest.DASH, manifest.SidxRanges)
	srv := httptest.NewServer(org)
	defer srv.Close()
	r := org.Pres.Video[0]
	h := fmt.Sprintf("bytes=%d-%d", r.Segments[0].Offset, r.Segments[0].Offset+99)
	a := get(t, srv.URL+r.MediaURL, h)
	b := get(t, srv.URL+r.MediaURL, h)
	if string(a) != string(b) {
		t.Fatal("virtual file content not deterministic")
	}
}

func TestSmoothServing(t *testing.T) {
	org := build(t, manifest.Smooth, 0)
	srv := httptest.NewServer(org)
	defer srv.Close()
	body := get(t, srv.URL+"/o/Manifest", "")
	if !strings.Contains(string(body), "<SmoothStreamingMedia") {
		t.Fatal("manifest body wrong")
	}
	seg := org.Pres.Video[0].Segments[0]
	payload := get(t, srv.URL+seg.URL, "")
	if int64(len(payload)) != seg.Size {
		t.Fatalf("fragment %d bytes, want %d", len(payload), seg.Size)
	}
}

func get(t *testing.T, url, rangeHdr string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestObfuscatedManifest(t *testing.T) {
	v, err := media.Generate(media.Config{
		Name: "enc", Duration: 20, SegmentDuration: 4,
		TargetBitrates: []float64{300e3}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres := manifest.Build(v, manifest.BuildOptions{Protocol: manifest.DASH, Addressing: manifest.SidxRanges})
	plain, err := New(pres)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewWithOptions(pres, Options{ObfuscateManifest: true})
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := plain.Document(pres.ManifestURL())
	eb, _ := enc.Document(pres.ManifestURL())
	if len(pb) != len(eb) {
		t.Fatalf("obfuscation changed length %d → %d", len(pb), len(eb))
	}
	if strings.Contains(string(eb), "<MPD") {
		t.Fatal("obfuscated MPD still sniffable")
	}
	// The sidx stays readable.
	if _, ok := enc.Sidx(pres.Video[0].MediaURL); !ok {
		t.Fatal("sidx missing under obfuscation")
	}
}

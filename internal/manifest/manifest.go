// Package manifest defines a protocol-neutral model of a HAS media
// presentation — the information a manifest conveys — and builds it from
// generated content. The three wire formats the studied services use are
// implemented in the sub-packages hls (HTTP Live Streaming playlists),
// dash (MPEG-DASH MPD + ISO-BMFF sidx) and smooth (SmoothStreaming), each
// round-tripping to and from this model.
package manifest

import (
	"fmt"

	"repro/internal/media"
)

// Protocol identifies the HAS protocol family a service uses.
type Protocol int

const (
	// HLS is Apple HTTP Live Streaming (services H1–H6).
	HLS Protocol = iota
	// DASH is MPEG Dynamic Adaptive Streaming over HTTP (D1–D4).
	DASH
	// Smooth is Microsoft SmoothStreaming (S1–S2).
	Smooth
)

// String returns "HLS", "DASH" or "Smooth".
func (p Protocol) String() string {
	switch p {
	case HLS:
		return "HLS"
	case DASH:
		return "DASH"
	default:
		return "Smooth"
	}
}

// Addressing selects how segments are addressed on the wire.
type Addressing int

const (
	// SeparateFiles gives each segment its own URL (HLS services; none
	// of the studied HLS services used byte ranges).
	SeparateFiles Addressing = iota
	// RangesInManifest stores each segment as a byte range of one media
	// file, with the ranges listed directly in the MPD (D1's design).
	RangesInManifest
	// SidxRanges stores segments as byte ranges of one media file and
	// publishes the ranges in the file's Segment Index box, referenced
	// from the MPD (D2–D4's design). The sidx also reveals per-segment
	// sizes, which §4.2 argues the adaptation logic should use.
	SidxRanges
	// TemplateURLs addresses segments by substituting bitrate and start
	// time into a URL template (SmoothStreaming).
	TemplateURLs
	// TemplateNumber addresses segments with a DASH SegmentTemplate
	// using $Number$ substitution — the most common deployed DASH mode.
	// Like plain HLS it exposes no per-segment sizes to the client.
	TemplateNumber
)

// Segment describes one addressable media segment.
type Segment struct {
	// URL is the segment's own URL (SeparateFiles), or "" when the
	// segment is a byte range of the rendition's MediaURL.
	URL string
	// Offset and Length give the byte range within MediaURL; Length is 0
	// for SeparateFiles addressing.
	Offset, Length int64
	// Duration is the segment's media duration in seconds.
	Duration float64
	// Size is the segment's actual size in bytes. It is always known to
	// the origin; whether the client can learn it before download
	// depends on the addressing mode (ranges and sidx expose it, plain
	// HLS does not).
	Size int64
	// Start is the segment's media start time in seconds.
	Start float64
}

// Rendition is one track as described by a manifest.
type Rendition struct {
	// ID is the rung index, 0 = lowest.
	ID int
	// Type is media.TypeVideo or media.TypeAudio.
	Type media.MediaType
	// DeclaredBitrate is the advertised bandwidth requirement in bits/s.
	DeclaredBitrate float64
	// AverageBitrate optionally advertises the mean actual bitrate
	// (HLS AVERAGE-BANDWIDTH); 0 when absent.
	AverageBitrate float64
	// Width and Height give the video resolution (0 for audio).
	Width, Height int
	// SegmentDuration is the nominal segment duration in seconds.
	SegmentDuration float64
	// PlaylistURL is the rendition-level document URL (HLS media
	// playlist); "" for single-manifest protocols.
	PlaylistURL string
	// MediaURL is the single media file carrying all segments when
	// addressing is range-based.
	MediaURL string
	// IndexOffset and IndexLength locate the sidx box within MediaURL
	// (SidxRanges addressing).
	IndexOffset, IndexLength int64
	// Segments lists the rendition's segments in order.
	Segments []Segment
}

// Resolution returns a label such as "720p" (or "audio").
func (r *Rendition) Resolution() string {
	if r.Type == media.TypeAudio {
		return "audio"
	}
	return fmt.Sprintf("%dp", r.Height)
}

// TotalBytes returns the sum of segment sizes.
func (r *Rendition) TotalBytes() int64 {
	var n int64
	for _, s := range r.Segments {
		n += s.Size
	}
	return n
}

// Presentation is the protocol-neutral content description.
type Presentation struct {
	// Name identifies the presentation (first path element of URLs).
	Name string
	// Protocol is the wire format the origin publishes.
	Protocol Protocol
	// Addressing is the segment addressing mode.
	Addressing Addressing
	// Duration is the media duration in seconds.
	Duration float64
	// Video holds the video ladder ascending by quality.
	Video []*Rendition
	// Audio holds separate audio renditions (empty when multiplexed).
	Audio []*Rendition
}

// ManifestURL returns the URL of the top-level manifest document.
func (p *Presentation) ManifestURL() string {
	switch p.Protocol {
	case HLS:
		return "/" + p.Name + "/master.m3u8"
	case DASH:
		return "/" + p.Name + "/manifest.mpd"
	default:
		return "/" + p.Name + "/Manifest"
	}
}

// Rendition returns the video rendition with the given ID, or nil.
func (p *Presentation) Rendition(id int) *Rendition {
	if id < 0 || id >= len(p.Video) {
		return nil
	}
	return p.Video[id]
}

// BuildOptions configures Build.
type BuildOptions struct {
	// Protocol selects the wire format.
	Protocol Protocol
	// Addressing selects segment addressing; zero value picks the
	// protocol's conventional mode (HLS/Smooth ignore it).
	Addressing Addressing
	// DeclareAverage additionally publishes AVERAGE-BANDWIDTH (HLS only;
	// newer HLS versions support it, §4.2).
	DeclareAverage bool
}

// Build derives the manifest-level description of a generated video.
func Build(v *media.Video, opts BuildOptions) *Presentation {
	addr := opts.Addressing
	switch opts.Protocol {
	case HLS:
		addr = SeparateFiles
	case Smooth:
		addr = TemplateURLs
	case DASH:
		if addr == SeparateFiles {
			addr = SidxRanges
		}
	}
	p := &Presentation{
		Name:       v.Name,
		Protocol:   opts.Protocol,
		Addressing: addr,
		Duration:   v.Duration,
	}
	for _, t := range v.Tracks {
		p.Video = append(p.Video, buildRendition(p, v, t, opts))
	}
	for _, t := range v.AudioTracks {
		p.Audio = append(p.Audio, buildRendition(p, v, t, opts))
	}
	return p
}

func buildRendition(p *Presentation, v *media.Video, t *media.Track, opts BuildOptions) *Rendition {
	r := &Rendition{
		ID:              t.ID,
		Type:            t.Type,
		DeclaredBitrate: t.DeclaredBitrate,
		Width:           t.Width,
		Height:          t.Height,
		SegmentDuration: t.SegmentDuration,
	}
	if opts.DeclareAverage {
		r.AverageBitrate = t.AverageBitrate()
	}
	kind := t.Type.String()
	segLen := func(i int) float64 {
		if t.Type == media.TypeAudio {
			return v.AudioSegmentLength(i)
		}
		return v.SegmentLength(i)
	}
	n := len(t.SegmentBytes)
	r.Segments = make([]Segment, n)
	switch p.Addressing {
	case SeparateFiles:
		r.PlaylistURL = fmt.Sprintf("/%s/%s_track%d.m3u8", p.Name, kind, t.ID)
		for i := 0; i < n; i++ {
			r.Segments[i] = Segment{
				URL:      fmt.Sprintf("/%s/%s_track%d/seg%05d.ts", p.Name, kind, t.ID, i),
				Duration: segLen(i),
				Size:     int64(t.SegmentBytes[i] + 0.5),
				Start:    float64(i) * t.SegmentDuration,
			}
		}
	case RangesInManifest, SidxRanges:
		r.MediaURL = fmt.Sprintf("/%s/%s_track%d.mp4", p.Name, kind, t.ID)
		// Reserve a small header region for ftyp/moov plus the sidx.
		const headerBytes = 1024
		r.IndexOffset = 128
		r.IndexLength = headerBytes - r.IndexOffset
		off := int64(headerBytes)
		for i := 0; i < n; i++ {
			size := int64(t.SegmentBytes[i] + 0.5)
			r.Segments[i] = Segment{
				Offset:   off,
				Length:   size,
				Duration: segLen(i),
				Size:     size,
				Start:    float64(i) * t.SegmentDuration,
			}
			off += size
		}
	case TemplateURLs:
		for i := 0; i < n; i++ {
			start := float64(i) * t.SegmentDuration
			r.Segments[i] = Segment{
				URL:      SmoothFragmentURL(p.Name, kind, t.DeclaredBitrate, start),
				Duration: segLen(i),
				Size:     int64(t.SegmentBytes[i] + 0.5),
				Start:    start,
			}
		}
	case TemplateNumber:
		for i := 0; i < n; i++ {
			r.Segments[i] = Segment{
				URL:      NumberTemplateURL(p.Name, kind, t.ID, i+1),
				Duration: segLen(i),
				Size:     int64(t.SegmentBytes[i] + 0.5),
				Start:    float64(i) * t.SegmentDuration,
			}
		}
	}
	return r
}

// NumberTemplateURL renders the URL a DASH $Number$ SegmentTemplate
// expands to for the given media kind, track and 1-based number.
func NumberTemplateURL(name, kind string, track, number int) string {
	return fmt.Sprintf("/%s/%s_track%d/seg-%d.m4s", name, kind, track, number)
}

// SmoothTimescale is the SmoothStreaming 100 ns time unit per second.
const SmoothTimescale = 1e7

// SmoothFragmentURL renders the conventional SmoothStreaming fragment URL
// for a presentation, media kind ("video"/"audio"), declared bitrate and
// media start time in seconds.
func SmoothFragmentURL(name, kind string, bitrate, start float64) string {
	return fmt.Sprintf("/%s/QualityLevels(%d)/Fragments(%s=%d)", name, int64(bitrate), kind, int64(start*SmoothTimescale+0.5))
}

// Package stepalias enforces simnet's buffer-reuse contract: the
// slice returned by Network.Step — and every *Transfer in it — is
// valid only until the next Step or Recycle call, because the engine
// reuses the completed-transfers scratch slice and returns recycled
// transfers to a free list (internal/simnet).
//
// The analyzer taints each Step call's result and the values derived
// from it (indexing, slicing, ranging) and reports wherever a tainted
// value is retained beyond the calling frame: returned, stored in a
// field, package or captured variable, appended to another slice,
// sent on a channel, handed to a goroutine, or passed to a
// same-package function that retains its argument. Reading fields of
// a completed transfer (tr.Size, tr.Meta) and passing it to Recycle
// are the intended uses and stay silent, as do calls whose callee the
// tracker cannot see (cross-package, dynamic): the analysis
// under-approximates so that every report is actionable.
package stepalias

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/flow"
)

// Analyzer flags retention of Network.Step results past the frame
// that obtained them.
var Analyzer = &lint.Analyzer{
	Name: "stepalias",
	Doc: "flag code retaining the slice or *Transfer values returned by simnet " +
		"Network.Step, which are only valid until the next Step or Recycle",
	Run: run,
}

func run(pass *lint.Pass) error {
	g := flow.New(pass)
	opts := flow.EscapeOpts{SafeCall: isRecycle}
	for _, node := range g.Nodes {
		var seeds []ast.Expr
		flow.WalkOwn(node, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isStepCall(g, call) {
				seeds = append(seeds, call)
			}
			return true
		})
		if len(seeds) == 0 {
			continue
		}
		for _, s := range g.Escapes(node, seeds, opts) {
			pass.Reportf(s.Pos,
				"Network.Step result %s, but Step's returned slice and its transfers are reused by the next Step/Recycle; copy the data out instead",
				s.What)
		}
	}
	return nil
}

// isStepCall reports calls of the Step method of simnet.Network (the
// facade's Network is a type alias, so its calls resolve here too).
func isStepCall(g *flow.Graph, call *ast.CallExpr) bool {
	return isNetworkMethod(g.StaticCallee(call), "Step")
}

func isRecycle(fn *types.Func) bool { return isNetworkMethod(fn, "Recycle") }

func isNetworkMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Name() != "simnet" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Network"
}

// Compare_services reruns the heart of the paper's cross-sectional study:
// all twelve service models stream the same cellular bandwidth profiles,
// and their QoE is laid side by side — exposing how the Table 1 design
// choices (bottom-track bitrate, startup logic, buffer thresholds,
// connection handling, adaptation aggressiveness) turn into startup
// delay, stalls and delivered quality.
package main

import (
	"fmt"
	"log"

	vod "repro"
	"repro/internal/textplot"
)

func main() {
	profiles := []int{1, 3, 7} // low / medium / high bandwidth
	for _, pi := range profiles {
		p := vod.CellularProfile(pi)
		t := &textplot.Table{
			Title: fmt.Sprintf("QoE on cellular profile %d (avg %.2f Mbit/s)", pi, p.Average()/1e6),
			Header: []string{"service", "startup (s)", "stalls", "stall (s)",
				"avg kbit/s", "switches", "data MB", "waste MB"},
		}
		for _, svc := range vod.Services() {
			res, err := svc.Run(p, 600, nil)
			if err != nil {
				log.Fatal(err)
			}
			rep := vod.QoE(res)
			t.AddRow(svc.Name,
				fmt.Sprintf("%.1f", rep.StartupDelay),
				fmt.Sprintf("%d", rep.StallCount),
				fmt.Sprintf("%.1f", rep.StallSec),
				fmt.Sprintf("%.0f", rep.AvgBitrate/1e3),
				fmt.Sprintf("%d", rep.Switches),
				fmt.Sprintf("%.1f", rep.DataUsageBytes/1e6),
				fmt.Sprintf("%.1f", rep.WastedBytes/1e6),
			)
		}
		fmt.Println(t.String())
	}
	fmt.Println("Things to look for (cf. Table 2 of the paper):")
	fmt.Println("  - H2/H5/S1 stall on profile 1: their bottom tracks exceed 500 kbit/s.")
	fmt.Println("  - S2 stalls even on mid profiles: it resumes downloads at a 4 s buffer.")
	fmt.Println("  - D1 switches constantly and wastes stalls despite a full video buffer.")
	fmt.Println("  - H1/H4 burn data on segment replacement (waste column).")
	fmt.Println("  - D2's average bitrate trails everyone at equal bandwidth: it adapts on")
	fmt.Println("    declared bitrates that are twice the actual ones.")
}

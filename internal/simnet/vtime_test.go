package simnet

// Differential and property tests for the virtual-time engine (vtime.go).
//
// The vtime engine is equivalent to the scan engine up to float
// accumulation order: uncapped flows receive the exact equal share s
// instead of the water-filling's sequential remainder divisions, and
// completions land within the scan engine's epsBytes residue. The tests
// here therefore use tolerance-bounded comparisons for times and totals
// — unlike reference_test.go's bit-exact contract for the scan engine —
// plus exact structural requirements: the same transfers complete, in a
// consistent order, with per-engine byte conservation holding exactly.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/netem"
)

// timeTol bounds the completion-time disagreement between the two
// engines: the scan engine declares completion with up to epsBytes
// (1e-6) remaining, so times differ by at most eps/rate plus float
// accumulation dust over a long run.
const timeTol = 1e-5

// engineRun is the observable outcome of one scripted workload on one
// engine: completion records in completion order plus final totals.
type engineRun struct {
	n         *Network
	conns     []*Conn
	transfers []*Transfer
	completed []completionRec
}

type completionRec struct {
	connSeq   int
	size      float64
	completed float64
}

// workloadOp is one scripted event; the script is generated once and
// replayed identically on every engine so the engines see the same
// requests at the same times regardless of tolerance-level divergence.
type workloadOp struct {
	kind  int // 0 start, 1 close+redial, 2 step
	conn  int
	size  float64
	until float64
	via   int // access link index, -1 for none
}

// buildWorkload generates a seeded high-fan-in script: nconn
// connections (optionally spread over a few shared access links),
// random starts, occasional mid-flight closes, and absolute step
// deadlines so both engines advance in lockstep.
func buildWorkload(rng *rand.Rand, nconn, nlinks, events int) []workloadOp {
	ops := make([]workloadOp, 0, events+2*nconn)
	now := 0.0
	for i := 0; i < nconn; i++ {
		via := -1
		if nlinks > 0 && rng.Intn(2) == 0 {
			via = rng.Intn(nlinks)
		}
		ops = append(ops, workloadOp{kind: 0, conn: i, size: math.Round(rng.Float64()*3e6) + 1, via: via})
	}
	for ev := 0; ev < events; ev++ {
		switch op := rng.Intn(10); {
		case op < 5:
			via := -1
			if nlinks > 0 && rng.Intn(2) == 0 {
				via = rng.Intn(nlinks)
			}
			ops = append(ops, workloadOp{kind: 0, conn: rng.Intn(nconn), size: math.Round(rng.Float64()*3e6) + 1, via: via})
		case op < 6:
			via := -1
			if nlinks > 0 && rng.Intn(2) == 0 {
				via = rng.Intn(nlinks)
			}
			ops = append(ops, workloadOp{kind: 1, conn: rng.Intn(nconn), via: via})
		default:
			now += rng.Float64() * 0.8
			ops = append(ops, workloadOp{kind: 2, until: now})
		}
	}
	// Drain: step far enough that every surviving transfer completes.
	ops = append(ops, workloadOp{kind: 2, until: now + 2000})
	return ops
}

// runWorkload replays a script on a fresh Network with the given engine
// and nconn connection slots over nlinks shared access links. A start
// on a busy or pending connection is skipped — the script is identical
// across engines, and with deadline-driven steps the busy state at each
// op is too, because both engines complete the same transfers between
// the same deadlines (checked post-hoc by comparing completion counts).
func runWorkload(t *testing.T, cfg Config, p *netem.Profile, linkP *netem.Profile, engine Engine, ops []workloadOp, nconn, nlinks int) *engineRun {
	t.Helper()
	cfg.Engine = engine
	n := New(cfg, p)
	links := make([]*AccessLink, nlinks)
	for i := range links {
		links[i] = n.NewAccessLink(linkP)
	}
	r := &engineRun{n: n, conns: make([]*Conn, nconn)}
	dial := func(via int) *Conn {
		if via >= 0 {
			return n.DialVia(links[via])
		}
		return n.Dial()
	}
	lastCompleted := 0.0
	step := func(until float64) {
		for {
			done := n.Step(until)
			if len(done) == 0 {
				return
			}
			for _, tr := range done {
				if tr.Completed < lastCompleted {
					t.Fatalf("engine %d: completion time went backwards: %v after %v", engine, tr.Completed, lastCompleted)
				}
				lastCompleted = tr.Completed
				r.completed = append(r.completed, completionRec{tr.Conn.seq, tr.Size, tr.Completed})
			}
		}
	}
	for _, op := range ops {
		switch op.kind {
		case 0:
			if r.conns[op.conn] == nil {
				r.conns[op.conn] = dial(op.via)
			}
			if c := r.conns[op.conn]; !c.Busy() {
				r.transfers = append(r.transfers, c.Start(op.size, nil))
			}
		case 1:
			if c := r.conns[op.conn]; c != nil {
				c.Close()
				r.conns[op.conn] = dial(op.via)
			}
		case 2:
			step(op.until)
		}
	}
	return r
}

// checkConservation asserts the exact per-engine byte ledger: delivered
// bytes equal the bytes drained from every transfer ever started.
func checkConservation(t *testing.T, r *engineRun, label string) {
	t.Helper()
	var drained float64
	for _, tr := range r.transfers {
		drained += tr.Size - tr.Remaining()
	}
	if diff := math.Abs(r.n.Delivered() - drained); diff > 1e-3 {
		t.Fatalf("%s: delivered %v != drained %v (diff %g)", label, r.n.Delivered(), drained, diff)
	}
}

// compareRuns checks the two engines completed the same transfers with
// tolerance-bounded times and totals. Completion order may legitimately
// swap for transfers finishing within the tolerance of each other, so
// records are matched per connection (per-conn order is program order:
// one outstanding request per connection).
func compareRuns(t *testing.T, scan, vt *engineRun) {
	t.Helper()
	if len(scan.completed) != len(vt.completed) {
		t.Fatalf("completion count: scan %d != vtime %d", len(scan.completed), len(vt.completed))
	}
	perConn := func(r *engineRun) map[int][]completionRec {
		m := make(map[int][]completionRec)
		for _, c := range r.completed {
			m[c.connSeq] = append(m[c.connSeq], c)
		}
		return m
	}
	sm, vm := perConn(scan), perConn(vt)
	for seq, sc := range sm {
		vc := vm[seq]
		if len(sc) != len(vc) {
			t.Fatalf("conn %d: scan completed %d transfers, vtime %d", seq, len(sc), len(vc))
		}
		for i := range sc {
			if sc[i].size != vc[i].size {
				t.Fatalf("conn %d transfer %d: size %v != %v", seq, i, sc[i].size, vc[i].size)
			}
			tol := timeTol * (1 + math.Abs(sc[i].completed))
			if d := math.Abs(sc[i].completed - vc[i].completed); d > tol {
				t.Fatalf("conn %d transfer %d (size %v): completed %v (scan) vs %v (vtime), diff %g > %g",
					seq, i, sc[i].size, sc[i].completed, vc[i].completed, d, tol)
			}
		}
	}
	dTol := 1e-3 + 1e-9*math.Abs(scan.n.Delivered())
	if d := math.Abs(scan.n.Delivered() - vt.n.Delivered()); d > dTol {
		t.Fatalf("delivered: scan %v vs vtime %v (diff %g)", scan.n.Delivered(), vt.n.Delivered(), d)
	}
}

// FuzzEngineEquivalence is the seeded differential harness: a scripted
// high-fan-in workload (shared access links included) replayed on the
// scan and virtual-time engines must complete the same transfers at
// tolerance-equal times with exact per-engine byte conservation.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(0))
	f.Add(int64(2), uint8(48), uint8(0))
	f.Add(int64(3), uint8(64), uint8(3))
	f.Add(int64(4), uint8(90), uint8(5))
	f.Add(int64(5), uint8(12), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nconnB, nlinksB uint8) {
		nconn := 1 + int(nconnB)%96
		nlinks := int(nlinksB) % 6
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng)
		// Conservation and drain need a link that can actually deliver.
		for i, s := range p.Samples {
			if s == 0 {
				p.Samples[i] = 5e5
			}
		}
		linkP := netem.Constant("access", 4e6, 7)
		cfg := randomConfig(rng)
		ops := buildWorkload(rng, nconn, nlinks, 80)

		scan := runWorkload(t, cfg, p, linkP, EngineScan, ops, nconn, nlinks)
		vt := runWorkload(t, cfg, p, linkP, EngineVTime, ops, nconn, nlinks)
		checkConservation(t, scan, "scan")
		checkConservation(t, vt, "vtime")
		compareRuns(t, scan, vt)
	})
}

// TestEngineEquivalenceSeeded replays the fuzz harness over a fixed
// seed sweep so the differential property runs on every plain `go test`
// (and under -race in CI), not only in fuzz mode.
func TestEngineEquivalenceSeeded(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nconn := 1 + rng.Intn(96)
			nlinks := rng.Intn(6)
			p := randomProfile(rng)
			for i, s := range p.Samples {
				if s == 0 {
					p.Samples[i] = 5e5
				}
			}
			linkP := netem.Constant("access", 4e6, 7)
			cfg := randomConfig(rng)
			ops := buildWorkload(rng, nconn, nlinks, 80)
			scan := runWorkload(t, cfg, p, linkP, EngineScan, ops, nconn, nlinks)
			vt := runWorkload(t, cfg, p, linkP, EngineVTime, ops, nconn, nlinks)
			checkConservation(t, scan, "scan")
			checkConservation(t, vt, "vtime")
			compareRuns(t, scan, vt)
		})
	}
}

// TestEngineAutoSwitchEquivalence drives a workload that crosses the
// auto-switch thresholds in both directions — a fan-in spike past
// vtimeEnter, a drain below vtimeExit, then a second spike — and
// requires EngineAuto's outcome to match EngineScan's within tolerance
// while confirming the engine actually switched.
func TestEngineAutoSwitchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProfile(rng)
	for i, s := range p.Samples {
		if s == 0 {
			p.Samples[i] = 5e5
		}
	}
	cfg := randomConfig(rng)
	nconn := vtimeEnter + 24
	var ops []workloadOp
	for i := 0; i < nconn; i++ { // spike 1: everyone requests at t=0
		ops = append(ops, workloadOp{kind: 0, conn: i, size: math.Round(rng.Float64()*2e6) + 1e5, via: -1})
	}
	ops = append(ops, workloadOp{kind: 2, until: 1500}) // drain to empty
	for i := 0; i < nconn; i++ {                        // spike 2: idle-reset then re-request
		ops = append(ops, workloadOp{kind: 0, conn: i, size: math.Round(rng.Float64()*2e6) + 1e5, via: -1})
	}
	ops = append(ops, workloadOp{kind: 2, until: 4000})

	scan := runWorkload(t, cfg, p, nil, EngineScan, ops, nconn, 0)
	if scan.n.VTimeActive() {
		t.Fatal("EngineScan ended in vtime mode")
	}

	// Replay on EngineAuto, probing the mode at the spike and the drain.
	cfg.Engine = EngineAuto
	n := New(cfg, p)
	conns := make([]*Conn, nconn)
	for i := range conns {
		conns[i] = n.Dial()
		conns[i].Start(ops[i].size, nil)
	}
	n.Step(0.5) // past every FlowAt: the spike is flowing
	sawVtime := n.VTimeActive()
	var auto []completionRec
	collect := func(until float64) {
		for {
			done := n.Step(until)
			if len(done) == 0 {
				return
			}
			for _, tr := range done {
				auto = append(auto, completionRec{tr.Conn.seq, tr.Size, tr.Completed})
			}
			sawVtime = sawVtime || n.VTimeActive()
		}
	}
	collect(1500)
	if n.VTimeActive() {
		t.Error("EngineAuto still in vtime mode after the fleet drained to zero")
	}
	for i, c := range conns {
		c.Start(ops[nconn+1+i].size, nil)
	}
	collect(4000)
	if !sawVtime {
		t.Fatalf("EngineAuto never entered vtime mode at %d concurrent flows", nconn)
	}
	if len(auto) != len(scan.completed) {
		t.Fatalf("completion count: auto %d != scan %d", len(auto), len(scan.completed))
	}
	vt := &engineRun{n: n, completed: auto}
	compareRuns(t, scan, vt)
}

// TestVTimeFairnessOrder pins the fairness property in closed form:
// K uncapped flows sharing one link under processor sharing finish in
// ascending remaining-bytes order at exactly the GPS completion times.
func TestVTimeFairnessOrder(t *testing.T) {
	const K = 24
	const bps = 1e7
	cfg := Config{
		RTT: 0.05,
		// A first window larger than the link keeps every flow uncapped
		// from its first byte, so the closed form applies exactly.
		InitialWindowSegments: 2e4,
		Engine:                EngineVTime,
	}
	p := netem.Constant("flat", bps, 1000)
	n := New(cfg, p)
	sizes := make([]float64, K)
	for i := range sizes {
		sizes[i] = float64(1+i) * 1e5 // distinct, ascending
	}
	// Start in shuffled order so finish order is earned, not inherited.
	rng := rand.New(rand.NewSource(42))
	transfers := make([]*Transfer, K)
	for _, i := range rng.Perm(K) {
		transfers[i] = n.Dial().Start(sizes[i], nil)
	}
	flowAt := transfers[0].FlowAt // identical for all: same dial time, same handshake

	var order []int
	for len(order) < K {
		for _, tr := range n.Step(1e6) {
			for i := range transfers {
				if transfers[i] == tr {
					order = append(order, i)
				}
			}
		}
	}
	C := bps / 8
	expect := flowAt
	prev := 0.0
	for rank, idx := range order {
		if idx != rank {
			t.Fatalf("finish order[%d] = flow %d (size %v); want ascending sizes", rank, idx, sizes[idx])
		}
		expect += float64(K-rank) * (sizes[idx] - prev) / C
		prev = sizes[idx]
		if d := math.Abs(transfers[idx].Completed - expect); d > 1e-6*expect {
			t.Fatalf("flow %d completed at %v; GPS closed form %v (diff %g)", idx, transfers[idx].Completed, expect, d)
		}
	}
}

// TestVTimeLazyReadConsistency checks the lazy-materialization contract
// mid-flight: Remaining is monotone non-increasing and within [0, Size],
// the O(1) Delivered matches the per-transfer ledger at every probe, and
// observer reads are pure — a run probed after every step ends
// bit-identical to an unprobed twin.
func TestVTimeLazyReadConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomProfile(rng)
	for i, s := range p.Samples {
		if s == 0 {
			p.Samples[i] = 5e5
		}
	}
	linkP := netem.Constant("access", 3e6, 5)
	cfg := randomConfig(rng)
	cfg.Engine = EngineVTime
	ops := buildWorkload(rng, 40, 3, 60)

	probed := New(cfg, p)
	silent := New(cfg, p)
	mk := func(n *Network) (conns []*Conn, links []*AccessLink) {
		links = []*AccessLink{n.NewAccessLink(linkP), n.NewAccessLink(linkP), n.NewAccessLink(linkP)}
		conns = make([]*Conn, 40)
		return
	}
	pc, pl := mk(probed)
	sc, sl := mk(silent)

	var pTrans, sTrans []*Transfer
	lastRem := map[*Transfer]float64{}
	probe := func() {
		var drained float64
		for _, tr := range pTrans {
			rem := tr.Remaining()
			if rem < 0 || rem > tr.Size {
				t.Fatalf("Remaining %v outside [0, %v]", rem, tr.Size)
			}
			if prev, ok := lastRem[tr]; ok && rem > prev+1e-9 {
				t.Fatalf("Remaining increased: %v -> %v", prev, rem)
			}
			lastRem[tr] = rem
			if r := tr.Rate(); r < 0 || math.IsNaN(r) {
				t.Fatalf("Rate %v", r)
			}
			drained += tr.Size - rem
		}
		if d := math.Abs(probed.Delivered() - drained); d > 1e-3 {
			t.Fatalf("Delivered %v != per-transfer drained %v (diff %g)", probed.Delivered(), drained, d)
		}
	}
	for _, op := range ops {
		switch op.kind {
		case 0:
			if pc[op.conn] == nil {
				if op.via >= 0 {
					pc[op.conn], sc[op.conn] = probed.DialVia(pl[op.via]), silent.DialVia(sl[op.via])
				} else {
					pc[op.conn], sc[op.conn] = probed.Dial(), silent.Dial()
				}
			}
			if !pc[op.conn].Busy() {
				pTrans = append(pTrans, pc[op.conn].Start(op.size, nil))
				sTrans = append(sTrans, sc[op.conn].Start(op.size, nil))
			}
		case 1:
			if pc[op.conn] != nil {
				pc[op.conn].Close()
				sc[op.conn].Close()
				pc[op.conn], sc[op.conn] = probed.Dial(), silent.Dial()
			}
		case 2:
			for {
				pd := probed.Step(op.until)
				sd := silent.Step(op.until)
				probe() // reads between every step on the probed twin only
				if len(pd) != len(sd) {
					t.Fatalf("probed run diverged: %d vs %d completions", len(pd), len(sd))
				}
				if len(pd) == 0 {
					break
				}
			}
		}
	}
	// Purity: every observable of the probed run equals the silent twin's.
	if probed.Delivered() != silent.Delivered() {
		t.Fatalf("reads perturbed Delivered: %v vs %v", probed.Delivered(), silent.Delivered())
	}
	for i := range pTrans {
		if pTrans[i].Remaining() != sTrans[i].Remaining() || pTrans[i].Completed != sTrans[i].Completed {
			t.Fatalf("reads perturbed transfer %d: remaining %v/%v completed %v/%v",
				i, pTrans[i].Remaining(), sTrans[i].Remaining(), pTrans[i].Completed, sTrans[i].Completed)
		}
	}
}

// TestVTimeHotPathZeroAlloc extends the PR 3 zero-allocation promise to
// the virtual-time engine: once the heaps are warmed, a start/step/
// recycle cycle at high fan-in allocates nothing.
func TestVTimeHotPathZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineVTime
	n := New(cfg, netem.Constant("c", 50e6, 100))
	conns := make([]*Conn, 64)
	for i := range conns {
		conns[i] = n.Dial()
	}
	cycle := func() {
		for _, c := range conns {
			c.Start(2e5, nil)
		}
		for delivered := 0; delivered < len(conns); {
			done := n.Step(1e9)
			delivered += len(done)
			for _, tr := range done {
				n.Recycle(tr)
			}
		}
	}
	for i := 0; i < 4; i++ { // warm heaps, scratch and the free list
		cycle()
	}
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("vtime hot path allocated %.1f times per cycle", allocs)
	}
}

// BenchmarkFanIn512 measures one drain of 512 concurrent flows on a
// shared link per engine — the regime the virtual-time engine exists
// for (O(log F) vs O(F) per event).
func BenchmarkFanIn512(b *testing.B) {
	for _, eng := range []struct {
		name string
		e    Engine
	}{{"scan", EngineScan}, {"vtime", EngineVTime}} {
		b.Run(eng.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Engine = eng.e
			n := New(cfg, netem.Constant("edge", 200e6, 1000))
			conns := make([]*Conn, 512)
			for i := range conns {
				conns[i] = n.Dial()
			}
			rng := rand.New(rand.NewSource(1))
			sizes := make([]float64, len(conns))
			for i := range sizes {
				sizes[i] = math.Round(rng.Float64()*2e6) + 1e5
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, c := range conns {
					c.Start(sizes[j], nil)
				}
				for delivered := 0; delivered < len(conns); {
					done := n.Step(1e12)
					delivered += len(done)
					for _, tr := range done {
						n.Recycle(tr)
					}
				}
			}
		})
	}
}
